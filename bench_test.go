// Benchmarks regenerating the paper's performance claims, one benchmark
// family per experiment in DESIGN.md's index (E3-E7). Absolute numbers
// are machine-dependent; the claims are about shapes:
//
//	E3  Varanus ns/event grows linearly with live instances; Static
//	    Varanus and register-based designs stay flat (Sec. 3.3).
//	E4  OpenFlow-style rule modification cost grows with table size;
//	    register writes are O(1) (Sec. 3.3).
//	E5  Inline monitoring taxes the forwarding path; split monitoring
//	    defers the cost (and risks lag errors — shown in the integration
//	    tests) (Feature 9).
//	E6  Full provenance costs more than limited; limited is nearly free
//	    (Feature 10).
//	E7  External monitoring redirects the full traffic volume; on-switch
//	    monitoring redirects nothing (Sec. 1).
//	E8  Identity-hash sharding spreads the live population across
//	    per-core engines: events/sec scales with the shard count on
//	    multi-core hosts (run with GOMAXPROCS >= shards).
package switchmon

import (
	"fmt"
	"testing"
	"time"

	"switchmon/internal/backend"
	"switchmon/internal/core"
	"switchmon/internal/obs"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/tables"
	"switchmon/internal/trace"
)

func fwProp(b *testing.B) *property.Property {
	b.Helper()
	p := property.CatalogByName(property.DefaultParams(), "firewall-basic")
	if p == nil {
		b.Fatal("missing firewall-basic")
	}
	return p
}

// BenchmarkE3PipelineDepth measures per-event cost with N live instances
// for each backend architecture.
func BenchmarkE3PipelineDepth(b *testing.B) {
	makers := []struct {
		name string
		mk   func(*sim.Scheduler) backend.Backend
	}{
		{"Varanus", func(s *sim.Scheduler) backend.Backend { return backend.NewVaranus(s) }},
		{"StaticVaranus", func(s *sim.Scheduler) backend.Backend { return backend.NewStaticVaranus(s) }},
		{"P4Registers", func(s *sim.Scheduler) backend.Backend { return backend.NewP4(s) }},
		{"Ideal", func(s *sim.Scheduler) backend.Backend { return backend.NewIdeal(s) }},
	}
	for _, instances := range []int{16, 256, 2048} {
		for _, m := range makers {
			b.Run(fmt.Sprintf("instances=%d/%s", instances, m.name), func(b *testing.B) {
				sched := sim.NewScheduler()
				bk := m.mk(sched)
				if err := bk.AddProperty(fwProp(b)); err != nil {
					b.Fatal(err)
				}
				setup := trace.FirewallWorkload{Flows: instances, Gap: time.Microsecond}
				for _, e := range setup.Events(sim.Epoch) {
					bk.HandleEvent(e)
				}
				work := trace.FirewallWorkload{Flows: instances, ReturnsPerFlow: 1, Gap: time.Microsecond}
				events := work.Events(sim.Epoch)[2*instances:] // returns only
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bk.HandleEvent(events[i%len(events)])
				}
				b.ReportMetric(float64(bk.PipelineDepth()), "pipeline-depth")
			})
		}
	}
}

// BenchmarkE4StateUpdate measures a full monitor transition on backends
// with rule-based versus register-based state. Each iteration opens a
// fresh flow (one instance creation = one state transition).
func BenchmarkE4StateUpdate(b *testing.B) {
	makers := []struct {
		name string
		mk   func(*sim.Scheduler) backend.Backend
	}{
		{"RuleTable-Varanus", func(s *sim.Scheduler) backend.Backend { return backend.NewStaticVaranus(s) }},
		{"Registers-P4", func(s *sim.Scheduler) backend.Backend { return backend.NewP4(s) }},
	}
	for _, m := range makers {
		b.Run(m.name, func(b *testing.B) {
			sched := sim.NewScheduler()
			bk := m.mk(sched)
			if err := bk.AddProperty(fwProp(b)); err != nil {
				b.Fatal(err)
			}
			w := trace.FirewallWorkload{Flows: 4096, Gap: time.Microsecond}
			events := w.Events(sim.Epoch)
			arrivals := make([]core.Event, 0, len(events)/2)
			for _, e := range events {
				if e.Kind == core.KindArrival {
					arrivals = append(arrivals, e)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bk.HandleEvent(arrivals[i%len(arrivals)])
			}
			b.ReportMetric(float64(bk.StateUpdateCost())/float64(b.N), "state-ops/op")
		})
	}
}

// BenchmarkE5SideEffect measures the forwarding-path cost of inline
// versus split monitor processing (Feature 9).
func BenchmarkE5SideEffect(b *testing.B) {
	nat := property.CatalogByName(property.DefaultParams(), "nat-reverse")
	w := trace.NATWorkload{Flows: 8192, MistranslateEvery: 50, Gap: time.Microsecond}
	events := w.Events(sim.Epoch)
	for _, mode := range []core.Mode{core.Inline, core.Split} {
		b.Run(mode.String(), func(b *testing.B) {
			sched := sim.NewScheduler()
			mon := core.NewMonitor(sched, core.Config{Mode: mode, SplitFlushLimit: 4096})
			if err := mon.AddProperty(nat); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.HandleEvent(events[i%len(events)])
			}
			b.StopTimer()
			mon.Flush()
		})
	}
}

// BenchmarkE6Provenance measures monitor cost at each provenance level
// (Feature 10).
func BenchmarkE6Provenance(b *testing.B) {
	w := trace.FirewallWorkload{Flows: 2048, ReturnsPerFlow: 4, ViolationEvery: 10, Gap: time.Microsecond}
	events := w.Events(sim.Epoch)
	for _, level := range []core.ProvLevel{core.ProvNone, core.ProvLimited, core.ProvFull} {
		b.Run(level.String(), func(b *testing.B) {
			sched := sim.NewScheduler()
			sink := 0
			mon := core.NewMonitor(sched, core.Config{
				Provenance:  level,
				OnViolation: func(v *core.Violation) { sink += len(v.History) + len(v.Bindings) },
			})
			if err := mon.AddProperty(fwProp(b)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.HandleEvent(events[i%len(events)])
			}
		})
	}
}

// BenchmarkE7RedirectVolume measures the external-monitoring byte volume
// (Sec. 1's motivation): every monitored packet crosses to the
// controller under OpenFlow 1.3, none under on-switch monitoring.
func BenchmarkE7RedirectVolume(b *testing.B) {
	w := trace.LearningWorkload{Hosts: 32, PacketsPerHost: 64, PayloadBytes: 512, Gap: time.Microsecond}
	events := w.Events(sim.Epoch)
	lsw := property.CatalogByName(property.DefaultParams(), "lswitch-unicast")
	b.Run("OpenFlow13-external", func(b *testing.B) {
		sched := sim.NewScheduler()
		bk := backend.NewOpenFlow13(sched)
		if err := bk.AddProperty(lsw); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bk.HandleEvent(events[i%len(events)])
		}
		b.ReportMetric(float64(bk.RedirectedBytes())/float64(b.N), "redirected-B/op")
	})
	b.Run("Ideal-onswitch", func(b *testing.B) {
		sched := sim.NewScheduler()
		bk := backend.NewIdeal(sched)
		if err := bk.AddProperty(lsw); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bk.HandleEvent(events[i%len(events)])
		}
		b.ReportMetric(0, "redirected-B/op")
	})
}

// BenchmarkE8Sharding measures sharded-engine throughput against the
// inline engine on the high-flow steady state: a large established
// population probed by interleaved return traffic, the shape where the
// per-event cost is one index lookup and the shards share nothing. The
// events/sec metric is the paper-facing number; speedup over shards=1
// requires real cores (GOMAXPROCS >= shards), since the shards are
// goroutines.
func BenchmarkE8Sharding(b *testing.B) {
	const flows = 8192
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 1, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:] // steady-state stage-1 probes only

	b.Run("inline", func(b *testing.B) {
		sched := sim.NewScheduler()
		mon := core.NewMonitor(sched, core.Config{})
		if err := mon.AddProperty(fwProp(b)); err != nil {
			b.Fatal(err)
		}
		for _, e := range open {
			mon.HandleEvent(e)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mon.HandleEvent(returns[i%len(returns)])
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sm := core.NewShardedMonitor(shards, core.Config{})
			defer sm.Close()
			if err := sm.AddProperty(fwProp(b)); err != nil {
				b.Fatal(err)
			}
			sm.SubmitBatch(open, nil)
			sm.Drain()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sm.Submit(returns[i%len(returns)])
			}
			sm.Barrier() // cost of in-flight batches belongs to the run
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkE11TelemetryOverhead measures what attaching the full
// telemetry stack (registry counters, latency histogram, occupancy
// gauges, violation ring) costs on the firewall steady state, against
// the same engine with telemetry disabled. The claim under test: the
// overhead is a couple of atomic ops plus two clock reads per event,
// and zero allocations either way.
func BenchmarkE11TelemetryOverhead(b *testing.B) {
	const flows = 8192
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 1, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	for _, metrics := range []bool{false, true} {
		b.Run(fmt.Sprintf("metrics=%v", metrics), func(b *testing.B) {
			sched := sim.NewScheduler()
			cfg := core.Config{}
			if metrics {
				cfg.Metrics = obs.NewRegistry()
				cfg.Violations = obs.NewRing(256)
			}
			mon := core.NewMonitor(sched, cfg)
			if err := mon.AddProperty(fwProp(b)); err != nil {
				b.Fatal(err)
			}
			for _, e := range open {
				mon.HandleEvent(e)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.HandleEvent(returns[i%len(returns)])
			}
		})
	}
}

// BenchmarkE14TraceOverhead measures what end-to-end tracing costs on
// the firewall steady state: the same engine with tracing off, sampling
// 1-in-64 (the deployment rate), and 1-in-1 (every event traced). Each
// event takes the dataplane's ingress path — a Sample call, and for
// sampled events an ingress stamp plus a Finish at the verdict. The
// claim under test: the unsampled path is a hash and a compare with
// zero allocations, so 1-in-64 stays within a few percent of off.
func BenchmarkE14TraceOverhead(b *testing.B) {
	const flows = 8192
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 1, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	for _, sampleN := range []uint64{0, 64, 1} {
		name := "trace=off"
		if sampleN > 0 {
			name = fmt.Sprintf("trace=1in%d", sampleN)
		}
		b.Run(name, func(b *testing.B) {
			sched := sim.NewScheduler()
			cfg := core.Config{}
			var tr *tracer.Tracer
			if sampleN > 0 {
				tr = tracer.New(tracer.Config{SampleN: sampleN})
				cfg.Tracer = tr
			}
			mon := core.NewMonitor(sched, cfg)
			if err := mon.AddProperty(fwProp(b)); err != nil {
				b.Fatal(err)
			}
			for _, e := range open {
				mon.HandleEvent(e)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := returns[i%len(returns)]
				e.PacketID = core.PacketID(i)
				if sp := tr.Sample(e.SwitchID, uint64(e.PacketID), uint8(e.Kind)); sp != nil {
					sp.Stamp(tracer.StageIngress)
					e.Trace = sp
				}
				mon.HandleEvent(e)
			}
		})
	}
}

// BenchmarkE16StateAccounting measures what per-property state-cost
// accounting (internal/obs/statesize) adds to the firewall steady
// state, against the same engine with accounting disabled. On the
// steady-state return path the accounting cost is two uncontended
// atomic adds (a pool pop and a pool push around the dedup hit); the
// filing path additionally hashes the bindings into the heavy-hitter
// sketch when the filing falls in the sample class. The claim under
// test (E16): accounting adds at most ~15ns/event over the PR 6
// baseline and zero allocations at every sample rate.
func BenchmarkE16StateAccounting(b *testing.B) {
	const flows = 8192
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 1, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"accounting=off", core.Config{DisableStateAccounting: true}},
		{"accounting=on", core.Config{StateTopK: 32, StateSample: 8}},
		{"accounting=on/sample=1", core.Config{StateTopK: 32, StateSample: 1}},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			sched := sim.NewScheduler()
			mon := core.NewMonitor(sched, c.cfg)
			if err := mon.AddProperty(fwProp(b)); err != nil {
				b.Fatal(err)
			}
			for _, e := range open {
				mon.HandleEvent(e)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.HandleEvent(returns[i%len(returns)])
			}
		})
	}
}

// BenchmarkAblationIndexing quantifies what the Feature 8 instance
// indexes buy: the same engine with keyed lookups versus forced linear
// scans, at growing instance populations. (The scan engine is also what
// models Varanus's per-instance pipeline walk in E3.)
func BenchmarkAblationIndexing(b *testing.B) {
	for _, instances := range []int{64, 1024} {
		for _, disable := range []bool{false, true} {
			name := fmt.Sprintf("instances=%d/indexed=%v", instances, !disable)
			b.Run(name, func(b *testing.B) {
				sched := sim.NewScheduler()
				mon := core.NewMonitor(sched, core.Config{DisableIndex: disable})
				if err := mon.AddProperty(fwProp(b)); err != nil {
					b.Fatal(err)
				}
				setup := trace.FirewallWorkload{Flows: instances, Gap: time.Microsecond}
				for _, e := range setup.Events(sim.Epoch) {
					mon.HandleEvent(e)
				}
				work := trace.FirewallWorkload{Flows: instances, ReturnsPerFlow: 1, Gap: time.Microsecond}
				events := work.Events(sim.Epoch)[2*instances:]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mon.HandleEvent(events[i%len(events)])
				}
			})
		}
	}
}

// BenchmarkAblationEviction quantifies the MaxInstances cap: bounded
// memory at the cost of eviction work.
func BenchmarkAblationEviction(b *testing.B) {
	for _, cap := range []int{0, 1024} {
		name := "unbounded"
		if cap > 0 {
			name = fmt.Sprintf("cap=%d", cap)
		}
		b.Run(name, func(b *testing.B) {
			sched := sim.NewScheduler()
			mon := core.NewMonitor(sched, core.Config{MaxInstances: cap})
			if err := mon.AddProperty(fwProp(b)); err != nil {
				b.Fatal(err)
			}
			w := trace.FirewallWorkload{Flows: 16384, Gap: time.Microsecond}
			events := w.Events(sim.Epoch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mon.HandleEvent(events[i%len(events)])
			}
			b.StopTimer()
			b.ReportMetric(float64(mon.ActiveInstances()), "live-instances")
		})
	}
}

// BenchmarkTableRegeneration times the E1/E2 table builds (they must stay
// cheap enough to run in every test cycle).
func BenchmarkTableRegeneration(b *testing.B) {
	b.Run("Table1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := tables.RenderTable1(property.DefaultParams(), true); len(got) == 0 {
				b.Fatal("empty table")
			}
		}
	})
	b.Run("Table2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := tables.RenderTable2(); len(got) == 0 {
				b.Fatal("empty table")
			}
		}
	})
}

// TestBenchWorkloadsProduceViolations guards the benchmark inputs: the
// violating workloads must actually violate, or the benchmarks would be
// timing no-ops.
func TestBenchWorkloadsProduceViolations(t *testing.T) {
	sched := sim.NewScheduler()
	viols := 0
	mon := core.NewMonitor(sched, core.Config{OnViolation: func(*core.Violation) { viols++ }})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	w := trace.FirewallWorkload{Flows: 100, ReturnsPerFlow: 2, ViolationEvery: 7, Gap: time.Microsecond}
	for _, e := range w.Events(sim.Epoch) {
		mon.HandleEvent(e)
	}
	if viols == 0 {
		t.Fatal("E6 workload produced no violations")
	}
}
