// Command switchmon runs the stateful property monitor over an event
// trace (see internal/trace for the format) or over a built-in demo
// scenario, reporting every violation.
//
// Usage:
//
//	switchmon -trace events.trc -catalog firewall-basic,nat-reverse
//	switchmon -trace events.trc -props my.properties
//	switchmon -demo firewall
//	switchmon -demo firewall -metrics-addr :9090
//	switchmon -trace events.trc -catalog firewall-basic -fault drop=0.01,dup=0.001,seed=7
//	switchmon -demo firewall -export 127.0.0.1:9190
//	switchmon -list
//
// Properties come from the built-in catalogue (-catalog, comma-separated
// names) and/or a DSL file (-props). The monitor's provenance level and
// processing mode are configurable.
//
// With -metrics-addr the process serves a live introspection endpoint
// (/metrics in Prometheus text or ?format=json, /healthz, /violations
// with full provenance traces, /state with per-property state-cost
// accounting and heavy-hitter keys, /buildinfo, /debug/pprof) and stays
// up after the run: until SIGINT by default, or for -hold duration.
// With -json, violations stream to stdout as one JSON object per line
// instead of the human-readable rendering. /violations and /trace
// accept ?since=<seq> and ?limit=N for incremental reads.
//
// State accounting runs always (a few atomic adds per instance
// lifecycle); -state-topk sets the heavy-hitter sketch capacity behind
// /state's top_keys, -state-sample its 1-in-N filing sample rate, and
// -state-watermark the per-property live-instance count that raises the
// switchmon_state_pressure early-warning metric (0 = off).
//
// With -export the process acts as the switch-side half of the
// distributed monitoring fabric: every event is also shipped over TCP
// to a central collector (cmd/collector) as sequenced wire batches,
// with at-least-once delivery and wire-loss accounting in the exit
// report. -export-dpid sets the datapath id announced to the collector.
// Batch sealing is adaptive: -batch-slo sets the target seal latency
// (default 250µs) and -batch-max the size clamp (default 256); the
// exporter grows batches toward the clamp under bursts and collapses
// to per-event shipping under trickle traffic.
//
// -fault injects deterministic faults into the run (internal/fault);
// every injected loss lands in the soundness ledger, which the exit
// report prints and /healthz serves as a degradation report. The spec
// grammar is comma-separated key=value:
//
//	drop=F            probability in [0,1] of dropping each event
//	dup=F             probability in [0,1] of duplicating each event
//	reorder=F         probability of swapping adjacent events (-trace only)
//	delay=DUR         jitter timestamps by uniform [0,DUR) (-trace only)
//	seed=N            PRNG seed; same seed+spec = same run
//	panic-shard=S@N   panic shard S at its Nth event (needs -shards)
//	stall-shard=S@N   stall shard S at its Nth event (needs -shards)
//	stall=DUR         stall duration (default 10ms)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"switchmon/internal/apps"
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/dsl"
	"switchmon/internal/exporter"
	"switchmon/internal/fault"
	"switchmon/internal/federation"
	"switchmon/internal/obs"
	"switchmon/internal/obs/export"
	"switchmon/internal/obs/histdb"
	"switchmon/internal/obs/slo"
	"switchmon/internal/obs/statesize"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
	"switchmon/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "switchmon:", err)
		os.Exit(1)
	}
}

// engine abstracts the driving loop over the inline Monitor and the
// sharded multi-core engine: install properties, feed events, settle,
// read aggregate stats.
type engine interface {
	AddProperty(p *property.Property) error
	// RemoveProperty removes an installed property live; Properties
	// lists the installed names; Epoch is the lifecycle generation.
	RemoveProperty(name string) error
	Properties() []string
	Epoch() uint64
	HandleEvent(e core.Event)
	// Flush settles everything fed so far (split-mode queue, shard
	// channels) without advancing time.
	Flush()
	// Drain flushes and then advances the clock an hour past the last
	// event, firing outstanding deadline monitors.
	Drain()
	Stats() core.Stats
	// Ledger snapshots the per-property soundness marks (empty when every
	// verdict is still complete).
	Ledger() []core.UnsoundMark
	// MarkFeedLoss records events lost upstream of the engine, marking
	// every property unsound.
	MarkFeedLoss(at time.Time, n uint64, detail string)
	// StateReport snapshots per-property state-cost accounting (live
	// instances, bytes, timers, heavy-hitter keys) for /state.
	StateReport() statesize.Report
}

// inlineEngine drives a single-threaded Monitor on the shared scheduler.
// A mutex serializes the feed loop against the /properties admin
// endpoint (and property-set updates applied from the exporter's reader
// goroutine) — the Monitor itself is single-threaded by contract.
type inlineEngine struct {
	mu    sync.Mutex
	mon   *core.Monitor
	sched *sim.Scheduler
}

func (ie *inlineEngine) AddProperty(p *property.Property) error {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return ie.mon.AddProperty(p)
}
func (ie *inlineEngine) RemoveProperty(name string) error {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return ie.mon.RemoveProperty(name)
}
func (ie *inlineEngine) Properties() []string {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return ie.mon.Properties()
}
func (ie *inlineEngine) Epoch() uint64 { return ie.mon.Epoch() }
func (ie *inlineEngine) HandleEvent(e core.Event) {
	ie.mu.Lock()
	ie.mon.HandleEvent(e)
	ie.mu.Unlock()
}
func (ie *inlineEngine) Flush() {
	ie.mu.Lock()
	ie.mon.Flush()
	ie.mu.Unlock()
}
func (ie *inlineEngine) Drain() {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	ie.mon.Flush()
	ie.sched.RunFor(time.Hour)
}
func (ie *inlineEngine) Stats() core.Stats {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return ie.mon.Stats()
}
func (ie *inlineEngine) Ledger() []core.UnsoundMark { return ie.mon.Ledger().Snapshot() }
func (ie *inlineEngine) MarkFeedLoss(at time.Time, n uint64, detail string) {
	ie.mu.Lock()
	ie.mon.MarkFeedLoss(at, n, detail)
	ie.mu.Unlock()
}
func (ie *inlineEngine) StateReport() statesize.Report { return ie.mon.StateReport() }

// shardedEngine drives a ShardedMonitor, keeping shard clocks tracking
// the event stream with non-blocking Ticks (the backend-adapter idiom).
// Flush additionally pulls shard clocks up to the shared scheduler's
// now, so demo scenarios that RunFor past the last event still fire the
// monitor-side deadlines an inline engine would have fired.
type shardedEngine struct {
	sm    *core.ShardedMonitor
	sched *sim.Scheduler
	last  time.Time
}

func (se *shardedEngine) AddProperty(p *property.Property) error { return se.sm.AddProperty(p) }
func (se *shardedEngine) RemoveProperty(name string) error       { return se.sm.RemoveProperty(name) }
func (se *shardedEngine) Properties() []string                   { return se.sm.Properties() }
func (se *shardedEngine) Epoch() uint64                          { return se.sm.Epoch() }
func (se *shardedEngine) HandleEvent(e core.Event) {
	if e.Time.After(se.last) {
		se.sm.Tick(e.Time)
		se.last = e.Time
	}
	se.sm.Submit(e)
}
func (se *shardedEngine) Flush() {
	if now := se.sched.Now(); now.After(se.last) {
		se.last = now
	}
	se.sm.AdvanceTo(se.last)
}
func (se *shardedEngine) Drain() {
	se.Flush()
	se.sm.AdvanceTo(se.last.Add(time.Hour))
}
func (se *shardedEngine) Stats() core.Stats          { return se.sm.Stats() }
func (se *shardedEngine) Ledger() []core.UnsoundMark { return se.sm.Ledger().Snapshot() }
func (se *shardedEngine) MarkFeedLoss(at time.Time, n uint64, detail string) {
	se.sm.MarkFeedLoss(at, n, detail)
}
func (se *shardedEngine) StateReport() statesize.Report { return se.sm.StateReport() }

func run() error {
	var (
		traceFile = flag.String("trace", "", "event trace file to replay")
		propsFile = flag.String("props", "", "DSL file with property definitions")
		catalog   = flag.String("catalog", "", "comma-separated built-in property names")
		demo      = flag.String("demo", "", "run a built-in scenario: firewall, arp, knocking")
		record    = flag.String("record", "", "record the demo's event stream to this trace file")
		provLevel = flag.String("provenance", "limited", "provenance level: none, limited, full")
		mode      = flag.String("mode", "inline", "processing mode: inline, split")
		shards    = flag.Int("shards", 0, "run the sharded multi-core engine with this many shards (0 = single engine)")
		list      = flag.Bool("list", false, "list built-in catalogue properties and exit")

		faultSpec = flag.String("fault", "", "inject deterministic faults: drop=F,dup=F,reorder=F,delay=DUR,seed=N,panic-shard=S@N,stall-shard=S@N,stall=DUR")

		exportAddr = flag.String("export", "", "also ship the event stream to a central collector at this address (cmd/collector)")
		collectors = flag.String("collectors", "", "comma-separated collector endpoints for federated export: events fan out across the fleet by partition key, each endpoint with its own sequence space, queue, and replay (replaces -export)")
		partition  = flag.String("partition", "dpid", "with -collectors: fleet partition key — dpid (whole switch on one collector) or identity (property-identity key derived from the installed set; requires -catalog/-props)")
		exportDPID = flag.Uint64("export-dpid", 1, "datapath id announced to the collector by -export")
		batchSLO   = flag.Duration("batch-slo", 250*time.Microsecond, "with -export: target batch-seal latency; the exporter adapts its batch size to fill within this budget")
		batchMax   = flag.Int("batch-max", 256, "with -export: upper clamp on the adaptive batch size")
		drainTO    = flag.Duration("drain-timeout", 5*time.Second, "with -export: how long the exit drain waits for unacked batches before abandoning them")

		tenantQuotas = flag.String("tenant-quotas", "", "per-tenant quotas as tenant=maxInstances[:maxQueued], comma-separated; breaches shed that tenant's events into the soundness ledger")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, /violations, /trace, /state, /query, /alerts, /buildinfo, /debug/pprof on this address")
		sampleEvery = flag.Duration("sample-every", time.Second, "with -metrics-addr: cadence of the in-process metrics-history sampler behind /query")
		historySpan = flag.Duration("history", 10*time.Minute, "with -metrics-addr: how far back the metrics-history ring reaches")
		hold        = flag.Duration("hold", 0, "with -metrics-addr: keep serving this long after the run (0 = until SIGINT)")
		jsonOut     = flag.Bool("json", false, "emit violations as one JSON object per line")
		ringSize    = flag.Int("violation-ring", 256, "violation trace records retained for /violations")

		traceSample = flag.Uint64("trace-sample", 0, "stamp every Nth event with end-to-end stage marks (0 = tracing off); completed spans served at /trace")
		traceRing   = flag.Int("trace-ring", 0, "completed tracing spans retained for /trace (0 = default 2048)")

		stateTopK      = flag.Int("state-topk", 32, "heavy-hitter sketch capacity per property for /state top_keys (0 = sketch off)")
		stateSample    = flag.Uint64("state-sample", 8, "sample 1 in N instance filings into the heavy-hitter sketch (1 = every filing)")
		stateWatermark = flag.Int64("state-watermark", 0, "per-property live-instance count that raises the state_pressure warning metric (0 = off)")
	)
	var sloRules slo.RuleList
	flag.Var(&sloRules, "slo", "extra SLO rule as name:series-glob:threshold:fast-window (repeatable; slow window is 10x fast; built-in rules are always evaluated)")
	flag.Parse()

	if *list {
		for _, e := range property.Catalog(property.DefaultParams()) {
			fmt.Printf("%-26s %-18s %s\n", e.Prop.Name, "("+e.Group+")", e.Prop.Description)
		}
		return nil
	}

	spec, err := fault.ParseSpec(*faultSpec)
	if err != nil {
		return err
	}
	if (spec.PanicShard >= 0 || spec.StallShard >= 0) && *shards <= 0 {
		return fmt.Errorf("-fault %s: panic-shard/stall-shard need -shards", spec)
	}
	if spec.NeedsBuffer() && *traceFile == "" {
		return fmt.Errorf("-fault %s: reorder/delay need the buffered -trace path", spec)
	}

	cfg := core.Config{}
	switch *provLevel {
	case "none":
		cfg.Provenance = core.ProvNone
	case "limited":
		cfg.Provenance = core.ProvLimited
	case "full":
		cfg.Provenance = core.ProvFull
	default:
		return fmt.Errorf("unknown provenance level %q", *provLevel)
	}
	switch *mode {
	case "inline":
		cfg.Mode = core.Inline
	case "split":
		cfg.Mode = core.Split
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	// Telemetry: the registry and violation ring exist whenever anything
	// consumes them — the introspection endpoint or the NDJSON stream.
	var (
		reg  *obs.Registry
		ring *obs.Ring
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		ring = obs.NewRing(*ringSize)
	}

	// The tracer exists only when sampling is on; everywhere else a nil
	// *tracer.Tracer is the documented off switch (nil-receiver safe).
	var tr *tracer.Tracer
	if *traceSample > 0 {
		tr = tracer.New(tracer.Config{SampleN: *traceSample, Ring: *traceRing, Metrics: reg})
	}

	sched := sim.NewScheduler()
	violations := 0
	enc := json.NewEncoder(os.Stdout)
	var vmu sync.Mutex // sharded engines report violations from shard goroutines
	cfg.OnViolation = func(v *core.Violation) {
		vmu.Lock()
		defer vmu.Unlock()
		violations++
		if *jsonOut {
			// One object per line: the TraceRecord shape /violations
			// serves, carrying whatever provenance the level retained.
			_ = enc.Encode(v.TraceRecord())
			return
		}
		fmt.Println(v)
	}
	cfg.Metrics = reg
	cfg.Violations = ring
	cfg.Tracer = tr
	cfg.StateTopK = *stateTopK
	cfg.StateSample = *stateSample
	cfg.StateWatermark = *stateWatermark
	if *tenantQuotas != "" {
		quotas, err := core.ParseTenantQuotas(*tenantQuotas)
		if err != nil {
			return err
		}
		cfg.TenantQuotas = quotas
	}

	var mon engine
	if *shards > 0 {
		if cfg.Mode != core.Inline {
			return fmt.Errorf("-shards is incompatible with -mode %s", *mode)
		}
		sm := core.NewShardedMonitor(*shards, cfg)
		defer sm.Close()
		if err := fault.ArmShardFaults(sm, spec); err != nil {
			return err
		}
		mon = &shardedEngine{sm: sm, sched: sched}
	} else {
		mon = &inlineEngine{mon: core.NewMonitor(sched, cfg), sched: sched}
	}

	// The exporter, when -export is set, receives a copy of every event
	// the local engine sees; the collector at the far end evaluates its
	// own properties over the merged streams.
	var exp *exporter.Exporter
	var fed *federation.Router
	// partKey holds the fleet partition key; -partition identity swaps
	// it after the property set is known, before any traffic flows.
	var partKey atomic.Value // func(*core.Event) uint64
	partKey.Store(core.PartitionByDPID)
	feed := mon.HandleEvent
	if *exportAddr != "" && *collectors != "" {
		return fmt.Errorf("-collectors replaces -export; pass one or the other")
	}
	if *exportAddr != "" || *collectors != "" {
		if *batchSLO <= 0 {
			return fmt.Errorf("-batch-slo %v: the seal-latency budget must be positive", *batchSLO)
		}
		if *batchMax < 1 {
			return fmt.Errorf("-batch-max %d: the batch-size clamp must be at least 1", *batchMax)
		}
	}
	switch {
	case *exportAddr != "":
		exp, err = exporter.New(exporter.Config{
			Addr: *exportAddr, DPID: *exportDPID,
			TargetSealLatency: *batchSLO, BatchSizeMax: *batchMax,
			Metrics: reg, Tracer: tr,
			// The collector pushes its property set on lifecycle
			// connections; converge the local engine onto it so switch
			// and collector evaluate the same set.
			OnPropertySet: func(u *wire.PropertySetUpdate) { applyPropertySet(mon, u) },
		})
		if err != nil {
			return err
		}
		exp.Start()
		feed = func(e core.Event) {
			mon.HandleEvent(e)
			exp.Publish(e)
		}
	case *collectors != "":
		var members []federation.Member
		for _, a := range strings.Split(*collectors, ",") {
			if a = strings.TrimSpace(a); a != "" {
				members = append(members, federation.Member{Addr: a})
			}
		}
		fed, err = federation.NewRouter(federation.Config{
			Members: members, DPID: *exportDPID, DrainTimeout: *drainTO,
			PartitionKey: func(e *core.Event) uint64 {
				return partKey.Load().(func(*core.Event) uint64)(e)
			},
			// Every collector endpoint gets its own exporter built from
			// this template: per-route sequence spaces keep the
			// collector-side gap accounting exact across partition moves.
			// The per-route registries stay nil — N routes would collide
			// on the same dpid-labeled series; fleet metrics live on the
			// collectors and the aggregation tier.
			Exporter: exporter.Config{
				TargetSealLatency: *batchSLO, BatchSizeMax: *batchMax,
				OnPropertySet: func(u *wire.PropertySetUpdate) { applyPropertySet(mon, u) },
			},
		})
		if err != nil {
			return err
		}
		fed.Start()
		feed = func(e core.Event) {
			mon.HandleEvent(e)
			fed.Publish(e)
		}
	}

	// The feed injector: drops and duplicates apply online (both paths);
	// reorder/delay apply in the buffered trace path. Every drop lands in
	// the soundness ledger via MarkFeedLoss.
	var inj *fault.Injector
	if !spec.Zero() {
		inj = fault.NewInjector(spec)
		inj.OnDrop = func(e core.Event) { mon.MarkFeedLoss(e.Time, 1, "injected drop (-fault)") }
	}

	var srv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		// Self-monitoring: a history ring samples the registry behind
		// /query, and the SLO engine rides its tick hook behind /alerts.
		hist := histdb.New(histdb.Config{Registry: reg, SampleEvery: *sampleEvery, Retention: *historySpan})
		alerts := slo.New(slo.Config{DB: hist, Rules: append(slo.BuiltinRules(), sloRules...), Registry: reg})
		hist.Start()
		defer hist.Close()
		// /healthz degrades whenever the soundness ledger is non-empty,
		// serving the per-property unsound-since marks as the detail.
		health := func() (bool, any) {
			marks := mon.Ledger()
			return len(marks) == 0, marks
		}
		srv = &http.Server{Handler: export.NewMux(export.MuxConfig{
			Registry: reg, Ring: ring, Health: health, Tracer: tr,
			History: hist, Alerts: alerts,
			State: func() any { return mon.StateReport() },
			Properties: &export.PropertiesConfig{
				List: func() any {
					return struct {
						Epoch      uint64   `json:"epoch"`
						Properties []string `json:"properties"`
					}{mon.Epoch(), mon.Properties()}
				},
				Install: func(src, tenant string) error {
					props, err := dsl.ParseAll(src)
					if err != nil {
						return err
					}
					if len(props) == 0 {
						return fmt.Errorf("no properties in body")
					}
					for _, p := range props {
						p.Tenant = tenant
						if err := mon.AddProperty(p); err != nil {
							return err
						}
					}
					return nil
				},
				Remove: mon.RemoveProperty,
			},
		})}
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", ln.Addr())
	}

	var installed []string
	var installedProps []*property.Property
	if *catalog != "" {
		for _, name := range strings.Split(*catalog, ",") {
			name = strings.TrimSpace(name)
			p := property.CatalogByName(property.DefaultParams(), name)
			if p == nil {
				return fmt.Errorf("unknown catalogue property %q (use -list)", name)
			}
			if err := mon.AddProperty(p); err != nil {
				return err
			}
			installed = append(installed, name)
			installedProps = append(installedProps, p)
		}
	}
	if *propsFile != "" {
		src, err := os.ReadFile(*propsFile)
		if err != nil {
			return err
		}
		props, err := dsl.ParseAll(string(src))
		if err != nil {
			return err
		}
		for _, p := range props {
			if err := mon.AddProperty(p); err != nil {
				return err
			}
			installed = append(installed, p.Name)
			installedProps = append(installedProps, p)
		}
	}

	// With a federated fleet, pin the partition key now that the
	// property set is known: dpid keying is checked against the
	// shardability analysis (a cross-switch property split across
	// collectors can silently miss violations), identity keying is
	// derived from it.
	if fed != nil {
		switch *partition {
		case "dpid":
			if err := core.ValidateDPIDPartition(installedProps); err != nil {
				fmt.Fprintf(os.Stderr, "federation: warning: %v\n", err)
			}
		case "identity":
			f, err := core.IdentityPartitionFunc(installedProps)
			if err != nil {
				return fmt.Errorf("-partition identity: %w", err)
			}
			partKey.Store(func(e *core.Event) uint64 {
				// Unroutable events carry none of the identity fields:
				// no instance can consume them, any route is correct.
				k, _ := f(e)
				return k
			})
		default:
			return fmt.Errorf("unknown -partition %q (dpid or identity)", *partition)
		}
	}

	switch {
	case *demo != "":
		if len(installed) == 0 {
			if err := installDemoDefaults(mon, *demo); err != nil {
				return err
			}
		}
		var rec *trace.Recorder
		if *record != "" {
			rec = &trace.Recorder{}
		}
		handle := feed
		if inj != nil {
			handle = inj.Wrap(handle)
		}
		if err := runDemo(sched, mon, handle, rec, reg, tr, *demo); err != nil {
			return err
		}
		if rec != nil {
			f, err := os.Create(*record)
			if err != nil {
				return err
			}
			if err := trace.WriteAll(f, rec.Events); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("recorded %d events to %s\n", len(rec.Events), *record)
		}
	case *traceFile != "":
		if len(installed) == 0 {
			return fmt.Errorf("no properties installed (use -catalog and/or -props)")
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		events, err := trace.ReadAll(f)
		if err != nil {
			return err
		}
		if inj != nil {
			events = inj.Apply(events)
		}
		// The replay path has no dataplane switch, so spans originate
		// here: the same deterministic sampling decision the dataplane
		// would have made, stamped at the replay boundary as ingress.
		sink := feed
		if tr != nil {
			sink = func(e core.Event) {
				if sp := tr.Sample(e.SwitchID, uint64(e.PacketID), uint8(e.Kind)); sp != nil {
					sp.Stamp(tracer.StageIngress)
					e.Trace = sp
				}
				feed(e)
			}
		}
		trace.Replay(sched, events, sink)
		mon.Drain()
	default:
		return fmt.Errorf("nothing to do: pass -trace, -demo, or -list")
	}

	st := mon.Stats()
	fmt.Printf("\nevents=%d instances_created=%d advanced=%d discharged=%d expired=%d violations=%d\n",
		st.Events, st.Created, st.Advanced, st.Discharged, st.Expired, st.Violations)
	if exp != nil {
		exp.Flush()
		abandoned := exp.Close(*drainTO)
		es := exp.Stats()
		fmt.Printf("export: collector=%s dpid=%d events=%d batches_acked=%d bytes=%d reconnects=%d shed=%d abandoned=%d\n",
			*exportAddr, *exportDPID, es.Published, es.BatchesAcked, es.BytesSent, es.Reconnects, es.ShedEvents, abandoned)
		for _, m := range exp.Ledger().Snapshot() {
			fmt.Printf("  export loss: %-14s since %s lost=%d %s\n",
				m.Reason, m.SinceTime.Format(time.RFC3339), m.Events, m.Detail)
		}
	}
	if fed != nil {
		fed.Flush()
		// Stats are read after Close: the drain is what lands the final
		// acks, so a pre-Close snapshot undercounts batches and bytes.
		abandoned := fed.Close(*drainTO)
		routeStats := fed.RouteStats()
		fs := fed.Stats()
		fmt.Printf("federation: collectors=%d epoch=%d reroutes=%d events=%d replayed=%d batches_acked=%d bytes=%d reconnects=%d shed=%d abandoned=%d\n",
			fs.Routes, fs.Epoch, fs.Reroutes, fs.Published, fs.Replayed, fs.BatchesAcked, fs.BytesSent, fs.Reconnects, fs.ShedEvents, abandoned)
		addrs := make([]string, 0, len(routeStats))
		for addr := range routeStats {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		for _, addr := range addrs {
			es := routeStats[addr]
			fmt.Printf("  route %-21s events=%d batches_acked=%d bytes=%d reconnects=%d shed=%d\n",
				addr, es.Published, es.BatchesAcked, es.BytesSent, es.Reconnects, es.ShedEvents)
		}
		for _, m := range fed.Ledger() {
			fmt.Printf("  export loss: %-14s since %s lost=%d %s\n",
				m.Reason, m.SinceTime.Format(time.RFC3339), m.Events, m.Detail)
		}
	}
	if inj != nil {
		is := inj.Stats()
		fmt.Printf("fault: spec=%s injected dropped=%d duplicated=%d reordered=%d delayed=%d\n",
			spec, is.Dropped, is.Duplicated, is.Reordered, is.Delayed)
	}
	if marks := mon.Ledger(); len(marks) > 0 {
		fmt.Printf("degradation ledger: %d propert%s unsound (shed=%d quarantined=%d)\n",
			len(marks), pluralYIes(len(marks)), st.ShedEvents, st.QuarantinedProperties)
		for _, m := range marks {
			fmt.Printf("  %-26s %-14s since seq=%d (%s) lost=%d %s\n",
				m.Property, m.Reason, m.SinceSeq, m.SinceTime.Format(time.RFC3339), m.Events, m.Detail)
		}
	}

	if srv != nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		if *hold > 0 {
			fmt.Fprintf(os.Stderr, "metrics: holding for %s\n", *hold)
			select {
			case <-time.After(*hold):
			case s := <-sig:
				fmt.Fprintf(os.Stderr, "metrics: %s, draining\n", s)
			}
		} else {
			fmt.Fprintln(os.Stderr, "metrics: run complete, serving until SIGINT/SIGTERM")
			s := <-sig
			fmt.Fprintf(os.Stderr, "metrics: %s, draining\n", s)
		}
		signal.Stop(sig)
		_ = srv.Close()
	}
	return nil
}

// applyPropertySet converges the local engine onto a collector-pushed
// property set: install properties we lack (compiled from the update's
// DSL source), remove properties the collector dropped. Failures are
// logged, not fatal — the engine keeps running on its previous set.
func applyPropertySet(mon engine, u *wire.PropertySetUpdate) {
	want := make(map[string]string, len(u.Props)) // name -> tenant
	for _, pm := range u.Props {
		want[pm.Name] = pm.Tenant
	}
	for _, name := range mon.Properties() {
		if _, ok := want[name]; !ok {
			if err := mon.RemoveProperty(name); err != nil {
				fmt.Fprintf(os.Stderr, "property-set epoch %d: remove %s: %v\n", u.Epoch, name, err)
			}
		}
	}
	if u.Source == "" {
		return
	}
	props, err := dsl.ParseAll(u.Source)
	if err != nil {
		fmt.Fprintf(os.Stderr, "property-set epoch %d: parse source: %v\n", u.Epoch, err)
		return
	}
	have := make(map[string]bool)
	for _, name := range mon.Properties() {
		have[name] = true
	}
	for _, p := range props {
		tenant, wanted := want[p.Name]
		if !wanted || have[p.Name] {
			continue
		}
		p.Tenant = tenant
		if err := mon.AddProperty(p); err != nil {
			fmt.Fprintf(os.Stderr, "property-set epoch %d: install %s: %v\n", u.Epoch, p.Name, err)
		}
	}
}

// installDemoDefaults installs the properties each demo scenario needs.
func installDemoDefaults(mon engine, demo string) error {
	var names []string
	switch demo {
	case "firewall":
		names = []string{"firewall-basic", "firewall-until-close"}
	case "arp":
		names = []string{"arp-proxy-reply", "arp-known-not-forwarded"}
	case "knocking":
		names = []string{"knock-intervening", "knock-valid-sequence"}
	default:
		return fmt.Errorf("unknown demo %q (want firewall, arp, knocking)", demo)
	}
	for _, n := range names {
		if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), n)); err != nil {
			return err
		}
	}
	return nil
}

// pluralYIes picks the y/ies suffix for "property"/"properties".
func pluralYIes(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}

// runDemo executes a built-in faulty scenario against the monitor,
// optionally recording the event stream and registering the demo
// switch's dataplane counters. handle is the event sink — usually
// mon.HandleEvent, possibly wrapped by a fault injector.
func runDemo(sched *sim.Scheduler, mon engine, handle func(core.Event), rec *trace.Recorder, reg *obs.Registry, tr *tracer.Tracer, demo string) error {
	macA := packet.MustMAC("02:00:00:00:00:0a")
	macB := packet.MustMAC("02:00:00:00:00:0b")
	ipA := packet.MustIPv4("10.0.0.1")
	ipB := packet.MustIPv4("203.0.113.9")

	sw := dataplane.New("demo", sched, 2)
	sw.SetMetrics(reg)
	sw.SetTracer(tr)
	for i := 1; i <= 4; i++ {
		sw.AddPort(dataplane.PortNo(i), nil)
	}
	if rec != nil {
		sw.Observe(rec.Observe)
	}
	sw.Observe(handle)

	switch demo {
	case "firewall":
		apps.NewFirewall(sw, 1, 2, time.Minute, apps.FirewallFaults{DropValidReturnEvery: 3})
		for i := 0; i < 9; i++ {
			sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, uint16(30000+i), 80, packet.FlagSYN, nil))
			sw.Inject(2, packet.NewTCP(macB, macA, ipB, ipA, 80, uint16(30000+i), packet.FlagSYN|packet.FlagACK, nil))
		}
	case "arp":
		apps.NewARPProxy(sw, apps.ARPProxyFaults{NeverReply: true})
		sw.Inject(3, packet.NewARPReply(macA, ipA, macB, ipB))
		sw.Inject(4, packet.NewARPRequest(macB, ipB, ipA))
		sched.RunFor(5 * time.Second)
	case "knocking":
		apps.NewPortKnocking(sw, []uint16{7001, 7002, 7003}, 22, 2, apps.KnockFaults{IgnoreWrongGuess: true})
		for _, port := range []uint16{7001, 9999, 7002, 7003} {
			sw.Inject(1, packet.NewUDP(macA, macB, ipA, ipB, 30000, port, nil))
		}
		sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, 30001, 22, packet.FlagSYN, nil))
	default:
		return fmt.Errorf("unknown demo %q", demo)
	}
	mon.Flush()
	return nil
}
