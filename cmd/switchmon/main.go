// Command switchmon runs the stateful property monitor over an event
// trace (see internal/trace for the format) or over a built-in demo
// scenario, reporting every violation.
//
// Usage:
//
//	switchmon -trace events.trc -catalog firewall-basic,nat-reverse
//	switchmon -trace events.trc -props my.properties
//	switchmon -demo firewall
//	switchmon -demo firewall -metrics-addr :9090
//	switchmon -list
//
// Properties come from the built-in catalogue (-catalog, comma-separated
// names) and/or a DSL file (-props). The monitor's provenance level and
// processing mode are configurable.
//
// With -metrics-addr the process serves a live introspection endpoint
// (/metrics in Prometheus text or ?format=json, /healthz, /violations
// with full provenance traces, /debug/pprof) and stays up after the
// run: until SIGINT by default, or for -hold duration. With -json,
// violations stream to stdout as one JSON object per line instead of
// the human-readable rendering.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"switchmon/internal/apps"
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/dsl"
	"switchmon/internal/obs"
	"switchmon/internal/obs/export"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "switchmon:", err)
		os.Exit(1)
	}
}

// engine abstracts the driving loop over the inline Monitor and the
// sharded multi-core engine: install properties, feed events, settle,
// read aggregate stats.
type engine interface {
	AddProperty(p *property.Property) error
	HandleEvent(e core.Event)
	// Flush settles everything fed so far (split-mode queue, shard
	// channels) without advancing time.
	Flush()
	// Drain flushes and then advances the clock an hour past the last
	// event, firing outstanding deadline monitors.
	Drain()
	Stats() core.Stats
}

// inlineEngine drives a single-threaded Monitor on the shared scheduler.
type inlineEngine struct {
	mon   *core.Monitor
	sched *sim.Scheduler
}

func (ie *inlineEngine) AddProperty(p *property.Property) error { return ie.mon.AddProperty(p) }
func (ie *inlineEngine) HandleEvent(e core.Event)               { ie.mon.HandleEvent(e) }
func (ie *inlineEngine) Flush()                                 { ie.mon.Flush() }
func (ie *inlineEngine) Drain() {
	ie.mon.Flush()
	ie.sched.RunFor(time.Hour)
}
func (ie *inlineEngine) Stats() core.Stats { return ie.mon.Stats() }

// shardedEngine drives a ShardedMonitor, keeping shard clocks tracking
// the event stream with non-blocking Ticks (the backend-adapter idiom).
// Flush additionally pulls shard clocks up to the shared scheduler's
// now, so demo scenarios that RunFor past the last event still fire the
// monitor-side deadlines an inline engine would have fired.
type shardedEngine struct {
	sm    *core.ShardedMonitor
	sched *sim.Scheduler
	last  time.Time
}

func (se *shardedEngine) AddProperty(p *property.Property) error { return se.sm.AddProperty(p) }
func (se *shardedEngine) HandleEvent(e core.Event) {
	if e.Time.After(se.last) {
		se.sm.Tick(e.Time)
		se.last = e.Time
	}
	se.sm.Submit(e)
}
func (se *shardedEngine) Flush() {
	if now := se.sched.Now(); now.After(se.last) {
		se.last = now
	}
	se.sm.AdvanceTo(se.last)
}
func (se *shardedEngine) Drain() {
	se.Flush()
	se.sm.AdvanceTo(se.last.Add(time.Hour))
}
func (se *shardedEngine) Stats() core.Stats { return se.sm.Stats() }

func run() error {
	var (
		traceFile = flag.String("trace", "", "event trace file to replay")
		propsFile = flag.String("props", "", "DSL file with property definitions")
		catalog   = flag.String("catalog", "", "comma-separated built-in property names")
		demo      = flag.String("demo", "", "run a built-in scenario: firewall, arp, knocking")
		record    = flag.String("record", "", "record the demo's event stream to this trace file")
		provLevel = flag.String("provenance", "limited", "provenance level: none, limited, full")
		mode      = flag.String("mode", "inline", "processing mode: inline, split")
		shards    = flag.Int("shards", 0, "run the sharded multi-core engine with this many shards (0 = single engine)")
		list      = flag.Bool("list", false, "list built-in catalogue properties and exit")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, /violations, /debug/pprof on this address")
		hold        = flag.Duration("hold", 0, "with -metrics-addr: keep serving this long after the run (0 = until SIGINT)")
		jsonOut     = flag.Bool("json", false, "emit violations as one JSON object per line")
		ringSize    = flag.Int("violation-ring", 256, "violation trace records retained for /violations")
	)
	flag.Parse()

	if *list {
		for _, e := range property.Catalog(property.DefaultParams()) {
			fmt.Printf("%-26s %-18s %s\n", e.Prop.Name, "("+e.Group+")", e.Prop.Description)
		}
		return nil
	}

	cfg := core.Config{}
	switch *provLevel {
	case "none":
		cfg.Provenance = core.ProvNone
	case "limited":
		cfg.Provenance = core.ProvLimited
	case "full":
		cfg.Provenance = core.ProvFull
	default:
		return fmt.Errorf("unknown provenance level %q", *provLevel)
	}
	switch *mode {
	case "inline":
		cfg.Mode = core.Inline
	case "split":
		cfg.Mode = core.Split
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	// Telemetry: the registry and violation ring exist whenever anything
	// consumes them — the introspection endpoint or the NDJSON stream.
	var (
		reg  *obs.Registry
		ring *obs.Ring
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		ring = obs.NewRing(*ringSize)
	}

	sched := sim.NewScheduler()
	violations := 0
	enc := json.NewEncoder(os.Stdout)
	var vmu sync.Mutex // sharded engines report violations from shard goroutines
	cfg.OnViolation = func(v *core.Violation) {
		vmu.Lock()
		defer vmu.Unlock()
		violations++
		if *jsonOut {
			// One object per line: the TraceRecord shape /violations
			// serves, carrying whatever provenance the level retained.
			_ = enc.Encode(v.TraceRecord())
			return
		}
		fmt.Println(v)
	}
	cfg.Metrics = reg
	cfg.Violations = ring

	var mon engine
	if *shards > 0 {
		if cfg.Mode != core.Inline {
			return fmt.Errorf("-shards is incompatible with -mode %s", *mode)
		}
		sm := core.NewShardedMonitor(*shards, cfg)
		defer sm.Close()
		mon = &shardedEngine{sm: sm, sched: sched}
	} else {
		mon = &inlineEngine{mon: core.NewMonitor(sched, cfg), sched: sched}
	}

	var srv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		srv = &http.Server{Handler: export.NewMux(reg, ring)}
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", ln.Addr())
	}

	var installed []string
	if *catalog != "" {
		for _, name := range strings.Split(*catalog, ",") {
			name = strings.TrimSpace(name)
			p := property.CatalogByName(property.DefaultParams(), name)
			if p == nil {
				return fmt.Errorf("unknown catalogue property %q (use -list)", name)
			}
			if err := mon.AddProperty(p); err != nil {
				return err
			}
			installed = append(installed, name)
		}
	}
	if *propsFile != "" {
		src, err := os.ReadFile(*propsFile)
		if err != nil {
			return err
		}
		props, err := dsl.ParseAll(string(src))
		if err != nil {
			return err
		}
		for _, p := range props {
			if err := mon.AddProperty(p); err != nil {
				return err
			}
			installed = append(installed, p.Name)
		}
	}

	switch {
	case *demo != "":
		if len(installed) == 0 {
			if err := installDemoDefaults(mon, *demo); err != nil {
				return err
			}
		}
		var rec *trace.Recorder
		if *record != "" {
			rec = &trace.Recorder{}
		}
		if err := runDemo(sched, mon, rec, reg, *demo); err != nil {
			return err
		}
		if rec != nil {
			f, err := os.Create(*record)
			if err != nil {
				return err
			}
			if err := trace.WriteAll(f, rec.Events); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("recorded %d events to %s\n", len(rec.Events), *record)
		}
	case *traceFile != "":
		if len(installed) == 0 {
			return fmt.Errorf("no properties installed (use -catalog and/or -props)")
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		events, err := trace.ReadAll(f)
		if err != nil {
			return err
		}
		trace.Replay(sched, events, mon.HandleEvent)
		mon.Drain()
	default:
		return fmt.Errorf("nothing to do: pass -trace, -demo, or -list")
	}

	st := mon.Stats()
	fmt.Printf("\nevents=%d instances_created=%d advanced=%d discharged=%d expired=%d violations=%d\n",
		st.Events, st.Created, st.Advanced, st.Discharged, st.Expired, st.Violations)

	if srv != nil {
		if *hold > 0 {
			fmt.Fprintf(os.Stderr, "metrics: holding for %s\n", *hold)
			time.Sleep(*hold)
		} else {
			fmt.Fprintln(os.Stderr, "metrics: run complete, serving until SIGINT")
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt)
			<-sig
		}
		_ = srv.Close()
	}
	return nil
}

// installDemoDefaults installs the properties each demo scenario needs.
func installDemoDefaults(mon engine, demo string) error {
	var names []string
	switch demo {
	case "firewall":
		names = []string{"firewall-basic", "firewall-until-close"}
	case "arp":
		names = []string{"arp-proxy-reply", "arp-known-not-forwarded"}
	case "knocking":
		names = []string{"knock-intervening", "knock-valid-sequence"}
	default:
		return fmt.Errorf("unknown demo %q (want firewall, arp, knocking)", demo)
	}
	for _, n := range names {
		if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), n)); err != nil {
			return err
		}
	}
	return nil
}

// runDemo executes a built-in faulty scenario against the monitor,
// optionally recording the event stream and registering the demo
// switch's dataplane counters.
func runDemo(sched *sim.Scheduler, mon engine, rec *trace.Recorder, reg *obs.Registry, demo string) error {
	macA := packet.MustMAC("02:00:00:00:00:0a")
	macB := packet.MustMAC("02:00:00:00:00:0b")
	ipA := packet.MustIPv4("10.0.0.1")
	ipB := packet.MustIPv4("203.0.113.9")

	sw := dataplane.New("demo", sched, 2)
	sw.SetMetrics(reg)
	for i := 1; i <= 4; i++ {
		sw.AddPort(dataplane.PortNo(i), nil)
	}
	if rec != nil {
		sw.Observe(rec.Observe)
	}
	sw.Observe(mon.HandleEvent)

	switch demo {
	case "firewall":
		apps.NewFirewall(sw, 1, 2, time.Minute, apps.FirewallFaults{DropValidReturnEvery: 3})
		for i := 0; i < 9; i++ {
			sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, uint16(30000+i), 80, packet.FlagSYN, nil))
			sw.Inject(2, packet.NewTCP(macB, macA, ipB, ipA, 80, uint16(30000+i), packet.FlagSYN|packet.FlagACK, nil))
		}
	case "arp":
		apps.NewARPProxy(sw, apps.ARPProxyFaults{NeverReply: true})
		sw.Inject(3, packet.NewARPReply(macA, ipA, macB, ipB))
		sw.Inject(4, packet.NewARPRequest(macB, ipB, ipA))
		sched.RunFor(5 * time.Second)
	case "knocking":
		apps.NewPortKnocking(sw, []uint16{7001, 7002, 7003}, 22, 2, apps.KnockFaults{IgnoreWrongGuess: true})
		for _, port := range []uint16{7001, 9999, 7002, 7003} {
			sw.Inject(1, packet.NewUDP(macA, macB, ipA, ipB, 30000, port, nil))
		}
		sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, 30001, 22, packet.FlagSYN, nil))
	default:
		return fmt.Errorf("unknown demo %q", demo)
	}
	mon.Flush()
	return nil
}
