// Command switchmon runs the stateful property monitor over an event
// trace (see internal/trace for the format) or over a built-in demo
// scenario, reporting every violation.
//
// Usage:
//
//	switchmon -trace events.trc -catalog firewall-basic,nat-reverse
//	switchmon -trace events.trc -props my.properties
//	switchmon -demo firewall
//	switchmon -list
//
// Properties come from the built-in catalogue (-catalog, comma-separated
// names) and/or a DSL file (-props). The monitor's provenance level and
// processing mode are configurable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"switchmon/internal/apps"
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/dsl"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "switchmon:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		traceFile = flag.String("trace", "", "event trace file to replay")
		propsFile = flag.String("props", "", "DSL file with property definitions")
		catalog   = flag.String("catalog", "", "comma-separated built-in property names")
		demo      = flag.String("demo", "", "run a built-in scenario: firewall, arp, knocking")
		record    = flag.String("record", "", "record the demo's event stream to this trace file")
		provLevel = flag.String("provenance", "limited", "provenance level: none, limited, full")
		mode      = flag.String("mode", "inline", "processing mode: inline, split")
		list      = flag.Bool("list", false, "list built-in catalogue properties and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range property.Catalog(property.DefaultParams()) {
			fmt.Printf("%-26s %-18s %s\n", e.Prop.Name, "("+e.Group+")", e.Prop.Description)
		}
		return nil
	}

	cfg := core.Config{}
	switch *provLevel {
	case "none":
		cfg.Provenance = core.ProvNone
	case "limited":
		cfg.Provenance = core.ProvLimited
	case "full":
		cfg.Provenance = core.ProvFull
	default:
		return fmt.Errorf("unknown provenance level %q", *provLevel)
	}
	switch *mode {
	case "inline":
		cfg.Mode = core.Inline
	case "split":
		cfg.Mode = core.Split
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	sched := sim.NewScheduler()
	violations := 0
	cfg.OnViolation = func(v *core.Violation) {
		violations++
		fmt.Println(v)
	}
	mon := core.NewMonitor(sched, cfg)

	var installed []string
	if *catalog != "" {
		for _, name := range strings.Split(*catalog, ",") {
			name = strings.TrimSpace(name)
			p := property.CatalogByName(property.DefaultParams(), name)
			if p == nil {
				return fmt.Errorf("unknown catalogue property %q (use -list)", name)
			}
			if err := mon.AddProperty(p); err != nil {
				return err
			}
			installed = append(installed, name)
		}
	}
	if *propsFile != "" {
		src, err := os.ReadFile(*propsFile)
		if err != nil {
			return err
		}
		props, err := dsl.ParseAll(string(src))
		if err != nil {
			return err
		}
		for _, p := range props {
			if err := mon.AddProperty(p); err != nil {
				return err
			}
			installed = append(installed, p.Name)
		}
	}

	switch {
	case *demo != "":
		if len(installed) == 0 {
			if err := installDemoDefaults(mon, *demo); err != nil {
				return err
			}
		}
		var rec *trace.Recorder
		if *record != "" {
			rec = &trace.Recorder{}
		}
		if err := runDemo(sched, mon, rec, *demo); err != nil {
			return err
		}
		if rec != nil {
			f, err := os.Create(*record)
			if err != nil {
				return err
			}
			if err := trace.WriteAll(f, rec.Events); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("recorded %d events to %s\n", len(rec.Events), *record)
		}
	case *traceFile != "":
		if len(installed) == 0 {
			return fmt.Errorf("no properties installed (use -catalog and/or -props)")
		}
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		events, err := trace.ReadAll(f)
		if err != nil {
			return err
		}
		trace.Replay(sched, events, mon.HandleEvent)
		mon.Flush()
		sched.RunFor(time.Hour) // drain outstanding deadlines
	default:
		return fmt.Errorf("nothing to do: pass -trace, -demo, or -list")
	}

	st := mon.Stats()
	fmt.Printf("\nevents=%d instances_created=%d advanced=%d discharged=%d expired=%d violations=%d\n",
		st.Events, st.Created, st.Advanced, st.Discharged, st.Expired, st.Violations)
	return nil
}

// installDemoDefaults installs the properties each demo scenario needs.
func installDemoDefaults(mon *core.Monitor, demo string) error {
	var names []string
	switch demo {
	case "firewall":
		names = []string{"firewall-basic", "firewall-until-close"}
	case "arp":
		names = []string{"arp-proxy-reply", "arp-known-not-forwarded"}
	case "knocking":
		names = []string{"knock-intervening", "knock-valid-sequence"}
	default:
		return fmt.Errorf("unknown demo %q (want firewall, arp, knocking)", demo)
	}
	for _, n := range names {
		if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), n)); err != nil {
			return err
		}
	}
	return nil
}

// runDemo executes a built-in faulty scenario against the monitor,
// optionally recording the event stream.
func runDemo(sched *sim.Scheduler, mon *core.Monitor, rec *trace.Recorder, demo string) error {
	macA := packet.MustMAC("02:00:00:00:00:0a")
	macB := packet.MustMAC("02:00:00:00:00:0b")
	ipA := packet.MustIPv4("10.0.0.1")
	ipB := packet.MustIPv4("203.0.113.9")

	sw := dataplane.New("demo", sched, 2)
	for i := 1; i <= 4; i++ {
		sw.AddPort(dataplane.PortNo(i), nil)
	}
	if rec != nil {
		sw.Observe(rec.Observe)
	}
	sw.Observe(mon.HandleEvent)

	switch demo {
	case "firewall":
		apps.NewFirewall(sw, 1, 2, time.Minute, apps.FirewallFaults{DropValidReturnEvery: 3})
		for i := 0; i < 9; i++ {
			sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, uint16(30000+i), 80, packet.FlagSYN, nil))
			sw.Inject(2, packet.NewTCP(macB, macA, ipB, ipA, 80, uint16(30000+i), packet.FlagSYN|packet.FlagACK, nil))
		}
	case "arp":
		apps.NewARPProxy(sw, apps.ARPProxyFaults{NeverReply: true})
		sw.Inject(3, packet.NewARPReply(macA, ipA, macB, ipB))
		sw.Inject(4, packet.NewARPRequest(macB, ipB, ipA))
		sched.RunFor(5 * time.Second)
	case "knocking":
		apps.NewPortKnocking(sw, []uint16{7001, 7002, 7003}, 22, 2, apps.KnockFaults{IgnoreWrongGuess: true})
		for _, port := range []uint16{7001, 9999, 7002, 7003} {
			sw.Inject(1, packet.NewUDP(macA, macB, ipA, ipB, 30000, port, nil))
		}
		sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, 30001, 22, packet.FlagSYN, nil))
	default:
		return fmt.Errorf("unknown demo %q", demo)
	}
	mon.Flush()
	return nil
}
