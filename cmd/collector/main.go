// Command collector is the central half of the distributed monitoring
// fabric: a TCP server that accepts switch-side exporters (switchmon
// -export, internal/exporter), merges their per-datapath event streams
// with sequence-gap and replay accounting, and evaluates properties
// centrally on the sharded engine. This is the deployment split the
// paper's Sec. 3.2 sketches — switches keep a sequencer and a bounded
// queue, the stateful monitor runs here — with the soundness discipline
// carried over the wire: every lost event becomes a per-property
// wire-loss mark, never a silently wrong verdict.
//
// Usage:
//
//	collector -listen :9190 -catalog firewall-basic
//	collector -listen :9190 -props net.properties -shards 8 -metrics-addr :9090
//
// The process serves until SIGINT, printing violations as they fire
// (or as NDJSON with -json), then prints an exit report: engine stats,
// per-datapath wire accounting, and the degradation ledger.
//
// Batching is negotiated switch-side: exporters seal adaptively
// against a latency SLO (switchmon -export defaults: -batch-slo 250µs,
// -batch-max 256), so the collector sees per-event frames under
// trickle traffic and full batches under bursts. The pooled ingest
// path here decodes either shape without per-event allocation.
//
// With -metrics-addr the collector also serves POST/DELETE /properties
// for live install/remove; every change is fenced across the sharded
// engine and pushed to connected lifecycle-capable exporters as a
// PropertySetUpdate frame, so switch and collector converge on one
// property set. On SIGINT/SIGTERM the collector drains: it waits up to
// -drain-timeout for in-flight exporter batches to quiesce before
// closing, then prints the exit soundness report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"switchmon/internal/collector"
	"switchmon/internal/core"
	"switchmon/internal/dsl"
	"switchmon/internal/federation"
	"switchmon/internal/obs"
	"switchmon/internal/obs/export"
	"switchmon/internal/obs/histdb"
	"switchmon/internal/obs/slo"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/property"
	"switchmon/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "collector:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", ":9190", "TCP address to accept exporter connections on")
		propsFile = flag.String("props", "", "DSL file with property definitions")
		catalog   = flag.String("catalog", "", "comma-separated built-in property names (switchmon -list)")
		provLevel = flag.String("provenance", "limited", "provenance level: none, limited, full")
		shards    = flag.Int("shards", 4, "shard count for the central engine")
		hold      = flag.Duration("hold", 0, "serve this long, then exit (0 = until SIGINT/SIGTERM)")
		drainTO   = flag.Duration("drain-timeout", 5*time.Second, "after SIGINT/SIGTERM: how long to wait for in-flight exporter batches to quiesce before closing")

		tenantQuotas = flag.String("tenant-quotas", "", "per-tenant quotas as tenant=maxInstances[:maxQueued], comma-separated; breaches shed that tenant's events into the soundness ledger")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, /violations, /trace, /state, /query, /alerts, /buildinfo, /debug/pprof on this address")
		sampleEvery = flag.Duration("sample-every", time.Second, "with -metrics-addr: cadence of the in-process metrics-history sampler behind /query")
		historySpan = flag.Duration("history", 10*time.Minute, "with -metrics-addr: how far back the metrics-history ring reaches")
		jsonOut     = flag.Bool("json", false, "emit violations as one JSON object per line")
		ringSize    = flag.Int("violation-ring", 256, "violation trace records retained for /violations")

		traceSample = flag.Uint64("trace-sample", 0, "negotiate end-to-end tracing with exporters and sample every Nth event of untraced streams (0 = off); completed spans served at /trace")
		traceRing   = flag.Int("trace-ring", 0, "completed tracing spans retained for /trace (0 = default 2048)")

		aggregate = flag.String("aggregate", "", "fleet aggregation-tier base URL; /properties admin ops are forwarded there so install/remove on this collector applies fleet-wide in one order")

		stateTopK      = flag.Int("state-topk", 32, "heavy-hitter sketch capacity per property for /state top_keys (0 = sketch off)")
		stateSample    = flag.Uint64("state-sample", 8, "sample 1 in N instance filings into the heavy-hitter sketch (1 = every filing)")
		stateWatermark = flag.Int64("state-watermark", 0, "per-property live-instance count that raises the state_pressure warning metric (0 = off)")
	)
	var sloRules slo.RuleList
	flag.Var(&sloRules, "slo", "extra SLO rule as name:series-glob:threshold:fast-window (repeatable; slow window is 10x fast; built-in rules are always evaluated)")
	flag.Parse()

	cfg := core.Config{}
	switch *provLevel {
	case "none":
		cfg.Provenance = core.ProvNone
	case "limited":
		cfg.Provenance = core.ProvLimited
	case "full":
		cfg.Provenance = core.ProvFull
	default:
		return fmt.Errorf("unknown provenance level %q", *provLevel)
	}
	if *shards <= 0 {
		return fmt.Errorf("-shards must be positive")
	}

	var (
		reg  *obs.Registry
		ring *obs.Ring
	)
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		ring = obs.NewRing(*ringSize)
	}

	// Nil tracer = tracing off everywhere downstream (nil-receiver safe).
	var tr *tracer.Tracer
	if *traceSample > 0 {
		tr = tracer.New(tracer.Config{SampleN: *traceSample, Ring: *traceRing, Metrics: reg})
	}

	enc := json.NewEncoder(os.Stdout)
	var vmu sync.Mutex // shard goroutines report concurrently
	violations := 0
	cfg.OnViolation = func(v *core.Violation) {
		vmu.Lock()
		defer vmu.Unlock()
		violations++
		if *jsonOut {
			_ = enc.Encode(v.TraceRecord())
			return
		}
		fmt.Println(v)
	}
	cfg.Metrics = reg
	cfg.Violations = ring
	cfg.Tracer = tr
	cfg.StateTopK = *stateTopK
	cfg.StateSample = *stateSample
	cfg.StateWatermark = *stateWatermark
	if *tenantQuotas != "" {
		quotas, err := core.ParseTenantQuotas(*tenantQuotas)
		if err != nil {
			return err
		}
		cfg.TenantQuotas = quotas
	}

	sm := core.NewShardedMonitor(*shards, cfg)
	defer sm.Close()

	// propObjs keeps the installed property objects so lifecycle pushes
	// can carry the full DSL source (dsl.FormatAll round-trips) — the
	// engine itself only hands back names.
	var propMu sync.Mutex
	propObjs := map[string]*property.Property{}
	install := func(p *property.Property) error {
		if err := sm.AddProperty(p); err != nil {
			return err
		}
		propMu.Lock()
		propObjs[p.Name] = p
		propMu.Unlock()
		return nil
	}

	installed := 0
	if *catalog != "" {
		for _, name := range strings.Split(*catalog, ",") {
			name = strings.TrimSpace(name)
			p := property.CatalogByName(property.DefaultParams(), name)
			if p == nil {
				return fmt.Errorf("unknown catalogue property %q (use switchmon -list)", name)
			}
			if err := install(p); err != nil {
				return err
			}
			installed++
		}
	}
	if *propsFile != "" {
		src, err := os.ReadFile(*propsFile)
		if err != nil {
			return err
		}
		props, err := dsl.ParseAll(string(src))
		if err != nil {
			return err
		}
		for _, p := range props {
			if err := install(p); err != nil {
				return err
			}
			installed++
		}
	}
	if installed == 0 && *metricsAddr == "" {
		return fmt.Errorf("no properties installed (use -catalog and/or -props, or -metrics-addr for live POST /properties)")
	}

	col, err := collector.New(collector.Config{Addr: *listen, Metrics: reg, Tracer: tr}, sm)
	if err != nil {
		return err
	}
	col.Serve()
	fmt.Fprintf(os.Stderr, "collector: accepting exporters on %s (%d properties, %d shards)\n",
		col.Addr(), installed, *shards)

	// broadcast pushes the current property set (epoch, names, tenants,
	// and the full DSL source) to every lifecycle-capable exporter; the
	// collector retains it for exporters that connect later.
	broadcast := func() {
		propMu.Lock()
		u := &wire.PropertySetUpdate{Epoch: sm.Epoch(), Source: ""}
		ordered := make([]*property.Property, 0, len(propObjs))
		for _, name := range sm.Properties() {
			p := propObjs[name]
			if p == nil {
				continue
			}
			ordered = append(ordered, p)
			u.Props = append(u.Props, wire.PropMeta{Name: p.Name, Tenant: p.Tenant})
		}
		u.Source = dsl.FormatAll(ordered)
		propMu.Unlock()
		if err := col.BroadcastPropertySet(u); err != nil {
			fmt.Fprintf(os.Stderr, "collector: property-set push: %v\n", err)
		}
	}
	broadcast()

	var srv *http.Server
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		// Self-monitoring: a history ring samples the registry behind
		// /query, and the SLO engine rides its tick hook behind /alerts.
		hist := histdb.New(histdb.Config{Registry: reg, SampleEvery: *sampleEvery, Retention: *historySpan})
		alerts := slo.New(slo.Config{DB: hist, Rules: append(slo.BuiltinRules(), sloRules...), Registry: reg})
		hist.Start()
		defer hist.Close()
		health := func() (bool, any) {
			marks := sm.Ledger().Snapshot()
			return len(marks) == 0, marks
		}
		installLocal := func(src, tenant string) error {
			props, err := dsl.ParseAll(src)
			if err != nil {
				return err
			}
			if len(props) == 0 {
				return fmt.Errorf("no properties in body")
			}
			for _, p := range props {
				p.Tenant = tenant
				if err := install(p); err != nil {
					return err
				}
			}
			broadcast()
			return nil
		}
		removeLocal := func(name string) error {
			if err := sm.RemoveProperty(name); err != nil {
				return err
			}
			propMu.Lock()
			delete(propObjs, name)
			propMu.Unlock()
			broadcast()
			return nil
		}
		// With -aggregate, public admin ops route through the
		// aggregation tier so they apply on every fleet member in one
		// serialized order; the tier applies them back here through the
		// local-only /fleet/properties endpoint.
		installPublic, removePublic := installLocal, removeLocal
		if *aggregate != "" {
			installPublic = func(src, tenant string) error {
				return forwardInstall(*aggregate, src, tenant)
			}
			removePublic = func(name string) error {
				return forwardRemove(*aggregate, name)
			}
		}
		mux := export.NewMux(export.MuxConfig{
			Registry: reg, Ring: ring, Health: health, Tracer: tr,
			History: hist, Alerts: alerts,
			State: func() any { return sm.StateReport() },
			Properties: &export.PropertiesConfig{
				List: func() any {
					return struct {
						Epoch      uint64   `json:"epoch"`
						Properties []string `json:"properties"`
					}{sm.Epoch(), sm.Properties()}
				},
				Install: installPublic,
				Remove:  removePublic,
			},
		})
		federation.RegisterMemberEndpoints(mux, federation.MemberEndpoints{
			BroadcastFleet: col.BroadcastFleetConfig,
			InstallLocal:   installLocal,
			RemoveLocal:    removeLocal,
		})
		srv = &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *hold > 0 {
		select {
		case <-time.After(*hold):
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "collector: %s, draining\n", s)
		}
	} else {
		s := <-sig
		fmt.Fprintf(os.Stderr, "collector: %s, draining\n", s)
	}
	signal.Stop(sig)

	// Graceful drain: connected exporters keep shipping until their
	// queues empty; wait for ingest to quiesce (two consecutive idle
	// polls) or the -drain-timeout deadline, whichever first.
	deadline := time.Now().Add(*drainTO)
	prev := col.Stats()
	idle := 0
	for time.Now().Before(deadline) && idle < 2 {
		time.Sleep(50 * time.Millisecond)
		cur := col.Stats()
		if cur.Batches == prev.Batches && cur.Events == prev.Events {
			idle++
		} else {
			idle = 0
		}
		prev = cur
	}
	col.Close()
	if srv != nil {
		_ = srv.Close()
	}

	// Fire deadline monitors still pending at shutdown before reporting.
	sm.Drain()
	st := sm.Stats()
	cs := col.Stats()
	fmt.Printf("\nevents=%d instances_created=%d advanced=%d discharged=%d expired=%d violations=%d\n",
		st.Events, st.Created, st.Advanced, st.Discharged, st.Expired, st.Violations)
	fmt.Printf("wire: datapaths=%d batches=%d events=%d bytes=%d gaps=%d deduped=%d reconnects=%d\n",
		cs.Datapaths, cs.Batches, cs.Events, cs.Bytes, cs.GapEvents, cs.Deduped, cs.Reconnects)
	if marks := sm.Ledger().Snapshot(); len(marks) > 0 {
		fmt.Printf("degradation ledger: %d unsound\n", len(marks))
		for _, m := range marks {
			fmt.Printf("  %-26s %-14s since %s lost=%d %s\n",
				m.Property, m.Reason, m.SinceTime.Format(time.RFC3339), m.Events, m.Detail)
		}
	}
	return nil
}

// forwardInstall relays a property install to the aggregation tier,
// which fans it out to every fleet member (including this one) in the
// single fleet-wide lifecycle order.
func forwardInstall(aggURL, src, tenant string) error {
	u := strings.TrimRight(aggURL, "/") + "/properties"
	if tenant != "" {
		u += "?tenant=" + url.QueryEscape(tenant)
	}
	resp, err := http.Post(u, "text/plain", strings.NewReader(src))
	if err != nil {
		return fmt.Errorf("aggregate forward: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("aggregate forward: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// forwardRemove relays a property remove to the aggregation tier.
func forwardRemove(aggURL, name string) error {
	u := strings.TrimRight(aggURL, "/") + "/properties?name=" + url.QueryEscape(name)
	req, err := http.NewRequest(http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("aggregate forward: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("aggregate forward: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}
