// Command tables regenerates the paper's Table 1 (property × required
// features, derived by analyzing the executable property catalogue) and
// Table 2 (approach × semantic feature, derived by probing each backend
// with witness properties).
//
// Usage:
//
//	tables [-table all|1|2] [-paper]
package main

import (
	"flag"
	"fmt"
	"os"

	"switchmon/internal/property"
	"switchmon/internal/tables"
)

func main() {
	table := flag.String("table", "all", "which table to print: all, 1, or 2")
	paper := flag.Bool("paper", true, "also print the paper's cells and the agreement report (table 1)")
	flag.Parse()

	switch *table {
	case "1":
		fmt.Print(tables.RenderTable1(property.DefaultParams(), *paper))
	case "2":
		fmt.Print(tables.RenderTable2())
	case "all":
		fmt.Print(tables.RenderTable1(property.DefaultParams(), *paper))
		fmt.Println()
		fmt.Print(tables.RenderTable2())
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown -table %q (want all, 1, or 2)\n", *table)
		os.Exit(2)
	}
}
