// Command fleetagg is the aggregation tier of a federated collector
// fleet: it merges per-collector metrics, health, state reports, and
// violation streams into fleet-wide endpoints, serializes property
// lifecycle operations into one fleet-wide order, and drives fleet
// membership changes by pushing feature-negotiated FleetConfig frames
// through the member collectors to every connected exporter.
//
// Usage:
//
//	fleetagg -listen :9090 -members 127.0.0.1:9190=http://127.0.0.1:9091,127.0.0.1:9290=http://127.0.0.1:9291
//
// Each -members entry is exporterAddr=adminURL[=weight]: the TCP
// address switches dial (what appears in FleetConfig frames and the
// routers' consistent-hash ring) and the collector's -metrics-addr
// base URL the aggregator scrapes and administers. The process holds
// no monitoring state — every answer is composed from live member
// scrapes — so it can restart at any time.
//
// Endpoints: /metrics (summed switchmon_fleet_* namespace), /healthz,
// /state, /violations, /properties (GET/POST/DELETE, fleet-wide), and
// /fleet (GET membership, POST a new member set).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"switchmon/internal/federation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetagg:", err)
		os.Exit(1)
	}
}

func parseMembers(spec string) ([]federation.AggMember, error) {
	var out []federation.AggMember
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, "=", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("member %q: want exporterAddr=adminURL[=weight]", entry)
		}
		m := federation.AggMember{Addr: parts[0], Admin: parts[1]}
		if len(parts) == 3 {
			w, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("member %q: bad weight %q", entry, parts[2])
			}
			m.Weight = w
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no members in %q", spec)
	}
	return out, nil
}

func run() error {
	var (
		listen  = flag.String("listen", ":9090", "serve the fleet endpoints on this address")
		members = flag.String("members", "", "comma-separated exporterAddr=adminURL[=weight] collector entries")
		epoch   = flag.Uint64("epoch", 0, "initial fleet-config epoch (membership changes increment it)")
		timeout = flag.Duration("timeout", 3*time.Second, "per-member scrape/admin call timeout")
	)
	flag.Parse()
	if *members == "" {
		return fmt.Errorf("-members is required")
	}
	ms, err := parseMembers(*members)
	if err != nil {
		return err
	}
	agg, err := federation.NewAggregator(federation.AggConfig{
		Members: ms, Epoch: *epoch, Timeout: *timeout,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: agg.Mux()}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fleetagg: serving fleet endpoints on http://%s/metrics (%d members)\n", ln.Addr(), len(ms))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Close()
}
