// Command fleetagg is the aggregation tier of a federated collector
// fleet: it merges per-collector metrics, health, state reports, and
// violation streams into fleet-wide endpoints, serializes property
// lifecycle operations into one fleet-wide order, and drives fleet
// membership changes by pushing feature-negotiated FleetConfig frames
// through the member collectors to every connected exporter.
//
// Usage:
//
//	fleetagg -listen :9090 -members 127.0.0.1:9190=http://127.0.0.1:9091,127.0.0.1:9290=http://127.0.0.1:9291
//
// Each -members entry is exporterAddr=adminURL[=weight]: the TCP
// address switches dial (what appears in FleetConfig frames and the
// routers' consistent-hash ring) and the collector's -metrics-addr
// base URL the aggregator scrapes and administers. The process holds
// no monitoring state — every answer is composed from live member
// scrapes — so it can restart at any time.
//
// Endpoints: /metrics (summed switchmon_fleet_* namespace), /healthz,
// /state, /violations, /properties (GET/POST/DELETE, fleet-wide), and
// /fleet (GET membership, POST a new member set).
//
// The aggregator also self-monitors: a background sampler scrapes the
// fleet every -sample-every into an in-process history ring (/query),
// and the SLO engine evaluates burn-rate rules over the merged fleet
// series (/alerts) — including the built-in reachability rule, so a
// member going dark is itself an alert. /violations forwards ?since
// and ?limit to every member, with repeated ?cursor=<addr>=<seq>
// params overriding since per member.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"switchmon/internal/federation"
	"switchmon/internal/obs/histdb"
	"switchmon/internal/obs/slo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetagg:", err)
		os.Exit(1)
	}
}

func parseMembers(spec string) ([]federation.AggMember, error) {
	var out []federation.AggMember
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, "=", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("member %q: want exporterAddr=adminURL[=weight]", entry)
		}
		m := federation.AggMember{Addr: parts[0], Admin: parts[1]}
		if len(parts) == 3 {
			w, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("member %q: bad weight %q", entry, parts[2])
			}
			m.Weight = w
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no members in %q", spec)
	}
	return out, nil
}

func run() error {
	var (
		listen      = flag.String("listen", ":9090", "serve the fleet endpoints on this address")
		members     = flag.String("members", "", "comma-separated exporterAddr=adminURL[=weight] collector entries")
		epoch       = flag.Uint64("epoch", 0, "initial fleet-config epoch (membership changes increment it)")
		timeout     = flag.Duration("timeout", 3*time.Second, "per-member scrape/admin call timeout")
		sampleEvery = flag.Duration("sample-every", time.Second, "cadence of the fleet-history sampler behind /query (each tick scrapes every member)")
		historySpan = flag.Duration("history", 10*time.Minute, "how far back the fleet metrics-history ring reaches")
	)
	var sloRules slo.RuleList
	flag.Var(&sloRules, "slo", "extra fleet SLO rule as name:series-glob:threshold:fast-window (repeatable; slow window is 10x fast; built-in rules are always evaluated)")
	flag.Parse()
	if *members == "" {
		return fmt.Errorf("-members is required")
	}
	ms, err := parseMembers(*members)
	if err != nil {
		return err
	}
	agg, err := federation.NewAggregator(federation.AggConfig{
		Members: ms, Epoch: *epoch, Timeout: *timeout,
	})
	if err != nil {
		return err
	}
	// Self-monitoring in Source mode: each sampler tick scrapes the
	// fleet and records the merged snapshot, so /query serves fleet
	// history and the SLO engine alerts on it (member reachability
	// included) with no per-member configuration.
	hist := histdb.New(histdb.Config{Source: agg.FleetSnapshot, SampleEvery: *sampleEvery, Retention: *historySpan})
	alerts := slo.New(slo.Config{DB: hist, Rules: append(slo.BuiltinRules(), sloRules...)})
	agg.AttachSelfMonitor(hist, alerts)
	hist.Start()
	defer hist.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: agg.Mux()}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fleetagg: serving fleet endpoints on http://%s/metrics (%d members)\n", ln.Addr(), len(ms))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return srv.Close()
}
