// Command switchtop is a live plain-text dashboard over a switchmon,
// collector, or fleetagg introspection endpoint. It polls /query,
// /alerts, /state, and /healthz and renders throughput and
// detection-latency sparklines, per-property state and soundness, and
// the firing SLO alerts — no terminal UI dependency, just ANSI clear
// and Unicode block characters.
//
// Usage:
//
//	switchtop -target http://127.0.0.1:9091
//	switchtop -target http://127.0.0.1:9090 -every 5s
//	switchtop -target http://127.0.0.1:9091 -once
//
// The target is any process serving the introspection mux with a
// history ring (-metrics-addr plus the default -sample-every). Against
// a fleetagg target the same endpoints serve fleet-merged series, so
// the dashboard shows fleet-wide throughput and fleet alerts without
// any flag changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

// sparkGlyphs are the eight block levels a sparkline cell can take.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// queryDoc mirrors the /query response.
type queryDoc struct {
	SampleEveryNS int64 `json:"sample_every_ns"`
	Series        []struct {
		Key    string `json:"key"`
		Kind   string `json:"kind"`
		Points []struct {
			T int64   `json:"t"`
			V float64 `json:"v"`
		} `json:"points"`
	} `json:"series"`
}

// alertsDoc mirrors the /alerts response.
type alertsDoc struct {
	Alerts []struct {
		Rule        string  `json:"rule"`
		State       string  `json:"state"`
		SinceUnixNS int64   `json:"since_unix_ns"`
		Series      string  `json:"series"`
		Value       float64 `json:"value"`
		SlowValue   float64 `json:"slow_value"`
		Threshold   float64 `json:"threshold"`
	} `json:"alerts"`
	TransitionsTotal uint64 `json:"transitions_total"`
}

// propState is the slice of a /state property entry the dashboard
// renders; unknown fields are ignored.
type propState struct {
	Property    string `json:"property"`
	Tenant      string `json:"tenant"`
	Live        int64  `json:"live"`
	Bytes       int64  `json:"approx_bytes"`
	Timers      int64  `json:"pending_timers"`
	Pressure    bool   `json:"pressure"`
	Quarantined bool   `json:"quarantined"`
	Unsound     any    `json:"unsound"`
}

// stateDoc matches both shapes /state takes: a member's report carries
// properties directly; a fleetagg answer nests per-member docs.
type stateDoc struct {
	Properties []propState `json:"properties"`
	Members    []struct {
		Member string `json:"member"`
		Error  string `json:"error"`
		Doc    struct {
			Properties []propState `json:"properties"`
		} `json:"doc"`
	} `json:"members"`
}

// client wraps the polling target.
type client struct {
	base string
	http *http.Client
}

func (c *client) getJSON(path string, into any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, into)
}

// healthLine fetches /healthz and collapses it to one status word.
func (c *client) healthLine() string {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return "UNREACHABLE (" + err.Error() + ")"
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	s := strings.TrimSpace(string(body))
	if s == "ok" {
		return "HEALTHY"
	}
	return "DEGRADED"
}

// spark renders points as a fixed-width sparkline, right-aligned so
// the newest sample is the last cell, plus current/min/max annotation.
func spark(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	if len(vals) == 0 {
		return strings.Repeat(" ", width) + "  (no data)"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	b.WriteString(strings.Repeat(" ", width-len(vals)))
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	cur := vals[len(vals)-1]
	fmt.Fprintf(&b, "  cur %s  min %s  max %s", human(cur), human(lo), human(hi))
	return b.String()
}

// human renders a value compactly: 12.3k, 4.5M, 1.2G.
func human(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// sumSeries merges every matched series point-by-point on timestamps —
// sharded engines label per-shard series, and the dashboard wants the
// whole-process line.
func sumSeries(doc *queryDoc, pred func(key string) bool) []float64 {
	byT := map[int64]float64{}
	for _, s := range doc.Series {
		if !pred(s.Key) {
			continue
		}
		for _, p := range s.Points {
			byT[p.T] += p.V
		}
	}
	ts := make([]int64, 0, len(byT))
	for t := range byT {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = byT[t]
	}
	return out
}

// maxSeries is sumSeries with max-merge — right for quantile series,
// where summing shards would be meaningless.
func maxSeries(doc *queryDoc, pred func(key string) bool) []float64 {
	byT := map[int64]float64{}
	for _, s := range doc.Series {
		if !pred(s.Key) {
			continue
		}
		for _, p := range s.Points {
			byT[p.T] = math.Max(byT[p.T], p.V)
		}
	}
	ts := make([]int64, 0, len(byT))
	for t := range byT {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = byT[t]
	}
	return out
}

func hasAll(key string, subs ...string) bool {
	for _, s := range subs {
		if !strings.Contains(key, s) {
			return false
		}
	}
	return true
}

// frame renders one full dashboard frame to a string.
func frame(c *client, width int) string {
	var b strings.Builder
	now := time.Now().Format("15:04:05")
	fmt.Fprintf(&b, "switchtop  %s  %s  %s\n\n", c.base, now, c.healthLine())

	// The one /query round-trip fetches every series family the frame
	// uses; '|' separates alternatives, and the switchmon_* prefix glob
	// matches fleet-prefixed names too.
	glob := strings.Join([]string{
		"switchmon_*monitor_events_total*",
		"switchmon_*trace_detection_latency_ns_p99*",
		"switchmon_*trace_detection_latency_ns_max*",
		"switchmon_*shed_events_total*",
		"switchmon_*wire_loss_events_total*",
	}, "|")
	var q queryDoc
	if err := c.getJSON("/query?series="+url.QueryEscape(glob), &q); err != nil {
		fmt.Fprintf(&b, "  /query: %v\n", err)
	} else {
		rows := []struct {
			label string
			vals  []float64
		}{
			{"events/s ", sumSeries(&q, func(k string) bool { return hasAll(k, "monitor_events_total") })},
			{"p99 ns   ", maxSeries(&q, func(k string) bool { return hasAll(k, "detection_latency_ns_p99") })},
			{"max ns   ", maxSeries(&q, func(k string) bool { return hasAll(k, "detection_latency_ns_max") })},
			{"shed/s   ", sumSeries(&q, func(k string) bool { return hasAll(k, "shed_events_total") })},
			{"loss/s   ", sumSeries(&q, func(k string) bool { return hasAll(k, "wire_loss_events_total") })},
		}
		for _, r := range rows {
			fmt.Fprintf(&b, "  %s %s\n", r.label, spark(r.vals, width))
		}
	}

	var a alertsDoc
	if err := c.getJSON("/alerts", &a); err != nil {
		fmt.Fprintf(&b, "\n  /alerts: %v\n", err)
	} else {
		firing := 0
		for _, al := range a.Alerts {
			if al.State == "warning" || al.State == "critical" {
				firing++
			}
		}
		fmt.Fprintf(&b, "\nALERTS  %d firing, %d rules, %d transitions\n", firing, len(a.Alerts), a.TransitionsTotal)
		for _, al := range a.Alerts {
			if al.State != "warning" && al.State != "critical" {
				continue
			}
			since := ""
			if al.SinceUnixNS > 0 {
				since = "  since " + time.Unix(0, al.SinceUnixNS).Format("15:04:05")
			}
			fmt.Fprintf(&b, "  %-8s %-24s value=%s slow=%s threshold=%s%s\n",
				al.State, al.Rule, human(al.Value), human(al.SlowValue), human(al.Threshold), since)
		}
	}

	var st stateDoc
	if err := c.getJSON("/state", &st); err != nil {
		fmt.Fprintf(&b, "\n  /state: %v\n", err)
		return b.String()
	}
	props := st.Properties
	for _, m := range st.Members {
		props = append(props, m.Doc.Properties...)
	}
	sort.Slice(props, func(i, j int) bool { return props[i].Property < props[j].Property })
	fmt.Fprintf(&b, "\nPROPERTIES  %d installed\n", len(props))
	for _, p := range props {
		sound := "sound"
		switch {
		case p.Quarantined:
			sound = "QUARANTINED"
		case p.Unsound != nil:
			sound = "UNSOUND"
		case p.Pressure:
			sound = "pressure"
		}
		name := p.Property
		if p.Tenant != "" {
			name += " (" + p.Tenant + ")"
		}
		fmt.Fprintf(&b, "  %-34s live=%-8d bytes=%-8s timers=%-6d %s\n",
			name, p.Live, human(float64(p.Bytes)), p.Timers, sound)
	}
	return b.String()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "switchtop:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target = flag.String("target", "http://127.0.0.1:9090", "introspection base URL (switchmon, collector, or fleetagg)")
		every  = flag.Duration("every", 2*time.Second, "refresh cadence")
		once   = flag.Bool("once", false, "render one frame and exit (no screen clearing; for scripts and tests)")
		width  = flag.Int("width", 60, "sparkline width in cells")
	)
	flag.Parse()
	if *width < 8 {
		return fmt.Errorf("-width %d: want at least 8", *width)
	}
	c := &client{base: strings.TrimRight(*target, "/"), http: &http.Client{Timeout: 5 * time.Second}}

	if *once {
		fmt.Print(frame(c, *width))
		return nil
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*every)
	defer tick.Stop()
	for {
		// ANSI: clear screen, home cursor.
		fmt.Print("\x1b[2J\x1b[H" + frame(c, *width))
		select {
		case <-sig:
			fmt.Println()
			return nil
		case <-tick.C:
		}
	}
}
