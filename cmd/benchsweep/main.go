// Command benchsweep runs the parameter sweeps behind the repository's
// performance experiments (E3-E7 in DESIGN.md) and prints the series the
// paper's Sec. 3.3 claims predict:
//
//	e3  per-event processing time vs. live instance count, per backend
//	    (Varanus grows linearly; Static Varanus / registers stay flat)
//	e4  state-update cost: flow-table modifications vs. register writes
//	e5  side-effect control: inline vs. split forwarding cost and the
//	    split monitor's missed violations under queue pressure
//	e6  provenance levels: none / limited / full overhead
//	e7  external monitoring redirect volume (OpenFlow 1.3) vs. on-switch
//	e8  sharded-engine throughput vs. shard count on the high-flow
//	    steady state (speedup needs GOMAXPROCS >= shards)
//	e11 telemetry overhead: the fully instrumented engine vs. bare
//	e13 distributed-fabric throughput vs. wire batch size (exporter ->
//	    TCP -> collector), per-event framing as the degenerate case
//	e14 detection latency vs. wire batch size: per-stage and end-to-end
//	    p50/p99 from traced spans crossing the same fabric
//	e15 adaptive sealing vs fixed batch sizes: sustained throughput and
//	    detection latency per config — does one adaptive config reach
//	    e13's throughput at e14's best-case latency?
//	e16 state-accounting overhead: the engine with per-property state
//	    observability (live/bytes/timer gauges + heavy-hitter sketch)
//	    vs the same engine with accounting disabled — the claim is a
//	    delta of at most ~15ns/event on the steady state
//	e17 lifecycle churn soak: repeated live remove/reinstall of one
//	    property while the sharded engine runs the high-flow steady
//	    state at full load — per-op fence latency (install and remove
//	    p50/p99) and the throughput dip vs an identical churn-free run
//	e18 federated fan-out scaling: switch streams consistent-hashed
//	    across 1/2/4 collectors through the federation router — fleet
//	    aggregate ingest capacity vs collector count at equal
//	    per-event cost (per-member saturation measured sequentially,
//	    so one benchmark core stands in for N collector machines)
//	e19 self-monitoring: the metrics-history sampler's hot-path
//	    overhead at its default 1s cadence (gate: <= 1%), and the SLO
//	    engine's detection time for an induced shard-stall shed burst
//	    (gate: critical within 2 fast burn windows)
//
// Usage: benchsweep [-exp all|e3|e4|e5|e6|e7|e8|e11|e12|e13|e14|e15|e16|e17|e18|e19] [-smoke] [-json dir] [-cpuprofile f] [-memprofile f]
//
// -smoke shrinks every workload so the selected sweeps finish in
// seconds; CI runs `benchsweep -exp e15 -smoke` as a fabric liveness
// gate. Committed BENCH_*.json artifacts always come from full runs.
//
// With -json, each experiment additionally writes BENCH_<exp>.json (one
// JSON array of rows) into the given directory. Sweeps that drive the
// core monitor (e5, e6, e8) run with a telemetry registry attached and
// record the before/after counter deltas next to ns/op, so a regression
// in a ratio (catch-all fraction, drops, provenance records) is visible
// in the same artifact as the timing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync/atomic"
	"time"

	"switchmon/internal/backend"
	"switchmon/internal/collector"
	"switchmon/internal/core"
	"switchmon/internal/exporter"
	"switchmon/internal/fault"
	"switchmon/internal/federation"
	"switchmon/internal/obs"
	"switchmon/internal/obs/histdb"
	"switchmon/internal/obs/slo"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
)

// benchRow is one BENCH_<exp>.json entry: the experiment coordinates,
// the headline timing, any sweep-specific extras, and — when the sweep
// ran with telemetry — the counter deltas over the timed section.
type benchRow struct {
	Exp           string            `json:"exp"`
	Params        map[string]any    `json:"params"`
	NsPerEvent    float64           `json:"ns_per_event,omitempty"`
	Extra         map[string]any    `json:"extra,omitempty"`
	CounterDeltas map[string]uint64 `json:"counter_deltas,omitempty"`
}

// writeRows writes one experiment's rows to dir/BENCH_<exp>.json.
func writeRows(dir, exp string, rows []benchRow) error {
	f, err := os.Create(filepath.Join(dir, "BENCH_"+exp+".json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// smoke shrinks every sweep's workload to a fast liveness check; set
// by the -smoke flag, read by the sweeps that honor it.
var smoke bool

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, e3, e4, e5, e6, e7, e8, e11, e12, e13, e14, e15, e16, e17, e18, e19")
	flag.BoolVar(&smoke, "smoke", false, "shrink workloads to a seconds-long smoke run (CI liveness, not a benchmark)")
	jsonDir := flag.String("json", "", "also write BENCH_<exp>.json rows into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // report live objects, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %v\n", err)
			os.Exit(1)
		}
	}()
	run := map[string]func() []benchRow{
		"e3": sweepE3, "e4": sweepE4, "e5": sweepE5, "e6": sweepE6, "e7": sweepE7,
		"e8": sweepE8, "e11": sweepE11, "e12": sweepE12, "e13": sweepE13,
		"e14": sweepE14, "e15": sweepE15, "e16": sweepE16, "e17": sweepE17,
		"e18": sweepE18, "e19": sweepE19,
	}
	names := []string{*exp}
	if *exp == "all" {
		names = []string{"e3", "e4", "e5", "e6", "e7", "e8", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e19"}
	}
	for i, name := range names {
		fn, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchsweep: unknown experiment %q\n", name)
			os.Exit(2)
		}
		rows := fn()
		if *jsonDir != "" {
			if err := writeRows(*jsonDir, name, rows); err != nil {
				fmt.Fprintf(os.Stderr, "benchsweep: %v\n", err)
				os.Exit(1)
			}
		}
		if i < len(names)-1 {
			fmt.Println()
		}
	}
}

func fwProp() *property.Property {
	return property.CatalogByName(property.DefaultParams(), "firewall-basic")
}

// sweepE3: per-event cost vs. live instances, per backend. The hardware
// model backends are not telemetry-instrumented, so e3 rows carry no
// counter deltas.
func sweepE3() []benchRow {
	var rows []benchRow
	fmt.Println("E3: per-event processing time vs live instances (Sec 3.3 pipeline depth)")
	fmt.Printf("%-10s %-18s %12s %12s %14s\n", "instances", "backend", "ns/event", "depth", "state-cost")
	for _, flows := range []int{16, 64, 256, 1024, 4096} {
		makers := []struct {
			name string
			mk   func(*sim.Scheduler) backend.Backend
		}{
			{"Varanus", func(s *sim.Scheduler) backend.Backend { return backend.NewVaranus(s) }},
			{"Static Varanus", func(s *sim.Scheduler) backend.Backend { return backend.NewStaticVaranus(s) }},
			{"POF and P4", func(s *sim.Scheduler) backend.Backend { return backend.NewP4(s) }},
			{"Ideal", func(s *sim.Scheduler) backend.Backend { return backend.NewIdeal(s) }},
		}
		for _, m := range makers {
			sched := sim.NewScheduler()
			b := m.mk(sched)
			if err := b.AddProperty(fwProp()); err != nil {
				panic(err)
			}
			// Build up `flows` live instances, then time return traffic.
			setup := trace.FirewallWorkload{Flows: flows, ReturnsPerFlow: 0, Gap: time.Microsecond}
			for _, e := range setup.Events(sim.Epoch) {
				b.HandleEvent(e)
			}
			work := trace.FirewallWorkload{Flows: flows, ReturnsPerFlow: 1, Gap: time.Microsecond}
			events := work.Events(sim.Epoch)
			// Skip the setup prefix (the opens) and keep only returns.
			events = events[2*flows:]
			start := time.Now()
			for i := range events {
				b.HandleEvent(events[i])
			}
			elapsed := time.Since(start)
			ns := float64(elapsed.Nanoseconds()) / float64(len(events))
			fmt.Printf("%-10d %-18s %12.0f %12d %14d\n",
				flows, m.name, ns, b.PipelineDepth(), b.StateUpdateCost())
			rows = append(rows, benchRow{
				Exp:        "e3",
				Params:     map[string]any{"instances": flows, "backend": m.name},
				NsPerEvent: ns,
				Extra:      map[string]any{"depth": b.PipelineDepth(), "state_cost": b.StateUpdateCost()},
			})
		}
	}
	return rows
}

// sweepE4: state mechanism update cost at varying store sizes. Raw
// mechanism microbenchmarks — no monitor, so no counter deltas.
func sweepE4() []benchRow {
	var rows []benchRow
	fmt.Println("E4: state-update cost, flow-table modification vs register write")
	fmt.Printf("%-12s %-22s %14s\n", "store-size", "mechanism", "ns/transition")
	for _, size := range []int{128, 1024, 8192, 65536} {
		for _, mech := range []string{"rule-table (OpenFlow)", "registers (P4)"} {
			var cost interface {
				transitions(n, live int)
				total() uint64
			}
			if mech == "rule-table (OpenFlow)" {
				cost = newRuleState()
			} else {
				cost = newRegisterState()
			}
			// Fill to the target size.
			cost.transitions(size, size)
			const n = 20000
			start := time.Now()
			cost.transitions(n, size)
			elapsed := time.Since(start)
			ns := float64(elapsed.Nanoseconds()) / n
			fmt.Printf("%-12d %-22s %14.1f\n", size, mech, ns)
			rows = append(rows, benchRow{
				Exp:        "e4",
				Params:     map[string]any{"store_size": size, "mechanism": mech},
				NsPerEvent: ns,
			})
		}
	}
	return rows
}

// The cost mechanisms mirror internal/backend's models; reimplemented
// here in miniature so the sweep measures the raw mechanisms.
type ruleState struct {
	rules []uint64
	seq   uint64
}

func newRuleState() *ruleState { return &ruleState{} }

func (rs *ruleState) transitions(n, live int) {
	for i := 0; i < n; i++ {
		rs.seq++
		pos := 0
		if len(rs.rules) > 0 {
			pos = int(rs.seq * 2654435761 % uint64(len(rs.rules)))
		}
		rs.rules = append(rs.rules, 0)
		copy(rs.rules[pos+1:], rs.rules[pos:])
		rs.rules[pos] = rs.seq
		for len(rs.rules) > live+1 {
			pos = int(rs.seq % uint64(len(rs.rules)))
			copy(rs.rules[pos:], rs.rules[pos+1:])
			rs.rules = rs.rules[:len(rs.rules)-1]
		}
	}
}
func (rs *ruleState) total() uint64 { return rs.seq }

type registerState struct {
	cells []uint64
	ops   uint64
}

func newRegisterState() *registerState { return &registerState{cells: make([]uint64, 65536)} }

func (rg *registerState) transitions(n, live int) {
	for i := 0; i < n; i++ {
		rg.ops++
		rg.cells[(rg.ops*2654435761)%uint64(len(rg.cells))] = rg.ops
	}
}
func (rg *registerState) total() uint64 { return rg.ops }

// sweepE5: inline vs split processing, with counter deltas over the run
// (dropped events make the split mode's missed violations explainable).
func sweepE5() []benchRow {
	var rows []benchRow
	fmt.Println("E5: side-effect control (Feature 9): inline vs split")
	fmt.Printf("%-10s %14s %14s %16s\n", "mode", "ns/event(fwd)", "ns/flush-ev", "missed-viols")
	w := trace.NATWorkload{Flows: 20000, MistranslateEvery: 50, Gap: time.Microsecond}
	events := w.Events(sim.Epoch)
	nat := property.CatalogByName(property.DefaultParams(), "nat-reverse")

	for _, mode := range []core.Mode{core.Inline, core.Split} {
		sched := sim.NewScheduler()
		viols := 0
		reg := obs.NewRegistry()
		cfg := core.Config{Mode: mode, Metrics: reg, OnViolation: func(*core.Violation) { viols++ }}
		if mode == core.Split {
			cfg.SplitFlushLimit = 1024 // bounded slow-path queue
		}
		mon := core.NewMonitor(sched, cfg)
		if err := mon.AddProperty(nat); err != nil {
			panic(err)
		}
		before := reg.Snapshot()
		start := time.Now()
		for i := range events {
			mon.HandleEvent(events[i])
		}
		fwd := time.Since(start)
		start = time.Now()
		flushed := mon.Flush()
		flush := time.Since(start)
		flushNs := 0.0
		if flushed > 0 {
			flushNs = float64(flush.Nanoseconds()) / float64(flushed)
		}
		expect := 20000 / 50
		fwdNs := float64(fwd.Nanoseconds()) / float64(len(events))
		fmt.Printf("%-10s %14.0f %14.0f %11d/%d\n", mode, fwdNs, flushNs, expect-viols, expect)
		rows = append(rows, benchRow{
			Exp:        "e5",
			Params:     map[string]any{"mode": mode.String(), "flows": 20000},
			NsPerEvent: fwdNs,
			Extra: map[string]any{
				"ns_per_flush_event": flushNs,
				"missed_violations":  expect - viols,
				"expected":           expect,
			},
			CounterDeltas: obs.DiffCounters(before, reg.Snapshot()),
		})
	}
	return rows
}

// sweepE6: provenance levels, with counter deltas over the timed run.
func sweepE6() []benchRow {
	var rows []benchRow
	fmt.Println("E6: provenance level (Feature 10) overhead")
	fmt.Printf("%-10s %12s %16s\n", "level", "ns/event", "history-records")
	w := trace.FirewallWorkload{Flows: 2000, ReturnsPerFlow: 5, ViolationEvery: 10, Gap: time.Microsecond}
	events := w.Events(sim.Epoch)
	for _, level := range []core.ProvLevel{core.ProvNone, core.ProvLimited, core.ProvFull} {
		sched := sim.NewScheduler()
		records := 0
		reg := obs.NewRegistry()
		mon := core.NewMonitor(sched, core.Config{
			Provenance:  level,
			Metrics:     reg,
			OnViolation: func(v *core.Violation) { records += len(v.History) },
		})
		if err := mon.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		before := reg.Snapshot()
		start := time.Now()
		for i := range events {
			mon.HandleEvent(events[i])
		}
		elapsed := time.Since(start)
		ns := float64(elapsed.Nanoseconds()) / float64(len(events))
		fmt.Printf("%-10s %12.0f %16d\n", level, ns, records)
		rows = append(rows, benchRow{
			Exp:           "e6",
			Params:        map[string]any{"level": level.String(), "flows": 2000},
			NsPerEvent:    ns,
			Extra:         map[string]any{"history_records": records},
			CounterDeltas: obs.DiffCounters(before, reg.Snapshot()),
		})
	}
	return rows
}

// sweepE7: redirect volume of external monitoring. Counts bytes, not
// monitor counters — no deltas.
func sweepE7() []benchRow {
	var rows []benchRow
	fmt.Println("E7: bytes redirected to an external monitor (OpenFlow 1.3) vs on-switch")
	fmt.Printf("%-10s %14s %16s %16s\n", "hosts", "packets", "OF1.3 bytes", "on-switch bytes")
	for _, hosts := range []int{8, 32, 128} {
		w := trace.LearningWorkload{Hosts: hosts, PacketsPerHost: 50, PayloadBytes: 512, Gap: time.Microsecond}
		events := w.Events(sim.Epoch)
		sched := sim.NewScheduler()
		of13 := backend.NewOpenFlow13(sched)
		ideal := backend.NewIdeal(sched)
		lsw := property.CatalogByName(property.DefaultParams(), "lswitch-unicast")
		if err := of13.AddProperty(lsw); err != nil {
			panic(err)
		}
		if err := ideal.AddProperty(lsw); err != nil {
			panic(err)
		}
		packets := 0
		for i := range events {
			if events[i].Kind == core.KindArrival {
				packets++
			}
			of13.HandleEvent(events[i])
			ideal.HandleEvent(events[i])
		}
		fmt.Printf("%-10d %14d %16d %16d\n", hosts, packets, of13.RedirectedBytes(), 0)
		rows = append(rows, benchRow{
			Exp:    "e7",
			Params: map[string]any{"hosts": hosts},
			Extra: map[string]any{
				"packets":        packets,
				"of13_bytes":     of13.RedirectedBytes(),
				"onswitch_bytes": 0,
			},
		})
	}
	return rows
}

// sweepE8: sharded-engine throughput vs shard count. The workload is the
// high-flow steady state: a large established population probed by
// round-robin return traffic, so consecutive events hit different shards.
func sweepE8() []benchRow {
	var rows []benchRow
	fmt.Printf("E8: sharded engine throughput vs shards (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-10s %12s %14s %12s\n", "shards", "ns/event", "events/sec", "violations")
	const flows = 8192
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 8, ViolationEvery: 1000, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	// Inline baseline: the single-threaded engine on the same stream.
	{
		sched := sim.NewScheduler()
		viols := 0
		reg := obs.NewRegistry()
		mon := core.NewMonitor(sched, core.Config{Metrics: reg, OnViolation: func(*core.Violation) { viols++ }})
		if err := mon.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		for _, e := range open {
			mon.HandleEvent(e)
		}
		before := reg.Snapshot()
		start := time.Now()
		for i := range returns {
			mon.HandleEvent(returns[i])
		}
		elapsed := time.Since(start)
		ns := float64(elapsed.Nanoseconds()) / float64(len(returns))
		fmt.Printf("%-10s %12.0f %14.0f %12d\n", "inline",
			ns, float64(len(returns))/elapsed.Seconds(), viols)
		rows = append(rows, benchRow{
			Exp:           "e8",
			Params:        map[string]any{"engine": "inline", "flows": flows},
			NsPerEvent:    ns,
			Extra:         map[string]any{"violations": viols},
			CounterDeltas: obs.DiffCounters(before, reg.Snapshot()),
		})
	}
	for _, shards := range []int{1, 2, 4, 8} {
		viols := 0
		reg := obs.NewRegistry()
		sm := core.NewShardedMonitor(shards, core.Config{Metrics: reg, OnViolation: func(*core.Violation) { viols++ }})
		if err := sm.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		sm.SubmitBatch(open, nil)
		sm.Drain()
		before := reg.Snapshot()
		start := time.Now()
		sm.SubmitBatch(returns, nil)
		sm.Barrier()
		elapsed := time.Since(start)
		ns := float64(elapsed.Nanoseconds()) / float64(len(returns))
		fmt.Printf("%-10d %12.0f %14.0f %12d\n", shards,
			ns, float64(len(returns))/elapsed.Seconds(), viols)
		sm.Close()
		rows = append(rows, benchRow{
			Exp:           "e8",
			Params:        map[string]any{"engine": "sharded", "shards": shards, "flows": flows},
			NsPerEvent:    ns,
			Extra:         map[string]any{"violations": viols},
			CounterDeltas: obs.DiffCounters(before, reg.Snapshot()),
		})
	}
	return rows
}

// sweepE11: telemetry overhead. The same engine and steady state as
// BenchmarkE11TelemetryOverhead — 8192 established flows probed by
// return traffic — once bare and once with the full observability
// surface attached (counter registry + violation ring), so the cost of
// "always-on" telemetry is a committed number, not a one-off bench run.
func sweepE11() []benchRow {
	var rows []benchRow
	fmt.Println("E11: telemetry overhead (registry + violation ring vs bare engine)")
	fmt.Printf("%-10s %12s %14s\n", "telemetry", "ns/event", "events/sec")
	const flows = 8192
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 8, ViolationEvery: 1000, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	for _, telemetry := range []bool{false, true} {
		sched := sim.NewScheduler()
		cfg := core.Config{}
		var reg *obs.Registry
		if telemetry {
			reg = obs.NewRegistry()
			cfg.Metrics = reg
			cfg.Violations = obs.NewRing(256)
		}
		mon := core.NewMonitor(sched, cfg)
		if err := mon.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		for _, e := range open {
			mon.HandleEvent(e)
		}
		// Warm the return path once, then take the best of three timed
		// passes — the off/on delta is tens of ns/event, well inside
		// cold-cache noise on a single pass.
		for i := range returns {
			mon.HandleEvent(returns[i])
		}
		var before obs.Snapshot
		if reg != nil {
			before = reg.Snapshot()
		}
		best := time.Duration(1<<63 - 1)
		for pass := 0; pass < 3; pass++ {
			start := time.Now()
			for i := range returns {
				mon.HandleEvent(returns[i])
			}
			if elapsed := time.Since(start); elapsed < best {
				best = elapsed
			}
		}
		ns := float64(best.Nanoseconds()) / float64(len(returns))
		label := "off"
		if telemetry {
			label = "on"
		}
		fmt.Printf("%-10s %12.0f %14.0f\n", label, ns, float64(len(returns))/best.Seconds())
		row := benchRow{
			Exp:        "e11",
			Params:     map[string]any{"telemetry": label, "flows": flows},
			NsPerEvent: ns,
			Extra:      map[string]any{"events": len(returns)},
		}
		if reg != nil {
			row.CounterDeltas = obs.DiffCounters(before, reg.Snapshot())
		}
		rows = append(rows, row)
	}
	return rows
}

// countingSink is a collector.Sink that only counts, so the e13 sweep
// can measure the wire fabric (framing, syscalls, ack flow) in
// isolation from property-evaluation cost.
type countingSink struct {
	events atomic.Uint64
	lost   atomic.Uint64
}

func (s *countingSink) SubmitBatch(evs []core.Event, release func()) error {
	s.events.Add(uint64(len(evs)))
	if release != nil {
		release()
	}
	return nil
}
func (s *countingSink) Tick(time.Time) {}
func (s *countingSink) MarkLoss(_ core.UnsoundReason, _ time.Time, n uint64, _ string) {
	s.lost.Add(n)
}

// sweepE13: distributed-fabric throughput vs. wire batch size. The same
// event stream goes exporter -> real TCP -> collector at each BatchSize;
// batch=1 is per-event framing (one frame, one length prefix, one write
// per event — what a naive exporter would do) and is the baseline the
// batched rows are compared against. The "count" sink isolates the wire;
// the "engine" sink is deployment context, the central sharded monitor
// evaluating the firewall property on the same stream.
func sweepE13() []benchRow {
	var rows []benchRow
	fmt.Println("E13: fabric throughput vs wire batch size (exporter -> TCP -> collector)")
	fmt.Printf("%-8s %-8s %12s %14s %10s %12s %10s\n",
		"sink", "batch", "ns/event", "events/sec", "batches", "bytes/event", "speedup")
	const flows = 4096
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 8, ViolationEvery: 1000, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	for _, sinkKind := range []string{"count", "engine"} {
		var perEventBaseline float64 // events/sec at batch=1
		for _, batch := range []int{1, 8, 64, 256, 1024} {
			var (
				sink collector.Sink
				sm   *core.ShardedMonitor
			)
			if sinkKind == "count" {
				sink = &countingSink{}
			} else {
				sm = core.NewShardedMonitor(4, core.Config{OnViolation: func(*core.Violation) {}})
				if err := sm.AddProperty(fwProp()); err != nil {
					panic(err)
				}
				sm.SubmitBatch(open, nil)
				sm.Drain()
				sink = sm
			}
			col, err := collector.New(collector.Config{Addr: "127.0.0.1:0"}, sink)
			if err != nil {
				panic(err)
			}
			col.Serve()
			// A long MaxBatchAge keeps BatchSize the governing knob; the
			// trailing partial batch is sealed by Flush.
			x, err := exporter.New(exporter.Config{
				Addr: col.Addr().String(), DPID: 1,
				BatchSize: batch, MaxBatchAge: 50 * time.Millisecond,
			})
			if err != nil {
				panic(err)
			}
			x.Start()
			start := time.Now()
			for i := range returns {
				x.Publish(returns[i])
			}
			x.Flush()
			deadline := time.Now().Add(30 * time.Second)
			for col.Stats().Events < uint64(len(returns)) {
				if time.Now().After(deadline) {
					panic(fmt.Sprintf("e13: collector applied %d of %d events", col.Stats().Events, len(returns)))
				}
				time.Sleep(time.Millisecond)
			}
			elapsed := time.Since(start)
			if abandoned := x.Close(5 * time.Second); abandoned != 0 {
				panic(fmt.Sprintf("e13: exporter abandoned %d events", abandoned))
			}
			col.Close()
			if sm != nil {
				sm.Close()
			}
			cs := col.Stats()
			ns := float64(elapsed.Nanoseconds()) / float64(len(returns))
			evps := float64(len(returns)) / elapsed.Seconds()
			if batch == 1 {
				perEventBaseline = evps
			}
			speedup := evps / perEventBaseline
			fmt.Printf("%-8s %-8d %12.0f %14.0f %10d %12.1f %9.1fx\n",
				sinkKind, batch, ns, evps, cs.Batches,
				float64(cs.Bytes)/float64(len(returns)), speedup)
			rows = append(rows, benchRow{
				Exp:        "e13",
				Params:     map[string]any{"sink": sinkKind, "batch_size": batch},
				NsPerEvent: ns,
				Extra: map[string]any{
					"events":               len(returns),
					"events_per_sec":       evps,
					"batches":              cs.Batches,
					"wire_bytes":           cs.Bytes,
					"bytes_per_event":      float64(cs.Bytes) / float64(len(returns)),
					"speedup_vs_per_event": speedup,
				},
			})
		}
	}
	return rows
}

// pctNs picks the p-th percentile (0..1) out of ns samples, sorting a
// copy so callers can keep accumulating.
func pctNs(vals []int64, p float64) int64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(float64(len(s)-1)*p)]
}

// sweepE14: detection latency vs. wire batch size. Every event carries
// a span (SampleN=1) through the same exporter -> TCP -> collector ->
// sharded-engine fabric as e13, but the publisher is paced well below
// the fabric's capacity (e13 measured ~87k events/s at batch=1) so the
// percentiles measure the pipeline — batch fill/age wait, wire flight,
// shard dispatch, verdict — rather than queue saturation. The claim
// under test: batching buys wire throughput (e13) at the price of
// detection latency, with the batch-seal wait as the moving part; at
// large batches the MaxBatchAge deadline caps the wait, so latency
// plateaus near the age bound instead of growing without limit.
func sweepE14() []benchRow {
	var rows []benchRow
	fmt.Println("E14: detection latency vs wire batch size (traced spans, exporter -> TCP -> collector)")
	fmt.Printf("%-8s %-8s %12s %12s %12s %12s %12s\n",
		"batch", "spans", "e2e_p50", "e2e_p99", "seal_p50", "recv_p50", "verdict_p50")
	const (
		flows   = 2048
		pace    = 32               // events per paced burst
		gap     = time.Millisecond // sleep between bursts: ~32k events/s
		age     = 5 * time.Millisecond
		sampleN = 1
	)
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 2, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	for _, batch := range []int{1, 8, 64, 256} {
		swTr := tracer.New(tracer.Config{SampleN: sampleN})
		colTr := tracer.New(tracer.Config{SampleN: sampleN, Ring: 2 * len(returns)})
		sm := core.NewShardedMonitor(4, core.Config{
			OnViolation: func(*core.Violation) {}, Tracer: colTr,
		})
		if err := sm.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		sm.SubmitBatch(open, nil)
		sm.Drain()
		col, err := collector.New(collector.Config{Addr: "127.0.0.1:0", Tracer: colTr}, sm)
		if err != nil {
			panic(err)
		}
		col.Serve()
		x, err := exporter.New(exporter.Config{
			Addr: col.Addr().String(), DPID: 1,
			BatchSize: batch, MaxBatchAge: age, Tracer: swTr,
		})
		if err != nil {
			panic(err)
		}
		x.Start()
		for i := range returns {
			e := returns[i]
			e.PacketID = core.PacketID(i + 1)
			if sp := swTr.Sample(1, uint64(e.PacketID), uint8(e.Kind)); sp != nil {
				sp.Stamp(tracer.StageIngress)
				e.Trace = sp
			}
			x.Publish(e)
			if (i+1)%pace == 0 {
				time.Sleep(gap)
			}
		}
		x.Flush()
		deadline := time.Now().Add(30 * time.Second)
		for col.Stats().Events < uint64(len(returns)) {
			if time.Now().After(deadline) {
				panic(fmt.Sprintf("e14: collector applied %d of %d events", col.Stats().Events, len(returns)))
			}
			time.Sleep(time.Millisecond)
		}
		if abandoned := x.Close(5 * time.Second); abandoned != 0 {
			panic(fmt.Sprintf("e14: exporter abandoned %d events", abandoned))
		}
		col.Close()
		sm.Drain()

		recs := colTr.Snapshot()
		stageVals := map[string][]int64{}
		var e2e []int64
		for _, r := range recs {
			for st, d := range r.StageNs {
				stageVals[st] = append(stageVals[st], d)
			}
			if r.E2ENs > 0 {
				e2e = append(e2e, r.E2ENs)
			}
		}
		sm.Close()
		stageP50 := map[string]any{}
		stageP99 := map[string]any{}
		for st, vals := range stageVals {
			stageP50[st] = pctNs(vals, 0.50)
			stageP99[st] = pctNs(vals, 0.99)
		}
		e2eP50, e2eP99 := pctNs(e2e, 0.50), pctNs(e2e, 0.99)
		fmt.Printf("%-8d %-8d %12d %12d %12d %12d %12d\n",
			batch, len(recs), e2eP50, e2eP99,
			pctNs(stageVals["batch_seal"], 0.50),
			pctNs(stageVals["collector_recv"], 0.50),
			pctNs(stageVals["verdict"], 0.50))
		rows = append(rows, benchRow{
			Exp: "e14",
			Params: map[string]any{
				"batch_size": batch, "sample_n": sampleN,
				"max_batch_age_ms": age.Milliseconds(),
			},
			NsPerEvent: float64(e2eP50),
			Extra: map[string]any{
				"spans":        len(recs),
				"events":       len(returns),
				"e2e_p50_ns":   e2eP50,
				"e2e_p99_ns":   e2eP99,
				"stage_p50_ns": stageP50,
				"stage_p99_ns": stageP99,
			},
		})
	}
	return rows
}

// sweepE12: detection rate vs injected event loss. For each workload the
// zero-loss run establishes ground truth; then the same stream goes
// through a deterministic fault injector at increasing drop rates, and
// the row records how many of the ground-truth violations the monitor
// still detects alongside what the soundness ledger admits was lost.
// The point of the experiment is the pairing: detection degrades, and
// the engine says so.
func sweepE12() []benchRow {
	var rows []benchRow
	fmt.Println("E12: detection rate vs injected feed loss (seed=12)")
	fmt.Printf("%-16s %-8s %10s %10s %10s %10s %10s\n",
		"workload", "drop", "events", "dropped", "expected", "detected", "det_rate")

	type workload struct {
		name   string
		prop   string
		events []core.Event
	}
	workloads := []workload{
		{
			name: "firewall", prop: "firewall-basic",
			events: trace.FirewallWorkload{
				Flows: 2000, ReturnsPerFlow: 3, ViolationEvery: 10, Gap: time.Millisecond,
			}.Events(sim.Epoch),
		},
		{
			name: "nat", prop: "nat-reverse",
			events: trace.NATWorkload{
				Flows: 4000, MistranslateEvery: 10, Gap: time.Millisecond,
			}.Events(sim.Epoch),
		},
	}
	rates := []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2}

	for _, wl := range workloads {
		expected := uint64(0)
		for _, rate := range rates {
			spec := fault.DefaultSpec()
			spec.Drop = rate
			spec.Seed = 12

			sched := sim.NewScheduler()
			reg := obs.NewRegistry()
			mon := core.NewMonitor(sched, core.Config{Metrics: reg})
			if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), wl.prop)); err != nil {
				panic(err)
			}
			inj := fault.NewInjector(spec)
			inj.OnDrop = func(e core.Event) { mon.MarkFeedLoss(e.Time, 1, "e12 injected drop") }
			evs := inj.Apply(wl.events)
			before := reg.Snapshot()
			start := time.Now()
			trace.Replay(sched, evs, mon.HandleEvent)
			sched.RunFor(time.Hour)
			elapsed := time.Since(start)

			st := mon.Stats()
			if rate == 0 {
				expected = st.Violations // ground truth: the fault-free run
			}
			detRate := 0.0
			if expected > 0 {
				detRate = float64(st.Violations) / float64(expected)
			}
			is := inj.Stats()
			marks := mon.Ledger().Snapshot()
			fmt.Printf("%-16s %-8.2f %10d %10d %10d %10d %10.3f\n",
				wl.name, rate, len(wl.events), is.Dropped, expected, st.Violations, detRate)
			rows = append(rows, benchRow{
				Exp: "e12",
				Params: map[string]any{
					"workload": wl.name, "property": wl.prop, "drop_rate": rate, "seed": spec.Seed,
				},
				NsPerEvent: float64(elapsed.Nanoseconds()) / float64(len(evs)),
				Extra: map[string]any{
					"events":              len(wl.events),
					"dropped_events":      is.Dropped,
					"expected_violations": expected,
					"detected_violations": st.Violations,
					"detection_rate":      detRate,
					"unsound_properties":  len(marks),
				},
				CounterDeltas: obs.DiffCounters(before, reg.Snapshot()),
			})
		}
	}
	return rows
}

// e15Throughput blasts the return traffic through exporter -> TCP ->
// collector -> sharded engine as fast as the fabric accepts it (the
// e13 "engine" protocol) and reports the sustained rate.
func e15Throughput(xcfg exporter.Config, flows, rounds int) (evps, ns float64, batches, bytes uint64) {
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: rounds, ViolationEvery: 1000, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	sm := core.NewShardedMonitor(4, core.Config{OnViolation: func(*core.Violation) {}})
	if err := sm.AddProperty(fwProp()); err != nil {
		panic(err)
	}
	sm.SubmitBatch(open, nil)
	sm.Drain()
	col, err := collector.New(collector.Config{Addr: "127.0.0.1:0"}, sm)
	if err != nil {
		panic(err)
	}
	col.Serve()
	xcfg.Addr = col.Addr().String()
	xcfg.DPID = 1
	x, err := exporter.New(xcfg)
	if err != nil {
		panic(err)
	}
	x.Start()
	start := time.Now()
	for i := range returns {
		x.Publish(returns[i])
	}
	x.Flush()
	deadline := time.Now().Add(30 * time.Second)
	for col.Stats().Events < uint64(len(returns)) {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("e15: collector applied %d of %d events", col.Stats().Events, len(returns)))
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	if abandoned := x.Close(5 * time.Second); abandoned != 0 {
		panic(fmt.Sprintf("e15: exporter abandoned %d events", abandoned))
	}
	col.Close()
	sm.Close()
	cs := col.Stats()
	return float64(len(returns)) / elapsed.Seconds(),
		float64(elapsed.Nanoseconds()) / float64(len(returns)),
		cs.Batches, cs.Bytes
}

// e15Latency drives the same fabric with every event traced (SampleN=1)
// and the publisher paced to a steady per-event gap via time.Sleep —
// sleeping, not spinning, so on small machines (CI runs this with one
// CPU) the pauses are exactly when the collector and shards get the
// processor, as they would with a real network between the hosts. The
// OS rounds short sleeps up, so the realized gap (reported in the row)
// is the measurement's rate, not the nominal one. Reports end-to-end
// detection-latency percentiles and the batch-seal wait.
func e15Latency(xcfg exporter.Config, flows, rounds int, paceGap time.Duration) (p50, p99, sealP50 int64, spans int, realizedGap time.Duration) {
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: rounds, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	swTr := tracer.New(tracer.Config{SampleN: 1})
	colTr := tracer.New(tracer.Config{SampleN: 1, Ring: 2 * len(returns)})
	sm := core.NewShardedMonitor(4, core.Config{OnViolation: func(*core.Violation) {}, Tracer: colTr})
	if err := sm.AddProperty(fwProp()); err != nil {
		panic(err)
	}
	sm.SubmitBatch(open, nil)
	sm.Drain()
	col, err := collector.New(collector.Config{Addr: "127.0.0.1:0", Tracer: colTr}, sm)
	if err != nil {
		panic(err)
	}
	col.Serve()
	xcfg.Addr = col.Addr().String()
	xcfg.DPID = 1
	xcfg.Tracer = swTr
	x, err := exporter.New(xcfg)
	if err != nil {
		panic(err)
	}
	x.Start()
	start := time.Now()
	for i := range returns {
		e := returns[i]
		e.PacketID = core.PacketID(i + 1)
		if sp := swTr.Sample(1, uint64(e.PacketID), uint8(e.Kind)); sp != nil {
			sp.Stamp(tracer.StageIngress)
			e.Trace = sp
		}
		x.Publish(e)
		time.Sleep(paceGap)
	}
	realizedGap = time.Since(start) / time.Duration(len(returns))
	x.Flush()
	deadline := time.Now().Add(30 * time.Second)
	for col.Stats().Events < uint64(len(returns)) {
		if time.Now().After(deadline) {
			panic(fmt.Sprintf("e15: collector applied %d of %d events", col.Stats().Events, len(returns)))
		}
		time.Sleep(time.Millisecond)
	}
	if abandoned := x.Close(5 * time.Second); abandoned != 0 {
		panic(fmt.Sprintf("e15: exporter abandoned %d events", abandoned))
	}
	col.Close()
	sm.Drain()

	recs := colTr.Snapshot()
	var e2e, seal []int64
	for _, r := range recs {
		if r.E2ENs > 0 {
			e2e = append(e2e, r.E2ENs)
		}
		if d, ok := r.StageNs["batch_seal"]; ok {
			seal = append(seal, d)
		}
	}
	sm.Close()
	return pctNs(e2e, 0.50), pctNs(e2e, 0.99), pctNs(seal, 0.50), len(recs), realizedGap
}

// sweepE15: the latency/throughput frontier with one config. e13 shows
// sustained fabric throughput needs big batches; e14 shows detection
// latency needs small ones. Each config here is measured both ways —
// an unpaced blast for throughput, then a steadily paced fully-traced
// stream for latency percentiles — so the row answers whether the
// adaptive controller (switchmon -export defaults: -batch-slo 250µs,
// -batch-max 256) reaches the fixed sweep's best throughput and its
// best-case latency simultaneously, where every fixed size gets only
// one side of the frontier.
func sweepE15() []benchRow {
	var rows []benchRow
	fmt.Println("E15: adaptive sealing vs fixed batch size: throughput and detection latency, one config")
	fmt.Printf("%-12s %14s %12s %12s %12s %12s %12s\n",
		"config", "events/sec", "ns/event", "e2e_p50", "e2e_p99", "seal_p50", "pace_gap")

	const (
		slo     = 250 * time.Microsecond
		maxB    = 256
		paceGap = 25 * time.Microsecond // steady ~40k events/s for the latency phase
	)
	tFlows, tRounds := 4096, 8
	lFlows, lRounds := 2048, 2
	if smoke {
		tFlows, tRounds = 512, 2
		lFlows, lRounds = 256, 2
	}

	type config struct {
		label string
		batch int // 0 = adaptive
	}
	configs := []config{{"fixed/8", 8}, {"fixed/64", 64}, {"fixed/256", 256}, {"adaptive", 0}}
	for _, c := range configs {
		// Throughput phase: fixed configs get e13's long age bound so
		// BatchSize governs; the adaptive config is identical in both
		// phases — that is the claim under test.
		txc := exporter.Config{TargetSealLatency: slo, BatchSizeMax: maxB}
		lxc := txc
		if c.batch > 0 {
			txc = exporter.Config{BatchSize: c.batch, MaxBatchAge: 50 * time.Millisecond}
			// Latency phase: e14's age bound, so a partial batch cannot
			// strand a verdict for 50ms.
			lxc = exporter.Config{BatchSize: c.batch, MaxBatchAge: 5 * time.Millisecond}
		}
		evps, ns, batches, bytes := e15Throughput(txc, tFlows, tRounds)
		p50, p99, sealP50, spans, realized := e15Latency(lxc, lFlows, lRounds, paceGap)
		fmt.Printf("%-12s %14.0f %12.0f %12d %12d %12d %12s\n", c.label, evps, ns, p50, p99, sealP50, realized)
		params := map[string]any{"config": c.label, "batch_size": c.batch}
		if c.batch == 0 {
			params["slo_us"] = slo.Microseconds()
			params["batch_max"] = maxB
		}
		rows = append(rows, benchRow{
			Exp:        "e15",
			Params:     params,
			NsPerEvent: ns,
			Extra: map[string]any{
				"events_per_sec":  evps,
				"batches":         batches,
				"wire_bytes":      bytes,
				"e2e_p50_ns":      p50,
				"e2e_p99_ns":      p99,
				"seal_p50_ns":     sealP50,
				"spans":           spans,
				"pace_gap_ns":     paceGap.Nanoseconds(),
				"realized_gap_ns": realized.Nanoseconds(),
				"smoke":           smoke,
				"events_tput":     tFlows * tRounds,
				"events_latency":  lFlows * lRounds,
			},
		})
	}
	return rows
}

// e17Run drives the high-flow return stream through the sharded engine
// in fixed-size chunks, performing `cycles` remove+reinstall pairs of
// the named rider property at evenly spaced stream positions (cycles=0
// is the churn-free baseline). The pair is back-to-back so the rider
// is installed for virtually the whole stream — a lone remove would
// shed its evaluation work and make the churn run *faster*, hiding the
// cost under test. Each operation is a full fenced round trip —
// tombstone/validate on the router, barrier across every shard, ledger
// record — timed from the caller's seat.
func e17Run(flows, rounds, cycles, chunk int, riderName string) (evps, ns float64, installNs, removeNs []int64, epoch uint64) {
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: rounds, ViolationEvery: 1000, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	sm := core.NewShardedMonitor(4, core.Config{OnViolation: func(*core.Violation) {}})
	defer sm.Close()
	if err := sm.AddProperty(fwProp()); err != nil {
		panic(err)
	}
	rider := property.CatalogByName(property.DefaultParams(), riderName)
	if err := sm.AddProperty(rider); err != nil {
		panic(err)
	}
	sm.SubmitBatch(open, nil)
	sm.Drain()

	chunks := (len(returns) + chunk - 1) / chunk
	interval := 0
	if cycles > 0 {
		interval = chunks / (cycles + 1)
		if interval == 0 {
			interval = 1
		}
	}
	done := 0
	start := time.Now()
	for c := 0; c < chunks; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > len(returns) {
			hi = len(returns)
		}
		sm.SubmitBatch(returns[lo:hi], nil)
		if cycles > 0 && done < cycles && (c+1)%interval == 0 {
			opStart := time.Now()
			if err := sm.RemoveProperty(rider.Name); err != nil {
				panic(err)
			}
			removed := time.Now()
			removeNs = append(removeNs, removed.Sub(opStart).Nanoseconds())
			if err := sm.InstallProperty(property.CatalogByName(property.DefaultParams(), rider.Name)); err != nil {
				panic(err)
			}
			installNs = append(installNs, time.Since(removed).Nanoseconds())
			done++
		}
	}
	sm.Barrier()
	elapsed := time.Since(start)
	return float64(len(returns)) / elapsed.Seconds(),
		float64(elapsed.Nanoseconds()) / float64(len(returns)),
		installNs, removeNs, sm.Epoch()
}

// sweepE17: lifecycle churn soak. The question a live fabric asks of
// hot install/remove: what does one fenced operation cost while the
// engine is saturated, and what does sustained churn do to throughput?
// Two rider choices separate the two costs. The churn rows cycle an
// inert rider (nat-reverse never matches firewall traffic, so it holds
// no instances): removal sheds no evaluation work, and the throughput
// dip vs the churn-free baseline isolates the fencing itself — every
// operation barriers all four shards, so its latency is the
// install-point fence the soundness ledger depends on, the number that
// bounds how stale a /properties POST can be. The purge row removes
// the armed rider (firewall-until-close holding `flows` live
// instances) exactly once mid-stream: its remove latency is fence plus
// instance purge, the worst case a live remove pays.
func sweepE17() []benchRow {
	var rows []benchRow
	fmt.Println("E17: lifecycle churn soak: fenced install/remove latency and throughput dip under full load")
	fmt.Printf("%-14s %14s %12s %12s %12s %12s %12s %8s\n",
		"config", "events/sec", "ns/event", "inst_p50", "inst_p99", "rm_p50", "rm_p99", "dip")
	// chunk is sized so the densest churn config still has more chunks
	// than operations; baseline and churn runs share it for a fair
	// throughput comparison.
	flows, rounds, chunk := 8192, 8, 256
	cycleCounts := []int{8, 32, 128}
	if smoke {
		flows, rounds, chunk = 512, 2, 64
		cycleCounts = []int{4}
	}
	const inertRider = "nat-reverse"

	emit := func(label, rider string, cycles int, evps, ns float64, installNs, removeNs []int64, epoch uint64, dip any) {
		row := benchRow{
			Exp:        "e17",
			Params:     map[string]any{"config": label, "rider": rider, "flows": flows, "ops": 2 * cycles},
			NsPerEvent: ns,
			Extra: map[string]any{
				"events_per_sec":  evps,
				"events":          flows * rounds,
				"lifecycle_epoch": epoch,
				"smoke":           smoke,
			},
		}
		if cycles > 0 {
			row.Extra["install_p50_ns"] = pctNs(installNs, 0.50)
			row.Extra["install_p99_ns"] = pctNs(installNs, 0.99)
			row.Extra["remove_p50_ns"] = pctNs(removeNs, 0.50)
			row.Extra["remove_p99_ns"] = pctNs(removeNs, 0.99)
		}
		if dip != nil {
			row.Extra["throughput_dip_pct"] = dip
		}
		rows = append(rows, row)
	}

	baseEvps, baseNs, _, _, _ := e17Run(flows, rounds, 0, chunk, inertRider)
	fmt.Printf("%-14s %14.0f %12.0f %12s %12s %12s %12s %8s\n",
		"baseline", baseEvps, baseNs, "-", "-", "-", "-", "-")
	emit("baseline", inertRider, 0, baseEvps, baseNs, nil, nil, 0, nil)

	for _, cycles := range cycleCounts {
		evps, ns, installNs, removeNs, epoch := e17Run(flows, rounds, cycles, chunk, inertRider)
		if int(epoch) != 2*cycles {
			panic(fmt.Sprintf("e17: lifecycle epoch %d after %d operations", epoch, 2*cycles))
		}
		dip := (baseEvps - evps) / baseEvps * 100
		label := fmt.Sprintf("churn/%d", cycles)
		fmt.Printf("%-14s %14.0f %12.0f %12d %12d %12d %12d %7.1f%%\n",
			label, evps, ns,
			pctNs(installNs, 0.50), pctNs(installNs, 0.99),
			pctNs(removeNs, 0.50), pctNs(removeNs, 0.99), dip)
		emit(label, inertRider, cycles, evps, ns, installNs, removeNs, epoch, dip)
	}

	// Purge worst case: one remove of a rider holding `flows` live
	// instances. No dip claim — purging state legitimately changes the
	// remaining workload's cost.
	evps, ns, installNs, removeNs, epoch := e17Run(flows, rounds, 1, chunk, "firewall-until-close")
	if epoch != 2 {
		panic(fmt.Sprintf("e17: purge run epoch %d, want 2", epoch))
	}
	fmt.Printf("%-14s %14.0f %12.0f %12d %12d %12d %12d %8s\n",
		"purge", evps, ns,
		pctNs(installNs, 0.50), pctNs(installNs, 0.99),
		pctNs(removeNs, 0.50), pctNs(removeNs, 0.99), "-")
	emit("purge", "firewall-until-close", 1, evps, ns, installNs, removeNs, epoch, nil)
	return rows
}

// sweepE16: state-accounting overhead. The same high-flow steady state
// as e11, measured with per-property state observability disabled
// (the PR 6 baseline), enabled at the deployment sample rate (1-in-8
// filings sketched), and enabled with every filing sketched. The
// steady-state return path pays two uncontended atomic adds (pool
// pop/push around the dedup hit); sketching only touches the filing
// path, so the sample rate should not move the steady-state number.
// The committed claim: accounting costs at most ~15ns/event over the
// baseline, with zero allocations — the /state observatory is cheap
// enough to leave on in production. The row's extras carry the final
// accounting report (live instances, filings) so the artifact also
// documents what the accounting saw.
func sweepE16() []benchRow {
	var rows []benchRow
	fmt.Println("E16: state-accounting overhead (live/bytes/timer gauges + heavy-hitter sketch vs bare engine)")
	fmt.Printf("%-22s %12s %14s %12s\n", "accounting", "ns/event", "events/sec", "delta-ns")
	flows := 8192
	if smoke {
		flows = 512
	}
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 8, ViolationEvery: 1000, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"off", core.Config{DisableStateAccounting: true}},
		{"on/sample=8", core.Config{StateTopK: 32, StateSample: 8}},
		{"on/sample=1", core.Config{StateTopK: 32, StateSample: 1}},
	}
	baseline := 0.0
	for _, c := range configs {
		sched := sim.NewScheduler()
		reg := obs.NewRegistry()
		cfg := c.cfg
		cfg.Metrics = reg
		mon := core.NewMonitor(sched, cfg)
		if err := mon.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		for _, e := range open {
			mon.HandleEvent(e)
		}
		// Warm the return path once, then best-of-three: the off/on
		// delta target is 15ns/event, inside single-pass noise.
		for i := range returns {
			mon.HandleEvent(returns[i])
		}
		before := reg.Snapshot()
		best := time.Duration(1<<63 - 1)
		for pass := 0; pass < 3; pass++ {
			start := time.Now()
			for i := range returns {
				mon.HandleEvent(returns[i])
			}
			if elapsed := time.Since(start); elapsed < best {
				best = elapsed
			}
		}
		ns := float64(best.Nanoseconds()) / float64(len(returns))
		if c.label == "off" {
			baseline = ns
		}
		delta := ns - baseline
		fmt.Printf("%-22s %12.1f %14.0f %12.1f\n",
			c.label, ns, float64(len(returns))/best.Seconds(), delta)
		row := benchRow{
			Exp:           "e16",
			Params:        map[string]any{"accounting": c.label, "flows": flows},
			NsPerEvent:    ns,
			Extra:         map[string]any{"events": len(returns), "delta_ns_vs_off": delta},
			CounterDeltas: obs.DiffCounters(before, reg.Snapshot()),
		}
		if !c.cfg.DisableStateAccounting {
			rep := mon.StateReport()
			var live, filings uint64
			for _, p := range rep.Properties {
				live += uint64(p.Live)
				filings += p.Filings
			}
			row.Extra["live_instances"] = live
			row.Extra["filings"] = filings
			row.Extra["sample_n"] = rep.SampleN
		}
		rows = append(rows, row)
	}
	return rows
}

// e18OwnedDPID finds a datapath id the given member owns on the fleet's
// consistent-hash ring, so a saturation stream aimed at one member
// still travels the full federated path (router ring lookup included).
func e18OwnedDPID(members []federation.Member, addr string, from uint64) uint64 {
	ring, err := federation.NewRing(members)
	if err != nil {
		panic(err)
	}
	for k := from; ; k++ {
		if ring.Owner(k) == addr {
			return k
		}
	}
}

// sweepE18 measures federated fan-out scaling across 1/2/4 collectors.
//
// Two numbers per fleet size. The wall-clock rate drives 8 switch
// routers into the whole fleet at once; on a single benchmark core
// every collector engine competes for the same CPU, so this row shows
// path overhead, not scaling. The capacity rate is the honest scaling
// series for one machine: each member is saturated sequentially through
// the full federated path (router → ring → exporter → TCP → collector →
// sharded engine) while the others idle, standing in for N collector
// machines that would sustain those rates concurrently; fleet capacity
// is their sum. The gate — capacity(2) >= 1.7x and capacity(4) >= 3.0x
// of capacity(1), at flat per-event cost — fails the sweep loudly
// (full runs only; -smoke gates liveness, not ratios).
func sweepE18() []benchRow {
	var rows []benchRow
	fmt.Println("E18: federated fan-out scaling: aggregate ingest capacity vs collector count")
	fmt.Printf("%-11s %14s %16s %12s %10s\n",
		"collectors", "wall_evps", "capacity_evps", "ns/event", "capacity_x")

	flows, rounds := 4096, 16
	if smoke {
		flows, rounds = 256, 2
	}
	const switches = 8
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: rounds, ViolationEvery: 1000, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]
	xcfg := exporter.Config{TargetSealLatency: 250 * time.Microsecond, BatchSizeMax: 256}

	var capacity1 float64
	for _, n := range []int{1, 2, 4} {
		type e18Member struct {
			sm  *core.ShardedMonitor
			col *collector.Collector
		}
		members := make([]e18Member, n)
		memList := make([]federation.Member, n)
		for i := range members {
			sm := core.NewShardedMonitor(2, core.Config{OnViolation: func(*core.Violation) {}})
			if err := sm.AddProperty(fwProp()); err != nil {
				panic(err)
			}
			sm.SubmitBatch(open, nil)
			sm.Drain()
			col, err := collector.New(collector.Config{Addr: "127.0.0.1:0"}, sm)
			if err != nil {
				panic(err)
			}
			col.Serve()
			members[i] = e18Member{sm: sm, col: col}
			memList[i] = federation.Member{Addr: col.Addr().String()}
		}
		fleetApplied := func() uint64 {
			var total uint64
			for i := range members {
				total += members[i].col.Stats().Events
			}
			return total
		}

		// Capacity phase: saturate each member alone over the full
		// federated path; the fleet's capacity is the sum. Each timed
		// pass needs a dpid the collector has never seen: its per-dpid
		// replay dedup outlives connections, so a reused dpid would
		// skip the stream's head as a replayed prefix. Best of two
		// passes per member, so a cold first connection does not
		// masquerade as a capacity difference.
		nextDPID := uint64(switches + 1)
		run := func(i int) (rate, ns float64) {
			dpid := e18OwnedDPID(memList, memList[i].Addr, nextDPID)
			nextDPID = dpid + 1
			r, err := federation.NewRouter(federation.Config{
				Members: memList, DPID: dpid, Exporter: xcfg,
			})
			if err != nil {
				panic(err)
			}
			r.Start()
			before := members[i].col.Stats().Events
			start := time.Now()
			for j := range returns {
				e := returns[j]
				e.SwitchID = 0
				r.Publish(e)
			}
			r.Flush()
			deadline := time.Now().Add(60 * time.Second)
			for members[i].col.Stats().Events-before < uint64(len(returns)) {
				if time.Now().After(deadline) {
					panic(fmt.Sprintf("e18: member %d applied %d of %d events",
						i, members[i].col.Stats().Events-before, len(returns)))
				}
				time.Sleep(time.Millisecond)
			}
			elapsed := time.Since(start)
			if abandoned := r.Close(5 * time.Second); abandoned != 0 {
				panic(fmt.Sprintf("e18: member %d router abandoned %d events", i, abandoned))
			}
			return float64(len(returns)) / elapsed.Seconds(),
				float64(elapsed.Nanoseconds()) / float64(len(returns))
		}
		var capacity, nsSum float64
		perMember := make([]float64, n)
		for i := range members {
			rate, ns := run(i)
			if r2, ns2 := run(i); r2 > rate {
				rate, ns = r2, ns2
			}
			perMember[i] = rate
			capacity += rate
			nsSum += ns
		}
		// Wall-clock phase: every switch stream into the fleet at once.
		routers := make([]*federation.Router, switches)
		for s := range routers {
			r, err := federation.NewRouter(federation.Config{
				Members: memList, DPID: uint64(s + 1), Exporter: xcfg,
			})
			if err != nil {
				panic(err)
			}
			r.Start()
			routers[s] = r
		}
		start := time.Now()
		for i := range returns {
			e := returns[i]
			e.SwitchID = 0 // the router stamps its own DPID
			routers[i%switches].Publish(e)
		}
		for _, r := range routers {
			r.Flush()
		}
		deadline := time.Now().Add(60 * time.Second)
		for fleetApplied() < uint64(len(returns)) {
			if time.Now().After(deadline) {
				panic(fmt.Sprintf("e18: fleet applied %d of %d events", fleetApplied(), len(returns)))
			}
			time.Sleep(time.Millisecond)
		}
		wallEvps := float64(len(returns)) / time.Since(start).Seconds()
		for _, r := range routers {
			if abandoned := r.Close(5 * time.Second); abandoned != 0 {
				panic(fmt.Sprintf("e18: router abandoned %d events", abandoned))
			}
		}

		meanNs := nsSum / float64(n)
		if n == 1 {
			capacity1 = capacity
		}
		capX := capacity / capacity1
		if !smoke {
			if n == 2 && capX < 1.7 {
				panic(fmt.Sprintf("e18: capacity at 2 collectors is %.2fx of 1, want >= 1.7x", capX))
			}
			if n == 4 && capX < 3.0 {
				panic(fmt.Sprintf("e18: capacity at 4 collectors is %.2fx of 1, want >= 3.0x", capX))
			}
		}
		fmt.Printf("%-11d %14.0f %16.0f %12.0f %9.2fx\n", n, wallEvps, capacity, meanNs, capX)
		rows = append(rows, benchRow{
			Exp:        "e18",
			Params:     map[string]any{"collectors": n, "switches": switches},
			NsPerEvent: meanNs,
			Extra: map[string]any{
				"wall_events_per_sec":       wallEvps,
				"capacity_events_per_sec":   capacity,
				"capacity_x":                capX,
				"per_member_events_per_sec": perMember,
				"events":                    len(returns),
				"smoke":                     smoke,
			},
		})
		for i := range members {
			members[i].col.Close()
			members[i].sm.Close()
		}
	}
	return rows
}

// sweepE19 measures the self-monitoring tier two ways (E19).
//
// Overhead: the engine's steady state with the metrics-history sampler
// running at its default 1s cadence vs the same engine with no sampler.
// The sampler reads the registry on its own goroutine (zero-alloc per
// tick, gated in check.sh), so the hot path should not feel it: the
// gate is <= 1% added ns/event (with a small absolute floor, since 1%
// of a ~100ns event is inside scheduler noise), full runs only.
//
// Detection: an induced degradation must page within two fast burn
// windows. A sharded engine runs with a deliberately tiny shard queue
// and ShedDropNewest; a fault-injected wall-clock stall on shard 0
// makes the queue overflow, the shed burst lands in
// switchmon_ledger_shed_events_total, the sampler (100ms cadence on a
// synthetic clock) turns it into a rate spike, and the SLO engine's
// fast window crosses. The gate is critical within 2*fast of the
// stall, i.e. 6 sampler ticks, full runs only.
func sweepE19() []benchRow {
	rows := sweepE19Overhead()
	return append(rows, sweepE19Detection()...)
}

// sweepE19Overhead is E19's sampler-overhead half.
func sweepE19Overhead() []benchRow {
	var rows []benchRow
	fmt.Println("E19: self-monitoring overhead (1s-cadence history sampler + SLO engine vs bare engine)")
	fmt.Printf("%-14s %12s %14s %12s %10s\n", "sampler", "ns/event", "events/sec", "delta-ns", "delta-pct")
	flows := 8192
	if smoke {
		flows = 512
	}
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 8, ViolationEvery: 1000, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	baseline := 0.0
	for _, on := range []bool{false, true} {
		sched := sim.NewScheduler()
		reg := obs.NewRegistry()
		mon := core.NewMonitor(sched, core.Config{Metrics: reg})
		if err := mon.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		var db *histdb.DB
		if on {
			db = histdb.New(histdb.Config{Registry: reg, SampleEvery: time.Second, Retention: 10 * time.Minute})
			slo.New(slo.Config{DB: db, Rules: slo.BuiltinRules(), Registry: reg})
			db.Start()
		}
		for _, e := range open {
			mon.HandleEvent(e)
		}
		// Warm once, then best-of-five: the delta target is 1% of a
		// ~100ns event, so single-pass noise must be squeezed out.
		for i := range returns {
			mon.HandleEvent(returns[i])
		}
		before := reg.Snapshot()
		best := time.Duration(1<<63 - 1)
		for pass := 0; pass < 5; pass++ {
			start := time.Now()
			for i := range returns {
				mon.HandleEvent(returns[i])
			}
			if elapsed := time.Since(start); elapsed < best {
				best = elapsed
			}
		}
		ns := float64(best.Nanoseconds()) / float64(len(returns))
		label := "off"
		if on {
			label = "on/1s"
		}
		if !on {
			baseline = ns
		}
		delta := ns - baseline
		pct := 100 * delta / baseline
		fmt.Printf("%-14s %12.1f %14.0f %12.1f %9.2f%%\n",
			label, ns, float64(len(returns))/best.Seconds(), delta, pct)
		rows = append(rows, benchRow{
			Exp:           "e19",
			Params:        map[string]any{"phase": "overhead", "sampler": label, "flows": flows},
			NsPerEvent:    ns,
			Extra:         map[string]any{"events": len(returns), "delta_ns_vs_off": delta, "delta_pct_vs_off": pct, "smoke": smoke},
			CounterDeltas: obs.DiffCounters(before, reg.Snapshot()),
		})
		if db != nil {
			db.Close()
		}
		// The 1% gate with a 4ns floor: on sub-100ns events, 1% is
		// below timer noise, and the sampler runs off the hot path.
		if on && !smoke && delta > baseline*0.01 && delta > 4.0 {
			panic(fmt.Sprintf("e19: sampler overhead %.1fns (%.2f%%) exceeds the 1%% budget", delta, pct))
		}
	}
	return rows
}

// sweepE19Detection is E19's burn-rate detection half.
func sweepE19Detection() []benchRow {
	fmt.Println("E19: induced shard stall -> shed burst -> critical alert (gate: within 2 fast windows)")
	const (
		shards      = 4
		sampleEvery = 100 * time.Millisecond
		fastWindow  = 300 * time.Millisecond
	)
	chunk := 4000
	stall := 250 * time.Millisecond
	if smoke {
		chunk = 800
		stall = 60 * time.Millisecond
	}
	reg := obs.NewRegistry()
	sm := core.NewShardedMonitor(shards, core.Config{
		Metrics:    reg,
		ShedPolicy: core.ShedDropNewest,
	})
	defer sm.Close()
	if err := sm.AddProperty(fwProp()); err != nil {
		panic(err)
	}

	// Synthetic sampler clock: each tick advances 100ms no matter how
	// long the wall-clock feeding took, so rates are deterministic in
	// sample time and the detection gate is in ticks, not wall jitter.
	now := sim.Epoch
	db := histdb.New(histdb.Config{
		Registry: reg, SampleEvery: sampleEvery, Retention: time.Minute,
		Now: func() time.Time { return now },
	})
	eng := slo.New(slo.Config{
		DB: db,
		Rules: []slo.Rule{{
			Name:   "shard-stall-shed",
			Series: "switchmon_*shed_events_total*",
			// Low enough that one burst tick keeps the slow (900ms)
			// window hot too — critical needs both windows over.
			Threshold: 25, // events/s in sample time
			Fast:      fastWindow,
			Slow:      3 * fastWindow,
		}},
		Registry: reg,
	})

	state := func() string {
		for _, a := range eng.Alerts() {
			if a.Rule == "shard-stall-shed" {
				return a.State
			}
		}
		return "?"
	}
	work := trace.HighFlowWorkload{Flows: chunk / 2, Rounds: 30, Gap: time.Microsecond}.Events(sim.Epoch)
	next := 0
	var last time.Time
	feed := func(n int) {
		for i := 0; i < n; i++ {
			e := work[next]
			next++
			if e.Time.After(last) {
				sm.Tick(e.Time)
				last = e.Time
			}
			if err := sm.Submit(e); err != nil {
				panic(err)
			}
		}
	}
	tick := func() {
		now = now.Add(sampleEvery)
		db.Tick()
	}

	// Quiet baseline: no traffic, rates rest at zero, rule rests at ok.
	// (A loaded-but-healthy baseline would hang the gate's determinism
	// on producer/consumer timing; the detection claim only needs a
	// before/after edge.)
	for i := 0; i < 10; i++ {
		tick()
	}
	if s := state(); s != "ok" {
		panic(fmt.Sprintf("e19: baseline state %s, want ok", s))
	}
	shedBase := reg.Snapshot().CounterValue("switchmon_ledger_shed_events_total")

	// Induce: stall shard 0 on its next event; the burst behind the
	// stall overflows its queue and sheds.
	spec := fault.DefaultSpec()
	spec.StallShard = 0
	spec.StallAt = 1 // fires on the first probe call at or past seq 1, i.e. immediately
	spec.Stall = stall
	if err := fault.ArmShardFaults(sm, spec); err != nil {
		panic(err)
	}
	ticksToCritical := 0
	for i := 1; i <= 12; i++ {
		feed(chunk)
		tick()
		if state() == "critical" {
			ticksToCritical = i
			break
		}
	}
	shed := reg.Snapshot().CounterValue("switchmon_ledger_shed_events_total") - shedBase
	fmt.Printf("%-22s %8d\n", "shed events", shed)
	fmt.Printf("%-22s %8d  (gate: <= %d = 2 fast windows)\n", "ticks to critical", ticksToCritical, 2*int(fastWindow/sampleEvery))
	if shed == 0 {
		panic("e19: induced stall shed nothing — the degradation never happened")
	}
	if ticksToCritical == 0 {
		panic("e19: shed burst never drove the rule critical")
	}
	if !smoke && ticksToCritical > 2*int(fastWindow/sampleEvery) {
		panic(fmt.Sprintf("e19: critical after %d ticks, want <= %d (2 fast windows)", ticksToCritical, 2*int(fastWindow/sampleEvery)))
	}
	trs := eng.Transitions()
	return []benchRow{{
		Exp: "e19",
		Params: map[string]any{
			"phase": "detection", "shards": shards,
			"sample_every_ms": sampleEvery.Milliseconds(), "fast_window_ms": fastWindow.Milliseconds(),
			"stall_ms": stall.Milliseconds(), "chunk": chunk,
		},
		Extra: map[string]any{
			"shed_events":       shed,
			"ticks_to_critical": ticksToCritical,
			"detection_ms":      ticksToCritical * int(sampleEvery.Milliseconds()),
			"transitions":       len(trs),
			"smoke":             smoke,
		},
	}}
}
