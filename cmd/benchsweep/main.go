// Command benchsweep runs the parameter sweeps behind the repository's
// performance experiments (E3-E7 in DESIGN.md) and prints the series the
// paper's Sec. 3.3 claims predict:
//
//	e3  per-event processing time vs. live instance count, per backend
//	    (Varanus grows linearly; Static Varanus / registers stay flat)
//	e4  state-update cost: flow-table modifications vs. register writes
//	e5  side-effect control: inline vs. split forwarding cost and the
//	    split monitor's missed violations under queue pressure
//	e6  provenance levels: none / limited / full overhead
//	e7  external monitoring redirect volume (OpenFlow 1.3) vs. on-switch
//	e8  sharded-engine throughput vs. shard count on the high-flow
//	    steady state (speedup needs GOMAXPROCS >= shards)
//
// Usage: benchsweep [-exp all|e3|e4|e5|e6|e7|e8] [-cpuprofile f] [-memprofile f]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"switchmon/internal/backend"
	"switchmon/internal/core"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, e3, e4, e5, e6, e7, e8")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // report live objects, not garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchsweep: %v\n", err)
			os.Exit(1)
		}
	}()
	run := map[string]func(){
		"e3": sweepE3, "e4": sweepE4, "e5": sweepE5, "e6": sweepE6, "e7": sweepE7,
		"e8": sweepE8,
	}
	if *exp == "all" {
		for _, name := range []string{"e3", "e4", "e5", "e6", "e7", "e8"} {
			run[name]()
			fmt.Println()
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchsweep: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn()
}

func fwProp() *property.Property {
	return property.CatalogByName(property.DefaultParams(), "firewall-basic")
}

// sweepE3: per-event cost vs. live instances, per backend.
func sweepE3() {
	fmt.Println("E3: per-event processing time vs live instances (Sec 3.3 pipeline depth)")
	fmt.Printf("%-10s %-18s %12s %12s %14s\n", "instances", "backend", "ns/event", "depth", "state-cost")
	for _, flows := range []int{16, 64, 256, 1024, 4096} {
		makers := []struct {
			name string
			mk   func(*sim.Scheduler) backend.Backend
		}{
			{"Varanus", func(s *sim.Scheduler) backend.Backend { return backend.NewVaranus(s) }},
			{"Static Varanus", func(s *sim.Scheduler) backend.Backend { return backend.NewStaticVaranus(s) }},
			{"POF and P4", func(s *sim.Scheduler) backend.Backend { return backend.NewP4(s) }},
			{"Ideal", func(s *sim.Scheduler) backend.Backend { return backend.NewIdeal(s) }},
		}
		for _, m := range makers {
			sched := sim.NewScheduler()
			b := m.mk(sched)
			if err := b.AddProperty(fwProp()); err != nil {
				panic(err)
			}
			// Build up `flows` live instances, then time return traffic.
			setup := trace.FirewallWorkload{Flows: flows, ReturnsPerFlow: 0, Gap: time.Microsecond}
			for _, e := range setup.Events(sim.Epoch) {
				b.HandleEvent(e)
			}
			work := trace.FirewallWorkload{Flows: flows, ReturnsPerFlow: 1, Gap: time.Microsecond}
			events := work.Events(sim.Epoch)
			// Skip the setup prefix (the opens) and keep only returns.
			events = events[2*flows:]
			start := time.Now()
			for i := range events {
				b.HandleEvent(events[i])
			}
			elapsed := time.Since(start)
			fmt.Printf("%-10d %-18s %12.0f %12d %14d\n",
				flows, m.name, float64(elapsed.Nanoseconds())/float64(len(events)),
				b.PipelineDepth(), b.StateUpdateCost())
		}
	}
}

// sweepE4: state mechanism update cost at varying store sizes.
func sweepE4() {
	fmt.Println("E4: state-update cost, flow-table modification vs register write")
	fmt.Printf("%-12s %-22s %14s\n", "store-size", "mechanism", "ns/transition")
	for _, size := range []int{128, 1024, 8192, 65536} {
		for _, mech := range []string{"rule-table (OpenFlow)", "registers (P4)"} {
			var cost interface {
				transitions(n, live int)
				total() uint64
			}
			if mech == "rule-table (OpenFlow)" {
				cost = newRuleState()
			} else {
				cost = newRegisterState()
			}
			// Fill to the target size.
			cost.transitions(size, size)
			const n = 20000
			start := time.Now()
			cost.transitions(n, size)
			elapsed := time.Since(start)
			fmt.Printf("%-12d %-22s %14.1f\n", size, mech, float64(elapsed.Nanoseconds())/n)
		}
	}
}

// The cost mechanisms mirror internal/backend's models; reimplemented
// here in miniature so the sweep measures the raw mechanisms.
type ruleState struct {
	rules []uint64
	seq   uint64
}

func newRuleState() *ruleState { return &ruleState{} }

func (rs *ruleState) transitions(n, live int) {
	for i := 0; i < n; i++ {
		rs.seq++
		pos := 0
		if len(rs.rules) > 0 {
			pos = int(rs.seq * 2654435761 % uint64(len(rs.rules)))
		}
		rs.rules = append(rs.rules, 0)
		copy(rs.rules[pos+1:], rs.rules[pos:])
		rs.rules[pos] = rs.seq
		for len(rs.rules) > live+1 {
			pos = int(rs.seq % uint64(len(rs.rules)))
			copy(rs.rules[pos:], rs.rules[pos+1:])
			rs.rules = rs.rules[:len(rs.rules)-1]
		}
	}
}
func (rs *ruleState) total() uint64 { return rs.seq }

type registerState struct {
	cells []uint64
	ops   uint64
}

func newRegisterState() *registerState { return &registerState{cells: make([]uint64, 65536)} }

func (rg *registerState) transitions(n, live int) {
	for i := 0; i < n; i++ {
		rg.ops++
		rg.cells[(rg.ops*2654435761)%uint64(len(rg.cells))] = rg.ops
	}
}
func (rg *registerState) total() uint64 { return rg.ops }

// sweepE5: inline vs split processing.
func sweepE5() {
	fmt.Println("E5: side-effect control (Feature 9): inline vs split")
	fmt.Printf("%-10s %14s %14s %16s\n", "mode", "ns/event(fwd)", "ns/flush-ev", "missed-viols")
	w := trace.NATWorkload{Flows: 20000, MistranslateEvery: 50, Gap: time.Microsecond}
	events := w.Events(sim.Epoch)
	nat := property.CatalogByName(property.DefaultParams(), "nat-reverse")

	for _, mode := range []core.Mode{core.Inline, core.Split} {
		sched := sim.NewScheduler()
		viols := 0
		cfg := core.Config{Mode: mode, OnViolation: func(*core.Violation) { viols++ }}
		if mode == core.Split {
			cfg.SplitFlushLimit = 1024 // bounded slow-path queue
		}
		mon := core.NewMonitor(sched, cfg)
		if err := mon.AddProperty(nat); err != nil {
			panic(err)
		}
		start := time.Now()
		for i := range events {
			mon.HandleEvent(events[i])
		}
		fwd := time.Since(start)
		start = time.Now()
		flushed := mon.Flush()
		flush := time.Since(start)
		flushNs := 0.0
		if flushed > 0 {
			flushNs = float64(flush.Nanoseconds()) / float64(flushed)
		}
		expect := 20000 / 50
		fmt.Printf("%-10s %14.0f %14.0f %11d/%d\n",
			mode, float64(fwd.Nanoseconds())/float64(len(events)), flushNs, expect-viols, expect)
	}
}

// sweepE6: provenance levels.
func sweepE6() {
	fmt.Println("E6: provenance level (Feature 10) overhead")
	fmt.Printf("%-10s %12s %16s\n", "level", "ns/event", "history-records")
	w := trace.FirewallWorkload{Flows: 2000, ReturnsPerFlow: 5, ViolationEvery: 10, Gap: time.Microsecond}
	events := w.Events(sim.Epoch)
	for _, level := range []core.ProvLevel{core.ProvNone, core.ProvLimited, core.ProvFull} {
		sched := sim.NewScheduler()
		records := 0
		mon := core.NewMonitor(sched, core.Config{
			Provenance:  level,
			OnViolation: func(v *core.Violation) { records += len(v.History) },
		})
		if err := mon.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		start := time.Now()
		for i := range events {
			mon.HandleEvent(events[i])
		}
		elapsed := time.Since(start)
		fmt.Printf("%-10s %12.0f %16d\n", level,
			float64(elapsed.Nanoseconds())/float64(len(events)), records)
	}
}

// sweepE7: redirect volume of external monitoring.
func sweepE7() {
	fmt.Println("E7: bytes redirected to an external monitor (OpenFlow 1.3) vs on-switch")
	fmt.Printf("%-10s %14s %16s %16s\n", "hosts", "packets", "OF1.3 bytes", "on-switch bytes")
	for _, hosts := range []int{8, 32, 128} {
		w := trace.LearningWorkload{Hosts: hosts, PacketsPerHost: 50, PayloadBytes: 512, Gap: time.Microsecond}
		events := w.Events(sim.Epoch)
		sched := sim.NewScheduler()
		of13 := backend.NewOpenFlow13(sched)
		ideal := backend.NewIdeal(sched)
		lsw := property.CatalogByName(property.DefaultParams(), "lswitch-unicast")
		if err := of13.AddProperty(lsw); err != nil {
			panic(err)
		}
		if err := ideal.AddProperty(lsw); err != nil {
			panic(err)
		}
		packets := 0
		for i := range events {
			if events[i].Kind == core.KindArrival {
				packets++
			}
			of13.HandleEvent(events[i])
			ideal.HandleEvent(events[i])
		}
		fmt.Printf("%-10d %14d %16d %16d\n", hosts, packets, of13.RedirectedBytes(), 0)
	}
}

// sweepE8: sharded-engine throughput vs shard count. The workload is the
// high-flow steady state: a large established population probed by
// round-robin return traffic, so consecutive events hit different shards.
func sweepE8() {
	fmt.Printf("E8: sharded engine throughput vs shards (GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
	fmt.Printf("%-10s %12s %14s %12s\n", "shards", "ns/event", "events/sec", "violations")
	const flows = 8192
	open := trace.HighFlowWorkload{Flows: flows, Gap: time.Microsecond}.Events(sim.Epoch)
	work := trace.HighFlowWorkload{Flows: flows, Rounds: 8, ViolationEvery: 1000, Gap: time.Microsecond}.Events(sim.Epoch)
	returns := work[2*flows:]

	// Inline baseline: the single-threaded engine on the same stream.
	{
		sched := sim.NewScheduler()
		viols := 0
		mon := core.NewMonitor(sched, core.Config{OnViolation: func(*core.Violation) { viols++ }})
		if err := mon.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		for _, e := range open {
			mon.HandleEvent(e)
		}
		start := time.Now()
		for i := range returns {
			mon.HandleEvent(returns[i])
		}
		elapsed := time.Since(start)
		fmt.Printf("%-10s %12.0f %14.0f %12d\n", "inline",
			float64(elapsed.Nanoseconds())/float64(len(returns)),
			float64(len(returns))/elapsed.Seconds(), viols)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		viols := 0
		sm := core.NewShardedMonitor(shards, core.Config{OnViolation: func(*core.Violation) { viols++ }})
		if err := sm.AddProperty(fwProp()); err != nil {
			panic(err)
		}
		sm.SubmitBatch(open)
		sm.Drain()
		start := time.Now()
		sm.SubmitBatch(returns)
		sm.Barrier()
		elapsed := time.Since(start)
		fmt.Printf("%-10d %12.0f %14.0f %12d\n", shards,
			float64(elapsed.Nanoseconds())/float64(len(returns)),
			float64(len(returns))/elapsed.Seconds(), viols)
		sm.Close()
	}
}
