// NAT example: the paper's Sec. 2.2 property — reverse translation must
// mirror the initial outgoing translation — demonstrating packet identity
// (Feature 5) across header rewrites and negative match (Feature 6).
//
// The NAT installs on-switch SetField rules, so the same PacketID is seen
// before and after translation; the monitor correlates the four
// observations of the paper's diagram.
//
// Run: go run ./examples/nat
package main

import (
	"fmt"

	"switchmon/internal/apps"
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

func main() {
	sched := sim.NewScheduler()
	sw := dataplane.New("nat", sched, 1)
	sw.AddPort(1, nil) // internal
	sw.AddPort(2, nil) // external

	publicIP := packet.MustIPv4("198.51.100.1")
	// Every second translation installs a wrong reverse mapping.
	apps.NewNAT(sw, 1, 2, publicIP, apps.NATFaults{MistranslateReverseEvery: 2})

	mon := core.NewMonitor(sched, core.Config{
		Provenance: core.ProvFull,
		OnViolation: func(v *core.Violation) {
			fmt.Println(v)
			fmt.Println()
		},
	})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "nat-reverse")); err != nil {
		panic(err)
	}
	sw.Observe(mon.HandleEvent)

	macC, macR := packet.MustMAC("02:00:00:00:00:01"), packet.MustMAC("02:00:00:00:00:02")
	server := packet.MustIPv4("203.0.113.9")

	for i := 0; i < 4; i++ {
		internal := packet.IPv4FromUint32(0x0a000000 + uint32(i+1))
		sport := uint16(5000 + i)
		// Outbound: the packet is translated on-switch.
		out := packet.NewTCP(macC, macR, internal, server, sport, 80, packet.FlagSYN, nil)
		sw.Inject(1, out)
		// The server answers the translated source; the NAT's reverse rule
		// rewrites back toward the client (every 2nd one incorrectly).
		ret := packet.NewTCP(macR, macC, server, publicIP, 80, uint16(60001+i), packet.FlagSYN|packet.FlagACK, nil)
		sw.Inject(2, ret)
	}

	st := mon.Stats()
	fmt.Printf("flows=4 violations=%d (every 2nd reverse mapping is wrong)\n", st.Violations)
	fmt.Printf("switch stats: %+v\n", sw.Stats())
}
