// Quickstart: the paper's Sec. 1 example, end to end in ~60 lines of API.
//
// A learning switch must unicast packets to learned destinations on the
// learned port. We build the switch, attach the monitor with that
// property, inject traffic through a buggy learning switch, and watch the
// monitor catch the mis-forwarding.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"switchmon/internal/apps"
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

func main() {
	// 1. A deterministic clock drives everything.
	sched := sim.NewScheduler()

	// 2. A software switch with four ports.
	sw := dataplane.New("s1", sched, 1)
	for p := 1; p <= 4; p++ {
		sw.AddPort(dataplane.PortNo(p), nil)
	}

	// 3. The network function under test: a learning switch that forwards
	// every third known-destination packet out the wrong port.
	apps.NewLearningSwitch(sw, apps.LearningFaults{WrongPortEvery: 3})

	// 4. The monitor, with the Sec. 1 property from the catalogue:
	// "once a destination D is learned, packets to D are unicast on the
	// appropriate port."
	mon := core.NewMonitor(sched, core.Config{
		Provenance: core.ProvFull,
		OnViolation: func(v *core.Violation) {
			fmt.Println(v)
			fmt.Println()
		},
	})
	prop := property.CatalogByName(property.DefaultParams(), "lswitch-unicast")
	if err := mon.AddProperty(prop); err != nil {
		panic(err)
	}

	// 5. The monitor observes the switch's event stream: arrivals, every
	// forwarding decision (including drops), and out-of-band events.
	sw.Observe(mon.HandleEvent)

	// 6. Traffic: hosts A (port 1) and B (port 2) exchange packets.
	macA, macB := packet.MustMAC("02:00:00:00:00:0a"), packet.MustMAC("02:00:00:00:00:0b")
	ipA, ipB := packet.MustIPv4("10.0.0.1"), packet.MustIPv4("10.0.0.2")
	for i := 0; i < 5; i++ {
		sw.Inject(1, packet.NewTCP(macA, macB, ipA, ipB, uint16(1000+i), 80, packet.FlagACK, nil))
		sw.Inject(2, packet.NewTCP(macB, macA, ipB, ipA, 80, uint16(1000+i), packet.FlagACK, nil))
	}

	st := mon.Stats()
	fmt.Printf("events=%d instances=%d violations=%d\n", st.Events, st.Created, st.Violations)
}
