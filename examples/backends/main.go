// Backends example: the paper's Table 2, live. The same violating event
// stream is fed to every surveyed switch-state approach; each either
// rejects the property at compile time (naming its capability gap) or
// monitors with its architectural visibility limits — reproducing the
// detection hierarchy the paper's comparison implies.
//
// Run: go run ./examples/backends
package main

import (
	"fmt"

	"switchmon/internal/backend"
	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

func main() {
	sched := sim.NewScheduler()
	backends := backend.All(sched)

	fw := property.CatalogByName(property.DefaultParams(), "firewall-basic")
	fmt.Printf("property: %s\n  %q\n\n", fw.Name, fw.Description)

	// Compile the property on every backend.
	installed := map[string]backend.Backend{}
	for _, b := range backends {
		if err := b.AddProperty(fw); err != nil {
			fmt.Printf("%-20s REJECTS: %v\n", b.Name(), err)
			continue
		}
		fmt.Printf("%-20s accepts\n", b.Name())
		installed[b.Name()] = b
	}

	// One violating stream: A->B outbound, then the return wrongfully
	// dropped.
	macA, macB := packet.MustMAC("02:00:00:00:00:0a"), packet.MustMAC("02:00:00:00:00:0b")
	ipA, ipB := packet.MustIPv4("10.0.0.1"), packet.MustIPv4("203.0.113.9")
	ab := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
	ba := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil)
	events := []core.Event{
		{Kind: core.KindArrival, Time: sched.Now(), PacketID: 1, Packet: ab, InPort: 1},
		{Kind: core.KindEgress, Time: sched.Now(), PacketID: 1, Packet: ab, InPort: 1, OutPort: 2},
		{Kind: core.KindArrival, Time: sched.Now(), PacketID: 2, Packet: ba, InPort: 2},
		{Kind: core.KindEgress, Time: sched.Now(), PacketID: 2, Packet: ba, InPort: 2, Dropped: true},
	}
	for _, e := range events {
		for _, b := range installed {
			b.HandleEvent(e)
		}
	}

	fmt.Printf("\n%-20s %-10s %-8s %s\n", "backend", "violations", "depth", "notes")
	for _, b := range backends {
		bb, ok := installed[b.Name()]
		if !ok {
			continue
		}
		note := ""
		switch v := bb.(type) {
		case *backend.OpenFlow13:
			note = fmt.Sprintf("redirected %d B to the controller, saw no drops", v.RedirectedBytes())
		case *backend.Varanus:
			note = fmt.Sprintf("wrote %d concrete rules (recursive learn)", v.StateUpdateCost())
		}
		fmt.Printf("%-20s %-10d %-8d %s\n", bb.Name(), bb.Violations(), bb.PipelineDepth(), note)
	}
	fmt.Println("\nThe wrongful drop is visible only to architectures with drop-visible")
	fmt.Println("egress observation — the paper's Sec. 2.2 gap, live.")
}
