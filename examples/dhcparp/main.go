// DHCP + ARP proxy example: the paper's wandering-match properties
// (Feature 8) — instance identity crosses protocols, from a DHCP lease's
// your_ip field to ARP request/reply fields — plus a negative observation
// with a timeout action (Feature 7).
//
// Run: go run ./examples/dhcparp
package main

import (
	"fmt"
	"time"

	"switchmon/internal/apps"
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// splitController routes DHCP to the server and the rest to the proxy.
type splitController struct {
	dhcp  *apps.DHCPServer
	proxy *apps.ARPProxy
}

func (c *splitController) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	if c.dhcp.HandleDHCP(sw, inPort, pid, p) {
		return
	}
	c.proxy.PacketIn(sw, inPort, pid, p)
}

func run(preload bool) uint64 {
	sched := sim.NewScheduler()
	sw := dataplane.New("edge", sched, 1)
	for p := 1; p <= 4; p++ {
		sw.AddPort(dataplane.PortNo(p), nil)
	}

	serverIP := packet.MustIPv4("10.0.0.2")
	serverMAC := packet.MustMAC("02:00:00:00:00:02")
	pool := []packet.IPv4{packet.MustIPv4("10.0.0.100"), packet.MustIPv4("10.0.0.101")}
	dhcp := apps.NewDHCPServer(sw, serverIP, serverMAC, 1, pool, 300*time.Second, apps.DHCPFaults{})
	proxy := apps.NewARPProxy(sw, apps.ARPProxyFaults{})
	proxy.PreloadFromDHCP = preload
	proxy.ObserveDHCP(sw)
	sw.SetController(&splitController{dhcp: dhcp, proxy: proxy}, dataplane.MissController)

	mon := core.NewMonitor(sched, core.Config{
		Provenance: core.ProvFull,
		OnViolation: func(v *core.Violation) {
			fmt.Println(v)
			fmt.Println()
		},
	})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "dhcparp-preload")); err != nil {
		panic(err)
	}
	sw.Observe(mon.HandleEvent)

	// A client leases an address over DHCP...
	clientMAC := packet.MustMAC("02:00:00:00:00:0a")
	req := packet.NewDHCP(clientMAC, packet.BroadcastMAC, packet.IPv4{}, packet.BroadcastIPv4,
		&packet.DHCPv4{Op: packet.DHCPBootRequest, Xid: 1, MsgType: packet.DHCPRequest, ClientMAC: clientMAC})
	sw.Inject(1, req)
	sched.RunFor(time.Second)

	// ...and another host ARPs for the leased address. A correct combined
	// deployment answers from the pre-loaded cache; the faulty one never
	// replies and the negative observation fires after the 2s window.
	other := packet.MustMAC("02:00:00:00:00:0b")
	sw.Inject(2, packet.NewARPRequest(other, packet.MustIPv4("10.0.0.3"), packet.MustIPv4("10.0.0.100")))
	sched.RunFor(5 * time.Second)

	return mon.Stats().Violations
}

func main() {
	fmt.Println("=== correct deployment: ARP cache pre-loaded from DHCP leases ===")
	v := run(true)
	fmt.Printf("violations: %d (want 0)\n\n", v)

	fmt.Println("=== faulty deployment: cache preloading disabled ===")
	v = run(false)
	fmt.Printf("violations: %d (want 1: the wandering-match instance timed out)\n", v)
}
