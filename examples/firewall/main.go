// Firewall example: the paper's Sec. 2.1 properties (all three
// refinements) monitoring a stateful firewall on a simulated network with
// real hosts — including the timeout (Feature 3) and connection-close
// obligation (Feature 4) behaviours.
//
// The property text is given in the DSL to show the full pipeline:
// text -> parse -> compile -> monitor.
//
// Run: go run ./examples/firewall
package main

import (
	"fmt"
	"time"

	"switchmon/internal/apps"
	"switchmon/internal/core"
	"switchmon/internal/dsl"
	"switchmon/internal/netsim"
	"switchmon/internal/packet"
	"switchmon/internal/sim"
)

const firewallProperty = `
property "firewall-guarded" {
  description "for 60s after A->B traffic, or until the connection closes, B->A packets are not dropped"

  on arrival "outgoing" {
    match in_port == 1
    bind $A = ip.src
    bind $B = ip.dst
  }

  on egress "return-dropped" within 60s {
    match ip.src == $B
    match ip.dst == $A
    match dropped == 1
    until packet { ip.src == $A; ip.dst == $B; tcp.fin == 1 }
    until packet { ip.src == $B; ip.dst == $A; tcp.fin == 1 }
    until packet { ip.src == $A; ip.dst == $B; tcp.rst == 1 }
    until packet { ip.src == $B; ip.dst == $A; tcp.rst == 1 }
  }
}
`

func main() {
	prop, err := dsl.Parse(firewallProperty)
	if err != nil {
		panic(err)
	}
	fmt.Println("Loaded property (canonical form):")
	fmt.Println(dsl.Format(prop))

	sched := sim.NewScheduler()
	n := netsim.New(sched)
	n.LinkLatency = time.Millisecond

	sw := n.AddSwitch("fw", 1)
	macC, macS := packet.MustMAC("02:00:00:00:00:01"), packet.MustMAC("02:00:00:00:00:02")
	ipC, ipS := packet.MustIPv4("10.0.0.1"), packet.MustIPv4("203.0.113.9")
	client := n.AddHost("client", macC, ipC, sw, 1)
	server := n.AddHost("server", macS, ipS, sw, 2)
	server.ServePorts[443] = true

	// The firewall wrongfully drops every 4th admissible return packet.
	apps.NewFirewall(sw, 1, 2, 60*time.Second, apps.FirewallFaults{DropValidReturnEvery: 4})

	viols := 0
	mon := core.NewMonitor(sched, core.Config{
		Provenance: core.ProvFull,
		OnViolation: func(v *core.Violation) {
			viols++
			fmt.Println(v)
			fmt.Println()
		},
	})
	if err := mon.AddProperty(prop); err != nil {
		panic(err)
	}
	sw.Observe(mon.HandleEvent)

	fmt.Println("--- scenario 1: violating drops are caught ---")
	for i := 0; i < 8; i++ {
		client.Send(packet.NewTCP(macC, macS, ipC, ipS, uint16(40000+i), 443, packet.FlagSYN, nil))
		sched.RunFor(5 * time.Millisecond)
	}
	fmt.Printf("violations so far: %d (8 connections, every 4th return dropped)\n\n", viols)

	fmt.Println("--- scenario 2: a drop after the connection closes is NOT a violation ---")
	before := viols
	client.Send(packet.NewTCP(macC, macS, ipC, ipS, 41000, 443, packet.FlagSYN, nil))
	sched.RunFor(5 * time.Millisecond)
	client.Send(packet.NewTCP(macC, macS, ipC, ipS, 41000, 443, packet.FlagFIN|packet.FlagACK, nil))
	sched.RunFor(5 * time.Millisecond)
	// A stale server packet now gets (correctly) dropped by the firewall.
	server.Send(packet.NewTCP(macS, macC, ipS, ipC, 443, 41000, packet.FlagACK, nil))
	sched.RunFor(5 * time.Millisecond)
	fmt.Printf("violations added: %d (want 0: obligation was discharged by the FIN)\n\n", viols-before)

	fmt.Println("--- scenario 3: a drop after the 60s idle window is NOT a violation ---")
	before = viols
	client.Send(packet.NewTCP(macC, macS, ipC, ipS, 42000, 443, packet.FlagSYN, nil))
	sched.RunFor(61 * time.Second) // the monitor's window and the firewall's pinhole both lapse
	server.Send(packet.NewTCP(macS, macC, ipS, ipC, 443, 42000, packet.FlagACK, nil))
	sched.RunFor(5 * time.Millisecond)
	fmt.Printf("violations added: %d (want 0: window expired)\n", viols-before)

	st := mon.Stats()
	fmt.Printf("\nmonitor stats: events=%d created=%d discharged=%d expired=%d violations=%d\n",
		st.Events, st.Created, st.Discharged, st.Expired, st.Violations)
}
