module switchmon

go 1.22
