// Command endpointsmoke is check.sh's introspection-surface gate: it
// builds cmd/switchmon, starts it with every observability feature on
// (-metrics-addr, tracing, state accounting), hits every endpoint the
// mux serves, and fails on any non-200 status or malformed body. The
// point is end-to-end wiring — a flag that stops reaching the mux, an
// endpoint that panics on a live engine, or a JSON shape regression
// all surface here, where unit tests against a hand-built MuxConfig
// would keep passing.
//
// Usage: go run ./scripts/endpointsmoke (from the repository root)
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "endpointsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("endpointsmoke: all endpoints OK")
}

func run() error {
	dir, err := os.MkdirTemp("", "endpointsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "switchmon")
	build := exec.Command("go", "build", "-o", bin, "./cmd/switchmon")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building switchmon: %w", err)
	}

	// A demo run with the whole observability surface on: metrics mux
	// on an ephemeral port, every event traced, every filing sketched,
	// and a watermark low enough that the demo raises state pressure.
	// -hold keeps the mux serving after the demo completes.
	cmd := exec.Command(bin,
		"-demo", "firewall",
		"-metrics-addr", "127.0.0.1:0",
		"-hold", "1m",
		"-trace-sample", "1",
		"-sample-every", "50ms", // fast cadence so /query has points within the smoke's patience
		"-slo", "smoke-extra:switchmon_monitor_events_total:1e12:1m",
		"-state-topk", "8", "-state-sample", "1", "-state-watermark", "1",
		"-json",
	)
	cmd.Stdout = io.Discard
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	base, err := readServingAddr(stderr)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	client := &http.Client{Timeout: 5 * time.Second}
	checks := []struct {
		path string
		kind string // "json", "ndjson", "text"
	}{
		{"/metrics", "text"},
		{"/metrics?format=json", "json"},
		{"/healthz", "text"}, // "ok" when sound, a JSON degradation report otherwise
		{"/violations", "json"},
		{"/violations?since=0&limit=2", "json"},
		{"/trace", "ndjson"},
		{"/trace?limit=3", "ndjson"},
		{"/state", "json"},
		{"/query?series=*", "json"},
		{"/query?series=switchmon_*_total&step=100ms", "json"},
		{"/alerts", "json"},
		{"/alerts?since=0&limit=4", "json"},
		{"/buildinfo", "json"},
		{"/debug/pprof/cmdline", "text"},
	}
	for _, c := range checks {
		if err := check(client, base+c.path, c.kind); err != nil {
			return fmt.Errorf("GET %s: %w", c.path, err)
		}
	}
	if err := selfMonitoring(client, base); err != nil {
		return err
	}

	// Spot-check content, not just shape: the metric families the PR
	// contract names must be present, and /state must report the demo's
	// installed properties with the pressure watermark tripped.
	body, err := get(client, base+"/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"switchmon_build_info{", "switchmon_go_goroutines",
		"switchmon_state_live_instances{", "switchmon_state_pressure{",
	} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("/metrics: missing %q", want)
		}
	}
	body, err = get(client, base+"/state")
	if err != nil {
		return err
	}
	var state struct {
		Properties []struct {
			Property string `json:"property"`
			Filings  uint64 `json:"filings"`
			TopKeys  []any  `json:"top_keys"`
		} `json:"properties"`
	}
	if err := json.Unmarshal(body, &state); err != nil {
		return fmt.Errorf("/state: %w", err)
	}
	if len(state.Properties) == 0 {
		return fmt.Errorf("/state: no properties in report")
	}
	// Accounting and the sketch must have seen the demo's instances:
	// every property filed at least once, and with -state-sample 1 the
	// heavy-hitter sketch holds the demo's flow key. (Watermark
	// crossings are not asserted here — the firewall demo's flows share
	// one binding signature, so live occupancy never exceeds 1; the
	// crossing behavior is covered by the core unit tests.)
	for _, p := range state.Properties {
		if p.Filings == 0 {
			return fmt.Errorf("/state: property %s filed no instances", p.Property)
		}
		if len(p.TopKeys) == 0 {
			return fmt.Errorf("/state: property %s has no top_keys despite -state-sample 1", p.Property)
		}
	}
	return properties(client, base)
}

// selfMonitoring exercises the /query and /alerts surface beyond bare
// 200s: the history ring must hold real sampled series, the rule set
// must include both built-ins and the -slo flag's custom rule, and the
// rejection paths must answer 4xx with the uniform JSON error shape.
func selfMonitoring(client *http.Client, base string) error {
	// The sampler runs at 50ms; give it a few ticks, then /query must
	// return the monitor's throughput series with at least one point.
	deadline := time.Now().Add(10 * time.Second)
	for {
		body, err := get(client, base+"/query?series=switchmon_monitor_events_total*")
		if err != nil {
			return fmt.Errorf("GET /query: %w", err)
		}
		var q struct {
			SampleEveryNS int64 `json:"sample_every_ns"`
			Series        []struct {
				Key    string           `json:"key"`
				Kind   string           `json:"kind"`
				Points []map[string]any `json:"points"`
			} `json:"series"`
		}
		if err := json.Unmarshal(body, &q); err != nil {
			return fmt.Errorf("/query: invalid JSON: %w", err)
		}
		if q.SampleEveryNS != 50*time.Millisecond.Nanoseconds() {
			return fmt.Errorf("/query: sample_every_ns %d, want 50ms", q.SampleEveryNS)
		}
		if len(q.Series) > 0 && len(q.Series[0].Points) > 0 {
			if q.Series[0].Kind != "rate" {
				return fmt.Errorf("/query: counter series kind %q, want rate", q.Series[0].Kind)
			}
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("/query: no sampled points for switchmon_monitor_events_total after 10s")
		}
		time.Sleep(100 * time.Millisecond)
	}

	// /alerts must list the built-in rules plus the -slo custom rule,
	// all resting at ok in a healthy demo run.
	body, err := get(client, base+"/alerts")
	if err != nil {
		return fmt.Errorf("GET /alerts: %w", err)
	}
	var a struct {
		Alerts []struct {
			Rule  string `json:"rule"`
			State string `json:"state"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal(body, &a); err != nil {
		return fmt.Errorf("/alerts: invalid JSON: %w", err)
	}
	rules := map[string]string{}
	for _, al := range a.Alerts {
		rules[al.Rule] = al.State
	}
	for _, want := range []string{"detection-latency-p99", "unsound-properties", "shed-rate", "smoke-extra"} {
		if _, ok := rules[want]; !ok {
			return fmt.Errorf("/alerts: rule %q missing (have %v)", want, rules)
		}
	}
	if st := rules["smoke-extra"]; st != "ok" {
		return fmt.Errorf("/alerts: smoke-extra state %q, want ok (threshold 1e12)", st)
	}

	// Rejection paths: missing/empty glob and malformed since/step must
	// answer 4xx with the admin surface's {"error": ...} JSON shape.
	for _, bad := range []string{
		"/query",
		"/query?series=",
		"/query?series=a%7C", // trailing empty alternative
		"/query?series=*&since=notanumber",
		"/query?series=*&step=bogus",
		"/alerts?since=notanumber",
		"/alerts?limit=-1",
	} {
		status, body, err := do(client, http.MethodGet, base+bad, "")
		if err != nil {
			return fmt.Errorf("GET %s: %w", bad, err)
		}
		if status/100 != 4 {
			return fmt.Errorf("GET %s: status %d, want 4xx", bad, status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			return fmt.Errorf("GET %s: body %q is not the {\"error\": ...} shape", bad, body)
		}
	}
	return nil
}

// properties drives the /properties admin endpoint through one full
// lifecycle against the live engine: list, install a probe property
// from DSL source, confirm it appears with a bumped epoch, remove it,
// and confirm the 4xx paths (malformed DSL, unknown name) reject
// without disturbing the installed set.
func properties(client *http.Client, base string) error {
	list := func() (epoch uint64, names []string, err error) {
		body, err := get(client, base+"/properties")
		if err != nil {
			return 0, nil, err
		}
		var v struct {
			Epoch      uint64   `json:"epoch"`
			Properties []string `json:"properties"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			return 0, nil, fmt.Errorf("invalid JSON: %w", err)
		}
		return v.Epoch, v.Properties, nil
	}
	epoch0, names0, err := list()
	if err != nil {
		return fmt.Errorf("GET /properties: %w", err)
	}
	if len(names0) == 0 {
		return fmt.Errorf("/properties: demo engine lists no properties")
	}

	const probe = "endpointsmoke-probe"
	src := `property "` + probe + `" {
  description "install/remove probe for the endpoint smoke"
  on arrival "echo-request" {
    match icmp.type == 8
    bind $ID = icmp.id
  }
  unless egress "no-reply" within 2s {
    match icmp.type == 0
    match icmp.id == $ID
  }
}`
	if status, body, err := do(client, http.MethodPost, base+"/properties?tenant=smoke", src); err != nil {
		return fmt.Errorf("POST /properties: %w", err)
	} else if status != http.StatusCreated {
		return fmt.Errorf("POST /properties: status %d, want 201: %s", status, body)
	}
	epoch1, names1, err := list()
	if err != nil {
		return fmt.Errorf("GET /properties after install: %w", err)
	}
	if epoch1 <= epoch0 {
		return fmt.Errorf("/properties: epoch %d did not advance past %d on install", epoch1, epoch0)
	}
	if !slicesContains(names1, probe) {
		return fmt.Errorf("/properties: %q missing after install: %v", probe, names1)
	}

	// The 4xx paths must reject without side effects: malformed DSL is
	// 400, removing an unknown name is 404.
	if status, _, err := do(client, http.MethodPost, base+"/properties", `property "broken" {`); err != nil {
		return fmt.Errorf("POST bad DSL: %w", err)
	} else if status != http.StatusBadRequest {
		return fmt.Errorf("POST bad DSL: status %d, want 400", status)
	}
	if status, _, err := do(client, http.MethodDelete, base+"/properties?name=no-such-property", ""); err != nil {
		return fmt.Errorf("DELETE unknown: %w", err)
	} else if status != http.StatusNotFound {
		return fmt.Errorf("DELETE unknown: status %d, want 404", status)
	}

	if status, body, err := do(client, http.MethodDelete, base+"/properties?name="+probe, ""); err != nil {
		return fmt.Errorf("DELETE /properties: %w", err)
	} else if status != http.StatusOK {
		return fmt.Errorf("DELETE /properties: status %d, want 200: %s", status, body)
	}
	epoch2, names2, err := list()
	if err != nil {
		return fmt.Errorf("GET /properties after remove: %w", err)
	}
	if epoch2 <= epoch1 {
		return fmt.Errorf("/properties: epoch %d did not advance past %d on remove", epoch2, epoch1)
	}
	if slicesContains(names2, probe) {
		return fmt.Errorf("/properties: %q still listed after remove: %v", probe, names2)
	}
	if len(names2) != len(names0) {
		return fmt.Errorf("/properties: install/remove cycle changed the set: before %v, after %v", names0, names2)
	}
	return nil
}

func slicesContains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// do issues a request with an optional body and returns the status and
// response body; non-2xx statuses are returned, not errors, so callers
// can assert the rejection paths.
func do(client *http.Client, method, url, body string) (int, string, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(b), nil
}

// readServingAddr scans the daemon's stderr for the "metrics: serving
// on http://ADDR/metrics" line and returns the http://ADDR base.
func readServingAddr(stderr io.Reader) (string, error) {
	sc := bufio.NewScanner(stderr)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); strings.Contains(line, "metrics: serving on") && i >= 0 {
			return strings.TrimSuffix(strings.TrimSpace(line[i:]), "/metrics"), nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("no serving line on stderr (daemon failed to start?)")
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}

// check fetches the URL and validates the body for its kind: "json" is
// one JSON value, "ndjson" zero or more JSON values back to back, and
// "text" any 200 body.
func check(client *http.Client, url, kind string) error {
	body, err := get(client, url)
	if err != nil {
		return err
	}
	switch kind {
	case "json":
		var v any
		if err := json.Unmarshal(body, &v); err != nil {
			return fmt.Errorf("invalid JSON: %w", err)
		}
	case "ndjson":
		dec := json.NewDecoder(strings.NewReader(string(body)))
		for dec.More() {
			var v any
			if err := dec.Decode(&v); err != nil {
				return fmt.Errorf("invalid NDJSON: %w", err)
			}
		}
	}
	return nil
}
