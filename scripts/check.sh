#!/bin/sh
# check.sh — the repository's full verification gate: static analysis,
# the complete test suite, and the race detector over the concurrent
# engine (the sharded monitor runs one goroutine per shard, so -race on
# internal/core is the check that matters most after touching it).
#
# Usage: ./scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

# staticcheck is advisory locally (skipped when not installed); CI
# installs a pinned version so the gate is enforced there.
if command -v staticcheck >/dev/null 2>&1; then
  echo "==> staticcheck ./..."
  staticcheck ./...
else
  echo "==> staticcheck not installed; skipping (CI runs it)"
fi

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/core/... ./internal/backend/... ./internal/integration/... ./internal/federation/..."
go test -race ./internal/core/... ./internal/backend/... ./internal/integration/... ./internal/federation/...

# Telemetry overhead gate: recording on the hot path must stay
# allocation-free, with and without a registry attached. These run
# -count=1 so a cached pass can't mask a regression.
echo "==> zero-alloc telemetry gates"
go test -count=1 -run 'TestHotPathZeroAlloc' ./internal/obs/
go test -count=1 -run 'TestUnsampledPathZeroAlloc' ./internal/obs/tracer/
go test -count=1 -run 'TestSteadyStateAllocationBudget' ./internal/core/

# Sampler gate (E19): a steady-state metrics-history sample tick
# (counters, gauges, and histogram quantile derivation) must not
# allocate — the self-monitoring tier rides the same overhead
# discipline as the hot path it watches.
echo "==> zero-alloc metrics-history sampler gate"
go test -count=1 -run 'TestSamplerTickZeroAlloc' ./internal/obs/histdb/

# State-accounting gate (E16): the per-property state observatory —
# live/bytes/timer accounting plus the heavy-hitter sketch — must stay
# allocation-free on the steady state and under instance churn.
echo "==> zero-alloc state-accounting gate"
go test -count=1 -run 'TestStateAccountingZeroAlloc' ./internal/core/

# Zero-copy ingest gate: moving one event from wire bytes into the
# sharded engine (pooled decode, borrowed SubmitBatch, shard dispatch)
# must stay allocation-free in steady state.
echo "==> zero-alloc collector ingest gate"
go test -count=1 -run 'TestCollectorIngestZeroAlloc' ./internal/collector/

# Codec fuzz smoke: a few seconds of coverage-guided input on the packet
# codec's decode/encode fixed point. Real fuzzing budgets come from
# running `go test -fuzz` by hand; this just keeps the target healthy.
echo "==> packet codec fuzz smoke (10s)"
go test -fuzz FuzzCodecRoundTrip -fuzztime 10s -run '^$' ./internal/packet/

# Same discipline for the monitoring fabric's wire codec: strict decode
# and canonical re-encode must stay a fixed point for any input.
echo "==> wire codec fuzz smoke (10s)"
go test -fuzz FuzzWireRoundTrip -fuzztime 10s -run '^$' ./internal/wire/

# And for the v2 trace block: batches carrying span marks must decode
# and canonically re-encode for any input, without disturbing v1 frames.
echo "==> trace block fuzz smoke (10s)"
go test -fuzz FuzzTraceBlockRoundTrip -fuzztime 10s -run '^$' ./internal/wire/

# Introspection-surface smoke: start a real switchmon with the full
# observability surface on and hit every endpoint the mux serves,
# failing on any non-200 or malformed body. Catches wiring regressions
# (a flag that stops reaching the mux, an endpoint panicking on a live
# engine) that unit tests against hand-built MuxConfigs cannot.
echo "==> endpoint smoke (live switchmon, every introspection endpoint)"
go run ./scripts/endpointsmoke

echo "OK"
