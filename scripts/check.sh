#!/bin/sh
# check.sh — the repository's full verification gate: static analysis,
# the complete test suite, and the race detector over the concurrent
# engine (the sharded monitor runs one goroutine per shard, so -race on
# internal/core is the check that matters most after touching it).
#
# Usage: ./scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/core/... ./internal/backend/... ./internal/integration/..."
go test -race ./internal/core/... ./internal/backend/... ./internal/integration/...

echo "OK"
