package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockStartsAtEpoch(t *testing.T) {
	c := NewVirtualClock()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), Epoch)
	}
}

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock()
	c.Advance(5 * time.Second)
	if got, want := c.Now(), Epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	c.Advance(0)
	if got, want := c.Now(), Epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("Now() after zero advance = %v, want %v", got, want)
	}
}

func TestVirtualClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewVirtualClock().Advance(-time.Second)
}

func TestVirtualClockSetBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(past) did not panic")
		}
	}()
	c := NewVirtualClock()
	c.Set(Epoch.Add(-time.Minute))
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	if n, limited := s.Run(100); n != 3 || limited {
		t.Fatalf("Run = (%d, %v), want (3, false)", n, limited)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
	if got, want := s.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("clock after run = %v, want %v", got, want)
	}
}

func TestSchedulerFIFOAmongEqualDeadlines(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { order = append(order, i) })
	}
	s.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-deadline order = %v, want FIFO", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	timer := s.After(time.Second, func() { ran = true })
	if !timer.Stop() {
		t.Fatal("Stop() = false on live timer")
	}
	if timer.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run(10)
	if ran {
		t.Fatal("canceled task ran")
	}
	var nilTimer *Timer
	if nilTimer.Stop() {
		t.Fatal("nil Timer Stop() = true")
	}
}

func TestSchedulerTasksScheduleTasks(t *testing.T) {
	s := NewScheduler()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count < 5 {
			s.After(time.Second, reschedule)
		}
	}
	s.After(time.Second, reschedule)
	n, limited := s.Run(100)
	if n != 5 || limited {
		t.Fatalf("Run = (%d, %v), want (5, false)", n, limited)
	}
	if got, want := s.Now(), Epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("clock = %v, want %v", got, want)
	}
}

func TestSchedulerRunStepLimit(t *testing.T) {
	s := NewScheduler()
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.After(time.Millisecond, loop)
	n, limited := s.Run(50)
	if n != 50 || !limited {
		t.Fatalf("Run = (%d, %v), want (50, true)", n, limited)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var ran []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		s.After(d, func() { ran = append(ran, d) })
	}
	n := s.RunUntil(Epoch.Add(3 * time.Second))
	if n != 2 || len(ran) != 2 {
		t.Fatalf("RunUntil ran %d tasks (%v), want 2", n, ran)
	}
	if got, want := s.Now(), Epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("clock = %v, want exactly %v", got, want)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestSchedulerPastDeadlineClamped(t *testing.T) {
	s := NewScheduler()
	s.Clock().Advance(10 * time.Second)
	ran := false
	s.At(Epoch, func() { ran = true }) // in the past
	s.Run(10)
	if !ran {
		t.Fatal("past-deadline task did not run")
	}
	if got, want := s.Now(), Epoch.Add(10*time.Second); !got.Equal(want) {
		t.Fatalf("clock moved backwards: %v", got)
	}
}

func TestBernoulliBounds(t *testing.T) {
	r := NewRand(1)
	if Bernoulli(r, 0) {
		t.Fatal("Bernoulli(0) = true")
	}
	if !Bernoulli(r, 1) {
		t.Fatal("Bernoulli(1) = false")
	}
	if Bernoulli(r, -0.5) {
		t.Fatal("Bernoulli(-0.5) = true")
	}
	if !Bernoulli(r, 1.5) {
		t.Fatal("Bernoulli(1.5) = false")
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestChoice(t *testing.T) {
	r := NewRand(7)
	items := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Choice(r, items)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Choice over 100 draws saw %d of 3 items", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Choice on empty slice did not panic")
		}
	}()
	Choice(r, []string(nil))
}

// Property: for any set of non-negative delays, the scheduler executes
// tasks in non-decreasing deadline order.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var ran []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Millisecond
			s.After(d, func() { ran = append(ran, d) })
		}
		s.Run(len(delays) + 1)
		for i := 1; i < len(ran); i++ {
			if ran[i] < ran[i-1] {
				return false
			}
		}
		return len(ran) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
