package sim

import (
	"container/heap"
	"time"
)

// Task is a unit of scheduled work on a Scheduler.
type Task func()

// scheduledItem is one entry in the scheduler's priority queue.
type scheduledItem struct {
	at   time.Time
	seq  uint64 // tiebreaker: FIFO among equal timestamps
	task Task
	// canceled marks the item as a no-op without the cost of heap removal.
	canceled bool
}

type itemHeap []*scheduledItem

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h itemHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x any)   { *h = append(*h, x.(*scheduledItem)) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Timer is a handle to a scheduled task, usable to cancel it.
type Timer struct{ item *scheduledItem }

// Stop cancels the timer. It is safe to call on a nil Timer or after the
// task has already run; in both cases it reports false. Otherwise it
// reports true and guarantees the task will not run.
func (t *Timer) Stop() bool {
	if t == nil || t.item == nil || t.item.canceled {
		return false
	}
	t.item.canceled = true
	return true
}

// Scheduler combines a VirtualClock with an ordered task queue. Running the
// scheduler advances virtual time to each task's deadline and executes the
// task; tasks may schedule further tasks. All execution is single-threaded
// and deterministic: tasks with equal deadlines run in scheduling order.
//
// Scheduler is not safe for concurrent use; the simulation model in this
// repository is single-threaded by design (determinism beats parallelism
// for reproducing semantics).
type Scheduler struct {
	clock *VirtualClock
	queue itemHeap
	seq   uint64
}

// NewScheduler returns a Scheduler driving a fresh VirtualClock at Epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{clock: NewVirtualClock()}
}

// Clock returns the scheduler's virtual clock.
func (s *Scheduler) Clock() *VirtualClock { return s.clock }

// Now returns the scheduler's current virtual time.
func (s *Scheduler) Now() time.Time { return s.clock.Now() }

// At schedules task to run at the absolute virtual time t. Scheduling in
// the past runs the task at the current time (it is clamped, not dropped).
func (s *Scheduler) At(t time.Time, task Task) *Timer {
	if now := s.clock.Now(); t.Before(now) {
		t = now
	}
	it := &scheduledItem{at: t, seq: s.seq, task: task}
	s.seq++
	heap.Push(&s.queue, it)
	return &Timer{item: it}
}

// After schedules task to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, task Task) *Timer {
	return s.At(s.clock.Now().Add(d), task)
}

// Pending reports the number of live (non-canceled) tasks in the queue.
func (s *Scheduler) Pending() int {
	n := 0
	for _, it := range s.queue {
		if !it.canceled {
			n++
		}
	}
	return n
}

// Step runs the single earliest pending task, advancing the clock to its
// deadline. It reports whether a task ran.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		it := heap.Pop(&s.queue).(*scheduledItem)
		if it.canceled {
			continue
		}
		s.clock.Set(it.at)
		it.task()
		return true
	}
	return false
}

// Run executes tasks until the queue is empty. The steps limit guards
// against runaway self-scheduling; Run returns the number of tasks executed
// and whether it stopped because the limit was reached.
func (s *Scheduler) Run(steps int) (executed int, limited bool) {
	for executed < steps {
		if !s.Step() {
			return executed, false
		}
		executed++
	}
	return executed, s.Pending() > 0
}

// RunUntil executes tasks with deadlines at or before t, then advances the
// clock to exactly t. It returns the number of tasks executed.
func (s *Scheduler) RunUntil(t time.Time) int {
	executed := 0
	for {
		next, ok := s.peek()
		if !ok || next.After(t) {
			break
		}
		if s.Step() {
			executed++
		}
	}
	if t.After(s.clock.Now()) {
		s.clock.Set(t)
	}
	return executed
}

// RunFor is RunUntil relative to the current virtual time.
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.clock.Now().Add(d))
}

// peek reports the deadline of the earliest live task.
func (s *Scheduler) peek() (time.Time, bool) {
	for s.queue.Len() > 0 {
		it := s.queue[0]
		if !it.canceled {
			return it.at, true
		}
		heap.Pop(&s.queue)
	}
	return time.Time{}, false
}
