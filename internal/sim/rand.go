package sim

import "math/rand"

// NewRand returns a deterministic pseudo-random source for the given seed.
// All workload generators in this repository draw from sources created
// here, so an experiment is fully described by (generator parameters,
// seed).
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Choice returns a uniformly random element of items drawn from r.
// It panics on an empty slice: callers decide what an empty workload means.
func Choice[T any](r *rand.Rand, items []T) T {
	if len(items) == 0 {
		panic("sim: Choice over empty slice")
	}
	return items[r.Intn(len(items))]
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
