// Package sim provides the deterministic simulation substrate used by the
// entire repository: a virtual clock, an ordered event queue, and seeded
// randomness helpers.
//
// Every component that needs time (monitor timeouts, rule expirations,
// traffic generators) takes a Clock rather than calling time.Now, so tests
// and benchmarks are exactly reproducible and timeout semantics can be
// exercised without real sleeping.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Clock supplies the current virtual time.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// VirtualClock is a manually advanced Clock. The zero value is not usable;
// create one with NewVirtualClock.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the conventional start time for virtual clocks in this
// repository. Using a fixed epoch keeps traces and test expectations
// byte-for-byte stable.
var Epoch = time.Date(2016, time.November, 9, 0, 0, 0, 0, time.UTC)

// NewVirtualClock returns a VirtualClock starting at Epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: Epoch}
}

// NewVirtualClockAt returns a VirtualClock starting at the given time.
func NewVirtualClockAt(t time.Time) *VirtualClock {
	return &VirtualClock{now: t}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. It panics if d is negative:
// virtual time, like real time, never runs backwards.
func (c *VirtualClock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: cannot advance clock by negative duration %v", d))
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set moves the clock to exactly t. It panics if t is before the current
// time.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		panic(fmt.Sprintf("sim: cannot set clock backwards from %v to %v", c.now, t))
	}
	c.now = t
}

// WallClock is a Clock backed by the real time.Now. It exists so the same
// engine code can run against live traffic sources.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

var _ Clock = (*VirtualClock)(nil)
var _ Clock = WallClock{}
