package dsl

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// genProperty builds a random valid property: random stages with random
// predicates, bindings, windows, guards, disjunctions, counts. Together
// with TestRandomPropertyRoundTrip this gives the grammar property-based
// coverage far beyond the hand-written cases.
func genProperty(rng *rand.Rand, idx int) *property.Property {
	numericFields := []packet.Field{
		packet.FieldInPort, packet.FieldEthSrc, packet.FieldEthDst,
		packet.FieldIPSrc, packet.FieldIPDst, packet.FieldSrcPort,
		packet.FieldDstPort, packet.FieldIPProto, packet.FieldDHCPXid,
		packet.FieldARPSenderIP, packet.FieldOOBPort,
	}
	strFields := []packet.Field{packet.FieldDNSQName, packet.FieldFTPCommand}
	classes := []property.EventClass{
		property.Arrival, property.Egress, property.AnyPacket,
	}
	ops := []property.CmpOp{
		property.OpEq, property.OpNe, property.OpLt,
		property.OpLe, property.OpGt, property.OpGe,
	}

	var bound []property.Var
	genOperand := func() property.Operand {
		switch {
		case len(bound) > 0 && rng.Intn(3) == 0:
			return property.Ref(sim.Choice(rng, bound))
		case rng.Intn(6) == 0:
			n := 1 + rng.Intn(3)
			fs := make([]packet.Field, n)
			for i := range fs {
				fs[i] = sim.Choice(rng, numericFields)
			}
			return property.HashOf(uint64(1+rng.Intn(16)), uint64(rng.Intn(100)), fs...)
		case rng.Intn(8) == 0:
			return property.LitStr(fmt.Sprintf("s%d", rng.Intn(100)))
		default:
			return property.LitNum(uint64(rng.Intn(1 << 16)))
		}
	}
	genPred := func() property.Pred {
		f := sim.Choice(rng, numericFields)
		if rng.Intn(10) == 0 {
			f = sim.Choice(rng, strFields)
		}
		arg := genOperand()
		op := sim.Choice(rng, ops)
		if arg.Kind == property.OperandVar && rng.Intn(2) == 0 {
			op = property.OpEq // keep plenty of index-friendly predicates
		}
		return property.Pred{Field: f, Op: op, Arg: arg}
	}
	genPreds := func(max int) []property.Pred {
		n := 1 + rng.Intn(max)
		out := make([]property.Pred, n)
		for i := range out {
			out[i] = genPred()
		}
		return out
	}

	nStages := 1 + rng.Intn(4)
	stages := make([]property.Stage, 0, nStages)
	for si := 0; si < nStages; si++ {
		st := property.NewStage(fmt.Sprintf("stage-%d", si), sim.Choice(rng, classes))
		st.Preds = genPreds(3)
		// Negative observations: only after stage 0, sometimes.
		if si > 0 && rng.Intn(4) == 0 {
			st.Negative = true
			st.Window = time.Duration(1+rng.Intn(60)) * time.Second
		} else {
			if rng.Intn(3) == 0 {
				st.Window = time.Duration(1+rng.Intn(300)) * time.Second
			}
			counting := rng.Intn(5) == 0
			if counting {
				st.MinCount = 2 + rng.Intn(50)
				if rng.Intn(2) == 0 {
					st.CountDistinct = sim.Choice(rng, numericFields)
				}
			} else {
				// Bindings (not allowed on counting stages).
				for b := 0; b < rng.Intn(3); b++ {
					v := property.Var(fmt.Sprintf("V%d_%d", si, b))
					st.Binds = append(st.Binds, property.Binding{
						Var: v, Field: sim.Choice(rng, numericFields),
					})
					bound = append(bound, v)
				}
			}
			// Same-packet identity between packet stages.
			if si > 0 && rng.Intn(5) == 0 && !stages[si-1].Negative &&
				stages[si-1].Class != property.OutOfBand {
				st.SamePacketAs = si - 1
			}
		}
		if rng.Intn(4) == 0 {
			st.AnyOf = append(st.AnyOf, property.PredGroup(genPreds(2)))
			if rng.Intn(2) == 0 {
				st.AnyOf = append(st.AnyOf, property.PredGroup(genPreds(2)))
			}
		}
		if !st.Negative || rng.Intn(2) == 0 {
			for g := 0; g < rng.Intn(2); g++ {
				st.Until = append(st.Until, property.Guard{
					Class: sim.Choice(rng, classes),
					Preds: genPreds(2),
				})
			}
		}
		stages = append(stages, st)
	}
	return &property.Property{
		Name:        fmt.Sprintf("fuzz-%d", idx),
		Description: fmt.Sprintf("random property %d", idx),
		Stages:      stages,
	}
}

func TestRandomPropertyRoundTrip(t *testing.T) {
	rng := sim.NewRand(20161109)
	valid := 0
	for i := 0; i < 500; i++ {
		p := genProperty(rng, i)
		if err := p.Validate(); err != nil {
			// The generator can produce forward variable references or
			// other structurally invalid shapes; skip those — the round
			// trip is only defined on valid properties.
			continue
		}
		valid++
		text := Format(p)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("property %d: reparse failed: %v\n%s", i, err, text)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("property %d: round trip changed AST\n%s\norig: %#v\nback: %#v",
				i, text, p, back)
		}
		// Analysis must never panic on valid properties.
		_ = property.Analyze(p)
	}
	if valid < 200 {
		t.Fatalf("only %d/500 generated properties were valid; generator too weak", valid)
	}
}

func TestRandomPropertyFormatIsStable(t *testing.T) {
	rng := sim.NewRand(7)
	for i := 0; i < 100; i++ {
		p := genProperty(rng, i)
		if p.Validate() != nil {
			continue
		}
		a := Format(p)
		back, err := Parse(a)
		if err != nil {
			t.Fatal(err)
		}
		b := Format(back)
		if a != b {
			t.Fatalf("Format not idempotent:\n%s\nvs\n%s", a, b)
		}
	}
}
