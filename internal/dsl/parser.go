package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// Parse reads one property definition and returns it validated.
func Parse(src string) (*property.Property, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prop, err := p.parseProperty()
	if err != nil {
		return nil, err
	}
	p.skipSeps()
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after property", p.peek().kind)
	}
	if err := prop.Validate(); err != nil {
		return nil, err
	}
	return prop, nil
}

// ParseAll reads a file containing any number of property definitions.
func ParseAll(src string) ([]*property.Property, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var props []*property.Property
	for {
		p.skipSeps()
		if p.peek().kind == tokEOF {
			break
		}
		prop, err := p.parseProperty()
		if err != nil {
			return nil, err
		}
		if err := prop.Validate(); err != nil {
			return nil, err
		}
		props = append(props, prop)
	}
	return props, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return &errSyntax{line: p.peek().line, msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSeps() {
	for p.peek().kind == tokSemi {
		p.advance()
	}
}

// expect consumes a token of the given kind or fails.
func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return token{}, p.errorf("expected %s, found %s %q", what, t.kind, t.text)
	}
	return p.advance(), nil
}

// expectIdent consumes a specific keyword.
func (p *parser) expectIdent(word string) error {
	t := p.peek()
	if t.kind != tokIdent || t.text != word {
		return p.errorf("expected %q, found %s %q", word, t.kind, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) parseProperty() (*property.Property, error) {
	if err := p.expectIdent("property"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString, "property name string")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	prop := &property.Property{Name: name.text}
	p.skipSeps()
	if t := p.peek(); t.kind == tokIdent && t.text == "description" {
		p.advance()
		desc, err := p.expect(tokString, "description string")
		if err != nil {
			return nil, err
		}
		prop.Description = desc.text
	}
	for {
		p.skipSeps()
		t := p.peek()
		if t.kind == tokRBrace {
			p.advance()
			return prop, nil
		}
		if t.kind != tokIdent {
			return nil, p.errorf("expected observation or '}', found %s %q", t.kind, t.text)
		}
		stage, err := p.parseStage(len(prop.Stages))
		if err != nil {
			return nil, err
		}
		prop.Stages = append(prop.Stages, stage)
	}
}

func (p *parser) parseClass() (property.EventClass, error) {
	t, err := p.expect(tokIdent, "event class (arrival/egress/packet/oob)")
	if err != nil {
		return 0, err
	}
	switch t.text {
	case "arrival":
		return property.Arrival, nil
	case "egress":
		return property.Egress, nil
	case "packet":
		return property.AnyPacket, nil
	case "oob":
		return property.OutOfBand, nil
	default:
		return 0, &errSyntax{line: t.line, msg: fmt.Sprintf("unknown event class %q", t.text)}
	}
}

func (p *parser) parseStage(index int) (property.Stage, error) {
	var s property.Stage
	s.SamePacketAs = -1
	kw, err := p.expect(tokIdent, "'on' or 'unless'")
	if err != nil {
		return s, err
	}
	switch kw.text {
	case "on":
	case "unless":
		s.Negative = true
	default:
		return s, &errSyntax{line: kw.line, msg: fmt.Sprintf("expected 'on' or 'unless', found %q", kw.text)}
	}
	s.Class, err = p.parseClass()
	if err != nil {
		return s, err
	}
	label, err := p.expect(tokString, "stage label string")
	if err != nil {
		return s, err
	}
	s.Label = label.text

	// Header options before the block: within <dur|$var>, same packet as N.
	for {
		t := p.peek()
		if t.kind != tokIdent {
			break
		}
		switch t.text {
		case "within":
			p.advance()
			switch tv := p.peek(); tv.kind {
			case tokDuration:
				p.advance()
				d, err := time.ParseDuration(tv.text)
				if err != nil {
					return s, &errSyntax{line: tv.line, msg: fmt.Sprintf("bad duration %q: %v", tv.text, err)}
				}
				s.Window = d
			case tokVar:
				p.advance()
				s.WindowVar = property.Var(tv.text)
			default:
				return s, p.errorf("expected duration or variable after 'within'")
			}
		case "count":
			p.advance()
			n, err := p.expect(tokNumber, "count threshold")
			if err != nil {
				return s, err
			}
			cnt, err := strconv.Atoi(n.text)
			if err != nil {
				return s, &errSyntax{line: n.line, msg: fmt.Sprintf("bad count %q", n.text)}
			}
			s.MinCount = cnt
			if tt := p.peek(); tt.kind == tokIdent && tt.text == "distinct" {
				p.advance()
				f, err := p.parseField()
				if err != nil {
					return s, err
				}
				s.CountDistinct = f
			}
		case "same":
			p.advance()
			if err := p.expectIdent("packet"); err != nil {
				return s, err
			}
			if err := p.expectIdent("as"); err != nil {
				return s, err
			}
			n, err := p.expect(tokNumber, "stage index")
			if err != nil {
				return s, err
			}
			idx, err := strconv.Atoi(n.text)
			if err != nil {
				return s, &errSyntax{line: n.line, msg: fmt.Sprintf("bad stage index %q", n.text)}
			}
			s.SamePacketAs = idx
		default:
			return s, p.errorf("unknown stage option %q", t.text)
		}
	}

	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return s, err
	}
	for {
		p.skipSeps()
		t := p.peek()
		if t.kind == tokRBrace {
			p.advance()
			return s, nil
		}
		if t.kind != tokIdent {
			return s, p.errorf("expected stage item or '}', found %s %q", t.kind, t.text)
		}
		switch t.text {
		case "match":
			p.advance()
			pred, err := p.parsePred()
			if err != nil {
				return s, err
			}
			s.Preds = append(s.Preds, pred)
		case "bind":
			p.advance()
			v, err := p.expect(tokVar, "variable")
			if err != nil {
				return s, err
			}
			if _, err := p.expect(tokEquals, "'='"); err != nil {
				return s, err
			}
			f, err := p.parseField()
			if err != nil {
				return s, err
			}
			s.Binds = append(s.Binds, property.Binding{Var: property.Var(v.text), Field: f})
		case "until":
			p.advance()
			sticky := false
			if tt := p.peek(); tt.kind == tokIdent && tt.text == "sticky" {
				p.advance()
				sticky = true
			}
			class, err := p.parseClass()
			if err != nil {
				return s, err
			}
			preds, err := p.parsePredGroup()
			if err != nil {
				return s, err
			}
			s.Until = append(s.Until, property.Guard{Class: class, Preds: preds, Sticky: sticky})
		case "any":
			p.advance()
			for {
				group, err := p.parsePredGroup()
				if err != nil {
					return s, err
				}
				s.AnyOf = append(s.AnyOf, property.PredGroup(group))
				if t := p.peek(); t.kind == tokIdent && t.text == "or" {
					p.advance()
					continue
				}
				break
			}
		default:
			return s, p.errorf("unknown stage item %q", t.text)
		}
	}
}

// parsePredGroup parses "{ pred (; pred)* }".
func (p *parser) parsePredGroup() ([]property.Pred, error) {
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var preds []property.Pred
	for {
		p.skipSeps()
		if p.peek().kind == tokRBrace {
			p.advance()
			if len(preds) == 0 {
				return nil, p.errorf("empty predicate group")
			}
			return preds, nil
		}
		pred, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
	}
}

func (p *parser) parseField() (packet.Field, error) {
	t, err := p.expect(tokIdent, "field name")
	if err != nil {
		return 0, err
	}
	f, ok := packet.FieldByName(t.text)
	if !ok {
		return 0, &errSyntax{line: t.line, msg: fmt.Sprintf("unknown field %q", t.text)}
	}
	return f, nil
}

func (p *parser) parsePred() (property.Pred, error) {
	var pred property.Pred
	f, err := p.parseField()
	if err != nil {
		return pred, err
	}
	pred.Field = f
	op, err := p.expect(tokOp, "comparison operator")
	if err != nil {
		return pred, err
	}
	switch op.text {
	case "==":
		pred.Op = property.OpEq
	case "!=":
		pred.Op = property.OpNe
	case "<":
		pred.Op = property.OpLt
	case "<=":
		pred.Op = property.OpLe
	case ">":
		pred.Op = property.OpGt
	case ">=":
		pred.Op = property.OpGe
	default:
		return pred, &errSyntax{line: op.line, msg: fmt.Sprintf("unknown operator %q", op.text)}
	}
	arg, err := p.parseOperand()
	if err != nil {
		return pred, err
	}
	pred.Arg = arg
	return pred, nil
}

func (p *parser) parseOperand() (property.Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokVar:
		p.advance()
		return property.Ref(property.Var(t.text)), nil
	case tokString:
		p.advance()
		return property.LitStr(t.text), nil
	case tokNumber:
		p.advance()
		v, err := parseNumberLiteral(t.text)
		if err != nil {
			return property.Operand{}, &errSyntax{line: t.line, msg: err.Error()}
		}
		return property.LitNum(v), nil
	case tokIdent:
		if t.text == "hash" {
			return p.parseHash()
		}
		return property.Operand{}, p.errorf("unexpected identifier %q as operand", t.text)
	default:
		return property.Operand{}, p.errorf("expected operand, found %s %q", t.kind, t.text)
	}
}

// parseHash parses "hash(f1, f2, ...) % MOD [+ BASE]".
func (p *parser) parseHash() (property.Operand, error) {
	p.advance() // "hash"
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return property.Operand{}, err
	}
	var fields []packet.Field
	for {
		f, err := p.parseField()
		if err != nil {
			return property.Operand{}, err
		}
		fields = append(fields, f)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return property.Operand{}, err
	}
	if _, err := p.expect(tokPercent, "'%'"); err != nil {
		return property.Operand{}, err
	}
	modTok, err := p.expect(tokNumber, "hash modulus")
	if err != nil {
		return property.Operand{}, err
	}
	mod, err := parseNumberLiteral(modTok.text)
	if err != nil {
		return property.Operand{}, &errSyntax{line: modTok.line, msg: err.Error()}
	}
	var base uint64
	if p.peek().kind == tokPlus {
		p.advance()
		baseTok, err := p.expect(tokNumber, "hash base")
		if err != nil {
			return property.Operand{}, err
		}
		base, err = parseNumberLiteral(baseTok.text)
		if err != nil {
			return property.Operand{}, &errSyntax{line: baseTok.line, msg: err.Error()}
		}
	}
	return property.HashOf(mod, base, fields...), nil
}

// parseNumberLiteral accepts decimal, hex (0x...), IPv4 dotted-quad, and
// MAC colon-hex literals, all reduced to their uint64 field encoding.
func parseNumberLiteral(text string) (uint64, error) {
	switch {
	case strings.Count(text, ".") == 3:
		ip, err := packet.ParseIPv4(text)
		if err != nil {
			return 0, fmt.Errorf("bad IPv4 literal %q", text)
		}
		return ip.Uint64(), nil
	case strings.Contains(text, ":"):
		mac, err := packet.ParseMAC(text)
		if err != nil {
			return 0, fmt.Errorf("bad MAC literal %q", text)
		}
		return mac.Uint64(), nil
	default:
		v, err := strconv.ParseUint(text, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("bad number literal %q", text)
		}
		return v, nil
	}
}
