package dsl

import (
	"fmt"
	"strings"

	"switchmon/internal/property"
)

// Format renders a property in canonical DSL text. Parsing the output
// yields an equal AST (numeric literals are printed in decimal, so IP/MAC
// sugar used in hand-written sources is normalized away).
func Format(p *property.Property) string {
	var b strings.Builder
	fmt.Fprintf(&b, "property %q {\n", p.Name)
	if p.Description != "" {
		fmt.Fprintf(&b, "  description %q\n", p.Description)
	}
	for _, s := range p.Stages {
		b.WriteString("\n")
		formatStage(&b, s)
	}
	b.WriteString("}\n")
	return b.String()
}

// FormatAll renders multiple properties separated by blank lines.
func FormatAll(props []*property.Property) string {
	parts := make([]string, len(props))
	for i, p := range props {
		parts[i] = Format(p)
	}
	return strings.Join(parts, "\n")
}

func classWord(c property.EventClass) string {
	switch c {
	case property.Arrival:
		return "arrival"
	case property.Egress:
		return "egress"
	case property.OutOfBand:
		return "oob"
	default:
		return "packet"
	}
}

func formatStage(b *strings.Builder, s property.Stage) {
	kw := "on"
	if s.Negative {
		kw = "unless"
	}
	fmt.Fprintf(b, "  %s %s %q", kw, classWord(s.Class), s.Label)
	if s.Window > 0 {
		fmt.Fprintf(b, " within %s", s.Window)
	}
	if s.WindowVar != "" {
		fmt.Fprintf(b, " within $%s", s.WindowVar)
	}
	if s.SamePacketAs >= 0 {
		fmt.Fprintf(b, " same packet as %d", s.SamePacketAs)
	}
	if s.MinCount > 0 {
		fmt.Fprintf(b, " count %d", s.MinCount)
		if s.CountDistinct != 0 {
			fmt.Fprintf(b, " distinct %s", s.CountDistinct)
		}
	}
	b.WriteString(" {\n")
	for _, pr := range s.Preds {
		fmt.Fprintf(b, "    match %s\n", formatPred(pr))
	}
	if len(s.AnyOf) > 0 {
		groups := make([]string, len(s.AnyOf))
		for i, g := range s.AnyOf {
			groups[i] = formatGroup(g)
		}
		fmt.Fprintf(b, "    any %s\n", strings.Join(groups, " or "))
	}
	for _, bd := range s.Binds {
		fmt.Fprintf(b, "    bind $%s = %s\n", bd.Var, bd.Field)
	}
	for _, g := range s.Until {
		sticky := ""
		if g.Sticky {
			sticky = "sticky "
		}
		fmt.Fprintf(b, "    until %s%s %s\n", sticky, classWord(g.Class), formatGroup(g.Preds))
	}
	b.WriteString("  }\n")
}

func formatGroup(preds []property.Pred) string {
	parts := make([]string, len(preds))
	for i, pr := range preds {
		parts[i] = formatPred(pr)
	}
	return "{ " + strings.Join(parts, "; ") + " }"
}

func formatPred(pr property.Pred) string {
	return fmt.Sprintf("%s %s %s", pr.Field, pr.Op, formatOperand(pr.Arg))
}

func formatOperand(o property.Operand) string {
	switch o.Kind {
	case property.OperandVar:
		return "$" + string(o.Var)
	case property.OperandHash:
		names := make([]string, len(o.Hash.Fields))
		for i, f := range o.Hash.Fields {
			names[i] = f.String()
		}
		s := fmt.Sprintf("hash(%s) %% %d", strings.Join(names, ", "), o.Hash.Mod)
		if o.Hash.Base != 0 {
			s += fmt.Sprintf(" + %d", o.Hash.Base)
		}
		return s
	default:
		if o.Lit.IsStr() {
			return fmt.Sprintf("%q", o.Lit.Text())
		}
		return fmt.Sprintf("%d", o.Lit.Uint64())
	}
}
