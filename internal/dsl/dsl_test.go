package dsl

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
)

const firewallSrc = `
property "firewall-until-close" {
  description "return traffic admitted until close or timeout"

  on arrival "outgoing" {
    match in_port == 1
    bind $A = ip.src
    bind $B = ip.dst
  }

  on egress "return-dropped" within 60s {
    match ip.src == $B
    match ip.dst == $A
    match dropped == 1
    until packet { ip.src == $A; ip.dst == $B; tcp.fin == 1 }
    until packet { ip.src == $B; ip.dst == $A; tcp.fin == 1 }
  }
}
`

func TestParseFirewall(t *testing.T) {
	p, err := Parse(firewallSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "firewall-until-close" {
		t.Errorf("Name = %q", p.Name)
	}
	if len(p.Stages) != 2 {
		t.Fatalf("stages = %d", len(p.Stages))
	}
	s0 := p.Stages[0]
	if s0.Class != property.Arrival || s0.Label != "outgoing" || len(s0.Binds) != 2 {
		t.Errorf("stage 0 = %+v", s0)
	}
	s1 := p.Stages[1]
	if s1.Window != 60*time.Second || len(s1.Preds) != 3 || len(s1.Until) != 2 {
		t.Errorf("stage 1 = %+v", s1)
	}
	if s1.Preds[0].Arg.Var != "B" || !s1.Preds[0].Arg.IsVar() {
		t.Errorf("stage 1 pred 0 = %+v", s1.Preds[0])
	}
}

func TestParseNegativeStageAndSamePacket(t *testing.T) {
	src := `
property "arp-unknown-forwarded" {
  on arrival "request" {
    match arp.op == 1
    bind $I = arp.target_ip
  }
  unless egress "not-forwarded" within 2s same packet as 0 {
    match dropped == 0
    until arrival { arp.sender_ip == $I }
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s1 := p.Stages[1]
	if !s1.Negative || s1.Window != 2*time.Second || s1.SamePacketAs != 0 {
		t.Fatalf("stage 1 = %+v", s1)
	}
}

func TestParseHashAndAnyOf(t *testing.T) {
	src := `
property "lb" {
  on arrival "new" {
    match tcp.syn == 1
    bind $A = ip.src
    bind $B = ip.dst
  }
  on egress "wrong" {
    match dropped == 0
    any { ip.src == $A; out_port != hash(ip.src, ip.dst) % 4 + 10 } or { ip.src == $B }
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s1 := p.Stages[1]
	if len(s1.AnyOf) != 2 {
		t.Fatalf("AnyOf groups = %d", len(s1.AnyOf))
	}
	h := s1.AnyOf[0][1].Arg
	if h.Kind != property.OperandHash || h.Hash.Mod != 4 || h.Hash.Base != 10 || len(h.Hash.Fields) != 2 {
		t.Fatalf("hash operand = %+v", h)
	}
}

func TestParseAddressLiterals(t *testing.T) {
	src := `
property "lits" {
  on arrival "a" {
    match ip.src == 10.0.0.1
    match eth.src == aa:bb:cc:dd:ee:ff
    match ip.proto == 0x11
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	preds := p.Stages[0].Preds
	if preds[0].Arg.Lit != packet.Num(packet.MustIPv4("10.0.0.1").Uint64()) {
		t.Errorf("IP literal = %v", preds[0].Arg.Lit)
	}
	if preds[1].Arg.Lit != packet.Num(packet.MustMAC("aa:bb:cc:dd:ee:ff").Uint64()) {
		t.Errorf("MAC literal = %v", preds[1].Arg.Lit)
	}
	if preds[2].Arg.Lit != packet.Num(17) {
		t.Errorf("hex literal = %v", preds[2].Arg.Lit)
	}
}

func TestParseWindowVar(t *testing.T) {
	src := `
property "lease" {
  on egress "ack" {
    match dhcp.msg_type == 5
    bind $L = dhcp.lease_secs
    bind $IP = dhcp.your_ip
  }
  on egress "re-lease" within $L {
    match dhcp.your_ip == $IP
  }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stages[1].WindowVar != "L" {
		t.Fatalf("WindowVar = %q", p.Stages[1].WindowVar)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing property kw", `on arrival "x" {}`, `expected "property"`},
		{"missing name", `property {`, "property name"},
		{"unknown field", `property "p" { on arrival "a" { match bogus.field == 1 } }`, "unknown field"},
		{"unknown class", `property "p" { on flarn "a" {} }`, "unknown event class"},
		{"unknown item", `property "p" { on arrival "a" { frob x } }`, "unknown stage item"},
		{"bad operator", `property "p" { on arrival "a" { match ip.src = 1 } }`, "comparison operator"},
		{"unterminated string", "property \"p", "unterminated string"},
		{"unbound var", `property "p" { on arrival "a" { match ip.src == $Z } }`, "before binding"},
		{"bad duration", `property "p" { on arrival "a" within 60 {} }`, "duration or variable"},
		{"trailing garbage", `property "p" { on arrival "a" { match ip.src == 1 } } garbage`, "unexpected"},
		{"bad stage option", `property "p" { on arrival "a" sideways {} }`, "unknown stage option"},
		{"empty group", `property "p" { on arrival "a" { until arrival { } } }`, "empty predicate group"},
		{"bad ip literal", `property "p" { on arrival "a" { match ip.src == 1.2.3.4.5 } }`, "bad"},
		{"negative without window", `property "p" { on arrival "a" {}
			unless egress "b" {} }`, "without a window"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: Parse succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	src := "property \"p\" {\n  on arrival \"a\" {\n    match bogus.field == 1\n  }\n}"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not mention line 3", err)
	}
}

func TestComments(t *testing.T) {
	src := `
# leading comment
property "p" { # trailing comment
  on arrival "a" {
    match ip.src == 1 # another
  }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

// The round-trip property: Format then Parse reproduces the AST exactly,
// for the entire catalogue.
func TestFormatParseRoundTripCatalog(t *testing.T) {
	for _, e := range property.Catalog(property.DefaultParams()) {
		text := Format(e.Prop)
		back, err := Parse(text)
		if err != nil {
			t.Errorf("%s: reparse failed: %v\n%s", e.Prop.Name, err, text)
			continue
		}
		if !reflect.DeepEqual(e.Prop, back) {
			t.Errorf("%s: round trip changed the AST\nformatted:\n%s\noriginal: %#v\nreparsed: %#v",
				e.Prop.Name, text, e.Prop, back)
		}
	}
}

func TestParseAll(t *testing.T) {
	catalog := property.Catalog(property.DefaultParams())
	var all []*property.Property
	for _, e := range catalog {
		all = append(all, e.Prop)
	}
	text := FormatAll(all)
	back, err := ParseAll(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(all) {
		t.Fatalf("ParseAll returned %d properties, want %d", len(back), len(all))
	}
	for i := range all {
		if !reflect.DeepEqual(all[i], back[i]) {
			t.Errorf("property %s changed in ParseAll round trip", all[i].Name)
		}
	}
}

func TestParseAllEmpty(t *testing.T) {
	props, err := ParseAll("\n# nothing here\n")
	if err != nil || len(props) != 0 {
		t.Fatalf("ParseAll on empty input = (%v, %v)", props, err)
	}
}
