// Package dsl implements the textual property language: a concrete syntax
// for internal/property in the spirit of Varanus's query language. A
// property reads like the paper's timeline diagrams:
//
//	property "firewall-until-close" {
//	  description "return traffic is admitted until close or timeout"
//	  on arrival "outgoing" {
//	    match in_port == 1
//	    bind $A = ip.src
//	    bind $B = ip.dst
//	  }
//	  on egress "return-dropped" within 60s {
//	    match ip.src == $B
//	    match ip.dst == $A
//	    match dropped == 1
//	    until packet { ip.src == $A; ip.dst == $B; tcp.fin == 1 }
//	  }
//	}
//
// Parse produces a validated *property.Property; Format renders the
// canonical text (Parse∘Format is the identity on ASTs).
package dsl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF      tokenKind = iota
	tokIdent              // property, on, match, field names like ip.src
	tokString             // "..."
	tokNumber             // 42, 0x2a
	tokDuration           // 60s, 500ms
	tokVar                // $A
	tokOp                 // == != < <= > >=
	tokLBrace             // {
	tokRBrace             // }
	tokLParen             // (
	tokRParen             // )
	tokSemi               // ; or newline (statement separator)
	tokPercent            // %
	tokPlus               // +
	tokComma              // ,
	tokEquals             // = (binding)
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokDuration:
		return "duration"
	case tokVar:
		return "variable"
	case tokOp:
		return "operator"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokSemi:
		return "separator"
	case tokPercent:
		return "'%'"
	case tokPlus:
		return "'+'"
	case tokComma:
		return "','"
	case tokEquals:
		return "'='"
	default:
		return fmt.Sprintf("tokenKind(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
}

// lexer is a hand-rolled scanner. Newlines are significant: they act as
// statement separators (like semicolons), which keeps the syntax free of
// trailing punctuation.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// errSyntax is a positioned lexer/parser error.
type errSyntax struct {
	line int
	msg  string
}

func (e *errSyntax) Error() string { return fmt.Sprintf("dsl: line %d: %s", e.line, e.msg) }

func (l *lexer) errorf(format string, args ...any) error {
	return &errSyntax{line: l.line, msg: fmt.Sprintf(format, args...)}
}

func isIdentStart(r byte) bool {
	return r == '_' || unicode.IsLetter(rune(r))
}

func isIdentPart(r byte) bool {
	return r == '_' || r == '.' || unicode.IsLetter(rune(r)) || unicode.IsDigit(rune(r))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	// Skip spaces, tabs and comments; newlines become separators.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\n':
			l.pos++
			l.line++
			return token{kind: tokSemi, text: "\n", line: l.line - 1}, nil
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '{':
		l.pos++
		return token{tokLBrace, "{", l.line}, nil
	case c == '}':
		l.pos++
		return token{tokRBrace, "}", l.line}, nil
	case c == '(':
		l.pos++
		return token{tokLParen, "(", l.line}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", l.line}, nil
	case c == ';':
		l.pos++
		return token{tokSemi, ";", l.line}, nil
	case c == '%':
		l.pos++
		return token{tokPercent, "%", l.line}, nil
	case c == '+':
		l.pos++
		return token{tokPlus, "+", l.line}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", l.line}, nil
	case c == '$':
		l.pos++
		if l.pos >= len(l.src) || !isIdentStart(l.src[l.pos]) {
			return token{}, l.errorf("expected variable name after '$'")
		}
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tokVar, l.src[start+1 : l.pos], l.line}, nil
	case c == '"':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\n' {
				return token{}, l.errorf("unterminated string")
			}
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf("unterminated string")
		}
		l.pos++
		return token{tokString, b.String(), l.line}, nil
	case c == '=' || c == '!' || c == '<' || c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, l.src[start : start+2], l.line}, nil
		}
		l.pos++
		switch c {
		case '=':
			return token{tokEquals, "=", l.line}, nil
		case '<', '>':
			return token{tokOp, string(c), l.line}, nil
		default:
			return token{}, l.errorf("unexpected character %q", c)
		}
	case unicode.IsDigit(rune(c)):
		// Number, duration, or address literal (IPv4 dotted quad, MAC).
		for l.pos < len(l.src) && (isIdentPart(l.src[l.pos]) || l.src[l.pos] == ':') {
			l.pos++
		}
		text := l.src[start:l.pos]
		if isDurationLiteral(text) {
			return token{tokDuration, text, l.line}, nil
		}
		return token{tokNumber, text, l.line}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && (isIdentPart(l.src[l.pos]) || l.src[l.pos] == ':') {
			l.pos++
		}
		text := l.src[start:l.pos]
		if strings.Contains(text, ":") {
			// A MAC literal like aa:bb:cc:dd:ee:ff lexes as a number.
			return token{tokNumber, text, l.line}, nil
		}
		return token{tokIdent, text, l.line}, nil
	default:
		return token{}, l.errorf("unexpected character %q", c)
	}
}

// isDurationLiteral reports whether text looks like a Go duration (digits
// followed by a unit suffix, possibly compound like "1m30s").
func isDurationLiteral(text string) bool {
	hasUnit := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c >= '0' && c <= '9' || c == '.' {
			continue
		}
		switch c {
		case 'n', 'u', 'm', 's', 'h':
			hasUnit = true
		default:
			return false
		}
	}
	return hasUnit && strings.IndexFunc(text, func(r rune) bool { return r < '0' || r > '9' }) > 0
}

// lexAll tokenizes the whole input, collapsing runs of separators.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokSemi && (len(toks) == 0 || toks[len(toks)-1].kind == tokSemi ||
			toks[len(toks)-1].kind == tokLBrace) {
			continue // no empty statements
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
