package dsl_test

import (
	"fmt"

	"switchmon/internal/dsl"
)

// ExampleParse compiles a property from its text form and prints its
// derived structure.
func ExampleParse() {
	src := `
property "knock-gate" {
  description "intervening guesses invalidate the sequence"
  on arrival "knock1" {
    match l4.dst_port == 7001
    bind $H = ip.src
  }
  on arrival "wrong-guess" {
    match ip.src == $H
    match l4.dst_port != 7002
  }
}
`
	p, err := dsl.Parse(src)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Name, "-", len(p.Stages), "observations")
	fmt.Println(p.Stages[1].Preds[1])
	// Output:
	// knock-gate - 2 observations
	// l4.dst_port != 7002
}

// ExampleFormat renders a parsed property back to canonical text.
func ExampleFormat() {
	p, err := dsl.Parse(`property "tiny" { on arrival "a" { match ip.proto == 6 } }`)
	if err != nil {
		panic(err)
	}
	fmt.Print(dsl.Format(p))
	// Output:
	// property "tiny" {
	//
	//   on arrival "a" {
	//     match ip.proto == 6
	//   }
	// }
}
