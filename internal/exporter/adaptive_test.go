package exporter

import (
	"fmt"
	"net"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/sim"
)

// newFakeClockExporter builds an exporter with an injected clock and a
// dial stub, and never calls Start — no sender, no flusher, no real
// time anywhere, so every controller decision is a pure function of the
// published timestamps.
func newFakeClockExporter(t *testing.T, clock *time.Time, cfg Config) *Exporter {
	t.Helper()
	cfg.Dial = func() (net.Conn, error) { return nil, fmt.Errorf("no network in fake-clock tests") }
	cfg.Now = func() time.Time { return *clock }
	// Nothing drains the queue without Start(); keep it effectively
	// unbounded so a full queue's ShedBlock wait can't deadlock the test.
	cfg.QueueBatches = 1 << 20
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// publishN publishes n events spaced gap apart on the fake clock and
// returns the size of every batch sealed while doing so.
func publishN(x *Exporter, clock *time.Time, n int, gap time.Duration) []int {
	var sizes []int
	for i := 0; i < n; i++ {
		*clock = clock.Add(gap)
		before := len(x.queue)
		x.Publish(core.Event{Kind: core.KindArrival, Time: *clock})
		for _, b := range x.queue[before:] {
			sizes = append(sizes, len(b.Events))
		}
	}
	return sizes
}

// The controller's trajectory under trickle → burst → trickle is a pure
// function of the injected timestamps; this pins it.
func TestAdaptiveBatchSizeTrajectory(t *testing.T) {
	const slo = 250 * time.Microsecond
	clock := sim.Epoch
	x := newFakeClockExporter(t, &clock, Config{TargetSealLatency: slo, BatchSizeMax: 256})

	if got := x.Stats().BatchTarget; got != 1 {
		t.Fatalf("initial target = %d, want 1 (no rate estimate yet)", got)
	}

	// Trickle: one event per millisecond, 4× the SLO. Every batch must
	// seal at size 1 — the adaptive exporter ships trickle traffic with
	// per-event latency.
	for i, size := range publishN(x, &clock, 50, time.Millisecond) {
		if size != 1 {
			t.Fatalf("trickle batch %d sealed at size %d, want 1", i, size)
		}
	}
	if got := x.Stats().BatchTarget; got != 1 {
		t.Fatalf("trickle target = %d, want 1", got)
	}

	// Burst: one event per microsecond. The gap EWMA collapses toward
	// 1µs, so the target must grow monotonically and converge to
	// slo/gap = 250.
	burstSizes := publishN(x, &clock, 4096, time.Microsecond)
	for i := 1; i < len(burstSizes); i++ {
		if burstSizes[i] < burstSizes[i-1] {
			t.Fatalf("burst batch sizes not monotone: %v", burstSizes[:i+1])
		}
	}
	// The EWMA approaches the 1µs gap from above, so slo/gap sits just
	// under 250 and integer truncation pins the converged target at 249.
	if got := x.Stats().BatchTarget; got != 249 {
		t.Fatalf("burst target = %d, want 249 (slo 250µs / gap ~1µs, truncated)", got)
	}
	if last := burstSizes[len(burstSizes)-1]; last != 249 {
		t.Fatalf("late burst batches sealed at %d, want 249", last)
	}

	// Back to trickle. The target is still burst-sized, so single events
	// never reach it; the age seal (driven by hand — there is no flusher
	// goroutine without Start) ships each as a singleton within the SLO,
	// and its reseal collapses the target: the EWMA's 1/8 gain recovers
	// in one step, the first 1ms gap (clamped to 4×SLO) dragging the
	// estimate to ~126µs and the target back to 1.
	x.Flush()
	for i := 0; i < 50; i++ {
		clock = clock.Add(time.Millisecond)
		x.Publish(core.Event{Kind: core.KindArrival, Time: clock})
		clock = clock.Add(x.cfg.MaxBatchAge)
		x.mu.Lock()
		if len(x.pending) > 0 && x.cfg.Now().Sub(x.pendingBorn) >= x.cfg.MaxBatchAge {
			x.sealLocked(sealAge)
		}
		size := len(x.queue[len(x.queue)-1].Events)
		x.mu.Unlock()
		if size != 1 {
			t.Fatalf("post-burst trickle batch %d sealed at size %d, want 1", i, size)
		}
	}
	if got := x.Stats().BatchTarget; got != 1 {
		t.Fatalf("post-burst target = %d, want 1", got)
	}
}

// An idle stretch must not poison the rate estimate: gaps are clamped
// at 4×SLO, so one event after a long silence reads as "slow", and a
// following burst re-grows the target as fast as from a cold start.
func TestAdaptiveIdleClampsGap(t *testing.T) {
	const slo = 250 * time.Microsecond
	clock := sim.Epoch
	x := newFakeClockExporter(t, &clock, Config{TargetSealLatency: slo, BatchSizeMax: 256})

	publishN(x, &clock, 20, time.Microsecond) // warm toward burst
	warm := x.Stats().BatchTarget

	// One event after an hour idle.
	publishN(x, &clock, 1, time.Hour)
	publishN(x, &clock, 20, time.Microsecond)
	cold := x.Stats().BatchTarget

	// The hour gap entered the EWMA as just 1ms (4×SLO): 20 burst events
	// later the target must be within one resealing step of the
	// uninterrupted warm-up, not stuck at 1.
	if cold < warm/2 {
		t.Fatalf("target after idle+burst = %d, want near warm-up's %d (idle gap not clamped?)", cold, warm)
	}
}

// Fixed-size configs must not be affected by the controller: target is
// BatchSize, seals happen at BatchSize, and TargetSealLatency zero
// means no controller at all.
func TestFixedSizeSealingUnchanged(t *testing.T) {
	clock := sim.Epoch
	x := newFakeClockExporter(t, &clock, Config{BatchSize: 4})
	if x.ctl != nil {
		t.Fatal("fixed-size config built a seal controller")
	}
	sizes := publishN(x, &clock, 8, time.Microsecond)
	if len(sizes) != 2 || sizes[0] != 4 || sizes[1] != 4 {
		t.Fatalf("fixed-size seals = %v, want [4 4]", sizes)
	}
	if got := x.Stats().BatchTarget; got != 4 {
		t.Fatalf("fixed target = %d, want BatchSize 4", got)
	}
}

// Config validation: a negative SLO and a negative clamp are nonsense.
func TestAdaptiveConfigValidation(t *testing.T) {
	dial := func() (net.Conn, error) { return nil, fmt.Errorf("unused") }
	if _, err := New(Config{Dial: dial, TargetSealLatency: -time.Millisecond}); err == nil {
		t.Fatal("negative TargetSealLatency accepted")
	}
	if _, err := New(Config{Dial: dial, TargetSealLatency: time.Millisecond, BatchSizeMax: -8}); err == nil {
		t.Fatal("negative BatchSizeMax accepted")
	}
}

// Regression: sendNs entries whose acks never arrive (batch shed after
// its timestamp was recorded, or a peer that stops timestamping acks)
// must be evicted by the horizon instead of accumulating forever.
func TestSendNsEvictedPastHorizon(t *testing.T) {
	clock := sim.Epoch
	x := newFakeClockExporter(t, &clock, Config{})
	base := sim.Epoch.UnixNano()
	x.mu.Lock()
	x.sendNs = map[uint64]int64{
		10: base,                                                  // stale: never acked
		20: base + int64(sendNsHorizon)/2,                         // stale: never acked
		30: base + int64(sendNsHorizon) + int64(time.Millisecond), // fresh
	}
	x.evictSendNsLocked(base + 2*int64(sendNsHorizon))
	defer x.mu.Unlock()
	if _, ok := x.sendNs[10]; ok {
		t.Fatal("entry 10 survived past the horizon")
	}
	if _, ok := x.sendNs[20]; ok {
		t.Fatal("entry 20 survived past the horizon")
	}
	if _, ok := x.sendNs[30]; !ok {
		t.Fatal("fresh entry 30 was evicted")
	}
}

// The age seal is what bounds latency when a burst ends mid-batch: the
// controller sized the batch for the burst, the burst dried up, and the
// flusher must ship the partial batch once it exceeds MaxBatchAge
// (defaulted to the SLO in adaptive mode).
func TestAdaptiveAgeSealBridgesBurstEnd(t *testing.T) {
	const slo = 250 * time.Microsecond
	clock := sim.Epoch
	x := newFakeClockExporter(t, &clock, Config{TargetSealLatency: slo, BatchSizeMax: 256})
	publishN(x, &clock, 2048, time.Microsecond) // establish a big target
	x.Flush()
	target := x.Stats().BatchTarget
	if target < 100 {
		t.Fatalf("burst target = %d, want ≥ 100", target)
	}

	// A lone event arrives, then silence. Without Start() we drive the
	// flusher's check by hand, as the ticker would.
	clock = clock.Add(time.Microsecond)
	x.Publish(core.Event{Kind: core.KindArrival, Time: clock})
	x.mu.Lock()
	pending := len(x.pending)
	x.mu.Unlock()
	if pending != 1 {
		t.Fatalf("pending = %d, want 1 (target %d should not have sealed)", pending, target)
	}
	clock = clock.Add(x.cfg.MaxBatchAge)
	x.mu.Lock()
	if len(x.pending) > 0 && x.cfg.Now().Sub(x.pendingBorn) >= x.cfg.MaxBatchAge {
		x.sealLocked(sealAge)
	}
	sealed := len(x.queue) > 0 && len(x.queue[len(x.queue)-1].Events) == 1
	x.mu.Unlock()
	if !sealed {
		t.Fatal("age seal did not ship the stranded partial batch")
	}
	if x.cfg.MaxBatchAge != slo {
		t.Fatalf("adaptive MaxBatchAge = %v, want the SLO %v", x.cfg.MaxBatchAge, slo)
	}
}
