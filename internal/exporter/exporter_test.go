package exporter

import (
	"net"
	"sync"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/wire"
)

func ev(n int) core.Event {
	return core.Event{Kind: core.KindArrival, Time: time.Unix(1700000000, int64(n)), InPort: uint64(n)}
}

// stubServer is a scriptable collector stand-in: it accepts connections,
// answers the handshake, records batches, and acks them (unless told to
// drop the connection first).
type stubServer struct {
	t  *testing.T
	ln net.Listener

	mu      sync.Mutex
	hellos  []wire.Hello
	batches []*wire.Batch
	applied uint64 // highest contiguous seq acked

	// killAfterBatches, when > 0, closes each connection after that many
	// batches without acking the last one.
	killAfterBatches int

	// ackFeatures is the feature set the HelloAck grants (the collector
	// side of the trace negotiation).
	ackFeatures uint64
}

func newStubServer(t *testing.T) *stubServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stubServer{t: t, ln: ln}
	t.Cleanup(func() { ln.Close() })
	go s.acceptLoop()
	return s
}

func (s *stubServer) addr() string { return s.ln.Addr().String() }

func (s *stubServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(conn)
	}
}

func (s *stubServer) serve(conn net.Conn) {
	defer conn.Close()
	r := wire.NewReader(conn)
	f, err := r.Next()
	if err != nil {
		return
	}
	h, ok := f.(wire.Hello)
	if !ok {
		return
	}
	s.mu.Lock()
	s.hellos = append(s.hellos, h)
	ack := s.applied
	features := s.ackFeatures & h.Features
	s.mu.Unlock()
	now := time.Now().UnixNano()
	ha := wire.HelloAck{AckSeq: ack, Features: features, RecvNs: now, SentNs: now}
	if _, err := conn.Write(wire.AppendHelloAck(nil, ha)); err != nil {
		return
	}
	seen := 0
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		b, ok := f.(*wire.Batch)
		if !ok {
			return
		}
		s.mu.Lock()
		s.batches = append(s.batches, b)
		seen++
		kill := s.killAfterBatches > 0 && seen >= s.killAfterBatches
		if !kill {
			if last := b.LastSeq(); last > s.applied {
				s.applied = last
			}
		}
		ack := s.applied
		s.mu.Unlock()
		if kill {
			return
		}
		if _, err := conn.Write(wire.AppendAck(nil, wire.Ack{AckSeq: ack})); err != nil {
			return
		}
	}
}

func (s *stubServer) snapshot() ([]wire.Hello, []*wire.Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wire.Hello(nil), s.hellos...), append([]*wire.Batch(nil), s.batches...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDeliveryAndDrain(t *testing.T) {
	srv := newStubServer(t)
	x, err := New(Config{Addr: srv.addr(), DPID: 7, BatchSize: 8, MaxBatchAge: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	const n = 100
	for i := 1; i <= n; i++ {
		x.Publish(ev(i))
	}
	if abandoned := x.Close(2 * time.Second); abandoned != 0 {
		t.Fatalf("abandoned %d events at close", abandoned)
	}
	hellos, batches := srv.snapshot()
	if len(hellos) == 0 || hellos[0].DPID != 7 || hellos[0].NextSeq != 1 {
		t.Fatalf("hellos = %+v", hellos)
	}
	// Sequence numbers must be contiguous 1..n across batches.
	next := uint64(1)
	total := 0
	for _, b := range batches {
		if b.FirstSeq != next {
			t.Fatalf("batch starts at %d, want %d", b.FirstSeq, next)
		}
		for i, e := range b.Events {
			if e.InPort != uint64(int(b.FirstSeq)+i) {
				t.Fatalf("event content out of order at seq %d", b.FirstSeq+uint64(i))
			}
			if e.SwitchID != 7 {
				t.Fatalf("event not stamped with DPID: %d", e.SwitchID)
			}
		}
		next = b.LastSeq() + 1
		total += len(b.Events)
	}
	if total != n {
		t.Fatalf("delivered %d events, want %d", total, n)
	}
	if !x.Ledger().Sound() {
		t.Fatalf("lossless run left unsound ledger: %+v", x.Ledger().Snapshot())
	}
	st := x.Stats()
	if st.Published != n || st.ShedEvents != 0 || st.BatchesAcked == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReconnectReplaysUnacked(t *testing.T) {
	srv := newStubServer(t)
	srv.killAfterBatches = 1 // first connection dies holding one unacked batch
	x, err := New(Config{Addr: srv.addr(), DPID: 1, BatchSize: 4, BackoffMin: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	for i := 1; i <= 4; i++ {
		x.Publish(ev(i))
	}
	waitFor(t, "first batch", func() bool { _, b := srv.snapshot(); return len(b) >= 1 })
	srv.mu.Lock()
	srv.killAfterBatches = 0 // let the reconnect succeed
	srv.mu.Unlock()
	waitFor(t, "replayed batch", func() bool { _, b := srv.snapshot(); return len(b) >= 2 })
	if abandoned := x.Close(2 * time.Second); abandoned != 0 {
		t.Fatalf("abandoned %d events", abandoned)
	}
	hellos, batches := srv.snapshot()
	if len(hellos) < 2 {
		t.Fatalf("no reconnect: %d hellos", len(hellos))
	}
	if hellos[1].NextSeq != 1 {
		t.Fatalf("reconnect resume point = %d, want 1 (batch was unacked)", hellos[1].NextSeq)
	}
	if batches[0].FirstSeq != batches[1].FirstSeq || len(batches[0].Events) != len(batches[1].Events) {
		t.Fatalf("replay differs: %d/%d vs %d/%d",
			batches[0].FirstSeq, len(batches[0].Events), batches[1].FirstSeq, len(batches[1].Events))
	}
	if st := x.Stats(); st.Reconnects == 0 {
		t.Fatalf("stats.Reconnects = 0 after reconnect")
	}
	if !x.Ledger().Sound() {
		t.Fatal("replayed (not lost) events marked unsound")
	}
}

func TestShedDropNewestRecordsWireLoss(t *testing.T) {
	// No server at all: the queue fills and the policy sheds.
	x, err := New(Config{
		Addr: "127.0.0.1:1", DPID: 2, BatchSize: 1, QueueBatches: 2,
		Shed: core.ShedDropNewest, BackoffMin: 10 * time.Millisecond,
		DialTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	for i := 1; i <= 10; i++ {
		x.Publish(ev(i))
	}
	st := x.Stats()
	if st.ShedEvents == 0 {
		t.Fatalf("no events shed: %+v", st)
	}
	x.Close(10 * time.Millisecond)
	if x.Ledger().Sound() {
		t.Fatal("shedding left the ledger sound")
	}
	marks := x.Ledger().Snapshot()
	if len(marks) != 1 || marks[0].Reason != core.UnsoundWireLoss || marks[0].Property != "*" {
		t.Fatalf("marks = %+v", marks)
	}
}

func TestNoteLossCreatesSequenceGap(t *testing.T) {
	srv := newStubServer(t)
	x, err := New(Config{Addr: srv.addr(), DPID: 3, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	x.Publish(ev(1)) // seq 1
	x.NoteLoss(3)    // seqs 2,3,4 consumed, never sent
	x.Publish(ev(2)) // seq 5
	x.Flush()
	waitFor(t, "both batches", func() bool { _, b := srv.snapshot(); return len(b) >= 2 })
	x.Close(2 * time.Second)
	_, batches := srv.snapshot()
	if batches[0].FirstSeq != 1 || len(batches[0].Events) != 1 {
		t.Fatalf("batch 0 = seq %d x%d", batches[0].FirstSeq, len(batches[0].Events))
	}
	if batches[1].FirstSeq != 5 {
		t.Fatalf("batch after NoteLoss(3) starts at %d, want 5", batches[1].FirstSeq)
	}
	if x.Ledger().Sound() {
		t.Fatal("NoteLoss left the ledger sound")
	}
	if st := x.Stats(); st.LossNoted != 3 {
		t.Fatalf("LossNoted = %d", st.LossNoted)
	}
}

func TestCloseAbandonsUndeliverable(t *testing.T) {
	x, err := New(Config{
		Addr: "127.0.0.1:1", DPID: 4, BatchSize: 1,
		BackoffMin: 5 * time.Millisecond, DialTimeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	x.Publish(ev(1))
	x.Publish(ev(2))
	abandoned := x.Close(20 * time.Millisecond)
	if abandoned != 2 {
		t.Fatalf("abandoned = %d, want 2", abandoned)
	}
	if x.Ledger().Sound() {
		t.Fatal("abandoned events left the ledger sound")
	}
}
