// Package exporter is the switch-side half of the distributed
// monitoring fabric: it subscribes to a dataplane switch's event stream
// (sw.Observe(exp.Publish)), assigns every observation a per-datapath
// sequence number, batches by count and age, and ships wire.Batch
// frames to the central collector (internal/collector) over TCP.
//
// The paper's deployment question — "how much monitoring belongs on the
// switch?" — gets a concrete answer here: the switch keeps only a
// sequencer and a bounded queue; the stateful property engine runs
// wherever the collector does. What the fabric promises is that the
// soundness story survives the move:
//
//   - Delivery is at-least-once. Batches are retained until the
//     collector's cumulative Ack covers them; a reconnect replays the
//     unacknowledged tail from the HelloAck resume point and the
//     collector deduplicates by sequence number.
//   - Loss is never silent. Every event the exporter sheds (bounded
//     queue overflow under a ShedDrop* policy) or abandons (unacked at
//     Close) is recorded in a local soundness ledger under reason
//     wire-loss, and — because shed events consume sequence numbers
//     that are then never sent — surfaces independently at the
//     collector as a sequence gap, which marks the authoritative
//     per-property ledger there. A gap at the tail of the stream, with
//     no later batch to reveal it, is surfaced by an empty
//     sequence-advance batch queued right behind the loss, so even the
//     last event's disappearance is detectable. NoteLoss extends the
//     same guarantee to
//     loss upstream of the exporter: a fault.Injector wrapping Publish
//     reports its drops via OnDrop → NoteLoss, so even "the link ate
//     it" becomes a detectable gap rather than silently missing state
//     transitions.
//
// The queue policy reuses core.ShedPolicy semantics: ShedBlock applies
// backpressure to the dataplane (never loses events), ShedDropNewest
// sheds the batch being enqueued, ShedDropOldest sheds the oldest
// not-yet-sent batch. Already-sent batches awaiting ack are never shed
// — they may be applied at the collector, and dropping them would turn
// "unacknowledged" into "unaccountable".
package exporter

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/obs"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/sim"
	"switchmon/internal/wire"
)

// Config parameterizes an Exporter. The zero value of every field has a
// usable default except Addr (required unless Dial is set).
type Config struct {
	// Addr is the collector's TCP address (host:port).
	Addr string
	// DPID is the datapath id announced in the Hello handshake. Events
	// published with SwitchID zero are stamped with it.
	DPID uint64
	// BatchSize seals a batch when it reaches this many events
	// (default 128). Ignored when TargetSealLatency enables adaptive
	// sealing, which picks the size itself.
	BatchSize int
	// MaxBatchAge seals a non-empty batch this long after its first
	// event, bounding added detection latency (default 5ms; defaults to
	// TargetSealLatency in adaptive mode).
	MaxBatchAge time.Duration
	// TargetSealLatency, when positive, replaces fixed-size sealing with
	// the adaptive controller (see sealController): batches grow to the
	// largest size expected to fill within this latency budget at the
	// observed arrival rate, clamped to [1, BatchSizeMax]. 250µs is a
	// good starting point: it buys e13-scale batches under load while
	// keeping trickle-traffic detection latency near per-event shipping.
	TargetSealLatency time.Duration
	// BatchSizeMax bounds the adaptive batch size (default 256).
	BatchSizeMax int
	// Now overrides the clock used for batch aging and arrival-rate
	// estimation (default time.Now). Tests inject a fake clock to pin
	// controller trajectories deterministically.
	Now func() time.Time
	// QueueBatches bounds the send queue, counting both unsent batches
	// and sent batches awaiting ack (default 64).
	QueueBatches int
	// Shed is the queue-overflow policy (default core.ShedBlock).
	Shed core.ShedPolicy
	// BackoffMin and BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 10ms and 2s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration
	// ConnWriteBuffer sizes the TCP connection's kernel send buffer in
	// bytes (default 1 MiB, negative leaves the OS default), so a full
	// send window released at once after an ack fits in the socket
	// without blocking the sender mid-burst.
	ConnWriteBuffer int
	// Seed seeds the backoff jitter PRNG (deterministic, via sim.NewRand).
	Seed int64
	// Metrics, when non-nil, receives the exporter's series. All
	// instruments are nil-safe, so a nil registry costs nothing.
	Metrics *obs.Registry
	// Tracer, when non-nil, enables event tracing on this exporter: the
	// enqueue, batch-seal and wire-send stages are stamped on sampled
	// spans, FeatureTrace is offered in the handshake, and on a version
	// ≥ 2 connection batches carry their spans' switch-side marks plus
	// the clock-offset estimate in a trace block.
	Tracer *tracer.Tracer
	// ProtocolVersion caps the version offered in the Hello (default
	// wire.Version). Set 1 to emulate a legacy peer in interop tests.
	ProtocolVersion uint16
	// OnPropertySet, when non-nil, makes the exporter offer
	// FeatureLifecycle (on version ≥ 2 connections) and invoke the
	// callback for every property-set update the collector pushes —
	// stale epochs already filtered. The callback runs on the reader
	// goroutine; the update is acknowledged on the wire after it
	// returns. Co-located engines use it to mirror the collector's
	// live property set.
	OnPropertySet func(*wire.PropertySetUpdate)
	// OnFleetConfig, when non-nil, makes the exporter offer
	// FeatureFleet (on version ≥ 2 connections) and invoke the callback
	// for every fleet-membership config the collector pushes — stale
	// epochs already filtered. Unlike OnPropertySet the callback runs
	// on its own goroutine: a federated router's re-route performs a
	// drain fence that waits for acks on this very connection, which
	// would deadlock the reader. The config is acknowledged on the wire
	// after the callback returns (the ack means "re-routed", not
	// "received").
	OnFleetConfig func(*wire.FleetConfig)
	// Dial overrides the transport, for tests and fault injection.
	Dial func() (net.Conn, error)
}

// adaptive reports whether the config enables the seal controller.
func (cfg *Config) adaptive() bool { return cfg.TargetSealLatency > 0 }

func (cfg *Config) fillDefaults() {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.adaptive() {
		if cfg.BatchSizeMax <= 0 {
			cfg.BatchSizeMax = 256
		}
		// BatchSize becomes the pending slab's capacity hint; the
		// controller owns the seal decision.
		cfg.BatchSize = cfg.BatchSizeMax
		if cfg.MaxBatchAge <= 0 {
			// The SLO doubles as the age bound: a batch the controller
			// sized optimistically for a burst that then dried up still
			// ships within the latency budget.
			cfg.MaxBatchAge = cfg.TargetSealLatency
		}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 128
	}
	if cfg.MaxBatchAge <= 0 {
		cfg.MaxBatchAge = 5 * time.Millisecond
	}
	if cfg.QueueBatches <= 0 {
		cfg.QueueBatches = 64
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = time.Second
	}
	if cfg.ConnWriteBuffer == 0 {
		cfg.ConnWriteBuffer = 1 << 20
	}
	if cfg.ProtocolVersion == 0 {
		cfg.ProtocolVersion = wire.Version
	}
	if cfg.Dial == nil {
		addr := cfg.Addr
		timeout := cfg.DialTimeout
		cfg.Dial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, timeout) }
	}
}

// Stats is a snapshot of the exporter's counters.
type Stats struct {
	// Published counts events accepted by Publish.
	Published uint64
	// LossNoted counts sequence numbers consumed by NoteLoss.
	LossNoted uint64
	// ShedEvents counts events lost to queue overflow.
	ShedEvents uint64
	// BatchesSent and BatchesAcked count wire batches (resends recount).
	BatchesSent  uint64
	BatchesAcked uint64
	// BytesSent counts encoded frame bytes written.
	BytesSent uint64
	// Reconnects counts connections established after the first.
	Reconnects uint64
	// QueueDepth is the current number of queued batches (sent-unacked
	// plus unsent).
	QueueDepth int
	// PropertySetEpoch is the epoch of the last property-set update
	// applied; PropertySets counts updates applied.
	PropertySetEpoch uint64
	PropertySets     uint64
	// FleetEpoch is the epoch of the last fleet config applied;
	// FleetConfigs counts configs applied.
	FleetEpoch   uint64
	FleetConfigs uint64
	// BatchTarget is the current batch-size target: the adaptive
	// controller's pick, or the fixed BatchSize.
	BatchTarget int
}

// Exporter ships a switch's event stream to a collector. Publish and
// NoteLoss are safe for one producer goroutine (the dataplane is
// single-threaded); the sender runs on its own goroutines after Start.
type Exporter struct {
	cfg    Config
	ledger *core.Ledger

	mu           sync.Mutex
	space        sync.Cond // queue has room (ShedBlock waiters)
	pending      []core.Event
	pendingFirst uint64
	pendingBorn  time.Time
	nextSeq      uint64
	queue        []*wire.Batch
	sentIdx      int // queue[:sentIdx] sent awaiting ack; rest unsent
	conn         net.Conn
	closed       bool
	connected    uint64
	stats        Stats

	kick    chan struct{} // unsent work available
	closeCh chan struct{}
	done    chan struct{}
	rng     *rand.Rand

	// Property-set lifecycle state (guarded by mu): the highest epoch
	// applied, and the epoch whose wire ack the sender still owes (the
	// reader applies updates but the sender owns the connection's write
	// side, so acks ride the send loop via a kick).
	lastPropEpoch  uint64
	propAckEpoch   uint64
	propAckPending bool
	// Fleet-config lifecycle state (guarded by mu), mirroring the
	// property-set trio: highest epoch applied, plus the epoch whose
	// wire ack the sender still owes.
	lastFleetEpoch  uint64
	fleetAckEpoch   uint64
	fleetAckPending bool
	// drainTimedOut flags that Close's drain deadline fired, releasing
	// its queue-empty wait (guarded by mu).
	drainTimedOut bool

	clock  *tracer.ClockEstimator
	sendNs map[uint64]int64 // batch LastSeq → local send ns (ack clock pairing)

	// ctl is the adaptive seal controller, nil in fixed-size mode.
	// Guarded by mu.
	ctl *sealController
	// freeEvs recycles acked batches' event slabs back into x.pending,
	// so steady-state sealing stops allocating a fresh slice per batch.
	// Bounded: the seal rate and the ack rate match in steady state, so
	// two slabs (one filling, one in flight) cover the common case.
	freeEvs [][]core.Event

	eventsC     *obs.Counter
	shedC       *obs.Counter
	batchesC    *obs.Counter
	bytesC      *obs.Counter
	reconnectsC *obs.Counter
	depthG      *obs.Gauge
	targetG     *obs.Gauge
	rateG       *obs.Gauge
	sealsC      [sealReasons]*obs.Counter
}

// New builds an Exporter; Start launches it.
func New(cfg Config) (*Exporter, error) {
	if cfg.Addr == "" && cfg.Dial == nil {
		return nil, fmt.Errorf("exporter: Config.Addr or Config.Dial required")
	}
	if cfg.TargetSealLatency < 0 {
		return nil, fmt.Errorf("exporter: TargetSealLatency %v must be positive", cfg.TargetSealLatency)
	}
	if cfg.adaptive() && cfg.BatchSizeMax < 0 {
		return nil, fmt.Errorf("exporter: BatchSizeMax %d must be at least 1", cfg.BatchSizeMax)
	}
	cfg.fillDefaults()
	x := &Exporter{
		cfg:     cfg,
		ledger:  core.NewLedger(),
		nextSeq: 1,
		kick:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
		done:    make(chan struct{}),
		rng:     sim.NewRand(cfg.Seed),
	}
	x.space.L = &x.mu
	var offG, dspG *obs.Gauge
	if reg := cfg.Metrics; reg != nil {
		dp := obs.L("dpid", fmt.Sprintf("%d", cfg.DPID))
		offG = reg.Gauge("switchmon_exporter_clock_offset_ns",
			"estimated collector clock minus switch clock", dp)
		dspG = reg.Gauge("switchmon_exporter_clock_dispersion_ns",
			"clock-offset estimate dispersion (half RTT, smoothed)", dp)
		x.eventsC = reg.Counter("switchmon_exporter_events_total", "events accepted for export", dp)
		x.shedC = reg.Counter("switchmon_exporter_shed_events_total", "events lost to send-queue overflow", dp)
		x.batchesC = reg.Counter("switchmon_exporter_batches_sent_total", "wire batches written (resends recount)", dp)
		x.bytesC = reg.Counter("switchmon_exporter_bytes_sent_total", "encoded frame bytes written", dp)
		x.reconnectsC = reg.Counter("switchmon_exporter_reconnects_total", "connections established after the first", dp)
		x.depthG = reg.Gauge("switchmon_exporter_queue_depth", "queued batches (sent-unacked plus unsent)", dp)
		x.targetG = reg.Gauge("switchmon_exporter_batch_target", "current batch-size target (adaptive pick, or fixed BatchSize)", dp)
		x.rateG = reg.Gauge("switchmon_exporter_arrival_rate_eps", "estimated event arrival rate, events/sec (EWMA)", dp)
		for r := sealReason(0); r < sealReasons; r++ {
			x.sealsC[r] = reg.Counter("switchmon_exporter_batch_seals_total",
				"batches sealed, by what sealed them", dp, obs.L("reason", r.String()))
		}
	}
	if cfg.adaptive() {
		x.ctl = newSealController(cfg.TargetSealLatency, cfg.BatchSizeMax)
	}
	x.targetG.Set(int64(x.batchTargetLocked()))
	x.clock = tracer.NewClockEstimator(offG, dspG)
	return x, nil
}

// batchTargetLocked is the current seal threshold: the controller's
// target in adaptive mode, the fixed BatchSize otherwise. Caller holds
// mu (or is still constructing x).
func (x *Exporter) batchTargetLocked() int {
	if x.ctl != nil {
		return x.ctl.target
	}
	return x.cfg.BatchSize
}

// Clock exposes the exporter's collector-clock offset estimator (fed
// by the Hello handshake and timestamped Acks on version ≥ 2
// connections).
func (x *Exporter) Clock() *tracer.ClockEstimator { return x.clock }

// Ledger exposes the exporter's local soundness ledger. All marks land
// on the pseudo-property "*": the exporter does not know which
// properties an event feeds — the collector's per-property ledger is
// the authoritative account — but its own process can still report "I
// lost n events since t" on exit and over /healthz.
func (x *Exporter) Ledger() *core.Ledger { return x.ledger }

// Start launches the sender and the age-based flusher.
func (x *Exporter) Start() {
	go x.senderLoop()
	go x.flushLoop()
}

// Publish accepts one event, stamping SwitchID with the configured DPID
// when unset. It blocks only under core.ShedBlock with a full queue —
// deliberate backpressure; the shedding policies bound it. Events
// arriving after Close are dropped silently (the switch is shutting
// down).
func (x *Exporter) Publish(e core.Event) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return
	}
	if e.SwitchID == 0 {
		e.SwitchID = x.cfg.DPID
	}
	now := x.cfg.Now()
	if x.ctl != nil {
		x.ctl.observe(now.UnixNano())
	}
	if len(x.pending) == 0 {
		x.pendingFirst = x.nextSeq
		x.pendingBorn = now
	}
	x.nextSeq++
	x.stats.Published++
	x.eventsC.Inc()
	e.Trace.Stamp(tracer.StageEnqueue)
	x.pending = append(x.pending, e)
	if len(x.pending) >= x.batchTargetLocked() {
		x.sealLocked(sealSize)
	}
}

// NoteLoss records that n events were lost upstream of the exporter
// (e.g. dropped by a fault.Injector wrapping Publish — wire its OnDrop
// here). Each lost event consumes a sequence number without ever being
// sent, so the collector sees a gap and marks its ledger; the local
// ledger records the same loss for this process's own reporting.
func (x *Exporter) NoteLoss(n uint64) {
	if n == 0 {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed {
		return
	}
	x.sealLocked(sealLoss) // batches must stay sequence-contiguous
	x.ledger.Mark("*", core.UnsoundWireLoss, x.nextSeq, time.Now(), n, "lost before export")
	x.ledger.RecordLost(core.UnsoundWireLoss, n)
	x.nextSeq += n
	x.stats.LossNoted += n
	x.advanceLocked(x.nextSeq)
}

// Flush seals the pending batch immediately, without waiting for
// BatchSize or MaxBatchAge.
func (x *Exporter) Flush() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.sealLocked(sealFlush)
}

// sealLocked moves the pending events into the bounded queue, applying
// the shed policy on overflow, and — in adaptive mode — retunes the
// batch-size target for the next batch. Caller holds mu.
func (x *Exporter) sealLocked(reason sealReason) {
	if len(x.pending) == 0 {
		return
	}
	if x.cfg.Tracer != nil {
		for i := range x.pending {
			x.pending[i].Trace.Stamp(tracer.StageBatchSeal)
		}
	}
	x.sealsC[reason].Inc()
	if x.ctl != nil {
		x.targetG.Set(int64(x.ctl.reseal()))
		x.rateG.Set(x.ctl.rateEPS())
	}
	b := &wire.Batch{FirstSeq: x.pendingFirst, Events: x.pending}
	if n := len(x.freeEvs); n > 0 {
		x.pending = x.freeEvs[n-1]
		x.freeEvs = x.freeEvs[:n-1]
	} else {
		x.pending = make([]core.Event, 0, x.cfg.BatchSize)
	}
	for len(x.queue) >= x.cfg.QueueBatches && !x.closed {
		switch x.cfg.Shed {
		case core.ShedDropNewest:
			x.shedLocked(b, "send queue full, shed newest batch")
			return
		case core.ShedDropOldest:
			// The victim must be unsent (dropping an in-flight batch would
			// turn "unacknowledged" into "unaccountable") and non-empty
			// (shedding an advance marker frees no room and loses gap info).
			vi := -1
			for i := x.sentIdx; i < len(x.queue); i++ {
				if len(x.queue[i].Events) > 0 {
					vi = i
					break
				}
			}
			if vi >= 0 {
				victim := x.queue[vi]
				x.queue = append(x.queue[:vi], x.queue[vi+1:]...)
				x.shedLocked(victim, "send queue full, shed oldest unsent batch")
			} else {
				x.shedLocked(b, "send queue full of in-flight batches, shed newest")
				return
			}
		default: // core.ShedBlock
			x.space.Wait()
		}
	}
	if x.closed && len(x.queue) >= x.cfg.QueueBatches {
		x.shedLocked(b, "closing with full send queue")
		return
	}
	x.queue = append(x.queue, b)
	x.depthG.Set(int64(len(x.queue)))
	select {
	case x.kick <- struct{}{}:
	default:
	}
}

// shedLocked accounts one batch of lost events. The sequence numbers it
// held are never sent, so the collector detects the gap — via the next
// real batch, or via the advance marker queued here if nothing follows.
func (x *Exporter) shedLocked(b *wire.Batch, detail string) {
	n := uint64(len(b.Events))
	x.stats.ShedEvents += n
	x.shedC.Add(n)
	x.ledger.Mark("*", core.UnsoundWireLoss, b.FirstSeq, time.Now(), n, detail)
	x.ledger.RecordLost(core.UnsoundWireLoss, n)
	x.advanceLocked(b.LastSeq() + 1)
}

// advanceLocked queues an empty sequence-advance batch telling the
// collector "nothing below firstSeq is still coming", making losses at
// the tail of the stream detectable (a gap is otherwise only visible
// once a later batch arrives). Markers bypass the queue bound — they
// carry no events and encode to a few bytes — and coalesce into an
// unsent marker already at the tail, so they cannot accumulate while
// disconnected. A marker whose FirstSeq trails later queued batches is
// harmless: the collector ignores stale advances. Caller holds mu.
func (x *Exporter) advanceLocked(firstSeq uint64) {
	if n := len(x.queue); n > x.sentIdx {
		if tail := x.queue[n-1]; len(tail.Events) == 0 {
			if firstSeq > tail.FirstSeq {
				tail.FirstSeq = firstSeq
			}
			return
		}
	}
	x.queue = append(x.queue, &wire.Batch{FirstSeq: firstSeq})
	x.depthG.Set(int64(len(x.queue)))
	select {
	case x.kick <- struct{}{}:
	default:
	}
}

// Stats snapshots the exporter's counters.
func (x *Exporter) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	s := x.stats
	s.QueueDepth = len(x.queue)
	s.BatchTarget = x.batchTargetLocked()
	return s
}

// Drain seals pending events and waits up to timeout for the send
// queue to be fully acknowledged, without closing the exporter — the
// federated handoff fence: once Drain returns true, every event
// published so far has been applied by the collector, so a partition
// routed here can move to a new owner with nothing in flight. Returns
// false when the deadline fires (or the exporter closes) with batches
// still unacknowledged.
func (x *Exporter) Drain(timeout time.Duration) bool {
	x.mu.Lock()
	x.sealLocked(sealFlush)
	x.mu.Unlock()
	expired := false
	timer := time.AfterFunc(timeout, func() {
		x.mu.Lock()
		expired = true
		x.space.Broadcast()
		x.mu.Unlock()
	})
	x.mu.Lock()
	for len(x.queue) > 0 && !expired && !x.closed {
		x.space.Wait()
	}
	drained := len(x.queue) == 0
	x.mu.Unlock()
	timer.Stop()
	return drained
}

// Close seals pending events, waits up to drainTimeout for the queue to
// be acknowledged, then stops the sender. Events still unacknowledged
// are recorded in the local ledger as wire-loss ("unacked at close") —
// the collector may or may not have applied them; conservatively they
// count as lost. Returns the number of events abandoned.
func (x *Exporter) Close(drainTimeout time.Duration) uint64 {
	abandoned, _ := x.shutdown(drainTimeout, false)
	return abandoned
}

// CloseExtract is Close for the replay-based handoff path: events
// still unacknowledged at the drain deadline are returned in sequence
// order instead of being marked lost, so the caller can replay them to
// a partition's new owner. The old owner may have applied a sent-but-
// unacked prefix before dying — replay is the at-least-once side of
// the bargain, and the surviving fleet's dedup (per-route sequence
// spaces) guarantees no event is applied twice by the same collector.
func (x *Exporter) CloseExtract(drainTimeout time.Duration) []core.Event {
	_, extracted := x.shutdown(drainTimeout, true)
	return extracted
}

func (x *Exporter) shutdown(drainTimeout time.Duration, extract bool) (uint64, []core.Event) {
	x.mu.Lock()
	x.closed = true // before sealing, so the seal can never block on a full queue
	x.sealLocked(sealClose)
	x.space.Broadcast()
	x.mu.Unlock()

	// Event-driven drain wait: applyAck broadcasts on every ack (and
	// whenever the queue empties), so the wait wakes the moment the last
	// batch is acknowledged instead of polling; the timer releases it at
	// the deadline.
	timer := time.AfterFunc(drainTimeout, func() {
		x.mu.Lock()
		x.drainTimedOut = true
		x.space.Broadcast()
		x.mu.Unlock()
	})
	x.mu.Lock()
	for len(x.queue) > 0 && !x.drainTimedOut {
		x.space.Wait()
	}
	x.mu.Unlock()
	timer.Stop()

	close(x.closeCh)
	x.mu.Lock()
	if x.conn != nil {
		x.conn.Close() // unblock reads/writes in the sender
	}
	var abandoned uint64
	var extracted []core.Event
	for _, b := range x.queue {
		abandoned += uint64(len(b.Events))
		if extract {
			extracted = append(extracted, b.Events...)
		}
	}
	if abandoned > 0 && !extract {
		x.ledger.Mark("*", core.UnsoundWireLoss, x.queue[0].FirstSeq, time.Now(), abandoned, "unacked at close")
		x.ledger.RecordLost(core.UnsoundWireLoss, abandoned)
	}
	x.queue = nil
	x.sentIdx = 0
	x.depthG.Set(0)
	x.mu.Unlock()
	<-x.done
	return abandoned, extracted
}

// flushLoop seals pending batches that exceed MaxBatchAge.
func (x *Exporter) flushLoop() {
	interval := x.cfg.MaxBatchAge / 4
	// The fixed-size floor of 1ms is too coarse for an adaptive SLO in
	// the hundreds of microseconds; there the flusher spins at 100µs so
	// the age seal lands within ~¼ SLO of its deadline.
	floor := time.Millisecond
	if x.cfg.adaptive() {
		floor = 100 * time.Microsecond
	}
	if interval < floor {
		interval = floor
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-x.closeCh:
			return
		case <-t.C:
			x.mu.Lock()
			if len(x.pending) > 0 && x.cfg.Now().Sub(x.pendingBorn) >= x.cfg.MaxBatchAge {
				x.sealLocked(sealAge)
			}
			x.mu.Unlock()
		}
	}
}

// senderLoop owns the connection: dial with jittered exponential
// backoff, handshake, replay the unacknowledged tail, then stream new
// batches while a reader goroutine applies cumulative acks.
func (x *Exporter) senderLoop() {
	defer close(x.done)
	backoff := x.cfg.BackoffMin
	var encBuf []byte
	for {
		select {
		case <-x.closeCh:
			return
		default:
		}
		conn, err := x.cfg.Dial()
		if err != nil {
			if !x.sleepBackoff(&backoff) {
				return
			}
			continue
		}
		if !x.runConn(conn, &encBuf) {
			return
		}
		if !x.sleepBackoff(&backoff) {
			return
		}
	}
}

// sleepBackoff sleeps the current jittered backoff, doubling it for next
// time. Returns false when the exporter is closing.
func (x *Exporter) sleepBackoff(backoff *time.Duration) bool {
	x.mu.Lock()
	d := *backoff + time.Duration(x.rng.Int63n(int64(*backoff)))
	x.mu.Unlock()
	*backoff *= 2
	if *backoff > x.cfg.BackoffMax {
		*backoff = x.cfg.BackoffMax
	}
	select {
	case <-x.closeCh:
		return false
	case <-time.After(d):
		return true
	}
}

// runConn drives one connection to completion. Returns false when the
// exporter is closing (stop reconnecting).
func (x *Exporter) runConn(conn net.Conn, encBuf *[]byte) bool {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok && x.cfg.ConnWriteBuffer > 0 {
		_ = tc.SetWriteBuffer(x.cfg.ConnWriteBuffer)
	}

	x.mu.Lock()
	if x.closed && len(x.queue) == 0 {
		x.mu.Unlock()
		return false
	}
	x.conn = conn
	first := x.connected == 0
	x.connected++
	// The resume point is the oldest sequence number this exporter can
	// still deliver: the queue head, else unsealed pending events, else
	// the next unassigned sequence number.
	nextSeq := x.nextSeq
	if len(x.pending) > 0 {
		nextSeq = x.pendingFirst
	}
	if len(x.queue) > 0 {
		nextSeq = x.queue[0].FirstSeq
	}
	x.mu.Unlock()
	if !first {
		x.mu.Lock()
		x.stats.Reconnects++
		x.mu.Unlock()
		x.reconnectsC.Inc()
	}

	var features uint64
	if x.cfg.Tracer != nil && x.cfg.ProtocolVersion >= 2 {
		features = wire.FeatureTrace
	}
	if x.cfg.OnPropertySet != nil && x.cfg.ProtocolVersion >= 2 {
		features |= wire.FeatureLifecycle
	}
	if x.cfg.OnFleetConfig != nil && x.cfg.ProtocolVersion >= 2 {
		features |= wire.FeatureFleet
	}
	t1 := time.Now().UnixNano()
	hello := wire.Hello{DPID: x.cfg.DPID, NextSeq: nextSeq,
		Version: x.cfg.ProtocolVersion, Features: features, SentNs: t1}
	if _, err := conn.Write(wire.AppendHello(nil, hello)); err != nil {
		return true
	}
	r := wire.NewReader(conn)
	f, err := r.Next()
	if err != nil {
		return true
	}
	ha, ok := f.(wire.HelloAck)
	if !ok {
		return true
	}
	// The handshake is the first clock sample: T1/T4 bracket it locally,
	// the ack's receive/reply stamps are the collector's midpoint.
	if ha.Version >= 2 {
		x.clock.AddSample(t1, (ha.RecvNs+ha.SentNs)/2, time.Now().UnixNano())
	}
	traced := ha.Version >= 2 && features&wire.FeatureTrace != 0 && ha.Features&wire.FeatureTrace != 0
	lifecycle := ha.Version >= 2 && features&wire.FeatureLifecycle != 0 && ha.Features&wire.FeatureLifecycle != 0
	fleet := ha.Version >= 2 && features&wire.FeatureFleet != 0 && ha.Features&wire.FeatureFleet != 0
	x.applyAck(ha.AckSeq)
	x.mu.Lock()
	x.sentIdx = 0 // everything still queued needs (re)sending on this conn
	x.sendNs = nil
	if traced {
		x.sendNs = make(map[uint64]int64)
	}
	x.propAckPending = false // any owed ack belonged to the previous conn
	x.fleetAckPending = false
	x.mu.Unlock()

	// Reader goroutine: applies cumulative acks until the connection
	// dies, pairing timestamped acks with the matching batch's send time
	// for ongoing clock sampling.
	connDead := make(chan struct{})
	go func() {
		defer close(connDead)
		for {
			f, err := r.Next()
			if err != nil {
				return
			}
			switch fr := f.(type) {
			case wire.Ack:
				if fr.SentNs != 0 {
					t4 := time.Now().UnixNano()
					x.mu.Lock()
					sendT, found := x.sendNs[fr.AckSeq]
					for k := range x.sendNs {
						if k <= fr.AckSeq {
							delete(x.sendNs, k)
						}
					}
					x.mu.Unlock()
					if found {
						x.clock.AddSample(sendT, fr.SentNs, t4)
					}
				}
				x.applyAck(fr.AckSeq)
			case *wire.PropertySetUpdate:
				if !lifecycle {
					return // protocol violation: frame never negotiated
				}
				x.mu.Lock()
				stale := fr.Epoch < x.lastPropEpoch
				if !stale {
					x.lastPropEpoch = fr.Epoch
					x.stats.PropertySetEpoch = fr.Epoch
					x.stats.PropertySets++
				}
				x.mu.Unlock()
				if stale {
					continue
				}
				if cb := x.cfg.OnPropertySet; cb != nil {
					cb(fr)
				}
				// The sender owns the connection's write side; leave it
				// the ack and kick it awake. Acks are cumulative like
				// batch acks: back-to-back pushes coalesce into a single
				// ack for the latest applied epoch.
				x.mu.Lock()
				x.propAckEpoch = fr.Epoch
				x.propAckPending = true
				x.mu.Unlock()
				select {
				case x.kick <- struct{}{}:
				default:
				}
			case *wire.FleetConfig:
				if !fleet {
					return // protocol violation: frame never negotiated
				}
				x.mu.Lock()
				stale := fr.Epoch <= x.lastFleetEpoch && x.stats.FleetConfigs > 0
				if !stale {
					x.lastFleetEpoch = fr.Epoch
					x.stats.FleetEpoch = fr.Epoch
					x.stats.FleetConfigs++
				}
				x.mu.Unlock()
				if stale {
					continue
				}
				// Applying a fleet config re-routes partitions behind a
				// drain fence that waits for acks — possibly on this very
				// connection — so it cannot run on the reader goroutine.
				// The ack is queued after the apply completes: it means
				// "re-routed", which is what the collector's handoff
				// tracking wants to know.
				go func(fc *wire.FleetConfig) {
					if cb := x.cfg.OnFleetConfig; cb != nil {
						cb(fc)
					}
					// fleetAckEpoch is the high-water acked epoch: a
					// slower apply goroutine for an older config must not
					// regress it, or the collector would see an ack
					// sequence that un-acks a newer re-route.
					x.mu.Lock()
					if fc.Epoch > x.fleetAckEpoch {
						x.fleetAckEpoch = fc.Epoch
						x.fleetAckPending = true
					}
					x.mu.Unlock()
					select {
					case x.kick <- struct{}{}:
					default:
					}
				}(fr)
			}
		}
	}()

	for {
		x.mu.Lock()
		var b *wire.Batch
		if x.sentIdx < len(x.queue) {
			b = x.queue[x.sentIdx]
			x.sentIdx++
		}
		ackProp, ackEpoch := x.propAckPending, x.propAckEpoch
		x.propAckPending = false
		ackFleet, ackFleetEpoch := x.fleetAckPending, x.fleetAckEpoch
		x.fleetAckPending = false
		x.mu.Unlock()
		if ackProp {
			if _, err := conn.Write(wire.AppendPropertySetAck(nil, wire.PropertySetAck{Epoch: ackEpoch})); err != nil {
				<-connDead
				return true
			}
		}
		if ackFleet {
			if _, err := conn.Write(wire.AppendFleetConfigAck(nil, wire.FleetConfigAck{Epoch: ackFleetEpoch})); err != nil {
				<-connDead
				return true
			}
		}
		if b == nil {
			select {
			case <-x.closeCh:
				conn.Close()
				<-connDead
				return false
			case <-connDead:
				return true
			case <-x.kick:
				continue
			}
		}
		// Traced is per-connection state on a shared batch: a replay on a
		// later v1 connection must re-encode as a plain Batch, so it is
		// (re)set on every send rather than once at seal.
		b.Traced = traced
		if traced {
			for i := range b.Events {
				b.Events[i].Trace.Stamp(tracer.StageWireSend)
			}
			if off, dsp, ok := x.clock.Estimate(); ok {
				b.ClockOffsetNs, b.ClockDispNs = off, dsp
			}
			x.mu.Lock()
			nowNs := time.Now().UnixNano()
			x.evictSendNsLocked(nowNs)
			x.sendNs[b.LastSeq()] = nowNs
			x.mu.Unlock()
		}
		enc, err := wire.AppendBatch((*encBuf)[:0], b)
		if err != nil {
			// An unencodable batch can never be delivered; shed it so the
			// stream can make progress past the gap it leaves.
			x.mu.Lock()
			for i, q := range x.queue {
				if q == b {
					x.queue = append(x.queue[:i], x.queue[i+1:]...)
					x.sentIdx--
					break
				}
			}
			x.shedLocked(b, fmt.Sprintf("unencodable batch: %v", err))
			x.mu.Unlock()
			continue
		}
		*encBuf = enc
		if _, err := conn.Write(enc); err != nil {
			<-connDead
			return true
		}
		x.mu.Lock()
		x.stats.BatchesSent++
		x.stats.BytesSent += uint64(len(enc))
		x.mu.Unlock()
		x.batchesC.Inc()
		x.bytesC.Add(uint64(len(enc)))
	}
}

// sendNsHorizon bounds how long a send timestamp waits for its
// timestamped ack before eviction. Entries normally retire when an ack
// covers them, but a batch shed after its timestamp was recorded (e.g.
// unencodable), or a peer that stops timestamping acks, would strand
// its entry forever — a slow leak on a long-lived connection.
const sendNsHorizon = 10 * time.Second

// evictSendNsLocked drops send-time entries older than the horizon.
// Caller holds mu. Called on the send path, so the map's population is
// bounded by the batches sent per horizon even if no ack ever cleans it.
func (x *Exporter) evictSendNsLocked(nowNs int64) {
	for k, t := range x.sendNs {
		if nowNs-t > int64(sendNsHorizon) {
			delete(x.sendNs, k)
		}
	}
}

// applyAck pops acknowledged batches off the queue head, recycles their
// event slabs into the pending free list, and wakes ShedBlock waiters.
func (x *Exporter) applyAck(ackSeq uint64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for len(x.queue) > 0 && x.queue[0].LastSeq() <= ackSeq {
		b := x.queue[0]
		x.queue = x.queue[1:]
		if x.sentIdx > 0 {
			x.sentIdx--
		}
		x.stats.BatchesAcked++
		// An acked batch is never resent: its slab is free to back the
		// next pending batch instead of a fresh allocation.
		if cap(b.Events) > 0 && len(x.freeEvs) < 2 {
			x.freeEvs = append(x.freeEvs, b.Events[:0])
			b.Events = nil
		}
	}
	x.depthG.Set(int64(len(x.queue)))
	x.space.Broadcast()
}
