package exporter

import (
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/wire"
)

// TestReconnectReplayWithTracing kills the first connection with one
// unacked traced batch in flight and lets the replay land on a second
// connection. Stage marks are first-stamp-wins, so the replayed batch
// must carry byte-for-byte the same switch-stage marks as the original
// send — no double stamping — and the replay (delivered, just twice)
// must leave the wire-loss ledger clean.
func TestReconnectReplayWithTracing(t *testing.T) {
	srv := newStubServer(t)
	srv.ackFeatures = wire.FeatureTrace
	srv.killAfterBatches = 1

	tr := tracer.New(tracer.Config{SampleN: 1})
	x, err := New(Config{Addr: srv.addr(), DPID: 1, BatchSize: 4, BackoffMin: time.Millisecond, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()

	const n = 4
	spans := make([]*tracer.Span, 0, n)
	for i := 1; i <= n; i++ {
		e := ev(i)
		e.PacketID = core.PacketID(i)
		// Originate the span the way the dataplane would, pre-exporter.
		sp := tr.Sample(1, uint64(e.PacketID), uint8(e.Kind))
		if sp == nil {
			t.Fatalf("1-in-1 sampler skipped event %d", i)
		}
		sp.Stamp(tracer.StageIngress)
		e.Trace = sp
		spans = append(spans, sp)
		x.Publish(e)
	}

	waitFor(t, "first (killed) batch", func() bool { _, b := srv.snapshot(); return len(b) >= 1 })
	// Snapshot the switch-stage marks as of the first send.
	firstMarks := make([][tracer.NumStages]int64, n)
	for i, sp := range spans {
		for st := tracer.Stage(0); st < tracer.NumStages; st++ {
			firstMarks[i][st] = sp.Mark(st)
		}
		for _, st := range []tracer.Stage{tracer.StageIngress, tracer.StageEnqueue, tracer.StageBatchSeal, tracer.StageWireSend} {
			if sp.Mark(st) == 0 {
				t.Fatalf("span %d missing %s before replay", i, st)
			}
		}
	}

	srv.mu.Lock()
	srv.killAfterBatches = 0
	srv.mu.Unlock()
	waitFor(t, "replayed batch", func() bool { _, b := srv.snapshot(); return len(b) >= 2 })
	if abandoned := x.Close(2 * time.Second); abandoned != 0 {
		t.Fatalf("abandoned %d events", abandoned)
	}

	// No local span gained a second stamp from the replay.
	for i, sp := range spans {
		for st := tracer.Stage(0); st < tracer.NumStages; st++ {
			if got := sp.Mark(st); got != firstMarks[i][st] {
				t.Errorf("span %d stage %s restamped on replay: %d -> %d", i, st, firstMarks[i][st], got)
			}
		}
	}

	// Both wire copies are traced and carry identical mark sets.
	_, batches := srv.snapshot()
	if len(batches) < 2 {
		t.Fatalf("got %d batches", len(batches))
	}
	orig, replay := batches[0], batches[1]
	if !orig.Traced || !replay.Traced {
		t.Fatalf("traced flags = %v/%v, want true/true", orig.Traced, replay.Traced)
	}
	if orig.FirstSeq != replay.FirstSeq || len(orig.Events) != len(replay.Events) {
		t.Fatalf("replay shape differs: seq %d x%d vs seq %d x%d",
			orig.FirstSeq, len(orig.Events), replay.FirstSeq, len(replay.Events))
	}
	for i := range orig.Events {
		so, sr := orig.Events[i].Trace, replay.Events[i].Trace
		if so == nil || sr == nil {
			t.Fatalf("event %d lost its span on the wire (%v/%v)", i, so, sr)
		}
		if so.StageMask() != tracer.SwitchStageMask || sr.StageMask() != so.StageMask() {
			t.Fatalf("event %d stage masks differ: %08b vs %08b", i, so.StageMask(), sr.StageMask())
		}
		for st := tracer.Stage(0); st < tracer.NumStages; st++ {
			if so.Mark(st) != sr.Mark(st) {
				t.Errorf("event %d stage %s: original %d, replay %d", i, st, so.Mark(st), sr.Mark(st))
			}
		}
	}

	// Replay is delivery, not loss: the ledger stays sound.
	if !x.Ledger().Sound() {
		t.Fatalf("replayed traced events marked unsound: %+v", x.Ledger().Snapshot())
	}
}

// TestShedWithTracingMarksExactLoss re-runs the shed-policy scenario
// with tracing enabled: the wire-loss ledger mark must stay exactly one
// mark with the true count, unskewed by span bookkeeping.
func TestShedWithTracingMarksExactLoss(t *testing.T) {
	tr := tracer.New(tracer.Config{SampleN: 1})
	x, err := New(Config{
		Addr: "127.0.0.1:1", DPID: 2, BatchSize: 1, QueueBatches: 2,
		Shed: core.ShedDropNewest, BackoffMin: 10 * time.Millisecond,
		DialTimeout: 10 * time.Millisecond, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	for i := 1; i <= 10; i++ {
		e := ev(i)
		e.Trace = tr.Sample(2, uint64(i), uint8(e.Kind))
		e.Trace.Stamp(tracer.StageIngress)
		x.Publish(e)
	}
	st := x.Stats()
	x.Close(10 * time.Millisecond)
	marks := x.Ledger().Snapshot()
	if len(marks) != 1 || marks[0].Reason != core.UnsoundWireLoss {
		t.Fatalf("marks = %+v", marks)
	}
	if st.ShedEvents == 0 || marks[0].Events < st.ShedEvents {
		t.Fatalf("shed %d but ledger counts %d", st.ShedEvents, marks[0].Events)
	}
}
