package exporter

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"switchmon/internal/wire"
)

// Close must return promptly while the run loop is asleep in its
// reconnect backoff — the drain wait and the backoff sleep both watch
// closeCh. Regression: with an unreachable collector and a multi-second
// backoff floor, Close used to be on the hook for the full sleep.
func TestCloseDuringBackoffReturnsPromptly(t *testing.T) {
	dials := make(chan struct{}, 16)
	x, err := New(Config{
		DPID: 1,
		Dial: func() (net.Conn, error) {
			select {
			case dials <- struct{}{}:
			default:
			}
			return nil, errors.New("collector unreachable")
		},
		BackoffMin: 30 * time.Second,
		BackoffMax: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	x.Publish(ev(1)) // non-empty queue: the drain wait is also on the clock
	<-dials          // the run loop has failed a dial and entered backoff

	start := time.Now()
	abandoned := x.Close(50 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v mid-backoff, want prompt return", elapsed)
	}
	if abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1 (the queued event never shipped)", abandoned)
	}
	if x.Ledger().Sound() {
		t.Fatal("abandoning a queued event must mark the ledger")
	}
}

// lifecycleStub is a collector stand-in that negotiates the lifecycle
// feature, pushes scripted PropertySetUpdate frames after the
// handshake, and records the acks the exporter sends back.
type lifecycleStub struct {
	t       *testing.T
	ln      net.Listener
	updates []*wire.PropertySetUpdate

	mu   sync.Mutex
	acks []wire.PropertySetAck
}

func newLifecycleStub(t *testing.T, updates ...*wire.PropertySetUpdate) *lifecycleStub {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &lifecycleStub{t: t, ln: ln, updates: updates}
	t.Cleanup(func() { ln.Close() })
	go s.acceptLoop()
	return s
}

func (s *lifecycleStub) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(conn)
	}
}

func (s *lifecycleStub) serve(conn net.Conn) {
	defer conn.Close()
	r := wire.NewReader(conn)
	f, err := r.Next()
	if err != nil {
		return
	}
	h, ok := f.(wire.Hello)
	if !ok {
		return
	}
	now := time.Now().UnixNano()
	ha := wire.HelloAck{Features: h.Features & wire.FeatureLifecycle, RecvNs: now, SentNs: now}
	if _, err := conn.Write(wire.AppendHelloAck(nil, ha)); err != nil {
		return
	}
	for _, u := range s.updates {
		buf, err := wire.AppendPropertySetUpdate(nil, u)
		if err != nil {
			s.t.Error(err)
			return
		}
		if _, err := conn.Write(buf); err != nil {
			return
		}
	}
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		switch fr := f.(type) {
		case wire.PropertySetAck:
			s.mu.Lock()
			s.acks = append(s.acks, fr)
			s.mu.Unlock()
		case *wire.Batch:
			if _, err := conn.Write(wire.AppendAck(nil, wire.Ack{AckSeq: fr.LastSeq()})); err != nil {
				return
			}
		}
	}
}

func (s *lifecycleStub) ackSnapshot() []wire.PropertySetAck {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wire.PropertySetAck(nil), s.acks...)
}

// The exporter applies pushed property sets in epoch order, filters
// stale ones, and acks each applied epoch on the wire.
func TestPropertySetPushStaleFilteredAndAcked(t *testing.T) {
	fresh := &wire.PropertySetUpdate{
		Epoch:  2,
		Props:  []wire.PropMeta{{Name: "fw", Tenant: "t1"}, {Name: "nat"}},
		Source: "property \"fw\" {}\n",
	}
	stale := &wire.PropertySetUpdate{Epoch: 1, Props: []wire.PropMeta{{Name: "old"}}}
	s := newLifecycleStub(t, fresh, stale)

	var mu sync.Mutex
	var seen []*wire.PropertySetUpdate
	x, err := New(Config{
		Addr: s.ln.Addr().String(), DPID: 7,
		OnPropertySet: func(u *wire.PropertySetUpdate) {
			mu.Lock()
			seen = append(seen, u)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	defer x.Close(time.Second)

	waitFor(t, "property-set ack", func() bool { return len(s.ackSnapshot()) >= 1 })

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("callback ran %d times, want 1 (stale epoch filtered)", len(seen))
	}
	if seen[0].Epoch != 2 || len(seen[0].Props) != 2 || seen[0].Props[0].Tenant != "t1" {
		t.Fatalf("callback update = %+v, want epoch 2 with 2 props", seen[0])
	}
	if seen[0].Source != fresh.Source {
		t.Fatalf("source = %q, want %q", seen[0].Source, fresh.Source)
	}
	acks := s.ackSnapshot()
	if len(acks) != 1 || acks[0].Epoch != 2 {
		t.Fatalf("acks = %+v, want exactly [epoch 2]", acks)
	}
	st := x.Stats()
	if st.PropertySetEpoch != 2 || st.PropertySets != 1 {
		t.Fatalf("stats epoch=%d sets=%d, want 2/1", st.PropertySetEpoch, st.PropertySets)
	}
}

// A v1 exporter (no OnPropertySet) must not offer the lifecycle feature
// bit; interop with old collectors is preserved by never sending the
// new frames on such connections.
func TestNoLifecycleOfferWithoutCallback(t *testing.T) {
	s := newStubServer(t)
	x, err := New(Config{Addr: s.addr(), DPID: 3})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	defer x.Close(time.Second)
	x.Publish(ev(1))
	x.Flush()
	waitFor(t, "hello", func() bool {
		hellos, _ := s.snapshot()
		return len(hellos) >= 1
	})
	hellos, _ := s.snapshot()
	if hellos[0].Features&wire.FeatureLifecycle != 0 {
		t.Fatalf("hello features %b offer lifecycle without a callback", hellos[0].Features)
	}
}
