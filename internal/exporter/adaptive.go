package exporter

import "time"

// sealReason classifies what sealed a batch. The distribution is the
// adaptive controller's observable behavior: a healthy adaptive
// exporter seals by size under load (the target tracked the rate) and
// by age under trickle (the SLO bounded the wait).
type sealReason uint8

const (
	sealSize  sealReason = iota // pending reached the batch target
	sealAge                     // pending exceeded MaxBatchAge / the SLO
	sealFlush                   // explicit Flush
	sealLoss                    // NoteLoss sealing for sequence contiguity
	sealClose                   // Close sealing the tail
	sealReasons
)

func (r sealReason) String() string {
	switch r {
	case sealSize:
		return "size"
	case sealAge:
		return "age"
	case sealFlush:
		return "flush"
	case sealLoss:
		return "loss"
	case sealClose:
		return "close"
	}
	return "unknown"
}

// ewmaGain is the arrival-rate estimator's gain, 1/8 — the TCP
// RTT-estimator idiom (and the same gain tracer.ClockEstimator uses):
// heavy enough smoothing to ride out per-event jitter, light enough to
// track a burst within a handful of events.
const ewmaGain = 8

// sealController picks the batch size that fills within the latency
// SLO at the observed arrival rate — Nagle's algorithm with a budget.
//
// It keeps an EWMA of the inter-arrival gap and, at each seal, sets
//
//	target = clamp(slo / gap, 1, max)
//
// which is the largest batch whose expected fill time stays under the
// SLO. Under a burst the gap collapses and the target grows toward max
// (amortizing framing and syscalls, e13's regime); under a trickle the
// gap stretches and the target collapses toward 1 (shipping each event
// promptly, e14's regime). Observed gaps are clamped at 4×SLO so an
// idle period reads as "slow", not as an estimate-destroying outlier.
//
// The controller is driven entirely by caller-supplied timestamps
// (Config.Now), so a fake clock reproduces byte-identical trajectories.
type sealController struct {
	sloNs int64
	maxB  int

	gapNs  float64 // EWMA of inter-arrival gap; 0 until two arrivals
	lastNs int64   // previous arrival; 0 until one arrival
	target int     // current batch-size target, recomputed at each seal
}

func newSealController(slo time.Duration, maxB int) *sealController {
	return &sealController{sloNs: int64(slo), maxB: maxB, target: 1}
}

// observe feeds one arrival timestamp into the gap estimator.
func (sc *sealController) observe(nowNs int64) {
	if sc.lastNs != 0 {
		gap := float64(nowNs - sc.lastNs)
		if hi := float64(4 * sc.sloNs); gap > hi {
			gap = hi
		}
		if gap < 1 {
			gap = 1 // a zero/negative gap still means "as fast as possible"
		}
		if sc.gapNs == 0 {
			sc.gapNs = gap
		} else {
			sc.gapNs += (gap - sc.gapNs) / ewmaGain
		}
	}
	sc.lastNs = nowNs
}

// reseal recomputes the batch-size target from the current estimate.
// Called at each seal, so the target is constant within one batch.
func (sc *sealController) reseal() int {
	if sc.gapNs <= 0 {
		// No estimate yet: stay conservative — a target of 1 ships the
		// first events immediately and the estimator learns from them.
		sc.target = 1
		return sc.target
	}
	t := int(float64(sc.sloNs) / sc.gapNs)
	if t < 1 {
		t = 1
	}
	if t > sc.maxB {
		t = sc.maxB
	}
	sc.target = t
	return sc.target
}

// rateEPS is the estimated arrival rate in events/second, 0 until the
// estimator has a gap.
func (sc *sealController) rateEPS() int64 {
	if sc.gapNs <= 0 {
		return 0
	}
	return int64(1e9 / sc.gapNs)
}
