package tables

import (
	"strings"

	"switchmon/internal/backend"
	"switchmon/internal/sim"
)

// T2Cell is one probed or declared Table 2 cell.
type T2Cell struct {
	Value backend.Tri
	// Probed reports whether the cell was observed via a witness compile
	// (true) or taken from the declared capability vector (false — blank
	// cells and the controller-hosted OpenFlow column cannot be probed).
	Probed bool
}

// Mark renders the cell in the paper's notation.
func (c T2Cell) Mark() string {
	switch c.Value {
	case backend.Yes:
		return "yes"
	case backend.No:
		return "no"
	default:
		return ""
	}
}

// Table2 is the regenerated comparison matrix.
type Table2 struct {
	Columns []string // backend names
	// Descriptive rows (label -> per-backend text).
	Descriptive []T2DescRow
	// Boolean rows (label -> per-backend cell).
	Boolean []T2BoolRow
}

// T2DescRow is a descriptive Table 2 row.
type T2DescRow struct {
	Label string
	Cells []string
}

// T2BoolRow is a probed Table 2 row.
type T2BoolRow struct {
	Label string
	Cells []T2Cell
}

// BuildTable2 constructs the matrix by probing every backend with the
// witness properties. Each probe uses a fresh backend so compiled
// witnesses cannot interfere with each other.
func BuildTable2() Table2 {
	ref := backend.All(sim.NewScheduler())
	t := Table2{}
	for _, b := range ref {
		t.Columns = append(t.Columns, b.Name())
	}
	t.Descriptive = []T2DescRow{
		{Label: "State mechanism"},
		{Label: "Update datapath"},
		{Label: "Processing mode"},
		{Label: "Field access"},
	}
	for _, b := range ref {
		caps := b.Capabilities()
		t.Descriptive[0].Cells = append(t.Descriptive[0].Cells, caps.StateMechanism)
		t.Descriptive[1].Cells = append(t.Descriptive[1].Cells, caps.UpdateDatapath)
		t.Descriptive[2].Cells = append(t.Descriptive[2].Cells, caps.ProcessingMode)
		t.Descriptive[3].Cells = append(t.Descriptive[3].Cells, caps.FieldAccess)
	}

	for _, w := range backend.Witnesses() {
		row := T2BoolRow{Label: w.Row}
		for col, b := range ref {
			caps := b.Capabilities()
			declared := w.Capability(caps)
			cell := T2Cell{Value: declared}
			controllerHosted := caps.StateMechanism == "Controller only"
			if declared != backend.Blank && !controllerHosted {
				// Observe the cell: compile the witness on a fresh
				// backend instance.
				fresh := backend.All(sim.NewScheduler())[col]
				if err := fresh.AddProperty(w.Prop); err == nil {
					cell.Value = backend.Yes
				} else {
					cell.Value = backend.No
				}
				cell.Probed = true
			}
			row.Cells = append(row.Cells, cell)
		}
		t.Boolean = append(t.Boolean, row)
	}
	// Rows not expressible as property witnesses: taken from declared
	// capabilities.
	extra := []struct {
		label string
		get   func(backend.Capabilities) backend.Tri
	}{
		{"full provenance", func(c backend.Capabilities) backend.Tri { return c.FullProvenance }},
		{"drop visibility", func(c backend.Capabilities) backend.Tri { return c.DropVisibility }},
		{"egress metadata", func(c backend.Capabilities) backend.Tri { return c.EgressVisibility }},
	}
	for _, ex := range extra {
		row := T2BoolRow{Label: ex.label}
		for _, b := range ref {
			row.Cells = append(row.Cells, T2Cell{Value: ex.get(b.Capabilities())})
		}
		t.Boolean = append(t.Boolean, row)
	}
	return t
}

// RenderTable2 renders the regenerated Table 2 as aligned text. Probed
// cells are marked with an asterisk footnote.
func RenderTable2() string {
	t := BuildTable2()
	var b strings.Builder
	b.WriteString("Table 2 (regenerated: * cells observed by compiling witness properties)\n\n")
	var grid [][]string
	grid = append(grid, append([]string{"Semantic challenge"}, t.Columns...))
	for _, r := range t.Descriptive {
		grid = append(grid, append([]string{r.Label}, r.Cells...))
	}
	for _, r := range t.Boolean {
		row := []string{r.Label}
		for _, c := range r.Cells {
			mark := c.Mark()
			if c.Probed {
				mark += "*"
			}
			row = append(row, mark)
		}
		grid = append(grid, row)
	}
	writeGrid(&b, grid)
	b.WriteString("\nRows beyond the paper's table: drop visibility and egress metadata\n")
	b.WriteString("(the Sec 2.2 / 3.2 gaps), plus the Ideal column realizing Sec 2's feature set.\n")
	return b.String()
}
