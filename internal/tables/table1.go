// Package tables regenerates the paper's two tables from the running
// system: Table 1 (property × required features) is derived by static
// analysis of the executable property catalogue, and Table 2 (approach ×
// semantic feature) is derived by probing each backend with witness
// properties. Both renderers also print the paper's original cells and an
// agreement report, so the reproduction is auditable cell by cell.
package tables

import (
	"fmt"
	"strings"

	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// Cell is one boolean Table 1 cell ("•" or blank).
type Cell bool

// Dot renders the paper's bullet notation.
func (c Cell) Dot() string {
	if c {
		return "•"
	}
	return ""
}

// T1Row is one row of Table 1 in either its paper or derived form.
type T1Row struct {
	Group    string
	Desc     string
	PropName string
	Fields   string // "L3", "L4", "L7"
	History  Cell
	Timeouts Cell
	Obligat  Cell
	Identity Cell
	NegMatch Cell
	TOActs   Cell
	InstID   string // "exact", "symmetric", "wandering"
}

// cells returns the comparable cells in column order.
func (r T1Row) cells() []string {
	return []string{
		r.Fields, r.History.Dot(), r.Timeouts.Dot(), r.Obligat.Dot(),
		r.Identity.Dot(), r.NegMatch.Dot(), r.TOActs.Dot(), r.InstID,
	}
}

// t1Columns are the Table 1 column headers.
var t1Columns = []string{"Fields", "History", "Timeouts", "Obligation", "Identity", "Neg Match", "T.Out. Acts", "Inst. ID"}

// PaperTable1 transcribes the paper's Table 1, in paper row order, keyed
// to the catalogue property realizing each row.
func PaperTable1() []T1Row {
	return []T1Row{
		{Group: "ARP Cache Proxy", PropName: "arp-known-not-forwarded",
			Desc:   "Requests for known addresses are not forwarded",
			Fields: "L3", History: true, InstID: "exact"},
		{Group: "ARP Cache Proxy", PropName: "arp-unknown-forwarded",
			Desc:   "Requests for unknown addresses are forwarded",
			Fields: "L3", History: true, Obligat: true, Identity: true, TOActs: true, InstID: "exact"},
		{Group: "Port Knocking", PropName: "knock-intervening",
			Desc:   "Intervening guesses invalidate sequence",
			Fields: "L4", History: true, NegMatch: true, InstID: "exact"},
		{Group: "Port Knocking", PropName: "knock-valid-sequence",
			Desc:   "Recognize valid sequence",
			Fields: "L4", History: true, Obligat: true, NegMatch: true, InstID: "exact"},
		{Group: "Load Balancing", PropName: "lb-hashed",
			Desc:   "New flows go to hashed port",
			Fields: "L4", History: true, Obligat: true, Identity: true, InstID: "symmetric"},
		{Group: "Load Balancing", PropName: "lb-round-robin",
			Desc:   "New flows go to round-robin port",
			Fields: "L4", History: true, Obligat: true, Identity: true, InstID: "symmetric"},
		{Group: "Load Balancing", PropName: "lb-sticky",
			Desc:   "No change in port until flow closed",
			Fields: "L4", History: true, Identity: true, NegMatch: true, InstID: "symmetric"},
		{Group: "FTP", PropName: "ftp-data-port",
			Desc:   "Data L4 port matches L4 port given in control stream",
			Fields: "L7", History: true, NegMatch: true, InstID: "symmetric"},
		{Group: "DHCP", PropName: "dhcp-reply-within",
			Desc:   "Reply to lease request within T seconds",
			Fields: "L7", History: true, Timeouts: true, TOActs: true, InstID: "symmetric"},
		{Group: "DHCP", PropName: "dhcp-no-reuse",
			Desc:   "Leased addresses never re-used until expiration or release",
			Fields: "L7", History: true, Timeouts: true, InstID: "symmetric"},
		{Group: "DHCP", PropName: "dhcp-no-overlap",
			Desc:   "No lease overlap between DHCP servers",
			Fields: "L7", History: true, NegMatch: true, InstID: "symmetric"},
		{Group: "DHCP + ARP Proxy", PropName: "dhcparp-preload",
			Desc:   "Pre-load ARP cache with leased addresses",
			Fields: "L7", History: true, NegMatch: true, TOActs: true, InstID: "wandering"},
		{Group: "DHCP + ARP Proxy", PropName: "dhcparp-no-direct-reply",
			Desc:   "No direct reply if neither pre-loaded nor prior reply seen",
			Fields: "L7", History: true, Obligat: true, InstID: "wandering"},
	}
}

// DerivedTable1 analyzes the executable catalogue and produces the rows
// corresponding to the paper's Table 1, in paper order.
func DerivedTable1(pm property.Params) []T1Row {
	byName := map[string]property.CatalogEntry{}
	for _, e := range property.Catalog(pm) {
		byName[e.Prop.Name] = e
	}
	var rows []T1Row
	for _, paper := range PaperTable1() {
		e, ok := byName[paper.PropName]
		if !ok {
			continue
		}
		ft := property.Analyze(e.Prop)
		rows = append(rows, T1Row{
			Group:    e.Group,
			Desc:     e.Prop.Description,
			PropName: e.Prop.Name,
			Fields:   layerLabel(ft.MaxLayer),
			History:  Cell(ft.History),
			Timeouts: Cell(ft.Timeouts),
			Obligat:  Cell(ft.Obligation),
			Identity: Cell(ft.Identity),
			NegMatch: Cell(ft.NegMatch),
			TOActs:   Cell(ft.TimeoutActions),
			InstID:   ft.InstanceID.String(),
		})
	}
	return rows
}

func layerLabel(l packet.Layer) string { return l.String() }

// T1Agreement compares the derived table against the paper's, returning
// (matching cells, total cells, per-cell diff lines).
func T1Agreement(pm property.Params) (match, total int, diffs []string) {
	paper := PaperTable1()
	derived := DerivedTable1(pm)
	for i := range paper {
		pc, dc := paper[i].cells(), derived[i].cells()
		for j := range pc {
			total++
			if pc[j] == dc[j] {
				match++
				continue
			}
			diffs = append(diffs, fmt.Sprintf("%s / %s: paper=%q derived=%q",
				paper[i].PropName, t1Columns[j], pc[j], dc[j]))
		}
	}
	return match, total, diffs
}

// RenderTable1 renders the derived Table 1 (and, when withPaper is set,
// the paper's cells plus the agreement report) as aligned text.
func RenderTable1(pm property.Params, withPaper bool) string {
	var b strings.Builder
	b.WriteString("Table 1 (derived from the executable property catalogue)\n\n")
	writeT1(&b, DerivedTable1(pm))
	if withPaper {
		b.WriteString("\nTable 1 (paper's cells, for comparison)\n\n")
		writeT1(&b, PaperTable1())
		match, total, diffs := T1Agreement(pm)
		fmt.Fprintf(&b, "\nAgreement: %d/%d cells (%.0f%%)\n", match, total, 100*float64(match)/float64(total))
		if len(diffs) > 0 {
			b.WriteString("Differing cells (our encodings make ambiguous rows precise; see EXPERIMENTS.md):\n")
			for _, d := range diffs {
				fmt.Fprintf(&b, "  %s\n", d)
			}
		}
	}
	return b.String()
}

func writeT1(b *strings.Builder, rows []T1Row) {
	headers := append([]string{"Group", "Property"}, t1Columns...)
	var grid [][]string
	grid = append(grid, headers)
	for _, r := range rows {
		grid = append(grid, append([]string{r.Group, r.PropName}, r.cells()...))
	}
	writeGrid(b, grid)
}

// writeGrid prints a column-aligned text table.
func writeGrid(b *strings.Builder, grid [][]string) {
	widths := make([]int, len(grid[0]))
	for _, row := range grid {
		for i, cell := range row {
			if w := len([]rune(cell)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	for ri, row := range grid {
		for i, cell := range row {
			pad := widths[i] - len([]rune(cell))
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad))
			if i < len(row)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteString("\n")
		if ri == 0 {
			for i, w := range widths {
				b.WriteString(strings.Repeat("-", w))
				if i < len(widths)-1 {
					b.WriteString("  ")
				}
			}
			b.WriteString("\n")
		}
	}
}
