package tables

import (
	"strings"
	"testing"

	"switchmon/internal/backend"
	"switchmon/internal/property"
)

func TestDerivedTable1CoversAllPaperRows(t *testing.T) {
	pm := property.DefaultParams()
	paper, derived := PaperTable1(), DerivedTable1(pm)
	if len(paper) != 13 {
		t.Fatalf("paper table has %d rows, want 13", len(paper))
	}
	if len(derived) != len(paper) {
		t.Fatalf("derived table has %d rows, want %d", len(derived), len(paper))
	}
	for i := range paper {
		if derived[i].PropName != paper[i].PropName {
			t.Errorf("row %d: derived %s, paper %s", i, derived[i].PropName, paper[i].PropName)
		}
	}
}

func TestTable1LoadBearingColumnsMatchPaper(t *testing.T) {
	// The Fields (parsing depth), History, and Timeout-Actions columns are
	// unambiguous given the paper's prose; our derivation must match the
	// paper exactly on all of them.
	paper, derived := PaperTable1(), DerivedTable1(property.DefaultParams())
	for i := range paper {
		if derived[i].Fields != paper[i].Fields {
			t.Errorf("%s: Fields derived=%s paper=%s", paper[i].PropName, derived[i].Fields, paper[i].Fields)
		}
		if derived[i].History != paper[i].History {
			t.Errorf("%s: History derived=%v paper=%v", paper[i].PropName, derived[i].History, paper[i].History)
		}
	}
	// Timeout actions: identical set of rows (the three negative-
	// observation properties) — except dhcp-reply-within where the paper
	// also marks plain Timeouts (we classify the deadline purely as a
	// timeout action).
	for i := range paper {
		if derived[i].TOActs != paper[i].TOActs {
			t.Errorf("%s: TOActs derived=%v paper=%v", paper[i].PropName, derived[i].TOActs, paper[i].TOActs)
		}
	}
}

func TestTable1AgreementLevel(t *testing.T) {
	match, total, diffs := T1Agreement(property.DefaultParams())
	if total != 13*8 {
		t.Fatalf("total cells = %d, want %d", total, 13*8)
	}
	// The exact divergence set is documented in EXPERIMENTS.md; it must
	// not grow silently.
	const maxDiffs = 14
	if len(diffs) > maxDiffs {
		for _, d := range diffs {
			t.Logf("  %s", d)
		}
		t.Fatalf("diffs = %d, want <= %d (agreement %d/%d)", len(diffs), maxDiffs, match, total)
	}
	if match < total-maxDiffs {
		t.Fatalf("agreement %d/%d below documented floor", match, total)
	}
}

func TestTable1Deterministic(t *testing.T) {
	a := RenderTable1(property.DefaultParams(), true)
	b := RenderTable1(property.DefaultParams(), true)
	if a != b {
		t.Fatal("Table 1 rendering is not deterministic")
	}
	for _, want := range []string{"arp-known-not-forwarded", "wandering", "Agreement:"} {
		if !strings.Contains(a, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestTable2ProbedCellsMatchPaper(t *testing.T) {
	// Transcription of the paper's Table 2 boolean cells for the seven
	// paper columns (blank cells omitted — they are not probed).
	want := map[string]map[string]backend.Tri{
		"event-history": {
			"OpenState": backend.Yes, "FAST": backend.Yes, "POF and P4": backend.Yes,
			"SNAP": backend.Yes, "Varanus": backend.Yes, "Static Varanus": backend.Yes,
		},
		"related-events": {
			"POF and P4": backend.Yes, "SNAP": backend.Yes,
			"Varanus": backend.Yes, "Static Varanus": backend.Yes,
		},
		"negative-match": {
			"OpenState": backend.Yes, "FAST": backend.Yes, "POF and P4": backend.Yes,
			"SNAP": backend.Yes, "Varanus": backend.Yes, "Static Varanus": backend.Yes,
		},
		"rule-timeouts": {
			"OpenState": backend.Yes, "FAST": backend.No, "POF and P4": backend.Yes,
			"SNAP": backend.No, "Varanus": backend.Yes, "Static Varanus": backend.Yes,
		},
		"timeout-actions": {
			"OpenState": backend.No, "FAST": backend.No, "POF and P4": backend.No,
			"SNAP": backend.No, "Varanus": backend.Yes, "Static Varanus": backend.Yes,
		},
		"symmetric-match": {
			"OpenState": backend.Yes, "FAST": backend.Yes, "POF and P4": backend.Yes,
			"SNAP": backend.Yes, "Varanus": backend.Yes, "Static Varanus": backend.Yes,
		},
		"wandering-match": {
			"OpenState": backend.No, "FAST": backend.No,
			"Varanus": backend.Yes, "Static Varanus": backend.Yes,
		},
		"out-of-band": {
			"OpenState": backend.No, "FAST": backend.No, "POF and P4": backend.No,
			"SNAP": backend.No, "Varanus": backend.Yes, "Static Varanus": backend.No,
		},
	}
	tbl := BuildTable2()
	colIdx := map[string]int{}
	for i, c := range tbl.Columns {
		colIdx[c] = i
	}
	for _, row := range tbl.Boolean {
		expect, ok := want[row.Label]
		if !ok {
			continue // extension rows
		}
		for col, v := range expect {
			i, ok := colIdx[col]
			if !ok {
				t.Fatalf("missing column %s", col)
			}
			cell := row.Cells[i]
			if !cell.Probed {
				t.Errorf("%s/%s: cell not probed", row.Label, col)
			}
			if cell.Value != v {
				t.Errorf("%s/%s: probed %s, paper %s", row.Label, col, cell.Mark(), backend.Tri(v).Mark())
			}
		}
	}
}

func TestTable2BlankCellsPreserved(t *testing.T) {
	tbl := BuildTable2()
	colIdx := map[string]int{}
	for i, c := range tbl.Columns {
		colIdx[c] = i
	}
	// The paper leaves OpenFlow 1.3's stateful rows blank, and POF/P4 &
	// SNAP wandering match blank (target dependent).
	blank := []struct{ row, col string }{
		{"event-history", "OpenFlow 1.3"},
		{"symmetric-match", "OpenFlow 1.3"},
		{"wandering-match", "POF and P4"},
		{"wandering-match", "SNAP"},
		{"out-of-band", "OpenFlow 1.3"},
	}
	for _, bc := range blank {
		for _, row := range tbl.Boolean {
			if row.Label != bc.row {
				continue
			}
			cell := row.Cells[colIdx[bc.col]]
			if cell.Value != backend.Blank || cell.Probed {
				t.Errorf("%s/%s: want blank unprobed cell, got %q probed=%v",
					bc.row, bc.col, cell.Mark(), cell.Probed)
			}
		}
	}
}

func TestTable2IdealColumnAllYes(t *testing.T) {
	tbl := BuildTable2()
	ideal := -1
	for i, c := range tbl.Columns {
		if strings.HasPrefix(c, "Ideal") {
			ideal = i
		}
	}
	if ideal < 0 {
		t.Fatal("no Ideal column")
	}
	for _, row := range tbl.Boolean {
		if row.Cells[ideal].Value != backend.Yes {
			t.Errorf("Ideal column: row %s is %q, want yes", row.Label, row.Cells[ideal].Mark())
		}
	}
}

func TestRenderTable2(t *testing.T) {
	out := RenderTable2()
	for _, want := range []string{"Varanus", "Recursive learn", "timeout-actions", "yes*", "no*"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered Table 2 missing %q", want)
		}
	}
	if RenderTable2() != out {
		t.Fatal("Table 2 rendering is not deterministic")
	}
}
