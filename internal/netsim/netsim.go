// Package netsim wires dataplane switches, links, and protocol-aware
// hosts into deterministic single-clock network simulations — the
// substrate the examples and integration tests run scenarios on.
package netsim

import (
	"fmt"
	"time"

	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
	"switchmon/internal/sim"
)

// Network is a collection of switches and hosts sharing one scheduler.
type Network struct {
	sched    *sim.Scheduler
	switches map[string]*dataplane.Switch
	hosts    map[string]*Host
	// LinkLatency is applied to every host-switch and switch-switch hop.
	LinkLatency time.Duration
}

// New creates an empty network on the scheduler.
func New(sched *sim.Scheduler) *Network {
	return &Network{
		sched:    sched,
		switches: map[string]*dataplane.Switch{},
		hosts:    map[string]*Host{},
	}
}

// Scheduler returns the shared scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// AddSwitch creates a switch with the given table count. Switches are
// assigned datapath ids 1, 2, ... in creation order, so one collector can
// monitor the whole network with per-switch scoping (the switch.id field).
func (n *Network) AddSwitch(name string, tables int) *dataplane.Switch {
	if _, dup := n.switches[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate switch %q", name))
	}
	sw := dataplane.New(name, n.sched, tables)
	sw.SetDPID(uint64(len(n.switches) + 1))
	n.switches[name] = sw
	return sw
}

// Switch returns a switch by name, or nil.
func (n *Network) Switch(name string) *dataplane.Switch { return n.switches[name] }

// Host returns a host by name, or nil.
func (n *Network) HostByName(name string) *Host { return n.hosts[name] }

// ConnectSwitches links two switches port-to-port with the network's
// latency in both directions.
func (n *Network) ConnectSwitches(a *dataplane.Switch, ap dataplane.PortNo, b *dataplane.Switch, bp dataplane.PortNo) {
	lat := n.LinkLatency
	a.AddPort(ap, func(p *packet.Packet) {
		pk := p
		n.sched.After(lat, func() { b.Inject(bp, pk) })
	})
	b.AddPort(bp, func(p *packet.Packet) {
		pk := p
		n.sched.After(lat, func() { a.Inject(ap, pk) })
	})
}

// Host is an endpoint with a small protocol personality: it answers ARP
// requests for its address, answers ICMP echo requests, and optionally
// answers TCP SYNs (Serve). Every received packet is also handed to OnRX.
type Host struct {
	Name string
	MAC  packet.MAC
	IP   packet.IPv4

	net  *Network
	sw   *dataplane.Switch
	port dataplane.PortNo

	// ServePorts lists TCP ports the host answers with SYN|ACK.
	ServePorts map[uint16]bool
	// Quiet disables all automatic responses.
	Quiet bool
	// OnRX observes every delivered packet.
	OnRX func(*packet.Packet)

	rx []*packet.Packet
}

// AddHost attaches a host to a switch port.
func (n *Network) AddHost(name string, mac packet.MAC, ip packet.IPv4, sw *dataplane.Switch, port dataplane.PortNo) *Host {
	if _, dup := n.hosts[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate host %q", name))
	}
	h := &Host{
		Name: name, MAC: mac, IP: ip,
		net: n, sw: sw, port: port,
		ServePorts: map[uint16]bool{},
	}
	sw.AddPort(port, func(p *packet.Packet) {
		pk := p
		n.sched.After(n.LinkLatency, func() { h.receive(pk) })
	})
	n.hosts[name] = h
	return h
}

// Port returns the switch port the host hangs off.
func (h *Host) Port() dataplane.PortNo { return h.port }

// Send injects a packet from the host into its switch.
func (h *Host) Send(p *packet.Packet) {
	h.sw.Inject(h.port, p)
}

// Received returns everything delivered to the host so far.
func (h *Host) Received() []*packet.Packet { return h.rx }

// ReceivedCount reports the delivery count.
func (h *Host) ReceivedCount() int { return len(h.rx) }

// receive runs the host's protocol personality.
func (h *Host) receive(p *packet.Packet) {
	h.rx = append(h.rx, p)
	if h.OnRX != nil {
		h.OnRX(p)
	}
	if h.Quiet {
		return
	}
	switch {
	case p.ARP != nil && p.ARP.Op == packet.ARPRequest && p.ARP.TargetIP == h.IP:
		h.Send(packet.NewARPReply(h.MAC, h.IP, p.ARP.SenderMAC, p.ARP.SenderIP))
	case p.ICMP != nil && p.ICMP.Type == packet.ICMPEchoRequest && p.IPv4 != nil && p.IPv4.Dst == h.IP:
		reply := packet.NewICMPEcho(h.MAC, p.Eth.Src, h.IP, p.IPv4.Src, p.ICMP.ID, p.ICMP.Seq, true)
		h.Send(reply)
	case p.TCP != nil && p.IPv4 != nil && p.IPv4.Dst == h.IP &&
		p.TCP.Flags.Has(packet.FlagSYN) && !p.TCP.Flags.Has(packet.FlagACK) &&
		h.ServePorts[p.TCP.DstPort]:
		synack := packet.NewTCP(h.MAC, p.Eth.Src, h.IP, p.IPv4.Src,
			p.TCP.DstPort, p.TCP.SrcPort, packet.FlagSYN|packet.FlagACK, nil)
		synack.TCP.Ack = p.TCP.Seq + 1
		h.Send(synack)
	}
}

// Ping sends an ICMP echo request from the host toward dst (resolving the
// MAC is out of scope at this layer — the caller supplies it).
func (h *Host) Ping(dstMAC packet.MAC, dst packet.IPv4, id, seq uint16) {
	h.Send(packet.NewICMPEcho(h.MAC, dstMAC, h.IP, dst, id, seq, false))
}

// ARPResolve broadcasts an ARP request for dst.
func (h *Host) ARPResolve(dst packet.IPv4) {
	h.Send(packet.NewARPRequest(h.MAC, h.IP, dst))
}
