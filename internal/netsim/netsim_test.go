package netsim

import (
	"testing"
	"time"

	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
	"switchmon/internal/sim"
)

var (
	macA = packet.MustMAC("02:00:00:00:00:0a")
	macB = packet.MustMAC("02:00:00:00:00:0b")
	ipA  = packet.MustIPv4("10.0.0.1")
	ipB  = packet.MustIPv4("10.0.0.2")
)

// floodNet is a one-switch network that floods everything.
func floodNet(t *testing.T) (*Network, *Host, *Host) {
	t.Helper()
	sched := sim.NewScheduler()
	n := New(sched)
	n.LinkLatency = time.Millisecond
	sw := n.AddSwitch("s1", 1)
	sw.SetMissPolicy(dataplane.MissFlood)
	a := n.AddHost("a", macA, ipA, sw, 1)
	b := n.AddHost("b", macB, ipB, sw, 2)
	return n, a, b
}

func TestHostDelivery(t *testing.T) {
	n, a, b := floodNet(t)
	a.Send(packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil))
	n.Scheduler().RunFor(10 * time.Millisecond)
	if b.ReceivedCount() != 1 {
		t.Fatalf("b received %d packets", b.ReceivedCount())
	}
	if a.ReceivedCount() != 0 {
		t.Fatalf("a received its own flood copy")
	}
}

func TestARPResponder(t *testing.T) {
	n, a, b := floodNet(t)
	a.ARPResolve(ipB)
	n.Scheduler().RunFor(20 * time.Millisecond)
	if a.ReceivedCount() != 1 {
		t.Fatalf("a received %d packets, want 1 (ARP reply)", a.ReceivedCount())
	}
	reply := a.Received()[0]
	if reply.ARP == nil || reply.ARP.Op != packet.ARPReply || reply.ARP.SenderMAC != macB {
		t.Fatalf("reply = %s", reply.Summary())
	}
	_ = b
}

func TestICMPResponder(t *testing.T) {
	n, a, b := floodNet(t)
	a.Ping(macB, ipB, 7, 1)
	n.Scheduler().RunFor(20 * time.Millisecond)
	if a.ReceivedCount() != 1 {
		t.Fatalf("a received %d packets, want echo reply", a.ReceivedCount())
	}
	echo := a.Received()[0]
	if echo.ICMP == nil || echo.ICMP.Type != packet.ICMPEchoReply || echo.ICMP.ID != 7 {
		t.Fatalf("echo = %s", echo.Summary())
	}
	_ = b
}

func TestTCPServer(t *testing.T) {
	n, a, b := floodNet(t)
	b.ServePorts[80] = true
	a.Send(packet.NewTCP(macA, macB, ipA, ipB, 30000, 80, packet.FlagSYN, nil))
	n.Scheduler().RunFor(20 * time.Millisecond)
	if a.ReceivedCount() != 1 {
		t.Fatalf("a received %d, want SYN|ACK", a.ReceivedCount())
	}
	sa := a.Received()[0]
	if sa.TCP == nil || !sa.TCP.Flags.Has(packet.FlagSYN|packet.FlagACK) {
		t.Fatalf("got %s", sa.Summary())
	}
	// Non-served port: silence.
	a.Send(packet.NewTCP(macA, macB, ipA, ipB, 30001, 81, packet.FlagSYN, nil))
	n.Scheduler().RunFor(20 * time.Millisecond)
	if a.ReceivedCount() != 1 {
		t.Fatal("host answered a non-served port")
	}
}

func TestQuietHost(t *testing.T) {
	n, a, b := floodNet(t)
	b.Quiet = true
	a.ARPResolve(ipB)
	n.Scheduler().RunFor(20 * time.Millisecond)
	if a.ReceivedCount() != 0 {
		t.Fatal("quiet host responded")
	}
	if b.ReceivedCount() != 1 {
		t.Fatal("quiet host did not receive")
	}
}

func TestOnRXHook(t *testing.T) {
	n, a, b := floodNet(t)
	var hooked int
	b.OnRX = func(*packet.Packet) { hooked++ }
	a.Send(packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil))
	n.Scheduler().RunFor(10 * time.Millisecond)
	if hooked != 1 {
		t.Fatalf("OnRX fired %d times", hooked)
	}
}

func TestTwoSwitchTopology(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched)
	n.LinkLatency = time.Millisecond
	s1 := n.AddSwitch("s1", 1)
	s2 := n.AddSwitch("s2", 1)
	s1.SetMissPolicy(dataplane.MissFlood)
	s2.SetMissPolicy(dataplane.MissFlood)
	a := n.AddHost("a", macA, ipA, s1, 1)
	b := n.AddHost("b", macB, ipB, s2, 1)
	n.ConnectSwitches(s1, 2, s2, 2)
	a.Send(packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil))
	sched.RunFor(50 * time.Millisecond)
	if b.ReceivedCount() != 1 {
		t.Fatalf("cross-switch delivery failed: b has %d packets", b.ReceivedCount())
	}
	if n.Switch("s1") != s1 || n.Switch("nope") != nil {
		t.Fatal("Switch lookup broken")
	}
	if n.HostByName("a") != a || n.HostByName("nope") != nil {
		t.Fatal("Host lookup broken")
	}
}

func TestLatencyIsApplied(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched)
	n.LinkLatency = 10 * time.Millisecond
	sw := n.AddSwitch("s1", 1)
	sw.SetMissPolicy(dataplane.MissFlood)
	a := n.AddHost("a", macA, ipA, sw, 1)
	b := n.AddHost("b", macB, ipB, sw, 2)
	var deliveredAt time.Time
	b.OnRX = func(*packet.Packet) { deliveredAt = sched.Now() }
	a.Send(packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil))
	sched.RunFor(time.Second)
	if want := sim.Epoch.Add(10 * time.Millisecond); !deliveredAt.Equal(want) {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	_ = a
}

func TestDuplicateNamesPanic(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched)
	n.AddSwitch("s1", 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate switch did not panic")
			}
		}()
		n.AddSwitch("s1", 1)
	}()
	sw := n.AddSwitch("s2", 1)
	n.AddHost("h", macA, ipA, sw, 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate host did not panic")
		}
	}()
	n.AddHost("h", macB, ipB, sw, 2)
}
