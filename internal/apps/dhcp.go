package apps

import (
	"time"

	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// DHCPFaults selects DHCP-server misbehaviours.
type DHCPFaults struct {
	// NoReply ignores requests — violates dhcp-reply-within.
	NoReply bool
	// ReplyDelay postpones replies; beyond the property window this is a
	// dhcp-reply-within violation.
	ReplyDelay time.Duration
	// ReuseLeasedEvery hands out an actively leased address to every Nth
	// new client (0 = never) — violates dhcp-no-reuse.
	ReuseLeasedEvery int
}

// lease records one address assignment.
type lease struct {
	mac    packet.MAC
	expiry time.Time
}

// DHCPServer is a minimal DHCP server behind one switch port.
type DHCPServer struct {
	sw       *dataplane.Switch
	faults   DHCPFaults
	serverIP packet.IPv4
	mac      packet.MAC
	port     dataplane.PortNo
	pool     []packet.IPv4
	leases   map[packet.IPv4]lease
	byMAC    map[packet.MAC]packet.IPv4
	leaseFor time.Duration
	requests int
}

// NewDHCPServer attaches a DHCP server that answers requests punted from
// the switch. port is the switch port the server's replies exit on (the
// clients' side in the one-switch topology).
func NewDHCPServer(sw *dataplane.Switch, serverIP packet.IPv4, mac packet.MAC, port dataplane.PortNo,
	pool []packet.IPv4, leaseFor time.Duration, faults DHCPFaults) *DHCPServer {
	return &DHCPServer{
		sw: sw, faults: faults,
		serverIP: serverIP, mac: mac, port: port,
		pool:     append([]packet.IPv4(nil), pool...),
		leases:   map[packet.IPv4]lease{},
		byMAC:    map[packet.MAC]packet.IPv4{},
		leaseFor: leaseFor,
	}
}

// HandleDHCP processes one client message; the caller (a combined
// controller or test) routes punted DHCP traffic here.
func (s *DHCPServer) HandleDHCP(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) bool {
	d := p.DHCP
	if d == nil || d.Op != packet.DHCPBootRequest {
		return false
	}
	// The request itself is consumed by the server.
	sw.DropPacketAs(pid, inPort, p)
	switch d.MsgType {
	case packet.DHCPDiscover, packet.DHCPRequest:
		s.requests++
		if s.faults.NoReply {
			return true
		}
		reply := s.buildReply(d)
		if reply == nil {
			return true
		}
		if s.faults.ReplyDelay > 0 {
			sw.Scheduler().After(s.faults.ReplyDelay, func() { sw.SendPacket(s.port, reply) })
			return true
		}
		sw.SendPacket(s.port, reply)
	case packet.DHCPRelease:
		if ip, ok := s.byMAC[d.ClientMAC]; ok {
			delete(s.leases, ip)
			delete(s.byMAC, d.ClientMAC)
		}
	}
	return true
}

// buildReply allocates (or renews) a lease and builds the ACK packet.
func (s *DHCPServer) buildReply(d *packet.DHCPv4) *packet.Packet {
	now := s.sw.Scheduler().Now()
	ip, ok := s.allocate(d.ClientMAC, now)
	if !ok {
		return nil // pool exhausted: silence (clients will retry)
	}
	msgType := packet.DHCPAck
	if d.MsgType == packet.DHCPDiscover {
		msgType = packet.DHCPOffer
	}
	reply := &packet.DHCPv4{
		Op: packet.DHCPBootReply, Xid: d.Xid, MsgType: msgType,
		YourIP: ip, ClientMAC: d.ClientMAC, ServerIP: s.serverIP,
		ServerID: s.serverIP, LeaseSecs: uint32(s.leaseFor / time.Second),
	}
	return packet.NewDHCP(s.mac, d.ClientMAC, s.serverIP, packet.BroadcastIPv4, reply)
}

// allocate finds an address for the client.
func (s *DHCPServer) allocate(mac packet.MAC, now time.Time) (packet.IPv4, bool) {
	if ip, held := s.byMAC[mac]; held {
		s.leases[ip] = lease{mac: mac, expiry: now.Add(s.leaseFor)}
		return ip, true
	}
	// Fault: hand out an address some other client still holds.
	if s.faults.ReuseLeasedEvery > 0 && len(s.byMAC) > 0 && s.requests%s.faults.ReuseLeasedEvery == 0 {
		for ip, l := range s.leases {
			if l.mac != mac && now.Before(l.expiry) {
				s.byMAC[mac] = ip
				s.leases[ip] = lease{mac: mac, expiry: now.Add(s.leaseFor)}
				return ip, true
			}
		}
	}
	for _, ip := range s.pool {
		l, taken := s.leases[ip]
		if taken && now.Before(l.expiry) {
			continue
		}
		if taken {
			delete(s.byMAC, l.mac) // expired lease reclaimed
		}
		s.leases[ip] = lease{mac: mac, expiry: now.Add(s.leaseFor)}
		s.byMAC[mac] = ip
		return ip, true
	}
	return packet.IPv4{}, false
}

// ActiveLeases reports the number of unexpired leases.
func (s *DHCPServer) ActiveLeases() int {
	now := s.sw.Scheduler().Now()
	n := 0
	for _, l := range s.leases {
		if now.Before(l.expiry) {
			n++
		}
	}
	return n
}

// DHCPController routes punted packets to a DHCP server and floods the
// rest (the minimal topology glue for DHCP scenarios).
type DHCPController struct {
	Server *DHCPServer
}

// PacketIn implements dataplane.Controller.
func (c *DHCPController) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	if c.Server.HandleDHCP(sw, inPort, pid, p) {
		return
	}
	sw.FloodPacketAs(pid, inPort, p)
}
