package apps

import (
	"time"

	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// OffloadedFaults selects misbehaviours of the on-switch learning switch.
type OffloadedFaults struct {
	// WrongPort, when nonzero, installs every learned rule with this
	// literal output port instead of the ingress port — violates
	// lswitch-unicast with zero controller involvement.
	WrongPort dataplane.PortNo
}

// NewOffloadedLearningSwitch programs MAC learning entirely in the
// dataplane using the learn action — no controller, no packet-ins. This
// is the scenario the paper's introduction says makes controller-based
// monitoring infeasible: "switches may run stateful programs without
// controller interaction."
//
// Pipeline: table 0 learns a reverse rule (eth.dst = this packet's
// eth.src -> output this packet's ingress port) into table 1 and
// continues there; table 1 holds the learned rules plus a lowest-priority
// flood fallback.
func NewOffloadedLearningSwitch(sw *dataplane.Switch, idle time.Duration, faults OffloadedFaults) {
	spec := &dataplane.LearnSpec{
		Table:       1,
		Priority:    10,
		IdleTimeout: idle,
		Matches: []dataplane.LearnMatch{
			{DstField: packet.FieldEthDst, FromField: packet.FieldEthSrc},
		},
	}
	if faults.WrongPort != 0 {
		spec.Actions = []dataplane.Action{dataplane.Output(faults.WrongPort)}
	} else {
		spec.OutputFromInPort = true
	}
	sw.Table(0).Add(&dataplane.Rule{
		Priority: 1,
		Actions:  []dataplane.Action{dataplane.LearnAction(spec), dataplane.Goto(1)},
	})
	// Table-1 miss: flood (the unlearned-destination path).
	sw.Table(1).Add(&dataplane.Rule{
		Priority: 0,
		Actions:  []dataplane.Action{dataplane.Flood()},
	})
}
