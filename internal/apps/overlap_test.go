package apps

import (
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// twoServerController fans DHCP requests out to two servers — the
// misconfiguration scenario behind the dhcp-no-overlap property: both
// servers believe they own the same address pool.
type twoServerController struct {
	a, b *DHCPServer
}

func (c *twoServerController) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	if p.DHCP != nil && p.DHCP.Op == packet.DHCPBootRequest {
		// Broadcast: both servers hear (and answer) the request. Consume
		// once; each server emits its own reply.
		sw.DropPacketAs(pid, inPort, p)
		c.a.serveCopy(sw, p)
		c.b.serveCopy(sw, p)
		return
	}
	sw.FloodPacketAs(pid, inPort, p)
}

// serveCopy processes a broadcast request without re-consuming it.
func (s *DHCPServer) serveCopy(sw *dataplane.Switch, p *packet.Packet) {
	d := p.DHCP
	if d.MsgType != packet.DHCPDiscover && d.MsgType != packet.DHCPRequest {
		return
	}
	s.requests++
	if s.faults.NoReply {
		return
	}
	if reply := s.buildReply(d); reply != nil {
		sw.SendPacket(s.port, reply)
	}
}

func TestDHCPNoOverlapTwoServersDisjointPools(t *testing.T) {
	r := newRig(t, 4, "dhcp-no-overlap")
	serverA := NewDHCPServer(r.sw, packet.MustIPv4("10.0.0.2"), macB, 1,
		[]packet.IPv4{packet.MustIPv4("10.0.0.100")}, 300*time.Second, DHCPFaults{})
	serverB := NewDHCPServer(r.sw, packet.MustIPv4("10.0.0.3"), macC, 2,
		[]packet.IPv4{packet.MustIPv4("10.0.0.200")}, 300*time.Second, DHCPFaults{})
	r.sw.SetController(&twoServerController{a: serverA, b: serverB}, dataplane.MissController)

	r.inject(3, dhcpRequest(macA, 1))
	r.sched.RunFor(time.Second)
	// Two leases, two different addresses: no overlap.
	r.wantViolations(0)
}

func TestDHCPNoOverlapTwoServersSharedPoolDetected(t *testing.T) {
	r := newRig(t, 4, "dhcp-no-overlap")
	shared := []packet.IPv4{packet.MustIPv4("10.0.0.100")}
	serverA := NewDHCPServer(r.sw, packet.MustIPv4("10.0.0.2"), macB, 1, shared, 300*time.Second, DHCPFaults{})
	serverB := NewDHCPServer(r.sw, packet.MustIPv4("10.0.0.3"), macC, 2, shared, 300*time.Second, DHCPFaults{})
	r.sw.SetController(&twoServerController{a: serverA, b: serverB}, dataplane.MissController)

	// One client asks; both misconfigured servers lease 10.0.0.100 —
	// distinct server IDs, same address, overlapping validity.
	r.inject(3, dhcpRequest(macA, 1))
	r.sched.RunFor(time.Second)
	if r.countViolations("dhcp-no-overlap") == 0 {
		t.Fatal("overlapping leases from two servers not detected")
	}
}
