package apps

import (
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// NATFaults selects NAT misbehaviours.
type NATFaults struct {
	// MistranslateReverseEvery installs every Nth reverse mapping with a
	// wrong internal port (0 = never) — violates nat-reverse.
	MistranslateReverseEvery int
}

// natKey identifies a translation by the original 5-tuple-lite.
type natKey struct {
	srcIP   packet.IPv4
	srcPort uint16
	dstIP   packet.IPv4
	dstPort uint16
}

// natEntry records one allocation.
type natEntry struct {
	extPort uint16
}

// NAT is a controller-driven source NAT. On the first packet of an
// outbound flow it installs SetField rules for both directions, so
// rewriting happens on-switch and packet identity is preserved across the
// translation — exactly the scenario of the paper's Sec. 2.2 property.
type NAT struct {
	sw       *dataplane.Switch
	faults   NATFaults
	internal dataplane.PortNo
	external dataplane.PortNo
	publicIP packet.IPv4
	nextPort uint16
	flows    map[natKey]natEntry
	created  int
}

// NewNAT attaches a NAT to sw, translating outbound traffic to publicIP.
func NewNAT(sw *dataplane.Switch, internal, external dataplane.PortNo, publicIP packet.IPv4, faults NATFaults) *NAT {
	n := &NAT{
		sw: sw, faults: faults,
		internal: internal, external: external,
		publicIP: publicIP, nextPort: 60000,
		flows: map[natKey]natEntry{},
	}
	sw.SetController(n, dataplane.MissController)
	return n
}

// PacketIn allocates a translation for the flow's first packet, installs
// both direction rules, and resumes the packet through them.
func (n *NAT) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	flow, ok := packet.FlowOf(p)
	if !ok || inPort != n.internal {
		// Reverse traffic with no installed mapping, or non-flow traffic:
		// drop (a correct NAT refuses unsolicited inbound flows).
		sw.DropPacketAs(pid, inPort, p)
		return
	}
	key := natKey{flow.Src.Addr, flow.Src.Port, flow.Dst.Addr, flow.Dst.Port}
	entry, exists := n.flows[key]
	if !exists {
		n.nextPort++
		entry = natEntry{extPort: n.nextPort}
		n.flows[key] = entry
		n.created++
		n.installRules(key, entry)
	}
	// Resume the packet through the freshly installed rules by rewriting
	// here exactly as the forward rule would.
	out := p.Clone()
	out.IPv4.Src = n.publicIP
	setL4SrcPort(out, entry.extPort)
	sw.SendPacketAs(pid, inPort, []dataplane.PortNo{n.external}, out)
}

// installRules programs the switch for both directions of the flow.
func (n *NAT) installRules(key natKey, entry natEntry) {
	// Forward: internal 5-tuple -> rewrite source to public IP/port.
	n.sw.Table(0).Add(&dataplane.Rule{
		Priority: 100,
		Match: dataplane.Match{
			InPort: n.internal,
			Fields: []dataplane.FieldMatch{
				dataplane.FM(packet.FieldIPSrc, key.srcIP.Uint64()),
				dataplane.FM(packet.FieldSrcPort, uint64(key.srcPort)),
				dataplane.FM(packet.FieldIPDst, key.dstIP.Uint64()),
				dataplane.FM(packet.FieldDstPort, uint64(key.dstPort)),
			},
		},
		Actions: []dataplane.Action{
			dataplane.SetField(packet.FieldIPSrc, packet.Num(n.publicIP.Uint64())),
			dataplane.SetField(packet.FieldSrcPort, packet.Num(uint64(entry.extPort))),
			dataplane.Output(n.external),
		},
	})
	// Reverse: external -> public IP/port, rewrite destination back.
	reversePort := uint64(key.srcPort)
	if n.faults.MistranslateReverseEvery > 0 && n.created%n.faults.MistranslateReverseEvery == 0 {
		reversePort = uint64(key.srcPort) + 1 // the monitored bug
	}
	n.sw.Table(0).Add(&dataplane.Rule{
		Priority: 100,
		Match: dataplane.Match{
			InPort: n.external,
			Fields: []dataplane.FieldMatch{
				dataplane.FM(packet.FieldIPSrc, key.dstIP.Uint64()),
				dataplane.FM(packet.FieldSrcPort, uint64(key.dstPort)),
				dataplane.FM(packet.FieldIPDst, n.publicIP.Uint64()),
				dataplane.FM(packet.FieldDstPort, uint64(entry.extPort)),
			},
		},
		Actions: []dataplane.Action{
			dataplane.SetField(packet.FieldIPDst, packet.Num(key.srcIP.Uint64())),
			dataplane.SetField(packet.FieldDstPort, packet.Num(reversePort)),
			dataplane.Output(n.internal),
		},
	})
}

// Translations reports the number of allocated flows.
func (n *NAT) Translations() int { return len(n.flows) }

func setL4SrcPort(p *packet.Packet, port uint16) {
	switch {
	case p.TCP != nil:
		p.TCP.SrcPort = port
	case p.UDP != nil:
		p.UDP.SrcPort = port
	}
}
