package apps

import (
	"time"

	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// FirewallFaults selects stateful-firewall misbehaviours.
type FirewallFaults struct {
	// DropValidReturnEvery drops every Nth admissible return packet
	// (0 = never) — violates all three firewall properties.
	DropValidReturnEvery int
	// IgnoreClose keeps admitting return traffic after a FIN/RST — not a
	// violation of the catalogue properties (they only check wrongful
	// drops) but a realistic bug the monitor should stay silent on.
	IgnoreClose bool
	// ForgetConnections drops connection state immediately, so all return
	// traffic is refused.
	ForgetConnections bool
}

// connKey identifies a connection by its internal/external address pair.
type connKey struct {
	internal packet.IPv4
	external packet.IPv4
}

// Firewall is a controller-resident stateful firewall: traffic from the
// internal port opens pinholes for return traffic, with an idle timeout
// and connection-close tracking.
type Firewall struct {
	sw       *dataplane.Switch
	faults   FirewallFaults
	internal dataplane.PortNo
	external dataplane.PortNo
	timeout  time.Duration
	conns    map[connKey]time.Time // last outbound activity
	returns  int
}

// NewFirewall attaches a stateful firewall to sw.
func NewFirewall(sw *dataplane.Switch, internal, external dataplane.PortNo, timeout time.Duration, faults FirewallFaults) *Firewall {
	fw := &Firewall{
		sw: sw, faults: faults,
		internal: internal, external: external,
		timeout: timeout,
		conns:   map[connKey]time.Time{},
	}
	sw.SetController(fw, dataplane.MissController)
	return fw
}

// PacketIn applies the firewall policy to one packet.
func (fw *Firewall) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	if p.IPv4 == nil {
		sw.DropPacketAs(pid, inPort, p)
		return
	}
	now := sw.Scheduler().Now()
	switch inPort {
	case fw.internal:
		key := connKey{internal: p.IPv4.Src, external: p.IPv4.Dst}
		if !fw.faults.ForgetConnections {
			fw.conns[key] = now
		}
		if fw.closes(p) && !fw.faults.IgnoreClose {
			delete(fw.conns, key)
		}
		sw.SendPacketAs(pid, inPort, []dataplane.PortNo{fw.external}, p)
	case fw.external:
		key := connKey{internal: p.IPv4.Dst, external: p.IPv4.Src}
		last, open := fw.conns[key]
		admissible := open && now.Sub(last) <= fw.timeout
		if admissible {
			if fw.closes(p) && !fw.faults.IgnoreClose {
				delete(fw.conns, key)
				// The closing packet itself is still admitted.
			}
			fw.returns++
			if fw.faults.DropValidReturnEvery > 0 && fw.returns%fw.faults.DropValidReturnEvery == 0 {
				sw.DropPacketAs(pid, inPort, p) // the monitored bug
				return
			}
			sw.SendPacketAs(pid, inPort, []dataplane.PortNo{fw.internal}, p)
			return
		}
		sw.DropPacketAs(pid, inPort, p) // correct refusal
	default:
		sw.DropPacketAs(pid, inPort, p)
	}
}

// closes reports whether the packet ends its connection.
func (fw *Firewall) closes(p *packet.Packet) bool {
	return p.TCP != nil && (p.TCP.Flags.Has(packet.FlagFIN) || p.TCP.Flags.Has(packet.FlagRST))
}

// OpenConnections reports the tracked pinhole count.
func (fw *Firewall) OpenConnections() int { return len(fw.conns) }
