package apps

import (
	"time"

	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// ARPProxyFaults selects ARP-proxy misbehaviours.
type ARPProxyFaults struct {
	// NeverReply suppresses proxy replies for known addresses — violates
	// arp-proxy-reply (and dhcparp-preload when combined with DHCP).
	NeverReply bool
	// ReplyDelay postpones replies by this much; beyond the property's
	// window it is equivalent to not replying in time.
	ReplyDelay time.Duration
	// ForwardKnown floods requests for known addresses instead of
	// answering locally — violates arp-known-not-forwarded.
	ForwardKnown bool
	// DropUnknown drops requests for unknown addresses instead of
	// forwarding them — violates arp-unknown-forwarded.
	DropUnknown bool
	// ReplyToUnknown fabricates replies for addresses never learned —
	// violates dhcparp-no-direct-reply.
	ReplyToUnknown packet.MAC // zero MAC disables
}

// ARPProxy learns IP-to-MAC mappings from ARP traffic (and optionally
// DHCP leases) and answers requests for known addresses from its cache.
type ARPProxy struct {
	sw     *dataplane.Switch
	faults ARPProxyFaults
	cache  map[packet.IPv4]packet.MAC
	// PreloadFromDHCP mirrors DHCP ACKs into the cache (the Table 1
	// "DHCP + ARP Proxy" behaviour). Set before traffic flows.
	PreloadFromDHCP bool
}

// NewARPProxy attaches an ARP proxy to sw as its controller.
func NewARPProxy(sw *dataplane.Switch, faults ARPProxyFaults) *ARPProxy {
	ap := &ARPProxy{sw: sw, faults: faults, cache: map[packet.IPv4]packet.MAC{}}
	sw.SetController(ap, dataplane.MissController)
	return ap
}

// ObserveDHCP wires cache preloading from another app's DHCP ACK stream.
func (ap *ARPProxy) ObserveDHCP(sw *dataplane.Switch) {
	sw.Observe(func(e core.Event) {
		if !ap.PreloadFromDHCP || e.Kind != core.KindEgress || e.Dropped || e.Packet == nil {
			return
		}
		if d := e.Packet.DHCP; d != nil && d.MsgType == packet.DHCPAck {
			ap.cache[d.YourIP] = d.ClientMAC
		}
	})
}

// Learn records a mapping directly (tests and preloading).
func (ap *ARPProxy) Learn(ip packet.IPv4, mac packet.MAC) { ap.cache[ip] = mac }

// CacheSize reports the number of cached mappings.
func (ap *ARPProxy) CacheSize() int { return len(ap.cache) }

// PacketIn implements the proxy policy.
func (ap *ARPProxy) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	a := p.ARP
	if a == nil {
		// Non-ARP traffic just floods through this toy proxy.
		sw.FloodPacketAs(pid, inPort, p)
		return
	}
	// Every ARP packet teaches the sender's mapping.
	if !a.SenderIP.IsZero() {
		ap.cache[a.SenderIP] = a.SenderMAC
	}
	if a.Op != packet.ARPRequest {
		sw.FloodPacketAs(pid, inPort, p)
		return
	}
	mac, known := ap.cache[a.TargetIP]
	switch {
	case known && !ap.faults.ForwardKnown:
		sw.DropPacketAs(pid, inPort, p) // consumed: answered locally
		if ap.faults.NeverReply {
			return
		}
		reply := packet.NewARPReply(mac, a.TargetIP, a.SenderMAC, a.SenderIP)
		if ap.faults.ReplyDelay > 0 {
			in := inPort
			sw.Scheduler().After(ap.faults.ReplyDelay, func() { sw.SendPacket(in, reply) })
			return
		}
		sw.SendPacket(inPort, reply)
	case known: // ForwardKnown fault: flood instead of answering
		sw.FloodPacketAs(pid, inPort, p)
	case ap.faults.DropUnknown:
		sw.DropPacketAs(pid, inPort, p) // the monitored bug
	case ap.faults.ReplyToUnknown != packet.MAC{}:
		sw.DropPacketAs(pid, inPort, p)
		reply := packet.NewARPReply(ap.faults.ReplyToUnknown, a.TargetIP, a.SenderMAC, a.SenderIP)
		sw.SendPacket(inPort, reply)
	default:
		sw.FloodPacketAs(pid, inPort, p) // correct: forward unknown
	}
}
