package apps

import (
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// FTPFaults selects FTP-scenario misbehaviours.
type FTPFaults struct {
	// WrongDataPortEvery makes the simulated server open every Nth data
	// connection to announced_port+1 (0 = never) — violates
	// ftp-data-port.
	WrongDataPortEvery int
}

// FTPScenario wires a simple switch (flood-through) with a simulated FTP
// server behind serverPort: whenever a PORT command crosses the switch
// toward the server, the server "opens" an active-mode data connection
// back to the announced client address — the traffic pattern the
// ftp-data-port property (from FAST) checks.
type FTPScenario struct {
	sw         *dataplane.Switch
	faults     FTPFaults
	serverPort dataplane.PortNo
	clientPort dataplane.PortNo
	serverMAC  packet.MAC
	serverIP   packet.IPv4
	seen       int
}

// NewFTPScenario attaches the scenario to sw.
func NewFTPScenario(sw *dataplane.Switch, clientPort, serverPort dataplane.PortNo, serverMAC packet.MAC, serverIP packet.IPv4, faults FTPFaults) *FTPScenario {
	fs := &FTPScenario{
		sw: sw, faults: faults,
		serverPort: serverPort, clientPort: clientPort,
		serverMAC: serverMAC, serverIP: serverIP,
	}
	sw.SetController(fs, dataplane.MissController)
	return fs
}

// PacketIn forwards traffic between client and server sides and reacts to
// PORT commands by emitting the server's data-connection SYN.
func (fs *FTPScenario) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	out := fs.serverPort
	if inPort == fs.serverPort {
		out = fs.clientPort
	}
	sw.SendPacketAs(pid, inPort, []dataplane.PortNo{out}, p)

	if inPort != fs.clientPort || p.FTP == nil || p.FTP.Command != "PORT" || p.IPv4 == nil {
		return
	}
	fs.seen++
	dataPort := p.FTP.DataPort
	if fs.faults.WrongDataPortEvery > 0 && fs.seen%fs.faults.WrongDataPortEvery == 0 {
		dataPort++ // the monitored bug
	}
	clientMAC := p.Eth.Src
	syn := packet.NewTCP(fs.serverMAC, clientMAC, fs.serverIP, p.FTP.DataIP,
		20, dataPort, packet.FlagSYN, nil)
	// The server's SYN arrives on the server port and crosses the switch.
	sw.Scheduler().After(0, func() { sw.Inject(fs.serverPort, syn) })
}
