package apps

import (
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

var (
	macA = packet.MustMAC("02:00:00:00:00:0a")
	macB = packet.MustMAC("02:00:00:00:00:0b")
	macC = packet.MustMAC("02:00:00:00:00:0c")
	ipA  = packet.MustIPv4("10.0.0.1")
	ipB  = packet.MustIPv4("203.0.113.9")
	ipC  = packet.MustIPv4("10.0.0.2")
)

// rig is a switch with a monitor subscribed to its event stream.
type rig struct {
	t     *testing.T
	sched *sim.Scheduler
	sw    *dataplane.Switch
	mon   *core.Monitor
	viols []*core.Violation
}

// newRig builds a switch with nPorts sink ports and installs the named
// catalogue properties on an attached monitor.
func newRig(t *testing.T, nPorts int, propNames ...string) *rig {
	t.Helper()
	r := &rig{t: t, sched: sim.NewScheduler()}
	r.sw = dataplane.New("s1", r.sched, 2)
	for i := 1; i <= nPorts; i++ {
		r.sw.AddPort(dataplane.PortNo(i), nil)
	}
	r.mon = core.NewMonitor(r.sched, core.Config{
		Provenance:  core.ProvLimited,
		OnViolation: func(v *core.Violation) { r.viols = append(r.viols, v) },
	})
	pm := property.DefaultParams()
	for _, name := range propNames {
		p := property.CatalogByName(pm, name)
		if p == nil {
			t.Fatalf("unknown property %s", name)
		}
		if err := r.mon.AddProperty(p); err != nil {
			t.Fatal(err)
		}
	}
	r.sw.Observe(r.mon.HandleEvent)
	return r
}

func (r *rig) inject(port dataplane.PortNo, p *packet.Packet) {
	r.sw.Inject(port, p)
	r.sched.RunFor(0) // run any zero-delay follow-ups deterministically
}

func (r *rig) wantViolations(n int) {
	r.t.Helper()
	if len(r.viols) != n {
		for _, v := range r.viols {
			r.t.Logf("  got: %s", v)
		}
		r.t.Fatalf("violations = %d, want %d", len(r.viols), n)
	}
}

func (r *rig) countViolations(prop string) int {
	n := 0
	for _, v := range r.viols {
		if v.Property == prop {
			n++
		}
	}
	return n
}

// --- Learning switch ---------------------------------------------------------

func learnTraffic(r *rig) {
	// A at port 1 and B at port 2 exchange packets.
	ab := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, 0, nil)
	ba := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, 0, nil)
	for i := 0; i < 5; i++ {
		r.inject(1, ab)
		r.inject(2, ba)
	}
}

func TestLearningSwitchCorrect(t *testing.T) {
	r := newRig(t, 4, "lswitch-unicast")
	NewLearningSwitch(r.sw, LearningFaults{})
	learnTraffic(r)
	r.wantViolations(0)
}

func TestLearningSwitchWrongPortFaultDetected(t *testing.T) {
	r := newRig(t, 4, "lswitch-unicast")
	NewLearningSwitch(r.sw, LearningFaults{WrongPortEvery: 3})
	learnTraffic(r)
	if r.countViolations("lswitch-unicast") == 0 {
		t.Fatal("wrong-port fault not detected")
	}
}

func TestLearningSwitchLinkDownCorrect(t *testing.T) {
	r := newRig(t, 4, "lswitch-linkdown")
	ls := NewLearningSwitch(r.sw, LearningFaults{})
	learnTraffic(r)
	if ls.Learned() != 2 {
		t.Fatalf("learned = %d", ls.Learned())
	}
	r.sw.SetPortUp(1, false) // A's port goes down; correct app forgets A
	r.sw.SetPortUp(1, true)
	toA := packet.NewTCP(macC, macA, ipB, ipA, 9, 9, 0, nil)
	r.inject(2, toA) // flooded, not unicast: no violation
	r.wantViolations(0)
	if ls.Learned() != 2 { // macB plus freshly learned macC
		t.Fatalf("learned after link-down = %d", ls.Learned())
	}
}

func TestLearningSwitchLinkDownFaultDetected(t *testing.T) {
	r := newRig(t, 4, "lswitch-linkdown")
	NewLearningSwitch(r.sw, LearningFaults{KeepStateOnLinkDown: true})
	learnTraffic(r)
	r.sw.SetPortUp(1, false)
	r.sw.SetPortUp(1, true)
	toA := packet.NewTCP(macC, macA, ipB, ipA, 9, 9, 0, nil)
	r.inject(2, toA) // buggy app still unicasts to stale port
	if r.countViolations("lswitch-linkdown") == 0 {
		t.Fatal("stale-state-after-link-down fault not detected")
	}
}

// --- Stateful firewall --------------------------------------------------------

func fwTraffic(r *rig, n int) {
	ab := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
	ba := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil)
	for i := 0; i < n; i++ {
		r.inject(1, ab)
		r.inject(2, ba)
	}
}

func TestFirewallCorrect(t *testing.T) {
	r := newRig(t, 2, "firewall-basic", "firewall-timeout", "firewall-until-close")
	NewFirewall(r.sw, 1, 2, 60*time.Second, FirewallFaults{})
	fwTraffic(r, 10)
	// Unsolicited inbound is refused — correctly, silently.
	evil := packet.NewTCP(macB, macA, ipB, ipC, 80, 5, packet.FlagSYN, nil)
	r.inject(2, evil)
	r.wantViolations(0)
}

func TestFirewallDropFaultDetected(t *testing.T) {
	r := newRig(t, 2, "firewall-basic")
	NewFirewall(r.sw, 1, 2, 60*time.Second, FirewallFaults{DropValidReturnEvery: 4})
	fwTraffic(r, 8)
	if r.countViolations("firewall-basic") == 0 {
		t.Fatal("wrongful-drop fault not detected")
	}
}

func TestFirewallForgetsEverything(t *testing.T) {
	r := newRig(t, 2, "firewall-basic")
	NewFirewall(r.sw, 1, 2, 60*time.Second, FirewallFaults{ForgetConnections: true})
	fwTraffic(r, 3)
	if r.countViolations("firewall-basic") == 0 {
		t.Fatal("forget-connections fault not detected")
	}
}

func TestFirewallTimeoutRespectedByApp(t *testing.T) {
	// App and property agree on the window: a drop after idle expiry is
	// correct and must not alert.
	r := newRig(t, 2, "firewall-timeout")
	NewFirewall(r.sw, 1, 2, 60*time.Second, FirewallFaults{})
	ab := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
	ba := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil)
	r.inject(1, ab)
	r.sched.RunFor(61 * time.Second)
	r.inject(2, ba) // dropped by app (stale), ignored by monitor (expired)
	r.wantViolations(0)
}

func TestFirewallCloseRespected(t *testing.T) {
	r := newRig(t, 2, "firewall-until-close")
	NewFirewall(r.sw, 1, 2, 60*time.Second, FirewallFaults{})
	ab := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
	fin := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagFIN|packet.FlagACK, nil)
	ba := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil)
	r.inject(1, ab)
	r.inject(1, fin) // connection closed by A
	r.inject(2, ba)  // app drops — correct after close
	r.wantViolations(0)
}

// --- NAT -----------------------------------------------------------------------

func TestNATCorrect(t *testing.T) {
	r := newRig(t, 2, "nat-reverse")
	NewNAT(r.sw, 1, 2, packet.MustIPv4("198.51.100.1"), NATFaults{})
	out := packet.NewTCP(macA, macB, ipA, ipB, 5000, 80, packet.FlagSYN, nil)
	r.inject(1, out)
	// Return traffic to the allocated external port.
	ret := packet.NewTCP(macB, macA, ipB, packet.MustIPv4("198.51.100.1"), 80, 60001, packet.FlagACK, nil)
	r.inject(2, ret)
	r.wantViolations(0)
}

func TestNATMistranslationDetected(t *testing.T) {
	r := newRig(t, 2, "nat-reverse")
	NewNAT(r.sw, 1, 2, packet.MustIPv4("198.51.100.1"), NATFaults{MistranslateReverseEvery: 1})
	out := packet.NewTCP(macA, macB, ipA, ipB, 5000, 80, packet.FlagSYN, nil)
	r.inject(1, out)
	ret := packet.NewTCP(macB, macA, ipB, packet.MustIPv4("198.51.100.1"), 80, 60001, packet.FlagACK, nil)
	r.inject(2, ret)
	if r.countViolations("nat-reverse") != 1 {
		t.Fatalf("mistranslation not detected (%d violations)", r.countViolations("nat-reverse"))
	}
}

// --- ARP proxy -------------------------------------------------------------------

func TestARPProxyCorrect(t *testing.T) {
	r := newRig(t, 4, "arp-proxy-reply", "arp-known-not-forwarded", "arp-unknown-forwarded")
	NewARPProxy(r.sw, ARPProxyFaults{})
	// B answers A's first (unknown) request, teaching the proxy.
	r.inject(1, packet.NewARPRequest(macA, ipA, ipB)) // unknown: flooded
	r.inject(2, packet.NewARPReply(macB, ipB, macA, ipA))
	// Second request for B answered locally, within the window.
	r.inject(1, packet.NewARPRequest(macA, ipA, ipB))
	r.sched.RunFor(5 * time.Second)
	r.wantViolations(0)
}

func TestARPProxyNeverReplyDetected(t *testing.T) {
	r := newRig(t, 4, "arp-proxy-reply")
	NewARPProxy(r.sw, ARPProxyFaults{NeverReply: true})
	r.inject(1, packet.NewARPRequest(macA, ipA, ipB))
	r.inject(2, packet.NewARPReply(macB, ipB, macA, ipA))
	r.inject(1, packet.NewARPRequest(macA, ipA, ipB))
	r.sched.RunFor(5 * time.Second)
	if r.countViolations("arp-proxy-reply") == 0 {
		t.Fatal("never-reply fault not detected")
	}
}

func TestARPProxySlowReplyDetected(t *testing.T) {
	r := newRig(t, 4, "arp-proxy-reply")
	NewARPProxy(r.sw, ARPProxyFaults{ReplyDelay: 3 * time.Second}) // window is 2s
	r.inject(1, packet.NewARPRequest(macA, ipA, ipB))
	r.inject(2, packet.NewARPReply(macB, ipB, macA, ipA))
	r.inject(1, packet.NewARPRequest(macA, ipA, ipB))
	r.sched.RunFor(5 * time.Second)
	if r.countViolations("arp-proxy-reply") == 0 {
		t.Fatal("slow-reply fault not detected")
	}
}

func TestARPProxyForwardKnownDetected(t *testing.T) {
	r := newRig(t, 4, "arp-known-not-forwarded")
	NewARPProxy(r.sw, ARPProxyFaults{ForwardKnown: true})
	r.inject(2, packet.NewARPReply(macB, ipB, macA, ipA)) // teaches B
	r.inject(1, packet.NewARPRequest(macA, ipA, ipB))     // flooded anyway
	if r.countViolations("arp-known-not-forwarded") == 0 {
		t.Fatal("forward-known fault not detected")
	}
}

func TestARPProxyDropUnknownDetected(t *testing.T) {
	r := newRig(t, 4, "arp-unknown-forwarded")
	NewARPProxy(r.sw, ARPProxyFaults{DropUnknown: true})
	r.inject(1, packet.NewARPRequest(macA, ipA, packet.MustIPv4("10.9.9.9")))
	r.sched.RunFor(5 * time.Second)
	if r.countViolations("arp-unknown-forwarded") == 0 {
		t.Fatal("drop-unknown fault not detected")
	}
}

// --- DHCP ---------------------------------------------------------------------

func dhcpRequest(mac packet.MAC, xid uint32) *packet.Packet {
	return packet.NewDHCP(mac, packet.BroadcastMAC, packet.IPv4{}, packet.BroadcastIPv4,
		&packet.DHCPv4{Op: packet.DHCPBootRequest, Xid: xid, MsgType: packet.DHCPRequest, ClientMAC: mac})
}

func newDHCPRig(t *testing.T, faults DHCPFaults, props ...string) (*rig, *DHCPServer) {
	r := newRig(t, 4, props...)
	pool := []packet.IPv4{packet.MustIPv4("10.0.0.100"), packet.MustIPv4("10.0.0.101")}
	srv := NewDHCPServer(r.sw, packet.MustIPv4("10.0.0.2"), macB, 1, pool, 300*time.Second, faults)
	r.sw.SetController(&DHCPController{Server: srv}, dataplane.MissController)
	return r, srv
}

func TestDHCPCorrect(t *testing.T) {
	r, srv := newDHCPRig(t, DHCPFaults{}, "dhcp-reply-within", "dhcp-no-reuse", "dhcp-no-overlap")
	r.inject(1, dhcpRequest(macA, 1))
	r.inject(2, dhcpRequest(macC, 2))
	r.sched.RunFor(10 * time.Second)
	r.wantViolations(0)
	if srv.ActiveLeases() != 2 {
		t.Fatalf("leases = %d", srv.ActiveLeases())
	}
}

func TestDHCPNoReplyDetected(t *testing.T) {
	r, _ := newDHCPRig(t, DHCPFaults{NoReply: true}, "dhcp-reply-within")
	r.inject(1, dhcpRequest(macA, 1))
	r.sched.RunFor(5 * time.Second)
	if r.countViolations("dhcp-reply-within") == 0 {
		t.Fatal("no-reply fault not detected")
	}
}

func TestDHCPSlowReplyDetected(t *testing.T) {
	r, _ := newDHCPRig(t, DHCPFaults{ReplyDelay: 3 * time.Second}, "dhcp-reply-within")
	r.inject(1, dhcpRequest(macA, 1))
	r.sched.RunFor(5 * time.Second)
	if r.countViolations("dhcp-reply-within") == 0 {
		t.Fatal("slow-reply fault not detected")
	}
}

func TestDHCPReuseDetected(t *testing.T) {
	r, _ := newDHCPRig(t, DHCPFaults{ReuseLeasedEvery: 2}, "dhcp-no-reuse")
	r.inject(1, dhcpRequest(macA, 1))
	r.sched.RunFor(time.Second)
	r.inject(2, dhcpRequest(macC, 2)) // second request triggers reuse
	r.sched.RunFor(time.Second)
	if r.countViolations("dhcp-no-reuse") == 0 {
		t.Fatal("lease-reuse fault not detected")
	}
}

func TestDHCPRenewalByOwnerIsNotReuse(t *testing.T) {
	r, _ := newDHCPRig(t, DHCPFaults{}, "dhcp-no-reuse")
	r.inject(1, dhcpRequest(macA, 1))
	r.sched.RunFor(10 * time.Second)
	r.inject(1, dhcpRequest(macA, 2)) // renewal: same client, same address
	r.sched.RunFor(time.Second)
	r.wantViolations(0)
}

// --- Load balancer ---------------------------------------------------------------

func lbFlow(i int, flags packet.TCPFlags) *packet.Packet {
	src := packet.IPv4FromUint32(0x0a000100 + uint32(i))
	return packet.NewTCP(macA, macB, src, ipB, uint16(20000+i), 80, flags, nil)
}

func TestLBHashCorrect(t *testing.T) {
	r := newRig(t, 14, "lb-hashed")
	NewLoadBalancer(r.sw, LBHash, 1, 10, 4, LBFaults{})
	for i := 0; i < 10; i++ {
		r.inject(1, lbFlow(i, packet.FlagSYN))
		r.inject(1, lbFlow(i, packet.FlagACK))
	}
	r.wantViolations(0)
}

func TestLBHashWrongPortDetected(t *testing.T) {
	r := newRig(t, 14, "lb-hashed")
	NewLoadBalancer(r.sw, LBHash, 1, 10, 4, LBFaults{WrongHashEvery: 1})
	r.inject(1, lbFlow(0, packet.FlagSYN))
	if r.countViolations("lb-hashed") == 0 {
		t.Fatal("wrong-hash fault not detected")
	}
}

func TestLBRoundRobinCorrect(t *testing.T) {
	r := newRig(t, 14, "lb-round-robin")
	NewLoadBalancer(r.sw, LBRoundRobin, 1, 10, 4, LBFaults{})
	for i := 0; i < 8; i++ {
		r.inject(1, lbFlow(i, packet.FlagSYN))
	}
	r.wantViolations(0)
}

func TestLBRoundRobinRepeatDetected(t *testing.T) {
	r := newRig(t, 14, "lb-round-robin")
	NewLoadBalancer(r.sw, LBRoundRobin, 1, 10, 4, LBFaults{RepeatRREvery: 2})
	for i := 0; i < 4; i++ {
		r.inject(1, lbFlow(i, packet.FlagSYN))
	}
	if r.countViolations("lb-round-robin") == 0 {
		t.Fatal("round-robin repeat fault not detected")
	}
}

func TestLBStickyCorrect(t *testing.T) {
	r := newRig(t, 14, "lb-sticky")
	NewLoadBalancer(r.sw, LBHash, 1, 10, 4, LBFaults{})
	r.inject(1, lbFlow(0, packet.FlagSYN))
	for i := 0; i < 5; i++ {
		r.inject(1, lbFlow(0, packet.FlagACK))
	}
	r.wantViolations(0)
}

func TestLBStickyMoveDetected(t *testing.T) {
	r := newRig(t, 14, "lb-sticky")
	NewLoadBalancer(r.sw, LBHash, 1, 10, 4, LBFaults{MoveFlowEvery: 3})
	r.inject(1, lbFlow(0, packet.FlagSYN))
	for i := 0; i < 5; i++ {
		r.inject(1, lbFlow(0, packet.FlagACK))
	}
	if r.countViolations("lb-sticky") == 0 {
		t.Fatal("mid-flow move fault not detected")
	}
}

// --- Port knocking ----------------------------------------------------------------

func knock(src packet.IPv4, port uint16) *packet.Packet {
	return packet.NewUDP(macA, macB, src, ipB, 30000, port, nil)
}

func doorPacket(src packet.IPv4) *packet.Packet {
	return packet.NewTCP(macA, macB, src, ipB, 30001, 22, packet.FlagSYN, nil)
}

func TestKnockingCorrectSequenceOpens(t *testing.T) {
	r := newRig(t, 4, "knock-intervening", "knock-valid-sequence")
	NewPortKnocking(r.sw, []uint16{7001, 7002, 7003}, 22, 2, KnockFaults{})
	r.inject(1, knock(ipA, 7001))
	r.inject(1, knock(ipA, 7002))
	r.inject(1, knock(ipA, 7003))
	r.inject(1, doorPacket(ipA)) // opens
	r.wantViolations(0)
}

func TestKnockingWrongGuessBlocks(t *testing.T) {
	r := newRig(t, 4, "knock-intervening")
	NewPortKnocking(r.sw, []uint16{7001, 7002, 7003}, 22, 2, KnockFaults{})
	r.inject(1, knock(ipA, 7001))
	r.inject(1, knock(ipA, 9999)) // wrong: resets
	r.inject(1, knock(ipA, 7002))
	r.inject(1, knock(ipA, 7003))
	r.inject(1, doorPacket(ipA)) // correctly refused
	r.wantViolations(0)
}

func TestKnockingIgnoreWrongGuessDetected(t *testing.T) {
	r := newRig(t, 4, "knock-intervening")
	NewPortKnocking(r.sw, []uint16{7001, 7002, 7003}, 22, 2, KnockFaults{IgnoreWrongGuess: true})
	r.inject(1, knock(ipA, 7001))
	r.inject(1, knock(ipA, 9999))
	r.inject(1, knock(ipA, 7002))
	r.inject(1, knock(ipA, 7003))
	r.inject(1, doorPacket(ipA)) // buggy gate opens
	if r.countViolations("knock-intervening") == 0 {
		t.Fatal("ignore-wrong-guess fault not detected")
	}
}

func TestKnockingNeverOpenDetected(t *testing.T) {
	r := newRig(t, 4, "knock-valid-sequence")
	NewPortKnocking(r.sw, []uint16{7001, 7002, 7003}, 22, 2, KnockFaults{NeverOpen: true})
	r.inject(1, knock(ipA, 7001))
	r.inject(1, knock(ipA, 7002))
	r.inject(1, knock(ipA, 7003))
	r.inject(1, doorPacket(ipA)) // refused despite valid sequence
	if r.countViolations("knock-valid-sequence") == 0 {
		t.Fatal("never-open fault not detected")
	}
}

// --- FTP -----------------------------------------------------------------------

func TestFTPCorrect(t *testing.T) {
	r := newRig(t, 2, "ftp-data-port")
	NewFTPScenario(r.sw, 1, 2, macB, ipB, FTPFaults{})
	cmd := packet.NewFTPCommand(macA, macB, ipA, ipB, 41000, "PORT", "10,0,0,1,100,10")
	r.inject(1, cmd)
	r.sched.RunFor(time.Second)
	r.wantViolations(0)
}

func TestFTPWrongDataPortDetected(t *testing.T) {
	r := newRig(t, 2, "ftp-data-port")
	NewFTPScenario(r.sw, 1, 2, macB, ipB, FTPFaults{WrongDataPortEvery: 1})
	cmd := packet.NewFTPCommand(macA, macB, ipA, ipB, 41000, "PORT", "10,0,0,1,100,10")
	r.inject(1, cmd)
	r.sched.RunFor(time.Second)
	if r.countViolations("ftp-data-port") == 0 {
		t.Fatal("wrong-data-port fault not detected")
	}
}

// --- DHCP + ARP proxy (wandering match) ------------------------------------------

func TestDHCPARPPreloadCorrect(t *testing.T) {
	r := newRig(t, 4, "dhcparp-preload")
	pool := []packet.IPv4{packet.MustIPv4("10.0.0.100")}
	srv := NewDHCPServer(r.sw, packet.MustIPv4("10.0.0.2"), macB, 1, pool, 300*time.Second, DHCPFaults{})
	proxy := NewARPProxy(r.sw, ARPProxyFaults{})
	proxy.PreloadFromDHCP = true
	proxy.ObserveDHCP(r.sw)
	// Route DHCP to the server, everything else to the proxy.
	r.sw.SetController(&splitController{dhcp: srv, other: proxy}, dataplane.MissController)

	r.inject(1, dhcpRequest(macA, 1)) // macA leases 10.0.0.100
	r.sched.RunFor(time.Second)
	if proxy.CacheSize() == 0 {
		t.Fatal("cache not preloaded from lease")
	}
	// An ARP request for the leased address is answered from the cache.
	r.inject(2, packet.NewARPRequest(macC, ipC, packet.MustIPv4("10.0.0.100")))
	r.sched.RunFor(5 * time.Second)
	r.wantViolations(0)
}

func TestDHCPARPNoPreloadDetected(t *testing.T) {
	r := newRig(t, 4, "dhcparp-preload")
	pool := []packet.IPv4{packet.MustIPv4("10.0.0.100")}
	srv := NewDHCPServer(r.sw, packet.MustIPv4("10.0.0.2"), macB, 1, pool, 300*time.Second, DHCPFaults{})
	proxy := NewARPProxy(r.sw, ARPProxyFaults{})
	// Fault: PreloadFromDHCP left off — the cache never learns leases.
	r.sw.SetController(&splitController{dhcp: srv, other: proxy}, dataplane.MissController)

	r.inject(1, dhcpRequest(macA, 1))
	r.sched.RunFor(time.Second)
	r.inject(2, packet.NewARPRequest(macC, ipC, packet.MustIPv4("10.0.0.100")))
	r.sched.RunFor(5 * time.Second)
	if r.countViolations("dhcparp-preload") == 0 {
		t.Fatal("missing-preload fault not detected")
	}
}

func TestDHCPARPDirectReplyToUnknownDetected(t *testing.T) {
	r := newRig(t, 4, "dhcparp-no-direct-reply")
	proxy := NewARPProxy(r.sw, ARPProxyFaults{ReplyToUnknown: macC})
	_ = proxy
	r.inject(2, packet.NewARPRequest(macA, ipA, packet.MustIPv4("10.0.0.200")))
	r.sched.RunFor(time.Second)
	if r.countViolations("dhcparp-no-direct-reply") == 0 {
		t.Fatal("fabricated-reply fault not detected")
	}
}

func TestDHCPARPJustifiedReplyNotFlagged(t *testing.T) {
	r := newRig(t, 4, "dhcparp-no-direct-reply")
	NewARPProxy(r.sw, ARPProxyFaults{})
	// Prior genuine reply teaches the proxy; a later cached answer is
	// justified.
	r.inject(1, packet.NewARPRequest(macA, ipA, ipB)) // unknown: flooded
	r.inject(2, packet.NewARPReply(macB, ipB, macA, ipA))
	r.inject(1, packet.NewARPRequest(macA, ipA, ipB)) // answered from cache
	r.sched.RunFor(time.Second)
	r.wantViolations(0)
}

// splitController routes DHCP to the server and everything else to
// another controller.
type splitController struct {
	dhcp  *DHCPServer
	other dataplane.Controller
}

func (c *splitController) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	if c.dhcp.HandleDHCP(sw, inPort, pid, p) {
		return
	}
	c.other.PacketIn(sw, inPort, pid, p)
}
