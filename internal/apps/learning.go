// Package apps implements the network functions the paper's properties
// monitor: a learning switch, a stateful firewall, NAT, an ARP cache
// proxy, a DHCP server, an L4 load balancer, a port-knocking gate, and an
// FTP helper. Every app carries a Faults configuration that makes it
// misbehave in exactly the ways the corresponding catalogue properties
// detect — integration tests assert that violations are reported if and
// only if faults are injected.
package apps

import (
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// LearningFaults selects learning-switch misbehaviours.
type LearningFaults struct {
	// WrongPortEvery forwards every Nth known-destination packet out a
	// wrong port (0 = never) — violates lswitch-unicast.
	WrongPortEvery int
	// KeepStateOnLinkDown skips flushing learned entries when a link goes
	// down — violates lswitch-linkdown.
	KeepStateOnLinkDown bool
}

// LearningSwitch is a controller-resident MAC learning switch.
type LearningSwitch struct {
	sw     *dataplane.Switch
	faults LearningFaults
	table  map[packet.MAC]dataplane.PortNo
	seen   int
}

// NewLearningSwitch attaches a learning switch to sw (as its controller,
// with table-miss punting) and subscribes to link events.
func NewLearningSwitch(sw *dataplane.Switch, faults LearningFaults) *LearningSwitch {
	ls := &LearningSwitch{sw: sw, faults: faults, table: map[packet.MAC]dataplane.PortNo{}}
	sw.SetController(ls, dataplane.MissController)
	sw.Observe(func(e core.Event) {
		if e.Kind == core.KindOutOfBand && e.OOBKind == packet.OOBLinkDown {
			ls.onLinkDown(dataplane.PortNo(e.OOBPort))
		}
	})
	return ls
}

// PacketIn learns the source and forwards toward the destination.
func (ls *LearningSwitch) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	if p.Eth == nil {
		sw.DropPacketAs(pid, inPort, p)
		return
	}
	ls.table[p.Eth.Src] = inPort
	out, known := ls.table[p.Eth.Dst]
	if !known || p.Eth.Dst.IsBroadcast() {
		sw.FloodPacketAs(pid, inPort, p)
		return
	}
	ls.seen++
	if ls.faults.WrongPortEvery > 0 && ls.seen%ls.faults.WrongPortEvery == 0 {
		out = ls.wrongPort(out, inPort)
	}
	sw.SendPacketAs(pid, inPort, []dataplane.PortNo{out}, p)
}

// wrongPort picks a port that is neither correct nor the ingress.
func (ls *LearningSwitch) wrongPort(correct, inPort dataplane.PortNo) dataplane.PortNo {
	for cand := dataplane.PortNo(1); cand < 64; cand++ {
		if cand != correct && cand != inPort && ls.sw.PortUp(cand) {
			return cand
		}
	}
	return correct
}

func (ls *LearningSwitch) onLinkDown(port dataplane.PortNo) {
	if ls.faults.KeepStateOnLinkDown {
		return
	}
	for mac, p := range ls.table {
		if p == port {
			delete(ls.table, mac)
		}
	}
}

// Learned reports the current MAC table size.
func (ls *LearningSwitch) Learned() int { return len(ls.table) }
