package apps

import (
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// LBMode selects the backend assignment policy.
type LBMode uint8

// Load-balancer modes.
const (
	// LBHash assigns flows by symmetric flow hash (FAST's example).
	LBHash LBMode = iota
	// LBRoundRobin assigns new flows cyclically.
	LBRoundRobin
)

// LBFaults selects load-balancer misbehaviours.
type LBFaults struct {
	// WrongHashEvery sends every Nth new flow to hash+1 instead of the
	// hashed port (0 = never) — violates lb-hashed.
	WrongHashEvery int
	// RepeatRREvery assigns every Nth new flow the same port as its
	// predecessor (0 = never) — violates lb-round-robin.
	RepeatRREvery int
	// MoveFlowEvery reassigns an established flow on its Nth packet
	// (0 = never) — violates lb-sticky.
	MoveFlowEvery int
}

// LoadBalancer spreads flows arriving on the client port across backend
// ports, tracking assignments until the flow closes.
type LoadBalancer struct {
	sw         *dataplane.Switch
	mode       LBMode
	faults     LBFaults
	clientPort dataplane.PortNo
	firstPort  dataplane.PortNo
	poolSize   uint64
	assigned   map[uint64]dataplane.PortNo // symmetric flow hash -> backend
	clientsOf  map[uint64]dataplane.PortNo // symmetric flow hash -> client ingress
	rrNext     uint64
	lastPort   dataplane.PortNo
	newFlows   int
	pktCount   map[uint64]int
}

// NewLoadBalancer attaches a load balancer: flows from clientPort go to
// backends firstPort..firstPort+poolSize-1.
func NewLoadBalancer(sw *dataplane.Switch, mode LBMode, clientPort, firstPort dataplane.PortNo, poolSize uint64, faults LBFaults) *LoadBalancer {
	lb := &LoadBalancer{
		sw: sw, mode: mode, faults: faults,
		clientPort: clientPort, firstPort: firstPort, poolSize: poolSize,
		assigned:  map[uint64]dataplane.PortNo{},
		clientsOf: map[uint64]dataplane.PortNo{},
		pktCount:  map[uint64]int{},
	}
	sw.SetController(lb, dataplane.MissController)
	return lb
}

// flowHash computes the symmetric flow hash the lb-hashed property also
// uses (same packet.HashValues over the same four fields).
func flowHash(p *packet.Packet) (uint64, bool) {
	fields := []packet.Field{
		packet.FieldIPSrc, packet.FieldIPDst,
		packet.FieldSrcPort, packet.FieldDstPort,
	}
	vals := make([]packet.Value, 0, 4)
	for _, f := range fields {
		v, ok := p.Field(f)
		if !ok {
			return 0, false
		}
		vals = append(vals, v)
	}
	return packet.HashValues(vals), true
}

// PacketIn implements the balancing policy.
func (lb *LoadBalancer) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	h, ok := flowHash(p)
	if !ok {
		sw.DropPacketAs(pid, inPort, p)
		return
	}
	if inPort != lb.clientPort {
		// Return traffic from a backend: send to the flow's client port.
		out, known := lb.clientsOf[h]
		if !known {
			sw.DropPacketAs(pid, inPort, p)
			return
		}
		sw.SendPacketAs(pid, inPort, []dataplane.PortNo{out}, p)
		lb.noteClose(h, p)
		return
	}
	out, established := lb.assigned[h]
	if !established {
		out = lb.pickBackend(h)
		lb.assigned[h] = out
		lb.clientsOf[h] = inPort
		lb.lastPort = out
	} else {
		lb.pktCount[h]++
		if lb.faults.MoveFlowEvery > 0 && lb.pktCount[h]%lb.faults.MoveFlowEvery == 0 {
			out = lb.firstPort + dataplane.PortNo((uint64(out-lb.firstPort)+1)%lb.poolSize)
			lb.assigned[h] = out // the monitored bug: mid-flow move
		}
	}
	sw.SendPacketAs(pid, inPort, []dataplane.PortNo{out}, p)
	lb.noteClose(h, p)
}

// pickBackend applies the mode (and faults) to a new flow.
func (lb *LoadBalancer) pickBackend(h uint64) dataplane.PortNo {
	lb.newFlows++
	switch lb.mode {
	case LBRoundRobin:
		if lb.faults.RepeatRREvery > 0 && lb.newFlows > 1 && lb.newFlows%lb.faults.RepeatRREvery == 0 {
			return lb.lastPort // the monitored bug: no rotation
		}
		out := lb.firstPort + dataplane.PortNo(lb.rrNext%lb.poolSize)
		lb.rrNext++
		return out
	default: // LBHash
		out := lb.firstPort + dataplane.PortNo(h%lb.poolSize)
		if lb.faults.WrongHashEvery > 0 && lb.newFlows%lb.faults.WrongHashEvery == 0 {
			out = lb.firstPort + dataplane.PortNo((h+1)%lb.poolSize) // bug
		}
		return out
	}
}

// noteClose forgets the flow when it closes.
func (lb *LoadBalancer) noteClose(h uint64, p *packet.Packet) {
	if p.TCP != nil && (p.TCP.Flags.Has(packet.FlagFIN) || p.TCP.Flags.Has(packet.FlagRST)) {
		delete(lb.assigned, h)
		delete(lb.clientsOf, h)
		delete(lb.pktCount, h)
	}
}

// ActiveFlows reports the number of tracked flows.
func (lb *LoadBalancer) ActiveFlows() int { return len(lb.assigned) }
