package apps

import (
	"switchmon/internal/core"
	"switchmon/internal/dataplane"
	"switchmon/internal/packet"
)

// KnockFaults selects port-knocking-gate misbehaviours.
type KnockFaults struct {
	// IgnoreWrongGuess keeps sequence progress despite an intervening
	// wrong guess — violates knock-intervening.
	IgnoreWrongGuess bool
	// NeverOpen refuses the door even after a valid sequence — violates
	// knock-valid-sequence.
	NeverOpen bool
}

// PortKnocking is a gate: hosts that send the secret knock sequence (UDP
// dst ports, in order, with no intervening guesses) gain access to the
// protected door port; everyone else is refused.
type PortKnocking struct {
	sw       *dataplane.Switch
	faults   KnockFaults
	sequence []uint16
	door     uint16
	inside   dataplane.PortNo // where protected service lives
	progress map[packet.IPv4]int
	unlocked map[packet.IPv4]bool
}

// NewPortKnocking attaches the gate. Door traffic from unlocked hosts is
// forwarded to inside; everything else on the door port is dropped; knock
// packets are always silently consumed (dropped) as real knock daemons do.
func NewPortKnocking(sw *dataplane.Switch, sequence []uint16, door uint16, inside dataplane.PortNo, faults KnockFaults) *PortKnocking {
	pk := &PortKnocking{
		sw: sw, faults: faults,
		sequence: append([]uint16(nil), sequence...),
		door:     door, inside: inside,
		progress: map[packet.IPv4]int{},
		unlocked: map[packet.IPv4]bool{},
	}
	sw.SetController(pk, dataplane.MissController)
	return pk
}

// PacketIn implements the gate policy.
func (pk *PortKnocking) PacketIn(sw *dataplane.Switch, inPort dataplane.PortNo, pid core.PacketID, p *packet.Packet) {
	var dstPort uint16
	var src packet.IPv4
	switch {
	case p.IPv4 != nil && p.UDP != nil:
		src, dstPort = p.IPv4.Src, p.UDP.DstPort
	case p.IPv4 != nil && p.TCP != nil:
		src, dstPort = p.IPv4.Src, p.TCP.DstPort
	default:
		sw.DropPacketAs(pid, inPort, p)
		return
	}

	if dstPort == pk.door {
		if pk.unlocked[src] && !pk.faults.NeverOpen {
			sw.SendPacketAs(pid, inPort, []dataplane.PortNo{pk.inside}, p)
		} else {
			sw.DropPacketAs(pid, inPort, p)
		}
		return
	}

	// Knock processing: all non-door packets are consumed.
	step := pk.progress[src]
	switch {
	case step < len(pk.sequence) && dstPort == pk.sequence[step]:
		step++
		pk.progress[src] = step
		if step == len(pk.sequence) {
			pk.unlocked[src] = true
			pk.progress[src] = 0
		}
	case pk.faults.IgnoreWrongGuess:
		// Bug: wrong guesses do not reset progress.
	default:
		pk.progress[src] = 0 // correct: invalidate the sequence
	}
	sw.DropPacketAs(pid, inPort, p)
}

// Unlocked reports whether a host currently has door access.
func (pk *PortKnocking) Unlocked(ip packet.IPv4) bool { return pk.unlocked[ip] }
