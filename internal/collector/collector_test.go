package collector

import (
	"net"
	"sync"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/exporter"
	"switchmon/internal/wire"
)

// recSink records everything the collector feeds it.
type recSink struct {
	mu     sync.Mutex
	events []core.Event
	losses []lossRec
	ticks  []time.Time
}

type lossRec struct {
	reason core.UnsoundReason
	n      uint64
	detail string
}

func (s *recSink) SubmitBatch(evs []core.Event, release func()) error {
	s.mu.Lock()
	// Copy before release: borrowed events are invalid afterwards. The
	// shallow copy is enough here — assertions only read scalar fields.
	s.events = append(s.events, evs...)
	s.mu.Unlock()
	if release != nil {
		release()
	}
	return nil
}

func (s *recSink) Tick(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ticks = append(s.ticks, t)
}

func (s *recSink) MarkLoss(reason core.UnsoundReason, at time.Time, n uint64, detail string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.losses = append(s.losses, lossRec{reason, n, detail})
}

func (s *recSink) snapshot() ([]core.Event, []lossRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]core.Event(nil), s.events...), append([]lossRec(nil), s.losses...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func ev(sw uint64, n int) core.Event {
	return core.Event{Kind: core.KindArrival, Time: time.Unix(1700000000, int64(n)), SwitchID: sw, InPort: uint64(n)}
}

func startCollector(t *testing.T, sink Sink) *Collector {
	t.Helper()
	c, err := New(Config{Addr: "127.0.0.1:0"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	c.Serve()
	t.Cleanup(c.Close)
	return c
}

func TestTwoExportersMergeLosslessly(t *testing.T) {
	sink := &recSink{}
	c := startCollector(t, sink)
	var exps []*exporter.Exporter
	for dpid := uint64(1); dpid <= 2; dpid++ {
		x, err := exporter.New(exporter.Config{Addr: c.Addr().String(), DPID: dpid, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		x.Start()
		exps = append(exps, x)
	}
	const perSwitch = 50
	for i := 1; i <= perSwitch; i++ {
		exps[0].Publish(ev(0, i)) // SwitchID stamped from DPID 1
		exps[1].Publish(ev(0, i))
	}
	for _, x := range exps {
		x.Flush()
		if abandoned := x.Close(2 * time.Second); abandoned != 0 {
			t.Fatalf("abandoned %d", abandoned)
		}
	}
	waitFor(t, "all events applied", func() bool {
		evs, _ := sink.snapshot()
		return len(evs) == 2*perSwitch
	})
	evs, losses := sink.snapshot()
	if len(losses) != 0 {
		t.Fatalf("lossless run marked loss: %+v", losses)
	}
	// Per-switch order must be preserved and every event applied once.
	perDP := map[uint64][]uint64{}
	for _, e := range evs {
		perDP[e.SwitchID] = append(perDP[e.SwitchID], e.InPort)
	}
	for dpid, ports := range perDP {
		if len(ports) != perSwitch {
			t.Fatalf("dpid %d: %d events, want %d", dpid, len(ports), perSwitch)
		}
		for i, p := range ports {
			if p != uint64(i+1) {
				t.Fatalf("dpid %d: event %d has port %d", dpid, i, p)
			}
		}
	}
	st := c.Stats()
	if st.Datapaths != 2 || st.Events != 2*perSwitch || st.GapEvents != 0 || st.Deduped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes == 0 || st.Batches == 0 {
		t.Fatalf("byte/batch accounting missing: %+v", st)
	}
}

func TestSequenceGapMarksWireLoss(t *testing.T) {
	sink := &recSink{}
	c := startCollector(t, sink)
	x, err := exporter.New(exporter.Config{Addr: c.Addr().String(), DPID: 9, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()
	x.Publish(ev(0, 1))
	x.NoteLoss(4) // a fault injector ate four events on the link
	x.Publish(ev(0, 2))
	x.Flush()
	x.Close(2 * time.Second)
	waitFor(t, "events and loss mark", func() bool {
		evs, losses := sink.snapshot()
		return len(evs) == 2 && len(losses) == 1
	})
	_, losses := sink.snapshot()
	if losses[0].reason != core.UnsoundWireLoss || losses[0].n != 4 {
		t.Fatalf("loss = %+v", losses[0])
	}
	if st := c.Stats(); st.GapEvents != 4 {
		t.Fatalf("GapEvents = %d, want 4", st.GapEvents)
	}
}

// rawConn speaks the wire protocol directly, to script replays the real
// exporter would only produce under races.
type rawConn struct {
	t *testing.T
	c net.Conn
	r *wire.Reader
}

func dialRaw(t *testing.T, addr string, dpid, nextSeq uint64) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	rc := &rawConn{t: t, c: conn, r: wire.NewReader(conn)}
	if _, err := conn.Write(wire.AppendHello(nil, wire.Hello{DPID: dpid, NextSeq: nextSeq})); err != nil {
		t.Fatal(err)
	}
	f, err := rc.r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(wire.HelloAck); !ok {
		t.Fatalf("handshake answer = %#v", f)
	}
	return rc
}

func (rc *rawConn) sendBatch(firstSeq uint64, evs []core.Event) wire.Ack {
	rc.t.Helper()
	enc, err := wire.AppendBatch(nil, &wire.Batch{FirstSeq: firstSeq, Events: evs})
	if err != nil {
		rc.t.Fatal(err)
	}
	if _, err := rc.c.Write(enc); err != nil {
		rc.t.Fatal(err)
	}
	f, err := rc.r.Next()
	if err != nil {
		rc.t.Fatal(err)
	}
	a, ok := f.(wire.Ack)
	if !ok {
		rc.t.Fatalf("batch answer = %#v", f)
	}
	return a
}

func TestReplayedBatchesDeduplicate(t *testing.T) {
	sink := &recSink{}
	c := startCollector(t, sink)
	evs := []core.Event{ev(5, 1), ev(5, 2), ev(5, 3)}

	rc := dialRaw(t, c.Addr().String(), 5, 1)
	if a := rc.sendBatch(1, evs); a.AckSeq != 3 {
		t.Fatalf("ack = %d, want 3", a.AckSeq)
	}
	// Full replay (reconnect race): nothing new applied, same ack.
	if a := rc.sendBatch(1, evs); a.AckSeq != 3 {
		t.Fatalf("replay ack = %d, want 3", a.AckSeq)
	}
	// Partial overlap: only seq 4 is new.
	overlap := []core.Event{ev(5, 3), ev(5, 4)}
	if a := rc.sendBatch(3, overlap); a.AckSeq != 4 {
		t.Fatalf("overlap ack = %d, want 4", a.AckSeq)
	}
	applied, losses := sink.snapshot()
	if len(applied) != 4 {
		t.Fatalf("applied %d events, want 4 (dedup failed)", len(applied))
	}
	for i, e := range applied {
		if e.InPort != uint64(i+1) {
			t.Fatalf("event %d has port %d", i, e.InPort)
		}
	}
	if len(losses) != 0 {
		t.Fatalf("replay marked loss: %+v", losses)
	}
	if st := c.Stats(); st.Deduped != 4 {
		t.Fatalf("Deduped = %d, want 4", st.Deduped)
	}
}

func TestReconnectResumeAcrossConnections(t *testing.T) {
	sink := &recSink{}
	c := startCollector(t, sink)

	rc1 := dialRaw(t, c.Addr().String(), 8, 1)
	rc1.sendBatch(1, []core.Event{ev(8, 1), ev(8, 2)})
	rc1.c.Close()

	// The second connection's HelloAck must resume at what was applied.
	conn, err := net.Dial("tcp", c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.AppendHello(nil, wire.Hello{DPID: 8, NextSeq: 1})); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(conn)
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	ha := f.(wire.HelloAck)
	if ha.AckSeq != 2 {
		t.Fatalf("resume ack = %d, want 2", ha.AckSeq)
	}
	waitFor(t, "reconnect counted", func() bool { return c.Stats().Reconnects == 1 })
}

func TestHelloBeyondExpectationMarksLoss(t *testing.T) {
	sink := &recSink{}
	c := startCollector(t, sink)
	// A fresh datapath announcing NextSeq 11 has lost 1..10 for good
	// (shed before ever being sent).
	dialRaw(t, c.Addr().String(), 3, 11)
	waitFor(t, "hello gap mark", func() bool { _, l := sink.snapshot(); return len(l) == 1 })
	_, losses := sink.snapshot()
	if losses[0].reason != core.UnsoundWireLoss || losses[0].n != 10 {
		t.Fatalf("loss = %+v", losses[0])
	}
}
