package collector

import (
	"testing"

	"switchmon/internal/core"
	"switchmon/internal/obs"
)

// metricValue reads one labeled series out of a registry snapshot.
func metricValue(t *testing.T, reg *obs.Registry, name, dpid string) int64 {
	t.Helper()
	for _, f := range reg.Snapshot().Families {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			for _, l := range s.Labels {
				if l.Key == "dpid" && l.Value == dpid {
					return s.Value
				}
			}
		}
		t.Fatalf("metric %s has no series for dpid %s", name, dpid)
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}

// TestIngestHealthMetricsAfterGap drives one datapath through a replay
// and a sequence gap and asserts the per-datapath ingest health series —
// gap events, dedup drops, and the cumulative ack counter — all appear
// in /metrics with exact values.
func TestIngestHealthMetricsAfterGap(t *testing.T) {
	sink := &recSink{}
	reg := obs.NewRegistry()
	c, err := New(Config{Addr: "127.0.0.1:0", Metrics: reg}, sink)
	if err != nil {
		t.Fatal(err)
	}
	c.Serve()
	t.Cleanup(c.Close)

	rc := dialRaw(t, c.Addr().String(), 5, 1)
	rc.sendBatch(1, []core.Event{ev(5, 1), ev(5, 2)}) // seqs 1,2 applied
	rc.sendBatch(1, []core.Event{ev(5, 1), ev(5, 2)}) // full replay: 2 deduped
	// Batch jumping to seq 5 declares seqs 3,4 lost on the wire; the
	// cumulative ack then covers applied AND declared-lost sequence room.
	if a := rc.sendBatch(5, []core.Event{ev(5, 5)}); a.AckSeq != 5 {
		t.Fatalf("ack after gap = %d, want 5", a.AckSeq)
	}

	for _, want := range []struct {
		name  string
		value int64
	}{
		{"switchmon_collector_events_total", 3},
		{"switchmon_collector_gap_events_total", 2},
		{"switchmon_collector_deduped_events_total", 2},
		{"switchmon_collector_acked_events_total", 5},
	} {
		if got := metricValue(t, reg, want.name, "5"); got != want.value {
			t.Errorf("%s{dpid=\"5\"} = %d, want %d", want.name, got, want.value)
		}
	}

	// The sink saw the same story the metrics tell.
	applied, losses := sink.snapshot()
	if len(applied) != 3 || len(losses) != 1 || losses[0].n != 2 {
		t.Fatalf("sink: %d applied, losses %+v", len(applied), losses)
	}
}
