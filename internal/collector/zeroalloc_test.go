package collector

import (
	"bytes"
	"io"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/wire"
)

// TestCollectorIngestZeroAlloc is the zero-copy pipeline's regression
// gate: in steady state, moving one event from wire bytes into the
// sharded engine — pooled frame decode, sequence accounting, borrowed
// SubmitBatch, shard dispatch, property evaluation — performs zero heap
// allocations. It drives applyBatch directly (no TCP) so the
// measurement is deterministic, but the code under test is exactly the
// serveConn ingest path.
func TestCollectorIngestZeroAlloc(t *testing.T) {
	macA := packet.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB := packet.MAC{0x02, 0, 0, 0, 0, 0x0b}

	sm := core.NewShardedMonitor(4, core.Config{})
	defer sm.Close()
	fw := property.CatalogByName(property.DefaultParams(), "firewall-basic")
	if err := sm.AddProperty(fw); err != nil {
		t.Fatal(err)
	}

	// Establish a flow population, then build non-violating return
	// traffic: the steady state is stage-1 index probes on established
	// instances, the engine's allocation-free hot path.
	const flows = 256
	const perBatch = 128
	now := sim.Epoch
	var pid core.PacketID
	var returns []core.Event
	for f := 0; f < flows; f++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		dst := packet.IPv4FromUint32(0xcb007100 | uint32(f))
		open := packet.NewTCP(macA, macB, src, dst, uint16(10000+f), 80, packet.FlagSYN, nil)
		pid++
		sm.Submit(core.Event{Kind: core.KindArrival, Time: now, PacketID: pid, Packet: open, InPort: 1, SwitchID: 1})
		sm.Submit(core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: open, InPort: 1, OutPort: 2, SwitchID: 1})
		ret := packet.NewTCP(macB, macA, dst, src, 80, uint16(10000+f), packet.FlagACK, nil)
		pid++
		returns = append(returns, core.Event{Kind: core.KindEgress, Time: now, PacketID: pid,
			Packet: ret, InPort: 2, OutPort: 1, SwitchID: 1})
	}
	sm.Drain()

	// Pre-encode the replay stream: contiguous batches starting at seq 1.
	var stream []byte
	seq := uint64(1)
	for at := 0; at < len(returns); at += perBatch {
		end := at + perBatch
		if end > len(returns) {
			end = len(returns)
		}
		enc, err := wire.AppendBatch(nil, &wire.Batch{FirstSeq: seq, Events: returns[at:end]})
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, enc...)
		seq += uint64(end - at)
	}

	c, err := New(Config{Addr: "127.0.0.1:0"}, sm)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.mu.Lock()
	dp := c.dpStateFor(1)
	c.mu.Unlock()

	br := bytes.NewReader(stream)
	r := wire.NewPooledReader(br)
	recvNs := time.Now().UnixNano()
	runOnce := func() {
		if _, err := br.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		// Rewind the sequence space so the replayed batches aren't
		// deduplicated away (white-box: this is what a fresh stream from
		// the same encoded bytes would look like).
		c.mu.Lock()
		dp.nextSeq = 1
		c.mu.Unlock()
		for {
			f, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := c.applyBatch(1, dp, f.(*wire.Batch), 0, recvNs); !ok {
				t.Fatal("applyBatch refused the batch")
			}
		}
		// Let the shards drain, as they would between bursts on a real
		// link: that is what returns the borrowed arenas and batch
		// buffers to their pools, making the next burst recycle instead
		// of allocate.
		sm.Barrier()
	}

	// Warm every pool: reader buffer, batch arenas (enough for the max
	// number in flight), shard batch buffers, engine scratch.
	for i := 0; i < 5; i++ {
		runOnce()
	}
	sm.Drain()

	avg := testing.AllocsPerRun(10, runOnce)
	perEvent := avg / float64(len(returns))
	t.Logf("ingest: %.2f allocs/run over %d events (%.4f/event)", avg, len(returns), perEvent)
	if avg != 0 {
		t.Fatalf("collector ingest allocates %.2f/run (%.4f/event) in steady state, want 0", avg, perEvent)
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
