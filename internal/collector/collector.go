// Package collector is the central half of the distributed monitoring
// fabric: a TCP server that accepts many switch-side exporters
// (internal/exporter), demultiplexes their per-datapath sequence
// spaces, and feeds the merged observation stream into one stateful
// property engine — the NetSight-style aggregation point Sec. 3.2 of
// the paper sketches, with the paper's soundness discipline carried
// over the wire.
//
// Sequence accounting is the whole trick. Each datapath's events are
// numbered by its exporter; the collector tracks, per datapath, the
// next sequence it expects, across reconnects:
//
//   - A batch starting beyond the expectation is a gap: those events
//     are gone (shed at the exporter, or dropped upstream of it and
//     reported via NoteLoss), so the collector marks every installed
//     property unsound from here with reason wire-loss — verdicts stay
//     trustworthy-or-flagged, never silently wrong.
//   - A batch starting before the expectation is a replay (the exporter
//     resent its unacknowledged tail after a reconnect): the
//     already-applied prefix is skipped, making delivery effectively
//     exactly-once on top of the exporter's at-least-once.
//
// Acks are cumulative: after applying a batch, the collector
// acknowledges the highest contiguous sequence applied, which is what
// lets the exporter retire its retained batches.
package collector

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/obs"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/wire"
)

// Sink consumes the merged event stream. *core.ShardedMonitor satisfies
// it directly; tests substitute recorders.
type Sink interface {
	// SubmitBatch feeds a batch of events to the engine. When release is
	// non-nil the events are borrowed: the sink may read them (by
	// reference) until it calls release, after which the backing storage
	// is recycled. release must be called exactly once on every path,
	// including errors. A nil release means the events are owned by the
	// caller indefinitely and the sink may retain or copy them freely.
	SubmitBatch(evs []core.Event, release func()) error
	// Tick advances the engine's clocks to t (fires due timers).
	Tick(t time.Time)
	// MarkLoss records n lost events against every installed property.
	MarkLoss(reason core.UnsoundReason, at time.Time, n uint64, detail string)
}

// Config parameterizes a Collector.
type Config struct {
	// Addr is the TCP listen address (e.g. ":9190", "127.0.0.1:0").
	Addr string
	// Listener, when non-nil, overrides Addr (the collector takes
	// ownership and closes it).
	Listener net.Listener
	// ConnReadBuffer sizes each accepted TCP connection's kernel
	// receive buffer in bytes (default 1 MiB, negative leaves the OS
	// default). Exporters under backpressure release their whole send
	// window as one burst; when that burst overruns the (initially
	// small) autotuned receive buffer the kernel drops segments and the
	// exporter stalls for a ~200ms retransmission timeout per drop.
	ConnReadBuffer int
	// Metrics, when non-nil, receives per-datapath series.
	Metrics *obs.Registry
	// Tracer, when non-nil, enables tracing on this collector: the
	// FeatureTrace offer is accepted in handshakes, spans shipped in
	// traced batches are stamped collector_recv and fed to the engine,
	// and events from untraced (v1) exporters get spans originated here
	// — the deterministic sampler makes the same 1-in-N decision the
	// switch would have.
	Tracer *tracer.Tracer
}

// Stats is a snapshot of collector-wide counters.
type Stats struct {
	// Conns counts currently connected exporters.
	Conns int
	// Datapaths counts distinct datapath ids ever seen.
	Datapaths int
	// Batches, Events and Bytes count applied traffic.
	Batches uint64
	Events  uint64
	Bytes   uint64
	// Deduped counts replayed events skipped by sequence dedup.
	Deduped uint64
	// GapEvents counts events declared lost by sequence gaps.
	GapEvents uint64
	// Reconnects counts connections beyond the first per datapath.
	Reconnects uint64
	// PropertySetEpoch is the epoch of the last property set broadcast
	// to lifecycle-negotiated exporters (0 when none was ever pushed).
	PropertySetEpoch uint64
	// PropertySetAcks counts PropertySetAck frames received.
	PropertySetAcks uint64
	// FleetEpoch is the epoch of the last fleet config broadcast to
	// fleet-negotiated exporters (0 when none was ever pushed).
	FleetEpoch uint64
	// FleetConfigAcks counts FleetConfigAck frames received — each one
	// is an exporter reporting its re-route (drain fence included)
	// complete.
	FleetConfigAcks uint64
}

// dpState is one datapath's demux state, shared across its reconnects.
type dpState struct {
	nextSeq  uint64 // next event sequence expected
	acked    uint64 // highest cumulative ack issued (mirrors ackedC)
	conns    uint64 // connections ever accepted for this dpid
	batchesC *obs.Counter
	eventsC  *obs.Counter
	bytesC   *obs.Counter
	gapsC    *obs.Counter
	dedupC   *obs.Counter
	ackedC   *obs.Counter
	reconnC  *obs.Counter
	windowG  *obs.Gauge
}

// advanceAckedLocked folds the datapath's current cumulative ack into
// its monotone acked-events counter. Gap sequences count too: a
// cumulative ack covers them, and that is exactly the signal the
// counter exists to expose — acked minus applied equals lost. Caller
// holds mu.
func (dp *dpState) advanceAckedLocked() {
	if ack := dp.nextSeq - 1; ack > dp.acked {
		dp.ackedC.Add(ack - dp.acked)
		dp.acked = ack
	}
}

// connState is the collector's per-connection bookkeeping: the write
// mutex that serializes the read loop's acks against property-set
// broadcasts from other goroutines, and whether the connection
// negotiated FeatureLifecycle (set under mu after the handshake reply,
// so a broadcast never races the HelloAck).
type connState struct {
	wmu       sync.Mutex
	lifecycle bool
	fleet     bool
}

// Collector accepts exporter connections and feeds a Sink.
type Collector struct {
	cfg  Config
	sink Sink
	ln   net.Listener

	mu       sync.Mutex
	dps      map[uint64]*dpState
	conns    map[net.Conn]*connState
	lastTick time.Time
	stats    Stats
	closed   bool
	// propSet is the latest property set pushed to lifecycle exporters
	// (nil until the first BroadcastPropertySet); new lifecycle
	// connections receive it right after the handshake.
	propSet *wire.PropertySetUpdate
	// fleetCfg is the latest fleet config pushed to fleet-negotiated
	// exporters (nil until the first BroadcastFleetConfig); new fleet
	// connections receive it right after the handshake.
	fleetCfg *wire.FleetConfig

	connsG *obs.Gauge
	wg     sync.WaitGroup
}

// New builds a collector and binds its listener (so Addr is concrete
// before Serve), but does not accept until Serve.
func New(cfg Config, sink Sink) (*Collector, error) {
	if sink == nil {
		return nil, fmt.Errorf("collector: nil sink")
	}
	if cfg.ConnReadBuffer == 0 {
		cfg.ConnReadBuffer = 1 << 20
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("collector: %w", err)
		}
	}
	c := &Collector{
		cfg:   cfg,
		sink:  sink,
		ln:    ln,
		dps:   map[uint64]*dpState{},
		conns: map[net.Conn]*connState{},
	}
	if reg := cfg.Metrics; reg != nil {
		c.connsG = reg.Gauge("switchmon_collector_conns", "currently connected exporters")
	}
	return c, nil
}

// Addr is the listener's bound address (useful with ":0").
func (c *Collector) Addr() net.Addr { return c.ln.Addr() }

// Serve runs the accept loop in background goroutines and returns.
func (c *Collector) Serve() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := c.ln.Accept()
			if err != nil {
				return // listener closed
			}
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				conn.Close()
				return
			}
			cs := &connState{}
			c.conns[conn] = cs
			c.stats.Conns++
			c.connsG.Add(1)
			c.mu.Unlock()
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.serveConn(conn, cs)
				c.mu.Lock()
				delete(c.conns, conn)
				c.stats.Conns--
				c.connsG.Add(-1)
				c.mu.Unlock()
			}()
		}
	}()
}

// Close stops accepting, closes every live connection, and waits for
// the connection handlers to finish.
func (c *Collector) Close() {
	c.mu.Lock()
	c.closed = true
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	c.ln.Close()
	c.wg.Wait()
}

// Stats snapshots the collector's counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Datapaths = len(c.dps)
	return s
}

// dpStateFor gets or creates the demux state for a datapath. Caller
// holds mu.
func (c *Collector) dpStateFor(dpid uint64) *dpState {
	dp := c.dps[dpid]
	if dp != nil {
		return dp
	}
	dp = &dpState{nextSeq: 1}
	if reg := c.cfg.Metrics; reg != nil {
		l := obs.L("dpid", fmt.Sprintf("%d", dpid))
		dp.batchesC = reg.Counter("switchmon_collector_batches_total", "wire batches applied", l)
		dp.eventsC = reg.Counter("switchmon_collector_events_total", "events applied to the engine", l)
		dp.bytesC = reg.Counter("switchmon_collector_bytes_total", "frame bytes received", l)
		dp.gapsC = reg.Counter("switchmon_collector_gap_events_total", "events declared lost by sequence gaps", l)
		dp.dedupC = reg.Counter("switchmon_collector_deduped_events_total", "replayed events skipped by dedup", l)
		dp.ackedC = reg.Counter("switchmon_collector_acked_events_total", "cumulative event sequence acknowledged (applied plus declared-lost)", l)
		dp.reconnC = reg.Counter("switchmon_collector_reconnects_total", "connections beyond the first", l)
		dp.windowG = reg.Gauge("switchmon_collector_window_events", "events received but not yet acknowledged", l)
	}
	c.dps[dpid] = dp
	return dp
}

// countingReader counts bytes as the wire reader consumes them.
type countingReader struct {
	r io.Reader
	n uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += uint64(n)
	return n, err
}

// BroadcastPropertySet pushes a new property set to every connected
// lifecycle-negotiated exporter and retains it for future connections
// (each receives it right after its handshake). The daemons call this
// from the /properties admin path after every install/remove/replace,
// which is how the whole fabric converges on one property set.
func (c *Collector) BroadcastPropertySet(u *wire.PropertySetUpdate) error {
	buf, err := wire.AppendPropertySetUpdate(nil, u)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.propSet = u
	c.stats.PropertySetEpoch = u.Epoch
	type target struct {
		conn net.Conn
		cs   *connState
	}
	var targets []target
	for conn, cs := range c.conns {
		if cs.lifecycle {
			targets = append(targets, target{conn, cs})
		}
	}
	c.mu.Unlock()
	for _, t := range targets {
		t.cs.wmu.Lock()
		_, werr := t.conn.Write(buf)
		t.cs.wmu.Unlock()
		if werr != nil {
			// The connection is dying; its read loop will notice and the
			// exporter will pick the set up again on reconnect.
			t.conn.Close()
		}
	}
	return nil
}

// BroadcastFleetConfig pushes a fleet-membership config to every
// connected fleet-negotiated exporter and retains it for future
// connections (each receives it right after its handshake) — the
// membership/handoff protocol's fan-out: the aggregation tier posts a
// new member list to each collector, each collector pushes it down
// every exporter link, and every federated router re-derives the same
// ring and re-routes behind its drain fence.
func (c *Collector) BroadcastFleetConfig(fc *wire.FleetConfig) error {
	buf, err := wire.AppendFleetConfig(nil, fc)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.fleetCfg = fc
	c.stats.FleetEpoch = fc.Epoch
	type target struct {
		conn net.Conn
		cs   *connState
	}
	var targets []target
	for conn, cs := range c.conns {
		if cs.fleet {
			targets = append(targets, target{conn, cs})
		}
	}
	c.mu.Unlock()
	for _, t := range targets {
		t.cs.wmu.Lock()
		_, werr := t.conn.Write(buf)
		t.cs.wmu.Unlock()
		if werr != nil {
			// The connection is dying; its read loop will notice and the
			// exporter will pick the config up again on reconnect.
			t.conn.Close()
		}
	}
	return nil
}

// serveConn drives one exporter connection: handshake, then a
// batch/ack loop until the peer disconnects or misbehaves.
func (c *Collector) serveConn(conn net.Conn, cs *connState) {
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok && c.cfg.ConnReadBuffer > 0 {
		_ = tc.SetReadBuffer(c.cfg.ConnReadBuffer)
	}
	cr := &countingReader{r: conn}
	// Pooled decode: each batch's events live in a per-batch arena that
	// applyBatch lends to the sink and recycles on release — zero
	// steady-state allocation on the ingest path.
	r := wire.NewPooledReader(cr)
	f, err := r.Next()
	if err != nil {
		return
	}
	recvNs := time.Now().UnixNano() // the handshake's T2
	hello, ok := f.(wire.Hello)
	if !ok {
		return
	}
	// Negotiate: speak the lower of the two versions, intersect the
	// feature offers with what this collector supports.
	ver := hello.Version
	if ver == 0 {
		ver = 1 // decoded v1 hellos carry Version 1; 0 never reaches here
	}
	var features uint64
	if c.cfg.Tracer != nil {
		features = hello.Features & wire.FeatureTrace
	}
	features |= hello.Features & wire.FeatureLifecycle
	features |= hello.Features & wire.FeatureFleet

	c.mu.Lock()
	dp := c.dpStateFor(hello.DPID)
	dp.conns++
	if dp.conns > 1 {
		c.stats.Reconnects++
		dp.reconnC.Inc()
	}
	// An exporter resuming beyond our expectation has already given up
	// on the intervening events (shed, or consumed by NoteLoss): account
	// the gap now rather than waiting for its first batch.
	if hello.NextSeq > dp.nextSeq {
		c.markGapLocked(hello.DPID, dp, hello.NextSeq, time.Now())
	}
	dp.advanceAckedLocked()
	ack := dp.nextSeq - 1
	c.mu.Unlock()

	ha := wire.HelloAck{AckSeq: ack, Version: ver, Features: features,
		RecvNs: recvNs, SentNs: time.Now().UnixNano()}
	cs.wmu.Lock()
	_, err = conn.Write(wire.AppendHelloAck(nil, ha))
	cs.wmu.Unlock()
	if err != nil {
		return
	}
	if features&wire.FeatureLifecycle != 0 {
		// Mark the connection broadcast-eligible and push the current
		// property set (if one was ever published) so a reconnecting
		// exporter converges immediately instead of waiting for the next
		// change.
		c.mu.Lock()
		cs.lifecycle = true
		u := c.propSet
		c.mu.Unlock()
		if u != nil {
			buf, aerr := wire.AppendPropertySetUpdate(nil, u)
			if aerr == nil {
				cs.wmu.Lock()
				_, err = conn.Write(buf)
				cs.wmu.Unlock()
				if err != nil {
					return
				}
			}
		}
	}
	if features&wire.FeatureFleet != 0 {
		// Same convergence move for fleet membership: a reconnecting
		// federated exporter gets the current config immediately.
		c.mu.Lock()
		cs.fleet = true
		fc := c.fleetCfg
		c.mu.Unlock()
		if fc != nil {
			buf, aerr := wire.AppendFleetConfig(nil, fc)
			if aerr == nil {
				cs.wmu.Lock()
				_, err = conn.Write(buf)
				cs.wmu.Unlock()
				if err != nil {
					return
				}
			}
		}
	}

	var ackBuf []byte
	prevBytes := cr.n
	for {
		f, err := r.Next()
		if err != nil {
			return // disconnect (exporter will reconnect) or protocol error
		}
		recvNs := time.Now().UnixNano()
		var b *wire.Batch
		switch fr := f.(type) {
		case *wire.Batch:
			b = fr
		case wire.PropertySetAck:
			if features&wire.FeatureLifecycle == 0 {
				return // not negotiated: protocol error
			}
			c.mu.Lock()
			c.stats.PropertySetAcks++
			c.mu.Unlock()
			prevBytes = cr.n
			continue
		case wire.FleetConfigAck:
			if features&wire.FeatureFleet == 0 {
				return // not negotiated: protocol error
			}
			c.mu.Lock()
			c.stats.FleetConfigAcks++
			c.mu.Unlock()
			prevBytes = cr.n
			continue
		default:
			return // nothing else flows exporter→collector after the handshake
		}
		if b.FirstSeq == 0 {
			b.Release()
			return // sequences start at 1; 0 would corrupt the gap math
		}
		ackSeq, applied := c.applyBatch(hello.DPID, dp, b, cr.n-prevBytes, recvNs)
		prevBytes = cr.n
		if !applied {
			return
		}
		a := wire.Ack{AckSeq: ackSeq}
		if ver >= 2 {
			a.SentNs = time.Now().UnixNano() // an ongoing clock sample
		}
		ackBuf = wire.AppendAck(ackBuf[:0], a)
		cs.wmu.Lock()
		_, err = conn.Write(ackBuf)
		cs.wmu.Unlock()
		if err != nil {
			return
		}
	}
}

// applyBatch performs gap/replay accounting and feeds the batch's new
// events to the sink. It returns the cumulative ack for the datapath
// and whether the connection should continue.
func (c *Collector) applyBatch(dpid uint64, dp *dpState, b *wire.Batch, frameBytes uint64, recvNs int64) (uint64, bool) {
	c.mu.Lock()
	dp.windowG.Set(int64(len(b.Events)))

	if b.FirstSeq > dp.nextSeq {
		// Empty batches are sequence-advance markers: the exporter's way
		// of surfacing a loss at the tail of its stream, where no later
		// event batch would ever reveal the gap.
		at := time.Now()
		if len(b.Events) > 0 {
			at = b.Events[0].Time
		}
		c.markGapLocked(dpid, dp, b.FirstSeq, at)
	}
	skip := 0
	if b.FirstSeq < dp.nextSeq {
		skip = int(dp.nextSeq - b.FirstSeq)
		if skip > len(b.Events) {
			skip = len(b.Events)
		}
		c.stats.Deduped += uint64(skip)
		dp.dedupC.Add(uint64(skip))
	}
	evs := b.Events[skip:]
	dp.nextSeq += uint64(len(evs))
	dp.advanceAckedLocked()
	c.stats.Batches++
	c.stats.Events += uint64(len(evs))
	c.stats.Bytes += frameBytes
	dp.batchesC.Inc()
	dp.bytesC.Add(frameBytes)
	dp.eventsC.Add(uint64(len(evs)))
	ackSeq := dp.nextSeq - 1
	c.mu.Unlock()

	for i := range evs {
		e := &evs[i]
		if b.Traced {
			// Continue the span the switch started: align its remote
			// marks with the shipped clock estimate and stamp arrival.
			// Replayed copies of already-applied events sit in the
			// skipped prefix and never reach here, so no span is
			// stamped or finished twice.
			e.Trace.SetClock(b.ClockOffsetNs, b.ClockDispNs)
			e.Trace.StampAt(tracer.StageCollectorRecv, recvNs)
		} else if sp := c.cfg.Tracer.Sample(e.SwitchID, uint64(e.PacketID), uint8(e.Kind)); sp != nil {
			// Untraced (v1) exporter: originate the span here. The
			// sampler is deterministic, so the same 1-in-N events are
			// traced either way — just without switch-side stages.
			sp.StampAt(tracer.StageCollectorRecv, recvNs)
			e.Trace = sp
		}
	}
	// The sink borrows the batch's arena; it is recycled once the last
	// shard has dispatched. Read the tick time before handing the events
	// off — after SubmitBatch they may be released at any moment.
	var tickAt time.Time
	if len(evs) > 0 {
		tickAt = evs[len(evs)-1].Time
	}
	if err := c.sink.SubmitBatch(evs, b.ReleaseFunc()); err != nil {
		return 0, false // core.ErrClosed: the engine is shutting down
	}
	if len(evs) > 0 {
		c.tick(tickAt)
	}
	c.mu.Lock()
	dp.windowG.Set(0)
	c.mu.Unlock()
	return ackSeq, true
}

// markGapLocked declares [dp.nextSeq, upTo) lost for dpid and advances
// the expectation. Caller holds mu.
func (c *Collector) markGapLocked(dpid uint64, dp *dpState, upTo uint64, at time.Time) {
	lost := upTo - dp.nextSeq
	c.stats.GapEvents += lost
	dp.gapsC.Add(lost)
	detail := fmt.Sprintf("dpid %d lost events seq [%d,%d)", dpid, dp.nextSeq, upTo)
	dp.nextSeq = upTo
	// MarkLoss takes the engine's locks; drop ours around the call.
	c.mu.Unlock()
	c.sink.MarkLoss(core.UnsoundWireLoss, at, lost, detail)
	c.mu.Lock()
}

// tick advances the sink's clocks when event time moves forward. Events
// from different switches interleave, so the guard keeps the engine's
// virtual clock monotone even if one switch's stream lags another's.
func (c *Collector) tick(t time.Time) {
	c.mu.Lock()
	if !t.After(c.lastTick) {
		c.mu.Unlock()
		return
	}
	c.lastTick = t
	c.mu.Unlock()
	c.sink.Tick(t)
}
