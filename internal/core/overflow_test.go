package core

import (
	"testing"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// splitEvents builds n minimal arrival events with sequential PacketIDs
// (1..n) and millisecond spacing, for white-box queue inspection.
func splitEvents(n int) []Event {
	evs := make([]Event, n)
	now := sim.Epoch
	for i := range evs {
		now = now.Add(time.Millisecond)
		evs[i] = Event{Kind: KindArrival, Time: now, PacketID: PacketID(i + 1), InPort: 1}
	}
	return evs
}

// pendingIDs reads the split-mode queue's PacketIDs (white-box).
func pendingIDs(m *Monitor) []PacketID {
	ids := make([]PacketID, len(m.pending))
	for i := range m.pending {
		ids[i] = m.pending[i].PacketID
	}
	return ids
}

// SplitFlushLimit=1 is the degenerate cap: every event after the first
// displaces its predecessor (drop = limit/2 clamps up to 1), so of five
// events exactly four are dropped and only the newest survives to Flush.
func TestSplitOverflowLimitOne(t *testing.T) {
	m := NewMonitor(sim.NewScheduler(), Config{Mode: Split, SplitFlushLimit: 1})
	evs := splitEvents(5)
	for i := range evs {
		m.HandleEvent(evs[i])
	}
	if got := m.Stats().DroppedEvents; got != 4 {
		t.Fatalf("DroppedEvents = %d, want 4", got)
	}
	if ids := pendingIDs(m); len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("pending = %v, want [5] (only the newest event survives)", ids)
	}
	if n := m.Flush(); n != 1 {
		t.Fatalf("Flush = %d, want 1", n)
	}
	if m.PendingEvents() != 0 {
		t.Fatalf("pending after Flush = %d", m.PendingEvents())
	}
}

// Repeated overflow must shed strictly from the head: with limit 4 and
// ten events, overflows at e5 (drops e1,e2) and e9 (drops e5,e6) plus
// the fill pattern leave exactly e7..e10 queued, in arrival order.
func TestSplitOverflowFlushOrdering(t *testing.T) {
	m := NewMonitor(sim.NewScheduler(), Config{Mode: Split, SplitFlushLimit: 4})
	evs := splitEvents(10)
	for i := range evs {
		m.HandleEvent(evs[i])
	}
	// e1-e4 fill; e5 overflows (drop e1,e2 → [e3,e4,e5]); e6 appends;
	// e7 overflows (drop e3,e4 → [e5,e6,e7]); e8 appends; e9 overflows
	// (drop e5,e6 → [e7,e8,e9]); e10 appends. Dropped: 3 overflows x 2.
	if got := m.Stats().DroppedEvents; got != 6 {
		t.Fatalf("DroppedEvents = %d, want 6", got)
	}
	want := []PacketID{7, 8, 9, 10}
	ids := pendingIDs(m)
	if len(ids) != len(want) {
		t.Fatalf("pending = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("pending = %v, want %v (arrival order preserved)", ids, want)
		}
	}
}

// Stats.DroppedEvents and the switchmon_monitor_dropped_events_total
// counter are two views of the same ledger and must agree exactly.
func TestSplitOverflowStatsMatchObsCounter(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(sim.NewScheduler(), Config{Mode: Split, SplitFlushLimit: 8, Metrics: reg})
	evs := splitEvents(100)
	for i := range evs {
		m.HandleEvent(evs[i])
	}
	dropped := m.Stats().DroppedEvents
	if dropped == 0 {
		t.Fatal("no overflow occurred; the test is vacuous")
	}
	var counter uint64
	found := false
	for _, fam := range reg.Snapshot().Families {
		if fam.Name == "switchmon_monitor_dropped_events_total" {
			found = true
			for _, s := range fam.Series {
				counter += uint64(s.Value)
			}
		}
	}
	if !found {
		t.Fatal("switchmon_monitor_dropped_events_total not registered")
	}
	if counter != dropped {
		t.Fatalf("obs counter = %d, Stats.DroppedEvents = %d; they must match exactly", counter, dropped)
	}
}

// A split-mode overflow is a soundness event: every installed property
// must be marked unsound with the split-overflow reason, the per-mark
// event count must track the drops, and totals must reconcile.
func TestSplitOverflowMarksLedger(t *testing.T) {
	m := NewMonitor(sim.NewScheduler(), Config{Mode: Split, SplitFlushLimit: 1})
	for _, name := range []string{"firewall-basic", "nat-reverse"} {
		if err := m.AddProperty(property.CatalogByName(property.DefaultParams(), name)); err != nil {
			t.Fatal(err)
		}
	}
	evs := splitEvents(5)
	for i := range evs {
		m.HandleEvent(evs[i])
	}
	marks := m.Ledger().Snapshot()
	if len(marks) != 2 {
		t.Fatalf("ledger marks = %+v, want one per property", marks)
	}
	for _, mk := range marks {
		if mk.Reason != UnsoundSplitOverflow {
			t.Fatalf("mark %+v: reason %v, want %v", mk, mk.Reason, UnsoundSplitOverflow)
		}
		if mk.Events != 4 {
			t.Fatalf("mark %+v: Events = %d, want 4 (one per dropped event)", mk, mk.Events)
		}
	}
	if m.Ledger().Sound() {
		t.Fatal("ledger claims soundness after overflow")
	}
	if _, overflow := m.Ledger().lostEvents(); overflow != 4 {
		t.Fatalf("lostEvents overflow = %d, want 4 (counted once, not per property)", overflow)
	}
}
