package core

import (
	"sync/atomic"

	"switchmon/internal/obs"
)

// statsCell is the monitor's live counter storage: one atomic word per
// Stats field. The engine mutates it from its single driving goroutine;
// Stats() assembles a snapshot with atomic loads, so observers (a
// metrics scrape, an operator polling a split-mode worker) can read
// concurrently without a lock and without racing the hot path.
type statsCell struct {
	events        atomic.Uint64
	created       atomic.Uint64
	advanced      atomic.Uint64
	violations    atomic.Uint64
	discharged    atomic.Uint64
	expired       atomic.Uint64
	deduped       atomic.Uint64
	refreshed     atomic.Uint64
	suppressed    atomic.Uint64
	evicted       atomic.Uint64
	droppedEvents atomic.Uint64
}

// snapshot reads every counter atomically into a plain Stats value.
// Fields are loaded independently: the snapshot is per-counter atomic,
// not a cross-counter transaction — sufficient for monitoring, and the
// strongest guarantee available without stalling the event path.
func (c *statsCell) snapshot() Stats {
	return Stats{
		Events:        c.events.Load(),
		Created:       c.created.Load(),
		Advanced:      c.advanced.Load(),
		Violations:    c.violations.Load(),
		Discharged:    c.discharged.Load(),
		Expired:       c.expired.Load(),
		Deduped:       c.deduped.Load(),
		Refreshed:     c.refreshed.Load(),
		Suppressed:    c.suppressed.Load(),
		Evicted:       c.evicted.Load(),
		DroppedEvents: c.droppedEvents.Load(),
	}
}

// monitorMetrics holds the engine-level telemetry handles, resolved
// once at construction so the event path never touches the registry.
// All handles are nil-safe no-ops when telemetry is disabled, but the
// struct pointer itself is nil in that case and the hot path checks it
// once per event, keeping even the time.Now() reads off the free path.
type monitorMetrics struct {
	// events counts applied events; eventNs is the per-event apply
	// latency histogram (power-of-two nanosecond buckets).
	events  *obs.Counter
	eventNs *obs.Histogram
	// occupancy tracks the live instance population (the instance-table
	// occupancy the Sec. 3.3 scalability argument is about); pending
	// tracks the split-mode queue depth.
	occupancy *obs.Gauge
	pending   *obs.Gauge
	dropped   *obs.Counter
}

// propMetrics holds one property's counter handles. The series carry
// only the property label — deliberately not the monitor's extra
// labels — so every shard of a ShardedMonitor resolves to the same
// atomic counters and the registry's view is the cross-shard aggregate.
type propMetrics struct {
	// events counts events examined by this property's matcher. Under
	// sharding this is an execution-strategy metric (the router skips
	// deliveries a single engine would have scanned); the remaining
	// counters are routing-invariant and must agree with an inline run.
	events     *obs.Counter
	matches    *obs.Counter
	violations *obs.Counter
	timeouts   *obs.Counter
	discharged *obs.Counter
	expired    *obs.Counter
}

// newMonitorMetrics registers the engine-level series.
func newMonitorMetrics(reg *obs.Registry, labels []obs.Label) *monitorMetrics {
	return &monitorMetrics{
		events:    reg.Counter("switchmon_monitor_events_total", "Events applied to monitor state.", labels...),
		eventNs:   reg.Histogram("switchmon_monitor_event_ns", "Per-event monitor processing latency in nanoseconds.", labels...),
		occupancy: reg.Gauge("switchmon_monitor_instances", "Live (filed) monitor instances.", labels...),
		pending:   reg.Gauge("switchmon_monitor_pending_events", "Split-mode queued events awaiting Flush.", labels...),
		dropped:   reg.Counter("switchmon_monitor_dropped_events_total", "Split-mode queue overflow drops.", labels...),
	}
}

// shardedMetrics holds the ShardedMonitor router's telemetry handles:
// how events fan out, how much of the stream is pinned to the catch-all
// shard, and how full the handed-off batches run.
type shardedMetrics struct {
	// events counts Submit calls; deliveries counts per-shard copies
	// (>= events when routes fan out, < when events are unroutable).
	events     *obs.Counter
	deliveries *obs.Counter
	// catchall counts events delivered to shard 0 because at least one
	// property has no stable shard key; catchall/events is the router
	// catch-all ratio — the fraction of the stream that cannot
	// parallelize.
	catchall   *obs.Counter
	unroutable *obs.Counter
	// batchSize is the histogram of batch lengths handed to shard
	// goroutines (shardBatchSize-capped; Barrier flushes partials).
	batchSize *obs.Histogram
}

// newShardedMetrics registers the router-side series.
func newShardedMetrics(reg *obs.Registry, labels []obs.Label) *shardedMetrics {
	return &shardedMetrics{
		events:     reg.Counter("switchmon_router_events_total", "Events submitted to the sharded router.", labels...),
		deliveries: reg.Counter("switchmon_router_deliveries_total", "Per-shard event deliveries (fan-out included).", labels...),
		catchall:   reg.Counter("switchmon_router_catchall_events_total", "Events pinned to the catch-all shard by an unshardable property.", labels...),
		unroutable: reg.Counter("switchmon_router_unroutable_events_total", "Events no property could act on, dropped at the router.", labels...),
		batchSize:  reg.Histogram("switchmon_shard_batch_events", "Events per batch handed to a shard goroutine.", labels...),
	}
}

// newPropMetrics registers one property's counter series.
func newPropMetrics(reg *obs.Registry, name string) propMetrics {
	l := obs.L("property", name)
	return propMetrics{
		events:     reg.Counter("switchmon_property_events_total", "Events examined by the property's matcher.", l),
		matches:    reg.Counter("switchmon_property_matches_total", "Pattern matches that created or advanced an instance.", l),
		violations: reg.Counter("switchmon_property_violations_total", "Completed violation patterns.", l),
		timeouts:   reg.Counter("switchmon_property_timeouts_total", "Deadline firings: negative-observation advances plus window expiries.", l),
		discharged: reg.Counter("switchmon_property_discharged_total", "Instances discharged by guards or awaited events.", l),
		expired:    reg.Counter("switchmon_property_expired_total", "Instances whose positive-stage window lapsed.", l),
	}
}
