package core

// State-cost accounting glue: the per-instance byte estimate and flow
// key the statesize hooks in monitor.go charge, and the StateReport
// snapshots both engines expose behind /state. The tracker itself lives
// in internal/obs/statesize; this file is the part that knows what an
// instance is.

import "switchmon/internal/obs/statesize"

const (
	// instanceBaseBytes approximates an instance's fixed overhead: the
	// struct itself plus the bindings map header and bucket/index map
	// entries it occupies while filed. A calibration constant, not a
	// measurement — comparable across properties, stable across runs.
	instanceBaseBytes = 256
	// Per-element costs of an instance's variable-size parts: one
	// bindings map entry (key + value + bucket overhead), one PacketID
	// slot, one index key, one provenance record (strings dominate).
	bindEntryBytes  = 48
	packetSlotBytes = 8
	idxKeyBytes     = 8
	provRecordBytes = 96
)

// approxInstanceBytes estimates the resident cost of a filed instance.
// Called once per filing (off the dedup fast path); remove credits back
// exactly what was charged, via instance.acctBytes.
func approxInstanceBytes(inst *instance) int64 {
	n := int64(instanceBaseBytes)
	n += int64(len(inst.binds)) * bindEntryBytes
	n += int64(cap(inst.packets)) * packetSlotBytes
	n += int64(cap(inst.idxKeys)) * idxKeyBytes
	n += int64(len(inst.history)) * provRecordBytes
	return n
}

// flowKey hashes an instance's bindings into the key the heavy-hitter
// sketch attributes state to. It is the bindings half of compiledProp's
// signature — the same per-binding FNV-1a + mix64 terms, summed for
// order invariance — but with no stage tag, so one flow keeps one key
// as its instances advance stages and its filings aggregate instead of
// splintering per stage.
func flowKey(env bindings) uint64 {
	var sum uint64
	for v, val := range env {
		h := fnvString(fnvOffset, string(v))
		h = fnvByte(h, '=')
		h = fnvValue(h, val)
		sum += mix64(h)
	}
	if sum == 0 {
		sum = 1
	}
	return sum
}

// StateReport snapshots the monitor's state-cost accounting and
// cross-references each property against quarantine and the soundness
// ledger. Accounting fields are assembled from atomic loads, so the
// report may be taken from any goroutine; with accounting disabled it
// is empty.
func (m *Monitor) StateReport() statesize.Report {
	r := m.state.Report()
	annotateReport(&r, m.quarantined, m.ledger)
	return r
}

// annotateReport fills the cross-references the tracker cannot know:
// the engine's quarantine mask (matched by slot, which with live
// install/remove is no longer the report position), the ledger's
// first-mark-wins unsound records, and each property's install record
// (epoch, tenant fallback).
func annotateReport(r *statesize.Report, quarMask uint64, led *Ledger) {
	var marks map[string]UnsoundMark
	for _, um := range led.Snapshot() {
		if marks == nil {
			marks = make(map[string]UnsoundMark)
		}
		marks[um.Property] = um
	}
	var installs map[string]InstallRecord
	for _, ir := range led.InstallSnapshot() {
		if installs == nil {
			installs = make(map[string]InstallRecord)
		}
		installs[ir.Property] = ir
	}
	for i := range r.Properties {
		p := &r.Properties[i]
		if p.Slot < maxShardedProperties && quarMask&(uint64(1)<<uint(p.Slot)) != 0 {
			p.Quarantined = true
		}
		if um, ok := marks[p.Property]; ok {
			p.Unsound = um
		}
		if ir, ok := installs[p.Property]; ok {
			p.InstallEpoch = ir.Epoch
			if p.Tenant == "" {
				p.Tenant = ir.Tenant
			}
		}
	}
}
