package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// genValues converts fuzz input into a value slice mixing numbers and
// strings.
func genValues(nums []uint64, strs []string) []packet.Value {
	var vals []packet.Value
	for _, n := range nums {
		vals = append(vals, packet.Num(n))
	}
	for _, s := range strs {
		vals = append(vals, packet.Str(s))
	}
	return vals
}

// Property: hashValues is collision-free in practice — equal value slices
// hash equal, and randomly sampled distinct slices hash distinct (a 64-bit
// FNV-1a collision among quick.Check's samples would be a type-tagging
// bug, not bad luck). The instance indexes and dedup signatures depend on
// this.
func TestHashValuesCollisionFree(t *testing.T) {
	f := func(n1 []uint64, s1 []string, n2 []uint64, s2 []string) bool {
		a, b := genValues(n1, s1), genValues(n2, s2)
		ha, hb := hashValues(a), hashValues(b)
		if reflect.DeepEqual(a, b) {
			return ha == hb
		}
		return ha != hb
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Adversarial boundary cases for the hash's framing: value sequences whose
// byte streams would coincide without the kind and length tags.
func TestHashValuesDelimiterSafety(t *testing.T) {
	cases := [][2][]packet.Value{
		{{packet.Str("a|b")}, {packet.Str("a"), packet.Str("b")}},
		{{packet.Str("n1")}, {packet.Num(1)}},
		{{packet.Str("")}, {}},
		{{packet.Str("s1:x")}, {packet.Str("s1"), packet.Str("x")}},
		{{packet.Num(0)}, {}},
		{{packet.Str("3:abc")}, {packet.Str("3"), packet.Str("abc")}},
		{{packet.Str("ab"), packet.Str("c")}, {packet.Str("a"), packet.Str("bc")}},
	}
	for _, c := range cases {
		if hashValues(c[0]) == hashValues(c[1]) {
			t.Errorf("collision: %v vs %v -> %#x", c[0], c[1], hashValues(c[0]))
		}
	}
}

// Regression: the order-invariant signature sums per-entry hashes, and
// raw FNV terms cancel under summation on correlated inputs — flows
// (10.0.0.f, 203.0.0.f) collapsed to a quarter of their key space before
// the per-entry mix64 finalizer. Every flow in an E8-shaped range must
// get a distinct signature (and a distinct route hash: same algebra).
func TestSignatureCorrelatedBindingsDistinct(t *testing.T) {
	p := property.CatalogByName(property.DefaultParams(), "firewall-basic")
	cp, err := compile(p)
	if err != nil {
		t.Fatal(err)
	}
	pk := []PacketID{1, 0}
	sigs := make(map[uint64]int, 8192)
	routes := make(map[uint64]int, 8192)
	for f := 0; f < 8192; f++ {
		env := bindings{"A": packet.Num(uint64(0x0a000000 + f)), "B": packet.Num(uint64(0xcb000000 + f))}
		sig := cp.signature(1, env, pk)
		if prev, dup := sigs[sig]; dup {
			t.Fatalf("flows %d and %d share signature %#x", prev, f, sig)
		}
		sigs[sig] = f
		var sum uint64
		for _, val := range env {
			sum += mix64(fnvValue(fnvOffset, val))
		}
		if prev, dup := routes[sum]; dup {
			t.Fatalf("flows %d and %d share route hash %#x", prev, f, sum)
		}
		routes[sum] = f
	}
}

// Property: instance signatures separate stage, bindings, and identity
// packets.
func TestSignatureSeparatesComponents(t *testing.T) {
	p := property.CatalogByName(property.DefaultParams(), "nat-reverse")
	cp, err := compile(p)
	if err != nil {
		t.Fatal(err)
	}
	envA := bindings{"A": packet.Num(1), "B": packet.Num(2)}
	envB := bindings{"A": packet.Num(1), "B": packet.Num(3)}
	pk1 := []PacketID{7, 0, 0, 0}
	pk2 := []PacketID{8, 0, 0, 0}
	if cp.signature(1, envA, pk1) == cp.signature(1, envB, pk1) {
		t.Error("signature ignores bindings")
	}
	if cp.signature(1, envA, pk1) == cp.signature(2, envA, pk1) {
		t.Error("signature ignores stage")
	}
	// Stage 0 is identity-relevant for nat-reverse (stage 1 references it).
	if cp.signature(1, envA, pk1) == cp.signature(1, envA, pk2) {
		t.Error("signature ignores identity packets")
	}
	// Identity packets of *future* stages must not contribute.
	pk3 := []PacketID{7, 0, 9, 0}
	if cp.signature(1, envA, pk1) != cp.signature(1, envA, pk3) {
		t.Error("signature leaks future-stage packets")
	}
}

// Property: the symmetric hash operand is permutation-invariant over its
// field values.
func TestHashValuesPermutationInvariant(t *testing.T) {
	f := func(nums []uint64, seed int64) bool {
		vals := genValues(nums, nil)
		shuffled := append([]packet.Value(nil), vals...)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return packet.HashValues(vals) == packet.HashValues(shuffled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any random event stream, the engine's invariants hold.
func TestSelfCheckAfterRandomStream(t *testing.T) {
	props := []*property.Property{
		property.CatalogByName(property.DefaultParams(), "firewall-timeout"),
		property.CatalogByName(property.DefaultParams(), "portscan-detect"),
		property.CatalogByName(property.DefaultParams(), "lb-sticky"),
	}
	for seed := int64(1); seed <= 5; seed++ {
		h := newHarness(t, Config{MaxInstances: 64}, props...)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			src := packet.IPv4FromUint32(0x0a000000 + uint32(rng.Intn(32)))
			dst := packet.IPv4FromUint32(0xcb007100 + uint32(rng.Intn(8)))
			p := packet.NewTCP(macA, macB, src, dst,
				uint16(1000+rng.Intn(64)), uint16(rng.Intn(1000)),
				packet.TCPFlags(rng.Intn(64)), nil)
			if rng.Intn(3) == 0 {
				h.forwardDropped(p, uint64(rng.Intn(3)+1))
			} else {
				h.forward(p, uint64(rng.Intn(3)+1), uint64(rng.Intn(3)+1))
			}
			if rng.Intn(10) == 0 {
				h.advance(1000)
			}
		}
		if err := h.mon.SelfCheck(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Property: over any seeded random event stream, a ShardedMonitor and the
// inline engine agree on every Stats counter and on the violation count,
// at every shard width. This complements the trace-shaped differential in
// sharded_test.go with the adversarial stream used for the self-check
// property (timeouts, counting stages, sticky identities).
func TestShardedMatchesInlineOnRandomStream(t *testing.T) {
	props := []*property.Property{
		property.CatalogByName(property.DefaultParams(), "firewall-timeout"),
		property.CatalogByName(property.DefaultParams(), "portscan-detect"),
		property.CatalogByName(property.DefaultParams(), "lb-sticky"),
	}
	for _, shards := range []int{1, 3, 4} {
		for seed := int64(1); seed <= 5; seed++ {
			sched := sim.NewScheduler()
			inlineViols, shardedViols := 0, 0
			mi := NewMonitor(sched, Config{OnViolation: func(*Violation) { inlineViols++ }})
			sm := NewShardedMonitor(shards, Config{OnViolation: func(*Violation) { shardedViols++ }})
			for _, p := range props {
				if err := mi.AddProperty(p); err != nil {
					t.Fatal(err)
				}
				if err := sm.AddProperty(p); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(seed))
			var pid PacketID
			feed := func(e Event) {
				mi.HandleEvent(e)
				sm.Submit(e)
			}
			for i := 0; i < 500; i++ {
				src := packet.IPv4FromUint32(0x0a000000 + uint32(rng.Intn(32)))
				dst := packet.IPv4FromUint32(0xcb007100 + uint32(rng.Intn(8)))
				p := packet.NewTCP(macA, macB, src, dst,
					uint16(1000+rng.Intn(64)), uint16(rng.Intn(1000)),
					packet.TCPFlags(rng.Intn(64)), nil)
				pid++
				now := sched.Now()
				in := uint64(rng.Intn(3) + 1)
				feed(Event{Kind: KindArrival, Time: now, PacketID: pid, Packet: p, InPort: in})
				if rng.Intn(3) == 0 {
					feed(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: p, InPort: in, Dropped: true})
				} else {
					feed(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: p,
						InPort: in, OutPort: uint64(rng.Intn(3) + 1)})
				}
				if rng.Intn(10) == 0 {
					sched.RunFor(time.Second)
					sm.AdvanceTo(sched.Now())
				}
			}
			sched.RunFor(time.Hour)
			sm.AdvanceTo(sched.Now())
			if is, ss := mi.Stats(), sm.Stats(); is != ss {
				t.Fatalf("shards=%d seed=%d: stats diverge\ninline:  %+v\nsharded: %+v", shards, seed, is, ss)
			}
			if inlineViols != shardedViols {
				t.Fatalf("shards=%d seed=%d: violations %d vs %d", shards, seed, inlineViols, shardedViols)
			}
			if err := sm.SelfCheck(); err != nil {
				t.Fatalf("shards=%d seed=%d: %v", shards, seed, err)
			}
			sm.Close()
		}
	}
}

// Allocation regression: the firewall steady state — return traffic
// probing the stage-1 index of an established instance population — must
// stay within a fixed allocation budget per event. The uint64-key hot
// path runs allocation-free; the budget of 2 leaves slack for future
// bookkeeping without letting string keys or union maps sneak back in.
func TestSteadyStateAllocationBudget(t *testing.T) {
	sched := sim.NewScheduler()
	mon := NewMonitor(sched, Config{})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	const flows = 256
	var pid PacketID
	events := make([]Event, 0, 3*flows)
	for f := 0; f < flows; f++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		dst := packet.IPv4FromUint32(0xcb007100 | uint32(f))
		open := packet.NewTCP(macA, macB, src, dst, uint16(10000+f), 80, packet.FlagSYN, nil)
		pid++
		mon.HandleEvent(Event{Kind: KindArrival, Time: sched.Now(), PacketID: pid, Packet: open, InPort: 1})
		mon.HandleEvent(Event{Kind: KindEgress, Time: sched.Now(), PacketID: pid, Packet: open, InPort: 1, OutPort: 2})
		ret := packet.NewTCP(macB, macA, dst, src, 80, uint16(10000+f), packet.FlagACK, nil)
		pid++
		events = append(events, Event{Kind: KindEgress, Time: sched.Now(), PacketID: pid,
			Packet: ret, InPort: 2, OutPort: 1})
	}
	// Warm the scratch buffers before measuring.
	for i := range events {
		mon.HandleEvent(events[i])
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		mon.HandleEvent(events[i%len(events)])
		i++
	})
	if avg > 2 {
		t.Fatalf("steady-state path allocates %.1f/event, budget is 2", avg)
	}
}
