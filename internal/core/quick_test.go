package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// genValues converts fuzz input into a value slice mixing numbers and
// strings.
func genValues(nums []uint64, strs []string) []packet.Value {
	var vals []packet.Value
	for _, n := range nums {
		vals = append(vals, packet.Num(n))
	}
	for _, s := range strs {
		vals = append(vals, packet.Str(s))
	}
	return vals
}

// Property: encodeValues is injective — equal encodings imply equal value
// slices. The instance indexes and dedup signatures depend on this.
func TestEncodeValuesInjective(t *testing.T) {
	f := func(n1 []uint64, s1 []string, n2 []uint64, s2 []string) bool {
		a, b := genValues(n1, s1), genValues(n2, s2)
		ea, eb := encodeValues(a), encodeValues(b)
		if reflect.DeepEqual(a, b) {
			return ea == eb
		}
		return ea != eb
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Adversarial boundary cases for the encoding: values whose string
// content embeds the encoding's own delimiters.
func TestEncodeValuesDelimiterSafety(t *testing.T) {
	cases := [][2][]packet.Value{
		{{packet.Str("a|b")}, {packet.Str("a"), packet.Str("b")}},
		{{packet.Str("n1")}, {packet.Num(1)}},
		{{packet.Str("")}, {}},
		{{packet.Str("s1:x")}, {packet.Str("s1"), packet.Str("x")}},
		{{packet.Num(0)}, {}},
		{{packet.Str("3:abc")}, {packet.Str("3"), packet.Str("abc")}},
	}
	for _, c := range cases {
		if encodeValues(c[0]) == encodeValues(c[1]) {
			t.Errorf("collision: %v vs %v -> %q", c[0], c[1], encodeValues(c[0]))
		}
	}
}

// Property: instance signatures separate stage, bindings, and identity
// packets.
func TestSignatureSeparatesComponents(t *testing.T) {
	p := property.CatalogByName(property.DefaultParams(), "nat-reverse")
	cp, err := compile(p)
	if err != nil {
		t.Fatal(err)
	}
	envA := bindings{"A": packet.Num(1), "B": packet.Num(2)}
	envB := bindings{"A": packet.Num(1), "B": packet.Num(3)}
	pk1 := []PacketID{7, 0, 0, 0}
	pk2 := []PacketID{8, 0, 0, 0}
	if cp.signature(1, envA, pk1) == cp.signature(1, envB, pk1) {
		t.Error("signature ignores bindings")
	}
	if cp.signature(1, envA, pk1) == cp.signature(2, envA, pk1) {
		t.Error("signature ignores stage")
	}
	// Stage 0 is identity-relevant for nat-reverse (stage 1 references it).
	if cp.signature(1, envA, pk1) == cp.signature(1, envA, pk2) {
		t.Error("signature ignores identity packets")
	}
	// Identity packets of *future* stages must not contribute.
	pk3 := []PacketID{7, 0, 9, 0}
	if cp.signature(1, envA, pk1) != cp.signature(1, envA, pk3) {
		t.Error("signature leaks future-stage packets")
	}
}

// Property: the symmetric hash operand is permutation-invariant over its
// field values.
func TestHashValuesPermutationInvariant(t *testing.T) {
	f := func(nums []uint64, seed int64) bool {
		vals := genValues(nums, nil)
		shuffled := append([]packet.Value(nil), vals...)
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return packet.HashValues(vals) == packet.HashValues(shuffled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any random event stream, the engine's invariants hold.
func TestSelfCheckAfterRandomStream(t *testing.T) {
	props := []*property.Property{
		property.CatalogByName(property.DefaultParams(), "firewall-timeout"),
		property.CatalogByName(property.DefaultParams(), "portscan-detect"),
		property.CatalogByName(property.DefaultParams(), "lb-sticky"),
	}
	for seed := int64(1); seed <= 5; seed++ {
		h := newHarness(t, Config{MaxInstances: 64}, props...)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			src := packet.IPv4FromUint32(0x0a000000 + uint32(rng.Intn(32)))
			dst := packet.IPv4FromUint32(0xcb007100 + uint32(rng.Intn(8)))
			p := packet.NewTCP(macA, macB, src, dst,
				uint16(1000+rng.Intn(64)), uint16(rng.Intn(1000)),
				packet.TCPFlags(rng.Intn(64)), nil)
			if rng.Intn(3) == 0 {
				h.forwardDropped(p, uint64(rng.Intn(3)+1))
			} else {
				h.forward(p, uint64(rng.Intn(3)+1), uint64(rng.Intn(3)+1))
			}
			if rng.Intn(10) == 0 {
				h.advance(1000)
			}
		}
		if err := h.mon.SelfCheck(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
