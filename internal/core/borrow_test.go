package core

import (
	"sync/atomic"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// borrowedStream builds a firewall open/violate workload as batches,
// mirroring TestShardedHighVolumeDrain's stream shape.
func borrowedStream(flows, perBatch int) [][]Event {
	now := sim.Epoch
	var pid PacketID
	var batches [][]Event
	cur := make([]Event, 0, perBatch)
	push := func(e Event) {
		cur = append(cur, e)
		if len(cur) == perBatch {
			batches = append(batches, cur)
			cur = make([]Event, 0, perBatch)
		}
	}
	for f := 0; f < flows; f++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		dst := packet.IPv4FromUint32(0xcb007100 | uint32(f%200))
		open := packet.NewTCP(macA, macB, src, dst, uint16(10000+f%50000), 80, packet.FlagSYN, nil)
		pid++
		push(Event{Kind: KindArrival, Time: now, PacketID: pid, Packet: open, InPort: 1})
		push(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: open, InPort: 1, OutPort: 2})
		ret := packet.NewTCP(macB, macA, dst, src, 80, uint16(10000+f%50000), packet.FlagACK, nil)
		pid++
		ev := Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: ret, InPort: 2}
		if f%10 == 0 {
			ev.Dropped = true
		} else {
			ev.OutPort = 1
		}
		push(ev)
		now = now.Add(time.Microsecond)
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// Borrowed SubmitBatch must produce the same verdicts as the copying
// form, and every batch's release must fire exactly once.
func TestSubmitBatchBorrowedMatchesCopied(t *testing.T) {
	const flows = 2000
	run := func(borrow bool) (Stats, int64) {
		fw := property.CatalogByName(property.DefaultParams(), "firewall-basic")
		sm := NewShardedMonitor(4, Config{})
		defer sm.Close()
		if err := sm.AddProperty(fw); err != nil {
			t.Fatal(err)
		}
		var released atomic.Int64
		for _, batch := range borrowedStream(flows, 64) {
			var rel func()
			if borrow {
				rel = func() { released.Add(1) }
			}
			if err := sm.SubmitBatch(batch, rel); err != nil {
				t.Fatal(err)
			}
		}
		sm.Drain()
		return sm.Stats(), released.Load()
	}

	copied, _ := run(false)
	borrowed, released := run(true)
	if copied.Violations != borrowed.Violations || copied.Created != borrowed.Created ||
		copied.Events != borrowed.Events {
		t.Fatalf("borrowed stats %+v differ from copied %+v", borrowed, copied)
	}
	wantBatches := int64(len(borrowedStream(flows, 64)))
	if released != wantBatches {
		t.Fatalf("release fired %d times for %d batches", released, wantBatches)
	}
}

// Release must fire even when the batch routes nowhere or the monitor
// is closed — a leaked arena would starve the pool.
func TestSubmitBatchReleaseAlwaysFires(t *testing.T) {
	fw := property.CatalogByName(property.DefaultParams(), "firewall-basic")
	sm := NewShardedMonitor(2, Config{})
	if err := sm.AddProperty(fw); err != nil {
		t.Fatal(err)
	}
	fired := 0
	// An empty borrow: nothing routes, release fires before return.
	if err := sm.SubmitBatch(nil, func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	sm.Barrier()
	if fired != 1 {
		t.Fatalf("empty-batch release fired %d times, want 1", fired)
	}
	sm.Close()
	err := sm.SubmitBatch(make([]Event, 3), func() { fired++ })
	if err != ErrClosed {
		t.Fatalf("SubmitBatch after Close = %v, want ErrClosed", err)
	}
	if fired != 2 {
		t.Fatalf("post-Close release fired %d times total, want 2", fired)
	}
}

// A batch's events must reach their shard workers by the time
// SubmitBatch returns, even when the stream's clock never advances.
// Partial shard batches used to wait for the shardBatchSize overflow or
// the next Tick/Barrier to flush — so a wire batch of events sharing
// one timestamp parked in the router's pending buffers indefinitely,
// and a live collector sat on its verdicts until drain (the
// -demo-over-wire quickstart showed 1 of 36 events applied). Nothing
// below may call Tick, Barrier, Drain, or Stats: the verdict has to
// surface from the submit alone. (Single-event Submit keeps the
// buffer-until-Tick behavior — its callers tick per event.)
func TestSubmitBatchFlushesWithoutClockAdvance(t *testing.T) {
	for _, mode := range []string{"batch-copied", "batch-borrowed"} {
		t.Run(mode, func(t *testing.T) {
			fw := property.CatalogByName(property.DefaultParams(), "firewall-basic")
			got := make(chan struct{}, 4)
			sm := NewShardedMonitor(4, Config{
				OnViolation: func(*Violation) { got <- struct{}{} },
			})
			defer sm.Close()
			if err := sm.AddProperty(fw); err != nil {
				t.Fatal(err)
			}
			src := packet.IPv4FromUint32(0x0a000001)
			dst := packet.IPv4FromUint32(0xcb007101)
			open := packet.NewTCP(macA, macB, src, dst, 30000, 80, packet.FlagSYN, nil)
			ret := packet.NewTCP(macB, macA, dst, src, 80, 30000, packet.FlagACK, nil)
			events := []Event{
				{Kind: KindArrival, Time: sim.Epoch, PacketID: 1, Packet: open, InPort: 1},
				{Kind: KindEgress, Time: sim.Epoch, PacketID: 1, Packet: open, InPort: 1, OutPort: 2},
				{Kind: KindEgress, Time: sim.Epoch, PacketID: 2, Packet: ret, InPort: 2, Dropped: true},
			}
			switch mode {
			case "batch-copied":
				if err := sm.SubmitBatch(events, nil); err != nil {
					t.Fatal(err)
				}
			case "batch-borrowed":
				if err := sm.SubmitBatch(events, func() {}); err != nil {
					t.Fatal(err)
				}
			}
			select {
			case <-got:
			case <-time.After(10 * time.Second):
				t.Fatal("violation never surfaced: equal-timestamp events parked in the router's pending buffers")
			}
		})
	}
}
