package core

import (
	"encoding/json"
	"sort"
	"sync"
	"time"

	"switchmon/internal/obs"
)

// UnsoundReason classifies why a property's verdicts stopped being
// trustworthy. The paper's premise is that the monitor sees everything
// the switch does; once that stops being true — events shed under
// overload, a property quarantined after a panic, loss injected into
// the feed — the engine must say so rather than keep reporting verdicts
// as if nothing happened. Each reason names one way the "sees
// everything" assumption broke.
type UnsoundReason uint8

// Reasons a property can be marked unsound.
const (
	// UnsoundShed: events routed to the property were shed by a bounded
	// shard queue (ShedDropNewest / ShedDropOldest).
	UnsoundShed UnsoundReason = iota
	// UnsoundQuarantine: the property's step panicked; the property was
	// quarantined and sees no further events anywhere.
	UnsoundQuarantine
	// UnsoundInjectedLoss: the event feed itself reported losing events
	// (fault injection, a lossy OOB channel) via MarkFeedLoss.
	UnsoundInjectedLoss
	// UnsoundSplitOverflow: split-mode queue overflow dropped events
	// before they reached monitor state.
	UnsoundSplitOverflow
	// UnsoundWireLoss: events were lost between a switch-side exporter
	// and the central collector — shed from the exporter's bounded send
	// queue, unacknowledged at a disconnect, or dropped on the link
	// itself. Detected as sequence-number gaps by the collector and as
	// local queue accounting by the exporter.
	UnsoundWireLoss
	// UnsoundReinstalled: the property was removed and later installed
	// again under the same name. Verdicts are sound from the newest
	// install point, but the stream between remove and reinstall is a
	// documented gap — absence of a violation across it proves nothing.
	UnsoundReinstalled
	// UnsoundQuota: events or instances belonging to the property's
	// tenant were rejected by a per-tenant quota (instance cap or shard
	// queue share). The loss is confined to that tenant's properties.
	UnsoundQuota
)

// String names the reason.
func (r UnsoundReason) String() string {
	switch r {
	case UnsoundShed:
		return "shed"
	case UnsoundQuarantine:
		return "quarantine"
	case UnsoundInjectedLoss:
		return "injected-loss"
	case UnsoundSplitOverflow:
		return "split-overflow"
	case UnsoundWireLoss:
		return "wire-loss"
	case UnsoundReinstalled:
		return "reinstalled"
	case UnsoundQuota:
		return "quota"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the reason as its name, so ledger snapshots are
// readable on /healthz and in NDJSON output.
func (r UnsoundReason) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// UnsoundMark is one property's degradation record: the first moment its
// verdicts stopped being complete, and how much has been lost since. A
// marked property can still report violations — they are real — but the
// absence of a violation no longer means the property held.
type UnsoundMark struct {
	Property string        `json:"property"`
	Reason   UnsoundReason `json:"reason"`
	// SinceSeq is the engine's applied-event sequence number at the first
	// mark (shard-local under sharding, router-submitted for feed loss).
	SinceSeq uint64 `json:"since_seq"`
	// SinceTime is the virtual time of the first mark.
	SinceTime time.Time `json:"since_time"`
	// Events counts events known lost to this property since the mark.
	// Zero for quarantine, where the loss is open-ended.
	Events uint64 `json:"events"`
	Detail string `json:"detail,omitempty"`
}

// Ledger is the per-property soundness record shared by an engine and
// its observers. The engine marks it on the degradation paths (shed,
// quarantine, overflow, reported feed loss) — never on the clean hot
// path — and observers (Stats, /healthz, the exit report) snapshot it
// from any goroutine. A property keeps its first mark's reason and
// since-point; later marks only accumulate the loss count.
type Ledger struct {
	mu        sync.Mutex
	marks     map[string]*UnsoundMark
	quarProps map[string]bool
	installs  map[string]*InstallRecord
	shed      uint64
	loss      uint64
	overflow  uint64
	wire      uint64
	quota     uint64

	// Telemetry handles (nil-safe no-ops when uninstrumented).
	unsoundG *obs.Gauge
	shedC    *obs.Counter
	quarC    *obs.Counter
	lossC    *obs.Counter
	ovflC    *obs.Counter
	wireC    *obs.Counter
	quotaC   *obs.Counter
}

// InstallRecord is one property's install-point watermark: when (and in
// which lifecycle epoch) the property was last installed. A property is
// sound *from here*, not from process start — losses that predate the
// watermark never mark it. Generation counts installs under this name;
// a generation above one means the name was removed and reinstalled.
type InstallRecord struct {
	Property string `json:"property"`
	Tenant   string `json:"tenant,omitempty"`
	// Epoch is the engine's lifecycle epoch at install (0 for the
	// startup property set, then one per Install/Remove/Replace).
	Epoch uint64 `json:"epoch"`
	// Seq is the engine's applied-event sequence number at install.
	Seq uint64 `json:"since_seq"`
	// At is the virtual install time; zero for startup installs, which
	// are sound from the beginning of the stream.
	At         time.Time `json:"installed_at"`
	Generation int       `json:"generation"`
	removed    bool
}

func newLedger() *Ledger {
	return &Ledger{
		marks:     map[string]*UnsoundMark{},
		quarProps: map[string]bool{},
		installs:  map[string]*InstallRecord{},
	}
}

// NewLedger creates a standalone soundness ledger. Engines build their
// own internally; the exported constructor exists for components that
// track degradation without owning an engine — the switch-side exporter
// records its wire losses here so a switchmon -export process can report
// them exactly like in-process shedding.
func NewLedger() *Ledger { return newLedger() }

// instrument registers the ledger's series. Registration happens once at
// engine construction; the mark paths then record through atomic handles.
func (l *Ledger) instrument(reg *obs.Registry, labels []obs.Label) {
	if reg == nil {
		return
	}
	l.unsoundG = reg.Gauge("switchmon_monitor_unsound_properties",
		"Properties whose verdicts are degraded (shed, quarantined, or lossy feed).", labels...)
	l.shedC = reg.Counter("switchmon_ledger_shed_events_total",
		"Events shed by bounded shard queues.", labels...)
	l.quarC = reg.Counter("switchmon_ledger_quarantined_properties_total",
		"Properties quarantined after a panic in their step.", labels...)
	l.lossC = reg.Counter("switchmon_ledger_injected_loss_events_total",
		"Feed events reported lost upstream of the monitor.", labels...)
	l.ovflC = reg.Counter("switchmon_ledger_overflow_events_total",
		"Events dropped by split-mode queue overflow.", labels...)
	l.wireC = reg.Counter("switchmon_ledger_wire_loss_events_total",
		"Events lost between exporter and collector (gaps, shed batches, unacked disconnects).", labels...)
	l.quotaC = reg.Counter("switchmon_ledger_quota_events_total",
		"Events and instances rejected by per-tenant quotas.", labels...)
}

// Mark records that prop became (or stays) unsound for reason. The first
// mark pins the since-point; subsequent marks add n to the loss count.
// A loss whose time predates the property's install-point watermark is
// dropped: the property was not installed when those events flowed, so
// its verdicts owe nothing for them. Safe from any goroutine.
func (l *Ledger) Mark(prop string, reason UnsoundReason, seq uint64, at time.Time, n uint64, detail string) {
	l.mu.Lock()
	if rec := l.installs[prop]; rec != nil && !rec.At.IsZero() && at.Before(rec.At) {
		l.mu.Unlock()
		return
	}
	l.markLocked(prop, reason, seq, at, n, detail)
	l.mu.Unlock()
}

func (l *Ledger) markLocked(prop string, reason UnsoundReason, seq uint64, at time.Time, n uint64, detail string) {
	m := l.marks[prop]
	if m == nil {
		m = &UnsoundMark{Property: prop, Reason: reason, SinceSeq: seq, SinceTime: at, Detail: detail}
		l.marks[prop] = m
		l.unsoundG.Set(int64(len(l.marks)))
	}
	m.Events += n
	if reason == UnsoundQuarantine && !l.quarProps[prop] {
		l.quarProps[prop] = true
		l.quarC.Inc()
	}
}

// RecordInstall stamps prop's install-point watermark: sound from (at,
// seq) in lifecycle epoch. A zero at means "sound from the beginning of
// the stream" (the startup property set). Installing a name that was
// installed before reports reinstalled=true and — because the stream
// between remove and reinstall is a verdict gap — records an
// UnsoundReinstalled mark (first-mark-wins: an earlier mark survives
// with its original reason). Safe from any goroutine.
func (l *Ledger) RecordInstall(prop, tenant string, epoch, seq uint64, at time.Time) (reinstalled bool) {
	l.mu.Lock()
	rec := l.installs[prop]
	if rec == nil {
		rec = &InstallRecord{Property: prop}
		l.installs[prop] = rec
	} else {
		reinstalled = true
	}
	rec.Tenant = tenant
	rec.Epoch = epoch
	rec.Seq = seq
	rec.At = at
	rec.Generation++
	rec.removed = false
	if reinstalled {
		l.markLocked(prop, UnsoundReinstalled, seq, at, 0,
			"removed and reinstalled; verdicts sound from the newest install point")
	}
	l.mu.Unlock()
	return reinstalled
}

// RecordRemove retires prop's install record from InstallSnapshot while
// keeping its generation (so a later install of the same name counts as
// a reinstall) and any unsound marks (degradation history survives the
// property). Safe from any goroutine.
func (l *Ledger) RecordRemove(prop string) {
	l.mu.Lock()
	if rec := l.installs[prop]; rec != nil {
		rec.removed = true
	}
	l.mu.Unlock()
}

// InstallEpoch reports the lifecycle epoch prop was last installed in,
// and whether it is currently installed.
func (l *Ledger) InstallEpoch(prop string) (epoch uint64, installed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec := l.installs[prop]
	if rec == nil || rec.removed {
		return 0, false
	}
	return rec.Epoch, true
}

// InstallSnapshot returns the live properties' install records sorted by
// name. Removed properties are omitted; the result is a copy.
func (l *Ledger) InstallSnapshot() []InstallRecord {
	l.mu.Lock()
	out := make([]InstallRecord, 0, len(l.installs))
	for _, rec := range l.installs {
		if !rec.removed {
			out = append(out, *rec)
		}
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Property < out[j].Property })
	return out
}

// recordLost adds n lost events to the reason's aggregate counters —
// once per loss occurrence, regardless of how many properties the lost
// events could have affected (Mark handles per-property attribution).
func (l *Ledger) recordLost(reason UnsoundReason, n uint64) {
	l.mu.Lock()
	switch reason {
	case UnsoundShed:
		l.shed += n
		l.shedC.Add(n)
	case UnsoundInjectedLoss:
		l.loss += n
		l.lossC.Add(n)
	case UnsoundSplitOverflow:
		l.overflow += n
		l.ovflC.Add(n)
	case UnsoundWireLoss:
		l.wire += n
		l.wireC.Add(n)
	case UnsoundQuota:
		l.quota += n
		l.quotaC.Add(n)
	}
	l.mu.Unlock()
}

// RecordLost adds n lost events to the reason's aggregate counter
// without touching per-property marks — the exported half of the mark
// protocol for components (the exporter) that attribute loss themselves
// via Mark and still want the aggregate series to move.
func (l *Ledger) RecordLost(reason UnsoundReason, n uint64) { l.recordLost(reason, n) }

// Sound reports whether every installed property's verdicts are still
// complete — no marks of any kind.
func (l *Ledger) Sound() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.marks) == 0
}

// Snapshot returns the marks sorted by property name. Safe from any
// goroutine; the result is a copy.
func (l *Ledger) Snapshot() []UnsoundMark {
	l.mu.Lock()
	out := make([]UnsoundMark, 0, len(l.marks))
	for _, m := range l.marks {
		out = append(out, *m)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Property < out[j].Property })
	return out
}

// robustnessTotals reports the aggregates surfaced through Stats: total
// shed events and the count of quarantined properties.
func (l *Ledger) robustnessTotals() (shed, quarantined uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.shed, uint64(len(l.quarProps))
}

// lostEvents reports the injected-loss and overflow aggregates (used by
// tests and the CLI exit report).
func (l *Ledger) lostEvents() (loss, overflow uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loss, l.overflow
}
