package core

import (
	"sync"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// The split-processing deployment the paper's Feature 9 describes runs
// the slow path on its own goroutine: the forwarding path queues events,
// a worker drains them with Flush, and an operator (or the /metrics
// endpoint) polls Stats concurrently. Stats must therefore be a proper
// atomic snapshot — this test drives exactly that topology under -race.
// Before the snapshot was made atomic, the worker's counter increments
// raced with the reader's struct copy and this test failed.
func TestStatsConcurrentWithSplitWorker(t *testing.T) {
	sched := sim.NewScheduler()
	mon := NewMonitor(sched, Config{Mode: Split, SplitFlushLimit: 64})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}

	events := make([]Event, 0, 512)
	var pid PacketID
	for f := 0; f < 128; f++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		dst := packet.IPv4FromUint32(0xcb007100 | uint32(f))
		open := packet.NewTCP(macA, macB, src, dst, uint16(20000+f), 80, packet.FlagSYN, nil)
		ret := packet.NewTCP(macB, macA, dst, src, 80, uint16(20000+f), packet.FlagACK, nil)
		pid++
		events = append(events,
			Event{Kind: KindArrival, Time: sched.Now(), PacketID: pid, Packet: open, InPort: 1},
			Event{Kind: KindEgress, Time: sched.Now(), PacketID: pid, Packet: open, InPort: 1, OutPort: 2})
		pid++
		events = append(events,
			Event{Kind: KindEgress, Time: sched.Now(), PacketID: pid, Packet: ret, InPort: 2, OutPort: 1})
	}

	// Worker goroutine: owns the monitor, alternately queues and flushes —
	// the single-threaded driving contract, moved off the main goroutine.
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for round := 0; round < 50; round++ {
			for i := range events {
				mon.HandleEvent(events[i])
				if i%17 == 0 {
					mon.Flush()
				}
			}
			mon.Flush()
		}
	}()

	// Reader: polls the snapshot and the queue depth like a scrape loop.
	var last Stats
	for {
		select {
		case <-done:
			wg.Wait()
			final := mon.Stats()
			if final.Events == 0 {
				t.Fatal("worker applied no events")
			}
			if final.Events < last.Events {
				t.Fatalf("events went backwards: %d then %d", last.Events, final.Events)
			}
			return
		default:
			st := mon.Stats()
			if st.Events < last.Events {
				t.Fatalf("events went backwards: %d then %d", last.Events, st.Events)
			}
			last = st
			_ = mon.PendingEvents()
			time.Sleep(50 * time.Microsecond)
		}
	}
}
