package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/obs/statesize"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// Mode is the side-effect control knob (Feature 9): does monitor state
// update inline with forwarding, or split from it?
type Mode uint8

// Processing modes.
const (
	// Inline applies every event to monitor state before HandleEvent
	// returns — forwarding pays the update latency, state never lags.
	Inline Mode = iota
	// Split queues events; state is updated when Flush is called. The
	// forwarding path is nearly free, but monitor state lags behind the
	// traffic, which can produce monitor errors — exactly the trade-off
	// the paper says switch designs should expose.
	Split
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Inline:
		return "inline"
	case Split:
		return "split"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config configures a Monitor.
type Config struct {
	Mode       Mode
	Provenance ProvLevel
	// OnViolation receives each violation report; nil means violations
	// are only counted.
	OnViolation func(*Violation)
	// DisableIndex forces full scans of the instance store instead of
	// keyed lookups. It exists for differential testing (indexed and
	// scanning engines must agree) and to quantify what indexing buys.
	DisableIndex bool
	// SplitFlushLimit caps the pending queue in Split mode; 0 means
	// unbounded. When an event arrives with the queue at the cap, the
	// oldest SplitFlushLimit/2 events (minimum 1) are dropped in a single
	// batch before the new event is queued — modeling a switch whose
	// slow-path update queue overflows under pressure. Every dropped
	// event counts individually in Stats.DroppedEvents: one overflow of a
	// limit-8 queue adds 4 to the counter, not 1.
	SplitFlushLimit int
	// MaxInstances caps the live instance population; 0 means unbounded.
	// When a new instance would exceed the cap, the oldest live instance
	// is evicted (and counted) — the memory-bounding answer to the
	// Sec. 3.3 scalability concern. Eviction trades completeness for
	// bounded state: an evicted instance's violation, if any, is lost.
	MaxInstances int
	// Metrics, when non-nil, wires the engine into the telemetry
	// registry: per-property counters, a per-event latency histogram,
	// and occupancy/queue gauges. Handles are resolved at construction
	// and install time; the event hot path records through atomic
	// instruments and stays allocation-free. Nil disables telemetry at
	// the cost of one pointer check per event.
	Metrics *obs.Registry
	// MetricsLabels are attached to every engine-level series this
	// monitor registers (e.g. shard="3" under a ShardedMonitor).
	// Per-property counters deliberately omit them so engines sharing a
	// registry aggregate into one series per property.
	MetricsLabels []obs.Label
	// Violations, when non-nil, receives a trace record (with as much
	// provenance as Provenance allows) for every violation — the ring
	// buffer behind a live /violations endpoint. Recording takes the
	// ring's mutex, but only on the rare violation path.
	Violations *obs.Ring
	// ShardQueueLen bounds each shard's control queue, in batches of up
	// to shardBatchSize events each; 0 means the default (64). Only the
	// ShardedMonitor reads it.
	ShardQueueLen int
	// ShedPolicy decides what happens when a shard's queue is full at
	// flush time: block the router (default, the pre-robustness
	// behavior), shed the newest batch, or shed the oldest queued batch.
	// Shedding marks every affected property unsound in the Ledger. Only
	// the ShardedMonitor reads it.
	ShedPolicy ShedPolicy
	// DisableSupervision turns off shard panic recovery: a panic in a
	// property step kills the shard goroutine and the process, exactly
	// the pre-supervision behavior. It exists so the crash-regression
	// test can demonstrate what supervision prevents. Only the
	// ShardedMonitor reads it.
	DisableSupervision bool
	// StateTopK sets the capacity of the per-property heavy-hitter
	// sketch behind StateReport ("which keys hold the most monitor
	// state"); 0 disables the sketch. Accounting itself (live counts,
	// bytes, timers) runs regardless.
	StateTopK int
	// StateSample samples one filing in N into the heavy-hitter sketch,
	// chosen by the filing key's identity-hash class so a given flow is
	// always in or always out; 0 or 1 observes every filing.
	StateSample uint64
	// StateWatermark is the per-property live-instance count above which
	// the state_pressure metric raises — an early warning that fires
	// before any shed or quarantine does; 0 disables watermarking.
	StateWatermark int64
	// DisableStateAccounting turns off state-cost accounting entirely
	// (StateReport returns an empty report). It exists to measure what
	// accounting costs — the E16 benchmark's baseline — mirroring
	// DisableIndex.
	DisableStateAccounting bool
	// Tracer, when non-nil, completes sampled event spans: the engine
	// stamps shard_dispatch when it picks an event up and verdict when
	// every property has stepped, then finishes the span into the
	// tracer's ring and latency histograms. Events without a span (the
	// unsampled majority) pay one pointer test.
	Tracer *tracer.Tracer
	// TenantQuotas caps resource use per tenant (property.Property.Tenant).
	// A tenant at its instance cap has new instances rejected — recorded
	// as that tenant's quota marks in the ledger, never the neighbors' —
	// and a tenant over its queue share (sharded engine) stops receiving
	// routed events until its backlog drains. Properties with no tenant,
	// or a tenant absent from this map, are unquotaed.
	TenantQuotas map[string]TenantQuota
}

// TenantQuota bounds one tenant's resource consumption.
type TenantQuota struct {
	// MaxInstances caps the tenant's live instances across all its
	// properties engine-wide; 0 = unlimited.
	MaxInstances int64
	// MaxQueued caps the tenant's queued per-shard messages at the
	// sharded engine's router; 0 = unlimited. Inline engines ignore it.
	MaxQueued int64
}

// ParseTenantQuotas parses the flag grammar both daemons use for
// Config.TenantQuotas: comma-separated tenant=maxInstances[:maxQueued].
// A zero field means no cap on that axis.
func ParseTenantQuotas(spec string) (map[string]TenantQuota, error) {
	quotas := make(map[string]TenantQuota)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, vals, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant quota %q: want tenant=maxInstances[:maxQueued]", part)
		}
		var q TenantQuota
		instStr, queuedStr, hasQueued := strings.Cut(vals, ":")
		var err error
		if q.MaxInstances, err = strconv.ParseInt(instStr, 10, 64); err != nil {
			return nil, fmt.Errorf("tenant quota %q: bad maxInstances %q", part, instStr)
		}
		if hasQueued {
			if q.MaxQueued, err = strconv.ParseInt(queuedStr, 10, 64); err != nil {
				return nil, fmt.Errorf("tenant quota %q: bad maxQueued %q", part, queuedStr)
			}
		}
		if q.MaxInstances < 0 || q.MaxQueued < 0 {
			return nil, fmt.Errorf("tenant quota %q: quotas must be non-negative", part)
		}
		quotas[name] = q
	}
	return quotas, nil
}

// Stats counts monitor activity. Retrieve a snapshot with Monitor.Stats.
type Stats struct {
	// Events is the number of events applied to monitor state.
	Events uint64
	// Created counts instances created at stage zero.
	Created uint64
	// Advanced counts stage advances (excluding creation).
	Advanced uint64
	// Violations counts completed patterns.
	Violations uint64
	// Discharged counts instances removed by obligation guards or by a
	// negative observation seeing its awaited event.
	Discharged uint64
	// Expired counts instances removed by a positive-stage window lapsing.
	Expired uint64
	// Deduped counts events that matched into an already-live identical
	// instance.
	Deduped uint64
	// Refreshed counts window-deadline refreshes caused by dedup hits.
	Refreshed uint64
	// Suppressed counts instances dropped (at entry or while waiting)
	// because a sticky guard permanently discharged their identity.
	Suppressed uint64
	// Evicted counts instances removed by the MaxInstances cap.
	Evicted uint64
	// DroppedEvents counts split-mode queue overflow drops, one count per
	// dropped event (not per overflow batch).
	DroppedEvents uint64
	// ShedEvents counts events shed by bounded shard queues under a
	// drop-newest or drop-oldest policy, one count per shed event. Always
	// zero on a fault-free run, so sharded-vs-inline differential checks
	// comparing whole Stats values keep holding.
	ShedEvents uint64
	// QuarantinedProperties counts properties quarantined after a panic
	// in their step function.
	QuarantinedProperties uint64
	// LifecycleEpoch is the engine's property-set epoch: 0 for the
	// startup set, bumped by every live Install/Remove/Replace. Equal
	// across engines that saw the same lifecycle history.
	LifecycleEpoch uint64
}

// instance is one partially completed violation pattern (Feature 8's
// "instances"). Instances are pooled: terminally dead ones return to the
// monitor's free list and are recycled by createInstance under a fresh id.
type instance struct {
	id      uint64
	propIdx int
	cp      *compiledProp
	// stage is the observation the instance is waiting to satisfy.
	stage   int
	binds   bindings
	packets []PacketID
	history []ProvRecord
	timer   *sim.Timer
	// count and seen track progress of a counting stage (MinCount > 1);
	// both reset when the instance enters a new stage.
	count int
	seen  map[packet.Value]bool
	// deadlineNegative records what the pending timer means: advance
	// (negative observation) or expire (window).
	deadlineNegative bool
	lastEventSeq     uint64
	// lastCandSeq dedups an instance reachable through several index keys
	// of the same event without building a union set.
	lastCandSeq uint64
	idxKeys     []uint64
	sig         uint64
	filed       bool
	// acctBytes is the approximate resident cost charged to state
	// accounting when the instance was filed; remove returns exactly
	// this much, so the bytes gauge converges under churn.
	acctBytes int64
}

// bucket holds the instances of one property waiting at one stage.
type bucket struct {
	all   map[uint64]*instance
	keyed map[uint64]map[uint64]*instance
	bySig map[uint64]*instance
	// suppressed holds instance signatures permanently discharged by
	// sticky guards; entering instances with these signatures are dropped.
	suppressed map[uint64]bool
}

func newBucket() *bucket {
	return &bucket{
		all:        map[uint64]*instance{},
		keyed:      map[uint64]map[uint64]*instance{},
		bySig:      map[uint64]*instance{},
		suppressed: map[uint64]bool{},
	}
}

// evictRef is one entry in the MaxInstances FIFO. Instances are pooled,
// so the queue pins the id the reference was filed under: a recycled
// instance carries a fresh id and fails the check, which keeps a stale
// reference from evicting the new incarnation.
type evictRef struct {
	inst *instance
	id   uint64
}

// Monitor is the property-monitoring engine. It is single-threaded by
// design: the dataplane simulator drives it from one goroutine, matching
// how a switch pipeline stage would execute. ShardedMonitor scales it
// across cores by running N of these over disjoint identity partitions.
type Monitor struct {
	sched   *sim.Scheduler
	cfg     Config
	props   []*compiledProp
	buckets map[int][]*bucket // propIdx -> per-stage buckets
	nextID  uint64
	seq     uint64
	pending []Event
	// pendingN mirrors len(pending) atomically so PendingEvents (and
	// the queue-depth gauge) can be read while a worker goroutine
	// drives the monitor.
	pendingN atomic.Int64
	stats    statsCell
	// mx and pmx are the telemetry handles (nil / empty-handled when
	// Config.Metrics is nil); pmx is indexed by propIdx.
	mx  *monitorMetrics
	pmx []propMetrics
	// evictQueue holds instances in creation order for MaxInstances
	// eviction; entries may be stale (already removed or recycled).
	evictQueue []evictRef
	live       int
	// freeList recycles terminally dead instances (pooling: the hot path
	// must not allocate).
	freeList []*instance
	// instScratch and keyScratch are per-monitor scratch buffers for
	// matchStage's candidate collection; taken and restored around use so
	// re-entrant HandleEvent calls from an OnViolation callback fall back
	// to allocating instead of corrupting the in-use buffer.
	instScratch []*instance
	keyScratch  []uint64
	// envScratch is reused by seedSuppressions for synthesized identities.
	envScratch bindings
	// ledger is the soundness record (always non-nil; shared across
	// shards under a ShardedMonitor).
	ledger *Ledger
	// state is the state-cost accounting store (shared across shards
	// under a ShardedMonitor; nil when accounting is disabled), shardIdx
	// is this monitor's cell in it, and sx holds the per-property
	// hot-path handles, indexed by propIdx (nil entries when disabled —
	// every accounting method is nil-receiver safe).
	state    *statesize.Tracker
	shardIdx int
	sx       []*statesize.Handle
	// tcell and tcap are the per-property tenant quota hooks, indexed by
	// propIdx: the tenant's shared accounting cell (nil for untenanted
	// properties or when accounting is off) and its live-instance cap
	// (0 = uncapped). The hot path pays one nil check per filing.
	tcell []*statesize.TenantCell
	tcap  []int64
	// epoch is the property-set lifecycle epoch: 0 for the startup set,
	// bumped by every live Install/Remove/Replace. Atomic so Stats can
	// read it from any goroutine.
	epoch atomic.Uint64
	// quarantined is the bitmask of properties this monitor no longer
	// steps (panicked and purged). Only the first 64 properties are
	// mask-addressable; an inline monitor with more properties simply
	// cannot quarantine the rest, which is fine — quarantine is driven by
	// the ShardedMonitor, whose property count is capped at 64.
	quarantined uint64
	// curProp is the property currently being stepped (-1 outside a
	// step), the attribution a supervisor reads after recovering a panic.
	curProp int
	// stepProbe, when non-nil, runs at the start of every property step
	// with (propIdx, applied-event seq). It is the fault-injection hook:
	// a probe that panics simulates a bug in that property's step and is
	// recovered (and attributed) exactly like one.
	stepProbe func(prop int, seq uint64)
}

// NewMonitor creates a monitor driven by the given scheduler's clock.
func NewMonitor(sched *sim.Scheduler, cfg Config) *Monitor {
	return newMonitorWithLedger(sched, cfg, nil, nil, 0)
}

// newMonitorWithLedger is NewMonitor with a caller-supplied ledger and
// state tracker (the ShardedMonitor shares one of each across its
// shards, identifying this shard's accounting cell by shardIdx); nil
// ledger means own ledger, nil tracker means own single-shard tracker
// unless accounting is disabled.
func newMonitorWithLedger(sched *sim.Scheduler, cfg Config, led *Ledger, st *statesize.Tracker, shardIdx int) *Monitor {
	m := &Monitor{sched: sched, cfg: cfg, buckets: map[int][]*bucket{}, curProp: -1}
	if cfg.Metrics != nil {
		m.mx = newMonitorMetrics(cfg.Metrics, cfg.MetricsLabels)
	}
	if led == nil {
		led = newLedger()
		led.instrument(cfg.Metrics, cfg.MetricsLabels)
	}
	m.ledger = led
	// Tenant quotas are enforced through the tracker's tenant cells, so
	// configuring quotas forces accounting on even when benchmarking asked
	// for it off.
	if st == nil && (!cfg.DisableStateAccounting || len(cfg.TenantQuotas) > 0) {
		st = statesize.NewTracker(statesize.Config{
			Shards:    1,
			TopK:      cfg.StateTopK,
			SampleN:   cfg.StateSample,
			Watermark: cfg.StateWatermark,
			Metrics:   cfg.Metrics,
		})
		shardIdx = 0
	}
	m.state = st
	m.shardIdx = shardIdx
	return m
}

// Ledger returns the monitor's soundness ledger. Safe to read (Snapshot,
// Sound) from any goroutine.
func (m *Monitor) Ledger() *Ledger { return m.ledger }

// SetStepProbe installs a fault-injection probe called at the start of
// every property step. Install before feeding events.
func (m *Monitor) SetStepProbe(fn func(prop int, seq uint64)) { m.stepProbe = fn }

// MarkFeedLoss records that n events were lost upstream of the monitor
// (a lossy link or OOB channel, an injected drop): every installed
// property is marked unsound, because any of them might have needed the
// lost events. at is the stream time of the loss; detail is free text.
func (m *Monitor) MarkFeedLoss(at time.Time, n uint64, detail string) {
	m.MarkLoss(UnsoundInjectedLoss, at, n, detail)
}

// MarkLoss is MarkFeedLoss with an explicit reason — the collector uses
// it to record sequence-number gaps as wire loss rather than injected
// loss, keeping the two degradation paths distinguishable in /healthz.
func (m *Monitor) MarkLoss(reason UnsoundReason, at time.Time, n uint64, detail string) {
	for _, cp := range m.props {
		if cp == nil {
			continue
		}
		m.ledger.Mark(cp.prop.Name, reason, m.seq, at, n, detail)
	}
	m.ledger.recordLost(reason, n)
}

// AddProperty compiles and installs a property. It is InstallProperty
// under its historical name; both work on a live monitor.
func (m *Monitor) AddProperty(p *property.Property) error { return m.InstallProperty(p) }

// InstallProperty compiles and installs a property on the (possibly
// live) monitor. The property is sound from here: its install-point
// watermark is stamped into the ledger, so losses that predate the
// install never mark it. Installing a name that is already installed is
// an error (RemoveProperty it first, or use ReplaceProperty).
func (m *Monitor) InstallProperty(p *property.Property) error {
	if m.propIndex(p.Name) >= 0 {
		return fmt.Errorf("core: property %q already installed", p.Name)
	}
	if _, err := m.installLocal(p); err != nil {
		return err
	}
	live := m.seq > 0 || len(m.pending) > 0
	var at time.Time
	if live {
		at = m.sched.Now()
		m.epoch.Add(1)
	}
	m.ledger.RecordInstall(p.Name, p.Tenant, m.epoch.Load(), m.seq, at)
	return nil
}

// RemoveProperty uninstalls the named property: its live instances are
// purged, pending timers canceled, pooled accounting refunded, and its
// quarantine bit (if any) cleared so a later install into the reused
// slot starts clean. The property's unsound marks survive removal —
// degradation history is part of the record. The slot is tombstoned for
// reuse by the next install.
func (m *Monitor) RemoveProperty(name string) error {
	idx := m.propIndex(name)
	if idx < 0 {
		return fmt.Errorf("core: property %q not installed", name)
	}
	m.removeLocal(idx, true)
	if m.seq > 0 || len(m.pending) > 0 {
		m.epoch.Add(1)
	}
	m.ledger.RecordRemove(name)
	return nil
}

// ReplaceProperty atomically swaps the named property for a fresh
// compile: remove (when installed) then install. The ledger records the
// reinstall — verdicts are sound from the new install point only.
func (m *Monitor) ReplaceProperty(p *property.Property) error {
	if idx := m.propIndex(p.Name); idx >= 0 {
		if err := m.RemoveProperty(p.Name); err != nil {
			return err
		}
	}
	return m.InstallProperty(p)
}

// Epoch reports the property-set lifecycle epoch (see Stats.LifecycleEpoch).
func (m *Monitor) Epoch() uint64 { return m.epoch.Load() }

// propIndex finds the slot holding the named property, or -1.
func (m *Monitor) propIndex(name string) int {
	for i, cp := range m.props {
		if cp != nil && cp.prop.Name == name {
			return i
		}
	}
	return -1
}

// installLocal compiles p into the first free slot (a tombstone left by
// a removal, else a fresh append) and wires its buckets, metrics, and
// accounting handles. It does not touch the ledger — engine-level
// wrappers (InstallProperty here, the ShardedMonitor's lifecycle ops)
// own install records, so N shards sharing one ledger record one
// install, not N.
func (m *Monitor) installLocal(p *property.Property) (int, error) {
	cp, err := compile(p)
	if err != nil {
		return -1, err
	}
	idx := -1
	for i, slot := range m.props {
		if slot == nil {
			idx = i
			break
		}
	}
	if idx < 0 {
		idx = len(m.props)
		m.props = append(m.props, nil)
		m.pmx = append(m.pmx, propMetrics{})
		m.sx = append(m.sx, nil)
		m.tcell = append(m.tcell, nil)
		m.tcap = append(m.tcap, 0)
	}
	m.props[idx] = cp
	bs := make([]*bucket, len(cp.stages))
	for i := range bs {
		bs[i] = newBucket()
	}
	m.buckets[idx] = bs
	if m.cfg.Metrics != nil {
		m.pmx[idx] = newPropMetrics(m.cfg.Metrics, p.Name)
	} else {
		m.pmx[idx] = propMetrics{}
	}
	if m.state != nil {
		m.state.InstallTenant(idx, p.Name, p.Tenant)
		m.sx[idx] = m.state.Handle(idx, m.shardIdx)
		if p.Tenant != "" {
			m.tcell[idx] = m.state.Tenant(p.Tenant)
			m.tcap[idx] = m.cfg.TenantQuotas[p.Tenant].MaxInstances
		} else {
			m.tcell[idx] = nil
			m.tcap[idx] = 0
		}
	} else {
		m.sx[idx] = nil
		m.tcell[idx] = nil
		m.tcap[idx] = 0
	}
	return idx, nil
}

// removeLocal purges slot idx's instances and timers, clears its local
// quarantine bit, and tombstones the slot. uninstallTracker retires the
// slot in the shared accounting tracker too — true for an inline
// monitor, false for a shard (the ShardedMonitor's router retires the
// tracker slot once, after every shard has purged).
func (m *Monitor) removeLocal(idx int, uninstallTracker bool) {
	m.purgeProp(idx)
	if idx < maxShardedProperties {
		m.quarantined &^= uint64(1) << uint(idx)
	}
	m.props[idx] = nil
	delete(m.buckets, idx)
	m.pmx[idx] = propMetrics{}
	if m.state != nil && uninstallTracker {
		m.state.Uninstall(idx)
	}
	m.sx[idx] = nil
	m.tcell[idx] = nil
	m.tcap[idx] = 0
}

// Properties returns the names of installed properties.
func (m *Monitor) Properties() []string {
	names := make([]string, 0, len(m.props))
	for _, cp := range m.props {
		if cp != nil {
			names = append(names, cp.prop.Name)
		}
	}
	return names
}

// Stats returns a snapshot of the activity counters. The snapshot is
// assembled with atomic loads, so it may be taken from any goroutine —
// including while a split-mode worker owns the monitor and is applying
// events — without a lock and without racing the hot path.
func (m *Monitor) Stats() Stats {
	s := m.stats.snapshot()
	s.ShedEvents, s.QuarantinedProperties = m.ledger.robustnessTotals()
	s.LifecycleEpoch = m.epoch.Load()
	return s
}

// ActiveInstances reports the number of live instances — the quantity
// that determines Varanus's pipeline depth (Sec. 3.3) and this engine's
// memory footprint.
func (m *Monitor) ActiveInstances() int {
	n := 0
	for _, bs := range m.buckets {
		for _, b := range bs {
			n += len(b.all)
		}
	}
	return n
}

// PendingEvents reports the split-mode queue length. Like Stats, it is
// safe to call from any goroutine.
func (m *Monitor) PendingEvents() int { return int(m.pendingN.Load()) }

// setPending records the queue length for PendingEvents and the
// queue-depth gauge.
func (m *Monitor) setPending(n int) {
	m.pendingN.Store(int64(n))
	if m.mx != nil {
		m.mx.pending.Set(int64(n))
	}
}

// HandleEvent feeds one event to the monitor. In Inline mode the event is
// applied immediately; in Split mode it is queued for Flush.
func (m *Monitor) HandleEvent(e Event) {
	if m.cfg.Mode == Split {
		if m.cfg.SplitFlushLimit > 0 && len(m.pending) >= m.cfg.SplitFlushLimit {
			// Overflow: drop the oldest SplitFlushLimit/2 events (minimum
			// one, so a cap of 1 still sheds) in a single batch, as a slow
			// path under pressure would. Each dropped event counts once.
			drop := m.cfg.SplitFlushLimit / 2
			if drop < 1 {
				drop = 1
			}
			if drop > len(m.pending) {
				drop = len(m.pending)
			}
			m.stats.droppedEvents.Add(uint64(drop))
			if m.mx != nil {
				m.mx.dropped.Add(uint64(drop))
			}
			// The dropped events never reach monitor state, so every
			// property's verdicts are incomplete from here on: record the
			// loss in the soundness ledger (overflow is off the steady-state
			// path, so the ledger cost is paid only when already degraded).
			for _, cp := range m.props {
				if cp == nil {
					continue
				}
				m.ledger.Mark(cp.prop.Name, UnsoundSplitOverflow, m.seq, e.Time, uint64(drop), "split-mode queue overflow")
			}
			m.ledger.recordLost(UnsoundSplitOverflow, uint64(drop))
			m.pending = append(m.pending[:0], m.pending[drop:]...)
		}
		m.pending = append(m.pending, e)
		m.setPending(len(m.pending))
		return
	}
	m.apply(&e)
}

// Flush applies all queued events (Split mode). It reports how many were
// applied.
func (m *Monitor) Flush() int {
	n := len(m.pending)
	for i := range m.pending {
		m.apply(&m.pending[i])
	}
	m.pending = m.pending[:0]
	if n > 0 {
		m.setPending(0)
	}
	return n
}

// apply runs one event through every property.
func (m *Monitor) apply(e *Event) {
	var start time.Time
	if m.mx != nil {
		start = time.Now()
	}
	if tr := m.cfg.Tracer; tr != nil && e.Trace != nil {
		e.Trace.Stamp(tracer.StageShardDispatch)
	}
	m.stats.events.Add(1)
	m.seq++
	seq := m.seq
	for pi, cp := range m.props {
		if cp == nil {
			continue // tombstone: slot freed by RemoveProperty
		}
		if m.quarantined != 0 && pi < maxShardedProperties && m.quarantined&(uint64(1)<<uint(pi)) != 0 {
			continue
		}
		m.curProp = pi
		if m.stepProbe != nil {
			m.stepProbe(pi, seq)
		}
		m.stepProp(pi, cp, e, seq, true, true)
	}
	if m.mx != nil {
		m.mx.events.Inc()
		m.mx.eventNs.Observe(uint64(time.Since(start)))
	}
	if tr := m.cfg.Tracer; tr != nil && e.Trace != nil {
		e.Trace.Stamp(tracer.StageVerdict)
		tr.Finish(e.Trace)
	}
}

// stepProp runs one event through one property: suppression seeding and
// stage >= 1 matching when match is set, stage-zero creation when create
// is set. It is the unit of blast radius for supervision — a panic in
// here is attributed to property pi via curProp and quarantines only pi.
func (m *Monitor) stepProp(pi int, cp *compiledProp, e *Event, seq uint64, match, create bool) {
	m.pmx[pi].events.Inc()
	bs := m.buckets[pi]
	if match {
		m.seedSuppressions(cp, bs, e)
		// Walk pending stages from the deepest back to 1 so an instance
		// advanced by this event is not advanced again, then consider
		// creating a fresh instance at stage 0.
		for si := len(cp.stages) - 1; si >= 1; si-- {
			b := bs[si]
			if len(b.all) == 0 {
				continue
			}
			cs := &cp.stages[si]
			m.matchStage(pi, si, cs, b, e, seq)
		}
	}
	if create {
		cs0 := &cp.stages[0]
		if stagePatternMatches(cs0, e, nil, nil) {
			m.createInstance(pi, cp, e, seq)
		}
	}
}

// quarantineLocal stops stepping the masked properties and purges their
// live instances from this monitor, canceling their timers. Purging
// (rather than freezing) matters after a panic: the interrupted step may
// have left a property's instances half-advanced, and a stopped timer
// is the guarantee that no scheduler callback resurrects them.
func (m *Monitor) quarantineLocal(bits uint64) {
	m.quarantined |= bits
	for pi, cp := range m.props {
		if cp == nil || pi >= maxShardedProperties || bits&(uint64(1)<<uint(pi)) == 0 {
			continue
		}
		m.purgeProp(pi)
	}
}

// purgeProp removes every live instance of property pi, canceling its
// timers and refunding its accounting — the shared teardown of
// quarantine and removal.
func (m *Monitor) purgeProp(pi int) {
	for _, b := range m.buckets[pi] {
		if len(b.all) == 0 {
			continue
		}
		// Collect first: remove mutates the maps being iterated.
		doomed := make([]*instance, 0, len(b.all))
		for _, inst := range b.all {
			doomed = append(doomed, inst)
		}
		for _, inst := range doomed {
			m.remove(inst)
			m.release(inst)
		}
	}
}

// Quarantined reports the bitmask of quarantined properties.
func (m *Monitor) Quarantined() uint64 { return m.quarantined }

// matchStage advances, discharges, or leaves alone the instances waiting
// at one stage for one event. The candidate set is the union of the index
// groups' keyed lookups — merge-iterated with a sequence-number dedup
// rather than materialized into a set — or the whole bucket when the
// stage has no index schema (or indexing is disabled).
func (m *Monitor) matchStage(pi, si int, cs *compiledStage, b *bucket, e *Event, seq uint64) {
	st := cs.st
	// Pass 1: pattern matches. For positive stages a match advances; for
	// negative stages the awaited event arrived in time, so the instance
	// is discharged without violation. Matches are collected first (into a
	// scratch buffer) and acted on after, since acting mutates the maps
	// being iterated.
	acted := m.instScratch[:0]
	m.instScratch = nil
	if m.cfg.DisableIndex || (len(cs.indexGroups) == 0 && !cs.pidIndex) {
		for _, inst := range b.all {
			if inst.lastEventSeq == seq {
				continue
			}
			if stagePatternMatches(cs, e, inst.binds, inst.packets) {
				acted = append(acted, inst)
			}
		}
	} else {
		keys := m.keyScratch[:0]
		m.keyScratch = nil
		keys = eventIndexKeys(cs, e, keys)
		for _, k := range keys {
			for _, inst := range b.keyed[k] {
				if inst.lastCandSeq == seq {
					continue // already considered under another key
				}
				inst.lastCandSeq = seq
				if inst.lastEventSeq == seq {
					continue
				}
				if stagePatternMatches(cs, e, inst.binds, inst.packets) {
					acted = append(acted, inst)
				}
			}
		}
		m.keyScratch = keys[:0]
	}
	for _, inst := range acted {
		inst.lastEventSeq = seq
		if st.Negative {
			m.remove(inst)
			m.stats.discharged.Add(1)
			m.pmx[pi].discharged.Inc()
			m.release(inst)
			continue
		}
		if st.MinCount > 1 {
			// Counting stage (quantitative extension): accumulate until
			// the threshold is reached, then advance.
			if st.CountDistinct != 0 {
				v, ok := e.Field(st.CountDistinct)
				if !ok || inst.seen[v] {
					continue
				}
				if inst.seen == nil {
					inst.seen = map[packet.Value]bool{}
				}
				inst.seen[v] = true
			}
			inst.count++
			if inst.count < st.MinCount {
				continue
			}
		}
		m.advance(inst, e)
	}
	// Pass 2: obligation guards (Feature 4). Each guard has its own index
	// keys; guards without equality-on-variable predicates fall back to a
	// bucket scan. The acted buffer is done, so it doubles as the
	// discharge buffer.
	if len(cs.guardIdx) == 0 {
		m.instScratch = acted[:0]
		return
	}
	discharged := acted[:0]
	for gi := range cs.guardIdx {
		g := &cs.guardIdx[gi]
		if !classMatches(g.guard.Class, e) {
			continue
		}
		cands := b.all
		if !m.cfg.DisableIndex && len(g.eq) > 0 {
			key, ok := guardEventKey(gi, g, e)
			if !ok {
				continue
			}
			cands = b.keyed[key]
		}
		for _, inst := range cands {
			if inst.lastEventSeq == seq {
				continue
			}
			if guardMatches(g.guard, e, inst.binds) {
				inst.lastEventSeq = seq
				discharged = append(discharged, inst)
			}
		}
	}
	for _, inst := range discharged {
		m.remove(inst)
		m.stats.discharged.Add(1)
		m.pmx[pi].discharged.Inc()
		m.release(inst)
	}
	m.instScratch = discharged[:0]
}

// createInstance starts a new instance from a stage-0 match, recycling a
// pooled instance when one is free.
func (m *Monitor) createInstance(pi int, cp *compiledProp, e *Event, seq uint64) {
	var inst *instance
	if n := len(m.freeList); n > 0 {
		inst = m.freeList[n-1]
		m.freeList[n-1] = nil
		m.freeList = m.freeList[:n-1]
		m.state.PoolGet(m.shardIdx)
	} else {
		inst = &instance{binds: bindings{}}
	}
	m.nextID++
	inst.id = m.nextID
	inst.propIdx = pi
	inst.cp = cp
	inst.stage = 0
	inst.lastEventSeq = seq
	inst.lastCandSeq = seq
	if cap(inst.packets) >= len(cp.stages) {
		inst.packets = inst.packets[:len(cp.stages)]
		clear(inst.packets)
	} else {
		inst.packets = make([]PacketID, len(cp.stages))
	}
	m.stats.created.Add(1)
	m.advance(inst, e)
}

// release returns a terminally dead instance (violated, discharged,
// expired, evicted, suppressed, or deduped away) to the free list. The
// caller must have unfiled it first; remove stops the timer, so no
// scheduler callback can touch a recycled instance, and createInstance
// reissues a fresh id, which is what invalidates stale evictRefs.
func (m *Monitor) release(inst *instance) {
	inst.cp = nil
	inst.timer = nil
	inst.history = inst.history[:0]
	inst.count = 0
	inst.seen = nil
	inst.deadlineNegative = false
	clear(inst.binds)
	m.freeList = append(m.freeList, inst)
	m.state.PoolPut(m.shardIdx)
}

// advance applies the event's bindings and moves the instance forward,
// reporting a violation if the pattern is complete.
func (m *Monitor) advance(inst *instance, e *Event) {
	cs := &inst.cp.stages[inst.stage]
	m.pmx[inst.propIdx].matches.Inc()
	if inst.stage > 0 {
		m.remove(inst) // leaves timers canceled and indexes clean
		m.stats.advanced.Add(1)
	}
	for _, bd := range cs.st.Binds {
		v, ok := e.Field(bd.Field)
		if !ok {
			// stagePatternMatches checked availability; this is a bug
			// guard, not a runtime path.
			panic(fmt.Sprintf("core: bind field %v unavailable after match", bd.Field))
		}
		inst.binds[bd.Var] = v
	}
	inst.packets[inst.stage] = e.PacketID
	if m.cfg.Provenance == ProvFull {
		inst.history = append(inst.history, ProvRecord{
			Stage: inst.stage,
			Label: cs.st.Label,
			Time:  e.Time,
			Event: e.Summary(),
		})
	}
	inst.stage++
	inst.count = 0
	inst.seen = nil
	if inst.stage == len(inst.cp.stages) {
		m.violate(inst, e.Time, e.Summary())
		m.release(inst)
		return
	}
	m.enter(inst)
}

// advanceByTimeout is the Feature 7 path: a negative observation's
// deadline fired with no discharging event, which *advances* the instance.
func (m *Monitor) advanceByTimeout(inst *instance) {
	m.curProp = inst.propIdx // attribution if a supervisor recovers a panic below
	cs := &inst.cp.stages[inst.stage]
	m.remove(inst)
	m.stats.advanced.Add(1)
	m.pmx[inst.propIdx].timeouts.Inc()
	now := m.sched.Now()
	if m.cfg.Provenance == ProvFull {
		inst.history = append(inst.history, ProvRecord{
			Stage: inst.stage,
			Label: cs.st.Label,
			Time:  now,
			Event: "timeout",
		})
	}
	inst.stage++
	inst.count = 0
	inst.seen = nil
	trigger := fmt.Sprintf("timeout: no event matched %q within the window", cs.st.Label)
	if inst.stage == len(inst.cp.stages) {
		m.violate(inst, now, trigger)
		m.release(inst)
		return
	}
	m.enter(inst)
}

// enter files the instance under its pending stage, handling dedup /
// refresh and arming deadlines. Instances turned away (suppressed or
// deduplicated) are dead and return to the pool.
func (m *Monitor) enter(inst *instance) {
	cs := &inst.cp.stages[inst.stage]
	b := m.buckets[inst.propIdx][inst.stage]
	sig := inst.cp.signature(inst.stage, inst.binds, inst.packets)
	if b.suppressed[sig] {
		m.stats.suppressed.Add(1)
		m.release(inst)
		return
	}
	if exist, ok := b.bySig[sig]; ok {
		// An identical instance is already waiting. For a windowed
		// positive stage the new observation refreshes the timer
		// (Feature 3); for a negative stage the original deadline is
		// preserved (Feature 7's non-refresh rule). Counting stages also
		// keep their original deadline: their window is a measurement
		// interval anchored at stage entry, not a sliding idle timeout —
		// refreshing it would turn "N events within T" into "N events
		// with gaps under T".
		m.stats.deduped.Add(1)
		if !cs.st.Negative && cs.st.MinCount <= 1 {
			if d, ok := m.windowOf(cs, exist.binds); ok {
				if exist.timer != nil {
					exist.timer.Stop()
				}
				ex := exist
				exist.timer = m.sched.After(d, func() { m.expire(ex) })
				m.stats.refreshed.Add(1)
			}
		}
		m.release(inst)
		return
	}
	// Per-tenant instance cap: a tenant at its cap has the new instance
	// rejected and its own properties marked unsound (quota) — neighbors
	// never pay. Untenanted properties carry a nil cell: one pointer test.
	if c := m.tcell[inst.propIdx]; c != nil {
		if cap := m.tcap[inst.propIdx]; cap > 0 && c.Instances() >= cap {
			c.Shed(1)
			m.ledger.Mark(inst.cp.prop.Name, UnsoundQuota, m.seq, m.sched.Now(), 1, "tenant instance cap reached")
			m.ledger.recordLost(UnsoundQuota, 1)
			m.release(inst)
			return
		}
		c.FileInstance()
	}
	if m.cfg.MaxInstances > 0 {
		if m.live >= m.cfg.MaxInstances {
			m.evictOldest()
		}
		// The FIFO is only maintained under a cap; an unbounded monitor
		// must not accumulate queue entries forever.
		m.evictQueue = append(m.evictQueue, evictRef{inst: inst, id: inst.id})
	}
	inst.sig = sig
	inst.filed = true
	m.live++
	if m.mx != nil {
		m.mx.occupancy.Add(1)
	}
	if h := m.sx[inst.propIdx]; h != nil {
		inst.acctBytes = approxInstanceBytes(inst)
		var fk uint64
		if h.Sketching() {
			fk = flowKey(inst.binds)
		}
		h.File(fk, inst.acctBytes)
	}
	b.bySig[sig] = inst
	b.all[inst.id] = inst
	inst.idxKeys = instanceIndexKeys(cs, inst.binds, inst.packets, inst.idxKeys[:0])
	for _, key := range inst.idxKeys {
		sub := b.keyed[key]
		if sub == nil {
			sub = map[uint64]*instance{}
			b.keyed[key] = sub
		}
		sub[inst.id] = inst
	}
	if d, ok := m.windowOf(cs, inst.binds); ok {
		in := inst
		if cs.st.Negative {
			inst.deadlineNegative = true
			inst.timer = m.sched.After(d, func() { m.advanceByTimeout(in) })
		} else {
			inst.deadlineNegative = false
			inst.timer = m.sched.After(d, func() { m.expire(in) })
		}
		m.sx[inst.propIdx].ArmTimer()
	}
}

// windowOf resolves a stage's window, static or variable.
func (m *Monitor) windowOf(cs *compiledStage, env bindings) (time.Duration, bool) {
	if cs.st.Window > 0 {
		return cs.st.Window, true
	}
	if cs.st.WindowVar != "" {
		v, ok := env[cs.st.WindowVar]
		if !ok || v.IsStr() {
			return 0, false
		}
		return time.Duration(v.Uint64()) * time.Second, true
	}
	return 0, false
}

// expire removes an instance whose positive-stage window lapsed: the
// monitored obligation no longer applies (Feature 3).
func (m *Monitor) expire(inst *instance) {
	m.curProp = inst.propIdx // attribution if a supervisor recovers a panic below
	m.remove(inst)
	m.stats.expired.Add(1)
	m.pmx[inst.propIdx].expired.Inc()
	m.pmx[inst.propIdx].timeouts.Inc()
	m.release(inst)
}

// remove unfiles the instance and cancels its deadline. The instance may
// live on (a stage advance re-enters it); terminal callers release it to
// the pool separately.
func (m *Monitor) remove(inst *instance) {
	if inst.timer != nil {
		inst.timer.Stop()
		inst.timer = nil
		m.sx[inst.propIdx].DisarmTimer()
	}
	if inst.filed {
		inst.filed = false
		m.live--
		if m.mx != nil {
			m.mx.occupancy.Add(-1)
		}
		m.sx[inst.propIdx].Unfile(inst.acctBytes)
		if c := m.tcell[inst.propIdx]; c != nil {
			c.UnfileInstance()
		}
	}
	b := m.buckets[inst.propIdx][inst.stage]
	delete(b.all, inst.id)
	if inst.sig != 0 {
		if b.bySig[inst.sig] == inst {
			delete(b.bySig, inst.sig)
		}
		inst.sig = 0
	}
	for _, key := range inst.idxKeys {
		if sub := b.keyed[key]; sub != nil {
			delete(sub, inst.id)
			if len(sub) == 0 {
				delete(b.keyed, key)
			}
		}
	}
	inst.idxKeys = inst.idxKeys[:0]
}

// seedSuppressions applies sticky guards (permanent discharge): any event
// matching one marks the synthesized instance identity as suppressed and
// removes a live instance with that identity.
func (m *Monitor) seedSuppressions(cp *compiledProp, bs []*bucket, e *Event) {
	for si := range cp.stages {
		cs := &cp.stages[si]
		if len(cs.stickyGuards) == 0 {
			continue
		}
		for _, sg := range cs.stickyGuards {
			if !classMatches(sg.guard.Class, e) {
				continue
			}
			if m.envScratch == nil {
				m.envScratch = bindings{}
			}
			env := m.envScratch
			clear(env)
			ok := true
			for v, f := range sg.varFields {
				val, present := e.Field(f)
				if !present {
					ok = false
					break
				}
				env[v] = val
			}
			if !ok || !predsHold(sg.rest, e, env) {
				continue
			}
			sig := cp.signature(si, env, nil)
			b := bs[si]
			if !b.suppressed[sig] {
				b.suppressed[sig] = true
			}
			if inst, live := b.bySig[sig]; live {
				m.remove(inst)
				m.stats.suppressed.Add(1)
				m.release(inst)
			}
		}
	}
}

// evictOldest removes the longest-lived filed instance (MaxInstances).
func (m *Monitor) evictOldest() {
	for len(m.evictQueue) > 0 {
		ref := m.evictQueue[0]
		m.evictQueue[0] = evictRef{}
		m.evictQueue = m.evictQueue[1:]
		if ref.inst.id != ref.id || !ref.inst.filed {
			continue // stale entry: already advanced, removed, or recycled
		}
		m.remove(ref.inst)
		m.stats.evicted.Add(1)
		m.release(ref.inst)
		return
	}
}

// violate emits a report: counters always, then a trace record into the
// configured ring and the user callback, each carrying as much
// provenance as the configured level allows.
func (m *Monitor) violate(inst *instance, at time.Time, trigger string) {
	m.stats.violations.Add(1)
	m.pmx[inst.propIdx].violations.Inc()
	if m.cfg.OnViolation == nil && m.cfg.Violations == nil {
		return
	}
	v := &Violation{
		Property: inst.cp.prop.Name,
		Time:     at,
		Trigger:  trigger,
	}
	if m.cfg.Provenance >= ProvLimited {
		v.Bindings = make(map[property.Var]packet.Value, len(inst.binds))
		for k, val := range inst.binds {
			v.Bindings[k] = val
		}
	}
	if m.cfg.Provenance == ProvFull {
		v.History = append([]ProvRecord(nil), inst.history...)
	}
	if m.cfg.Violations != nil {
		m.cfg.Violations.Record(v.TraceRecord())
	}
	if m.cfg.OnViolation != nil {
		m.cfg.OnViolation(v)
	}
}
