package core

import (
	"fmt"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// TestIndexedEngineMatchesScanningEngine drives random event streams
// through two monitors — one using keyed instance indexes, one forced to
// scan — and requires identical violation sequences. This is the
// correctness argument for the Feature 8 index structures.
func TestIndexedEngineMatchesScanningEngine(t *testing.T) {
	props := []*property.Property{
		property.CatalogByName(property.DefaultParams(), "firewall-until-close"),
		property.CatalogByName(property.DefaultParams(), "lswitch-unicast"),
		property.CatalogByName(property.DefaultParams(), "arp-proxy-reply"),
		property.CatalogByName(property.DefaultParams(), "knock-intervening"),
	}
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sched := sim.NewScheduler()
			var indexed, scanned []string
			record := func(sink *[]string) func(*Violation) {
				return func(v *Violation) {
					*sink = append(*sink, fmt.Sprintf("%s@%s", v.Property, v.Time.Format(time.RFC3339Nano)))
				}
			}
			mi := NewMonitor(sched, Config{OnViolation: record(&indexed)})
			ms := NewMonitor(sched, Config{OnViolation: record(&scanned), DisableIndex: true})
			for _, p := range props {
				if err := mi.AddProperty(p); err != nil {
					t.Fatal(err)
				}
				if err := ms.AddProperty(p); err != nil {
					t.Fatal(err)
				}
			}

			rng := sim.NewRand(seed)
			macs := []packet.MAC{macA, macB, packet.MustMAC("02:00:00:00:00:0c")}
			ips := []packet.IPv4{ipA, ipB, ipC, packet.MustIPv4("203.0.113.7")}
			ports := []uint16{80, 7001, 7002, 7003, 22, 40000}
			var pid PacketID

			feed := func(e Event) {
				mi.HandleEvent(e)
				ms.HandleEvent(e)
			}

			for i := 0; i < 400; i++ {
				sched.RunFor(time.Duration(rng.Intn(500)) * time.Millisecond)
				var p *packet.Packet
				switch rng.Intn(3) {
				case 0:
					p = packet.NewTCP(sim.Choice(rng, macs), sim.Choice(rng, macs),
						sim.Choice(rng, ips), sim.Choice(rng, ips),
						sim.Choice(rng, ports), sim.Choice(rng, ports),
						packet.TCPFlags(rng.Intn(64)), nil)
				case 1:
					p = packet.NewUDP(sim.Choice(rng, macs), sim.Choice(rng, macs),
						sim.Choice(rng, ips), sim.Choice(rng, ips),
						sim.Choice(rng, ports), sim.Choice(rng, ports), nil)
				case 2:
					if rng.Intn(2) == 0 {
						p = packet.NewARPRequest(sim.Choice(rng, macs), sim.Choice(rng, ips), sim.Choice(rng, ips))
					} else {
						p = packet.NewARPReply(sim.Choice(rng, macs), sim.Choice(rng, ips),
							sim.Choice(rng, macs), sim.Choice(rng, ips))
					}
				}
				pid++
				inPort := uint64(rng.Intn(4) + 1)
				now := sched.Now()
				feed(Event{Kind: KindArrival, Time: now, PacketID: pid, Packet: p, InPort: inPort})
				switch rng.Intn(3) {
				case 0:
					feed(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: p,
						InPort: inPort, Dropped: true})
				default:
					feed(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: p,
						InPort: inPort, OutPort: uint64(rng.Intn(4) + 1)})
				}
			}
			sched.RunFor(time.Minute) // let stragglers time out

			if len(indexed) != len(scanned) {
				t.Fatalf("indexed saw %d violations, scanned saw %d", len(indexed), len(scanned))
			}
			// Order within one event is map-iteration dependent, so
			// compare multisets.
			count := map[string]int{}
			for _, s := range indexed {
				count[s]++
			}
			for _, s := range scanned {
				count[s]--
				if count[s] < 0 {
					t.Fatalf("scanned engine produced extra violation %s", s)
				}
			}
			for s, n := range count {
				if n != 0 {
					t.Fatalf("violation multiset mismatch at %s (%+d)", s, n)
				}
			}
			if mi.ActiveInstances() != ms.ActiveInstances() {
				t.Fatalf("live instances differ: indexed=%d scanned=%d",
					mi.ActiveInstances(), ms.ActiveInstances())
			}
			if err := mi.SelfCheck(); err != nil {
				t.Fatalf("indexed engine invariants: %v", err)
			}
			if err := ms.SelfCheck(); err != nil {
				t.Fatalf("scanning engine invariants: %v", err)
			}
		})
	}
}
