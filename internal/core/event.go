// Package core implements the on-switch stateful property monitor — the
// paper's primary contribution rendered as an executable engine. It
// provides all ten semantic features of Sec. 2:
//
//	F1  field access           — via the internal/packet field registry
//	F2  event history          — variable bindings on monitor instances
//	F3  timeouts               — per-instance refreshed stage windows
//	F4  persistent obligation  — until-guards that discharge instances
//	F5  packet identity        — arrival/egress correlation by PacketID,
//	                             including dropped packets
//	F6  negative match         — != predicates against bound state
//	F7  timeout actions        — negative observations whose deadline
//	                             advances the instance (non-refreshing)
//	F8  instance identification— exact/symmetric/wandering indexes plus
//	                             multiple match
//	F9  side-effect control    — inline vs. split processing modes
//	F10 provenance             — none/limited/full violation history
package core

import (
	"fmt"
	"time"

	"switchmon/internal/obs/tracer"
	"switchmon/internal/packet"
)

// PacketID identifies one packet traversal through the switch. The
// dataplane assigns a fresh ID at ingress and stamps the corresponding
// egress events with the same ID — the mechanism behind the paper's
// Feature 5 ("maintaining packet identity" is "most reliably captured on
// the switch itself").
type PacketID uint64

// EventKind discriminates monitor events.
type EventKind uint8

// Event kinds.
const (
	// KindArrival is a packet entering the switch.
	KindArrival EventKind = iota
	// KindEgress is the switch's forwarding decision for a packet: one
	// event per output port, or a single event with Dropped set. Unlike
	// OpenFlow's egress tables, drops are visible here.
	KindEgress
	// KindOutOfBand is a non-packet event (link up/down).
	KindOutOfBand
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindEgress:
		return "egress"
	case KindOutOfBand:
		return "oob"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one observation input to the monitor.
type Event struct {
	Kind EventKind
	Time time.Time
	// SwitchID identifies the emitting switch (its datapath id), letting
	// one collector monitor several switches and properties scope
	// observations per switch — the NetSight-style aggregation Sec. 3.2
	// mentions for provenance. Zero when only one unnamed switch exists.
	SwitchID uint64
	// PacketID links an egress event to its arrival (zero for out-of-band
	// events).
	PacketID PacketID
	// Packet is the decoded packet for arrival/egress events.
	Packet *packet.Packet
	// InPort is the ingress port (arrival and egress events).
	InPort uint64
	// OutPort is the output port of an egress event (meaningless when
	// Dropped).
	OutPort uint64
	// Dropped marks an egress event recording a drop decision.
	Dropped bool
	// Multicast marks an egress event that is part of a multi-port output
	// (broadcast/flood).
	Multicast bool
	// OOBKind and OOBPort describe an out-of-band event.
	OOBKind packet.OOBKind
	OOBPort uint64
	// Trace is the event's sampled tracing span — nil for the vast
	// majority of events (1-in-N sampling). It rides along every copy
	// the pipeline makes but is pure observability metadata: no part of
	// the event's semantic identity, never consulted by property steps,
	// and carried on the wire in the batch's trace block rather than
	// the event encoding.
	Trace *tracer.Span
}

// Field extracts a field from the event: switch metadata from the event
// itself, everything else from the packet (Feature 1).
func (e *Event) Field(f packet.Field) (packet.Value, bool) {
	switch f {
	case packet.FieldSwitchID:
		return packet.Num(e.SwitchID), true
	case packet.FieldInPort:
		if e.Kind == KindArrival || e.Kind == KindEgress {
			return packet.Num(e.InPort), true
		}
		return packet.Value{}, false
	case packet.FieldOutPort:
		if e.Kind == KindEgress && !e.Dropped {
			return packet.Num(e.OutPort), true
		}
		return packet.Value{}, false
	case packet.FieldDropped:
		if e.Kind == KindEgress {
			if e.Dropped {
				return packet.Num(1), true
			}
			return packet.Num(0), true
		}
		return packet.Value{}, false
	case packet.FieldMulticast:
		if e.Kind == KindEgress {
			if e.Multicast {
				return packet.Num(1), true
			}
			return packet.Num(0), true
		}
		return packet.Value{}, false
	case packet.FieldOOBKind:
		if e.Kind == KindOutOfBand {
			return packet.Num(uint64(e.OOBKind)), true
		}
		return packet.Value{}, false
	case packet.FieldOOBPort:
		if e.Kind == KindOutOfBand {
			return packet.Num(e.OOBPort), true
		}
		return packet.Value{}, false
	default:
		if e.Packet == nil {
			return packet.Value{}, false
		}
		return e.Packet.Field(f)
	}
}

// Summary renders a one-line description for provenance and reports.
func (e *Event) Summary() string {
	switch e.Kind {
	case KindArrival:
		return fmt.Sprintf("arrival port=%d pkt#%d %s", e.InPort, e.PacketID, e.Packet.Summary())
	case KindEgress:
		if e.Dropped {
			return fmt.Sprintf("egress DROP pkt#%d %s", e.PacketID, e.Packet.Summary())
		}
		return fmt.Sprintf("egress port=%d pkt#%d %s", e.OutPort, e.PacketID, e.Packet.Summary())
	case KindOutOfBand:
		return fmt.Sprintf("oob %s port=%d", e.OOBKind, e.OOBPort)
	default:
		return "unknown event"
	}
}
