package core

import (
	"math/rand"
	"testing"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// propCounterNames are the per-property series that are routing-invariant:
// a ShardedMonitor's registry (where all shards resolve the same
// property-labeled counters, so the values are cross-shard aggregates)
// must report exactly what an inline engine reports on the same stream.
// switchmon_property_events_total is deliberately absent — it counts
// events *examined*, and the router skips deliveries a single engine
// would have scanned.
var propCounterNames = []string{
	"switchmon_property_matches_total",
	"switchmon_property_violations_total",
	"switchmon_property_timeouts_total",
	"switchmon_property_discharged_total",
	"switchmon_property_expired_total",
}

// Property: the sharded engine's aggregated per-property counters equal
// the inline engine's on any seeded random stream, at every shard width.
// This is the telemetry-level differential: beyond Stats agreeing in
// aggregate (TestShardedMatchesInlineOnRandomStream), the per-property
// attribution must survive partitioning.
func TestShardedPropertyCountersMatchInline(t *testing.T) {
	props := []*property.Property{
		property.CatalogByName(property.DefaultParams(), "firewall-timeout"),
		property.CatalogByName(property.DefaultParams(), "portscan-detect"),
		property.CatalogByName(property.DefaultParams(), "lb-sticky"),
	}
	for _, shards := range []int{1, 3, 4} {
		for seed := int64(1); seed <= 5; seed++ {
			sched := sim.NewScheduler()
			regI, regS := obs.NewRegistry(), obs.NewRegistry()
			mi := NewMonitor(sched, Config{Metrics: regI})
			sm := NewShardedMonitor(shards, Config{Metrics: regS})
			for _, p := range props {
				if err := mi.AddProperty(p); err != nil {
					t.Fatal(err)
				}
				if err := sm.AddProperty(p); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(seed))
			var pid PacketID
			feed := func(e Event) {
				mi.HandleEvent(e)
				sm.Submit(e)
			}
			for i := 0; i < 500; i++ {
				src := packet.IPv4FromUint32(0x0a000000 + uint32(rng.Intn(32)))
				dst := packet.IPv4FromUint32(0xcb007100 + uint32(rng.Intn(8)))
				p := packet.NewTCP(macA, macB, src, dst,
					uint16(1000+rng.Intn(64)), uint16(rng.Intn(1000)),
					packet.TCPFlags(rng.Intn(64)), nil)
				pid++
				now := sched.Now()
				in := uint64(rng.Intn(3) + 1)
				feed(Event{Kind: KindArrival, Time: now, PacketID: pid, Packet: p, InPort: in})
				if rng.Intn(3) == 0 {
					feed(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: p, InPort: in, Dropped: true})
				} else {
					feed(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: p,
						InPort: in, OutPort: uint64(rng.Intn(3) + 1)})
				}
				if rng.Intn(10) == 0 {
					sched.RunFor(time.Second)
					sm.AdvanceTo(sched.Now())
				}
			}
			sched.RunFor(time.Hour)
			sm.AdvanceTo(sched.Now())

			si, ss := regI.Snapshot(), regS.Snapshot()
			for _, p := range props {
				l := obs.L("property", p.Name)
				for _, name := range propCounterNames {
					vi := si.CounterValue(name, l)
					vs := ss.CounterValue(name, l)
					if vi != vs {
						t.Errorf("shards=%d seed=%d: %s{property=%s} inline=%d sharded=%d",
							shards, seed, name, p.Name, vi, vs)
					}
				}
			}
			// Both engines examined a non-zero stream; the examined-events
			// counter exists under both strategies even though its value is
			// execution-dependent.
			for _, p := range props {
				l := obs.L("property", p.Name)
				if si.CounterValue("switchmon_property_events_total", l) == 0 {
					t.Errorf("inline examined no events for %s", p.Name)
				}
				if ss.CounterValue("switchmon_property_events_total", l) == 0 {
					t.Errorf("sharded examined no events for %s", p.Name)
				}
			}
			sm.Close()
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}

// The steady-state hot path must stay allocation-free with telemetry
// fully enabled: counters, the latency histogram, occupancy gauges, and
// an attached violation ring. This is the tentpole's overhead budget —
// enabling -metrics-addr must not change the engine's allocation
// behavior on the indexed fast path.
func TestSteadyStateAllocationBudgetWithTelemetry(t *testing.T) {
	sched := sim.NewScheduler()
	reg := obs.NewRegistry()
	ring := obs.NewRing(64)
	mon := NewMonitor(sched, Config{Metrics: reg, Violations: ring})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	const flows = 256
	var pid PacketID
	events := make([]Event, 0, flows)
	for f := 0; f < flows; f++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		dst := packet.IPv4FromUint32(0xcb007100 | uint32(f))
		open := packet.NewTCP(macA, macB, src, dst, uint16(10000+f), 80, packet.FlagSYN, nil)
		pid++
		mon.HandleEvent(Event{Kind: KindArrival, Time: sched.Now(), PacketID: pid, Packet: open, InPort: 1})
		mon.HandleEvent(Event{Kind: KindEgress, Time: sched.Now(), PacketID: pid, Packet: open, InPort: 1, OutPort: 2})
		ret := packet.NewTCP(macB, macA, dst, src, 80, uint16(10000+f), packet.FlagACK, nil)
		pid++
		events = append(events, Event{Kind: KindEgress, Time: sched.Now(), PacketID: pid,
			Packet: ret, InPort: 2, OutPort: 1})
	}
	for i := range events {
		mon.HandleEvent(events[i]) // warm scratch buffers before measuring
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		mon.HandleEvent(events[i%len(events)])
		i++
	})
	if avg != 0 {
		t.Fatalf("telemetry-enabled steady-state path allocates %.1f/event, want 0", avg)
	}
	if reg.Snapshot().CounterValue("switchmon_monitor_events_total") == 0 {
		t.Fatal("telemetry was not actually recording")
	}
}
