package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/sim"
)

// The first mark pins a property's reason and since-point; later marks —
// even with a different reason — only accumulate the loss count. The
// degradation story a ledger tells is "unsound since X because Y", not
// the most recent incident.
func TestLedgerFirstMarkWins(t *testing.T) {
	l := newLedger()
	t0 := sim.Epoch
	l.Mark("p", UnsoundShed, 10, t0, 3, "queue overflow")
	l.Mark("p", UnsoundInjectedLoss, 50, t0.Add(time.Second), 7, "later loss")
	marks := l.Snapshot()
	if len(marks) != 1 {
		t.Fatalf("marks = %+v, want one entry for p", marks)
	}
	m := marks[0]
	if m.Reason != UnsoundShed || m.SinceSeq != 10 || !m.SinceTime.Equal(t0) || m.Detail != "queue overflow" {
		t.Fatalf("first mark not pinned: %+v", m)
	}
	if m.Events != 10 {
		t.Fatalf("Events = %d, want 10 (3 + 7 accumulated)", m.Events)
	}
}

func TestLedgerSoundAndSnapshotOrder(t *testing.T) {
	l := newLedger()
	if !l.Sound() {
		t.Fatal("fresh ledger must be sound")
	}
	if marks := l.Snapshot(); len(marks) != 0 {
		t.Fatalf("fresh ledger has marks: %+v", marks)
	}
	l.Mark("zebra", UnsoundShed, 1, sim.Epoch, 1, "")
	l.Mark("alpha", UnsoundQuarantine, 2, sim.Epoch, 0, "panic")
	l.Mark("mid", UnsoundSplitOverflow, 3, sim.Epoch, 2, "")
	if l.Sound() {
		t.Fatal("marked ledger claims soundness")
	}
	marks := l.Snapshot()
	if len(marks) != 3 || marks[0].Property != "alpha" || marks[1].Property != "mid" || marks[2].Property != "zebra" {
		t.Fatalf("snapshot not sorted by property: %+v", marks)
	}
}

// Aggregate totals come from recordLost (once per occurrence), not from
// per-property Marks: one shed batch affecting many properties counts
// its events once.
func TestLedgerTotalsCountOccurrencesOnce(t *testing.T) {
	l := newLedger()
	// One shed of 5 events that three properties were routed to.
	for _, p := range []string{"a", "b", "c"} {
		l.Mark(p, UnsoundShed, 9, sim.Epoch, 5, "shed")
	}
	l.recordLost(UnsoundShed, 5)
	shed, quarantined := l.robustnessTotals()
	if shed != 5 {
		t.Fatalf("shed total = %d, want 5 (once, not per property)", shed)
	}
	if quarantined != 0 {
		t.Fatalf("quarantined = %d, want 0", quarantined)
	}
	// Quarantining the same property twice counts once.
	l.Mark("a", UnsoundQuarantine, 11, sim.Epoch, 0, "panic")
	l.Mark("a", UnsoundQuarantine, 12, sim.Epoch, 0, "panic again")
	l.Mark("b", UnsoundQuarantine, 13, sim.Epoch, 0, "panic")
	if _, q := l.robustnessTotals(); q != 2 {
		t.Fatalf("quarantined = %d, want 2 distinct properties", q)
	}
	l.recordLost(UnsoundInjectedLoss, 4)
	l.recordLost(UnsoundSplitOverflow, 6)
	if loss, ovfl := l.lostEvents(); loss != 4 || ovfl != 6 {
		t.Fatalf("lostEvents = (%d, %d), want (4, 6)", loss, ovfl)
	}
}

// Reasons render as stable names in JSON — the contract /healthz and the
// CLI exit report rely on.
func TestUnsoundReasonJSON(t *testing.T) {
	for reason, want := range map[UnsoundReason]string{
		UnsoundShed:          `"shed"`,
		UnsoundQuarantine:    `"quarantine"`,
		UnsoundInjectedLoss:  `"injected-loss"`,
		UnsoundSplitOverflow: `"split-overflow"`,
	} {
		b, err := json.Marshal(reason)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != want {
			t.Errorf("reason %d marshals to %s, want %s", reason, b, want)
		}
	}
	mark := UnsoundMark{Property: "p", Reason: UnsoundQuarantine, SinceSeq: 7, SinceTime: sim.Epoch, Detail: "panic: boom"}
	b, err := json.Marshal(mark)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"property":"p"`, `"reason":"quarantine"`, `"since_seq":7`, `"detail":"panic: boom"`} {
		if !strings.Contains(string(b), frag) {
			t.Errorf("mark JSON %s missing %s", b, frag)
		}
	}
}

// Instrumented ledgers keep the unsound-properties gauge and the
// per-reason counters in lockstep with the marks; an uninstrumented
// ledger records through nil handles without crashing.
func TestLedgerInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	l := newLedger()
	l.instrument(reg, nil)
	l.Mark("a", UnsoundShed, 1, sim.Epoch, 2, "")
	l.Mark("b", UnsoundQuarantine, 2, sim.Epoch, 0, "panic")
	l.recordLost(UnsoundShed, 2)
	l.recordLost(UnsoundInjectedLoss, 3)
	l.recordLost(UnsoundSplitOverflow, 4)
	want := map[string]int64{
		"switchmon_monitor_unsound_properties":          2,
		"switchmon_ledger_shed_events_total":            2,
		"switchmon_ledger_quarantined_properties_total": 1,
		"switchmon_ledger_injected_loss_events_total":   3,
		"switchmon_ledger_overflow_events_total":        4,
	}
	got := map[string]int64{}
	for _, fam := range reg.Snapshot().Families {
		if _, ok := want[fam.Name]; !ok {
			continue
		}
		for _, s := range fam.Series {
			got[fam.Name] += s.Value
		}
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %d, want %d", name, got[name], w)
		}
	}

	// Uninstrumented: same operations, no registry, no panic.
	u := newLedger()
	u.Mark("a", UnsoundShed, 1, sim.Epoch, 1, "")
	u.recordLost(UnsoundShed, 1)
	if u.Sound() {
		t.Fatal("uninstrumented ledger lost its mark")
	}
}
