package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// tenantClone re-badges a catalogue property under a new name and
// tenant; the compiled automaton is identical, so any verdict
// difference against the original is quota-induced by construction.
func tenantClone(t *testing.T, from, name, tenant string) *property.Property {
	t.Helper()
	q := *catalogProp(t, from)
	q.Name = name
	q.Tenant = tenant
	return &q
}

// flowOpen/flowReturn build one distinct firewall flow per index.
func flowOpen(i int) *packet.Packet {
	src := packet.IPv4FromUint32(0x0a000000 + uint32(i))
	return packet.NewTCP(macA, macB, src, ipB, uint16(20000+i), 80, packet.FlagSYN, nil)
}

func flowReturn(i int) *packet.Packet {
	src := packet.IPv4FromUint32(0x0a000000 + uint32(i))
	return packet.NewTCP(macB, macA, ipB, src, 80, uint16(20000+i), packet.FlagACK, nil)
}

// A tenant at its instance cap has new instances shed and marked
// UnsoundQuota — and only that tenant's property pays; the untenanted
// neighbor keeps full verdicts on the same stream.
func TestTenantInstanceQuotaShedsOnlyThatTenant(t *testing.T) {
	h := newHarness(t, Config{
		TenantQuotas: map[string]TenantQuota{"noisy": {MaxInstances: 1}},
	},
		catalogProp(t, "firewall-basic"),
		tenantClone(t, "firewall-basic", "fw-noisy", "noisy"),
	)

	for i := 0; i < 3; i++ {
		h.forward(flowOpen(i), 1, 2)
	}
	// firewall-basic tracks 3 flows; fw-noisy capped at 1.
	if got := h.mon.ActiveInstances(); got != 4 {
		t.Fatalf("ActiveInstances = %d, want 4 (3 untenanted + 1 capped)", got)
	}

	// Wrongful drops on every return: the untenanted property sees all
	// three, the quota'd one only the flow it still tracks.
	for i := 0; i < 3; i++ {
		h.forwardDropped(flowReturn(i), 2)
	}
	perProp := map[string]int{}
	for _, v := range h.viols {
		perProp[v.Property]++
	}
	if perProp["firewall-basic"] != 3 {
		t.Fatalf("firewall-basic violations = %d, want 3 (quota must not leak across tenants)", perProp["firewall-basic"])
	}
	if perProp["fw-noisy"] != 1 {
		t.Fatalf("fw-noisy violations = %d, want 1 (one tracked flow)", perProp["fw-noisy"])
	}

	marks := h.mon.Ledger().Snapshot()
	if len(marks) != 1 {
		t.Fatalf("marks = %+v, want exactly the quota'd property", marks)
	}
	if marks[0].Property != "fw-noisy" || marks[0].Reason != UnsoundQuota || marks[0].Events != 2 {
		t.Fatalf("mark = %+v, want fw-noisy / quota / 2 shed instances", marks[0])
	}

	// The tenant rollup surfaces the shed count for /state.
	rep := h.mon.StateReport()
	var found bool
	for _, tc := range rep.Tenants {
		if tc.Tenant == "noisy" {
			found = true
			if tc.Shed != 2 {
				t.Fatalf("tenant shed = %d, want 2", tc.Shed)
			}
		}
	}
	if !found {
		t.Fatalf("tenant %q missing from state report: %+v", "noisy", rep.Tenants)
	}
}

// A tenant over its shard-queue share stops receiving routed events —
// shed at the router with UnsoundQuota marks — while the untenanted
// property's verdicts stay byte-identical to an inline engine that saw
// the whole stream. Shard workers are parked on a gate so the tenant's
// backlog deterministically exceeds its share.
func TestTenantQueueShareShedsOnlyThatTenant(t *testing.T) {
	props := []*property.Property{
		catalogProp(t, "firewall-basic"),
		tenantClone(t, "firewall-basic", "fw-noisy", "noisy"),
	}
	evs := superviseStream(20, 2)

	// Inline reference: no quotas, full stream.
	inline := map[string]int{}
	refRec := func(v *Violation) { inline[v.Property]++ }
	refSched := sim.NewScheduler()
	mi := NewMonitor(refSched, Config{OnViolation: refRec})
	for _, p := range props {
		p := *p
		if err := mi.AddProperty(&p); err != nil {
			t.Fatal(err)
		}
	}
	for i := range evs {
		if evs[i].Time.After(refSched.Now()) {
			refSched.RunUntil(evs[i].Time)
		}
		mi.HandleEvent(evs[i])
	}
	refSched.RunFor(time.Hour)

	// Sharded run: workers parked until the whole stream is routed, so
	// the noisy tenant's pending share (4) is exceeded mid-stream.
	var mu sync.Mutex
	sharded := map[string]int{}
	sm := NewShardedMonitor(2, Config{
		OnViolation:  func(v *Violation) { mu.Lock(); sharded[v.Property]++; mu.Unlock() },
		TenantQuotas: map[string]TenantQuota{"noisy": {MaxQueued: 4}},
	})
	defer sm.Close()
	for _, p := range props {
		if err := sm.AddProperty(p); err != nil {
			t.Fatal(err)
		}
	}
	release := make(chan struct{})
	for s := 0; s < 2; s++ {
		if err := sm.SetShardProbe(s, func(prop int, seq uint64) { <-release }); err != nil {
			t.Fatal(err)
		}
	}
	// No per-event Tick here: every Tick seals a batch, and with the
	// workers parked the bounded control queues would fill and the
	// router would block before the quota could be observed tripping.
	for i := range evs {
		if err := sm.Submit(evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	sm.AdvanceTo(evs[len(evs)-1].Time.Add(time.Hour))

	marks := sm.Ledger().Snapshot()
	if len(marks) != 1 || marks[0].Property != "fw-noisy" || marks[0].Reason != UnsoundQuota {
		t.Fatalf("marks = %+v, want exactly fw-noisy / quota", marks)
	}
	if marks[0].Events == 0 {
		t.Fatal("quota mark with zero shed events; the share never tripped")
	}
	mu.Lock()
	defer mu.Unlock()
	if sharded["firewall-basic"] != inline["firewall-basic"] {
		t.Fatalf("untenanted property diverged: sharded=%d inline=%d",
			sharded["firewall-basic"], inline["firewall-basic"])
	}
	if inline["firewall-basic"] == 0 {
		t.Fatal("reference found no violations; the gate is vacuous")
	}
	if sharded["fw-noisy"] >= inline["fw-noisy"] {
		t.Fatalf("noisy tenant lost nothing (sharded=%d inline=%d); the quota never bit",
			sharded["fw-noisy"], inline["fw-noisy"])
	}
	st := sm.Stats()
	if st.LifecycleEpoch != 0 {
		t.Fatalf("epoch = %d, want 0 (no lifecycle ops ran)", st.LifecycleEpoch)
	}
}

// The lifecycle differential gate (acceptance criterion): under live
// churn of one property and a quota-tripping tenant, every stable
// property's verdicts on the sharded engine are byte-identical to a
// static inline engine's on the same stream.
func TestLifecycleDifferential(t *testing.T) {
	stable := catalogProp(t, "firewall-basic")
	churn := catalogProp(t, "firewall-until-close")
	noisy := tenantClone(t, "firewall-basic", "fw-noisy", "noisy")
	evs := superviseStream(120, 3)
	third := len(evs) / 3

	// Static inline reference: all three properties, no quotas, no churn.
	inlineViols := map[string][]string{}
	refSched := sim.NewScheduler()
	mi := NewMonitor(refSched, Config{OnViolation: func(v *Violation) {
		inlineViols[v.Property] = append(inlineViols[v.Property], v.String())
	}})
	for _, p := range []*property.Property{stable, churn, noisy} {
		q := *p
		if err := mi.AddProperty(&q); err != nil {
			t.Fatal(err)
		}
	}
	for i := range evs {
		if evs[i].Time.After(refSched.Now()) {
			refSched.RunUntil(evs[i].Time)
		}
		mi.HandleEvent(evs[i])
	}
	refSched.RunFor(time.Hour)

	// Sharded engine under churn + quota.
	var mu sync.Mutex
	shardedViols := map[string][]string{}
	sm := NewShardedMonitor(4, Config{
		OnViolation: func(v *Violation) {
			mu.Lock()
			shardedViols[v.Property] = append(shardedViols[v.Property], v.String())
			mu.Unlock()
		},
		TenantQuotas: map[string]TenantQuota{"noisy": {MaxInstances: 2}},
	})
	defer sm.Close()
	for _, p := range []*property.Property{stable, churn, noisy} {
		if err := sm.AddProperty(p); err != nil {
			t.Fatal(err)
		}
	}

	feed := func(from, to int) {
		for i := from; i < to; i++ {
			if err := sm.Submit(evs[i]); err != nil {
				t.Fatal(err)
			}
			sm.Tick(evs[i].Time)
		}
	}
	feed(0, third)
	if err := sm.RemoveProperty(churn.Name); err != nil {
		t.Fatal(err)
	}
	feed(third, 2*third)
	if err := sm.InstallProperty(catalogProp(t, "firewall-until-close")); err != nil {
		t.Fatal(err)
	}
	feed(2*third, len(evs))
	sm.AdvanceTo(evs[len(evs)-1].Time.Add(time.Hour))

	if got := sm.Epoch(); got != 2 {
		t.Fatalf("lifecycle epoch = %d, want 2 (one remove + one install)", got)
	}

	// The stable untenanted property: byte-identical verdicts.
	mu.Lock()
	defer mu.Unlock()
	want := append([]string(nil), inlineViols[stable.Name]...)
	got := append([]string(nil), shardedViols[stable.Name]...)
	sort.Strings(want)
	sort.Strings(got)
	if len(want) == 0 {
		t.Fatal("reference found no stable-property violations; the gate is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("stable property: sharded %d violations, inline %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stable property verdict %d differs under churn\nsharded: %s\ninline:  %s", i, got[i], want[i])
		}
	}

	// Non-vacuity of the disturbances: the churned property carries a
	// reinstalled mark, the noisy tenant a quota mark — and neither mark
	// touches the stable property.
	reasons := map[string]UnsoundReason{}
	for _, m := range sm.Ledger().Snapshot() {
		reasons[m.Property] = m.Reason
		if m.Property == stable.Name {
			t.Fatalf("stable property marked unsound: %+v", m)
		}
	}
	if reasons[churn.Name] != UnsoundReinstalled {
		t.Fatalf("churned property mark = %v, want reinstalled", reasons[churn.Name])
	}
	if reasons[noisy.Name] != UnsoundQuota {
		t.Fatalf("noisy property mark = %v, want quota", reasons[noisy.Name])
	}
	// The churned property lost its mid-stream window: fewer verdicts
	// than the always-installed reference.
	if len(shardedViols[churn.Name]) >= len(inlineViols[churn.Name]) {
		t.Fatalf("churned property lost nothing (sharded=%d inline=%d); the churn was a no-op",
			len(shardedViols[churn.Name]), len(inlineViols[churn.Name]))
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatalf("post-churn invariants: %v", err)
	}
}
