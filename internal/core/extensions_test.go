package core

import (
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// --- Counting stages (quantitative extension) -------------------------------

func TestPortScanCountingDistinct(t *testing.T) {
	h := newHarness(t, Config{Provenance: ProvLimited}, catalogProp(t, "portscan-detect"))
	// 9 distinct ports: under threshold.
	for port := uint16(100); port < 109; port++ {
		h.forward(packet.NewTCP(macA, macB, ipA, ipB, 40000, port, packet.FlagSYN, nil), 1, 2)
	}
	h.wantViolations(0)
	// Repeats of already-seen ports must not count.
	for i := 0; i < 20; i++ {
		h.forward(packet.NewTCP(macA, macB, ipA, ipB, 40000, 100, packet.FlagSYN, nil), 1, 2)
	}
	h.wantViolations(0)
	// The 10th distinct port trips the detector.
	h.forward(packet.NewTCP(macA, macB, ipA, ipB, 40000, 109, packet.FlagSYN, nil), 1, 2)
	h.wantViolations(1)
	if h.viols[0].Bindings["H"] != packet.Num(ipA.Uint64()) {
		t.Fatalf("bindings = %v", h.viols[0].Bindings)
	}
}

func TestPortScanWindowResetsCounts(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "portscan-detect"))
	for port := uint16(100); port < 109; port++ {
		h.forward(packet.NewTCP(macA, macB, ipA, ipB, 40000, port, packet.FlagSYN, nil), 1, 2)
	}
	// Let the 10s window lapse: the instance (and its counts) expire.
	// Nothing refreshes it because no further stage-0 packets arrive in
	// the gap.
	h.advance(11 * time.Second)
	if h.mon.ActiveInstances() != 0 {
		t.Fatalf("instances = %d after window", h.mon.ActiveInstances())
	}
	// A fresh probe starts a fresh count; one more port is NOT the 10th.
	h.forward(packet.NewTCP(macA, macB, ipA, ipB, 40000, 200, packet.FlagSYN, nil), 1, 2)
	h.forward(packet.NewTCP(macA, macB, ipA, ipB, 40000, 201, packet.FlagSYN, nil), 1, 2)
	h.wantViolations(0)
}

func TestHeavyHitterPlainCount(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "heavy-hitter"))
	pkt := packet.NewTCP(macA, macB, ipA, ipB, 40000, 80, packet.FlagACK, nil)
	// Stage 0 consumes the first packet; the counting stage then needs
	// 100 more within a second.
	for i := 0; i < 100; i++ {
		h.forward(pkt, 1, 2)
	}
	h.wantViolations(0) // 1 creator + 99 counted
	h.forward(pkt, 1, 2)
	h.wantViolations(1)
}

func TestHeavyHitterSlowFlowIsFine(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "heavy-hitter"))
	pkt := packet.NewTCP(macA, macB, ipA, ipB, 40000, 80, packet.FlagACK, nil)
	for i := 0; i < 300; i++ {
		h.forward(pkt, 1, 2)
		h.advance(20 * time.Millisecond) // 50 pkt/s: under the rate
	}
	h.wantViolations(0)
}

func TestCountingStageKeepsPerInstanceCounts(t *testing.T) {
	// Two scanners: each needs its own distinct-port count.
	h := newHarness(t, Config{Provenance: ProvLimited}, catalogProp(t, "portscan-detect"))
	scan := func(src packet.IPv4, port uint16) {
		h.forward(packet.NewTCP(macA, macB, src, ipB, 40000, port, packet.FlagSYN, nil), 1, 2)
	}
	for port := uint16(100); port < 105; port++ {
		scan(ipA, port)
		scan(ipC, port)
	}
	h.wantViolations(0)
	for port := uint16(105); port < 111; port++ {
		scan(ipA, port) // only A crosses the threshold
	}
	h.wantViolations(1)
	if h.viols[0].Bindings["H"] != packet.Num(ipA.Uint64()) {
		t.Fatalf("wrong scanner flagged: %v", h.viols[0].Bindings)
	}
}

func TestCountingValidation(t *testing.T) {
	mk := func(mod func(*property.Stage)) error {
		p := &property.Property{Name: "c", Stages: []property.Stage{
			{Label: "a", SamePacketAs: -1, Binds: []property.Binding{{Var: "A", Field: packet.FieldIPSrc}}},
			{Label: "b", SamePacketAs: -1, MinCount: 5,
				Preds: []property.Pred{property.EqVar(packet.FieldIPSrc, "A")}},
		}}
		mod(&p.Stages[1])
		return p.Validate()
	}
	if err := mk(func(s *property.Stage) {}); err != nil {
		t.Fatalf("valid counting stage rejected: %v", err)
	}
	if err := mk(func(s *property.Stage) { s.MinCount = -1 }); err == nil {
		t.Error("negative MinCount accepted")
	}
	if err := mk(func(s *property.Stage) { s.Negative = true; s.Window = time.Second }); err == nil {
		t.Error("negative counting stage accepted")
	}
	if err := mk(func(s *property.Stage) { s.MinCount = 1; s.CountDistinct = packet.FieldDstPort }); err == nil {
		t.Error("CountDistinct without MinCount>1 accepted")
	}
	if err := mk(func(s *property.Stage) { s.CountDistinct = packet.Field(9999) }); err == nil {
		t.Error("CountDistinct on bad field accepted")
	}
	if err := mk(func(s *property.Stage) {
		s.Binds = []property.Binding{{Var: "X", Field: packet.FieldIPDst}}
	}); err == nil {
		t.Error("counting stage with binds accepted")
	}
}

// --- MaxInstances eviction ------------------------------------------------------

func TestMaxInstancesEvictsOldest(t *testing.T) {
	h := newHarness(t, Config{MaxInstances: 5}, catalogProp(t, "firewall-basic"))
	for i := 0; i < 8; i++ {
		src := packet.IPv4FromUint32(0x0a000000 + uint32(i))
		p := packet.NewTCP(macA, macB, src, ipB, uint16(1000+i), 80, packet.FlagSYN, nil)
		h.forward(p, 1, 2)
	}
	if got := h.mon.ActiveInstances(); got != 5 {
		t.Fatalf("instances = %d, want 5 (capped)", got)
	}
	if h.mon.Stats().Evicted != 3 {
		t.Fatalf("evicted = %d, want 3", h.mon.Stats().Evicted)
	}
	// The oldest (flow 0..2) were evicted: their violations are lost...
	ret0 := packet.NewTCP(macB, macA, ipB, packet.IPv4FromUint32(0x0a000000), 80, 1000, packet.FlagACK, nil)
	h.forwardDropped(ret0, 2)
	h.wantViolations(0)
	// ...while the youngest still alerts.
	ret7 := packet.NewTCP(macB, macA, ipB, packet.IPv4FromUint32(0x0a000007), 80, 1007, packet.FlagACK, nil)
	h.forwardDropped(ret7, 2)
	h.wantViolations(1)
}

func TestMaxInstancesStaleQueueEntries(t *testing.T) {
	// Instances that complete before the cap bites must not confuse the
	// eviction queue.
	h := newHarness(t, Config{MaxInstances: 2}, catalogProp(t, "firewall-basic"))
	mk := func(i int) (*packet.Packet, *packet.Packet) {
		src := packet.IPv4FromUint32(0x0a000000 + uint32(i))
		out := packet.NewTCP(macA, macB, src, ipB, uint16(1000+i), 80, packet.FlagSYN, nil)
		ret := packet.NewTCP(macB, macA, ipB, src, 80, uint16(1000+i), packet.FlagACK, nil)
		return out, ret
	}
	// Flow 0 opens and violates immediately (instance consumed).
	out0, ret0 := mk(0)
	h.forward(out0, 1, 2)
	h.forwardDropped(ret0, 2)
	h.wantViolations(1)
	// Two more flows fill the cap; a third evicts flow 1, not the dead
	// flow-0 entry twice.
	for i := 1; i <= 3; i++ {
		out, _ := mk(i)
		h.forward(out, 1, 2)
	}
	if got := h.mon.ActiveInstances(); got != 2 {
		t.Fatalf("instances = %d, want 2", got)
	}
	if h.mon.Stats().Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", h.mon.Stats().Evicted)
	}
	_, ret2 := mk(2)
	h.forwardDropped(ret2, 2)
	h.wantViolations(2) // flow 2 still live
}

func TestUnboundedByDefault(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	for i := 0; i < 100; i++ {
		src := packet.IPv4FromUint32(0x0a000000 + uint32(i))
		h.forward(packet.NewTCP(macA, macB, src, ipB, uint16(1000+i), 80, packet.FlagSYN, nil), 1, 2)
	}
	if got := h.mon.ActiveInstances(); got != 100 {
		t.Fatalf("instances = %d, want 100", got)
	}
	if h.mon.Stats().Evicted != 0 {
		t.Fatal("evictions without a cap")
	}
}

// --- Disjunctive-group indexing ---------------------------------------------

func TestAnyOfGroupIndexingMatchesBothDirections(t *testing.T) {
	// lb-sticky's final stage keys live inside AnyOf alternatives (one
	// group per direction). With many instances live, both directions
	// must still be found via the per-group indexes.
	h := newHarness(t, Config{Provenance: ProvLimited}, catalogProp(t, "lb-sticky"))
	// 50 background flows, each assigned consistently to port 10.
	for i := 0; i < 50; i++ {
		src := packet.IPv4FromUint32(0x0a000100 + uint32(i))
		syn := packet.NewTCP(macA, macB, src, ipB, uint16(20000+i), 80, packet.FlagSYN, nil)
		id := h.arrival(syn, 1)
		h.egress(id, syn, 1, 10)
	}
	// The flow of interest: assigned to port 10, client at in_port 1.
	syn := packet.NewTCP(macA, macB, ipA, ipB, 31000, 80, packet.FlagSYN, nil)
	id := h.arrival(syn, 1)
	h.egress(id, syn, 1, 10)
	// Forward packet moved to port 11: forward-direction group violation.
	fwd := packet.NewTCP(macA, macB, ipA, ipB, 31000, 80, packet.FlagACK, nil)
	h.forward(fwd, 1, 11)
	h.wantViolations(1)

	// Fresh flow for the reverse direction: return traffic must exit the
	// client's ingress port (1); exiting elsewhere violates via the
	// second AnyOf group.
	syn2 := packet.NewTCP(macA, macB, ipC, ipB, 32000, 80, packet.FlagSYN, nil)
	id2 := h.arrival(syn2, 1)
	h.egress(id2, syn2, 1, 10)
	ret := packet.NewTCP(macB, macA, ipB, ipC, 80, 32000, packet.FlagACK, nil)
	h.forward(ret, 10, 3) // should have gone to port 1
	h.wantViolations(2)
}

func TestAnyOfGroupIndexDoesNotCrossMatch(t *testing.T) {
	// An egress matching neither group's key set must not advance the
	// instance, even with indexes in play.
	h := newHarness(t, Config{}, catalogProp(t, "lb-sticky"))
	syn := packet.NewTCP(macA, macB, ipA, ipB, 31000, 80, packet.FlagSYN, nil)
	id := h.arrival(syn, 1)
	h.egress(id, syn, 1, 10)
	// Unrelated flow egressing a random port: no violation.
	other := packet.NewTCP(macA, macB, ipC, ipB, 31001, 80, packet.FlagACK, nil)
	h.forward(other, 1, 12)
	h.wantViolations(0)
}
