package core

import "fmt"

// SelfCheck verifies the engine's internal invariants: every live
// instance is consistently filed across the primary store, the signature
// map, and each of its index keys; indexes hold no ghosts; and the live
// counter matches reality. Tests call it after workloads; it is cheap
// enough to run in differential tests but not called on the hot path.
func (m *Monitor) SelfCheck() error {
	filed := 0
	for pi, bs := range m.buckets {
		for si, b := range bs {
			where := fmt.Sprintf("property %d stage %d", pi, si)
			for id, inst := range b.all {
				if inst.id != id {
					return fmt.Errorf("core: %s: instance filed under wrong id %d", where, id)
				}
				if !inst.filed {
					return fmt.Errorf("core: %s: instance %d in store but not marked filed", where, id)
				}
				if inst.stage != si {
					return fmt.Errorf("core: %s: instance %d thinks it is at stage %d", where, id, inst.stage)
				}
				if inst.sig == 0 {
					return fmt.Errorf("core: %s: instance %d has no signature", where, id)
				}
				if got := b.bySig[inst.sig]; got != inst {
					return fmt.Errorf("core: %s: signature map does not point back to instance %d", where, id)
				}
				for _, key := range inst.idxKeys {
					sub := b.keyed[key]
					if sub == nil || sub[id] != inst {
						return fmt.Errorf("core: %s: instance %d missing from index key %#x", where, id, key)
					}
				}
				filed++
			}
			for sig, inst := range b.bySig {
				if b.all[inst.id] != inst {
					return fmt.Errorf("core: %s: ghost signature %#x", where, sig)
				}
			}
			for key, sub := range b.keyed {
				if len(sub) == 0 {
					return fmt.Errorf("core: %s: empty index bucket %#x not reclaimed", where, key)
				}
				for id, inst := range sub {
					if b.all[id] != inst {
						return fmt.Errorf("core: %s: ghost instance %d under index key %#x", where, id, key)
					}
				}
			}
		}
	}
	if filed != m.live {
		return fmt.Errorf("core: live counter %d != filed instances %d", m.live, filed)
	}
	return nil
}
