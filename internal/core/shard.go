package core

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/obs/statesize"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// shardBatchSize is how many routed events accumulate per shard before
// the batch is handed to the shard's goroutine. Larger batches amortize
// channel synchronization; Barrier and Drain flush partial batches.
const shardBatchSize = 64

// defaultShardQueueLen is the per-shard queue bound, in batches, when
// Config.ShardQueueLen is zero.
const defaultShardQueueLen = 64

// maxShardedProperties bounds the property count of a ShardedMonitor:
// routing masks are single 64-bit words.
const maxShardedProperties = 64

// ErrClosed is returned by Submit and SubmitBatch after Close. Before
// the robustness work a post-Close Submit panicked on a closed channel;
// now it refuses cleanly.
var ErrClosed = errors.New("core: ShardedMonitor is closed")

// ShedPolicy decides what a full shard queue does to the batch being
// flushed. Blocking preserves exact semantics at the cost of router
// stalls; the shedding policies bound router latency and record the
// loss in the soundness Ledger instead of hiding it.
type ShedPolicy uint8

// Shed policies.
const (
	// ShedBlock stalls the router until the shard drains (the default,
	// and the only policy that never loses events).
	ShedBlock ShedPolicy = iota
	// ShedDropNewest sheds the batch being flushed.
	ShedDropNewest
	// ShedDropOldest sheds the oldest queued batch to make room.
	ShedDropOldest
)

// String names the policy.
func (p ShedPolicy) String() string {
	switch p {
	case ShedBlock:
		return "block"
	case ShedDropNewest:
		return "drop-newest"
	case ShedDropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("ShedPolicy(%d)", uint8(p))
	}
}

// shardMsg is one event routed to one shard, with per-property bits
// saying what the shard may do with it: matchMask bits permit advancing,
// discharging, and suppression seeding at stages >= 1; createMask bits
// permit stage-zero instance creation. The split matters because an
// event's stage-zero identity hash and its later-stage route hashes can
// land on different shards — only the creation shard may instantiate, or
// the same flow would be born twice.
//
// Two delivery forms share the struct: a copied event lives in ev
// (ref nil); a borrowed event (SubmitBatch with a release callback)
// is referenced as &ref.events[idx] with ev left zero — no per-shard
// copy. Resolve with shardMsg.event.
type shardMsg struct {
	ev         Event
	ref        *batchRef
	idx        int32
	matchMask  uint64
	createMask uint64
	// tq, when non-nil, is the tenant queue this message is charged
	// against: the router incremented its pending count at route time and
	// whoever consumes the message — the worker after applying it, or
	// shed() — must decrement it exactly once. A pointer (not a mask)
	// so the charge survives property-slot reuse across lifecycle ops.
	tq *tenantQueue
}

// event resolves the message's event: the inline copy, or the borrowed
// slab entry.
func (m *shardMsg) event() *Event {
	if m.ref != nil {
		return &m.ref.events[m.idx]
	}
	return &m.ev
}

// batchRef tracks one borrowed event slab through shard dispatch. refs
// counts outstanding holds — one per delivered shardMsg, plus the
// router's own hold while routing — and release fires exactly once,
// when the count hits zero: only after the last shard has applied (or
// shed) its references may the arena behind events be recycled.
// Workers only read the borrowed events (concurrent shards may share
// one event; span stamps are write-once CAS), so no lock is needed
// beyond the atomic count.
type batchRef struct {
	events  []Event
	release func()
	refs    atomic.Int32
}

// batchRefPool recycles batchRef headers so a borrowed submit costs no
// allocation beyond the caller's own arena machinery.
var batchRefPool = sync.Pool{New: func() any { return new(batchRef) }}

// unref drops one hold; the last hold runs the release callback and
// recycles the header.
func (r *batchRef) unref() {
	if r.refs.Add(-1) != 0 {
		return
	}
	rel := r.release
	r.events, r.release = nil, nil
	batchRefPool.Put(r)
	if rel != nil {
		rel()
	}
}

// shardCtl is one unit of work on a shard's queue: an event batch, an
// optional virtual-clock advance, an optional barrier acknowledgment,
// and an optional stop order (Close's shutdown token, which replaced
// closing the channel so a late Submit can fail softly instead of
// panicking).
type shardCtl struct {
	batch    []shardMsg
	runUntil time.Time
	ack      *sync.WaitGroup
	stop     bool
	// apply, when non-nil, runs on the worker goroutine against the
	// shard's Monitor after the batch (if any) — the lifecycle fence:
	// because the queue is FIFO, events routed before the fence see the
	// old property set and events routed after see the new one.
	apply func(*Monitor)
}

// tenantQueue is the router-side queue-share account for one quota'd
// tenant: pending counts the tenant's shard-queue messages in flight
// (routed but not yet applied or shed). When pending reaches max the
// router stops delivering the tenant's properties — shedding only that
// tenant's events, marked UnsoundQuota in the ledger — so one tenant's
// pathological property cannot starve the shared shard queues.
type tenantQueue struct {
	name    string
	max     int64
	pending atomic.Int64
	cell    *statesize.TenantCell
}

// shard is one partition: a single-threaded Monitor with its own
// deterministic scheduler, fed in FIFO order by its own goroutine.
// pending is the router-side batch under construction (router-owned).
type shard struct {
	idx     int
	sched   *sim.Scheduler
	mon     *Monitor
	ch      chan shardCtl
	pending []shardMsg
	// depth is the shard's queue-depth gauge (batches waiting on ch),
	// refreshed at every flush; nil without telemetry.
	depth *obs.Gauge
}

// ShardedMonitor scales the single-threaded Monitor across cores: N
// shards each own a disjoint identity-hash partition of the instance
// population and run on their own goroutine over a buffered event queue.
// The router (Submit) computes, per property, which shards an event can
// possibly affect — using the compile-time shardPlan — and delivers it
// only there. Properties whose addressing paths do not pin a stable
// stage-zero identity (wandering identities, packet-identity stages,
// scan stages or guards) are monitored entirely on the catch-all shard 0,
// preserving exact single-engine semantics at the cost of parallelism.
//
// The router side (Submit, SubmitBatch, Barrier, AdvanceTo, Drain, Close,
// and the aggregate accessors) is serialized by an internal mutex, so
// Close is safe to call concurrently with Submit (Submit returns
// ErrClosed afterwards); for deterministic event ordering the router
// should still be driven from one goroutine. The shards run concurrently
// underneath. Shard goroutines start lazily on the first Submit, so
// constructing a ShardedMonitor (for capability probing, say) spawns
// nothing.
//
// Shard goroutines are supervised: a panic inside a property's step is
// recovered, the offending property is quarantined engine-wide (its
// routing bit is cleared and its live instances are purged on every
// shard), the quarantine is recorded in the soundness Ledger, and the
// shard keeps draining its queue — every other property keeps
// monitoring. Config.DisableSupervision restores the old crash-the-
// process behavior for regression demonstration.
//
// Config caveats: Mode and SplitFlushLimit are ignored — shards always
// apply events inline, the per-shard queues being the split (bounded by
// ShardQueueLen with ShedPolicy deciding overflow behavior).
// MaxInstances applies per shard, not globally. DisableIndex disables
// the routing analysis too (all properties become catch-all), since
// routing is derived from the same index paths. Violation callbacks are
// serialized by an internal mutex but arrive in nondeterministic
// cross-shard order; order-sensitive consumers should compare multisets.
type ShardedMonitor struct {
	cfg    Config
	shards []*shard
	plans  []shardPlan
	// names are the installed property names by index (for ledger marks).
	names     []string
	submitted uint64
	// matchScratch/createScratch are the per-event, per-shard routing
	// mask accumulators (router-owned, zeroed after each event).
	matchScratch  []uint64
	createScratch []uint64
	// freeBatches recycles processed batch slices from workers back to
	// the router without a lock on the fast path.
	freeBatches chan []shardMsg
	// smx holds the router-side telemetry handles (nil when Config.
	// Metrics is nil); hasCatchall notes whether any installed property
	// fell back to shard 0, the numerator of the catch-all ratio.
	smx         *shardedMetrics
	hasCatchall bool
	// ledger is the engine-wide soundness record, shared with every
	// shard's Monitor.
	ledger *Ledger
	// state is the engine-wide state-cost accounting store, shared with
	// every shard's Monitor the same way (nil when accounting is
	// disabled). Each shard updates its own cell, so the hot path never
	// contends; StateReport reads it live, without a barrier.
	state *statesize.Tracker
	// quarMask is the engine-wide quarantine bitmask: set by whichever
	// shard recovers the panic, read by the router (to stop routing) and
	// by every worker (to purge its local instances). The only cross-
	// goroutine monitor state, hence atomic.
	quarMask atomic.Uint64
	violMu   sync.Mutex
	// epoch counts live property-set changes (install/remove after the
	// first Submit). Readable without the router lock — /healthz and
	// /state poll it while the engine runs.
	epoch atomic.Uint64
	// lastTick is the high-water virtual time the router has told the
	// shards about (Tick/AdvanceTo), used as the install-point watermark
	// for live installs. Router-owned.
	lastTick time.Time
	// quotaByName maps a tenant name to its queue-share accounting; built
	// once at construction from Config.TenantQuotas (MaxQueued > 0).
	// tenantOf[pi] is the routing-time lookup: the quota'd tenant owning
	// property slot pi, nil for unquotaed slots. quotaBits is the union of
	// owned slots' bits, a fast-path gate. All router-owned except the
	// queues' atomic pending counters.
	quotaByName map[string]*tenantQueue
	tenantOf    [maxShardedProperties]*tenantQueue
	quotaBits   uint64
	// barrierWG is the reusable ack group for barrier-family operations
	// (Barrier, AdvanceTo, Drain, Stats). A field rather than a local:
	// a local WaitGroup escapes through the shardCtl channel send and
	// costs one heap allocation per barrier. Guarded by routerMu.
	barrierWG sync.WaitGroup

	// routerMu serializes the router-side entry points so Close is safe
	// against a racing Submit.
	routerMu  sync.Mutex
	startOnce sync.Once
	started   bool
	closed    bool
	wg        sync.WaitGroup
}

// NewShardedMonitor creates a sharded monitor with the given number of
// shards (clamped to at least 1). See the type comment for the Config
// fields that change meaning under sharding.
func NewShardedMonitor(shards int, cfg Config) *ShardedMonitor {
	if shards < 1 {
		shards = 1
	}
	qlen := cfg.ShardQueueLen
	if qlen <= 0 {
		qlen = defaultShardQueueLen
	}
	sm := &ShardedMonitor{
		cfg:           cfg,
		matchScratch:  make([]uint64, shards),
		createScratch: make([]uint64, shards),
		// Sized so recycling is lossless: the total batch-buffer
		// population is bounded by qlen queued + router-pending + in-
		// worker per shard, so a worker's Put always finds room and the
		// steady state allocates no new buffers.
		freeBatches: make(chan []shardMsg, shards*(qlen+2)),
		ledger:      newLedger(),
	}
	sm.ledger.instrument(cfg.Metrics, cfg.MetricsLabels)
	if cfg.Metrics != nil {
		sm.smx = newShardedMetrics(cfg.Metrics, cfg.MetricsLabels)
	}
	if !cfg.DisableStateAccounting || len(cfg.TenantQuotas) > 0 {
		// Per-property accounting series deliberately carry no shard
		// label (like propMetrics), so the tracker gets the engine-level
		// labels only. Tenant quotas need the tracker's tenant cells, so
		// they force it on.
		sm.state = statesize.NewTracker(statesize.Config{
			Shards:    shards,
			TopK:      cfg.StateTopK,
			SampleN:   cfg.StateSample,
			Watermark: cfg.StateWatermark,
			Metrics:   cfg.Metrics,
			Labels:    cfg.MetricsLabels,
		})
	}
	if len(cfg.TenantQuotas) > 0 {
		sm.quotaByName = make(map[string]*tenantQueue, len(cfg.TenantQuotas))
		for name, q := range cfg.TenantQuotas {
			if q.MaxQueued > 0 {
				sm.quotaByName[name] = &tenantQueue{name: name, max: q.MaxQueued, cell: sm.state.Tenant(name)}
			}
		}
	}
	shardCfg := cfg
	shardCfg.Mode = Inline
	shardCfg.SplitFlushLimit = 0
	if cfg.OnViolation != nil {
		user := cfg.OnViolation
		shardCfg.OnViolation = func(v *Violation) {
			sm.violMu.Lock()
			defer sm.violMu.Unlock()
			user(v)
		}
	}
	for i := 0; i < shards; i++ {
		sched := sim.NewScheduler()
		s := &shard{
			idx:   i,
			sched: sched,
			ch:    make(chan shardCtl, qlen),
		}
		cfgI := shardCfg
		if cfg.Metrics != nil {
			// Engine-level series get a shard label; the per-property
			// counters omit it (see propMetrics), so all shards share
			// one aggregated series per property.
			lbl := obs.L("shard", strconv.Itoa(i))
			cfgI.MetricsLabels = append(append([]obs.Label(nil), cfg.MetricsLabels...), lbl)
			s.depth = cfg.Metrics.Gauge("switchmon_shard_queue_depth",
				"Batches queued on the shard's channel at the last flush.",
				cfgI.MetricsLabels...)
		}
		s.mon = newMonitorWithLedger(sched, cfgI, sm.ledger, sm.state, i)
		sm.shards = append(sm.shards, s)
	}
	return sm
}

// Shards reports the shard count.
func (sm *ShardedMonitor) Shards() int { return len(sm.shards) }

// Ledger returns the engine-wide soundness ledger. Safe to read from any
// goroutine without a barrier — it is what /healthz polls live.
func (sm *ShardedMonitor) Ledger() *Ledger { return sm.ledger }

// StateReport snapshots the engine's state-cost accounting (per
// property, per shard, with heavy-hitter keys) and cross-references each
// property against quarantine and the soundness ledger. Deliberately
// barrier-free — it is what /state polls while shards run — so totals
// are per-field consistent, not a frozen transaction; exact agreement
// with ActiveInstances holds once the engine quiesces.
func (sm *ShardedMonitor) StateReport() statesize.Report {
	r := sm.state.Report()
	annotateReport(&r, sm.quarMask.Load(), sm.ledger)
	return r
}

// AddProperty compiles and installs a property on every shard. Kept as
// the historical name; since the lifecycle work it is InstallProperty
// and works on a live engine too.
func (sm *ShardedMonitor) AddProperty(p *property.Property) error {
	return sm.InstallProperty(p)
}

// InstallProperty compiles and installs a property on every shard,
// before or after the first Submit. A live install is epoch-fenced:
// the install order rides every shard's FIFO queue, so each in-flight
// event observes one consistent property set — either entirely before
// or entirely after the install — and routing for the new property only
// opens once every shard has acknowledged it. The install point (seq +
// virtual time) is recorded in the ledger; loss marks that predate it
// do not make the new property unsound.
func (sm *ShardedMonitor) InstallProperty(p *property.Property) error {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	if sm.closed {
		return ErrClosed
	}
	return sm.installLocked(p)
}

func (sm *ShardedMonitor) installLocked(p *property.Property) error {
	for _, n := range sm.names {
		if n == p.Name {
			return fmt.Errorf("core: property %q already installed", p.Name)
		}
	}
	cp, err := compile(p) // validate router-side before touching any shard
	if err != nil {
		return err
	}
	plan := cp.plan
	if sm.cfg.DisableIndex {
		// Routing is derived from the index paths; without them every
		// property is catch-all.
		plan = shardPlan{}
	}
	// Reserve a slot: the first tombstone, else append. Shard monitors
	// pick their slot independently (installLocal takes the first nil
	// props entry) but necessarily agree with the router: every lifecycle
	// op is applied to all shards through the same fenced sequence, so
	// router tombstones and shard tombstones coincide.
	idx := -1
	for i, n := range sm.names {
		if n == "" {
			idx = i
			break
		}
	}
	if idx < 0 {
		if len(sm.names) >= maxShardedProperties {
			return fmt.Errorf("core: ShardedMonitor supports at most %d properties", maxShardedProperties)
		}
		idx = len(sm.names)
		sm.names = append(sm.names, "")
		sm.plans = append(sm.plans, shardPlan{})
	}
	if sm.started {
		sm.fenceApply(func(m *Monitor) { _, _ = m.installLocal(p) })
	} else {
		for _, s := range sm.shards {
			if _, err := s.mon.installLocal(p); err != nil {
				return err
			}
		}
	}
	// Only now — with the property resident on every shard — open routing.
	sm.plans[idx] = plan
	sm.names[idx] = p.Name
	if !plan.shardable {
		sm.hasCatchall = true
	}
	if tq := sm.quotaByName[p.Tenant]; tq != nil {
		sm.tenantOf[idx] = tq
		sm.quotaBits |= uint64(1) << uint(idx)
	}
	at := time.Time{}
	if sm.started && sm.submitted > 0 {
		// A live install gets the router's clock high-water mark as its
		// soundness watermark; bootstrap installs keep the zero time so
		// they are accountable for the whole run.
		at = sm.lastTick
		sm.epoch.Add(1)
	}
	sm.ledger.RecordInstall(p.Name, p.Tenant, sm.epoch.Load(), sm.submitted, at)
	return nil
}

// RemoveProperty removes a property from every shard, live. Routing is
// closed first, then a fence rides every shard's FIFO queue purging the
// property's instances, pooled state, and pending timers — events
// already in flight still apply to it before the fence; nothing after
// does. The slot (and its routing bit) is reusable by a later install;
// the ledger keeps the property's marks and records the removal.
func (sm *ShardedMonitor) RemoveProperty(name string) error {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	if sm.closed {
		return ErrClosed
	}
	return sm.removeLocked(name)
}

func (sm *ShardedMonitor) removeLocked(name string) error {
	idx := -1
	for i, n := range sm.names {
		if n == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: property %q not installed", name)
	}
	bit := uint64(1) << uint(idx)
	// Close routing before anything else: no new deliveries carry the bit.
	sm.names[idx] = ""
	sm.plans[idx] = shardPlan{}
	sm.hasCatchall = false
	for i := range sm.plans {
		if sm.names[i] != "" && !sm.plans[i].shardable {
			sm.hasCatchall = true
			break
		}
	}
	if tq := sm.tenantOf[idx]; tq != nil {
		sm.tenantOf[idx] = nil
		sm.quotaBits &^= bit
	}
	// Clear the engine-wide quarantine bit before the fence so no worker
	// re-adopts it onto the (about to be freed) slot, and again after —
	// a shard may still publish a quarantine for the property while
	// draining its pre-fence queue.
	sm.clearQuarBit(bit)
	if sm.started {
		sm.fenceApply(func(m *Monitor) { m.removeLocal(idx, false) })
	} else {
		for _, s := range sm.shards {
			s.mon.removeLocal(idx, false)
		}
	}
	sm.clearQuarBit(bit)
	// Retire the shared tracker slot exactly once, after every shard has
	// stopped touching it.
	sm.state.Uninstall(idx)
	if sm.started && sm.submitted > 0 {
		sm.epoch.Add(1)
	}
	sm.ledger.RecordRemove(name)
	return nil
}

// ReplaceProperty atomically (from the event stream's point of view)
// swaps the named property for a new compilation: remove + install under
// one router critical section. The ledger marks the property reinstalled
// — verdicts are sound from the new install point only.
func (sm *ShardedMonitor) ReplaceProperty(p *property.Property) error {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	if sm.closed {
		return ErrClosed
	}
	for _, n := range sm.names {
		if n == p.Name {
			if err := sm.removeLocked(p.Name); err != nil {
				return err
			}
			break
		}
	}
	return sm.installLocked(p)
}

// Epoch reports the live property-set generation — bumped by every
// install or remove after the first Submit. Safe from any goroutine.
func (sm *ShardedMonitor) Epoch() uint64 { return sm.epoch.Load() }

// Properties lists the currently installed property names (tombstoned
// slots omitted), in slot order.
func (sm *ShardedMonitor) Properties() []string {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	out := make([]string, 0, len(sm.names))
	for _, n := range sm.names {
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

// fenceApply pushes fn through every shard's FIFO queue and waits for
// all shards to execute it: events routed before the fence are applied
// before fn runs, events routed after it see its effects. Caller holds
// routerMu with the engine started.
func (sm *ShardedMonitor) fenceApply(fn func(*Monitor)) {
	sm.barrierWG.Add(len(sm.shards))
	for _, s := range sm.shards {
		sm.flushShard(s)
		s.ch <- shardCtl{apply: fn, ack: &sm.barrierWG}
	}
	sm.barrierWG.Wait()
}

// clearQuarBit clears one property's engine-wide quarantine bit (CAS
// loop; the mask is contended by recovering shards).
func (sm *ShardedMonitor) clearQuarBit(bit uint64) {
	for {
		old := sm.quarMask.Load()
		if old&bit == 0 {
			return
		}
		if sm.quarMask.CompareAndSwap(old, old&^bit) {
			return
		}
	}
}

// Shardable reports whether the i-th installed property got a stable
// shard key from the static analysis (false means catch-all shard 0).
func (sm *ShardedMonitor) Shardable(i int) bool { return sm.plans[i].shardable }

// SetShardProbe installs a fault-injection probe on one shard's monitor,
// called at the start of every property step with (propIdx, shard-local
// event seq). A panicking probe exercises the supervision path exactly
// like a bug in the property's step would. Must be called before the
// first Submit.
func (sm *ShardedMonitor) SetShardProbe(shard int, fn func(prop int, seq uint64)) error {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	if sm.started {
		return fmt.Errorf("core: SetShardProbe after first Submit")
	}
	if shard < 0 || shard >= len(sm.shards) {
		return fmt.Errorf("core: SetShardProbe shard %d out of range [0,%d)", shard, len(sm.shards))
	}
	sm.shards[shard].mon.SetStepProbe(fn)
	return nil
}

// start launches the shard goroutines (idempotent).
func (sm *ShardedMonitor) start() {
	sm.startOnce.Do(func() {
		sm.started = true
		sm.wg.Add(len(sm.shards))
		for _, s := range sm.shards {
			go sm.worker(s)
		}
	})
}

// worker drains one shard's queue: applies event batches in FIFO order,
// advances the shard's virtual clock on request, and acknowledges
// barriers. It owns the shard's Monitor exclusively. Under supervision
// (the default) every unit of work is panic-protected: a recovered panic
// quarantines the property it was attributed to and the worker keeps
// going — this is the "restart" in shard supervision, the goroutine
// itself never dies.
func (sm *ShardedMonitor) worker(s *shard) {
	defer sm.wg.Done()
	supervised := !sm.cfg.DisableSupervision
	var onPanic func(prop int, cause any)
	if supervised {
		onPanic = func(prop int, cause any) { sm.quarantine(s, prop, cause) }
	}
	for {
		ctl := <-s.ch
		if supervised {
			// Adopt quarantines published by other shards before touching
			// state: the batch may still carry mask bits for a property
			// another shard just quarantined.
			if q := sm.quarMask.Load(); q&^s.mon.quarantined != 0 {
				s.mon.quarantineLocal(q &^ s.mon.quarantined)
			}
		}
		for i := range ctl.batch {
			msg := &ctl.batch[i]
			ev := msg.event()
			if sp := ev.Trace; sp != nil && sm.cfg.Tracer != nil {
				sp.Stamp(tracer.StageShardDispatch)
			}
			// Run the shard's clock up to the event's time before applying
			// it — the inline driver's RunUntil-then-handle discipline.
			// Without this, an instance armed right after a quiet stretch
			// anchors its window deadline at the stale clock and the
			// post-batch tick expires it before its evidence can arrive.
			// Lagging streams (another switch behind this one) regress in
			// event time and leave the clock untouched.
			if ev.Time.After(s.sched.Now()) {
				if supervised {
					sm.runShardUntil(s, ev.Time)
				} else {
					s.sched.RunUntil(ev.Time)
				}
			}
			if supervised {
				s.mon.applyRoutedSupervised(ev, msg.matchMask, msg.createMask, onPanic)
			} else {
				s.mon.applyRouted(ev, msg.matchMask, msg.createMask)
			}
			if sp := ev.Trace; sp != nil && sm.cfg.Tracer != nil && sp.Release() {
				sp.Stamp(tracer.StageVerdict)
				sm.cfg.Tracer.Finish(sp)
			}
			if msg.ref != nil {
				// This shard's hold on the borrowed slab: the event must
				// not be touched past this point.
				msg.ref.unref()
			}
			if msg.tq != nil {
				// Settle the tenant's queue-share charge taken at route
				// time: the message has been applied.
				msg.tq.pending.Add(-1)
			}
		}
		if ctl.batch != nil {
			select {
			case sm.freeBatches <- ctl.batch[:0]:
			default: // pool full; let the GC have it
			}
		}
		if ctl.apply != nil {
			// Lifecycle fence: mutate this shard's property set at a point
			// totally ordered against the event stream (FIFO queue).
			ctl.apply(s.mon)
		}
		if !ctl.runUntil.IsZero() {
			if supervised {
				sm.runShardUntil(s, ctl.runUntil)
			} else {
				s.sched.RunUntil(ctl.runUntil)
			}
		}
		if ctl.ack != nil {
			ctl.ack.Done()
		}
		if ctl.stop {
			return
		}
	}
}

// runShardUntil is Scheduler.RunUntil under supervision: a panic in a
// timer callback (window expiry, negative-observation advance, a user
// violation callback) is recovered and attributed via Monitor.curProp,
// the property quarantined, and the run resumed — the scheduler pops a
// task before executing it, so the panicking task is consumed and the
// remaining queue is intact. A panic with no attribution is re-raised:
// it did not come from a property step, and masking it would hide an
// engine bug.
func (sm *ShardedMonitor) runShardUntil(s *shard, t time.Time) {
	for {
		done := func() (completed bool) {
			defer func() {
				if r := recover(); r != nil {
					pi := s.mon.curProp
					if pi < 0 {
						panic(r)
					}
					sm.quarantine(s, pi, r)
					completed = false
				}
			}()
			s.mon.curProp = -1
			s.sched.RunUntil(t)
			return true
		}()
		if done {
			return
		}
	}
}

// quarantine publishes property pi's quarantine engine-wide, purges it
// from the recovering shard, and records it in the ledger (first
// publisher only — concurrent recoveries on several shards converge on
// one mark).
func (sm *ShardedMonitor) quarantine(s *shard, pi int, cause any) {
	bit := uint64(1) << uint(pi)
	first := false
	for {
		old := sm.quarMask.Load()
		if old&bit != 0 {
			break
		}
		if sm.quarMask.CompareAndSwap(old, old|bit) {
			first = true
			break
		}
	}
	s.mon.quarantineLocal(bit)
	if first {
		// Read the name from the worker-owned monitor, not sm.names —
		// the router may be mutating the name table for an unrelated
		// lifecycle op right now.
		name := ""
		if cp := s.mon.props[pi]; cp != nil {
			name = cp.prop.Name
		}
		if name != "" {
			sm.ledger.Mark(name, UnsoundQuarantine, s.mon.seq, s.sched.Now(), 0,
				fmt.Sprintf("panic on shard %d: %v", s.idx, cause))
		}
	}
}

// Submit routes one event to the shards it can affect and enqueues it.
// Events that no property can act on are dropped at the router, as are
// routes to quarantined properties. After Close, Submit reports
// ErrClosed instead of enqueueing.
func (sm *ShardedMonitor) Submit(e Event) error {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	return sm.submitLocked(e)
}

func (sm *ShardedMonitor) submitLocked(e Event) error {
	if sm.closed {
		return ErrClosed
	}
	sm.routeLocked(&e, nil, 0)
	return nil
}

// flushPendingLocked hands every shard's partially-filled pending batch
// to its worker. SubmitBatch calls it before releasing the router lock
// so a batch's events are always en route to a worker when the call
// returns: the only other flushes are the shardBatchSize overflow and
// the clock advances, and a stream whose timestamps stall (many events
// sharing one instant) never advances the clock — a wire batch would
// otherwise park here until drain. Single-event Submit deliberately
// keeps the old buffer-until-Tick behavior: its callers pair each
// Submit with a Tick (which flushes), and tests that park workers rely
// on the router absorbing a stream without sealing batches.
func (sm *ShardedMonitor) flushPendingLocked() {
	for _, s := range sm.shards {
		sm.flushShard(s)
	}
}

// routeLocked computes the per-shard routing masks for one event and
// enqueues it: by value when ref is nil, as a (ref, idx) borrow
// otherwise — the borrowed form takes one additional hold on ref per
// delivering shard. Caller holds routerMu and has checked closed.
func (sm *ShardedMonitor) routeLocked(e *Event, ref *batchRef, idx int32) {
	sm.start()
	sm.submitted++
	n := uint64(len(sm.shards))
	quar := sm.quarMask.Load()
	mm, cm := sm.matchScratch, sm.createScratch
	quotaShed := false
	for pi := range sm.plans {
		bit := uint64(1) << uint(pi)
		if quar&bit != 0 {
			continue // quarantined: the property sees no further events
		}
		if sm.names[pi] == "" {
			continue // tombstone: slot freed by RemoveProperty
		}
		if sm.quotaBits&bit != 0 {
			if tq := sm.tenantOf[pi]; tq.pending.Load() >= tq.max {
				// The tenant's queue share is exhausted: shed this
				// delivery for this tenant's property only — other
				// tenants' verdicts stay exact — and account for it.
				tq.cell.Shed(1)
				sm.ledger.Mark(sm.names[pi], UnsoundQuota, sm.submitted, e.Time, 1,
					"tenant queue share exhausted")
				quotaShed = true
				continue
			}
		}
		pl := &sm.plans[pi]
		if !pl.shardable {
			mm[0] |= bit
			cm[0] |= bit
			continue
		}
		for ri := range pl.routes {
			if h, ok := routeHash(e, pl.routes[ri].fields); ok {
				mm[h%n] |= bit
			}
		}
		if h, ok := routeHash(e, pl.createFields); ok {
			cm[h%n] |= bit
		}
	}
	if quotaShed {
		sm.ledger.recordLost(UnsoundQuota, 1)
	}
	if sp := e.Trace; sp != nil && sm.cfg.Tracer != nil {
		// Reference the span once per shard that will see a copy of the
		// event, before any copy is enqueued: a worker may drain and
		// Release its copy while this loop is still appending others, and
		// only the last Release may stamp the verdict. An unroutable
		// event gets no verdict; finish its span now so it still reaches
		// the ring.
		nDeliver := int32(0)
		for si := range sm.shards {
			if mm[si]|cm[si] != 0 {
				nDeliver++
			}
		}
		if nDeliver == 0 {
			sm.cfg.Tracer.Finish(sp)
		} else {
			sp.AddRefs(nDeliver)
		}
	}
	delivered := 0
	for si := range sm.shards {
		if mm[si] == 0 && cm[si] == 0 {
			continue
		}
		s := sm.shards[si]
		msg := shardMsg{matchMask: mm[si], createMask: cm[si]}
		if qb := (mm[si] | cm[si]) & sm.quotaBits; qb != 0 {
			// Charge the delivery to one tenant's queue share: the owner
			// of the lowest quota'd property bit present. One charge per
			// message keeps the accounting exact under slot reuse.
			tq := sm.tenantOf[bits.TrailingZeros64(qb)]
			tq.pending.Add(1)
			msg.tq = tq
		}
		if ref != nil {
			ref.refs.Add(1)
			msg.ref, msg.idx = ref, idx
		} else {
			msg.ev = *e
		}
		s.pending = append(s.pending, msg)
		mm[si], cm[si] = 0, 0
		delivered++
		if len(s.pending) >= shardBatchSize {
			sm.flushShard(s)
		}
	}
	if sm.smx != nil {
		sm.smx.events.Inc()
		sm.smx.deliveries.Add(uint64(delivered))
		if sm.hasCatchall {
			sm.smx.catchall.Inc()
		}
		if delivered == 0 {
			sm.smx.unroutable.Inc()
		}
	}
}

// SubmitBatch routes a slice of events (batched Submit). It stops at the
// first error (only ErrClosed today).
//
// A non-nil release turns the call into a borrow: evs stays owned by
// the caller's arena, shards route index references into it instead of
// copying each event, and release is invoked exactly once — after the
// last shard holding a reference has applied (or shed) it, or
// immediately when nothing needs the batch. Until release fires the
// slice and everything it points to must stay untouched; after it
// fires the arena may be recycled (the engine retains only value
// copies of what it read — see DESIGN.md §5g). With a nil release,
// events are copied into the shard queues and evs is the caller's
// again on return.
func (sm *ShardedMonitor) SubmitBatch(evs []Event, release func()) error {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	if sm.closed {
		if release != nil {
			release()
		}
		return ErrClosed
	}
	if release == nil {
		for i := range evs {
			sm.routeLocked(&evs[i], nil, 0)
		}
		sm.flushPendingLocked()
		return nil
	}
	ref := batchRefPool.Get().(*batchRef)
	ref.events = evs
	ref.release = release
	ref.refs.Store(1) // the router's own hold, dropped below
	for i := range evs {
		sm.routeLocked(&evs[i], ref, int32(i))
	}
	sm.flushPendingLocked()
	ref.unref()
	return nil
}

// flushShard hands the shard's pending batch to its goroutine and grabs a
// recycled batch buffer for the next one. When the shard's queue is full
// the configured ShedPolicy decides: block until the worker drains
// (default), shed this batch, or shed the oldest queued batch — shed
// events are recorded per affected property in the soundness ledger.
func (sm *ShardedMonitor) flushShard(s *shard) {
	if len(s.pending) == 0 {
		return
	}
	if sm.smx != nil {
		sm.smx.batchSize.Observe(uint64(len(s.pending)))
	}
	ctl := shardCtl{batch: s.pending}
	switch sm.cfg.ShedPolicy {
	case ShedDropNewest:
		select {
		case s.ch <- ctl:
		default:
			// Queue full: shed the batch under construction and reuse its
			// backing array for the next one.
			sm.shed(s.pending)
			s.pending = s.pending[:0]
			s.depth.Set(int64(len(s.ch)))
			return
		}
	case ShedDropOldest:
	send:
		for {
			select {
			case s.ch <- ctl:
				break send
			default:
			}
			select {
			case old := <-s.ch:
				// Shed the oldest batch but preserve any control payload
				// it carried: fold its clock advance into ours and forward
				// its barrier ack. (Acks cannot actually be queued here —
				// Barrier holds the router lock until they are consumed —
				// but losing one silently would deadlock a future caller.)
				if old.batch != nil {
					sm.shed(old.batch)
					select {
					case sm.freeBatches <- old.batch[:0]:
					default:
					}
				}
				if old.runUntil.After(ctl.runUntil) {
					ctl.runUntil = old.runUntil
				}
				if old.apply != nil {
					// Lifecycle fences must never be shed. (Like acks they
					// cannot actually be queued here — fenceApply holds the
					// router lock — but losing one would corrupt the
					// property set.)
					if prev := ctl.apply; prev != nil {
						oldApply := old.apply
						ctl.apply = func(m *Monitor) { oldApply(m); prev(m) }
					} else {
						ctl.apply = old.apply
					}
				}
				if old.ack != nil {
					if ctl.ack == nil {
						ctl.ack = old.ack
					} else {
						old.ack.Done()
					}
				}
			default:
				// The worker drained between our probes; retry the send.
			}
		}
	default: // ShedBlock
		s.ch <- ctl
	}
	// len on a channel is a safe (if momentary) read; good enough for a
	// backpressure gauge refreshed once per batch.
	s.depth.Set(int64(len(s.ch)))
	select {
	case b := <-sm.freeBatches:
		s.pending = b
	default:
		s.pending = make([]shardMsg, 0, shardBatchSize)
	}
}

// shed records a dropped batch in the soundness ledger: the aggregate
// shed count once, plus one per-property mark counting how many of the
// batch's events each property would have seen.
func (sm *ShardedMonitor) shed(batch []shardMsg) {
	at := batch[0].event().Time // before any unref can recycle the slab
	var perProp [maxShardedProperties]uint64
	for i := range batch {
		mask := batch[i].matchMask | batch[i].createMask
		for mask != 0 {
			pi := bits.TrailingZeros64(mask)
			mask &= mask - 1
			perProp[pi]++
		}
		if sp := batch[i].event().Trace; sp != nil && sm.cfg.Tracer != nil && sp.Release() {
			// The shed copy was this span's last outstanding reference:
			// no verdict will ever come, so finish it verdict-less.
			sm.cfg.Tracer.Finish(sp)
		}
		if r := batch[i].ref; r != nil {
			// A shed delivery drops its hold too, or the arena would
			// never be released.
			r.unref()
		}
		if tq := batch[i].tq; tq != nil {
			// A shed delivery settles its tenant queue-share charge too.
			tq.pending.Add(-1)
		}
	}
	for pi, c := range perProp {
		if c == 0 || sm.names[pi] == "" {
			// Tombstoned slots can still appear in old masks during a
			// remove; the property is going away — nothing to mark.
			continue
		}
		sm.ledger.Mark(sm.names[pi], UnsoundShed, sm.submitted, at, c, "shard queue overflow shed")
	}
	sm.ledger.recordLost(UnsoundShed, uint64(len(batch)))
}

// Barrier flushes all pending batches and blocks until every shard has
// applied everything submitted before the call. After Barrier (and before
// the next Submit) the aggregate accessors read a consistent snapshot.
func (sm *ShardedMonitor) Barrier() {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	sm.barrierLocked()
}

func (sm *ShardedMonitor) barrierLocked() {
	if sm.closed {
		return
	}
	sm.start()
	sm.barrierWG.Add(len(sm.shards))
	for _, s := range sm.shards {
		sm.flushShard(s)
		s.ch <- shardCtl{ack: &sm.barrierWG}
	}
	sm.barrierWG.Wait()
}

// AdvanceTo advances every shard's virtual clock to t — after applying
// everything already queued — firing due timers (windows, negative-stage
// deadlines). It blocks until all shards reach t, mirroring a
// single-engine driver calling Scheduler.RunUntil.
func (sm *ShardedMonitor) AdvanceTo(t time.Time) {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	if sm.closed {
		return
	}
	sm.start()
	if t.After(sm.lastTick) {
		sm.lastTick = t
	}
	sm.barrierWG.Add(len(sm.shards))
	for _, s := range sm.shards {
		sm.flushShard(s)
		s.ch <- shardCtl{runUntil: t, ack: &sm.barrierWG}
	}
	sm.barrierWG.Wait()
}

// Tick is the non-blocking AdvanceTo: it queues a clock advance to t
// behind everything already submitted and returns without waiting. Event
// sources that stamp monotone times (the backend adapter, replayed
// traces) use it to keep shard clocks tracking the stream without a
// barrier per event.
func (sm *ShardedMonitor) Tick(t time.Time) {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	if sm.closed {
		return
	}
	sm.start()
	if t.After(sm.lastTick) {
		sm.lastTick = t
	}
	for _, s := range sm.shards {
		sm.flushShard(s)
		s.ch <- shardCtl{runUntil: t}
	}
}

// Drain is Barrier plus a report: it returns the total number of events
// applied across shards (>= submitted when events fan out to several
// shards, less when events were unroutable).
func (sm *ShardedMonitor) Drain() uint64 {
	sm.Barrier()
	var n uint64
	for _, s := range sm.shards {
		n += s.mon.stats.events.Load()
	}
	return n
}

// Close flushes, stops all shard goroutines, and waits for them to exit.
// It is idempotent and safe to call concurrently — with itself or with
// Submit, which reports ErrClosed once the close has begun. The
// aggregate accessors remain usable after Close.
func (sm *ShardedMonitor) Close() {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	if sm.closed {
		return
	}
	sm.closed = true
	if !sm.started {
		return // no goroutines were ever spawned
	}
	for _, s := range sm.shards {
		sm.flushShard(s)
		s.ch <- shardCtl{stop: true}
	}
	sm.wg.Wait()
}

// Stats aggregates shard counters (after an implicit Barrier). Events is
// the router-side submission count, so a sharded and a single-threaded
// run over the same trace report identical Stats; per-shard applied
// counts are available from ShardStats. ShedEvents and
// QuarantinedProperties come from the shared ledger, counted once (not
// per shard).
func (sm *ShardedMonitor) Stats() Stats {
	sm.Barrier()
	var agg Stats
	for _, s := range sm.shards {
		st := s.mon.stats.snapshot()
		agg.Created += st.Created
		agg.Advanced += st.Advanced
		agg.Violations += st.Violations
		agg.Discharged += st.Discharged
		agg.Expired += st.Expired
		agg.Deduped += st.Deduped
		agg.Refreshed += st.Refreshed
		agg.Suppressed += st.Suppressed
		agg.Evicted += st.Evicted
		agg.DroppedEvents += st.DroppedEvents
	}
	agg.Events = sm.submitted
	agg.ShedEvents, agg.QuarantinedProperties = sm.ledger.robustnessTotals()
	agg.LifecycleEpoch = sm.epoch.Load()
	return agg
}

// MarkFeedLoss records that n events were lost upstream of the router:
// every installed property is marked unsound in the shared ledger.
func (sm *ShardedMonitor) MarkFeedLoss(at time.Time, n uint64, detail string) {
	sm.MarkLoss(UnsoundInjectedLoss, at, n, detail)
}

// MarkLoss is MarkFeedLoss with an explicit reason. The collector calls
// it with UnsoundWireLoss when per-datapath sequence numbers reveal a
// gap, so network-induced degradation stays distinguishable from
// locally injected loss.
func (sm *ShardedMonitor) MarkLoss(reason UnsoundReason, at time.Time, n uint64, detail string) {
	sm.routerMu.Lock()
	defer sm.routerMu.Unlock()
	for _, name := range sm.names {
		if name == "" {
			continue // tombstoned slot
		}
		sm.ledger.Mark(name, reason, sm.submitted, at, n, detail)
	}
	sm.ledger.recordLost(reason, n)
}

// ShardStats returns each shard's raw counters (after an implicit
// Barrier) — the load-balance view used by the E8 experiment.
func (sm *ShardedMonitor) ShardStats() []Stats {
	sm.Barrier()
	out := make([]Stats, len(sm.shards))
	for i, s := range sm.shards {
		out[i] = s.mon.stats.snapshot()
	}
	return out
}

// ActiveInstances reports the live instance population across shards
// (after an implicit Barrier).
func (sm *ShardedMonitor) ActiveInstances() int {
	sm.Barrier()
	n := 0
	for _, s := range sm.shards {
		n += s.mon.ActiveInstances()
	}
	return n
}

// Quarantined reports the engine-wide quarantine bitmask. Safe from any
// goroutine.
func (sm *ShardedMonitor) Quarantined() uint64 { return sm.quarMask.Load() }

// SelfCheck runs every shard's invariant check (after an implicit
// Barrier).
func (sm *ShardedMonitor) SelfCheck() error {
	sm.Barrier()
	for i, s := range sm.shards {
		if err := s.mon.SelfCheck(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// applyRouted is apply restricted by per-property routing masks: matchMask
// bits allow suppression seeding and stage >= 1 matching, createMask bits
// allow stage-zero creation. The full apply is applyRouted with all bits
// set; the router's static analysis guarantees the cleared bits could not
// have acted at this shard.
func (m *Monitor) applyRouted(e *Event, matchMask, createMask uint64) {
	var start time.Time
	if m.mx != nil {
		start = time.Now()
	}
	m.stats.events.Add(1)
	m.seq++
	seq := m.seq
	for pi, cp := range m.props {
		bit := uint64(1) << uint(pi)
		if cp == nil || (matchMask|createMask)&bit == 0 || m.quarantined&bit != 0 {
			continue // nil cp: tombstone with a stale mask bit from a remove in flight
		}
		m.curProp = pi
		if m.stepProbe != nil {
			m.stepProbe(pi, seq)
		}
		m.stepProp(pi, cp, e, seq, matchMask&bit != 0, createMask&bit != 0)
	}
	if m.mx != nil {
		m.mx.events.Inc()
		m.mx.eventNs.Observe(uint64(time.Since(start)))
	}
}

// applyRoutedSupervised is applyRouted with per-property panic recovery:
// a panic during property pi's step (including one raised by a fault
// probe) is reported to onPanic — which is expected to quarantine pi —
// and the remaining properties are stepped as if nothing happened. The
// event and latency accounting happen exactly once regardless of how
// many properties fail.
func (m *Monitor) applyRoutedSupervised(e *Event, matchMask, createMask uint64, onPanic func(prop int, cause any)) {
	var start time.Time
	if m.mx != nil {
		start = time.Now()
	}
	m.stats.events.Add(1)
	m.seq++
	seq := m.seq
	from := 0
	for from < len(m.props) {
		failed, cause, ok := m.stepPropsProtected(e, seq, matchMask, createMask, from)
		if ok {
			break
		}
		onPanic(failed, cause)
		from = failed + 1
	}
	if m.mx != nil {
		m.mx.events.Inc()
		m.mx.eventNs.Observe(uint64(time.Since(start)))
	}
}

// stepPropsProtected steps properties [from, len) under a recover. On a
// panic it reports the failing property (read from curProp, which every
// step sets before doing work) and the panic value; ok means the whole
// range completed.
func (m *Monitor) stepPropsProtected(e *Event, seq uint64, matchMask, createMask uint64, from int) (failed int, cause any, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			failed = m.curProp
			cause = r
			ok = false
		}
	}()
	for pi := from; pi < len(m.props); pi++ {
		cp := m.props[pi]
		bit := uint64(1) << uint(pi)
		if cp == nil || (matchMask|createMask)&bit == 0 || m.quarantined&bit != 0 {
			continue
		}
		m.curProp = pi
		if m.stepProbe != nil {
			m.stepProbe(pi, seq)
		}
		m.stepProp(pi, cp, e, seq, matchMask&bit != 0, createMask&bit != 0)
	}
	return -1, nil, true
}
