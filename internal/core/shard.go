package core

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// shardBatchSize is how many routed events accumulate per shard before
// the batch is handed to the shard's goroutine. Larger batches amortize
// channel synchronization; Barrier and Drain flush partial batches.
const shardBatchSize = 64

// maxShardedProperties bounds the property count of a ShardedMonitor:
// routing masks are single 64-bit words.
const maxShardedProperties = 64

// shardMsg is one event routed to one shard, with per-property bits
// saying what the shard may do with it: matchMask bits permit advancing,
// discharging, and suppression seeding at stages >= 1; createMask bits
// permit stage-zero instance creation. The split matters because an
// event's stage-zero identity hash and its later-stage route hashes can
// land on different shards — only the creation shard may instantiate, or
// the same flow would be born twice.
type shardMsg struct {
	ev         Event
	matchMask  uint64
	createMask uint64
}

// shardCtl is one unit of work on a shard's queue: an event batch, an
// optional virtual-clock advance, and an optional barrier acknowledgment.
type shardCtl struct {
	batch    []shardMsg
	runUntil time.Time
	ack      *sync.WaitGroup
}

// shard is one partition: a single-threaded Monitor with its own
// deterministic scheduler, fed in FIFO order by its own goroutine.
// pending is the router-side batch under construction (router-owned).
type shard struct {
	sched   *sim.Scheduler
	mon     *Monitor
	ch      chan shardCtl
	pending []shardMsg
	// depth is the shard's queue-depth gauge (batches waiting on ch),
	// refreshed at every flush; nil without telemetry.
	depth *obs.Gauge
}

// ShardedMonitor scales the single-threaded Monitor across cores: N
// shards each own a disjoint identity-hash partition of the instance
// population and run on their own goroutine over a buffered event queue.
// The router (Submit) computes, per property, which shards an event can
// possibly affect — using the compile-time shardPlan — and delivers it
// only there. Properties whose addressing paths do not pin a stable
// stage-zero identity (wandering identities, packet-identity stages,
// scan stages or guards) are monitored entirely on the catch-all shard 0,
// preserving exact single-engine semantics at the cost of parallelism.
//
// The router side (Submit, SubmitBatch, Barrier, AdvanceTo, Drain, Close,
// and the aggregate accessors) must be driven from one goroutine; the
// shards run concurrently underneath. Shard goroutines start lazily on
// the first Submit, so constructing a ShardedMonitor (for capability
// probing, say) spawns nothing.
//
// Config caveats: Mode and SplitFlushLimit are ignored — shards always
// apply events inline, the per-shard queues being the split.
// MaxInstances applies per shard, not globally. DisableIndex disables
// the routing analysis too (all properties become catch-all), since
// routing is derived from the same index paths. Violation callbacks are
// serialized by an internal mutex but arrive in nondeterministic
// cross-shard order; order-sensitive consumers should compare multisets.
type ShardedMonitor struct {
	cfg       Config
	shards    []*shard
	plans     []shardPlan
	submitted uint64
	// matchScratch/createScratch are the per-event, per-shard routing
	// mask accumulators (router-owned, zeroed after each event).
	matchScratch  []uint64
	createScratch []uint64
	// freeBatches recycles processed batch slices from workers back to
	// the router without a lock on the fast path.
	freeBatches chan []shardMsg
	// smx holds the router-side telemetry handles (nil when Config.
	// Metrics is nil); hasCatchall notes whether any installed property
	// fell back to shard 0, the numerator of the catch-all ratio.
	smx         *shardedMetrics
	hasCatchall bool
	violMu      sync.Mutex
	startOnce   sync.Once
	started     bool
	closed      bool
	wg          sync.WaitGroup
}

// NewShardedMonitor creates a sharded monitor with the given number of
// shards (clamped to at least 1). See the type comment for the Config
// fields that change meaning under sharding.
func NewShardedMonitor(shards int, cfg Config) *ShardedMonitor {
	if shards < 1 {
		shards = 1
	}
	sm := &ShardedMonitor{
		cfg:           cfg,
		matchScratch:  make([]uint64, shards),
		createScratch: make([]uint64, shards),
		freeBatches:   make(chan []shardMsg, 4*shards),
	}
	if cfg.Metrics != nil {
		sm.smx = newShardedMetrics(cfg.Metrics, cfg.MetricsLabels)
	}
	shardCfg := cfg
	shardCfg.Mode = Inline
	shardCfg.SplitFlushLimit = 0
	if cfg.OnViolation != nil {
		user := cfg.OnViolation
		shardCfg.OnViolation = func(v *Violation) {
			sm.violMu.Lock()
			defer sm.violMu.Unlock()
			user(v)
		}
	}
	for i := 0; i < shards; i++ {
		sched := sim.NewScheduler()
		s := &shard{
			sched: sched,
			ch:    make(chan shardCtl, 64),
		}
		cfgI := shardCfg
		if cfg.Metrics != nil {
			// Engine-level series get a shard label; the per-property
			// counters omit it (see propMetrics), so all shards share
			// one aggregated series per property.
			lbl := obs.L("shard", strconv.Itoa(i))
			cfgI.MetricsLabels = append(append([]obs.Label(nil), cfg.MetricsLabels...), lbl)
			s.depth = cfg.Metrics.Gauge("switchmon_shard_queue_depth",
				"Batches queued on the shard's channel at the last flush.",
				cfgI.MetricsLabels...)
		}
		s.mon = NewMonitor(sched, cfgI)
		sm.shards = append(sm.shards, s)
	}
	return sm
}

// Shards reports the shard count.
func (sm *ShardedMonitor) Shards() int { return len(sm.shards) }

// AddProperty compiles and installs a property on every shard. It must be
// called before the first Submit.
func (sm *ShardedMonitor) AddProperty(p *property.Property) error {
	if sm.started {
		return fmt.Errorf("core: AddProperty after first Submit")
	}
	if len(sm.plans) >= maxShardedProperties {
		return fmt.Errorf("core: ShardedMonitor supports at most %d properties", maxShardedProperties)
	}
	cp, err := compile(p)
	if err != nil {
		return err
	}
	plan := cp.plan
	if sm.cfg.DisableIndex {
		// Routing is derived from the index paths; without them every
		// property is catch-all.
		plan = shardPlan{}
	}
	if !plan.shardable {
		sm.hasCatchall = true
	}
	for _, s := range sm.shards {
		if err := s.mon.AddProperty(p); err != nil {
			return err
		}
	}
	sm.plans = append(sm.plans, plan)
	return nil
}

// Shardable reports whether the i-th installed property got a stable
// shard key from the static analysis (false means catch-all shard 0).
func (sm *ShardedMonitor) Shardable(i int) bool { return sm.plans[i].shardable }

// start launches the shard goroutines (idempotent).
func (sm *ShardedMonitor) start() {
	sm.startOnce.Do(func() {
		sm.started = true
		sm.wg.Add(len(sm.shards))
		for _, s := range sm.shards {
			go sm.worker(s)
		}
	})
}

// worker drains one shard's queue: applies event batches in FIFO order,
// advances the shard's virtual clock on request, and acknowledges
// barriers. It owns the shard's Monitor exclusively.
func (sm *ShardedMonitor) worker(s *shard) {
	defer sm.wg.Done()
	for ctl := range s.ch {
		if len(ctl.batch) > 0 {
			for i := range ctl.batch {
				msg := &ctl.batch[i]
				s.mon.applyRouted(&msg.ev, msg.matchMask, msg.createMask)
			}
		}
		if ctl.batch != nil {
			select {
			case sm.freeBatches <- ctl.batch[:0]:
			default: // pool full; let the GC have it
			}
		}
		if !ctl.runUntil.IsZero() {
			s.sched.RunUntil(ctl.runUntil)
		}
		if ctl.ack != nil {
			ctl.ack.Done()
		}
	}
}

// Submit routes one event to the shards it can affect and enqueues it.
// Events that no property can act on are dropped at the router.
func (sm *ShardedMonitor) Submit(e Event) {
	sm.start()
	sm.submitted++
	n := uint64(len(sm.shards))
	mm, cm := sm.matchScratch, sm.createScratch
	for pi := range sm.plans {
		pl := &sm.plans[pi]
		bit := uint64(1) << uint(pi)
		if !pl.shardable {
			mm[0] |= bit
			cm[0] |= bit
			continue
		}
		for ri := range pl.routes {
			if h, ok := routeHash(&e, pl.routes[ri].fields); ok {
				mm[h%n] |= bit
			}
		}
		if h, ok := routeHash(&e, pl.createFields); ok {
			cm[h%n] |= bit
		}
	}
	delivered := 0
	for si := range sm.shards {
		if mm[si] == 0 && cm[si] == 0 {
			continue
		}
		s := sm.shards[si]
		s.pending = append(s.pending, shardMsg{ev: e, matchMask: mm[si], createMask: cm[si]})
		mm[si], cm[si] = 0, 0
		delivered++
		if len(s.pending) >= shardBatchSize {
			sm.flushShard(s)
		}
	}
	if sm.smx != nil {
		sm.smx.events.Inc()
		sm.smx.deliveries.Add(uint64(delivered))
		if sm.hasCatchall {
			sm.smx.catchall.Inc()
		}
		if delivered == 0 {
			sm.smx.unroutable.Inc()
		}
	}
}

// SubmitBatch routes a slice of events (batched Submit).
func (sm *ShardedMonitor) SubmitBatch(evs []Event) {
	for i := range evs {
		sm.Submit(evs[i])
	}
}

// flushShard hands the shard's pending batch to its goroutine and grabs a
// recycled batch buffer for the next one.
func (sm *ShardedMonitor) flushShard(s *shard) {
	if len(s.pending) == 0 {
		return
	}
	if sm.smx != nil {
		sm.smx.batchSize.Observe(uint64(len(s.pending)))
	}
	s.ch <- shardCtl{batch: s.pending}
	// len on a channel is a safe (if momentary) read; good enough for a
	// backpressure gauge refreshed once per batch.
	s.depth.Set(int64(len(s.ch)))
	select {
	case b := <-sm.freeBatches:
		s.pending = b
	default:
		s.pending = make([]shardMsg, 0, shardBatchSize)
	}
}

// Barrier flushes all pending batches and blocks until every shard has
// applied everything submitted before the call. After Barrier (and before
// the next Submit) the aggregate accessors read a consistent snapshot.
func (sm *ShardedMonitor) Barrier() {
	if sm.closed {
		return
	}
	sm.start()
	var wg sync.WaitGroup
	wg.Add(len(sm.shards))
	for _, s := range sm.shards {
		sm.flushShard(s)
		s.ch <- shardCtl{ack: &wg}
	}
	wg.Wait()
}

// AdvanceTo advances every shard's virtual clock to t — after applying
// everything already queued — firing due timers (windows, negative-stage
// deadlines). It blocks until all shards reach t, mirroring a
// single-engine driver calling Scheduler.RunUntil.
func (sm *ShardedMonitor) AdvanceTo(t time.Time) {
	if sm.closed {
		return
	}
	sm.start()
	var wg sync.WaitGroup
	wg.Add(len(sm.shards))
	for _, s := range sm.shards {
		sm.flushShard(s)
		s.ch <- shardCtl{runUntil: t, ack: &wg}
	}
	wg.Wait()
}

// Tick is the non-blocking AdvanceTo: it queues a clock advance to t
// behind everything already submitted and returns without waiting. Event
// sources that stamp monotone times (the backend adapter, replayed
// traces) use it to keep shard clocks tracking the stream without a
// barrier per event.
func (sm *ShardedMonitor) Tick(t time.Time) {
	if sm.closed {
		return
	}
	sm.start()
	for _, s := range sm.shards {
		sm.flushShard(s)
		s.ch <- shardCtl{runUntil: t}
	}
}

// Drain is Barrier plus a report: it returns the total number of events
// applied across shards (>= submitted when events fan out to several
// shards, less when events were unroutable).
func (sm *ShardedMonitor) Drain() uint64 {
	sm.Barrier()
	var n uint64
	for _, s := range sm.shards {
		n += s.mon.stats.events.Load()
	}
	return n
}

// Close flushes, stops all shard goroutines, and waits for them to exit.
// The aggregate accessors remain usable; Submit must not be called again.
func (sm *ShardedMonitor) Close() {
	if sm.closed {
		return
	}
	sm.start() // ensure workers exist so close(ch) terminates them
	for _, s := range sm.shards {
		sm.flushShard(s)
		close(s.ch)
	}
	sm.wg.Wait()
	sm.closed = true
}

// Stats aggregates shard counters (after an implicit Barrier). Events is
// the router-side submission count, so a sharded and a single-threaded
// run over the same trace report identical Stats; per-shard applied
// counts are available from ShardStats.
func (sm *ShardedMonitor) Stats() Stats {
	sm.Barrier()
	var agg Stats
	for _, s := range sm.shards {
		st := s.mon.Stats()
		agg.Created += st.Created
		agg.Advanced += st.Advanced
		agg.Violations += st.Violations
		agg.Discharged += st.Discharged
		agg.Expired += st.Expired
		agg.Deduped += st.Deduped
		agg.Refreshed += st.Refreshed
		agg.Suppressed += st.Suppressed
		agg.Evicted += st.Evicted
		agg.DroppedEvents += st.DroppedEvents
	}
	agg.Events = sm.submitted
	return agg
}

// ShardStats returns each shard's raw counters (after an implicit
// Barrier) — the load-balance view used by the E8 experiment.
func (sm *ShardedMonitor) ShardStats() []Stats {
	sm.Barrier()
	out := make([]Stats, len(sm.shards))
	for i, s := range sm.shards {
		out[i] = s.mon.Stats()
	}
	return out
}

// ActiveInstances reports the live instance population across shards
// (after an implicit Barrier).
func (sm *ShardedMonitor) ActiveInstances() int {
	sm.Barrier()
	n := 0
	for _, s := range sm.shards {
		n += s.mon.ActiveInstances()
	}
	return n
}

// SelfCheck runs every shard's invariant check (after an implicit
// Barrier).
func (sm *ShardedMonitor) SelfCheck() error {
	sm.Barrier()
	for i, s := range sm.shards {
		if err := s.mon.SelfCheck(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// applyRouted is apply restricted by per-property routing masks: matchMask
// bits allow suppression seeding and stage >= 1 matching, createMask bits
// allow stage-zero creation. The full apply is applyRouted with all bits
// set; the router's static analysis guarantees the cleared bits could not
// have acted at this shard.
func (m *Monitor) applyRouted(e *Event, matchMask, createMask uint64) {
	var start time.Time
	if m.mx != nil {
		start = time.Now()
	}
	m.stats.events.Add(1)
	m.seq++
	seq := m.seq
	for pi, cp := range m.props {
		bit := uint64(1) << uint(pi)
		if matchMask&bit == 0 && createMask&bit == 0 {
			continue
		}
		m.pmx[pi].events.Inc()
		bs := m.buckets[pi]
		if matchMask&bit != 0 {
			m.seedSuppressions(cp, bs, e)
			for si := len(cp.stages) - 1; si >= 1; si-- {
				b := bs[si]
				if len(b.all) == 0 {
					continue
				}
				cs := &cp.stages[si]
				m.matchStage(pi, si, cs, b, e, seq)
			}
		}
		if createMask&bit != 0 {
			cs0 := &cp.stages[0]
			if stagePatternMatches(cs0, e, nil, nil) {
				m.createInstance(pi, cp, e, seq)
			}
		}
	}
	if m.mx != nil {
		m.mx.events.Inc()
		m.mx.eventNs.Observe(uint64(time.Since(start)))
	}
}
