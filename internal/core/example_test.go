package core_test

import (
	"fmt"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// Example builds the paper's basic stateful-firewall property with the
// builder API, feeds a violating event pair, and prints the report.
func Example() {
	sched := sim.NewScheduler()
	mon := core.NewMonitor(sched, core.Config{
		Provenance: core.ProvLimited,
		OnViolation: func(v *core.Violation) {
			fmt.Printf("violation of %s: $A=%v $B=%v\n",
				v.Property, v.Bindings["A"], v.Bindings["B"])
		},
	})

	b := property.New("firewall", "returns for open connections are admitted")
	b.OnArrival("outgoing").
		Where(property.Eq(packet.FieldInPort, 1)).
		Bind("A", packet.FieldIPSrc).
		Bind("B", packet.FieldIPDst)
	b.OnEgress("return-dropped").
		Where(property.EqVar(packet.FieldIPSrc, "B"),
			property.EqVar(packet.FieldIPDst, "A"),
			property.Eq(packet.FieldDropped, 1))
	if err := mon.AddProperty(b.MustBuild()); err != nil {
		panic(err)
	}

	macA, macB := packet.MustMAC("02:00:00:00:00:01"), packet.MustMAC("02:00:00:00:00:02")
	ipA, ipB := packet.MustIPv4("10.0.0.1"), packet.MustIPv4("203.0.113.9")
	out := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
	ret := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil)

	mon.HandleEvent(core.Event{Kind: core.KindArrival, Time: sched.Now(), PacketID: 1, Packet: out, InPort: 1})
	mon.HandleEvent(core.Event{Kind: core.KindEgress, Time: sched.Now(), PacketID: 2, Packet: ret, InPort: 2, Dropped: true})

	// Output:
	// violation of firewall: $A=167772161 $B=3405803785
}

// ExampleMonitor_negativeObservation shows a Feature 7 timeout action: a
// deadline firing without the awaited event completes the pattern.
func ExampleMonitor_negativeObservation() {
	sched := sim.NewScheduler()
	violations := 0
	mon := core.NewMonitor(sched, core.Config{
		OnViolation: func(v *core.Violation) {
			violations++
			fmt.Println(v.Trigger)
		},
	})

	b := property.New("ping-answered", "echo requests are answered within 2s")
	b.OnArrival("request").
		Where(property.Eq(packet.FieldICMPType, 8)).
		Bind("ID", packet.FieldICMPID)
	b.UnlessWithin("no-reply", property.Egress, 2*time.Second).
		Where(property.Eq(packet.FieldICMPType, 0),
			property.EqVar(packet.FieldICMPID, "ID"))
	if err := mon.AddProperty(b.MustBuild()); err != nil {
		panic(err)
	}

	macA, macB := packet.MustMAC("02:00:00:00:00:01"), packet.MustMAC("02:00:00:00:00:02")
	ping := packet.NewICMPEcho(macA, macB, packet.MustIPv4("10.0.0.1"), packet.MustIPv4("10.0.0.2"), 7, 1, false)
	mon.HandleEvent(core.Event{Kind: core.KindArrival, Time: sched.Now(), PacketID: 1, Packet: ping, InPort: 1})

	sched.RunFor(3 * time.Second) // nobody answers

	// Output:
	// timeout: no event matched "no-reply" within the window
}
