package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// compiledStage precomputes per-stage matching machinery.
type compiledStage struct {
	st *property.Stage
	// eqVarPreds are the top-level equality-against-variable predicates,
	// the handles the instance index hangs on (Feature 8).
	eqVarPreds []property.Pred
	// indexGroups are the index key schemas: one group when the top-level
	// predicates pin variables, otherwise one per AnyOf alternative (each
	// alternative must pin at least one variable, or the stage falls back
	// to scanning). An instance is filed under one key per group; an
	// event's candidates are the union of the groups' lookups.
	indexGroups [][]property.Pred
	// pidIndex indexes by the concrete PacketID of the same-packet
	// constraint when no value keys are available — identity (Feature 5)
	// is itself a perfect instance key.
	pidIndex bool
	// guardIdx compiles the stage's obligation guards with their own
	// equality-on-variable key schemas, so the guard pass is indexed too.
	guardIdx []guardIndex
	// stickyGuards are the stage's permanent-discharge guards, with the
	// field each pinned variable is synthesized from.
	stickyGuards []stickyGuard
}

// guardIndex is one compiled obligation guard plus its index keys.
type guardIndex struct {
	guard property.Guard
	// eq are the guard's equality-against-variable predicates; empty
	// means the guard pass must scan the whole bucket.
	eq []property.Pred
}

// stickyGuard is a compiled permanent-discharge guard.
type stickyGuard struct {
	guard property.Guard
	// varFields maps each pinned variable to the event field carrying its
	// value (validated to cover every bound variable).
	varFields map[property.Var]packet.Field
	// rest are the guard's non-pinning predicates, checked literally.
	rest []property.Pred
}

// compiledProp is a property prepared for execution.
type compiledProp struct {
	prop   *property.Property
	stages []compiledStage
	// identityStages marks stage indexes referenced by any SamePacketAs:
	// their matched PacketIDs are part of instance identity.
	identityStages map[int]bool
}

// compile validates and prepares a property.
func compile(p *property.Property) (*compiledProp, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp := &compiledProp{prop: p, identityStages: map[int]bool{}}
	for i := range p.Stages {
		st := &p.Stages[i]
		cs := compiledStage{st: st}
		for _, pr := range st.Preds {
			if pr.Op == property.OpEq && pr.Arg.IsVar() {
				cs.eqVarPreds = append(cs.eqVarPreds, pr)
			}
		}
		if len(cs.eqVarPreds) > 0 {
			cs.indexGroups = [][]property.Pred{cs.eqVarPreds}
		} else if len(st.AnyOf) > 0 {
			groups := make([][]property.Pred, 0, len(st.AnyOf))
			complete := true
			for _, g := range st.AnyOf {
				var eq []property.Pred
				for _, pr := range g {
					if pr.Op == property.OpEq && pr.Arg.IsVar() {
						eq = append(eq, pr)
					}
				}
				if len(eq) == 0 {
					complete = false
					break
				}
				groups = append(groups, eq)
			}
			if complete {
				cs.indexGroups = groups
			}
		}
		if len(cs.indexGroups) == 0 && st.SamePacketAs >= 0 {
			cs.pidIndex = true
		}
		for _, g := range st.Until {
			gi := guardIndex{guard: g}
			for _, pr := range g.Preds {
				if pr.Op == property.OpEq && pr.Arg.IsVar() {
					gi.eq = append(gi.eq, pr)
				}
			}
			cs.guardIdx = append(cs.guardIdx, gi)
		}
		if st.SamePacketAs >= 0 {
			cp.identityStages[st.SamePacketAs] = true
		}
		for _, g := range st.Until {
			if !g.Sticky {
				continue
			}
			sg := stickyGuard{guard: g, varFields: map[property.Var]packet.Field{}}
			for _, pr := range g.Preds {
				if pr.Op == property.OpEq && pr.Arg.IsVar() {
					sg.varFields[pr.Arg.Var] = pr.Field
				} else {
					sg.rest = append(sg.rest, pr)
				}
			}
			cs.stickyGuards = append(cs.stickyGuards, sg)
		}
		cp.stages = append(cp.stages, cs)
	}
	return cp, nil
}

// classMatches reports whether the event satisfies the stage's class
// filter.
func classMatches(c property.EventClass, e *Event) bool {
	switch c {
	case property.AnyPacket:
		return e.Kind == KindArrival || e.Kind == KindEgress
	case property.Arrival:
		return e.Kind == KindArrival
	case property.Egress:
		return e.Kind == KindEgress
	case property.OutOfBand:
		return e.Kind == KindOutOfBand
	default:
		return false
	}
}

// bindings is an instance's variable environment.
type bindings map[property.Var]packet.Value

// resolveOperand evaluates a predicate's right-hand side against the
// current event and the instance environment.
func resolveOperand(o property.Operand, e *Event, env bindings) (packet.Value, bool) {
	switch o.Kind {
	case property.OperandVar:
		v, ok := env[o.Var]
		return v, ok
	case property.OperandHash:
		return hashOperand(o.Hash, e)
	default:
		return o.Lit, true
	}
}

// hashOperand computes the symmetric hash of the spec fields on the
// current event. The values are sorted before mixing, so any permutation
// of the same value multiset (e.g. a flow and its reverse) hashes alike.
func hashOperand(h *property.HashSpec, e *Event) (packet.Value, bool) {
	vals := make([]packet.Value, 0, len(h.Fields))
	for _, f := range h.Fields {
		v, ok := e.Field(f)
		if !ok {
			return packet.Value{}, false
		}
		vals = append(vals, v)
	}
	return packet.Num(h.Base + packet.HashValues(vals)%h.Mod), true
}

// predHolds evaluates one predicate.
func predHolds(pr property.Pred, e *Event, env bindings) bool {
	fv, ok := e.Field(pr.Field)
	if !ok {
		return false
	}
	arg, ok := resolveOperand(pr.Arg, e, env)
	if !ok {
		return false
	}
	return pr.Op.Compare(fv, arg)
}

// predsHold evaluates a conjunction.
func predsHold(preds []property.Pred, e *Event, env bindings) bool {
	for _, pr := range preds {
		if !predHolds(pr, e, env) {
			return false
		}
	}
	return true
}

// stagePatternMatches reports whether the event fits the stage's pattern:
// class, packet identity, all top-level predicates, at least one AnyOf
// group (if present), and availability of every bind field. packets is the
// instance's matched-packet record (nil at stage zero).
func stagePatternMatches(cs *compiledStage, e *Event, env bindings, packets []PacketID) bool {
	st := cs.st
	if !classMatches(st.Class, e) {
		return false
	}
	if st.SamePacketAs >= 0 {
		if packets == nil || st.SamePacketAs >= len(packets) {
			return false
		}
		if e.PacketID == 0 || packets[st.SamePacketAs] != e.PacketID {
			return false
		}
	}
	if !predsHold(st.Preds, e, env) {
		return false
	}
	if len(st.AnyOf) > 0 {
		matched := false
		for _, g := range st.AnyOf {
			if predsHold(g, e, env) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	for _, b := range st.Binds {
		if _, ok := e.Field(b.Field); !ok {
			return false
		}
	}
	return true
}

// guardMatches reports whether the event discharges an instance via the
// given obligation guard (Feature 4).
func guardMatches(g property.Guard, e *Event, env bindings) bool {
	return classMatches(g.Class, e) && predsHold(g.Preds, e, env)
}

// encodeValues builds a composite index key from values.
func encodeValues(vals []packet.Value) string {
	var b strings.Builder
	for _, v := range vals {
		if v.IsStr() {
			b.WriteByte('s')
			b.WriteString(strconv.Itoa(len(v.Text())))
			b.WriteByte(':')
			b.WriteString(v.Text())
		} else {
			b.WriteByte('n')
			b.WriteString(strconv.FormatUint(v.Uint64(), 16))
		}
		b.WriteByte('|')
	}
	return b.String()
}

// groupKey builds "g<i>|" + encoded values so the key spaces of distinct
// index groups cannot collide.
func groupKey(group int, vals []packet.Value) string {
	return fmt.Sprintf("g%d|%s", group, encodeValues(vals))
}

// eventIndexKeys computes, per index group, the key an event must hit,
// reading field values from the event. Groups whose fields the event does
// not carry are omitted (no instance filed there can match).
func eventIndexKeys(cs *compiledStage, e *Event) []string {
	if cs.pidIndex {
		if e.PacketID == 0 {
			return nil
		}
		return []string{fmt.Sprintf("p|%x", e.PacketID)}
	}
	keys := make([]string, 0, len(cs.indexGroups))
	for gi, group := range cs.indexGroups {
		vals := make([]packet.Value, 0, len(group))
		ok := true
		for _, pr := range group {
			v, present := e.Field(pr.Field)
			if !present {
				ok = false
				break
			}
			vals = append(vals, v)
		}
		if ok {
			keys = append(keys, groupKey(gi, vals))
		}
	}
	return keys
}

// instanceIndexKeys computes the keys under which a waiting instance is
// filed: one per index group (or the identity PacketID for pid-indexed
// stages), plus one per keyed obligation guard.
func instanceIndexKeys(cs *compiledStage, env bindings, packets []PacketID) []string {
	var keys []string
	if cs.pidIndex {
		if pid := packets[cs.st.SamePacketAs]; pid != 0 {
			keys = append(keys, fmt.Sprintf("p|%x", pid))
		}
	} else {
		for gi, group := range cs.indexGroups {
			if vals, ok := envVals(group, env); ok {
				keys = append(keys, groupKey(gi, vals))
			}
		}
	}
	for ui, g := range cs.guardIdx {
		if len(g.eq) == 0 {
			continue
		}
		if vals, ok := envVals(g.eq, env); ok {
			keys = append(keys, guardKey(ui, vals))
		}
	}
	return keys
}

// envVals resolves each predicate's variable from the environment.
func envVals(preds []property.Pred, env bindings) ([]packet.Value, bool) {
	vals := make([]packet.Value, 0, len(preds))
	for _, pr := range preds {
		v, present := env[pr.Arg.Var]
		if !present {
			return nil, false
		}
		vals = append(vals, v)
	}
	return vals, true
}

// guardKey namespaces obligation-guard index keys.
func guardKey(guard int, vals []packet.Value) string {
	return fmt.Sprintf("u%d|%s", guard, encodeValues(vals))
}

// guardEventKey computes the key an event must hit for a keyed guard.
func guardEventKey(gi int, g *guardIndex, e *Event) (string, bool) {
	vals := make([]packet.Value, 0, len(g.eq))
	for _, pr := range g.eq {
		v, ok := e.Field(pr.Field)
		if !ok {
			return "", false
		}
		vals = append(vals, v)
	}
	return guardKey(gi, vals), true
}

// signature builds the instance-identity string used for deduplication:
// stage, sorted bindings, and the packet IDs of identity-relevant stages.
func (cp *compiledProp) signature(stage int, env bindings, packets []PacketID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%d;", stage)
	vars := make([]string, 0, len(env))
	for v := range env {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	for _, v := range vars {
		b.WriteString(v)
		b.WriteByte('=')
		b.WriteString(encodeValues([]packet.Value{env[property.Var(v)]}))
	}
	for si := range cp.stages {
		if cp.identityStages[si] && si < len(packets) && si < stage {
			fmt.Fprintf(&b, "#%d:%d;", si, packets[si])
		}
	}
	return b.String()
}
