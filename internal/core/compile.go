package core

import (
	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// compiledStage precomputes per-stage matching machinery.
type compiledStage struct {
	st *property.Stage
	// eqVarPreds are the top-level equality-against-variable predicates,
	// the handles the instance index hangs on (Feature 8).
	eqVarPreds []property.Pred
	// indexGroups are the index key schemas: one group when the top-level
	// predicates pin variables, otherwise one per AnyOf alternative (each
	// alternative must pin at least one variable, or the stage falls back
	// to scanning). An instance is filed under one key per group; an
	// event's candidates are the union of the groups' lookups.
	indexGroups [][]property.Pred
	// pidIndex indexes by the concrete PacketID of the same-packet
	// constraint when no value keys are available — identity (Feature 5)
	// is itself a perfect instance key.
	pidIndex bool
	// guardIdx compiles the stage's obligation guards with their own
	// equality-on-variable key schemas, so the guard pass is indexed too.
	guardIdx []guardIndex
	// stickyGuards are the stage's permanent-discharge guards, with the
	// field each pinned variable is synthesized from.
	stickyGuards []stickyGuard
}

// guardIndex is one compiled obligation guard plus its index keys.
type guardIndex struct {
	guard property.Guard
	// eq are the guard's equality-against-variable predicates; empty
	// means the guard pass must scan the whole bucket.
	eq []property.Pred
}

// stickyGuard is a compiled permanent-discharge guard.
type stickyGuard struct {
	guard property.Guard
	// varFields maps each pinned variable to the event field carrying its
	// value (validated to cover every bound variable).
	varFields map[property.Var]packet.Field
	// rest are the guard's non-pinning predicates, checked literally.
	rest []property.Pred
}

// compiledProp is a property prepared for execution.
type compiledProp struct {
	prop   *property.Property
	stages []compiledStage
	// identityStages marks stage indexes referenced by any SamePacketAs:
	// their matched PacketIDs are part of instance identity.
	identityStages map[int]bool
	// plan is the static sharding analysis: whether the property's index
	// groups yield a stable shard key, and from which event fields that
	// key is computed at each addressing path.
	plan shardPlan
}

// compile validates and prepares a property.
func compile(p *property.Property) (*compiledProp, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp := &compiledProp{prop: p, identityStages: map[int]bool{}}
	for i := range p.Stages {
		st := &p.Stages[i]
		cs := compiledStage{st: st}
		for _, pr := range st.Preds {
			if pr.Op == property.OpEq && pr.Arg.IsVar() {
				cs.eqVarPreds = append(cs.eqVarPreds, pr)
			}
		}
		if len(cs.eqVarPreds) > 0 {
			cs.indexGroups = [][]property.Pred{cs.eqVarPreds}
		} else if len(st.AnyOf) > 0 {
			groups := make([][]property.Pred, 0, len(st.AnyOf))
			complete := true
			for _, g := range st.AnyOf {
				var eq []property.Pred
				for _, pr := range g {
					if pr.Op == property.OpEq && pr.Arg.IsVar() {
						eq = append(eq, pr)
					}
				}
				if len(eq) == 0 {
					complete = false
					break
				}
				groups = append(groups, eq)
			}
			if complete {
				cs.indexGroups = groups
			}
		}
		if len(cs.indexGroups) == 0 && st.SamePacketAs >= 0 {
			cs.pidIndex = true
		}
		for _, g := range st.Until {
			gi := guardIndex{guard: g}
			for _, pr := range g.Preds {
				if pr.Op == property.OpEq && pr.Arg.IsVar() {
					gi.eq = append(gi.eq, pr)
				}
			}
			cs.guardIdx = append(cs.guardIdx, gi)
		}
		if st.SamePacketAs >= 0 {
			cp.identityStages[st.SamePacketAs] = true
		}
		for _, g := range st.Until {
			if !g.Sticky {
				continue
			}
			sg := stickyGuard{guard: g, varFields: map[property.Var]packet.Field{}}
			for _, pr := range g.Preds {
				if pr.Op == property.OpEq && pr.Arg.IsVar() {
					sg.varFields[pr.Arg.Var] = pr.Field
				} else {
					sg.rest = append(sg.rest, pr)
				}
			}
			cs.stickyGuards = append(cs.stickyGuards, sg)
		}
		cp.stages = append(cp.stages, cs)
	}
	cp.plan = analyzeSharding(cp)
	return cp, nil
}

// classMatches reports whether the event satisfies the stage's class
// filter.
func classMatches(c property.EventClass, e *Event) bool {
	switch c {
	case property.AnyPacket:
		return e.Kind == KindArrival || e.Kind == KindEgress
	case property.Arrival:
		return e.Kind == KindArrival
	case property.Egress:
		return e.Kind == KindEgress
	case property.OutOfBand:
		return e.Kind == KindOutOfBand
	default:
		return false
	}
}

// bindings is an instance's variable environment.
type bindings map[property.Var]packet.Value

// resolveOperand evaluates a predicate's right-hand side against the
// current event and the instance environment.
func resolveOperand(o property.Operand, e *Event, env bindings) (packet.Value, bool) {
	switch o.Kind {
	case property.OperandVar:
		v, ok := env[o.Var]
		return v, ok
	case property.OperandHash:
		return hashOperand(o.Hash, e)
	default:
		return o.Lit, true
	}
}

// hashOperand computes the symmetric hash of the spec fields on the
// current event. The values are sorted before mixing, so any permutation
// of the same value multiset (e.g. a flow and its reverse) hashes alike.
func hashOperand(h *property.HashSpec, e *Event) (packet.Value, bool) {
	vals := make([]packet.Value, 0, len(h.Fields))
	for _, f := range h.Fields {
		v, ok := e.Field(f)
		if !ok {
			return packet.Value{}, false
		}
		vals = append(vals, v)
	}
	return packet.Num(h.Base + packet.HashValues(vals)%h.Mod), true
}

// predHolds evaluates one predicate.
func predHolds(pr property.Pred, e *Event, env bindings) bool {
	fv, ok := e.Field(pr.Field)
	if !ok {
		return false
	}
	arg, ok := resolveOperand(pr.Arg, e, env)
	if !ok {
		return false
	}
	return pr.Op.Compare(fv, arg)
}

// predsHold evaluates a conjunction.
func predsHold(preds []property.Pred, e *Event, env bindings) bool {
	for _, pr := range preds {
		if !predHolds(pr, e, env) {
			return false
		}
	}
	return true
}

// stagePatternMatches reports whether the event fits the stage's pattern:
// class, packet identity, all top-level predicates, at least one AnyOf
// group (if present), and availability of every bind field. packets is the
// instance's matched-packet record (nil at stage zero).
func stagePatternMatches(cs *compiledStage, e *Event, env bindings, packets []PacketID) bool {
	st := cs.st
	if !classMatches(st.Class, e) {
		return false
	}
	if st.SamePacketAs >= 0 {
		if packets == nil || st.SamePacketAs >= len(packets) {
			return false
		}
		if e.PacketID == 0 || packets[st.SamePacketAs] != e.PacketID {
			return false
		}
	}
	if !predsHold(st.Preds, e, env) {
		return false
	}
	if len(st.AnyOf) > 0 {
		matched := false
		for _, g := range st.AnyOf {
			if predsHold(g, e, env) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	for _, b := range st.Binds {
		if _, ok := e.Field(b.Field); !ok {
			return false
		}
	}
	return true
}

// guardMatches reports whether the event discharges an instance via the
// given obligation guard (Feature 4).
func guardMatches(g property.Guard, e *Event, env bindings) bool {
	return classMatches(g.Class, e) && predsHold(g.Preds, e, env)
}

// The index keys, dedup signatures, and shard routes below are all
// fixed-size 64-bit FNV-1a hashes instead of composite strings: building a
// string key costs one or more heap allocations per event, and the hot
// path (indexed steady state) must run allocation-free. Hash keys trade
// the strings' injectivity for a 2^-64 collision probability per pair,
// which is negligible against the instance populations this engine
// targets; the byte stream fed to the hash still carries type and length
// tags so the adversarial delimiter cases (quick_test.go) cannot collide
// by construction.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvByte mixes one byte into an FNV-1a state.
func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

// fnvU64 mixes a 64-bit value, little-endian, into an FNV-1a state.
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v))
		v >>= 8
	}
	return h
}

// fnvString mixes string bytes into an FNV-1a state.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// mix64 is a strong 64-bit finalizer (the murmur3 fmix64 bijection).
// Raw FNV-1a states must pass through it before being SUMMED into an
// order-invariant hash: FNV folds a byte as (h^b)*p, so two chains that
// differ only in correlated late bytes (say, the low bytes of a flow's
// src and dst) leave deltas multiplied by the same power of p, and those
// deltas can cancel in a sum — on structured address ranges most of the
// key space collapses. Avalanching each term first makes the terms
// independent, and sums of independent terms do not cancel structurally.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fnvValue mixes one field value, tagged by kind (and length for strings,
// so concatenation boundaries stay unambiguous).
func fnvValue(h uint64, v packet.Value) uint64 {
	if v.IsStr() {
		s := v.Text()
		h = fnvByte(h, 's')
		h = fnvU64(h, uint64(len(s)))
		return fnvString(h, s)
	}
	h = fnvByte(h, 'n')
	return fnvU64(h, v.Uint64())
}

// hashValues hashes a value slice — the uint64 replacement for the old
// string encodeValues. Exercised directly by the collision quick tests.
func hashValues(vals []packet.Value) uint64 {
	h := fnvOffset
	for _, v := range vals {
		h = fnvValue(h, v)
	}
	return h
}

// groupKeyBase seeds the key space of one index group; distinct groups
// (and the other key namespaces below) mix a distinct tag byte so their
// key spaces cannot collide structurally.
func groupKeyBase(group int) uint64 {
	return fnvU64(fnvByte(fnvOffset, 'g'), uint64(group))
}

// guardKeyBase seeds the key space of one obligation guard.
func guardKeyBase(guard int) uint64 {
	return fnvU64(fnvByte(fnvOffset, 'u'), uint64(guard))
}

// pidKey builds the packet-identity index key.
func pidKey(pid PacketID) uint64 {
	return fnvU64(fnvByte(fnvOffset, 'p'), uint64(pid))
}

// eventIndexKeys computes, per index group, the key an event must hit,
// reading field values from the event, appending to keys (a caller-owned
// scratch slice). Groups whose fields the event does not carry are
// omitted (no instance filed there can match).
func eventIndexKeys(cs *compiledStage, e *Event, keys []uint64) []uint64 {
	if cs.pidIndex {
		if e.PacketID == 0 {
			return keys
		}
		return append(keys, pidKey(e.PacketID))
	}
	for gi, group := range cs.indexGroups {
		h := groupKeyBase(gi)
		ok := true
		for _, pr := range group {
			v, present := e.Field(pr.Field)
			if !present {
				ok = false
				break
			}
			h = fnvValue(h, v)
		}
		if ok {
			keys = append(keys, h)
		}
	}
	return keys
}

// instanceIndexKeys computes the keys under which a waiting instance is
// filed — one per index group (or the identity PacketID for pid-indexed
// stages), plus one per keyed obligation guard — appending to keys (the
// instance's reusable key slice).
func instanceIndexKeys(cs *compiledStage, env bindings, packets []PacketID, keys []uint64) []uint64 {
	if cs.pidIndex {
		if pid := packets[cs.st.SamePacketAs]; pid != 0 {
			keys = append(keys, pidKey(pid))
		}
	} else {
		for gi, group := range cs.indexGroups {
			if h, ok := envKey(groupKeyBase(gi), group, env); ok {
				keys = append(keys, h)
			}
		}
	}
	for ui := range cs.guardIdx {
		g := &cs.guardIdx[ui]
		if len(g.eq) == 0 {
			continue
		}
		if h, ok := envKey(guardKeyBase(ui), g.eq, env); ok {
			keys = append(keys, h)
		}
	}
	return keys
}

// envKey folds each predicate's variable value from the environment into
// the seeded hash state.
func envKey(h uint64, preds []property.Pred, env bindings) (uint64, bool) {
	for _, pr := range preds {
		v, present := env[pr.Arg.Var]
		if !present {
			return 0, false
		}
		h = fnvValue(h, v)
	}
	return h, true
}

// guardEventKey computes the key an event must hit for a keyed guard.
func guardEventKey(gi int, g *guardIndex, e *Event) (uint64, bool) {
	h := guardKeyBase(gi)
	for _, pr := range g.eq {
		v, ok := e.Field(pr.Field)
		if !ok {
			return 0, false
		}
		h = fnvValue(h, v)
	}
	return h, true
}

// signature builds the instance-identity hash used for deduplication:
// stage, bindings, and the packet IDs of identity-relevant stages. The
// binding environment is folded order-invariantly (each entry hashed on
// its own, entry hashes summed) so no sorted key slice is allocated; a
// map has no duplicate keys, so the sum is a faithful multiset hash, and
// mix64 on each entry keeps the terms from cancelling (see mix64). The
// result is never zero: zero is the "no signature" sentinel on instances.
func (cp *compiledProp) signature(stage int, env bindings, packets []PacketID) uint64 {
	var envSum uint64
	for v, val := range env {
		h := fnvString(fnvOffset, string(v))
		h = fnvByte(h, '=')
		envSum += mix64(fnvValue(h, val))
	}
	sig := fnvU64(fnvByte(fnvOffset, '@'), uint64(stage))
	sig = fnvU64(sig, uint64(len(env)))
	sig = fnvU64(sig, envSum)
	for si := range cp.stages {
		if cp.identityStages[si] && si < len(packets) && si < stage {
			sig = fnvByte(sig, '#')
			sig = fnvU64(sig, uint64(si))
			sig = fnvU64(sig, uint64(packets[si]))
		}
	}
	if sig == 0 {
		sig = 1
	}
	return sig
}

// --- Static sharding analysis -----------------------------------------------

// shardRoute is one way an event can address instances of a property: a
// list of event fields, one per identity variable, whose value multiset
// equals the instance's identity-value multiset whenever the event
// matches that addressing path (an index group at some stage, a keyed
// obligation guard, or a sticky guard).
type shardRoute struct {
	fields []packet.Field
}

// shardPlan is the result of the per-property sharding analysis. A
// property is shardable when a non-empty set of identity variables V,
// bound at stage zero, is pinned by an equality-on-variable predicate in
// every addressing path of every later stage: then the order-invariant
// hash of the pinned fields' values routes every relevant event to the
// shard owning the instance, because on a match those values equal the
// instance's V-values by definition of the predicates. Properties that
// break this — wandering/multiple-match identities addressed by scans,
// packet-identity stages, guards without variable keys, or re-binding an
// identity variable — fall back to the designated catch-all shard.
type shardPlan struct {
	shardable bool
	// identityVars is V, in deterministic order.
	identityVars []property.Var
	// createFields are the stage-zero bind fields of V: the home shard of
	// a new instance is the hash of these field values on the creating
	// event.
	createFields []packet.Field
	// routes are the addressing paths of all later stages and guards.
	routes []shardRoute
}

// analyzeSharding derives the shard plan of a compiled property.
func analyzeSharding(cp *compiledProp) shardPlan {
	if len(cp.stages) == 0 {
		return shardPlan{}
	}
	st0 := cp.stages[0].st
	// Candidate V starts as every stage-zero-bound variable, in binding
	// order; paths that pin only a subset shrink it.
	var vs []property.Var
	bound := map[property.Var]packet.Field{}
	for _, b := range st0.Binds {
		if _, dup := bound[b.Var]; !dup {
			bound[b.Var] = b.Field
			vs = append(vs, b.Var)
		}
	}
	if len(vs) == 0 {
		return shardPlan{}
	}
	// pathPins collects, per addressing path, the pinned variable -> event
	// field maps; V shrinks to the intersection of all paths' pin sets.
	type path struct{ pins map[property.Var]packet.Field }
	var paths []path
	for si := 1; si < len(cp.stages); si++ {
		cs := &cp.stages[si]
		if cs.st.SamePacketAs >= 0 {
			return shardPlan{} // packet-identity addressing: no value key
		}
		for _, b := range cs.st.Binds {
			if _, isID := bound[b.Var]; isID {
				return shardPlan{} // re-binding an identity variable moves the key
			}
		}
		if len(cs.indexGroups) == 0 {
			return shardPlan{} // scan stage: the event cannot be routed
		}
		for _, group := range cs.indexGroups {
			pins := map[property.Var]packet.Field{}
			for _, pr := range group {
				if _, ok := pins[pr.Arg.Var]; !ok {
					pins[pr.Arg.Var] = pr.Field
				}
			}
			paths = append(paths, path{pins: pins})
		}
		for gi := range cs.guardIdx {
			g := &cs.guardIdx[gi]
			if g.guard.Sticky {
				continue // handled below via the synthesized environment
			}
			if len(g.eq) == 0 {
				return shardPlan{} // scan guard: the discharging event cannot be routed
			}
			pins := map[property.Var]packet.Field{}
			for _, pr := range g.eq {
				if _, ok := pins[pr.Arg.Var]; !ok {
					pins[pr.Arg.Var] = pr.Field
				}
			}
			paths = append(paths, path{pins: pins})
		}
		for _, sg := range cs.stickyGuards {
			pins := map[property.Var]packet.Field{}
			for v, f := range sg.varFields {
				pins[v] = f
			}
			paths = append(paths, path{pins: pins})
		}
	}
	// Shrink V to the variables every path pins.
	var ids []property.Var
	for _, v := range vs {
		pinned := true
		for _, p := range paths {
			if _, ok := p.pins[v]; !ok {
				pinned = false
				break
			}
		}
		if pinned {
			ids = append(ids, v)
		}
	}
	if len(ids) == 0 {
		return shardPlan{}
	}
	plan := shardPlan{shardable: true, identityVars: ids}
	for _, v := range ids {
		plan.createFields = append(plan.createFields, bound[v])
	}
	for _, p := range paths {
		r := shardRoute{fields: make([]packet.Field, 0, len(ids))}
		for _, v := range ids {
			r.fields = append(r.fields, p.pins[v])
		}
		plan.routes = append(plan.routes, r)
	}
	return plan
}

// routeHash computes the order-invariant identity hash of the given event
// fields: each value is hashed on its own and the hashes summed, so any
// field permutation carrying the same value multiset (a flow and its
// reverse under a symmetric property) lands on the same shard. ok is
// false when the event does not carry every field — no instance filed
// under this path can match such an event.
func routeHash(e *Event, fields []packet.Field) (uint64, bool) {
	var sum uint64
	for _, f := range fields {
		v, present := e.Field(f)
		if !present {
			return 0, false
		}
		sum += mix64(fnvValue(fnvOffset, v))
	}
	return sum, true
}
