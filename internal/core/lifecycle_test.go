package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// --- Inline lifecycle: install, remove, epoch, purge ----------------------

func TestInlineInstallRemoveLive(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	if got := h.mon.Epoch(); got != 0 {
		t.Fatalf("bootstrap epoch = %d, want 0", got)
	}

	// Open a flow: one live obligation instance.
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	if got := h.mon.ActiveInstances(); got != 1 {
		t.Fatalf("ActiveInstances = %d, want 1", got)
	}

	if err := h.mon.RemoveProperty("firewall-basic"); err != nil {
		t.Fatalf("RemoveProperty: %v", err)
	}
	if got := h.mon.Epoch(); got != 1 {
		t.Fatalf("epoch after live remove = %d, want 1", got)
	}
	if got := h.mon.ActiveInstances(); got != 0 {
		t.Fatalf("ActiveInstances after remove = %d, want 0 (purged)", got)
	}
	if got := h.mon.Properties(); len(got) != 0 {
		t.Fatalf("Properties after remove = %v, want none", got)
	}

	// The wrongful drop that would have violated: no property, no verdict.
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(0)

	// Removing twice is an error.
	if err := h.mon.RemoveProperty("firewall-basic"); err == nil {
		t.Fatal("second RemoveProperty succeeded, want error")
	}

	// Reinstall into the tombstoned slot; verdicts restart from here.
	if err := h.mon.InstallProperty(catalogProp(t, "firewall-basic")); err != nil {
		t.Fatalf("reinstall: %v", err)
	}
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(1)
}

func TestInstallDuplicateNameRejected(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	if err := h.mon.InstallProperty(catalogProp(t, "firewall-basic")); err == nil {
		t.Fatal("duplicate install succeeded, want error")
	}
	// Replace is the sanctioned swap: one reinstall mark, not an error.
	if err := h.mon.ReplaceProperty(catalogProp(t, "firewall-basic")); err != nil {
		t.Fatalf("ReplaceProperty: %v", err)
	}
}

// --- Ledger × lifecycle: first-mark-wins across Remove→Install ------------

func TestFirstMarkWinsAcrossReinstall(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2) // go live so installs stamp watermarks

	h.mon.MarkFeedLoss(h.sched.Now(), 3, "lossy tap")
	if err := h.mon.RemoveProperty("firewall-basic"); err != nil {
		t.Fatal(err)
	}
	if err := h.mon.InstallProperty(catalogProp(t, "firewall-basic")); err != nil {
		t.Fatal(err)
	}

	marks := h.mon.Ledger().Snapshot()
	if len(marks) != 1 {
		t.Fatalf("marks = %+v, want exactly one", marks)
	}
	// The original injected-loss mark survives the remove/reinstall cycle:
	// first mark wins, the reinstall does not relabel the degradation.
	if marks[0].Reason != UnsoundInjectedLoss {
		t.Fatalf("mark reason = %s, want injected-loss (first mark wins)", marks[0].Reason)
	}
	recs := h.mon.Ledger().InstallSnapshot()
	if len(recs) != 1 || recs[0].Generation != 2 {
		t.Fatalf("install records = %+v, want one at generation 2", recs)
	}
}

func TestReinstallAloneMarksReinstalled(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	if err := h.mon.RemoveProperty("firewall-basic"); err != nil {
		t.Fatal(err)
	}
	if err := h.mon.InstallProperty(catalogProp(t, "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	marks := h.mon.Ledger().Snapshot()
	if len(marks) != 1 || marks[0].Reason != UnsoundReinstalled {
		t.Fatalf("marks = %+v, want one reinstalled mark", marks)
	}
}

// --- Ledger × lifecycle: losses predating the install point ---------------

func TestFeedLossBeforeInstallDoesNotMark(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	before := h.sched.Now()
	h.advance(10 * time.Second)

	// nat-reverse installs live at now > before.
	if err := h.mon.InstallProperty(catalogProp(t, "nat-reverse")); err != nil {
		t.Fatal(err)
	}

	// A loss stamped before nat-reverse's install point owes it nothing.
	h.mon.MarkFeedLoss(before, 5, "loss predating install")
	for _, m := range h.mon.Ledger().Snapshot() {
		if m.Property == "nat-reverse" {
			t.Fatalf("nat-reverse marked for a pre-install loss: %+v", m)
		}
		if m.Property == "firewall-basic" && m.Events != 5 {
			t.Fatalf("firewall-basic lost=%d, want 5", m.Events)
		}
	}

	// A loss after the install point marks both.
	h.mon.MarkFeedLoss(h.sched.Now(), 2, "loss after install")
	found := false
	for _, m := range h.mon.Ledger().Snapshot() {
		if m.Property == "nat-reverse" {
			found = true
			if m.Events != 2 {
				t.Fatalf("nat-reverse lost=%d, want 2 (only the post-install loss)", m.Events)
			}
		}
	}
	if !found {
		t.Fatal("nat-reverse not marked for a post-install loss")
	}
}

// --- Ledger × lifecycle: quarantined-property removal ---------------------

func TestQuarantinedRemovalClearsRoutingBit(t *testing.T) {
	props := []*property.Property{
		catalogProp(t, "firewall-basic"),
		catalogProp(t, "firewall-until-close"),
		catalogProp(t, "nat-reverse"),
	}
	const victim = 1 // firewall-until-close
	var mu sync.Mutex
	counts := map[string]int{}
	sm := NewShardedMonitor(4, Config{OnViolation: func(v *Violation) {
		mu.Lock()
		counts[v.Property]++
		mu.Unlock()
	}})
	defer sm.Close()
	for _, p := range props {
		if err := sm.AddProperty(p); err != nil {
			t.Fatal(err)
		}
	}
	// The probe is armed for the first phase only: after the remove we
	// disarm it so the reinstalled property (same slot index) runs clean.
	var armed atomic.Bool
	armed.Store(true)
	if err := sm.SetShardProbe(2, func(prop int, seq uint64) {
		if prop == victim && armed.Load() {
			panic("injected step panic (lifecycle)")
		}
	}); err != nil {
		t.Fatal(err)
	}

	evs := superviseStream(300, 3)
	for i := range evs {
		if err := sm.Submit(evs[i]); err != nil {
			t.Fatal(err)
		}
		sm.Tick(evs[i].Time)
	}
	sm.Barrier()
	if sm.Quarantined() == 0 {
		t.Fatal("victim not quarantined; the probe never fired")
	}

	// Removing the quarantined property clears its routing-mask bit.
	if err := sm.RemoveProperty(props[victim].Name); err != nil {
		t.Fatalf("remove quarantined: %v", err)
	}
	if got := sm.Quarantined(); got != 0 {
		t.Fatalf("quarantine mask after remove = %b, want 0", got)
	}

	// The freed slot is clean: disarm the probe, reinstall the same name,
	// feed fresh flows — the property evaluates again (its quarantine
	// history survives in the ledger, first mark wins).
	armed.Store(false)
	if err := sm.InstallProperty(catalogProp(t, "firewall-until-close")); err != nil {
		t.Fatalf("reinstall into freed slot: %v", err)
	}
	mu.Lock()
	preReinstall := counts[props[victim].Name]
	mu.Unlock()
	evs2 := superviseStream(100, 3)
	last := evs[len(evs)-1].Time
	for i := range evs2 {
		evs2[i].Time = last.Add(time.Second).Add(evs2[i].Time.Sub(sim.Epoch))
		if err := sm.Submit(evs2[i]); err != nil {
			t.Fatal(err)
		}
		sm.Tick(evs2[i].Time)
	}
	sm.AdvanceTo(evs2[len(evs2)-1].Time.Add(time.Hour))
	if got := sm.Quarantined(); got != 0 {
		t.Fatalf("reinstalled property re-quarantined: mask=%b", got)
	}
	mu.Lock()
	postReinstall := counts[props[victim].Name]
	mu.Unlock()
	if postReinstall <= preReinstall {
		t.Fatalf("reinstalled property found no violations (pre=%d post=%d); slot still dead",
			preReinstall, postReinstall)
	}
	var quarMark *UnsoundMark
	for _, m := range sm.Ledger().Snapshot() {
		if m.Property == props[victim].Name {
			m := m
			quarMark = &m
		}
	}
	if quarMark == nil || quarMark.Reason != UnsoundQuarantine {
		t.Fatalf("quarantine history lost across remove/reinstall: %+v", quarMark)
	}
	if !strings.Contains(quarMark.Detail, "injected step panic") {
		t.Fatalf("mark detail %q lost the panic attribution", quarMark.Detail)
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatalf("post-lifecycle invariants: %v", err)
	}
}
