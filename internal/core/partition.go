package core

import (
	"fmt"
	"sort"

	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// Process-level partition-key derivation for the federated collector
// tier (internal/federation). The intra-process sharding analysis
// (analyzeSharding) proves which event fields address a property's
// instances; the same proof, lifted to the fleet, tells us when a
// whole event stream can be split across N collector processes without
// changing any verdict: every event an instance can ever consume must
// carry the instance's partition key.

// PartitionByDPID is the default fleet partition key: the datapath id
// of the switch that emitted the event. It is total (every event has a
// switch id) and correct for any property set that passes
// ValidateDPIDPartition.
func PartitionByDPID(e *Event) uint64 { return e.SwitchID }

// DPIDPartitionable reports whether p's verdicts survive partitioning
// the event stream by datapath id: the sharding analysis must find an
// identity variable bound to switch.id at stage zero and pinned to
// switch.id on every later addressing path — then every event an
// instance consumes carries the instance's own dpid, so all of an
// instance's events land on one collector. Properties that correlate
// events across switches (or defeat the sharding analysis entirely)
// report false. The error is a compile failure of p itself.
func DPIDPartitionable(p *property.Property) (bool, error) {
	cp, err := compile(p)
	if err != nil {
		return false, err
	}
	plan := &cp.plan
	if !plan.shardable {
		return false, nil
	}
	for i := range plan.identityVars {
		if plan.createFields[i] != packet.FieldSwitchID {
			continue
		}
		pinned := true
		for _, r := range plan.routes {
			if r.fields[i] != packet.FieldSwitchID {
				pinned = false
				break
			}
		}
		if pinned {
			return true, nil
		}
	}
	return false, nil
}

// ValidateDPIDPartition checks that every property in the set is
// dpid-partitionable, returning an error naming the offenders. A
// federated deployment keyed by PartitionByDPID should refuse (or at
// least warn about) a set that fails this check: a cross-switch
// property evaluated on dpid-partitioned collectors can silently miss
// violations whose evidence spans partitions.
func ValidateDPIDPartition(props []*property.Property) error {
	var bad []string
	for _, p := range props {
		ok, err := DPIDPartitionable(p)
		if err != nil {
			return fmt.Errorf("partition analysis: %s: %w", p.Name, err)
		}
		if !ok {
			bad = append(bad, p.Name)
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("properties not partitionable by datapath id: %v (instances correlate events across switches or defeat the sharding analysis)", bad)
	}
	return nil
}

// IdentityPartitionFunc derives a property-identity partition key from
// the shared identity of the given set: every property must be
// shardable with one common identity-field multiset used by its
// create path and every addressing path, and all properties must agree
// on that multiset. The returned function maps an event to the
// order-invariant hash of those field values — the same hash the
// in-process shard router uses — so a flow and its reverse land on the
// same collector. ok is false when the event lacks one of the fields;
// by the analysis no instance of any property in the set can consume
// such an event, so the caller may route it anywhere.
func IdentityPartitionFunc(props []*property.Property) (func(e *Event) (uint64, bool), error) {
	if len(props) == 0 {
		return nil, fmt.Errorf("identity partition: empty property set")
	}
	var shared []packet.Field
	for _, p := range props {
		cp, err := compile(p)
		if err != nil {
			return nil, fmt.Errorf("identity partition: %s: %w", p.Name, err)
		}
		plan := &cp.plan
		if !plan.shardable {
			return nil, fmt.Errorf("identity partition: %s is not shardable", p.Name)
		}
		want := fieldMultiset(plan.createFields)
		for _, r := range plan.routes {
			if !equalFields(fieldMultiset(r.fields), want) {
				return nil, fmt.Errorf("identity partition: %s addresses instances by %v, creates by %v — paths disagree, the event-level key is ambiguous", p.Name, r.fields, plan.createFields)
			}
		}
		if shared == nil {
			shared = want
		} else if !equalFields(shared, want) {
			return nil, fmt.Errorf("identity partition: %s keys on %v but the set keys on %v", p.Name, want, shared)
		}
	}
	fields := shared
	return func(e *Event) (uint64, bool) {
		return routeHash(e, fields)
	}, nil
}

// fieldMultiset returns a sorted copy: the addressing hash is
// order-invariant, so field lists compare as multisets.
func fieldMultiset(fs []packet.Field) []packet.Field {
	out := append([]packet.Field(nil), fs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalFields(a, b []packet.Field) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
