package core

import (
	"testing"
	"time"

	"switchmon/internal/packet"
)

// The DNS response-integrity property exercises string-valued instance
// keys (the query name travels through bindings, indexes, and negative
// matches as a string).

func TestDNSResponseMatchViolation(t *testing.T) {
	h := newHarness(t, Config{Provenance: ProvLimited}, catalogProp(t, "dns-response-match"))
	q := packet.NewDNSQuery(macA, macB, ipA, ipB, 5353, 42, "bank.example")
	h.forward(q, 1, 2)
	// A response with the right id but the wrong question is forwarded.
	bad := packet.NewDNSResponse(macB, macA, ipB, ipA, 5353, 42, "evil.example", packet.MustIPv4("6.6.6.6"))
	h.forward(bad, 2, 1)
	h.wantViolations(1)
	if h.viols[0].Bindings["Q"] != packet.Str("bank.example") {
		t.Fatalf("Q binding = %v", h.viols[0].Bindings["Q"])
	}
}

func TestDNSResponseMatchCorrect(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "dns-response-match"))
	q := packet.NewDNSQuery(macA, macB, ipA, ipB, 5353, 42, "bank.example")
	h.forward(q, 1, 2)
	good := packet.NewDNSResponse(macB, macA, ipB, ipA, 5353, 42, "bank.example", packet.MustIPv4("93.184.216.34"))
	h.forward(good, 2, 1)
	h.wantViolations(0)
}

func TestDNSResponseDifferentIDUnrelated(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "dns-response-match"))
	q := packet.NewDNSQuery(macA, macB, ipA, ipB, 5353, 42, "bank.example")
	h.forward(q, 1, 2)
	// Wrong id: not this query's response, property does not fire.
	other := packet.NewDNSResponse(macB, macA, ipB, ipA, 5353, 43, "evil.example", packet.MustIPv4("6.6.6.6"))
	h.forward(other, 2, 1)
	h.wantViolations(0)
}

// The ping-liveness property is the Feature 7 pattern over ICMP.

func TestPingReplyTimeout(t *testing.T) {
	h := newHarness(t, Config{Provenance: ProvFull}, catalogProp(t, "ping-reply-within"))
	req := packet.NewICMPEcho(macA, macB, ipA, ipB, 7, 1, false)
	h.forward(req, 1, 2)
	h.advance(3 * time.Second) // window is 2s
	h.wantViolations(1)
	if h.viols[0].History[1].Event != "timeout" {
		t.Fatalf("history = %+v", h.viols[0].History)
	}
}

func TestPingReplyInTime(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "ping-reply-within"))
	req := packet.NewICMPEcho(macA, macB, ipA, ipB, 7, 1, false)
	h.forward(req, 1, 2)
	h.advance(time.Second)
	reply := packet.NewICMPEcho(macB, macA, ipB, ipA, 7, 1, true)
	h.forward(reply, 2, 1)
	h.advance(5 * time.Second)
	h.wantViolations(0)
}

func TestPingReplyWrongIDDoesNotDischarge(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "ping-reply-within"))
	req := packet.NewICMPEcho(macA, macB, ipA, ipB, 7, 1, false)
	h.forward(req, 1, 2)
	wrong := packet.NewICMPEcho(macB, macA, ipB, ipA, 8, 1, true) // id 8 != 7
	h.forward(wrong, 2, 1)
	h.advance(3 * time.Second)
	h.wantViolations(1)
}
