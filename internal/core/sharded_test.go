package core

import (
	"fmt"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// TestShardPlanAnalysis pins the static sharding analysis on catalog
// properties: a stable stage-zero identity must be detected where it
// exists, and every escape hatch (packet-identity stages, wandering
// identities) must fall back to the catch-all plan.
func TestShardPlanAnalysis(t *testing.T) {
	cases := []struct {
		name      string
		shardable bool
	}{
		{"firewall-basic", true},
		{"firewall-until-close", true},
		// nat-reverse addresses stage 1 by the stage-0 packet identity
		// (SamePacketAs), which no value hash can route.
		{"nat-reverse", false},
	}
	for _, tc := range cases {
		p := property.CatalogByName(property.DefaultParams(), tc.name)
		if p == nil {
			t.Fatalf("missing catalog property %s", tc.name)
		}
		cp, err := compile(p)
		if err != nil {
			t.Fatal(err)
		}
		if cp.plan.shardable != tc.shardable {
			t.Errorf("%s: shardable = %v, want %v", tc.name, cp.plan.shardable, tc.shardable)
		}
		if !cp.plan.shardable {
			continue
		}
		if len(cp.plan.identityVars) == 0 || len(cp.plan.createFields) != len(cp.plan.identityVars) {
			t.Errorf("%s: malformed plan %+v", tc.name, cp.plan)
		}
		if len(cp.plan.routes) == 0 {
			t.Errorf("%s: shardable plan with no routes", tc.name)
		}
		for _, r := range cp.plan.routes {
			if len(r.fields) != len(cp.plan.identityVars) {
				t.Errorf("%s: route %v does not pin all of %v", tc.name, r.fields, cp.plan.identityVars)
			}
		}
	}
}

// driveDifferential feeds one seeded random trace to an inline Monitor
// and a ShardedMonitor in lockstep — events and clock advances alike —
// and requires identical violation multisets, identical aggregate Stats,
// and clean invariants on both. This is the correctness argument for the
// sharded engine: identity-hash routing must be invisible semantically.
func driveDifferential(t *testing.T, shards int, seed int64, props []*property.Property) {
	t.Helper()
	sched := sim.NewScheduler()
	var inlineViols, shardedViols []string
	record := func(sink *[]string) func(*Violation) {
		return func(v *Violation) {
			*sink = append(*sink, fmt.Sprintf("%s@%s", v.Property, v.Time.Format(time.RFC3339Nano)))
		}
	}
	mi := NewMonitor(sched, Config{OnViolation: record(&inlineViols)})
	sm := NewShardedMonitor(shards, Config{OnViolation: record(&shardedViols)})
	defer sm.Close()
	for _, p := range props {
		if err := mi.AddProperty(p); err != nil {
			t.Fatal(err)
		}
		if err := sm.AddProperty(p); err != nil {
			t.Fatal(err)
		}
	}

	rng := sim.NewRand(seed)
	macs := []packet.MAC{macA, macB, packet.MustMAC("02:00:00:00:00:0c")}
	ips := []packet.IPv4{ipA, ipB, ipC, packet.MustIPv4("203.0.113.7")}
	ports := []uint16{80, 7001, 7002, 7003, 22, 40000}
	var pid PacketID

	feed := func(e Event) {
		mi.HandleEvent(e)
		sm.Submit(e)
	}

	for i := 0; i < 400; i++ {
		sched.RunFor(time.Duration(rng.Intn(500)) * time.Millisecond)
		sm.AdvanceTo(sched.Now())
		var p *packet.Packet
		switch rng.Intn(3) {
		case 0:
			p = packet.NewTCP(sim.Choice(rng, macs), sim.Choice(rng, macs),
				sim.Choice(rng, ips), sim.Choice(rng, ips),
				sim.Choice(rng, ports), sim.Choice(rng, ports),
				packet.TCPFlags(rng.Intn(64)), nil)
		case 1:
			p = packet.NewUDP(sim.Choice(rng, macs), sim.Choice(rng, macs),
				sim.Choice(rng, ips), sim.Choice(rng, ips),
				sim.Choice(rng, ports), sim.Choice(rng, ports), nil)
		case 2:
			if rng.Intn(2) == 0 {
				p = packet.NewARPRequest(sim.Choice(rng, macs), sim.Choice(rng, ips), sim.Choice(rng, ips))
			} else {
				p = packet.NewARPReply(sim.Choice(rng, macs), sim.Choice(rng, ips),
					sim.Choice(rng, macs), sim.Choice(rng, ips))
			}
		}
		pid++
		inPort := uint64(rng.Intn(4) + 1)
		now := sched.Now()
		feed(Event{Kind: KindArrival, Time: now, PacketID: pid, Packet: p, InPort: inPort})
		switch rng.Intn(3) {
		case 0:
			feed(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: p,
				InPort: inPort, Dropped: true})
		default:
			feed(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: p,
				InPort: inPort, OutPort: uint64(rng.Intn(4) + 1)})
		}
	}
	sched.RunFor(time.Minute) // let stragglers time out
	sm.AdvanceTo(sched.Now())

	if is, ss := mi.Stats(), sm.Stats(); is != ss {
		t.Fatalf("stats diverge:\ninline:  %+v\nsharded: %+v", is, ss)
	}
	count := map[string]int{}
	for _, s := range inlineViols {
		count[s]++
	}
	for _, s := range shardedViols {
		count[s]--
		if count[s] < 0 {
			t.Fatalf("sharded engine produced extra violation %s", s)
		}
	}
	for s, n := range count {
		if n != 0 {
			t.Fatalf("violation multiset mismatch at %s (%+d)", s, n)
		}
	}
	if mi.ActiveInstances() != sm.ActiveInstances() {
		t.Fatalf("live instances differ: inline=%d sharded=%d",
			mi.ActiveInstances(), sm.ActiveInstances())
	}
	if err := mi.SelfCheck(); err != nil {
		t.Fatalf("inline engine invariants: %v", err)
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatalf("sharded engine invariants: %v", err)
	}
}

// TestShardedEngineMatchesInlineEngine is the sharded counterpart of the
// indexed-vs-scanning differential, across shard counts and seeds, over a
// property mix spanning shardable and catch-all plans.
func TestShardedEngineMatchesInlineEngine(t *testing.T) {
	props := []*property.Property{
		property.CatalogByName(property.DefaultParams(), "firewall-until-close"),
		property.CatalogByName(property.DefaultParams(), "lswitch-unicast"),
		property.CatalogByName(property.DefaultParams(), "arp-proxy-reply"),
		property.CatalogByName(property.DefaultParams(), "knock-intervening"),
	}
	for _, shards := range []int{1, 2, 4} {
		for seed := int64(1); seed <= 5; seed++ {
			shards, seed := shards, seed
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				driveDifferential(t, shards, seed, props)
			})
		}
	}
}

// TestShardedHighVolumeDrain stresses the concurrent queues without
// intervening barriers: a firewall-style open/violate stream is pumped
// end to end, and only Drain synchronizes. Meaningful under -race; also
// checks that routed violations neither duplicate nor vanish.
func TestShardedHighVolumeDrain(t *testing.T) {
	const flows = 5000
	fw := property.CatalogByName(property.DefaultParams(), "firewall-basic")
	viols := 0
	sm := NewShardedMonitor(4, Config{OnViolation: func(*Violation) { viols++ }})
	defer sm.Close()
	if err := sm.AddProperty(fw); err != nil {
		t.Fatal(err)
	}
	if !sm.Shardable(0) {
		t.Fatal("firewall-basic should shard")
	}
	now := sim.Epoch
	var pid PacketID
	for f := 0; f < flows; f++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		dst := packet.IPv4FromUint32(0xcb007100 | uint32(f%200))
		open := packet.NewTCP(macA, macB, src, dst, uint16(10000+f%50000), 80, packet.FlagSYN, nil)
		pid++
		sm.Submit(Event{Kind: KindArrival, Time: now, PacketID: pid, Packet: open, InPort: 1})
		sm.Submit(Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: open, InPort: 1, OutPort: 2})
		// Return traffic: every 10th flow's return is dropped -> violation.
		ret := packet.NewTCP(macB, macA, dst, src, 80, uint16(10000+f%50000), packet.FlagACK, nil)
		pid++
		ev := Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: ret, InPort: 2}
		if f%10 == 0 {
			ev.Dropped = true
		} else {
			ev.OutPort = 1
		}
		sm.Submit(ev)
		now = now.Add(time.Microsecond)
	}
	sm.Drain()
	st := sm.Stats()
	if want := uint64(flows / 10); st.Violations != want {
		t.Fatalf("violations = %d, want %d", st.Violations, want)
	}
	if uint64(viols) != st.Violations {
		t.Fatalf("callback saw %d violations, stats say %d", viols, st.Violations)
	}
	if st.Created != flows {
		t.Fatalf("created = %d, want %d", st.Created, flows)
	}
	// The identity hash must actually spread the load: with 5000 distinct
	// flow identities, no shard should sit idle.
	for i, ss := range sm.ShardStats() {
		if ss.Created == 0 {
			t.Errorf("shard %d created no instances (load imbalance)", i)
		}
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}
