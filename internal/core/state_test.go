package core

import (
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// fwOpen builds the stage-0 arrival that opens firewall flow f (internal
// A -> external B on the internal port).
func fwOpen(sched *sim.Scheduler, pid *PacketID, f int) Event {
	src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
	dst := packet.IPv4FromUint32(0xcb007100 | uint32(f))
	p := packet.NewTCP(macA, macB, src, dst, uint16(10000+f), 80, packet.FlagSYN, nil)
	*pid++
	return Event{Kind: KindArrival, Time: sched.Now(), PacketID: *pid, Packet: p, InPort: 1}
}

// TestStateAccountingZeroAlloc is the E16 zero-alloc gate, in two parts.
//
// Part 1: the indexed steady-state path (return traffic probing the
// stage-1 index; accounting pays only a pool get/put per dedup) must
// stay within TestSteadyStateAllocationBudget's budget with full
// accounting — sketch, sampling, and watermark — enabled.
//
// Part 2: the filing path (open -> window expiry -> reopen churn, where
// accounting charges bytes, hashes the flow key, feeds the sketch, and
// tracks timers) must allocate exactly as much as the same churn with
// accounting disabled: the baseline's timer allocation is all there is.
func TestStateAccountingZeroAlloc(t *testing.T) {
	// Part 1: steady state, accounting on.
	sched := sim.NewScheduler()
	mon := NewMonitor(sched, Config{StateTopK: 32, StateSample: 1, StateWatermark: 1 << 20})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	const flows = 256
	var pid PacketID
	events := make([]Event, 0, flows)
	for f := 0; f < flows; f++ {
		open := fwOpen(sched, &pid, f)
		mon.HandleEvent(open)
		mon.HandleEvent(Event{Kind: KindEgress, Time: sched.Now(), PacketID: open.PacketID,
			Packet: open.Packet, InPort: 1, OutPort: 2})
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		dst := packet.IPv4FromUint32(0xcb007100 | uint32(f))
		ret := packet.NewTCP(macB, macA, dst, src, 80, uint16(10000+f), packet.FlagACK, nil)
		pid++
		events = append(events, Event{Kind: KindEgress, Time: sched.Now(), PacketID: pid,
			Packet: ret, InPort: 2, OutPort: 1})
	}
	for i := range events {
		mon.HandleEvent(events[i])
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		mon.HandleEvent(events[i%len(events)])
		i++
	})
	if avg > 2 {
		t.Fatalf("steady-state path with accounting allocates %.1f/event, budget is 2", avg)
	}

	// Part 2: filing churn, accounting on vs off. One run = open a flow
	// (files an instance, arms its window timer) then advance past the
	// window (expires it back to the pool). The only allocation either
	// way is the scheduler's timer; accounting must add none.
	churn := func(cfg Config) float64 {
		sched := sim.NewScheduler()
		mon := NewMonitor(sched, cfg)
		if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-timeout")); err != nil {
			t.Fatal(err)
		}
		var pid PacketID
		cycle := func() {
			mon.HandleEvent(fwOpen(sched, &pid, 7))
			sched.RunFor(property.DefaultParams().FirewallWindow + time.Second)
		}
		for i := 0; i < 32; i++ {
			cycle() // warm the pool, maps, and sketch slot
		}
		return testing.AllocsPerRun(1000, cycle)
	}
	off := churn(Config{DisableStateAccounting: true})
	on := churn(Config{StateTopK: 32, StateSample: 1, StateWatermark: 1 << 20})
	if on > off {
		t.Fatalf("filing churn allocates %.2f/cycle with accounting vs %.2f without; accounting must add 0", on, off)
	}
}

// TestStateTopKExactOnSkewedWorkload drives a deterministic skewed
// workload — flow f files f+1 times, forced by window-expiry churn on
// firewall-timeout — through an unsampled sketch with spare capacity and
// checks /state's top-K against the exact counts: every flow present,
// every estimate exact (zero error bound), heaviest first.
func TestStateTopKExactOnSkewedWorkload(t *testing.T) {
	sched := sim.NewScheduler()
	mon := NewMonitor(sched, Config{StateTopK: 16, StateSample: 1})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-timeout")); err != nil {
		t.Fatal(err)
	}
	const nflows = 8
	var pid PacketID
	total := uint64(0)
	// Round r opens every flow with more filings owed than r; the window
	// expiry between rounds is what makes each open a fresh filing
	// rather than a dedup refresh.
	for r := 0; r < nflows; r++ {
		for f := 0; f < nflows; f++ {
			if f+1 > r {
				mon.HandleEvent(fwOpen(sched, &pid, f))
				total++
			}
		}
		sched.RunFor(property.DefaultParams().FirewallWindow + time.Second)
	}
	rep := mon.StateReport()
	if len(rep.Properties) != 1 {
		t.Fatalf("properties = %d, want 1", len(rep.Properties))
	}
	p := rep.Properties[0]
	if p.Property != "firewall-timeout" {
		t.Fatalf("property = %q", p.Property)
	}
	if p.Live != 0 || p.Timers != 0 {
		t.Fatalf("after full expiry: live=%d timers=%d, want 0/0", p.Live, p.Timers)
	}
	if p.Filings != total {
		t.Fatalf("filings = %d, want %d", p.Filings, total)
	}
	if rep.Pooled < 1 {
		t.Fatalf("pooled = %d; expired instances should be parked on the free list", rep.Pooled)
	}
	if len(p.TopKeys) != nflows {
		t.Fatalf("topk has %d keys, want %d: %v", len(p.TopKeys), nflows, p.TopKeys)
	}
	// Under capacity and unsampled, space-saving is exact: counts are
	// precisely {1..nflows}, descending, with zero error bound.
	for i, kw := range p.TopKeys {
		want := uint64(nflows - i)
		if kw.Filings != want {
			t.Fatalf("topk[%d] = %d filings, want %d (exact)", i, kw.Filings, want)
		}
		if kw.MaxOver != 0 {
			t.Fatalf("topk[%d] error bound = %d, want 0 under capacity", i, kw.MaxOver)
		}
	}
}

// TestStateReportTracksLiveState pins the accounting invariants on a
// live (unexpired) population: live matches ActiveInstances, timers
// match the windowed instance count, bytes are charged while filed and
// fully refunded after expiry.
func TestStateReportTracksLiveState(t *testing.T) {
	sched := sim.NewScheduler()
	mon := NewMonitor(sched, Config{})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-timeout")); err != nil {
		t.Fatal(err)
	}
	var pid PacketID
	const flows = 10
	for f := 0; f < flows; f++ {
		mon.HandleEvent(fwOpen(sched, &pid, f))
	}
	p := mon.StateReport().Properties[0]
	if p.Live != flows || int(p.Live) != mon.ActiveInstances() {
		t.Fatalf("live = %d, ActiveInstances = %d, want %d", p.Live, mon.ActiveInstances(), flows)
	}
	if p.Timers != flows {
		t.Fatalf("timers = %d, want %d (every firewall-timeout instance is windowed)", p.Timers, flows)
	}
	if p.Bytes <= 0 {
		t.Fatalf("bytes = %d, want positive while instances are live", p.Bytes)
	}
	sched.RunFor(property.DefaultParams().FirewallWindow + time.Second)
	p = mon.StateReport().Properties[0]
	if p.Live != 0 || p.Timers != 0 || p.Bytes != 0 {
		t.Fatalf("after expiry: live=%d timers=%d bytes=%d, want all zero", p.Live, p.Timers, p.Bytes)
	}
}

// TestStateWatermarkRaisesBeforeEviction configures both a watermark and
// a MaxInstances cap and checks the ordering promise: pressure raises
// while the engine is still sound (no evictions yet), i.e. the warning
// fires before the mechanism it warns about.
func TestStateWatermarkRaisesBeforeEviction(t *testing.T) {
	sched := sim.NewScheduler()
	mon := NewMonitor(sched, Config{StateWatermark: 4, MaxInstances: 8})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	var pid PacketID
	for f := 0; f < 6; f++ {
		mon.HandleEvent(fwOpen(sched, &pid, f))
	}
	p := mon.StateReport().Properties[0]
	if !p.Pressure || p.Crossings != 1 {
		t.Fatalf("pressure=%v crossings=%d at live=6 over watermark 4, want raised once", p.Pressure, p.Crossings)
	}
	if got := mon.Stats().Evicted; got != 0 {
		t.Fatalf("evicted = %d before the cap; pressure must lead eviction, not trail it", got)
	}
	if p.Unsound != nil {
		t.Fatalf("pressure marked the ledger (%v); it is a warning, not an unsoundness", p.Unsound)
	}
}

// TestStateReportDisabled pins the DisableStateAccounting contract: an
// empty report, no per-property entries, and a nil-safe hot path.
func TestStateReportDisabled(t *testing.T) {
	sched := sim.NewScheduler()
	mon := NewMonitor(sched, Config{DisableStateAccounting: true})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	var pid PacketID
	mon.HandleEvent(fwOpen(sched, &pid, 0))
	if rep := mon.StateReport(); len(rep.Properties) != 0 {
		t.Fatalf("disabled accounting returned %+v", rep)
	}
}

// TestShardedStateReport checks the sharded engine's report: per-shard
// breakdowns summing to the totals, agreement with ActiveInstances after
// quiesce, and the unsound cross-reference picking up ledger marks.
func TestShardedStateReport(t *testing.T) {
	sm := NewShardedMonitor(4, Config{StateTopK: 8, StateSample: 1})
	if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	var pid PacketID
	const flows = 64
	for f := 0; f < flows; f++ {
		sm.Submit(fwOpen(sched, &pid, f))
	}
	sm.Barrier()
	rep := sm.StateReport()
	if rep.Shards != 4 {
		t.Fatalf("report shards = %d, want 4", rep.Shards)
	}
	p := rep.Properties[0]
	if int(p.Live) != sm.ActiveInstances() || p.Live != flows {
		t.Fatalf("live = %d, ActiveInstances = %d, want %d", p.Live, sm.ActiveInstances(), flows)
	}
	if len(p.Shards) != 4 {
		t.Fatalf("per-shard breakdown has %d entries, want 4", len(p.Shards))
	}
	var sumLive, sumBytes int64
	var sumFil uint64
	spread := 0
	for _, s := range p.Shards {
		sumLive += s.Live
		sumBytes += s.Bytes
		sumFil += s.Filings
		if s.Live > 0 {
			spread++
		}
	}
	if sumLive != p.Live || sumBytes != p.Bytes || sumFil != p.Filings {
		t.Fatalf("shard sums (%d, %d, %d) disagree with totals (%d, %d, %d)",
			sumLive, sumBytes, sumFil, p.Live, p.Bytes, p.Filings)
	}
	if spread < 2 {
		t.Fatalf("all %d flows landed on one shard; routing should spread them", flows)
	}
	if p.Unsound != nil || p.Quarantined {
		t.Fatalf("clean run reports unsound=%v quarantined=%v", p.Unsound, p.Quarantined)
	}
	sm.MarkFeedLoss(sched.Now(), 3, "test loss")
	p = sm.StateReport().Properties[0]
	um, ok := p.Unsound.(UnsoundMark)
	if !ok {
		t.Fatalf("after feed loss, unsound = %#v, want an UnsoundMark", p.Unsound)
	}
	if um.Reason != UnsoundInjectedLoss {
		t.Fatalf("unsound reason = %v, want injected loss", um.Reason)
	}
	sm.Close()
}

// TestFlowKeyStableAcrossStages pins the property that makes top-K keys
// meaningful: an instance keeps the same flow key as it advances stages
// (the key hashes bindings only, unlike the stage-tagged dedup
// signature), so a flow's filings aggregate under one key.
func TestFlowKeyStableAcrossStages(t *testing.T) {
	env := bindings{"A": packet.Num(0x0a000001), "B": packet.Num(0xcb007101)}
	k1 := flowKey(env)
	// Same bindings, different insertion order: order-invariant.
	env2 := bindings{"B": packet.Num(0xcb007101), "A": packet.Num(0x0a000001)}
	if k2 := flowKey(env2); k2 != k1 {
		t.Fatalf("flow key depends on binding order: %#x vs %#x", k1, k2)
	}
	env3 := bindings{"A": packet.Num(0x0a000002), "B": packet.Num(0xcb007101)}
	if k3 := flowKey(env3); k3 == k1 {
		t.Fatalf("distinct bindings collided: %#x", k1)
	}
	if flowKey(bindings{}) == 0 {
		t.Fatal("empty bindings must map to the nonzero sentinel")
	}
}
