package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// ProvLevel selects how much history a violation report carries —
// the paper's Feature 10 trade-off between full provenance and
// performance.
type ProvLevel uint8

// Provenance levels.
const (
	// ProvNone reports only the final trigger event.
	ProvNone ProvLevel = iota
	// ProvLimited additionally reports the variable bindings — header
	// values already retained for matching, so (as the paper observes)
	// recoverable "without added cost".
	ProvLimited
	// ProvFull additionally records every event that advanced the
	// instance.
	ProvFull
)

// String names the level.
func (l ProvLevel) String() string {
	switch l {
	case ProvNone:
		return "none"
	case ProvLimited:
		return "limited"
	case ProvFull:
		return "full"
	default:
		return fmt.Sprintf("ProvLevel(%d)", uint8(l))
	}
}

// ProvRecord is one step of a violation's history (ProvFull only).
type ProvRecord struct {
	Stage int
	Label string
	Time  time.Time
	// Event is the summary of the advancing event; "timeout" for negative
	// observations advanced by their deadline.
	Event string
}

// Violation reports one completed violation pattern.
type Violation struct {
	Property string
	Time     time.Time
	// Trigger describes the final event (or timeout) that completed the
	// pattern.
	Trigger string
	// Bindings holds the instance's variable values (ProvLimited and up).
	Bindings map[property.Var]packet.Value
	// History holds per-stage records (ProvFull only).
	History []ProvRecord
}

// String renders a human-readable report.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "VIOLATION %s at %s: %s", v.Property, v.Time.Format(time.RFC3339Nano), v.Trigger)
	if len(v.Bindings) > 0 {
		vars := make([]string, 0, len(v.Bindings))
		for k := range v.Bindings {
			vars = append(vars, string(k))
		}
		sort.Strings(vars)
		parts := make([]string, len(vars))
		for i, k := range vars {
			parts[i] = fmt.Sprintf("$%s=%s", k, v.Bindings[property.Var(k)])
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, " "))
	}
	for _, r := range v.History {
		fmt.Fprintf(&b, "\n  stage %d (%s) at %s: %s", r.Stage, r.Label, r.Time.Format(time.RFC3339Nano), r.Event)
	}
	return b.String()
}

// TraceRecord converts the violation into the obs trace-ring / JSON
// representation, carrying whatever provenance the report itself holds
// (bindings at ProvLimited and above, history at ProvFull). Seq is left
// zero; the ring stamps it on append.
func (v *Violation) TraceRecord() obs.TraceRecord {
	rec := obs.TraceRecord{Time: v.Time, Property: v.Property, Trigger: v.Trigger}
	if len(v.Bindings) > 0 {
		rec.Bindings = make(map[string]string, len(v.Bindings))
		for k, val := range v.Bindings {
			rec.Bindings[string(k)] = val.String()
		}
	}
	for _, h := range v.History {
		rec.History = append(rec.History, obs.TraceStep{
			Stage: h.Stage, Label: h.Label, Time: h.Time, Event: h.Event,
		})
	}
	return rec
}
