package core

import (
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// perSwitchProp builds a two-stage property whose identity pins
// switch.id: a SYN arriving on a switch must egress on that same
// switch within a second.
func perSwitchProp(t *testing.T) *property.Property {
	t.Helper()
	b := property.New("per-switch-delivery", "test: dpid-scoped delivery")
	b.OnArrival("syn").
		Where(property.Eq(packet.FieldTCPSyn, 1)).
		Bind("sw", packet.FieldSwitchID).
		Bind("src", packet.FieldIPSrc)
	b.OnEgress("fwd").
		Where(property.EqVar(packet.FieldSwitchID, "sw"), property.EqVar(packet.FieldIPSrc, "src")).
		Within(time.Second)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// crossSwitchProp correlates events across switches: no switch.id in
// the identity, so dpid partitioning would split an instance's
// evidence across collectors.
func crossSwitchProp(t *testing.T) *property.Property {
	t.Helper()
	b := property.New("cross-switch-delivery", "test: fabric-wide delivery")
	b.OnArrival("in").
		Where(property.Eq(packet.FieldTCPSyn, 1)).
		Bind("src", packet.FieldIPSrc).
		Bind("dst", packet.FieldIPDst)
	b.OnEgress("out").
		Where(property.EqVar(packet.FieldIPSrc, "src"), property.EqVar(packet.FieldIPDst, "dst")).
		Within(time.Second)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestDPIDPartitionable(t *testing.T) {
	ok, err := DPIDPartitionable(perSwitchProp(t))
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	if !ok {
		t.Fatal("per-switch property reported not dpid-partitionable")
	}
	ok, err = DPIDPartitionable(crossSwitchProp(t))
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	if ok {
		t.Fatal("cross-switch property reported dpid-partitionable")
	}
}

func TestValidateDPIDPartition(t *testing.T) {
	if err := ValidateDPIDPartition([]*property.Property{perSwitchProp(t)}); err != nil {
		t.Fatalf("clean set rejected: %v", err)
	}
	err := ValidateDPIDPartition([]*property.Property{perSwitchProp(t), crossSwitchProp(t)})
	if err == nil {
		t.Fatal("cross-switch property accepted")
	}
}

func TestIdentityPartitionFunc(t *testing.T) {
	key, err := IdentityPartitionFunc([]*property.Property{crossSwitchProp(t)})
	if err != nil {
		t.Fatalf("derive: %v", err)
	}
	tcp := packet.NewTCP(packet.MustMAC("02:00:00:00:00:0a"), packet.MustMAC("02:00:00:00:00:0b"),
		packet.MustIPv4("10.0.0.1"), packet.MustIPv4("10.0.0.2"), 1234, 80, packet.FlagSYN, nil)
	e1 := Event{Kind: KindArrival, SwitchID: 1, Packet: tcp}
	e2 := Event{Kind: KindEgress, SwitchID: 2, Packet: tcp, OutPort: 3}
	k1, ok1 := key(&e1)
	k2, ok2 := key(&e2)
	if !ok1 || !ok2 {
		t.Fatal("events carrying the identity fields reported unroutable")
	}
	if k1 != k2 {
		t.Fatalf("same flow keyed differently across switches: %x vs %x", k1, k2)
	}
	// An out-of-band event carries no IP fields: unroutable by design,
	// and by the analysis no instance can consume it.
	oob := Event{Kind: KindOutOfBand, SwitchID: 1, OOBKind: packet.OOBLinkDown, OOBPort: 2}
	if _, ok := key(&oob); ok {
		t.Fatal("field-less event reported routable")
	}
	// A set whose members key on different identities has no shared
	// event-level key.
	if _, err := IdentityPartitionFunc([]*property.Property{crossSwitchProp(t), perSwitchProp(t)}); err == nil {
		t.Fatal("disagreeing identity sets accepted")
	}
}
