package core

import (
	"errors"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// superviseStream is a deterministic firewall-shaped workload: flows
// open, exchange returns, and every tenth return is wrongfully dropped
// (a firewall-basic violation). Distinct (src,dst) pairs spread the
// stream across shards.
func superviseStream(flows, returns int) []Event {
	var evs []Event
	var pid PacketID
	now := sim.Epoch
	step := func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}
	for f := 0; f < flows; f++ {
		src := packet.IPv4FromUint32(0x0a000000 + uint32(f))
		dst := packet.IPv4FromUint32(0xcb000000 + uint32(f))
		open := packet.NewTCP(macA, macB, src, dst, uint16(10000+f%50000), 80, packet.FlagSYN, nil)
		pid++
		evs = append(evs,
			Event{Kind: KindArrival, Time: step(), PacketID: pid, Packet: open, InPort: 1},
			Event{Kind: KindEgress, Time: now, PacketID: pid, Packet: open, InPort: 1, OutPort: 2})
	}
	n := 0
	for r := 0; r < returns; r++ {
		for f := 0; f < flows; f++ {
			src := packet.IPv4FromUint32(0x0a000000 + uint32(f))
			dst := packet.IPv4FromUint32(0xcb000000 + uint32(f))
			ret := packet.NewTCP(macB, macA, dst, src, 80, uint16(10000+f%50000), packet.FlagACK, nil)
			pid++
			n++
			eg := Event{Kind: KindEgress, Time: step(), PacketID: pid, Packet: ret, InPort: 2, OutPort: 1}
			if n%10 == 0 {
				eg.OutPort = 0
				eg.Dropped = true
			}
			evs = append(evs,
				Event{Kind: KindArrival, Time: now, PacketID: pid, Packet: ret, InPort: 2},
				eg)
		}
	}
	return evs
}

// TestShardPanicKillsProcessWithoutSupervision demonstrates the
// pre-supervision failure mode this PR exists to remove: with
// DisableSupervision a panic in one property's step on one shard kills
// the whole process. The test re-executes itself as a child process
// (the only way to observe a process death) and expects the child to
// die with the panic on stderr.
func TestShardPanicKillsProcessWithoutSupervision(t *testing.T) {
	if os.Getenv("SWITCHMON_CRASH_PROBE") == "1" {
		sm := NewShardedMonitor(2, Config{DisableSupervision: true})
		if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
			t.Fatal(err)
		}
		if err := sm.SetShardProbe(0, func(prop int, seq uint64) {
			if seq == 3 {
				panic("injected step panic (unsupervised)")
			}
		}); err != nil {
			t.Fatal(err)
		}
		evs := superviseStream(100, 2)
		for i := range evs {
			_ = sm.Submit(evs[i])
		}
		sm.Barrier()
		// Unreachable when the panic propagates; exiting 0 would tell the
		// parent that the process survived.
		os.Exit(0)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestShardPanicKillsProcessWithoutSupervision$", "-test.v")
	cmd.Env = append(os.Environ(), "SWITCHMON_CRASH_PROBE=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unsupervised shard panic did not kill the process; child output:\n%s", out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("child failed to run at all: %v", err)
	}
	if !strings.Contains(string(out), "injected step panic (unsupervised)") {
		t.Fatalf("child died, but not from the injected panic:\n%s", out)
	}
}

// The differential quarantine gate (acceptance criterion): inject a
// panic into one property on one shard; the process must survive, the
// panicking property must be quarantined and flagged unsound, and every
// other property's violation count must be identical to an inline
// engine's on the same trace.
func TestShardPanicQuarantinesOnlyThatProperty(t *testing.T) {
	props := []*property.Property{
		property.CatalogByName(property.DefaultParams(), "firewall-basic"),
		property.CatalogByName(property.DefaultParams(), "firewall-until-close"),
		property.CatalogByName(property.DefaultParams(), "nat-reverse"), // catch-all: exercises shard 0
	}
	const victim = 1 // firewall-until-close
	evs := superviseStream(300, 3)

	// Inline reference run.
	inlineCounts := map[string]int{}
	sched := sim.NewScheduler()
	mi := NewMonitor(sched, Config{OnViolation: func(v *Violation) { inlineCounts[v.Property]++ }})
	for _, p := range props {
		if err := mi.AddProperty(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := range evs {
		if evs[i].Time.After(sched.Now()) {
			sched.RunUntil(evs[i].Time)
		}
		mi.HandleEvent(evs[i])
	}
	sched.RunFor(time.Hour)

	// Sharded run with an injected panic in the victim property.
	shardedCounts := map[string]int{}
	var mu sync.Mutex
	sm := NewShardedMonitor(4, Config{OnViolation: func(v *Violation) {
		mu.Lock()
		shardedCounts[v.Property]++
		mu.Unlock()
	}})
	defer sm.Close()
	for _, p := range props {
		if err := sm.AddProperty(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := sm.SetShardProbe(2, func(prop int, seq uint64) {
		if prop == victim {
			panic("injected step panic (supervised)")
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range evs {
		if err := sm.Submit(evs[i]); err != nil {
			t.Fatal(err)
		}
		sm.Tick(evs[i].Time)
	}
	sm.AdvanceTo(evs[len(evs)-1].Time.Add(time.Hour))

	// The process survived (we are here). The victim must be quarantined
	// and flagged unsound with the panic attributed.
	st := sm.Stats()
	if st.QuarantinedProperties != 1 {
		t.Fatalf("QuarantinedProperties=%d want 1", st.QuarantinedProperties)
	}
	if sm.Quarantined() != uint64(1)<<victim {
		t.Fatalf("quarantine mask=%b want bit %d", sm.Quarantined(), victim)
	}
	marks := sm.Ledger().Snapshot()
	if len(marks) != 1 || marks[0].Property != props[victim].Name || marks[0].Reason != UnsoundQuarantine {
		t.Fatalf("ledger marks=%+v want one quarantine mark for %s", marks, props[victim].Name)
	}
	if !strings.Contains(marks[0].Detail, "injected step panic") {
		t.Fatalf("mark detail %q does not carry the panic", marks[0].Detail)
	}
	// Differential gate: every surviving property agrees with inline.
	// nat-reverse legitimately sees zero violations on a firewall-shaped
	// stream (it rides along as the catch-all/shard-0 property), so the
	// non-vacuity requirement is on the gate as a whole, not per property.
	nonVacuous := false
	for i, p := range props {
		if i == victim {
			continue
		}
		if inlineCounts[p.Name] != shardedCounts[p.Name] {
			t.Errorf("%s: inline=%d sharded=%d violations", p.Name, inlineCounts[p.Name], shardedCounts[p.Name])
		}
		if inlineCounts[p.Name] > 0 {
			nonVacuous = true
		}
	}
	if !nonVacuous {
		t.Error("no surviving property found violations; the gate is vacuous")
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatalf("post-quarantine invariants: %v", err)
	}
}

// A panic inside a timer callback — here the user violation callback,
// fired by ping-reply-within's UnlessWithin deadline expiring with no
// reply — is recovered by the RunUntil supervisor and attributed to the
// right property. This exercises the timer path (advanceByTimeout),
// which runs under Scheduler.RunUntil rather than batch application.
func TestTimerPanicIsSupervised(t *testing.T) {
	sm := NewShardedMonitor(2, Config{OnViolation: func(v *Violation) {
		if v.Property == "ping-reply-within" {
			panic("violation callback exploded")
		}
	}})
	defer sm.Close()
	if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "ping-reply-within")); err != nil {
		t.Fatal(err)
	}
	// Echo requests that never get a reply: each one violates when its
	// window deadline fires during AdvanceTo.
	now := sim.Epoch
	var evs []Event
	for i := 0; i < 20; i++ {
		src := packet.IPv4FromUint32(0x0a000000 + uint32(i))
		dst := packet.IPv4FromUint32(0xcb000000 + uint32(i))
		req := packet.NewICMPEcho(macA, macB, src, dst, uint16(i+1), 1, false)
		now = now.Add(time.Millisecond)
		evs = append(evs, Event{Kind: KindArrival, Time: now, PacketID: PacketID(i + 1), Packet: req, InPort: 1})
	}
	if err := sm.SubmitBatch(evs, nil); err != nil {
		t.Fatal(err)
	}
	sm.AdvanceTo(now.Add(24 * time.Hour))
	marks := sm.Ledger().Snapshot()
	if len(marks) != 1 || marks[0].Reason != UnsoundQuarantine || marks[0].Property != "ping-reply-within" {
		t.Fatalf("expected ping-reply-within quarantined from a timer panic, got %+v", marks)
	}
}

// Close satellite: idempotent, concurrency-safe, and Submit reports
// ErrClosed afterwards instead of panicking on a closed channel.
func TestCloseIdempotentAndSubmitAfterClose(t *testing.T) {
	sm := NewShardedMonitor(2, Config{})
	if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	evs := superviseStream(20, 1)
	for i := range evs {
		if err := sm.Submit(evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sm.Close()
		}()
	}
	wg.Wait()
	sm.Close() // and again, after it is already closed
	if err := sm.Submit(evs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := sm.SubmitBatch(evs, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitBatch after Close = %v, want ErrClosed", err)
	}
	// Aggregate accessors stay usable after Close.
	if st := sm.Stats(); st.Events == 0 {
		t.Fatal("Stats unusable after Close")
	}
}

// Close racing Submit: the loser of the race gets ErrClosed, never a
// panic. Run under -race in check.sh.
func TestCloseConcurrentWithSubmit(t *testing.T) {
	sm := NewShardedMonitor(2, Config{})
	if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	evs := superviseStream(50, 2)
	done := make(chan error, 1)
	go func() {
		for {
			for i := range evs {
				if err := sm.Submit(evs[i]); err != nil {
					done <- err
					return
				}
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	sm.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("racing Submit returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submitter never observed the close")
	}
}

// Shed policies: a stalled shard with a bounded queue must shed instead
// of blocking forever, count every shed event, and mark the affected
// properties unsound — while ShedBlock (the default) never sheds.
func TestShedPolicies(t *testing.T) {
	run := func(policy ShedPolicy) Stats {
		release := make(chan struct{})
		var once sync.Once
		sm := NewShardedMonitor(1, Config{
			ShardQueueLen: 1,
			ShedPolicy:    policy,
		})
		defer sm.Close()
		if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
			t.Fatal(err)
		}
		// Stall the only shard on its first event so the router outruns it.
		if err := sm.SetShardProbe(0, func(prop int, seq uint64) {
			once.Do(func() { <-release })
		}); err != nil {
			t.Fatal(err)
		}
		evs := superviseStream(400, 2)
		go func() {
			// Hold the worker just long enough for the router to fill the
			// queue; the router never blocks under the shedding policies,
			// so this cannot deadlock the test.
			time.Sleep(20 * time.Millisecond)
			close(release)
		}()
		if policy == ShedBlock {
			// With a blocking policy the router would stall against the
			// held worker; release immediately instead — this run only
			// establishes the no-shed baseline.
			once.Do(func() {}) // consume the once so the probe never blocks
		}
		for i := range evs {
			if err := sm.Submit(evs[i]); err != nil {
				t.Fatal(err)
			}
		}
		st := sm.Stats()
		if err := sm.SelfCheck(); err != nil {
			t.Fatalf("%v after shedding: %v", policy, err)
		}
		return st
	}

	if st := run(ShedBlock); st.ShedEvents != 0 {
		t.Fatalf("ShedBlock shed %d events; must never shed", st.ShedEvents)
	}
	for _, policy := range []ShedPolicy{ShedDropNewest, ShedDropOldest} {
		st := run(policy)
		if st.ShedEvents == 0 {
			t.Fatalf("%v: stalled shard with a 1-batch queue shed nothing", policy)
		}
		if st.Events == 0 {
			t.Fatalf("%v: no events submitted?", policy)
		}
	}

	// The shed run must mark the property unsound with the shed reason.
	release := make(chan struct{})
	var once sync.Once
	sm := NewShardedMonitor(1, Config{ShardQueueLen: 1, ShedPolicy: ShedDropOldest})
	defer sm.Close()
	if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	if err := sm.SetShardProbe(0, func(prop int, seq uint64) {
		once.Do(func() { <-release })
	}); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	evs := superviseStream(400, 2)
	for i := range evs {
		if err := sm.Submit(evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sm.Barrier()
	marks := sm.Ledger().Snapshot()
	if len(marks) == 0 || marks[0].Reason != UnsoundShed || marks[0].Events == 0 {
		t.Fatalf("expected a shed mark with an event count, got %+v", marks)
	}
	if sm.Ledger().Sound() {
		t.Fatal("ledger claims soundness after shedding")
	}
}

// ShedPolicy and ShedBlock string forms (used in CLI/docs output).
func TestShedPolicyString(t *testing.T) {
	for want, p := range map[string]ShedPolicy{
		"block": ShedBlock, "drop-newest": ShedDropNewest, "drop-oldest": ShedDropOldest,
	} {
		if p.String() != want {
			t.Errorf("%d.String()=%q want %q", p, p.String(), want)
		}
	}
}
