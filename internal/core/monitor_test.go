package core

import (
	"fmt"
	"testing"
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

var (
	macA = packet.MustMAC("02:00:00:00:00:0a")
	macB = packet.MustMAC("02:00:00:00:00:0b")
	ipA  = packet.MustIPv4("10.0.0.1")
	ipB  = packet.MustIPv4("203.0.113.9")
	ipC  = packet.MustIPv4("10.0.0.2")
)

// harness wires a monitor to a scheduler and collects violations.
type harness struct {
	t     *testing.T
	sched *sim.Scheduler
	mon   *Monitor
	viols []*Violation
	pid   PacketID
}

func newHarness(t *testing.T, cfg Config, props ...*property.Property) *harness {
	t.Helper()
	h := &harness{t: t, sched: sim.NewScheduler()}
	cfg.OnViolation = func(v *Violation) { h.viols = append(h.viols, v) }
	h.mon = NewMonitor(h.sched, cfg)
	for _, p := range props {
		if err := h.mon.AddProperty(p); err != nil {
			t.Fatalf("AddProperty(%s): %v", p.Name, err)
		}
	}
	return h
}

func (h *harness) nextPID() PacketID {
	h.pid++
	return h.pid
}

// arrival feeds an arrival event and returns its packet ID for pairing
// with egress events.
func (h *harness) arrival(p *packet.Packet, inPort uint64) PacketID {
	id := h.nextPID()
	h.mon.HandleEvent(Event{
		Kind: KindArrival, Time: h.sched.Now(), PacketID: id,
		Packet: p, InPort: inPort,
	})
	return id
}

func (h *harness) egress(id PacketID, p *packet.Packet, inPort, outPort uint64) {
	h.mon.HandleEvent(Event{
		Kind: KindEgress, Time: h.sched.Now(), PacketID: id,
		Packet: p, InPort: inPort, OutPort: outPort,
	})
}

func (h *harness) egressMulti(id PacketID, p *packet.Packet, inPort, outPort uint64) {
	h.mon.HandleEvent(Event{
		Kind: KindEgress, Time: h.sched.Now(), PacketID: id,
		Packet: p, InPort: inPort, OutPort: outPort, Multicast: true,
	})
}

func (h *harness) drop(id PacketID, p *packet.Packet, inPort uint64) {
	h.mon.HandleEvent(Event{
		Kind: KindEgress, Time: h.sched.Now(), PacketID: id,
		Packet: p, InPort: inPort, Dropped: true,
	})
}

func (h *harness) oob(kind packet.OOBKind, port uint64) {
	h.mon.HandleEvent(Event{Kind: KindOutOfBand, Time: h.sched.Now(), OOBKind: kind, OOBPort: port})
}

// forward models a packet traversing the switch: arrival then unicast
// egress.
func (h *harness) forward(p *packet.Packet, inPort, outPort uint64) {
	id := h.arrival(p, inPort)
	h.egress(id, p, inPort, outPort)
}

// forwardDropped models arrival followed by a drop decision.
func (h *harness) forwardDropped(p *packet.Packet, inPort uint64) {
	id := h.arrival(p, inPort)
	h.drop(id, p, inPort)
}

func (h *harness) advance(d time.Duration) { h.sched.RunFor(d) }

func (h *harness) wantViolations(n int) {
	h.t.Helper()
	if len(h.viols) != n {
		for _, v := range h.viols {
			h.t.Logf("  got: %s", v)
		}
		h.t.Fatalf("violations = %d, want %d", len(h.viols), n)
	}
}

func catalogProp(t *testing.T, name string) *property.Property {
	t.Helper()
	p := property.CatalogByName(property.DefaultParams(), name)
	if p == nil {
		t.Fatalf("no catalogue property %q", name)
	}
	return p
}

func tcpAB(flags packet.TCPFlags) *packet.Packet {
	return packet.NewTCP(macA, macB, ipA, ipB, 40000, 80, flags, nil)
}

func tcpBA(flags packet.TCPFlags) *packet.Packet {
	return packet.NewTCP(macB, macA, ipB, ipA, 80, 40000, flags, nil)
}

// --- Firewall: basic, timeout, obligation ---------------------------------

func TestFirewallBasicViolation(t *testing.T) {
	h := newHarness(t, Config{Provenance: ProvLimited}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2) // A->B from internal port 1
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(1)
	v := h.viols[0]
	if v.Property != "firewall-basic" {
		t.Errorf("property = %q", v.Property)
	}
	if v.Bindings["A"] != packet.Num(ipA.Uint64()) || v.Bindings["B"] != packet.Num(ipB.Uint64()) {
		t.Errorf("bindings = %v", v.Bindings)
	}
}

func TestFirewallBasicNoViolationWhenForwarded(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.forward(tcpBA(packet.FlagACK), 2, 1) // admitted
	h.wantViolations(0)
}

func TestFirewallNoViolationWithoutPriorOutgoing(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	// Unsolicited B->A drop: correct firewall behaviour, no violation.
	h.forwardDropped(tcpBA(packet.FlagSYN), 2)
	h.wantViolations(0)
}

func TestFirewallUnrelatedPairDoesNotMatch(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	// Return traffic for a *different* internal host dropped: not this
	// instance's violation.
	other := packet.NewTCP(macB, macA, ipB, ipC, 80, 40000, packet.FlagACK, nil)
	h.forwardDropped(other, 2)
	h.wantViolations(0)
}

func TestFirewallTimeoutExpiresObligation(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-timeout"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.advance(61 * time.Second) // beyond the 60s window
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(0)
	if h.mon.Stats().Expired != 1 {
		t.Errorf("expired = %d, want 1", h.mon.Stats().Expired)
	}
}

func TestFirewallTimeoutViolationInsideWindow(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-timeout"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.advance(30 * time.Second)
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(1)
}

func TestFirewallTimerRefreshOnNewOutgoing(t *testing.T) {
	// Feature 3: each new A->B packet resets the pair's timer.
	h := newHarness(t, Config{}, catalogProp(t, "firewall-timeout"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.advance(50 * time.Second)
	h.forward(tcpAB(packet.FlagACK), 1, 2) // refresh at t=50s
	h.advance(50 * time.Second)            // t=100s: original deadline long past
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(1)
	st := h.mon.Stats()
	if st.Refreshed != 1 || st.Deduped != 1 {
		t.Errorf("refreshed=%d deduped=%d, want 1/1", st.Refreshed, st.Deduped)
	}
}

func TestFirewallUntilCloseDischarges(t *testing.T) {
	// Feature 4: a FIN from either side discharges the obligation.
	h := newHarness(t, Config{}, catalogProp(t, "firewall-until-close"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.forward(tcpBA(packet.FlagACK|packet.FlagFIN), 2, 1) // close
	h.forwardDropped(tcpBA(packet.FlagACK), 2)            // drop after close: fine
	h.wantViolations(0)
	if h.mon.Stats().Discharged == 0 {
		t.Error("no discharge recorded")
	}
}

func TestFirewallUntilCloseStillViolatesBeforeClose(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-until-close"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(1)
}

func TestFirewallObligationIsPerPair(t *testing.T) {
	// The paper: "one pair may close its connection, but not another."
	h := newHarness(t, Config{}, catalogProp(t, "firewall-until-close"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2) // pair A,B
	c := packet.NewTCP(macA, macB, ipC, ipB, 40001, 80, packet.FlagSYN, nil)
	h.forward(c, 1, 2) // pair C,B
	// Close only A,B.
	h.forward(tcpAB(packet.FlagFIN|packet.FlagACK), 1, 2)
	// Drops on both return paths: only C,B violates.
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	cRet := packet.NewTCP(macB, macA, ipB, ipC, 80, 40001, packet.FlagACK, nil)
	h.forwardDropped(cRet, 2)
	h.wantViolations(1)
	if h.viols[0].Bindings != nil && h.viols[0].Bindings["A"] != packet.Num(ipC.Uint64()) {
		// Bindings nil because ProvNone; use trigger text instead.
		t.Logf("trigger: %s", h.viols[0].Trigger)
	}
}

// --- Negative observations (Feature 7) ------------------------------------

func arpMapping() *packet.Packet { return packet.NewARPReply(macA, ipA, macB, ipB) }

func TestARPProxyNegativeObservationFires(t *testing.T) {
	h := newHarness(t, Config{Provenance: ProvFull}, catalogProp(t, "arp-proxy-reply"))
	h.forward(arpMapping(), 3, 4) // teaches I=ipA, M=macA
	req := packet.NewARPRequest(macB, ipB, ipA)
	h.forward(req, 4, 3)
	h.advance(3 * time.Second) // ReplyWindow is 2s
	h.wantViolations(1)
	v := h.viols[0]
	if len(v.History) != 3 {
		t.Fatalf("history = %d records, want 3", len(v.History))
	}
	if v.History[2].Event != "timeout" {
		t.Errorf("final history record = %q, want timeout", v.History[2].Event)
	}
}

func TestARPProxyReplyInTimeDischarges(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "arp-proxy-reply"))
	h.forward(arpMapping(), 3, 4)
	req := packet.NewARPRequest(macB, ipB, ipA)
	h.forward(req, 4, 3)
	h.advance(time.Second)
	// Proxy answers: egress of an ARP reply for I.
	reply := packet.NewARPReply(macA, ipA, macB, ipB)
	h.forward(reply, 3, 4)
	h.advance(5 * time.Second)
	h.wantViolations(0)
}

func TestNegativeDeadlineDoesNotRefresh(t *testing.T) {
	// Feature 7 subtlety: a request every T-1 seconds must NOT reset the
	// reply deadline, or a never-answered request train escapes detection.
	h := newHarness(t, Config{}, catalogProp(t, "arp-proxy-reply"))
	h.forward(arpMapping(), 3, 4)
	req := packet.NewARPRequest(macB, ipB, ipA)
	h.forward(req, 4, 3) // deadline at t+2s
	h.advance(1500 * time.Millisecond)
	h.forward(req, 4, 3) // would-be refresh at t+1.5s
	h.advance(1 * time.Second)
	// t = 2.5s > 2s: the original deadline must have fired.
	h.wantViolations(1)
}

// --- Packet identity (Feature 5) -------------------------------------------

func natProp(t *testing.T) *property.Property { return catalogProp(t, "nat-reverse") }

func TestNATReverseViolation(t *testing.T) {
	h := newHarness(t, Config{Provenance: ProvLimited}, natProp(t))
	natIP := packet.MustIPv4("198.51.100.1")

	// (1) arrival A,P -> B,Q on internal port; (2) same packet egresses
	// translated to A',P'.
	out := packet.NewTCP(macA, macB, ipA, ipB, 5000, 80, packet.FlagSYN, nil)
	id := h.arrival(out, 1)
	outX := out.Clone()
	outX.IPv4.Src = natIP
	outX.TCP.SrcPort = 61000
	h.egress(id, outX, 1, 2)

	// (3) return packet B,Q -> A',P' arrives; (4) it egresses with the
	// wrong destination port (not A,P).
	ret := packet.NewTCP(macB, macA, ipB, natIP, 80, 61000, packet.FlagSYN|packet.FlagACK, nil)
	rid := h.arrival(ret, 2)
	retX := ret.Clone()
	retX.IPv4.Dst = ipA
	retX.TCP.DstPort = 5001 // wrong: original P was 5000
	h.egress(rid, retX, 2, 1)

	h.wantViolations(1)
	if h.viols[0].Bindings["A2"] != packet.Num(natIP.Uint64()) {
		t.Errorf("A2 binding = %v", h.viols[0].Bindings["A2"])
	}
}

func TestNATReverseCorrectTranslationNoViolation(t *testing.T) {
	h := newHarness(t, Config{}, natProp(t))
	natIP := packet.MustIPv4("198.51.100.1")
	out := packet.NewTCP(macA, macB, ipA, ipB, 5000, 80, packet.FlagSYN, nil)
	id := h.arrival(out, 1)
	outX := out.Clone()
	outX.IPv4.Src = natIP
	outX.TCP.SrcPort = 61000
	h.egress(id, outX, 1, 2)
	ret := packet.NewTCP(macB, macA, ipB, natIP, 80, 61000, packet.FlagACK, nil)
	rid := h.arrival(ret, 2)
	retX := ret.Clone()
	retX.IPv4.Dst = ipA
	retX.TCP.DstPort = 5000 // correct reverse translation
	h.egress(rid, retX, 2, 1)
	h.wantViolations(0)
}

func TestNATIdentityRequiresSamePacket(t *testing.T) {
	h := newHarness(t, Config{}, natProp(t))
	natIP := packet.MustIPv4("198.51.100.1")
	out := packet.NewTCP(macA, macB, ipA, ipB, 5000, 80, packet.FlagSYN, nil)
	h.arrival(out, 1)
	// A *different* packet egresses looking like a translation; without
	// matching PacketID the instance must not advance.
	outX := out.Clone()
	outX.IPv4.Src = natIP
	outX.TCP.SrcPort = 61000
	h.egress(h.nextPID(), outX, 1, 2)
	if got := h.mon.ActiveInstances(); got != 1 {
		t.Fatalf("instances = %d, want 1 (stuck at stage 1)", got)
	}
	h.wantViolations(0)
}

// --- Multiple match & out-of-band (Sec 2.4) --------------------------------

func TestLinkDownMultipleMatch(t *testing.T) {
	h := newHarness(t, Config{Provenance: ProvLimited}, catalogProp(t, "lswitch-linkdown"))
	macC := packet.MustMAC("02:00:00:00:00:0c")
	// Learn two destinations on port 5.
	d1 := packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil)
	d2 := packet.NewTCP(macB, macA, ipB, ipA, 2, 1, 0, nil)
	h.forward(d1, 5, 6) // learns macA@5
	h.forward(d2, 5, 6) // learns macB@5
	// One link-down must advance BOTH instances.
	h.oob(packet.OOBLinkDown, 5)
	// Unicast to both stale destinations from a third party (so the
	// probes do not themselves re-learn the destinations).
	toD1 := packet.NewTCP(macC, macA, ipB, ipA, 9, 9, 0, nil) // eth.dst = macA
	toD2 := packet.NewTCP(macC, macB, ipA, ipB, 9, 9, 0, nil) // eth.dst = macB
	h.forward(toD1, 6, 5)
	h.forward(toD2, 6, 5)
	h.wantViolations(2)
}

func TestLinkDownRelearnDischarges(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "lswitch-linkdown"))
	d1 := packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil)
	h.forward(d1, 5, 6)
	h.oob(packet.OOBLinkDown, 5)
	// D re-learns (sends again) before any stale unicast: obligation
	// discharged... but note the re-learn also creates a NEW instance at
	// stage 1 ("learn" matches again). The stale-unicast stage instance
	// must be gone.
	h.forward(d1, 5, 6)
	macC := packet.MustMAC("02:00:00:00:00:0c")
	toD1 := packet.NewTCP(macC, macA, ipB, ipA, 9, 9, 0, nil)
	h.forward(toD1, 6, 5)
	h.wantViolations(0)
}

func TestOOBEventDoesNotMatchPacketStages(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	h.oob(packet.OOBLinkDown, 1)
	if h.mon.ActiveInstances() != 0 {
		t.Fatal("OOB event created a packet-property instance")
	}
}

// --- Negative match (Feature 6) --------------------------------------------

func TestLearningSwitchWrongPort(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "lswitch-unicast"))
	learn := packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil)
	h.forward(learn, 5, 6) // D=macA learned at port 5
	// Later packet to D forwarded out the WRONG port.
	toD := packet.NewTCP(macB, macA, ipB, ipA, 2, 1, 0, nil)
	h.forward(toD, 6, 7) // should be 5
	h.wantViolations(1)
}

func TestLearningSwitchCorrectPortNoViolation(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "lswitch-unicast"))
	learn := packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil)
	h.forward(learn, 5, 6)
	toD := packet.NewTCP(macB, macA, ipB, ipA, 2, 1, 0, nil)
	h.forward(toD, 6, 5) // correct port
	h.wantViolations(0)
}

func TestLearningSwitchBroadcastOfLearnedDst(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "lswitch-unicast"))
	learn := packet.NewTCP(macA, macB, ipA, ipB, 1, 2, 0, nil)
	h.forward(learn, 5, 6)
	// Broadcast: per-port egress events; the first wrong port completes
	// the instance (a violation consumes it, so one alert is raised per
	// learned destination, not one per wrong port).
	toD := packet.NewTCP(macB, macA, ipB, ipA, 2, 1, 0, nil)
	id := h.arrival(toD, 6)
	h.egressMulti(id, toD, 6, 5)
	h.egressMulti(id, toD, 6, 7)
	h.egressMulti(id, toD, 6, 8)
	h.wantViolations(1)
}

// --- Windows from variables -------------------------------------------------

func TestDHCPNoReuseWindowVar(t *testing.T) {
	h := newHarness(t, Config{Provenance: ProvLimited}, catalogProp(t, "dhcp-no-reuse"))
	leased := packet.MustIPv4("10.0.0.50")
	server := packet.MustIPv4("10.0.0.2")
	mkAck := func(client packet.MAC, lease uint32) *packet.Packet {
		return packet.NewDHCP(macB, client, server, leased, &packet.DHCPv4{
			Op: packet.DHCPBootReply, Xid: 1, MsgType: packet.DHCPAck,
			YourIP: leased, ClientMAC: client, ServerID: server, LeaseSecs: lease,
		})
	}
	h.forward(mkAck(macA, 100), 1, 2) // lease to macA for 100s
	h.advance(50 * time.Second)
	h.forward(mkAck(macB, 100), 1, 3) // re-lease to macB inside window
	h.wantViolations(1)
}

func TestDHCPNoReuseAfterExpiryOK(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "dhcp-no-reuse"))
	leased := packet.MustIPv4("10.0.0.50")
	server := packet.MustIPv4("10.0.0.2")
	mkAck := func(client packet.MAC, lease uint32) *packet.Packet {
		return packet.NewDHCP(macB, client, server, leased, &packet.DHCPv4{
			Op: packet.DHCPBootReply, Xid: 1, MsgType: packet.DHCPAck,
			YourIP: leased, ClientMAC: client, ServerID: server, LeaseSecs: lease,
		})
	}
	h.forward(mkAck(macA, 100), 1, 2)
	h.advance(101 * time.Second) // lease expired
	h.forward(mkAck(macB, 100), 1, 3)
	h.wantViolations(0)
}

func TestDHCPNoReuseReleaseDischarges(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "dhcp-no-reuse"))
	leased := packet.MustIPv4("10.0.0.50")
	server := packet.MustIPv4("10.0.0.2")
	ack := packet.NewDHCP(macB, macA, server, leased, &packet.DHCPv4{
		Op: packet.DHCPBootReply, Xid: 1, MsgType: packet.DHCPAck,
		YourIP: leased, ClientMAC: macA, ServerID: server, LeaseSecs: 100,
	})
	h.forward(ack, 1, 2)
	release := packet.NewDHCP(macA, macB, leased, server, &packet.DHCPv4{
		Op: packet.DHCPBootRequest, Xid: 2, MsgType: packet.DHCPRelease,
		ClientMAC: macA, ClientIP: leased,
	})
	h.forward(release, 2, 1)
	// Re-lease to another client after release: fine.
	ack2 := packet.NewDHCP(macB, macB, server, leased, &packet.DHCPv4{
		Op: packet.DHCPBootReply, Xid: 3, MsgType: packet.DHCPAck,
		YourIP: leased, ClientMAC: macB, ServerID: server, LeaseSecs: 100,
	})
	h.forward(ack2, 1, 3)
	h.wantViolations(0)
}

// --- Provenance (Feature 10) -------------------------------------------------

func TestProvenanceLevels(t *testing.T) {
	run := func(level ProvLevel) *Violation {
		h := newHarness(t, Config{Provenance: level}, catalogProp(t, "firewall-basic"))
		h.forward(tcpAB(packet.FlagSYN), 1, 2)
		h.forwardDropped(tcpBA(packet.FlagACK), 2)
		h.wantViolations(1)
		return h.viols[0]
	}
	vNone := run(ProvNone)
	if vNone.Bindings != nil || vNone.History != nil {
		t.Errorf("ProvNone carries extra data: %+v", vNone)
	}
	if vNone.Trigger == "" {
		t.Error("ProvNone lost the trigger")
	}
	vLim := run(ProvLimited)
	if len(vLim.Bindings) != 2 || vLim.History != nil {
		t.Errorf("ProvLimited = %+v", vLim)
	}
	vFull := run(ProvFull)
	if len(vFull.Bindings) != 2 || len(vFull.History) != 2 {
		t.Errorf("ProvFull = %+v", vFull)
	}
	if vFull.History[0].Label != "outgoing" || vFull.History[1].Label != "return-dropped" {
		t.Errorf("history labels = %v", vFull.History)
	}
}

// --- Side-effect control (Feature 9) ----------------------------------------

func TestSplitModeDefersDetection(t *testing.T) {
	h := newHarness(t, Config{Mode: Split}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(0) // nothing applied yet
	if h.mon.PendingEvents() != 4 {
		t.Fatalf("pending = %d, want 4", h.mon.PendingEvents())
	}
	if n := h.mon.Flush(); n != 4 {
		t.Fatalf("Flush = %d", n)
	}
	h.wantViolations(1)
}

func TestSplitModeOverflowDropsEvents(t *testing.T) {
	h := newHarness(t, Config{Mode: Split, SplitFlushLimit: 8}, catalogProp(t, "firewall-basic"))
	for i := 0; i < 20; i++ {
		h.forward(tcpAB(packet.FlagSYN), 1, 2)
	}
	// 40 events against a limit-8 queue: the queue fills at event 8, and
	// every 4th event after that overflows, shedding a batch of
	// SplitFlushLimit/2 = 4 — 8 overflows, each counting its 4 events
	// individually in DroppedEvents.
	if got := h.mon.Stats().DroppedEvents; got != 32 {
		t.Fatalf("DroppedEvents = %d, want 32 (8 overflows x 4 events)", got)
	}
	if h.mon.PendingEvents() != 8 {
		t.Fatalf("pending = %d, want 8 (at the limit)", h.mon.PendingEvents())
	}
}

// --- Engine plumbing ---------------------------------------------------------

func TestAddPropertyRejectsInvalid(t *testing.T) {
	h := newHarness(t, Config{})
	bad := &property.Property{Name: "bad"}
	if err := h.mon.AddProperty(bad); err == nil {
		t.Fatal("AddProperty accepted an invalid property")
	}
}

func TestPropertiesList(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"), catalogProp(t, "nat-reverse"))
	names := h.mon.Properties()
	if len(names) != 2 || names[0] != "firewall-basic" || names[1] != "nat-reverse" {
		t.Fatalf("Properties = %v", names)
	}
}

func TestInstanceCleanupAfterViolation(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(1)
	if h.mon.ActiveInstances() != 0 {
		t.Fatalf("instances = %d after violation, want 0", h.mon.ActiveInstances())
	}
}

func TestSameEventCannotAdvanceTwice(t *testing.T) {
	// knock-intervening: the knock-1 packet itself must not count as the
	// "wrong guess" (its dst port != Knock2).
	h := newHarness(t, Config{}, catalogProp(t, "knock-intervening"))
	knock := func(port uint16) *packet.Packet {
		return packet.NewUDP(macA, macB, ipA, ipB, 30000, port, nil)
	}
	h.forward(knock(7001), 1, 2)
	// Instance must be waiting at stage 1 (wrong guess), not stage 2.
	h.forward(knock(7002), 1, 2) // knock2: matches "wrong-guess"? No: 7002 == Knock2.
	// The stage-1 pattern requires dst != 7002, so this packet skips it;
	// correct sequence continues undetected (good: no intervening guess).
	h.forward(knock(7003), 1, 2)
	// No wrong guess happened -> the property (which requires one) cannot
	// complete even if the door opens.
	door := packet.NewTCP(macA, macB, ipA, ipB, 30001, 22, packet.FlagSYN, nil)
	h.forward(door, 1, 2)
	h.wantViolations(0)
}

func TestKnockInterveningGuessDetected(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "knock-intervening"))
	knock := func(port uint16) *packet.Packet {
		return packet.NewUDP(macA, macB, ipA, ipB, 30000, port, nil)
	}
	h.forward(knock(7001), 1, 2)
	h.forward(knock(9999), 1, 2) // intervening wrong guess
	h.forward(knock(7002), 1, 2)
	h.forward(knock(7003), 1, 2)
	door := packet.NewTCP(macA, macB, ipA, ipB, 30001, 22, packet.FlagSYN, nil)
	h.forward(door, 1, 2) // buggy gate opened anyway
	h.wantViolations(1)
}

func TestStatsAccumulate(t *testing.T) {
	h := newHarness(t, Config{}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	st := h.mon.Stats()
	if st.Events != 4 || st.Created != 1 || st.Violations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestModeAndProvStrings(t *testing.T) {
	if Inline.String() != "inline" || Split.String() != "split" {
		t.Error("Mode strings wrong")
	}
	if ProvNone.String() != "none" || ProvLimited.String() != "limited" || ProvFull.String() != "full" {
		t.Error("ProvLevel strings wrong")
	}
	for _, k := range []EventKind{KindArrival, KindEgress, KindOutOfBand} {
		if k.String() == "" {
			t.Error("EventKind string empty")
		}
	}
}

func TestViolationString(t *testing.T) {
	h := newHarness(t, Config{Provenance: ProvFull}, catalogProp(t, "firewall-basic"))
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.wantViolations(1)
	s := h.viols[0].String()
	for _, want := range []string{"VIOLATION firewall-basic", "$A=", "stage 0 (outgoing)"} {
		if !contains(s, want) {
			t.Errorf("Violation.String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEventFieldExtraction(t *testing.T) {
	p := tcpAB(packet.FlagSYN)
	arr := Event{Kind: KindArrival, Packet: p, InPort: 3, PacketID: 1}
	if v, ok := arr.Field(packet.FieldInPort); !ok || v != packet.Num(3) {
		t.Errorf("in_port = %v, %v", v, ok)
	}
	if _, ok := arr.Field(packet.FieldOutPort); ok {
		t.Error("out_port present on arrival")
	}
	if _, ok := arr.Field(packet.FieldDropped); ok {
		t.Error("dropped present on arrival")
	}
	eg := Event{Kind: KindEgress, Packet: p, InPort: 3, OutPort: 7, PacketID: 1}
	if v, ok := eg.Field(packet.FieldOutPort); !ok || v != packet.Num(7) {
		t.Errorf("out_port = %v, %v", v, ok)
	}
	if v, ok := eg.Field(packet.FieldDropped); !ok || v != packet.Num(0) {
		t.Errorf("dropped = %v, %v", v, ok)
	}
	dr := Event{Kind: KindEgress, Packet: p, InPort: 3, Dropped: true, PacketID: 1}
	if _, ok := dr.Field(packet.FieldOutPort); ok {
		t.Error("out_port present on drop")
	}
	if v, _ := dr.Field(packet.FieldDropped); v != packet.Num(1) {
		t.Error("dropped != 1 on drop event")
	}
	ob := Event{Kind: KindOutOfBand, OOBKind: packet.OOBLinkDown, OOBPort: 4}
	if v, ok := ob.Field(packet.FieldOOBKind); !ok || v != packet.Num(uint64(packet.OOBLinkDown)) {
		t.Errorf("oob.kind = %v, %v", v, ok)
	}
	if _, ok := ob.Field(packet.FieldIPSrc); ok {
		t.Error("packet field present on OOB event")
	}
	// Event field on packet-less event must not panic.
	if _, ok := (&Event{Kind: KindArrival}).Field(packet.FieldIPSrc); ok {
		t.Error("field extracted from nil packet")
	}
}

func TestEventSummaries(t *testing.T) {
	p := tcpAB(packet.FlagSYN)
	events := []Event{
		{Kind: KindArrival, Packet: p, InPort: 1, PacketID: 9},
		{Kind: KindEgress, Packet: p, OutPort: 2, PacketID: 9},
		{Kind: KindEgress, Packet: p, Dropped: true, PacketID: 9},
		{Kind: KindOutOfBand, OOBKind: packet.OOBLinkUp, OOBPort: 3},
	}
	wants := []string{"arrival port=1", "egress port=2", "egress DROP", "oob link-up"}
	for i, e := range events {
		if s := e.Summary(); !contains(s, wants[i]) {
			t.Errorf("Summary %d = %q, want substring %q", i, s, wants[i])
		}
	}
}

func TestHashOperandSymmetry(t *testing.T) {
	spec := &property.HashSpec{
		Fields: []packet.Field{packet.FieldIPSrc, packet.FieldIPDst, packet.FieldSrcPort, packet.FieldDstPort},
		Mod:    4, Base: 10,
	}
	fwd := Event{Kind: KindArrival, Packet: tcpAB(0)}
	rev := Event{Kind: KindArrival, Packet: tcpBA(0)}
	hf, ok1 := hashOperand(spec, &fwd)
	hr, ok2 := hashOperand(spec, &rev)
	if !ok1 || !ok2 || hf != hr {
		t.Fatalf("hash not symmetric: %v/%v (%v/%v)", hf, hr, ok1, ok2)
	}
	if hf.Uint64() < 10 || hf.Uint64() >= 14 {
		t.Fatalf("hash %v outside base+mod range", hf)
	}
	// Missing fields make the operand unresolvable.
	arp := Event{Kind: KindArrival, Packet: packet.NewARPRequest(macA, ipA, ipB)}
	if _, ok := hashOperand(spec, &arp); ok {
		t.Fatal("hash resolved on ARP packet without L3/L4 fields")
	}
}

func TestWindowVarStringValueIgnored(t *testing.T) {
	// A WindowVar bound to a string value cannot form a deadline; the
	// stage then waits unbounded (documented behaviour).
	b := property.New("strwin", "")
	b.OnArrival("a").Bind("W", packet.FieldDNSQName)
	b.OnArrival("b").WithinVar("W").Where(property.EqVar(packet.FieldDNSQName, "W"))
	p := b.MustBuild()
	h := newHarness(t, Config{}, p)
	q := packet.NewDNSQuery(macA, macB, ipA, ipB, 5353, 1, "x.test")
	h.forward(q, 1, 2)
	h.advance(time.Hour)
	if h.mon.ActiveInstances() == 0 {
		t.Fatal("instance expired despite unresolvable window")
	}
}

func TestManyPropertiesSimultaneously(t *testing.T) {
	// The whole catalogue installed at once; a firewall violation and an
	// ARP timeout must both be caught without cross-talk.
	var props []*property.Property
	for _, e := range property.Catalog(property.DefaultParams()) {
		props = append(props, e.Prop)
	}
	h := newHarness(t, Config{Provenance: ProvLimited}, props...)
	h.forward(tcpAB(packet.FlagSYN), 1, 2)
	h.forwardDropped(tcpBA(packet.FlagACK), 2)
	h.forward(arpMapping(), 3, 4)
	h.forward(packet.NewARPRequest(macB, ipB, ipA), 4, 3)
	h.advance(3 * time.Second)
	byProp := map[string]int{}
	for _, v := range h.viols {
		byProp[v.Property]++
	}
	// firewall-basic, firewall-timeout and firewall-until-close all see
	// the drop; arp-proxy-reply times out. arp-unknown-forwarded is
	// discharged by the mapping arrival guard... (the request for ipA
	// arrived when a mapping already existed, but the property has no way
	// to know "known": its guard discharges on the mapping re-arrival or
	// proxy reply; here neither happened, so it may fire too.)
	for _, name := range []string{"firewall-basic", "firewall-timeout", "firewall-until-close", "arp-proxy-reply"} {
		if byProp[name] == 0 {
			t.Errorf("expected violation for %s, got %v", name, byProp)
		}
	}
}

func BenchmarkInlineFirewallEvent(b *testing.B) {
	sched := sim.NewScheduler()
	mon := NewMonitor(sched, Config{})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-timeout")); err != nil {
		b.Fatal(err)
	}
	pkts := make([]*packet.Packet, 256)
	for i := range pkts {
		ip := packet.IPv4FromUint32(0x0a000000 | uint32(i))
		pkts[i] = packet.NewTCP(macA, macB, ip, ipB, uint16(1000+i), 80, packet.FlagSYN, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		mon.HandleEvent(Event{Kind: KindArrival, PacketID: PacketID(i + 1), Packet: p, InPort: 1})
	}
	_ = fmt.Sprintf("%d", mon.ActiveInstances())
}
