package core
