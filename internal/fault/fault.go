// Package fault is the deterministic chaos layer: a seed-driven
// injector that perturbs an event feed (drop, duplicate, reorder,
// delay) and arms shard-level faults (panic or stall a chosen shard at
// a chosen event count). Everything draws from sim.NewRand, so a chaos
// run is fully described by its Spec — same seed and spec, same faults,
// byte-identical outcomes — which is what makes degradation testable:
// E12 sweeps loss rate against detection rate, and the CI fault matrix
// replays the same failures on every commit.
//
// The injector composes with the soundness ledger (internal/core):
// wiring OnDrop to Monitor.MarkFeedLoss turns every injected drop into
// an unsound-since mark, so the engine's /healthz degrades instead of
// silently reporting verdicts over a gappy feed.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/sim"
)

// Spec describes one reproducible fault scenario. The zero value of the
// numeric fields means "no such fault"; shard indices use -1 for none
// (use DefaultSpec or ParseSpec rather than a struct literal).
type Spec struct {
	// Drop is the per-event probability of losing the event entirely.
	Drop float64
	// Dup is the per-delivered-event probability of delivering it twice.
	Dup float64
	// Reorder is the per-adjacent-pair probability of swapping two
	// consecutive events (offline Apply only).
	Reorder float64
	// Delay jitters each event's timestamp by a uniform draw from
	// [0, Delay) and re-sorts the stream (offline Apply only).
	Delay time.Duration
	// Seed seeds the injector's PRNG.
	Seed int64
	// PanicShard, when >= 0, panics that shard's property step at the
	// shard's PanicAt-th applied event.
	PanicShard int
	PanicAt    uint64
	// StallShard, when >= 0, stalls that shard for Stall (wall-clock) at
	// the shard's StallAt-th applied event — the slow-consumer fault that
	// exercises queue bounds and shed policies.
	StallShard int
	StallAt    uint64
	Stall      time.Duration
}

// DefaultSpec returns a no-fault Spec (shard faults disarmed).
func DefaultSpec() Spec { return Spec{PanicShard: -1, StallShard: -1} }

// Zero reports whether the spec injects nothing at all.
func (sp Spec) Zero() bool {
	return sp.Drop == 0 && sp.Dup == 0 && sp.Reorder == 0 && sp.Delay == 0 &&
		sp.PanicShard < 0 && sp.StallShard < 0
}

// NeedsBuffer reports whether the spec requires the offline Apply path
// (reorder and delay need the whole stream; Wrap cannot do them).
func (sp Spec) NeedsBuffer() bool { return sp.Reorder > 0 || sp.Delay > 0 }

// String renders the spec in ParseSpec's grammar.
func (sp Spec) String() string {
	var parts []string
	if sp.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", sp.Drop))
	}
	if sp.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", sp.Dup))
	}
	if sp.Reorder > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g", sp.Reorder))
	}
	if sp.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%s", sp.Delay))
	}
	if sp.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", sp.Seed))
	}
	if sp.PanicShard >= 0 {
		parts = append(parts, fmt.Sprintf("panic-shard=%d@%d", sp.PanicShard, sp.PanicAt))
	}
	if sp.StallShard >= 0 {
		parts = append(parts, fmt.Sprintf("stall-shard=%d@%d", sp.StallShard, sp.StallAt))
	}
	if sp.Stall > 0 {
		parts = append(parts, fmt.Sprintf("stall=%s", sp.Stall))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the comma-separated key=value fault grammar:
//
//	drop=F       probability in [0,1] of dropping each event
//	dup=F        probability in [0,1] of duplicating each delivered event
//	reorder=F    probability in [0,1] of swapping adjacent events
//	delay=DUR    jitter timestamps by uniform [0,DUR) and re-sort
//	seed=N       PRNG seed (default 0)
//	panic-shard=S@N   panic shard S's property step at its Nth event
//	stall-shard=S@N   stall shard S at its Nth event
//	stall=DUR    how long a stall lasts (default 10ms)
//
// Example: "drop=0.01,dup=0.001,seed=7".
func ParseSpec(s string) (Spec, error) {
	sp := DefaultSpec()
	sp.Stall = 10 * time.Millisecond
	if strings.TrimSpace(s) == "" || s == "none" {
		return sp, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			return sp, fmt.Errorf("fault: %q is not key=value", part)
		}
		switch key {
		case "drop", "dup", "reorder":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return sp, fmt.Errorf("fault: %s wants a probability in [0,1], got %q", key, val)
			}
			switch key {
			case "drop":
				sp.Drop = f
			case "dup":
				sp.Dup = f
			case "reorder":
				sp.Reorder = f
			}
		case "delay", "stall":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return sp, fmt.Errorf("fault: %s wants a non-negative duration, got %q", key, val)
			}
			if key == "delay" {
				sp.Delay = d
			} else {
				sp.Stall = d
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return sp, fmt.Errorf("fault: seed wants an integer, got %q", val)
			}
			sp.Seed = n
		case "panic-shard", "stall-shard":
			shardS, atS, found := strings.Cut(val, "@")
			if !found {
				return sp, fmt.Errorf("fault: %s wants SHARD@EVENT, got %q", key, val)
			}
			shard, err1 := strconv.Atoi(shardS)
			at, err2 := strconv.ParseUint(atS, 10, 64)
			if err1 != nil || err2 != nil || shard < 0 {
				return sp, fmt.Errorf("fault: %s wants SHARD@EVENT with non-negative integers, got %q", key, val)
			}
			if key == "panic-shard" {
				sp.PanicShard, sp.PanicAt = shard, at
			} else {
				sp.StallShard, sp.StallAt = shard, at
			}
		default:
			return sp, fmt.Errorf("fault: unknown key %q (want drop/dup/reorder/delay/seed/panic-shard/stall-shard/stall)", key)
		}
	}
	return sp, nil
}

// InjectStats counts what an Injector actually did.
type InjectStats struct {
	// Events is the number of input events seen.
	Events uint64
	// Dropped, Duplicated, Reordered, Delayed count applied faults;
	// Reordered counts swapped pairs, Delayed counts jittered events.
	Dropped    uint64
	Duplicated uint64
	Reordered  uint64
	Delayed    uint64
}

// Injector applies a Spec's feed faults to an event stream. All
// randomness comes from one PRNG seeded by Spec.Seed with a fixed draw
// order, so two injectors with equal specs transform equal streams
// identically. Not safe for concurrent use (neither is the router it
// feeds).
type Injector struct {
	spec  Spec
	rng   *rand.Rand
	stats InjectStats
	// OnDrop, when non-nil, observes every dropped event — the hook that
	// feeds Monitor.MarkFeedLoss so injected loss lands in the soundness
	// ledger instead of vanishing silently.
	OnDrop func(core.Event)
}

// NewInjector builds an injector for the spec.
func NewInjector(spec Spec) *Injector {
	return &Injector{spec: spec, rng: sim.NewRand(spec.Seed)}
}

// Stats reports what has been injected so far.
func (in *Injector) Stats() InjectStats { return in.stats }

// Apply transforms a complete event stream offline: per-event drop and
// duplicate draws in stream order, then timestamp jitter (delay) with a
// stable re-sort, then an adjacent-pair reorder pass. Reordered pairs
// swap payloads but keep the original timestamps, modeling two packets
// crossing on a link while the observation point stamps arrival times —
// the stream stays time-monotone, which replay requires. The input
// slice is not modified.
func (in *Injector) Apply(evs []core.Event) []core.Event {
	out := make([]core.Event, 0, len(evs))
	for i := range evs {
		in.stats.Events++
		if sim.Bernoulli(in.rng, in.spec.Drop) {
			in.stats.Dropped++
			if in.OnDrop != nil {
				in.OnDrop(evs[i])
			}
			continue
		}
		out = append(out, evs[i])
		if sim.Bernoulli(in.rng, in.spec.Dup) {
			in.stats.Duplicated++
			out = append(out, evs[i])
		}
	}
	if in.spec.Delay > 0 {
		for i := range out {
			out[i].Time = out[i].Time.Add(time.Duration(in.rng.Int63n(int64(in.spec.Delay))))
			in.stats.Delayed++
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	}
	if in.spec.Reorder > 0 {
		for i := 0; i+1 < len(out); i++ {
			if sim.Bernoulli(in.rng, in.spec.Reorder) {
				out[i].Time, out[i+1].Time = out[i+1].Time, out[i].Time
				out[i], out[i+1] = out[i+1], out[i]
				in.stats.Reordered++
			}
		}
	}
	return out
}

// Wrap lifts the injector into an online event handler: drop and
// duplicate apply per event as it flows through; reorder and delay are
// rejected here because they need the whole stream (check NeedsBuffer
// and use Apply for those).
func (in *Injector) Wrap(h func(core.Event)) func(core.Event) {
	return func(e core.Event) {
		in.stats.Events++
		if sim.Bernoulli(in.rng, in.spec.Drop) {
			in.stats.Dropped++
			if in.OnDrop != nil {
				in.OnDrop(e)
			}
			return
		}
		h(e)
		if sim.Bernoulli(in.rng, in.spec.Dup) {
			in.stats.Duplicated++
			h(e)
		}
	}
}

// ArmShardFaults installs the spec's shard faults (panic, stall) as step
// probes on the sharded monitor. Each fault fires exactly once — a
// panic probe that kept firing at the same event count would cascade
// through every property the supervisor resumes. Must be called before
// the first Submit; a spec with no shard faults is a no-op.
func ArmShardFaults(sm *core.ShardedMonitor, spec Spec) error {
	type armed struct {
		panicAt uint64 // 0 = disarmed (event seqs start at 1)
		stallAt uint64
	}
	byShard := map[int]*armed{}
	if spec.PanicShard >= 0 {
		a := byShard[spec.PanicShard]
		if a == nil {
			a = &armed{}
			byShard[spec.PanicShard] = a
		}
		a.panicAt = spec.PanicAt
		if a.panicAt == 0 {
			a.panicAt = 1
		}
	}
	if spec.StallShard >= 0 {
		a := byShard[spec.StallShard]
		if a == nil {
			a = &armed{}
			byShard[spec.StallShard] = a
		}
		a.stallAt = spec.StallAt
		if a.stallAt == 0 {
			a.stallAt = 1
		}
	}
	stall := spec.Stall
	for shard, a := range byShard {
		a := a
		var panicFired, stallFired bool
		err := sm.SetShardProbe(shard, func(prop int, seq uint64) {
			if a.stallAt > 0 && !stallFired && seq >= a.stallAt {
				stallFired = true
				time.Sleep(stall)
			}
			if a.panicAt > 0 && !panicFired && seq >= a.panicAt {
				panicFired = true
				panic(fmt.Sprintf("fault: injected panic at shard event %d", seq))
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
