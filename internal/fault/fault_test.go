package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"drop=0.01,dup=0.001,seed=7",
		"drop=0.05",
		"reorder=0.1,delay=5ms,seed=42",
		"panic-shard=2@100",
		"stall-shard=1@50,stall=20ms",
		"none",
	}
	for _, in := range cases {
		sp, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		// Re-parsing the rendered form must yield the same spec.
		sp2, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("ParseSpec(String(%q)=%q): %v", in, sp.String(), err)
		}
		// The default stall duration is not rendered when no stall fault
		// is armed, so compare with it normalized.
		if sp2.Stall == 10*time.Millisecond && sp.Stall == 10*time.Millisecond {
			sp2.Stall = sp.Stall
		}
		if sp != sp2 {
			t.Errorf("%q: round-trip mismatch\n first: %+v\nsecond: %+v", in, sp, sp2)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"drop=1.5",        // probability out of range
		"drop=x",          // not a float
		"delay=-3ms",      // negative duration
		"delay=fast",      // not a duration
		"panic-shard=3",   // missing @EVENT
		"panic-shard=a@b", // not integers
		"seed=π",          // not an integer
		"bogus=1",         // unknown key
		"drop",            // not key=value
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q): expected error, got none", in)
		}
	}
}

func TestParseSpecEmptyIsZero(t *testing.T) {
	sp, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Zero() {
		t.Fatalf("empty spec should be Zero, got %+v", sp)
	}
}

func fwEvents() []core.Event {
	return trace.FirewallWorkload{
		Flows: 300, ReturnsPerFlow: 3, ViolationEvery: 10, Gap: time.Millisecond,
	}.Events(sim.Epoch)
}

// Same seed, same spec, same input: Apply must produce identical output
// and identical stats. A different seed must produce a different stream.
func TestApplyDeterministic(t *testing.T) {
	evs := fwEvents()
	spec, err := ParseSpec("drop=0.05,dup=0.02,reorder=0.03,delay=2ms,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	a := NewInjector(spec).Apply(evs)
	b := NewInjector(spec).Apply(evs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed+spec produced different streams")
	}
	spec.Seed = 8
	c := NewInjector(spec).Apply(evs)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seed produced an identical stream")
	}
}

// Apply must keep the stream time-monotone even with delay jitter and
// reordering, because trace replay and shard clock ticking assume
// non-decreasing timestamps.
func TestApplyKeepsTimeMonotone(t *testing.T) {
	evs := fwEvents()
	spec, _ := ParseSpec("reorder=0.2,delay=10ms,seed=3")
	out := NewInjector(spec).Apply(evs)
	for i := 1; i < len(out); i++ {
		if out[i].Time.Before(out[i-1].Time) {
			t.Fatalf("event %d at %v precedes event %d at %v", i, out[i].Time, i-1, out[i-1].Time)
		}
	}
}

func TestApplyAccounting(t *testing.T) {
	evs := fwEvents()
	spec, _ := ParseSpec("drop=0.1,dup=0.05,seed=1")
	in := NewInjector(spec)
	var dropped int
	in.OnDrop = func(core.Event) { dropped++ }
	out := in.Apply(evs)
	st := in.Stats()
	if st.Events != uint64(len(evs)) {
		t.Fatalf("Events=%d want %d", st.Events, len(evs))
	}
	if uint64(dropped) != st.Dropped {
		t.Fatalf("OnDrop fired %d times, Dropped=%d", dropped, st.Dropped)
	}
	if want := uint64(len(evs)) - st.Dropped + st.Duplicated; uint64(len(out)) != want {
		t.Fatalf("len(out)=%d want %d (events-%d dropped+%d duplicated)", len(out), want, st.Dropped, st.Duplicated)
	}
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Fatalf("expected some drops and duplicates at these rates, got %+v", st)
	}
}

func TestWrapOnline(t *testing.T) {
	evs := fwEvents()
	spec, _ := ParseSpec("drop=0.1,dup=0.05,seed=2")
	in := NewInjector(spec)
	delivered := 0
	h := in.Wrap(func(core.Event) { delivered++ })
	for i := range evs {
		h(evs[i])
	}
	st := in.Stats()
	if want := uint64(len(evs)) - st.Dropped + st.Duplicated; uint64(delivered) != want {
		t.Fatalf("delivered %d want %d", delivered, want)
	}
}

// violationLedger runs an inline monitor over an injected stream and
// serializes everything observable: the violation log in arrival order,
// the final Stats, and the soundness ledger as JSON.
func violationLedger(t *testing.T, spec Spec, props ...string) []byte {
	t.Helper()
	sched := sim.NewScheduler()
	var buf bytes.Buffer
	mon := core.NewMonitor(sched, core.Config{OnViolation: func(v *core.Violation) {
		fmt.Fprintf(&buf, "%s %s %s\n", v.Time.Format(time.RFC3339Nano), v.Property, v.Trigger)
	}})
	for _, name := range props {
		if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), name)); err != nil {
			t.Fatal(err)
		}
	}
	in := NewInjector(spec)
	in.OnDrop = func(e core.Event) { mon.MarkFeedLoss(e.Time, 1, "injected drop") }
	evs := in.Apply(fwEvents())
	trace.Replay(sched, evs, mon.HandleEvent)
	sched.RunFor(time.Hour)
	fmt.Fprintf(&buf, "stats: %+v\n", mon.Stats())
	led, err := json.Marshal(mon.Ledger().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(led)
	return buf.Bytes()
}

// The acceptance gate: same seed + same spec ⇒ byte-identical violation
// ledgers across two full runs (injection, monitoring, soundness marks).
func TestInjectionDeterministicEndToEnd(t *testing.T) {
	spec, err := ParseSpec("drop=0.05,dup=0.01,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	a := violationLedger(t, spec, "firewall-basic", "firewall-until-close")
	b := violationLedger(t, spec, "firewall-basic", "firewall-until-close")
	if !bytes.Equal(a, b) {
		t.Fatalf("two runs with the same seed+spec diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(string(a), "injected-loss") {
		t.Fatalf("ledger did not record injected loss:\n%s", a)
	}
}

// Injected drops must degrade detection monotonically-ish and land in
// the ledger: with loss the monitor reports no more violations than the
// fault-free run, and every property is marked unsound.
func TestDropDegradesDetection(t *testing.T) {
	run := func(spec Spec) (uint64, []core.UnsoundMark) {
		sched := sim.NewScheduler()
		mon := core.NewMonitor(sched, core.Config{})
		if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
			t.Fatal(err)
		}
		in := NewInjector(spec)
		in.OnDrop = func(e core.Event) { mon.MarkFeedLoss(e.Time, 1, "injected drop") }
		evs := in.Apply(fwEvents())
		trace.Replay(sched, evs, mon.HandleEvent)
		sched.RunFor(time.Hour)
		return mon.Stats().Violations, mon.Ledger().Snapshot()
	}
	clean, cleanMarks := run(DefaultSpec())
	if clean == 0 {
		t.Fatal("fault-free run found no violations; workload is wrong")
	}
	if len(cleanMarks) != 0 {
		t.Fatalf("fault-free run marked properties unsound: %+v", cleanMarks)
	}
	spec, _ := ParseSpec("drop=0.3,seed=5")
	lossy, marks := run(spec)
	if lossy >= clean {
		t.Fatalf("30%% loss did not reduce detections: clean=%d lossy=%d", clean, lossy)
	}
	if len(marks) != 1 || marks[0].Reason != core.UnsoundInjectedLoss || marks[0].Events == 0 {
		t.Fatalf("expected one injected-loss mark with a loss count, got %+v", marks)
	}
}

// ArmShardFaults: an injected shard panic must not crash the process;
// the property stepped at the fault point is quarantined and the engine
// keeps answering.
func TestArmShardFaultsPanicQuarantines(t *testing.T) {
	sm := core.NewShardedMonitor(4, core.Config{})
	defer sm.Close()
	if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec("panic-shard=0@5")
	if err != nil {
		t.Fatal(err)
	}
	if err := ArmShardFaults(sm, spec); err != nil {
		t.Fatal(err)
	}
	evs := fwEvents()
	for i := range evs {
		if err := sm.Submit(evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := sm.Stats()
	if st.QuarantinedProperties != 1 {
		t.Fatalf("QuarantinedProperties=%d want 1", st.QuarantinedProperties)
	}
	marks := sm.Ledger().Snapshot()
	if len(marks) != 1 || marks[0].Reason != core.UnsoundQuarantine || marks[0].Property != "firewall-basic" {
		t.Fatalf("expected a quarantine mark for firewall-basic, got %+v", marks)
	}
	if !strings.Contains(marks[0].Detail, "injected panic") {
		t.Fatalf("mark detail should carry the panic message, got %q", marks[0].Detail)
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatalf("post-quarantine invariants: %v", err)
	}
}

// ArmShardFaults rejects out-of-range shards and arming after Submit.
func TestArmShardFaultsValidation(t *testing.T) {
	sm := core.NewShardedMonitor(2, core.Config{})
	defer sm.Close()
	if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	spec, _ := ParseSpec("panic-shard=9@1")
	if err := ArmShardFaults(sm, spec); err == nil {
		t.Fatal("expected out-of-range shard to be rejected")
	}
	if err := sm.Submit(core.Event{Kind: core.KindArrival, Time: sim.Epoch}); err != nil {
		t.Fatal(err)
	}
	spec, _ = ParseSpec("panic-shard=0@1")
	if err := ArmShardFaults(sm, spec); err == nil {
		t.Fatal("expected arming after Submit to be rejected")
	}
}
