package fault

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
)

// TestFaultMatrix is the CI chaos gate: for each (mode, seed) cell it
// runs a full monitored workload under that fault and asserts the
// graceful-degradation contract — no crash, a truthful ledger, and
// (for feed faults) a deterministic outcome. The ci.yml fault-matrix
// job pins one cell per runner via FAULT_MATRIX_MODE and
// FAULT_MATRIX_SEED; with the variables unset (a local `go test`) every
// cell runs in-process.
func TestFaultMatrix(t *testing.T) {
	modes := []string{"panic-shard", "drop"}
	seeds := []int64{1, 2, 3}
	if m := os.Getenv("FAULT_MATRIX_MODE"); m != "" {
		modes = []string{m}
	}
	if s := os.Getenv("FAULT_MATRIX_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FAULT_MATRIX_SEED=%q: %v", s, err)
		}
		seeds = []int64{n}
	}
	for _, mode := range modes {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				switch mode {
				case "panic-shard":
					matrixPanicShard(t, seed)
				case "drop":
					matrixDrop(t, seed)
				default:
					t.Fatalf("unknown FAULT_MATRIX_MODE %q", mode)
				}
			})
		}
	}
}

// matrixPanicShard injects a panic into one shard (the shard index and
// fault point vary with the seed) and checks that the engine survives,
// quarantines exactly one property, and still detects violations for
// the surviving properties.
func matrixPanicShard(t *testing.T, seed int64) {
	shards := 4
	spec, err := ParseSpec(fmt.Sprintf("panic-shard=%d@%d,seed=%d", seed%int64(shards), 10+seed*7, seed))
	if err != nil {
		t.Fatal(err)
	}
	sm := core.NewShardedMonitor(shards, core.Config{})
	defer sm.Close()
	props := []string{"firewall-basic", "firewall-until-close"}
	for _, name := range props {
		if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ArmShardFaults(sm, spec); err != nil {
		t.Fatal(err)
	}
	evs := trace.FirewallWorkload{
		Flows: 400, ReturnsPerFlow: 3, ViolationEvery: 10, Gap: time.Millisecond,
	}.Events(sim.Epoch)
	if err := sm.SubmitBatch(evs); err != nil {
		t.Fatal(err)
	}
	sm.AdvanceTo(evs[len(evs)-1].Time.Add(time.Hour))
	st := sm.Stats()
	if st.QuarantinedProperties != 1 {
		t.Fatalf("QuarantinedProperties=%d want 1 (marks: %+v)", st.QuarantinedProperties, sm.Ledger().Snapshot())
	}
	if st.Violations == 0 {
		t.Fatal("surviving properties detected nothing after the quarantine")
	}
	if sm.Ledger().Sound() {
		t.Fatal("ledger claims soundness after a quarantine")
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatalf("post-quarantine invariants: %v", err)
	}
}

// matrixDrop injects 5% event loss and checks the determinism contract
// (two identical runs, byte-identical observable output) plus a
// truthful injected-loss ledger.
func matrixDrop(t *testing.T, seed int64) {
	spec, err := ParseSpec(fmt.Sprintf("drop=0.05,seed=%d", seed))
	if err != nil {
		t.Fatal(err)
	}
	a := violationLedger(t, spec, "firewall-basic")
	b := violationLedger(t, spec, "firewall-basic")
	if !bytes.Equal(a, b) {
		t.Fatalf("drop=0.05 seed=%d: two runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, a, b)
	}
	if !bytes.Contains(a, []byte("injected-loss")) {
		t.Fatalf("ledger did not record the injected loss:\n%s", a)
	}
}
