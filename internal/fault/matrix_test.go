package fault

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"switchmon/internal/collector"
	"switchmon/internal/core"
	"switchmon/internal/dsl"
	"switchmon/internal/exporter"
	"switchmon/internal/federation"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/trace"
	"switchmon/internal/wire"
)

// TestFaultMatrix is the CI chaos gate: for each (mode, seed) cell it
// runs a full monitored workload under that fault and asserts the
// graceful-degradation contract — no crash, a truthful ledger, and
// (for feed faults) a deterministic outcome. The ci.yml fault-matrix
// job pins one cell per runner via FAULT_MATRIX_MODE and
// FAULT_MATRIX_SEED; with the variables unset (a local `go test`) every
// cell runs in-process.
func TestFaultMatrix(t *testing.T) {
	modes := []string{"panic-shard", "drop", "wire-drop", "wire-delay", "lifecycle-churn", "collector-leave"}
	seeds := []int64{1, 2, 3}
	if m := os.Getenv("FAULT_MATRIX_MODE"); m != "" {
		modes = []string{m}
	}
	if s := os.Getenv("FAULT_MATRIX_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("FAULT_MATRIX_SEED=%q: %v", s, err)
		}
		seeds = []int64{n}
	}
	for _, mode := range modes {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				switch mode {
				case "panic-shard":
					matrixPanicShard(t, seed)
				case "drop":
					matrixDrop(t, seed)
				case "wire-drop":
					matrixWireDrop(t, seed)
				case "wire-delay":
					matrixWireDelay(t, seed)
				case "lifecycle-churn":
					matrixLifecycleChurn(t, seed)
				case "collector-leave":
					matrixCollectorLeave(t, seed)
				default:
					t.Fatalf("unknown FAULT_MATRIX_MODE %q", mode)
				}
			})
		}
	}
}

// matrixPanicShard injects a panic into one shard (the shard index and
// fault point vary with the seed) and checks that the engine survives,
// quarantines exactly one property, and still detects violations for
// the surviving properties.
func matrixPanicShard(t *testing.T, seed int64) {
	shards := 4
	spec, err := ParseSpec(fmt.Sprintf("panic-shard=%d@%d,seed=%d", seed%int64(shards), 10+seed*7, seed))
	if err != nil {
		t.Fatal(err)
	}
	sm := core.NewShardedMonitor(shards, core.Config{})
	defer sm.Close()
	props := []string{"firewall-basic", "firewall-until-close"}
	for _, name := range props {
		if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ArmShardFaults(sm, spec); err != nil {
		t.Fatal(err)
	}
	evs := trace.FirewallWorkload{
		Flows: 400, ReturnsPerFlow: 3, ViolationEvery: 10, Gap: time.Millisecond,
	}.Events(sim.Epoch)
	if err := sm.SubmitBatch(evs, nil); err != nil {
		t.Fatal(err)
	}
	sm.AdvanceTo(evs[len(evs)-1].Time.Add(time.Hour))
	st := sm.Stats()
	if st.QuarantinedProperties != 1 {
		t.Fatalf("QuarantinedProperties=%d want 1 (marks: %+v)", st.QuarantinedProperties, sm.Ledger().Snapshot())
	}
	if st.Violations == 0 {
		t.Fatal("surviving properties detected nothing after the quarantine")
	}
	if sm.Ledger().Sound() {
		t.Fatal("ledger claims soundness after a quarantine")
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatalf("post-quarantine invariants: %v", err)
	}
}

// matrixDrop injects 5% event loss and checks the determinism contract
// (two identical runs, byte-identical observable output) plus a
// truthful injected-loss ledger.
func matrixDrop(t *testing.T, seed int64) {
	spec, err := ParseSpec(fmt.Sprintf("drop=0.05,seed=%d", seed))
	if err != nil {
		t.Fatal(err)
	}
	a := violationLedger(t, spec, "firewall-basic")
	b := violationLedger(t, spec, "firewall-basic")
	if !bytes.Equal(a, b) {
		t.Fatalf("drop=0.05 seed=%d: two runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, a, b)
	}
	if !bytes.Contains(a, []byte("injected-loss")) {
		t.Fatalf("ledger did not record the injected loss:\n%s", a)
	}
}

// matrixWireDrop runs the same workload through the full distributed
// fabric (exporter → TCP → collector → sharded engine) with the fault
// on the exporter link: every drop is reported via NoteLoss, becomes a
// sequence gap, and must be accounted exactly — collector gap events
// equal to injected drops — while the verdict set stays deterministic.
func matrixWireDrop(t *testing.T, seed int64) {
	spec, err := ParseSpec(fmt.Sprintf("drop=0.05,seed=%d", seed))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := wireOutcome(t, spec, false)
	b, _ := wireOutcome(t, spec, false)
	if !bytes.Equal(a, b) {
		t.Fatalf("wire drop=0.05 seed=%d: two runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, a, b)
	}
	if !bytes.Contains(a, []byte("wire-loss")) {
		t.Fatalf("ledger did not record the wire loss:\n%s", a)
	}
}

// matrixWireDelay jitters event timestamps (the injector's offline path;
// delay cannot be applied online) before export. Delay perturbs when
// things happen, not whether they arrive, so the fabric must deliver
// everything — a sound ledger and zero gaps — and stay deterministic.
// The cell then re-runs with every event traced: spans must not change
// the observable outcome by a byte, and within each host's clock domain
// the raw stage marks must stay monotone.
func matrixWireDelay(t *testing.T, seed int64) {
	spec, err := ParseSpec(fmt.Sprintf("delay=5ms,seed=%d", seed))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := wireOutcome(t, spec, false)
	b, _ := wireOutcome(t, spec, false)
	if !bytes.Equal(a, b) {
		t.Fatalf("wire delay=5ms seed=%d: two runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, a, b)
	}
	if bytes.Contains(a, []byte("wire-loss")) {
		t.Fatalf("delay-only fault lost events:\n%s", a)
	}

	c, colTr := wireOutcome(t, spec, true)
	if !bytes.Equal(a, c) {
		t.Fatalf("wire delay=5ms seed=%d: tracing changed the outcome:\n--- untraced ---\n%s\n--- traced ---\n%s", seed, a, c)
	}
	recs := colTr.Snapshot()
	if len(recs) == 0 {
		t.Fatal("traced run completed no spans")
	}
	domains := [][]string{
		{"ingress", "enqueue", "batch_seal", "wire_send"},
		{"collector_recv", "shard_dispatch", "verdict"},
	}
	for _, r := range recs {
		for _, domain := range domains {
			prev := int64(0)
			for _, st := range domain {
				m := r.Marks[st]
				if m == 0 {
					continue
				}
				if m < prev {
					t.Fatalf("span %x: stage %s mark %d precedes previous stage (%d); marks=%v",
						r.Key, st, m, prev, r.Marks)
				}
				prev = m
			}
		}
	}
}

// matrixLifecycleChurn is lifecycle disturbance as a chaos cell: one
// property is removed and reinstalled at seed-derived points while the
// sharded engine evaluates a full workload. The contract mirrors the
// feed faults — two identical runs are byte-identical, the stable
// property's verdicts match a static inline engine exactly, and the
// churned property carries its reinstalled mark (a truthful ledger,
// never a silently thinner verdict stream).
func matrixLifecycleChurn(t *testing.T, seed int64) {
	a, stableA := churnOutcome(t, seed)
	b, _ := churnOutcome(t, seed)
	if !bytes.Equal(a, b) {
		t.Fatalf("lifecycle-churn seed=%d: two runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", seed, a, b)
	}
	if !bytes.Contains(a, []byte("reinstalled")) {
		t.Fatalf("ledger did not record the reinstall:\n%s", a)
	}

	// Static inline reference for the stable property only: churn of the
	// neighbor must not perturb it by a byte.
	sched := sim.NewScheduler()
	var want []string
	mon := core.NewMonitor(sched, core.Config{OnViolation: func(v *core.Violation) {
		want = append(want, fmt.Sprintf("%s %s %s", v.Time.Format(time.RFC3339Nano), v.Property, v.Trigger))
	}})
	if err := mon.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	trace.Replay(sched, fwEvents(), mon.HandleEvent)
	sched.RunFor(time.Hour)
	sort.Strings(want)
	if len(want) == 0 {
		t.Fatal("inline reference found no stable-property violations; the cell is vacuous")
	}
	if len(stableA) != len(want) {
		t.Fatalf("stable property: churned run %d violations, inline %d", len(stableA), len(want))
	}
	for i := range want {
		if stableA[i] != want[i] {
			t.Fatalf("stable verdict %d differs under churn\nchurned: %s\ninline:  %s", i, stableA[i], want[i])
		}
	}
}

// churnOutcome runs the firewall workload on a sharded engine, removing
// firewall-until-close and reinstalling it at seed-derived stream
// positions, and renders everything observable as bytes plus the stable
// property's sorted verdicts for the inline comparison.
func churnOutcome(t *testing.T, seed int64) ([]byte, []string) {
	t.Helper()
	evs := fwEvents()
	removeAt := len(evs)/4 + int(seed*31)%(len(evs)/4)
	reinstallAt := len(evs)/2 + int(seed*17)%(len(evs)/4)

	var mu sync.Mutex
	viols := map[string][]string{}
	sm := core.NewShardedMonitor(4, core.Config{OnViolation: func(v *core.Violation) {
		mu.Lock()
		viols[v.Property] = append(viols[v.Property],
			fmt.Sprintf("%s %s %s", v.Time.Format(time.RFC3339Nano), v.Property, v.Trigger))
		mu.Unlock()
	}})
	defer sm.Close()
	const churnName = "firewall-until-close"
	for _, name := range []string{"firewall-basic", churnName} {
		if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), name)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range evs {
		switch i {
		case removeAt:
			if err := sm.RemoveProperty(churnName); err != nil {
				t.Fatal(err)
			}
		case reinstallAt:
			if err := sm.InstallProperty(property.CatalogByName(property.DefaultParams(), churnName)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sm.Submit(evs[i]); err != nil {
			t.Fatal(err)
		}
		sm.Tick(evs[i].Time)
	}
	sm.AdvanceTo(evs[len(evs)-1].Time.Add(time.Hour))
	if got := sm.Epoch(); got != 2 {
		t.Fatalf("lifecycle epoch = %d, want 2", got)
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatalf("post-churn invariants: %v", err)
	}

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "churn: remove@%d reinstall@%d\n", removeAt, reinstallAt)
	mu.Lock()
	names := make([]string, 0, len(viols))
	for name := range viols {
		names = append(names, name)
		sort.Strings(viols[name])
	}
	sort.Strings(names)
	for _, name := range names {
		for _, v := range viols[name] {
			fmt.Fprintln(&buf, v)
		}
	}
	stable := append([]string(nil), viols["firewall-basic"]...)
	mu.Unlock()
	for _, m := range sm.Ledger().Snapshot() {
		fmt.Fprintf(&buf, "mark: %s %s events=%d\n", m.Property, m.Reason, m.Events)
	}
	return buf.Bytes(), stable
}

// wireOutcome runs fwEvents through exporter → TCP → collector → sharded
// engine under the spec's feed fault and renders everything observable
// (sorted verdicts, soundness marks, loss accounting) as bytes for the
// determinism comparison. Delay/reorder specs use the offline Apply path
// upstream of the exporter; drop/dup wrap its Publish online. With
// traced set, every event carries a span across the fabric and the
// collector-side tracer is returned for stage-mark assertions.
func wireOutcome(t *testing.T, spec Spec, traced bool) ([]byte, *tracer.Tracer) {
	t.Helper()
	var mu sync.Mutex
	var viols []string
	var swTr, colTr *tracer.Tracer
	if traced {
		swTr = tracer.New(tracer.Config{SampleN: 1})
		colTr = tracer.New(tracer.Config{SampleN: 1, Ring: 1 << 13})
	}
	sm := core.NewShardedMonitor(2, core.Config{Tracer: colTr, OnViolation: func(v *core.Violation) {
		mu.Lock()
		viols = append(viols, fmt.Sprintf("%s %s %s", v.Time.Format(time.RFC3339Nano), v.Property, v.Trigger))
		mu.Unlock()
	}})
	defer sm.Close()
	if err := sm.AddProperty(property.CatalogByName(property.DefaultParams(), "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	col, err := collector.New(collector.Config{Addr: "127.0.0.1:0", Tracer: colTr}, sm)
	if err != nil {
		t.Fatal(err)
	}
	col.Serve()
	defer col.Close()
	x, err := exporter.New(exporter.Config{Addr: col.Addr().String(), DPID: 1, BatchSize: 32, Tracer: swTr})
	if err != nil {
		t.Fatal(err)
	}
	x.Start()

	ingress := func(e core.Event) {
		if sp := swTr.Sample(1, uint64(e.PacketID), uint8(e.Kind)); sp != nil {
			sp.Stamp(tracer.StageIngress)
			e.Trace = sp
		}
		x.Publish(e)
	}

	in := NewInjector(spec)
	evs := fwEvents()
	if spec.NeedsBuffer() {
		evs = in.Apply(evs)
		for _, e := range evs {
			ingress(e)
		}
	} else {
		in.OnDrop = func(core.Event) { x.NoteLoss(1) }
		publish := in.Wrap(ingress)
		for _, e := range evs {
			publish(e)
		}
		if in.Stats().Dropped == 0 {
			t.Fatal("injector dropped nothing; the cell no longer exercises wire loss")
		}
	}
	x.Flush()
	if abandoned := x.Close(5 * time.Second); abandoned != 0 {
		t.Fatalf("exporter abandoned %d events", abandoned)
	}
	deadline := time.Now().Add(5 * time.Second)
	for col.Stats().Events < x.Stats().Published {
		if time.Now().After(deadline) {
			t.Fatalf("collector applied %d of %d events", col.Stats().Events, x.Stats().Published)
		}
		time.Sleep(2 * time.Millisecond)
	}
	sm.AdvanceTo(sim.Epoch.Add(time.Hour))
	sm.Barrier()

	// The gap-accounting contract: every injected drop, including at the
	// tail of the stream, is visible to the collector as a gap event.
	if gaps := col.Stats().GapEvents; gaps != in.Stats().Dropped {
		t.Fatalf("collector gap events = %d, injector dropped = %d", gaps, in.Stats().Dropped)
	}
	if err := sm.SelfCheck(); err != nil {
		t.Fatalf("post-run invariants: %v", err)
	}

	var buf bytes.Buffer
	st := in.Stats()
	fmt.Fprintf(&buf, "injected: dropped=%d delayed=%d\n", st.Dropped, st.Delayed)
	mu.Lock()
	sort.Strings(viols)
	for _, v := range viols {
		fmt.Fprintln(&buf, v)
	}
	mu.Unlock()
	for _, m := range sm.Ledger().Snapshot() {
		// Times and sequence points vary with wall-clock batching; the
		// attribution and the loss count must not.
		fmt.Fprintf(&buf, "mark: %s %s events=%d\n", m.Property, m.Reason, m.Events)
	}
	cs := col.Stats()
	fmt.Fprintf(&buf, "collector: events=%d gaps=%d deduped=%d\n", cs.Events, cs.GapEvents, cs.Deduped)
	return buf.Bytes(), colTr
}

// leaveProperty is the collector-leave cell's workload property: a
// violation fires when a switch drops a flow it just forwarded. Its
// identity pins switch.id on every path, so the property is
// dpid-partitionable and verdicts carry a $SW binding the cell uses to
// split the fleet's union back out per switch.
const leaveProperty = `
property "leave-local-drop" {
  description "a forwarded SYN's flow must not be dropped by the same switch within a second"

  on egress "fwd" {
    match tcp.syn == 1
    match dropped == 0
    bind $SW = switch.id
    bind $SRC = ip.src
  }

  on egress "dropped" within 1s {
    match switch.id == $SW
    match ip.src == $SRC
    match dropped == 1
  }
}
`

// leavePhase builds one time-ordered phase of traffic for one switch:
// six forwarded SYN flows, the odd ones dropped by the same switch
// 200ms later (a violation each).
func leavePhase(sw uint64, phase int) []core.Event {
	base := sim.Epoch.Add(time.Duration(phase) * 10 * time.Second)
	macS := packet.MustMAC("02:00:00:00:00:01")
	macD := packet.MustMAC("02:00:00:00:00:02")
	dst := packet.MustIPv4("203.0.113.9")
	var out []core.Event
	for f := 1; f <= 6; f++ {
		src := packet.MustIPv4(fmt.Sprintf("10.%d.%d.%d", phase, sw%200, f))
		pkt := packet.NewTCP(macS, macD, src, dst, uint16(30000+f), 80, packet.FlagSYN, nil)
		at := base.Add(time.Duration(f) * 10 * time.Millisecond)
		out = append(out, core.Event{
			Kind: core.KindEgress, Time: at, SwitchID: sw,
			PacketID: core.PacketID(uint64(phase)<<24 | sw<<8 | uint64(f)),
			Packet:   pkt, InPort: 1, OutPort: 2,
		})
		if f%2 == 1 {
			out = append(out, core.Event{
				Kind: core.KindEgress, Time: at.Add(200 * time.Millisecond), SwitchID: sw,
				PacketID: core.PacketID(uint64(phase)<<24 | sw<<8 | uint64(f)),
				Packet:   pkt, InPort: 1, Dropped: true,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// matrixCollectorLeave kills one of two fleet collectors mid-run and
// removes it from the fleet while events for its partition sit unacked
// on the dead route. The contract: the replay-based handoff moves every
// stranded event to the survivor (router Replayed accounts them
// exactly, no loss marks anywhere), the non-moved partition's verdicts
// are byte-identical to an inline engine, and — because the kill lands
// at a quiescent boundary for engine state — so is the fleet-wide
// union.
func matrixCollectorLeave(t *testing.T, seed int64) {
	prop, err := dsl.Parse(leaveProperty)
	if err != nil {
		t.Fatal(err)
	}

	waitOn := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Two collectors, each a full sharded engine; the fleet's verdict
	// union lands in one shared recorder.
	var mu sync.Mutex
	var union []string
	record := func(v *core.Violation) {
		mu.Lock()
		union = append(union, v.String())
		mu.Unlock()
	}
	type member struct {
		sm  *core.ShardedMonitor
		col *collector.Collector
	}
	var cols [2]member
	for i := range cols {
		sm := core.NewShardedMonitor(2, core.Config{Provenance: core.ProvLimited, OnViolation: record})
		if err := sm.AddProperty(prop); err != nil {
			t.Fatal(err)
		}
		col, err := collector.New(collector.Config{Addr: "127.0.0.1:0"}, sm)
		if err != nil {
			t.Fatal(err)
		}
		col.Serve()
		defer col.Close()
		defer sm.Close()
		cols[i] = member{sm: sm, col: col}
	}
	addrA := cols[0].col.Addr().String()
	addrB := cols[1].col.Addr().String()

	// Pick the partitions by asking the ring itself: one dpid that the
	// survivor owns (never moves) and one the doomed collector owns
	// (moves on the leave). The seed varies the search range.
	ring, err := federation.NewRing([]federation.Member{{Addr: addrA}, {Addr: addrB}})
	if err != nil {
		t.Fatal(err)
	}
	var swStay, swMove uint64
	for k := uint64(seed*97 + 1); swStay == 0 || swMove == 0; k++ {
		switch ring.Owner(k) {
		case addrA:
			if swStay == 0 {
				swStay = k
			}
		case addrB:
			if swMove == 0 {
				swMove = k
			}
		}
	}

	// Inline reference: one engine, both switches, global time order.
	var events []core.Event
	for _, sw := range []uint64{swStay, swMove} {
		for phase := 0; phase < 2; phase++ {
			events = append(events, leavePhase(sw, phase)...)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	sched := sim.NewScheduler()
	var want []string
	mon := core.NewMonitor(sched, core.Config{Provenance: core.ProvLimited, OnViolation: func(v *core.Violation) {
		want = append(want, v.String())
	}})
	if err := mon.AddProperty(prop); err != nil {
		t.Fatal(err)
	}
	trace.Replay(sched, events, mon.HandleEvent)
	mon.Flush()
	sched.RunFor(time.Hour)
	sort.Strings(want)
	if len(want) != 12 {
		t.Fatalf("inline reference found %d violations, want 12", len(want))
	}

	routers := map[uint64]*federation.Router{}
	for _, sw := range []uint64{swStay, swMove} {
		r, err := federation.NewRouter(federation.Config{
			Members:      []federation.Member{{Addr: addrA}, {Addr: addrB}},
			DPID:         sw,
			DrainTimeout: 300 * time.Millisecond,
			Exporter:     exporter.Config{BatchSize: 4, MaxBatchAge: 2 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		defer r.Close(time.Second)
		routers[sw] = r
	}
	publish := func(phase int) int {
		n := 0
		for _, sw := range []uint64{swStay, swMove} {
			for _, e := range leavePhase(sw, phase) {
				routers[sw].Publish(e)
				n++
			}
		}
		for _, r := range routers {
			r.Flush()
		}
		return n
	}

	// Phase 0 on the full fleet, then quiesce hard: applied everywhere
	// AND acked back (empty route queues), so the kill cannot race an
	// in-flight ack into a double apply.
	phase0 := publish(0)
	waitOn("phase 0 applied", func() bool {
		return cols[0].col.Stats().Events+cols[1].col.Stats().Events == uint64(phase0)
	})
	waitOn("phase 0 acked", func() bool {
		for _, r := range routers {
			for _, es := range r.RouteStats() {
				if es.QueueDepth != 0 {
					return false
				}
			}
		}
		return true
	})
	appliedB := cols[1].col.Stats().Events

	// Kill collector B dead, publish phase 1 while its route cannot ack,
	// then remove it from the fleet: the handoff must extract the
	// stranded events and replay them to the survivor.
	cols[1].col.Close()
	phase1 := publish(1)
	fc := &wire.FleetConfig{Epoch: 1, Members: []wire.FleetMember{{Addr: addrA}}}
	for _, r := range routers {
		r.ApplyFleetConfig(fc)
	}
	for _, r := range routers {
		r.Flush()
	}
	waitOn("phase 1 applied by the survivor", func() bool {
		return cols[0].col.Stats().Events == uint64(phase0+phase1)-appliedB
	})
	for i := range cols {
		cols[i].sm.Drain()
	}

	// Replay accounting: exactly the moved partition's stranded phase-1
	// events, and only on the moved partition's router.
	moved := uint64(len(leavePhase(swMove, 1)))
	if got := routers[swMove].Stats().Replayed; got != moved {
		t.Fatalf("moved partition replayed %d events, want %d", got, moved)
	}
	if got := routers[swStay].Stats().Replayed; got != 0 {
		t.Fatalf("non-moved partition replayed %d events, want 0", got)
	}
	for _, sw := range []uint64{swStay, swMove} {
		if marks := routers[sw].Ledger(); len(marks) != 0 {
			t.Fatalf("router %d marked loss on a replayed handoff: %+v", sw, marks)
		}
	}
	for i := range cols {
		if !cols[i].sm.Ledger().Sound() {
			t.Fatalf("collector %d ledger unsound: %+v", i, cols[i].sm.Ledger().Snapshot())
		}
	}

	// Non-moved partition: inline-identical. Moved partition: also
	// identical here, because the quiescent kill strands events but
	// never armed engine state.
	mu.Lock()
	got := append([]string(nil), union...)
	mu.Unlock()
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("fleet union %d violations, inline %d:\nfleet: %v\ninline: %v", len(got), len(want), got, want)
	}
	stayTag := fmt.Sprintf("$SW=%d]", swStay)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d differs after collector leave\nfleet:  %s\ninline: %s", i, got[i], want[i])
		}
		if strings.HasSuffix(want[i], stayTag) && got[i] != want[i] {
			t.Fatalf("non-moved partition verdict differs: %s", want[i])
		}
	}
}
