// Package backend implements the seven approaches to on-switch state the
// paper compares in Table 2 — OpenFlow 1.3 (controller-only), OpenState,
// FAST, POF/P4, SNAP, Varanus, and Static Varanus — plus the "ideal"
// switch the paper argues for.
//
// Each backend carries a capability vector mirroring Table 2's rows and
// *enforces* it: compiling a property whose analyzed requirements exceed
// the capabilities fails with a typed error naming the gap. The Table 2
// reproduction in internal/tables probes these compile attempts rather
// than echoing constants, so every ✓/✗ cell in the regenerated table is
// an observed behaviour.
//
// Backends also enforce their *visibility* limits at runtime: a backend
// whose architecture cannot see drop decisions (everything pre-Varanus,
// per Sec. 2.2) silently filters those events, so experiments can measure
// the violations each architecture would miss.
package backend

import (
	"errors"
	"fmt"
	"strings"

	"switchmon/internal/core"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// Tri is a Table 2 cell: supported, unsupported, or blank (not
// applicable / target-dependent, which the paper leaves empty).
type Tri uint8

// Tri values.
const (
	No Tri = iota
	Yes
	Blank
)

// Mark renders the Table 2 cell notation.
func (t Tri) Mark() string {
	switch t {
	case Yes:
		return "yes"
	case No:
		return "no"
	default:
		return ""
	}
}

// Capabilities mirrors the rows of the paper's Table 2, plus the
// drop-visibility axis Sec. 2.2 discusses (not a Table 2 row, but
// enforced the same way).
type Capabilities struct {
	Name string
	// Descriptive rows.
	StateMechanism string // "Controller only", "State machine", ...
	UpdateDatapath string // "Fast path", "Slow path", "—"
	ProcessingMode string // "Inline", "Split", ""
	FieldAccess    string // "Fixed", "Dynamic"
	// Boolean rows.
	EventHistory   Tri
	RelatedEvents  Tri // identification of related events (Feature 5)
	NegativeMatch  Tri
	RuleTimeouts   Tri
	TimeoutActions Tri
	SymmetricMatch Tri
	WanderingMatch Tri
	OutOfBand      Tri
	FullProvenance Tri
	// DropVisibility: can the approach observe drop decisions at all?
	DropVisibility Tri
	// EgressVisibility: can the approach match on egress metadata (output
	// port, multicast) — i.e. does it have pipeline stages after the
	// output decision?
	EgressVisibility Tri
	// Counting: can the approach accumulate quantitative thresholds
	// (counters) per instance? Not a Table 2 row — the paper scopes
	// quantitative properties out — but the extension is tracked the same
	// way.
	Counting Tri
	// StickyGuards: does the approach support permanent (retroactive)
	// obligation discharge? Only the ideal engine does; it is this
	// repository's extension.
	StickyGuards Tri
}

// ErrUnsupported reports the capability gaps that prevent a backend from
// compiling a property.
type ErrUnsupported struct {
	Backend  string
	Property string
	Missing  []string
}

// Error implements error.
func (e *ErrUnsupported) Error() string {
	return fmt.Sprintf("backend %s cannot monitor %s: missing %s",
		e.Backend, e.Property, strings.Join(e.Missing, ", "))
}

// IsUnsupported reports whether err is a capability-gap error.
func IsUnsupported(err error) bool {
	var u *ErrUnsupported
	return errors.As(err, &u)
}

// Backend is one approach to on-switch stateful monitoring.
type Backend interface {
	// Name returns the Table 2 column label.
	Name() string
	// Capabilities returns the declared capability vector.
	Capabilities() Capabilities
	// AddProperty compiles a property onto the backend, or returns
	// *ErrUnsupported naming the gaps.
	AddProperty(p *property.Property) error
	// HandleEvent feeds one switch event (the backend applies its own
	// visibility filter).
	HandleEvent(e core.Event)
	// Violations reports how many violations the backend has detected.
	Violations() uint64
	// PipelineDepth reports the number of match stages a packet traverses
	// — Sec 3.3's scaling quantity (tables for Varanus, stages for Static
	// Varanus, constant for register designs).
	PipelineDepth() int
	// StateUpdateCost reports accumulated state-update work in abstract
	// units (rule modifications for rule-based state, register operations
	// for register state).
	StateUpdateCost() uint64
}

// gaps compares a property's analyzed requirements against a capability
// vector. Blank cells count as unsupported for compilation purposes: a
// monitor cannot rely on target-dependent behaviour.
func gaps(caps Capabilities, ft property.Features) []string {
	var missing []string
	need := func(ok Tri, label string) {
		if ok != Yes {
			missing = append(missing, label)
		}
	}
	if ft.History {
		need(caps.EventHistory, "event history")
	}
	if ft.Identity {
		need(caps.RelatedEvents, "identification of related events")
	}
	if ft.NegMatch {
		need(caps.NegativeMatch, "negative match")
	}
	if ft.Timeouts {
		need(caps.RuleTimeouts, "rule timeouts")
	}
	if ft.TimeoutActions {
		need(caps.TimeoutActions, "timeout actions")
	}
	if ft.InstanceID == property.IDSymmetric {
		need(caps.SymmetricMatch, "symmetric match")
	}
	if ft.InstanceID == property.IDWandering {
		need(caps.WanderingMatch, "wandering match")
	}
	if ft.MultipleMatch || ft.OutOfBand {
		need(caps.OutOfBand, "out-of-band events")
	}
	if ft.DropVisibility {
		need(caps.DropVisibility, "dropped-packet visibility")
	}
	if ft.EgressVisibility {
		need(caps.EgressVisibility, "egress metadata matching")
	}
	if ft.Counting {
		need(caps.Counting, "counting state")
	}
	if ft.Sticky {
		need(caps.StickyGuards, "sticky (permanent) guards")
	}
	return missing
}

// Supports reports whether the backend's declared capabilities cover the
// property — the probe the Table 2 regeneration uses.
func Supports(b Backend, p *property.Property) error {
	return checkSupport(b.Capabilities(), p)
}

// checkSupport wraps gaps into the typed error.
func checkSupport(caps Capabilities, p *property.Property) error {
	ft := property.Analyze(p)
	if missing := gaps(caps, ft); len(missing) > 0 {
		return &ErrUnsupported{Backend: caps.Name, Property: p.Name, Missing: missing}
	}
	return nil
}

// All constructs one of every backend, each with its own monitor state on
// the shared scheduler, in Table 2 column order followed by the ideal
// switch.
func All(sched *sim.Scheduler) []Backend {
	return []Backend{
		NewOpenFlow13(sched),
		NewOpenFlow15(sched),
		NewOpenState(sched),
		NewFAST(sched),
		NewP4(sched),
		NewSNAP(sched),
		NewVaranus(sched),
		NewStaticVaranus(sched),
		NewShardedVaranus(sched),
		NewIdeal(sched),
	}
}
