package backend

import (
	"time"

	"switchmon/internal/packet"
	"switchmon/internal/property"
)

// Witness pairs one boolean Table 2 row with a minimal property requiring
// exactly that feature. The regenerated Table 2 derives its ✓/✗ cells by
// compiling these witnesses against each backend, so the table reports
// observed behaviour rather than transcription. Witnesses deliberately
// avoid egress/drop fields: they isolate the row under probe from the
// (separately tracked) visibility axes.
type Witness struct {
	// Row is the Table 2 row label.
	Row string
	// Prop is the minimal property requiring the row's feature.
	Prop *property.Property
	// Capability extracts the corresponding cell from a capability vector.
	Capability func(Capabilities) Tri
}

// Witnesses returns one probe per boolean Table 2 row.
func Witnesses() []Witness {
	var ws []Witness
	add := func(row string, cap func(Capabilities) Tri, build func(*property.Builder)) {
		b := property.New("witness-"+row, "table 2 probe for "+row)
		build(b)
		ws = append(ws, Witness{Row: row, Prop: b.MustBuild(), Capability: cap})
	}

	add("event-history", func(c Capabilities) Tri { return c.EventHistory }, func(b *property.Builder) {
		b.OnArrival("first").Bind("A", packet.FieldIPSrc)
		b.OnArrival("second").Where(property.EqVar(packet.FieldIPSrc, "A"))
	})
	add("related-events", func(c Capabilities) Tri { return c.RelatedEvents }, func(b *property.Builder) {
		b.OnArrival("seen").Bind("A", packet.FieldIPSrc)
		b.OnPacket("same-again").SamePacket(0).Where(property.EqVar(packet.FieldIPSrc, "A"))
	})
	add("negative-match", func(c Capabilities) Tri { return c.NegativeMatch }, func(b *property.Builder) {
		b.OnArrival("first").Bind("A", packet.FieldIPSrc)
		b.OnArrival("odd-port").Where(
			property.EqVar(packet.FieldIPSrc, "A"),
			property.Ne(packet.FieldDstPort, 99))
	})
	add("rule-timeouts", func(c Capabilities) Tri { return c.RuleTimeouts }, func(b *property.Builder) {
		b.OnArrival("first").Bind("A", packet.FieldIPSrc)
		b.OnArrival("soon").Within(time.Second).Where(property.EqVar(packet.FieldIPSrc, "A"))
	})
	add("timeout-actions", func(c Capabilities) Tri { return c.TimeoutActions }, func(b *property.Builder) {
		b.OnArrival("first").Bind("A", packet.FieldIPSrc)
		b.UnlessWithin("silence", property.Arrival, time.Second).
			Where(property.EqVar(packet.FieldIPSrc, "A"))
	})
	add("symmetric-match", func(c Capabilities) Tri { return c.SymmetricMatch }, func(b *property.Builder) {
		b.OnArrival("forward").Bind("A", packet.FieldIPSrc)
		b.OnArrival("return").Where(property.EqVar(packet.FieldIPDst, "A"))
	})
	add("wandering-match", func(c Capabilities) Tri { return c.WanderingMatch }, func(b *property.Builder) {
		b.OnArrival("lease").Bind("I", packet.FieldDHCPYourIP)
		b.OnArrival("arp").Where(property.EqVar(packet.FieldARPTargetIP, "I"))
	})
	add("out-of-band", func(c Capabilities) Tri { return c.OutOfBand }, func(b *property.Builder) {
		b.OnArrival("learn").Bind("P", packet.FieldInPort)
		b.OnOutOfBand("down").Where(
			property.Eq(packet.FieldOOBKind, uint64(packet.OOBLinkDown)),
			property.EqVar(packet.FieldOOBPort, "P"))
	})
	add("counting", func(c Capabilities) Tri { return c.Counting }, func(b *property.Builder) {
		b.OnArrival("first").Bind("A", packet.FieldIPSrc)
		b.OnArrival("burst").Where(property.EqVar(packet.FieldIPSrc, "A")).Count(10)
	})
	return ws
}
