package backend

import (
	"runtime"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/obs"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// ShardedVaranus is the multi-core variant of the ideal switch: the
// core.ShardedMonitor exposed as a backend. Same capability vector as
// Ideal — sharding is an execution strategy, not a semantic restriction —
// but state is partitioned by instance-identity hash across per-core
// engines, the answer to Sec. 3.3's worry that per-instance cost grows
// with the live population: the population divides by the core count.
//
// The adapter keeps shard virtual clocks tracking the event stream with
// non-blocking Ticks; the read-side accessors (Violations, state cost)
// barrier internally, so the Backend contract — read after feed — holds
// without the caller knowing about shards.
type ShardedVaranus struct {
	caps   Capabilities
	sm     *core.ShardedMonitor
	nViol  uint64
	stages int
	last   time.Time
}

// DefaultShards picks the shard count for NewShardedVaranus: GOMAXPROCS
// clamped to [2, 8] — at least two so the partitioning machinery is
// always exercised, at most eight because the simulated workloads stop
// scaling there.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	if n > 8 {
		n = 8
	}
	return n
}

// NewShardedVaranus builds the sharded ideal backend with DefaultShards
// shards. The scheduler argument is accepted for constructor uniformity
// with the other backends but unused: each shard owns a private scheduler
// whose clock follows the event stream.
func NewShardedVaranus(_ *sim.Scheduler) *ShardedVaranus {
	return NewShardedVaranusN(DefaultShards())
}

// NewShardedVaranusN builds the sharded ideal backend with an explicit
// shard count.
func NewShardedVaranusN(shards int) *ShardedVaranus {
	return NewShardedVaranusObs(shards, nil, nil)
}

// NewShardedVaranusObs builds the sharded ideal backend with telemetry:
// engine series register into reg with per-shard labels (per-property
// counters aggregate across shards), and every violation is traced into
// ring with full provenance. Either may be nil.
func NewShardedVaranusObs(shards int, reg *obs.Registry, ring *obs.Ring) *ShardedVaranus {
	caps := Capabilities{
		Name:             "Sharded Varanus (multi-core)",
		StateMechanism:   "Sharded indexed instances",
		UpdateDatapath:   "Fast path",
		ProcessingMode:   "Parallel",
		FieldAccess:      "Dynamic",
		EventHistory:     Yes,
		RelatedEvents:    Yes,
		NegativeMatch:    Yes,
		RuleTimeouts:     Yes,
		TimeoutActions:   Yes,
		SymmetricMatch:   Yes,
		WanderingMatch:   Yes,
		OutOfBand:        Yes,
		FullProvenance:   Yes,
		DropVisibility:   Yes,
		EgressVisibility: Yes,
		Counting:         Yes,
		StickyGuards:     Yes,
	}
	sv := &ShardedVaranus{caps: caps}
	sv.sm = core.NewShardedMonitor(shards, core.Config{
		Provenance:  core.ProvFull,
		OnViolation: func(*core.Violation) { sv.nViol++ },
		Metrics:     reg,
		Violations:  ring,
	})
	return sv
}

// Name implements Backend.
func (sv *ShardedVaranus) Name() string { return sv.caps.Name }

// Capabilities implements Backend.
func (sv *ShardedVaranus) Capabilities() Capabilities { return sv.caps }

// Monitor exposes the underlying sharded engine (for barriers, explicit
// clock control, and shard-level stats in the E8 experiments).
func (sv *ShardedVaranus) Monitor() *core.ShardedMonitor { return sv.sm }

// AddProperty implements Backend. The capability vector is all-yes, so
// this only fails on compile errors.
func (sv *ShardedVaranus) AddProperty(p *property.Property) error {
	if err := checkSupport(sv.caps, p); err != nil {
		return err
	}
	if err := sv.sm.AddProperty(p); err != nil {
		return err
	}
	if n := len(p.Stages); n > sv.stages {
		sv.stages = n
	}
	return nil
}

// HandleEvent implements Backend: full visibility, so every event is
// routed. Monotone event timestamps pull the shard clocks forward.
func (sv *ShardedVaranus) HandleEvent(e core.Event) {
	if e.Time.After(sv.last) {
		sv.sm.Tick(e.Time)
		sv.last = e.Time
	}
	sv.sm.Submit(e)
}

// Violations implements Backend (with an internal barrier: the count
// covers everything fed so far).
func (sv *ShardedVaranus) Violations() uint64 {
	sv.sm.Barrier()
	return sv.nViol
}

// PipelineDepth implements Backend: like Ideal, depth is the stage count
// of the deepest property, independent of the live population.
func (sv *ShardedVaranus) PipelineDepth() int { return sv.stages }

// StateUpdateCost implements Backend: register-speed state, one write per
// monitor transition (summed across shards; barriers internally).
func (sv *ShardedVaranus) StateUpdateCost() uint64 {
	st := sv.sm.Stats()
	return st.Created + st.Advanced + st.Discharged + st.Expired + st.Refreshed
}

// Close stops the shard goroutines. Reads remain valid afterwards.
func (sv *ShardedVaranus) Close() { sv.sm.Close() }
