package backend

import (
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

var (
	macA = packet.MustMAC("02:00:00:00:00:0a")
	macB = packet.MustMAC("02:00:00:00:00:0b")
	ipA  = packet.MustIPv4("10.0.0.1")
	ipB  = packet.MustIPv4("203.0.113.9")
)

func prop(t *testing.T, name string) *property.Property {
	t.Helper()
	p := property.CatalogByName(property.DefaultParams(), name)
	if p == nil {
		t.Fatalf("no property %s", name)
	}
	return p
}

func TestCapabilityEnforcement(t *testing.T) {
	sched := sim.NewScheduler()
	cases := []struct {
		backend  Backend
		prop     string
		accepted bool
		mentions string
	}{
		// Varanus and the ideal switch take everything.
		{NewVaranus(sched), "lswitch-linkdown", true, ""},
		{NewVaranus(sched), "dhcparp-preload", true, ""},
		{NewIdeal(sched), "lswitch-linkdown", true, ""},
		{NewIdeal(sched), "arp-proxy-reply", true, ""},
		// Static Varanus: everything except out-of-band multiple match.
		{NewStaticVaranus(sched), "dhcparp-preload", true, ""},
		{NewStaticVaranus(sched), "lswitch-linkdown", false, "out-of-band"},
		// P4: no timeout actions, no wandering, no OOB; egress+drops OK.
		{NewP4(sched), "firewall-until-close", true, ""},
		{NewP4(sched), "nat-reverse", true, ""},
		{NewP4(sched), "arp-proxy-reply", false, "timeout actions"},
		{NewP4(sched), "ftp-data-port", false, "wandering"},
		{NewP4(sched), "lswitch-linkdown", false, "out-of-band"},
		// SNAP additionally lacks rule timeouts and egress visibility.
		{NewSNAP(sched), "firewall-timeout", false, "rule timeouts"},
		{NewSNAP(sched), "firewall-basic", false, "dropped-packet"},
		// OpenState/FAST have no egress pipeline at all.
		{NewOpenState(sched), "firewall-basic", false, "dropped-packet"},
		{NewFAST(sched), "knock-intervening", false, "egress"},
	}
	for _, c := range cases {
		err := c.backend.AddProperty(prop(t, c.prop))
		if c.accepted && err != nil {
			t.Errorf("%s rejected %s: %v", c.backend.Name(), c.prop, err)
		}
		if !c.accepted {
			if err == nil {
				t.Errorf("%s accepted %s, want rejection", c.backend.Name(), c.prop)
				continue
			}
			if !IsUnsupported(err) {
				t.Errorf("%s: error is not ErrUnsupported: %v", c.backend.Name(), err)
			}
			if c.mentions != "" && !containsStr(err.Error(), c.mentions) {
				t.Errorf("%s: error %q does not mention %q", c.backend.Name(), err, c.mentions)
			}
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestOpenFlow13AcceptsEverythingAtController(t *testing.T) {
	sched := sim.NewScheduler()
	b := NewOpenFlow13(sched)
	for _, e := range property.Catalog(property.DefaultParams()) {
		if err := b.AddProperty(e.Prop); err != nil {
			t.Errorf("OF1.3 controller rejected %s: %v", e.Prop.Name, err)
		}
	}
}

// firewallViolationStream drives an A->B arrival then a dropped B->A
// egress through the backend.
func firewallViolationStream(b Backend, sched *sim.Scheduler) {
	ab := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
	ba := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil)
	now := sched.Now()
	b.HandleEvent(core.Event{Kind: core.KindArrival, Time: now, PacketID: 1, Packet: ab, InPort: 1})
	b.HandleEvent(core.Event{Kind: core.KindEgress, Time: now, PacketID: 1, Packet: ab, InPort: 1, OutPort: 2})
	b.HandleEvent(core.Event{Kind: core.KindArrival, Time: now, PacketID: 2, Packet: ba, InPort: 2})
	b.HandleEvent(core.Event{Kind: core.KindEgress, Time: now, PacketID: 2, Packet: ba, InPort: 2, Dropped: true})
}

func TestVisibilityFilterHidesViolations(t *testing.T) {
	// The same violating stream: the ideal switch catches it; the
	// controller-only OF1.3 monitor, blind to drops, misses it — the
	// false-negative cost of external monitoring.
	sched := sim.NewScheduler()
	ideal := NewIdeal(sched)
	of13 := NewOpenFlow13(sched)
	fw := prop(t, "firewall-basic")
	if err := ideal.AddProperty(fw); err != nil {
		t.Fatal(err)
	}
	if err := of13.AddProperty(fw); err != nil {
		t.Fatal(err)
	}
	firewallViolationStream(ideal, sched)
	firewallViolationStream(of13, sched)
	if ideal.Violations() != 1 {
		t.Fatalf("ideal violations = %d, want 1", ideal.Violations())
	}
	if of13.Violations() != 0 {
		t.Fatalf("OF1.3 violations = %d, want 0 (cannot see drops)", of13.Violations())
	}
	if of13.RedirectedPackets() != 2 || of13.RedirectedBytes() == 0 {
		t.Fatalf("redirect accounting: pkts=%d bytes=%d", of13.RedirectedPackets(), of13.RedirectedBytes())
	}
	if ideal.Violations() == 1 && ideal.StateUpdateCost() == 0 {
		t.Fatal("ideal backend recorded no state-update cost")
	}
}

func TestVaranusDetectsEverythingIdealDoes(t *testing.T) {
	sched := sim.NewScheduler()
	varanus := NewVaranus(sched)
	ideal := NewIdeal(sched)
	fw := prop(t, "firewall-basic")
	if err := varanus.AddProperty(fw); err != nil {
		t.Fatal(err)
	}
	if err := ideal.AddProperty(fw); err != nil {
		t.Fatal(err)
	}
	firewallViolationStream(varanus, sched)
	firewallViolationStream(ideal, sched)
	if varanus.Violations() != ideal.Violations() {
		t.Fatalf("varanus=%d ideal=%d", varanus.Violations(), ideal.Violations())
	}
}

func TestPipelineDepthScaling(t *testing.T) {
	// Sec 3.3: Varanus pipeline depth grows with live instances; Static
	// Varanus and register designs stay constant.
	sched := sim.NewScheduler()
	varanus := NewVaranus(sched)
	static := NewStaticVaranus(sched)
	p4 := NewP4(sched)
	fw := prop(t, "firewall-basic")
	for _, b := range []Backend{varanus, static, p4} {
		if err := b.AddProperty(fw); err != nil {
			t.Fatal(err)
		}
	}
	// Open 100 distinct connections: 100 live instances.
	for i := 0; i < 100; i++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(i))
		p := packet.NewTCP(macA, macB, src, ipB, uint16(1000+i), 80, packet.FlagSYN, nil)
		ev := core.Event{Kind: core.KindArrival, Time: sched.Now(), PacketID: core.PacketID(i + 1), Packet: p, InPort: 1}
		varanus.HandleEvent(ev)
		static.HandleEvent(ev)
		p4.HandleEvent(ev)
	}
	if d := varanus.PipelineDepth(); d != 100 {
		t.Errorf("varanus depth = %d, want 100", d)
	}
	if d := static.PipelineDepth(); d != 2 {
		t.Errorf("static varanus depth = %d, want 2 (stages)", d)
	}
	if d := p4.PipelineDepth(); d != 2 {
		t.Errorf("p4 depth = %d, want 2 (stages)", d)
	}
	// Rule-based state paid rule mods; register state paid register ops.
	if varanus.StateUpdateCost() < 100 {
		t.Errorf("varanus rule mods = %d, want >= 100", varanus.StateUpdateCost())
	}
	if p4.StateUpdateCost() < 100 {
		t.Errorf("p4 register ops = %d, want >= 100", p4.StateUpdateCost())
	}
}

func TestTimeoutActionsRunOnVaranusBackends(t *testing.T) {
	sched := sim.NewScheduler()
	for _, b := range []Backend{NewVaranus(sched), NewStaticVaranus(sched), NewIdeal(sched)} {
		if err := b.AddProperty(prop(t, "arp-proxy-reply")); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		mapping := packet.NewARPReply(macA, ipA, macB, ipB)
		req := packet.NewARPRequest(macB, ipB, ipA)
		now := sched.Now()
		b.HandleEvent(core.Event{Kind: core.KindArrival, Time: now, PacketID: 1, Packet: mapping, InPort: 3})
		b.HandleEvent(core.Event{Kind: core.KindArrival, Time: now, PacketID: 2, Packet: req, InPort: 4})
	}
	sched.RunFor(3 * time.Second)
	for _, name := range []string{"Varanus", "Static Varanus", "Ideal (this paper)"} {
		_ = name // violations were counted per backend below
	}
	// Re-run with direct handles to assert counts.
	sched2 := sim.NewScheduler()
	v := NewVaranus(sched2)
	if err := v.AddProperty(prop(t, "arp-proxy-reply")); err != nil {
		t.Fatal(err)
	}
	mapping := packet.NewARPReply(macA, ipA, macB, ipB)
	req := packet.NewARPRequest(macB, ipB, ipA)
	v.HandleEvent(core.Event{Kind: core.KindArrival, Time: sched2.Now(), PacketID: 1, Packet: mapping, InPort: 3})
	v.HandleEvent(core.Event{Kind: core.KindArrival, Time: sched2.Now(), PacketID: 2, Packet: req, InPort: 4})
	sched2.RunFor(3 * time.Second)
	if v.Violations() != 1 {
		t.Fatalf("varanus timeout-action violations = %d, want 1", v.Violations())
	}
}

func TestShardedVaranusMatchesIdeal(t *testing.T) {
	// The sharded backend is Ideal's execution strategy, not a different
	// monitor: on a bulk firewall stream it must report the same violation
	// count and the same register-write cost, spread across its shards.
	sched := sim.NewScheduler()
	ideal := NewIdeal(sched)
	sharded := NewShardedVaranusN(4)
	defer sharded.Close()
	fw := prop(t, "firewall-basic")
	for _, b := range []Backend{ideal, sharded} {
		if err := b.AddProperty(fw); err != nil {
			t.Fatal(err)
		}
	}
	now := sched.Now()
	var pid core.PacketID
	for f := 0; f < 500; f++ {
		src := packet.IPv4FromUint32(0x0a000000 | uint32(f))
		open := packet.NewTCP(macA, macB, src, ipB, uint16(10000+f), 80, packet.FlagSYN, nil)
		ret := packet.NewTCP(macB, macA, ipB, src, 80, uint16(10000+f), packet.FlagACK, nil)
		pid++
		evs := []core.Event{
			{Kind: core.KindArrival, Time: now, PacketID: pid, Packet: open, InPort: 1},
			{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: open, InPort: 1, OutPort: 2},
			{Kind: core.KindEgress, Time: now, PacketID: pid + 1, Packet: ret, InPort: 2, Dropped: f%5 == 0},
		}
		if f%5 != 0 {
			evs[2].OutPort = 1
		}
		pid++
		for _, ev := range evs {
			ideal.HandleEvent(ev)
			sharded.HandleEvent(ev)
		}
		now = now.Add(time.Microsecond)
	}
	if iv, sv := ideal.Violations(), sharded.Violations(); iv != sv {
		t.Fatalf("violations: ideal=%d sharded=%d", iv, sv)
	}
	if sharded.Violations() != 100 {
		t.Fatalf("violations = %d, want 100", sharded.Violations())
	}
	if ic, sc := ideal.StateUpdateCost(), sharded.StateUpdateCost(); ic != sc {
		t.Fatalf("state cost: ideal=%d sharded=%d", ic, sc)
	}
	if d := sharded.PipelineDepth(); d != 2 {
		t.Fatalf("depth = %d, want 2 (stage count, population-independent)", d)
	}
	if sharded.Monitor().Shards() != 4 {
		t.Fatalf("shards = %d, want 4", sharded.Monitor().Shards())
	}
}

func TestAllReturnsEveryBackend(t *testing.T) {
	bs := All(sim.NewScheduler())
	if len(bs) != 10 {
		t.Fatalf("All() = %d backends, want 10", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		if b.Name() == "" {
			t.Error("backend with empty name")
		}
		if names[b.Name()] {
			t.Errorf("duplicate backend name %s", b.Name())
		}
		names[b.Name()] = true
		caps := b.Capabilities()
		if caps.StateMechanism == "" || caps.FieldAccess == "" {
			t.Errorf("%s: incomplete descriptive capabilities", b.Name())
		}
	}
}

// controllerHosted reports whether the backend hosts the monitor at the
// controller (OpenFlow columns), where compilation is unconstrained.
func controllerHosted(b Backend) bool {
	return b.Capabilities().StateMechanism == "Controller only"
}

func TestTriMark(t *testing.T) {
	if Yes.Mark() != "yes" || No.Mark() != "no" || Blank.Mark() != "" {
		t.Fatal("Tri.Mark wrong")
	}
}

func TestSupportsMatchesAddProperty(t *testing.T) {
	// For every capability-enforcing backend and every catalogue
	// property, the declared capabilities (Supports) and the actual
	// compile behaviour (AddProperty) must agree. OF1.3 is exempt: its
	// controller accepts more than the switch natively supports.
	sched := sim.NewScheduler()
	for _, e := range property.Catalog(property.DefaultParams()) {
		for _, b := range All(sim.NewScheduler()) {
			if controllerHosted(b) {
				continue
			}
			declared := Supports(b, e.Prop) == nil
			actual := b.AddProperty(e.Prop) == nil
			if declared != actual {
				t.Errorf("%s / %s: Supports=%v but AddProperty=%v",
					b.Name(), e.Prop.Name, declared, actual)
			}
		}
	}
	_ = sched
}

// TestWitnessProbeMatrix probes each boolean Table 2 row with a minimal
// witness property and checks the observed compile result against the
// declared capability — the mechanism behind the regenerated Table 2.
func TestWitnessProbeMatrix(t *testing.T) {
	for _, w := range Witnesses() {
		for _, b := range All(sim.NewScheduler()) {
			if controllerHosted(b) {
				continue // controller-hosted: compile always succeeds
			}
			declared := w.Capability(b.Capabilities())
			if declared == Blank {
				continue // paper leaves the cell blank; nothing to probe
			}
			err := b.AddProperty(w.Prop)
			got := Yes
			if err != nil {
				got = No
			}
			if got != declared {
				t.Errorf("%s / %s: probe=%v declared=%v (err=%v)",
					b.Name(), w.Row, got == Yes, declared == Yes, err)
			}
		}
	}
}
