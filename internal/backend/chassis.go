package backend

import (
	"switchmon/internal/core"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// stateCost models the cost structure of a backend's state mechanism.
// Rule-based backends pay sorted-table modifications per state transition
// (the OpenFlow path Sec. 3.3 says cannot run at line rate); register
// backends pay O(1) array writes.
type stateCost interface {
	// transitions applies n state transitions with the store holding
	// roughly live entries.
	transitions(n int, live int)
	// total reports accumulated cost units (rule mods or register ops).
	total() uint64
}

// ruleState is the rule-table mechanism: every transition inserts into /
// removes from a priority-sorted rule table whose size tracks the live
// instance count — a memmove-heavy O(n) operation, like an OpenFlow
// flow-mod.
type ruleState struct {
	rules []uint64
	mods  uint64
	seq   uint64
}

func (rs *ruleState) transitions(n, live int) {
	for i := 0; i < n; i++ {
		rs.seq++
		// Deterministic pseudo-random position: rules arrive with
		// arbitrary priorities.
		pos := 0
		if len(rs.rules) > 0 {
			pos = int(rs.seq * 2654435761 % uint64(len(rs.rules)))
		}
		// Insert (flow-mod add).
		rs.rules = append(rs.rules, 0)
		copy(rs.rules[pos+1:], rs.rules[pos:])
		rs.rules[pos] = rs.seq
		rs.mods++
		// Shrink back toward the live size (flow-mod delete of the
		// superseded instance rule).
		for len(rs.rules) > live+1 {
			pos = int(rs.seq % uint64(len(rs.rules)))
			copy(rs.rules[pos:], rs.rules[pos+1:])
			rs.rules = rs.rules[:len(rs.rules)-1]
			rs.mods++
		}
	}
}

func (rs *ruleState) total() uint64 { return rs.mods }

// registerState is the register mechanism: a transition is a constant
// number of array writes.
type registerState struct {
	cells [4096]uint64
	ops   uint64
}

func (rg *registerState) transitions(n, live int) {
	for i := 0; i < n; i++ {
		rg.ops++
		rg.cells[(rg.ops*2654435761)%uint64(len(rg.cells))] = rg.ops
	}
}

func (rg *registerState) total() uint64 { return rg.ops }

// chassis is the shared execution harness: a core.Monitor configured for
// the backend's match strategy, an event-visibility filter, and a state
// cost model. Backends differ in capabilities, filters, costs, and
// whether the monitor may use indexes (Varanus's per-instance tables are
// a linear pipeline walk).
type chassis struct {
	caps  Capabilities
	mon   *core.Monitor
	nViol uint64
	// visibility filter
	seeDrops  bool
	seeEgress bool
	seeOOB    bool
	cost      stateCost
	last      core.Stats
	// fixedDepth, when >= 0, reports a constant pipeline depth; -1 means
	// depth equals the live instance count (Varanus).
	fixedDepth int
	stages     int
}

func newChassis(sched *sim.Scheduler, caps Capabilities, disableIndex bool, prov core.ProvLevel, cost stateCost) *chassis {
	c := &chassis{caps: caps, cost: cost, seeDrops: true, seeEgress: true, seeOOB: true, fixedDepth: 0}
	c.mon = core.NewMonitor(sched, core.Config{
		Provenance:   prov,
		DisableIndex: disableIndex,
		OnViolation:  func(*core.Violation) { c.nViol++ },
	})
	return c
}

// Name implements Backend.
func (c *chassis) Name() string { return c.caps.Name }

// Capabilities implements Backend.
func (c *chassis) Capabilities() Capabilities { return c.caps }

// AddProperty implements Backend with capability enforcement.
func (c *chassis) AddProperty(p *property.Property) error {
	if err := checkSupport(c.caps, p); err != nil {
		return err
	}
	if err := c.mon.AddProperty(p); err != nil {
		return err
	}
	if n := len(p.Stages); n > c.stages {
		c.stages = n
	}
	return nil
}

// HandleEvent implements Backend, applying the visibility filter and the
// state cost model.
func (c *chassis) HandleEvent(e core.Event) {
	switch e.Kind {
	case core.KindEgress:
		if e.Dropped && !c.seeDrops {
			return
		}
		if !c.seeEgress {
			return
		}
	case core.KindOutOfBand:
		if !c.seeOOB {
			return
		}
	}
	c.mon.HandleEvent(e)
	if c.cost != nil {
		st := c.mon.Stats()
		transitions := int((st.Created + st.Advanced + st.Discharged + st.Expired + st.Refreshed) -
			(c.last.Created + c.last.Advanced + c.last.Discharged + c.last.Expired + c.last.Refreshed))
		c.last = st
		if transitions > 0 {
			c.cost.transitions(transitions, c.mon.ActiveInstances())
		}
	}
}

// Violations implements Backend.
func (c *chassis) Violations() uint64 { return c.nViol }

// ActiveInstances exposes the live instance count.
func (c *chassis) ActiveInstances() int { return c.mon.ActiveInstances() }

// PipelineDepth implements Backend.
func (c *chassis) PipelineDepth() int {
	if c.fixedDepth < 0 {
		return c.mon.ActiveInstances()
	}
	if c.fixedDepth > 0 {
		return c.fixedDepth
	}
	return c.stages
}

// StateUpdateCost implements Backend.
func (c *chassis) StateUpdateCost() uint64 {
	if c.cost == nil {
		return 0
	}
	return c.cost.total()
}
