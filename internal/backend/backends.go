package backend

import (
	"time"

	"switchmon/internal/core"
	"switchmon/internal/property"
	"switchmon/internal/sim"
	"switchmon/internal/varanus"
)

// --- OpenFlow 1.3: controller-only state -----------------------------------

// OpenFlow13 models monitoring with stock OpenFlow 1.3: the switch keeps
// no monitor state, so every candidate packet must be redirected to an
// external controller, which runs the monitor over arrivals only — it
// never sees the switch's forwarding decisions, so egress- and
// drop-dependent properties silently lose their violations, and the
// redirect volume (Sec. 1's motivation) is counted.
type OpenFlow13 struct {
	*chassis
	redirectedPackets uint64
	redirectedBytes   uint64
}

// NewOpenFlow13 builds the controller-only backend.
func NewOpenFlow13(sched *sim.Scheduler) *OpenFlow13 {
	caps := Capabilities{
		Name:           "OpenFlow 1.3",
		StateMechanism: "Controller only",
		UpdateDatapath: "—",
		ProcessingMode: "Inline",
		FieldAccess:    "Fixed",
		// The paper leaves the stateful rows blank for OF1.3: the switch
		// itself has no general state; the controller can do anything but
		// is not the switch.
		EventHistory:   Blank,
		RelatedEvents:  Blank, // "(1.5 only)" for egress matching
		NegativeMatch:  Yes,
		RuleTimeouts:   Yes,
		TimeoutActions: No,
		SymmetricMatch: Blank,
		WanderingMatch: Blank,
		OutOfBand:      Blank,
		FullProvenance: Blank,
		DropVisibility: No,
		// Egress tables exist only from OF 1.5 and never see drops.
		EgressVisibility: No,
		// OpenFlow counters exist but are read by the controller, not
		// matchable in the pipeline.
		Counting: Blank,
	}
	b := &OpenFlow13{chassis: newChassis(sched, caps, false, core.ProvLimited, nil)}
	b.seeDrops = false
	b.seeEgress = false
	b.seeOOB = true // the controller does receive port-status messages
	return b
}

// AddProperty accepts any valid property: the *controller* is a general
// computer. The architectural price is paid at runtime — redirection
// volume and blindness to forwarding decisions — not at compile time.
func (b *OpenFlow13) AddProperty(p *property.Property) error {
	return b.mon.AddProperty(p)
}

// HandleEvent counts redirected traffic before filtering.
func (b *OpenFlow13) HandleEvent(e core.Event) {
	if e.Kind == core.KindArrival && e.Packet != nil {
		b.redirectedPackets++
		if data, err := e.Packet.Encode(); err == nil {
			b.redirectedBytes += uint64(len(data))
		}
	}
	b.chassis.HandleEvent(e)
}

// RedirectedBytes reports the bytes shipped to the external monitor —
// the E7 quantity.
func (b *OpenFlow13) RedirectedBytes() uint64 { return b.redirectedBytes }

// RedirectedPackets reports the packets shipped to the external monitor.
func (b *OpenFlow13) RedirectedPackets() uint64 { return b.redirectedPackets }

// AccessibleMonitor exposes the controller-side monitor so tests can
// inspect what the external monitor concluded.
func (b *OpenFlow13) AccessibleMonitor() *core.Monitor { return b.mon }

// --- OpenFlow 1.5: egress tables, still no drops ------------------------------

// OpenFlow15 refines the OpenFlow column with 1.5's egress tables — the
// paper's "(1.5 only)" footnote on identification of related events.
// Egress metadata (output port) becomes matchable, but "dropped packets
// never enter the egress pipeline" (Sec. 3.2), so drop-dependent
// properties remain invisible, and state is still controller-only.
type OpenFlow15 struct {
	*chassis
}

// NewOpenFlow15 builds the OF1.5 variant.
func NewOpenFlow15(sched *sim.Scheduler) *OpenFlow15 {
	caps := Capabilities{
		Name:             "OpenFlow 1.5",
		StateMechanism:   "Controller only",
		UpdateDatapath:   "—",
		ProcessingMode:   "Inline",
		FieldAccess:      "Fixed",
		EventHistory:     Blank,
		RelatedEvents:    Yes, // the "(1.5 only)" cell
		NegativeMatch:    Yes,
		RuleTimeouts:     Yes,
		TimeoutActions:   No,
		SymmetricMatch:   Blank,
		WanderingMatch:   Blank,
		OutOfBand:        Blank,
		FullProvenance:   Blank,
		DropVisibility:   No, // drops never enter the egress pipeline
		EgressVisibility: Yes,
		Counting:         Blank,
	}
	b := &OpenFlow15{chassis: newChassis(sched, caps, false, core.ProvLimited, nil)}
	b.seeDrops = false
	b.seeEgress = true
	b.seeOOB = true
	return b
}

// AddProperty, like OpenFlow 1.3's, accepts anything the controller can
// host; architectural limits bite at runtime through the drop filter.
func (b *OpenFlow15) AddProperty(p *property.Property) error {
	return b.mon.AddProperty(p)
}

// --- OpenState: Mealy machines ----------------------------------------------

// OpenState models the per-flow state-machine tables of OpenState:
// fast-path state on fixed key fields with optional key inversion
// (symmetric match), no egress/drop visibility, no timeout actions, no
// out-of-band events, no wandering match.
type OpenState struct{ *chassis }

// NewOpenState builds the OpenState backend.
func NewOpenState(sched *sim.Scheduler) *OpenState {
	caps := Capabilities{
		Name:             "OpenState",
		StateMechanism:   "State machine",
		UpdateDatapath:   "Fast path",
		ProcessingMode:   "Inline",
		FieldAccess:      "Fixed",
		EventHistory:     Yes,
		RelatedEvents:    Blank,
		NegativeMatch:    Yes,
		RuleTimeouts:     Yes,
		TimeoutActions:   No,
		SymmetricMatch:   Yes,
		WanderingMatch:   No,
		OutOfBand:        No,
		FullProvenance:   No,
		DropVisibility:   No,
		EgressVisibility: No,
		Counting:         Yes,
	}
	b := &OpenState{chassis: newChassis(sched, caps, false, core.ProvNone, &registerState{})}
	b.seeDrops = false
	b.seeEgress = false
	b.seeOOB = false
	return b
}

// --- FAST: learn-action state machines ---------------------------------------

// FAST models FAST's learn-action encoding of state machines: slow-path
// state updates (flow-table modifications) with hash support, no rule
// timeouts, no egress/drop visibility.
type FAST struct{ *chassis }

// NewFAST builds the FAST backend.
func NewFAST(sched *sim.Scheduler) *FAST {
	caps := Capabilities{
		Name:             "FAST",
		StateMechanism:   "Learn action",
		UpdateDatapath:   "Slow path",
		ProcessingMode:   "Inline",
		FieldAccess:      "Fixed",
		EventHistory:     Yes,
		RelatedEvents:    Blank,
		NegativeMatch:    Yes,
		RuleTimeouts:     No,
		TimeoutActions:   No,
		SymmetricMatch:   Yes,
		WanderingMatch:   No,
		OutOfBand:        No,
		FullProvenance:   No,
		DropVisibility:   No,
		EgressVisibility: No,
		Counting:         Yes,
	}
	b := &FAST{chassis: newChassis(sched, caps, false, core.ProvNone, &ruleState{})}
	b.seeDrops = false
	b.seeEgress = false
	b.seeOOB = false
	return b
}

// --- POF / P4: flow registers -------------------------------------------------

// P4 models the register-based designs (covering POF as the paper's
// table does): fast-path register state, dynamic field access, an egress
// pipeline (P4 is "unique in considering this requirement"), but no
// timeout actions, no out-of-band events, and target-dependent wandering
// match (blank in the paper, rejected here).
type P4 struct{ *chassis }

// NewP4 builds the POF/P4 backend.
func NewP4(sched *sim.Scheduler) *P4 {
	caps := Capabilities{
		Name:             "POF and P4",
		StateMechanism:   "Flow registers",
		UpdateDatapath:   "Fast path",
		ProcessingMode:   "",
		FieldAccess:      "Dynamic",
		EventHistory:     Yes,
		RelatedEvents:    Yes,
		NegativeMatch:    Yes,
		RuleTimeouts:     Yes,
		TimeoutActions:   No,
		SymmetricMatch:   Yes,
		WanderingMatch:   Blank,
		OutOfBand:        No,
		FullProvenance:   No,
		DropVisibility:   Yes,
		EgressVisibility: Yes,
		Counting:         Yes,
	}
	return &P4{chassis: newChassis(sched, caps, false, core.ProvNone, &registerState{})}
}

// --- SNAP: global arrays --------------------------------------------------------

// SNAP models SNAP's one-big-switch global arrays: fast-path array
// state with rich matching but no rule timeouts, no timeout actions, no
// out-of-band events; its compiler hides individual switch behaviour, so
// egress metadata of a particular switch is out of reach.
type SNAP struct{ *chassis }

// NewSNAP builds the SNAP backend.
func NewSNAP(sched *sim.Scheduler) *SNAP {
	caps := Capabilities{
		Name:             "SNAP",
		StateMechanism:   "Global arrays",
		UpdateDatapath:   "Fast path",
		ProcessingMode:   "",
		FieldAccess:      "Dynamic",
		EventHistory:     Yes,
		RelatedEvents:    Yes,
		NegativeMatch:    Yes,
		RuleTimeouts:     No,
		TimeoutActions:   No,
		SymmetricMatch:   Yes,
		WanderingMatch:   Blank,
		OutOfBand:        No,
		FullProvenance:   No,
		DropVisibility:   No,
		EgressVisibility: No,
		Counting:         Yes,
	}
	b := &SNAP{chassis: newChassis(sched, caps, false, core.ProvNone, &registerState{})}
	b.seeDrops = false
	b.seeEgress = false
	b.seeOOB = false
	return b
}

// --- Varanus: recursive learn, one table per instance ---------------------------

// Varanus runs the paper authors' actual mechanism, reimplemented in
// internal/varanus: each active monitor instance is its own table of
// fully concrete rules, unrolled by a recursive learn step as events
// arrive. The pipeline depth equals the live instance count and every
// unroll writes rules (slow path) — the cost structure of Sec. 3.3 — in
// exchange for the richest feature set of Table 2: timeout actions,
// wandering match, out-of-band multiple match.
type Varanus struct {
	caps  Capabilities
	m     *varanus.Monitor
	nViol uint64
}

// NewVaranus builds the Varanus backend on the unrolled-table mechanism.
func NewVaranus(sched *sim.Scheduler) *Varanus {
	caps := Capabilities{
		Name:             "Varanus",
		StateMechanism:   "Recursive learn",
		UpdateDatapath:   "Slow path",
		ProcessingMode:   "Split",
		FieldAccess:      "Fixed",
		EventHistory:     Yes,
		RelatedEvents:    Yes,
		NegativeMatch:    Yes,
		RuleTimeouts:     Yes,
		TimeoutActions:   Yes,
		SymmetricMatch:   Yes,
		WanderingMatch:   Yes,
		OutOfBand:        Yes,
		FullProvenance:   No,
		DropVisibility:   Yes,
		EgressVisibility: Yes,
		Counting:         No,
	}
	b := &Varanus{caps: caps, m: varanus.NewMonitor(sched)}
	b.m.OnViolation = func(string, time.Time, string) { b.nViol++ }
	return b
}

// Name implements Backend.
func (b *Varanus) Name() string { return b.caps.Name }

// Capabilities implements Backend.
func (b *Varanus) Capabilities() Capabilities { return b.caps }

// AddProperty enforces the capability vector, then compiles onto the
// unrolled-table mechanism (which additionally rejects this repository's
// extensions — counting, sticky guards — consistent with the vector).
func (b *Varanus) AddProperty(p *property.Property) error {
	if err := checkSupport(b.caps, p); err != nil {
		return err
	}
	return b.m.AddProperty(p)
}

// HandleEvent implements Backend (Varanus sees everything: drops, egress
// metadata, out-of-band events).
func (b *Varanus) HandleEvent(e core.Event) { b.m.HandleEvent(e) }

// Violations implements Backend.
func (b *Varanus) Violations() uint64 { return b.nViol }

// PipelineDepth implements Backend: the live instance-table count.
func (b *Varanus) PipelineDepth() int { return b.m.PipelineDepth() }

// StateUpdateCost implements Backend: concrete rules written by unrolls.
func (b *Varanus) StateUpdateCost() uint64 { return b.m.RuleInstalls }

// --- Static Varanus: bounded one-table-per-stage ---------------------------------

// StaticVaranus models the paper's Sec 3.3 mitigation: the pipeline is
// bounded to one table per observation stage (constant depth — modeled by
// allowing the monitor its stage indexes), preserving wandering match but
// sacrificing out-of-band multiple match; state updates remain slow-path
// flow-table modifications.
type StaticVaranus struct{ *chassis }

// NewStaticVaranus builds the bounded-pipeline Varanus variant.
func NewStaticVaranus(sched *sim.Scheduler) *StaticVaranus {
	caps := Capabilities{
		Name:             "Static Varanus",
		StateMechanism:   "Recursive learn",
		UpdateDatapath:   "Slow path",
		ProcessingMode:   "Split",
		FieldAccess:      "Fixed",
		EventHistory:     Yes,
		RelatedEvents:    Yes,
		NegativeMatch:    Yes,
		RuleTimeouts:     Yes,
		TimeoutActions:   Yes,
		SymmetricMatch:   Yes,
		WanderingMatch:   Yes,
		OutOfBand:        No,
		FullProvenance:   No,
		DropVisibility:   Yes,
		EgressVisibility: Yes,
		Counting:         No,
	}
	return &StaticVaranus{chassis: newChassis(sched, caps, false, core.ProvLimited, &ruleState{})}
}

// --- Ideal: the switch the paper argues for --------------------------------------

// Ideal is the engine of internal/core exposed as a backend: register-
// speed indexed state, full visibility including drops, timeout actions,
// wandering and multiple match, and configurable provenance — the feature
// set Sec. 2 derives.
type Ideal struct{ *chassis }

// NewIdeal builds the ideal-switch backend.
func NewIdeal(sched *sim.Scheduler) *Ideal {
	caps := Capabilities{
		Name:             "Ideal (this paper)",
		StateMechanism:   "Indexed instances",
		UpdateDatapath:   "Fast path",
		ProcessingMode:   "Inline",
		FieldAccess:      "Dynamic",
		EventHistory:     Yes,
		RelatedEvents:    Yes,
		NegativeMatch:    Yes,
		RuleTimeouts:     Yes,
		TimeoutActions:   Yes,
		SymmetricMatch:   Yes,
		WanderingMatch:   Yes,
		OutOfBand:        Yes,
		FullProvenance:   Yes,
		DropVisibility:   Yes,
		EgressVisibility: Yes,
		Counting:         Yes,
		StickyGuards:     Yes,
	}
	return &Ideal{chassis: newChassis(sched, caps, false, core.ProvFull, &registerState{})}
}
