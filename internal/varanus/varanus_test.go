package varanus

import (
	"fmt"
	"testing"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

var (
	macA = packet.MustMAC("02:00:00:00:00:0a")
	macB = packet.MustMAC("02:00:00:00:00:0b")
	ipA  = packet.MustIPv4("10.0.0.1")
	ipB  = packet.MustIPv4("203.0.113.9")
	ipC  = packet.MustIPv4("10.0.0.2")
)

func catalogProp(t *testing.T, name string) *property.Property {
	t.Helper()
	p := property.CatalogByName(property.DefaultParams(), name)
	if p == nil {
		t.Fatalf("no property %s", name)
	}
	return p
}

func TestRejectsExtensionsBeyondMechanism(t *testing.T) {
	m := NewMonitor(sim.NewScheduler())
	if err := m.AddProperty(catalogProp(t, "portscan-detect")); err == nil {
		t.Fatal("counting property accepted")
	}
	if err := m.AddProperty(catalogProp(t, "dhcparp-no-direct-reply")); err == nil {
		t.Fatal("sticky-guard property accepted")
	}
	if err := m.AddProperty(catalogProp(t, "firewall-until-close")); err != nil {
		t.Fatalf("plain property rejected: %v", err)
	}
}

func TestUnrolledFirewallViolation(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMonitor(sched)
	if err := m.AddProperty(catalogProp(t, "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	ab := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
	ba := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil)
	m.HandleEvent(core.Event{Kind: core.KindArrival, Time: sched.Now(), PacketID: 1, Packet: ab, InPort: 1})
	if m.PipelineDepth() != 1 {
		t.Fatalf("depth = %d, want 1 unrolled table", m.PipelineDepth())
	}
	m.HandleEvent(core.Event{Kind: core.KindEgress, Time: sched.Now(), PacketID: 2, Packet: ba, InPort: 2, Dropped: true})
	if m.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", m.Violations())
	}
	if m.PipelineDepth() != 0 {
		t.Fatal("violation did not consume the instance table")
	}
	if m.RuleInstalls == 0 {
		t.Fatal("no rule installs recorded")
	}
}

func TestUnrolledNegativeObservation(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMonitor(sched)
	if err := m.AddProperty(catalogProp(t, "arp-proxy-reply")); err != nil {
		t.Fatal(err)
	}
	m.HandleEvent(core.Event{Kind: core.KindArrival, Time: sched.Now(), PacketID: 1,
		Packet: packet.NewARPReply(macA, ipA, macB, ipB), InPort: 3})
	m.HandleEvent(core.Event{Kind: core.KindArrival, Time: sched.Now(), PacketID: 2,
		Packet: packet.NewARPRequest(macB, ipB, ipA), InPort: 4})
	sched.RunFor(3 * time.Second)
	if m.Violations() != 1 {
		t.Fatalf("violations = %d, want 1 (timeout action)", m.Violations())
	}
}

// differentialProps are the catalogue properties within the mechanism's
// power.
func differentialProps(t *testing.T) []*property.Property {
	t.Helper()
	var props []*property.Property
	for _, e := range property.Catalog(property.DefaultParams()) {
		ok := true
		for _, s := range e.Prop.Stages {
			if s.MinCount > 1 {
				ok = false
			}
			for _, g := range s.Until {
				if g.Sticky {
					ok = false
				}
			}
		}
		if ok {
			props = append(props, e.Prop)
		}
	}
	if len(props) < 15 {
		t.Fatalf("only %d differential properties", len(props))
	}
	return props
}

// TestUnrolledMatchesCoreEngine drives random event streams through the
// unrolled-table mechanism and internal/core, requiring identical
// violation multisets — the correctness argument that the mechanism study
// and the reference engine implement the same semantics.
func TestUnrolledMatchesCoreEngine(t *testing.T) {
	props := differentialProps(t)
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sched := sim.NewScheduler()

			var unrolled, reference []string
			vm := NewMonitor(sched)
			vm.OnViolation = func(prop string, at time.Time, trigger string) {
				unrolled = append(unrolled, fmt.Sprintf("%s@%d", prop, at.UnixNano()))
			}
			cm := core.NewMonitor(sched, core.Config{OnViolation: func(v *core.Violation) {
				reference = append(reference, fmt.Sprintf("%s@%d", v.Property, v.Time.UnixNano()))
			}})
			for _, p := range props {
				if err := vm.AddProperty(p); err != nil {
					t.Fatal(err)
				}
				if err := cm.AddProperty(p); err != nil {
					t.Fatal(err)
				}
			}

			rng := sim.NewRand(seed)
			macs := []packet.MAC{macA, macB, packet.MustMAC("02:00:00:00:00:0c")}
			ips := []packet.IPv4{ipA, ipB, ipC}
			ports := []uint16{80, 7001, 7002, 7003, 22, 40000, 67, 68}
			var pid core.PacketID
			feed := func(e core.Event) { vm.HandleEvent(e); cm.HandleEvent(e) }

			for i := 0; i < 300; i++ {
				sched.RunFor(time.Duration(rng.Intn(400)) * time.Millisecond)
				var p *packet.Packet
				switch rng.Intn(4) {
				case 0:
					p = packet.NewTCP(sim.Choice(rng, macs), sim.Choice(rng, macs),
						sim.Choice(rng, ips), sim.Choice(rng, ips),
						sim.Choice(rng, ports), sim.Choice(rng, ports),
						packet.TCPFlags(rng.Intn(64)), nil)
				case 1:
					p = packet.NewUDP(sim.Choice(rng, macs), sim.Choice(rng, macs),
						sim.Choice(rng, ips), sim.Choice(rng, ips),
						sim.Choice(rng, ports), sim.Choice(rng, ports), nil)
				case 2:
					if rng.Intn(2) == 0 {
						p = packet.NewARPRequest(sim.Choice(rng, macs), sim.Choice(rng, ips), sim.Choice(rng, ips))
					} else {
						p = packet.NewARPReply(sim.Choice(rng, macs), sim.Choice(rng, ips),
							sim.Choice(rng, macs), sim.Choice(rng, ips))
					}
				case 3:
					feed(core.Event{Kind: core.KindOutOfBand, Time: sched.Now(),
						OOBKind: packet.OOBLinkDown, OOBPort: uint64(rng.Intn(4) + 1)})
					continue
				}
				pid++
				inPort := uint64(rng.Intn(4) + 1)
				now := sched.Now()
				feed(core.Event{Kind: core.KindArrival, Time: now, PacketID: pid, Packet: p, InPort: inPort})
				if rng.Intn(4) == 0 {
					feed(core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: p,
						InPort: inPort, Dropped: true})
				} else {
					feed(core.Event{Kind: core.KindEgress, Time: now, PacketID: pid, Packet: p,
						InPort: inPort, OutPort: uint64(rng.Intn(4) + 1),
						Multicast: rng.Intn(5) == 0})
				}
			}
			sched.RunFor(5 * time.Minute)

			count := map[string]int{}
			for _, s := range unrolled {
				count[s]++
			}
			for _, s := range reference {
				count[s]--
			}
			for s, n := range count {
				if n != 0 {
					t.Errorf("violation multiset differs at %s (%+d)", s, n)
				}
			}
			if t.Failed() {
				t.Logf("unrolled=%d reference=%d", len(unrolled), len(reference))
			}
			if vm.PipelineDepth() != cm.ActiveInstances() {
				t.Errorf("live instances differ: unrolled=%d core=%d",
					vm.PipelineDepth(), cm.ActiveInstances())
			}
		})
	}
}

func TestUnrolledWindowRefresh(t *testing.T) {
	// Positive windows refresh on dedup, negative deadlines do not —
	// mirroring core exactly.
	sched := sim.NewScheduler()
	m := NewMonitor(sched)
	if err := m.AddProperty(catalogProp(t, "firewall-timeout")); err != nil {
		t.Fatal(err)
	}
	ab := packet.NewTCP(macA, macB, ipA, ipB, 1000, 80, packet.FlagSYN, nil)
	ba := packet.NewTCP(macB, macA, ipB, ipA, 80, 1000, packet.FlagACK, nil)
	send := func(p *packet.Packet, in uint64) {
		m.HandleEvent(core.Event{Kind: core.KindArrival, Time: sched.Now(), PacketID: 0, Packet: p, InPort: in})
	}
	send(ab, 1)
	sched.RunFor(50 * time.Second)
	send(ab, 1) // refresh at t=50
	sched.RunFor(50 * time.Second)
	// t=100: original deadline (60s) long past; refreshed deadline at 110.
	m.HandleEvent(core.Event{Kind: core.KindEgress, Time: sched.Now(), PacketID: 9, Packet: ba, InPort: 2, Dropped: true})
	if m.Violations() != 1 {
		t.Fatalf("violations = %d, want 1 (window was refreshed)", m.Violations())
	}
}

func TestUnrolledPipelineDepthGrows(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMonitor(sched)
	if err := m.AddProperty(catalogProp(t, "firewall-basic")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		src := packet.IPv4FromUint32(0x0a000000 + uint32(i))
		p := packet.NewTCP(macA, macB, src, ipB, uint16(1000+i), 80, packet.FlagSYN, nil)
		m.HandleEvent(core.Event{Kind: core.KindArrival, Time: sched.Now(),
			PacketID: core.PacketID(i + 1), Packet: p, InPort: 1})
	}
	if m.PipelineDepth() != 50 {
		t.Fatalf("depth = %d, want 50", m.PipelineDepth())
	}
}
