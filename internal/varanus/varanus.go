// Package varanus implements the paper's Varanus mechanism faithfully:
// "Varanus's approach encodes each active monitor instance as its own
// OpenFlow table and uses an extended, recursive form of the Open vSwitch
// learn action to 'unroll' instances into new tables as events arrive"
// (Sec. 3.1).
//
// Where internal/core keeps instances as bindings plus a pending-stage
// pointer and resolves variables at match time, this engine does what the
// prototype did: when an instance advances, the *next* stage's pattern is
// compiled into a fresh table of fully concrete rules — every variable
// reference substituted with its bound value, the packet-identity
// constraint substituted with the concrete PacketID, the window rendered
// as a rule timeout (or a timeout-action rule for negative observations).
// Matching an event means walking every instance table: the pipeline
// depth is the live instance count, the cost structure Sec. 3.3 calls
// out.
//
// The engine intentionally reproduces internal/core's observable
// semantics (the differential test in this package enforces it); sticky
// guards and counting stages — this repository's extensions — are outside
// the mechanism's power and are rejected at compile time, matching the
// boolean-only scope the paper gives Varanus.
package varanus

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
	"switchmon/internal/property"
	"switchmon/internal/sim"
)

// ErrBeyondMechanism marks properties outside the unrolled-table
// mechanism's power (counting stages, sticky guards).
var ErrBeyondMechanism = errors.New("varanus: property requires features beyond the recursive-learn mechanism")

// ruleKind says what a matched rule does to its instance table.
type ruleKind uint8

const (
	// ruleAdvance unrolls the instance into its next stage.
	ruleAdvance ruleKind = iota
	// ruleDischarge deletes the instance (negative observation satisfied,
	// or obligation guard fired).
	ruleDischarge
)

// concretePred is a predicate with every variable already substituted —
// what an unrolled OpenFlow rule can actually match.
type concretePred struct {
	field packet.Field
	op    property.CmpOp
	// lit is the concrete right-hand side; hash is the one operand kind
	// that stays dynamic (computed over the current event's own fields).
	lit  packet.Value
	hash *property.HashSpec
}

func (cp concretePred) holds(e *core.Event) bool {
	fv, ok := e.Field(cp.field)
	if !ok {
		return false
	}
	arg := cp.lit
	if cp.hash != nil {
		vals := make([]packet.Value, 0, len(cp.hash.Fields))
		for _, f := range cp.hash.Fields {
			v, ok := e.Field(f)
			if !ok {
				return false
			}
			vals = append(vals, v)
		}
		arg = packet.Num(cp.hash.Base + packet.HashValues(vals)%cp.hash.Mod)
	}
	return cp.op.Compare(fv, arg)
}

// rule is one entry of an instance table.
type rule struct {
	kind       ruleKind
	class      property.EventClass
	samePacket core.PacketID // 0 = unconstrained
	preds      []concretePred
	// bindFields are the fields to capture on match (advance rules).
	bindFields []property.Binding
}

// matches reports whether the event hits the rule. Bind fields must be
// present, mirroring core's stagePatternMatches.
func (r *rule) matches(e *core.Event) bool {
	if !classMatches(r.class, e) {
		return false
	}
	if r.samePacket != 0 && e.PacketID != r.samePacket {
		return false
	}
	for _, cp := range r.preds {
		if !cp.holds(e) {
			return false
		}
	}
	for _, b := range r.bindFields {
		if _, ok := e.Field(b.Field); !ok {
			return false
		}
	}
	return true
}

func classMatches(c property.EventClass, e *core.Event) bool {
	switch c {
	case property.AnyPacket:
		return e.Kind == core.KindArrival || e.Kind == core.KindEgress
	case property.Arrival:
		return e.Kind == core.KindArrival
	case property.Egress:
		return e.Kind == core.KindEgress
	case property.OutOfBand:
		return e.Kind == core.KindOutOfBand
	default:
		return false
	}
}

// instTable is one unrolled instance: a concrete rule table plus the
// state needed to unroll the next stage.
type instTable struct {
	id      uint64
	prop    *compiledProp
	stage   int
	binds   map[property.Var]packet.Value
	packets []core.PacketID
	rules   []rule
	// negative marks the pending stage as a negative observation: the
	// deadline advances instead of expiring.
	negative bool
	timer    *sim.Timer
	lastSeq  uint64
	sig      string
}

// compiledProp wraps the validated property.
type compiledProp struct {
	prop *property.Property
}

// Monitor is the unrolled-table engine.
type Monitor struct {
	sched  *sim.Scheduler
	props  []*compiledProp
	tables []*instTable
	bySig  map[string]*instTable
	nextID uint64
	seq    uint64

	// OnViolation receives reports (property name + trigger summary).
	OnViolation func(prop string, at time.Time, trigger string)

	// RuleInstalls counts concrete rules written into instance tables —
	// the slow-path state-update volume of Sec. 3.3.
	RuleInstalls uint64
	violations   uint64
}

// NewMonitor creates an unrolled-table monitor on the scheduler.
func NewMonitor(sched *sim.Scheduler) *Monitor {
	return &Monitor{sched: sched, bySig: map[string]*instTable{}}
}

// AddProperty compiles a property. Counting stages and sticky guards are
// beyond the mechanism.
func (m *Monitor) AddProperty(p *property.Property) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for _, s := range p.Stages {
		if s.MinCount > 1 {
			return fmt.Errorf("%w: counting stage %q", ErrBeyondMechanism, s.Label)
		}
		for _, g := range s.Until {
			if g.Sticky {
				return fmt.Errorf("%w: sticky guard at stage %q", ErrBeyondMechanism, s.Label)
			}
		}
	}
	m.props = append(m.props, &compiledProp{prop: p})
	return nil
}

// Violations reports the number of completed patterns.
func (m *Monitor) Violations() uint64 { return m.violations }

// PipelineDepth reports the number of live instance tables — the
// quantity that bounds packet processing time in the Varanus design.
func (m *Monitor) PipelineDepth() int { return len(m.tables) }

// HandleEvent walks every instance table (the Varanus pipeline), then
// considers starting new instances at stage zero.
func (m *Monitor) HandleEvent(e core.Event) {
	m.seq++
	seq := m.seq
	// Walk a snapshot: advancing/discharging mutates m.tables.
	snapshot := append([]*instTable(nil), m.tables...)
	for _, tbl := range snapshot {
		if tbl.lastSeq == seq || !m.live(tbl) {
			continue
		}
		// First matching rule wins (priority order: advance rules are
		// compiled ahead of guard rules, mirroring core's stage-first
		// precedence).
		for ri := range tbl.rules {
			r := &tbl.rules[ri]
			if !r.matches(&e) {
				continue
			}
			tbl.lastSeq = seq
			switch r.kind {
			case ruleAdvance:
				if tbl.negative {
					// A matching event discharges a pending negative
					// observation.
					m.drop(tbl)
				} else {
					m.advance(tbl, r, &e)
				}
			case ruleDischarge:
				m.drop(tbl)
			}
			break
		}
	}
	// Stage-zero creation.
	for _, cp := range m.props {
		st := &cp.prop.Stages[0]
		r := compileStage(st, nil, nil)
		if r.matches(&e) {
			m.nextID++
			tbl := &instTable{
				id:      m.nextID,
				prop:    cp,
				stage:   0,
				binds:   map[property.Var]packet.Value{},
				packets: make([]core.PacketID, len(cp.prop.Stages)),
				lastSeq: seq,
			}
			m.advance(tbl, &r, &e)
		}
	}
}

// live reports whether the table is still installed.
func (m *Monitor) live(tbl *instTable) bool {
	return tbl.sig != "" && m.bySig[tbl.sig] == tbl
}

// advance applies bindings and unrolls the next stage's table.
func (m *Monitor) advance(tbl *instTable, r *rule, e *core.Event) {
	m.unfile(tbl)
	for _, b := range r.bindFields {
		v, ok := e.Field(b.Field)
		if !ok {
			panic("varanus: bind field vanished after match")
		}
		tbl.binds[b.Var] = v
	}
	tbl.packets[tbl.stage] = e.PacketID
	tbl.stage++
	if tbl.stage == len(tbl.prop.prop.Stages) {
		m.violations++
		if m.OnViolation != nil {
			m.OnViolation(tbl.prop.prop.Name, e.Time, e.Summary())
		}
		return
	}
	m.unroll(tbl)
}

// advanceByTimeout is the timeout-action path: the negative observation's
// deadline fired.
func (m *Monitor) advanceByTimeout(tbl *instTable) {
	m.unfile(tbl)
	tbl.stage++
	if tbl.stage == len(tbl.prop.prop.Stages) {
		m.violations++
		if m.OnViolation != nil {
			m.OnViolation(tbl.prop.prop.Name, m.sched.Now(),
				"timeout: negative observation fired")
		}
		return
	}
	m.unroll(tbl)
}

// unroll compiles the pending stage into the instance's concrete rule
// table, handling dedup/refresh and deadlines — the recursive-learn step.
func (m *Monitor) unroll(tbl *instTable) {
	st := &tbl.prop.prop.Stages[tbl.stage]
	sig := signature(tbl)
	if exist, ok := m.bySig[sig]; ok {
		// Identical instance already unrolled: refresh its window for
		// positive stages; negative deadlines are never refreshed.
		if !st.Negative {
			if d, ok := windowOf(st, exist.binds); ok {
				if exist.timer != nil {
					exist.timer.Stop()
				}
				ex := exist
				exist.timer = m.sched.After(d, func() { m.expire(ex) })
			}
		}
		return
	}
	tbl.sig = sig
	tbl.negative = st.Negative

	// Advance rule(s): the stage pattern with variables substituted. One
	// rule per AnyOf alternative; a single rule when there is none.
	tbl.rules = tbl.rules[:0]
	base := compileStage(st, tbl.binds, tbl.packets)
	if len(st.AnyOf) == 0 {
		tbl.rules = append(tbl.rules, base)
	} else {
		for _, g := range st.AnyOf {
			alt := base
			alt.preds = append(append([]concretePred(nil), base.preds...), compilePreds(g, tbl.binds)...)
			tbl.rules = append(tbl.rules, alt)
		}
	}
	// Guard rules after the advance rules (stage match wins on ties).
	for _, g := range st.Until {
		tbl.rules = append(tbl.rules, rule{
			kind:  ruleDischarge,
			class: g.Class,
			preds: compilePreds(g.Preds, tbl.binds),
		})
	}
	m.RuleInstalls += uint64(len(tbl.rules))

	m.tables = append(m.tables, tbl)
	m.bySig[sig] = tbl

	if d, ok := windowOf(st, tbl.binds); ok {
		in := tbl
		if st.Negative {
			tbl.timer = m.sched.After(d, func() { m.advanceByTimeout(in) })
		} else {
			tbl.timer = m.sched.After(d, func() { m.expire(in) })
		}
	}
}

// drop removes an instance table entirely.
func (m *Monitor) drop(tbl *instTable) { m.unfile(tbl) }

// expire removes an instance whose positive window lapsed.
func (m *Monitor) expire(tbl *instTable) { m.unfile(tbl) }

// unfile detaches the table from the pipeline.
func (m *Monitor) unfile(tbl *instTable) {
	if tbl.timer != nil {
		tbl.timer.Stop()
		tbl.timer = nil
	}
	if tbl.sig != "" {
		if m.bySig[tbl.sig] == tbl {
			delete(m.bySig, tbl.sig)
		}
		tbl.sig = ""
		for i, t := range m.tables {
			if t == tbl {
				m.tables = append(m.tables[:i], m.tables[i+1:]...)
				break
			}
		}
	}
}

// compileStage renders a stage's top-level pattern as one concrete rule.
func compileStage(st *property.Stage, binds map[property.Var]packet.Value, packets []core.PacketID) rule {
	r := rule{
		kind:       ruleAdvance,
		class:      st.Class,
		preds:      compilePreds(st.Preds, binds),
		bindFields: st.Binds,
	}
	if st.SamePacketAs >= 0 && packets != nil {
		r.samePacket = packets[st.SamePacketAs]
	}
	return r
}

// compilePreds substitutes bound variables into predicates.
func compilePreds(preds []property.Pred, binds map[property.Var]packet.Value) []concretePred {
	out := make([]concretePred, 0, len(preds))
	for _, pr := range preds {
		cp := concretePred{field: pr.Field, op: pr.Op}
		switch pr.Arg.Kind {
		case property.OperandVar:
			cp.lit = binds[pr.Arg.Var]
		case property.OperandHash:
			cp.hash = pr.Arg.Hash
		default:
			cp.lit = pr.Arg.Lit
		}
		out = append(out, cp)
	}
	return out
}

// windowOf resolves the stage window, static or variable-valued.
func windowOf(st *property.Stage, binds map[property.Var]packet.Value) (time.Duration, bool) {
	if st.Window > 0 {
		return st.Window, true
	}
	if st.WindowVar != "" {
		v, ok := binds[st.WindowVar]
		if !ok || v.IsStr() {
			return 0, false
		}
		return time.Duration(v.Uint64()) * time.Second, true
	}
	return 0, false
}

// signature mirrors internal/core's instance identity: property, stage,
// sorted bindings, and the PacketIDs of identity-relevant stages.
func signature(tbl *instTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d;", tbl.prop.prop.Name, tbl.stage)
	vars := make([]string, 0, len(tbl.binds))
	for v := range tbl.binds {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	for _, v := range vars {
		val := tbl.binds[property.Var(v)]
		if val.IsStr() {
			fmt.Fprintf(&b, "%s=s%s;", v, val.Text())
		} else {
			fmt.Fprintf(&b, "%s=n%x;", v, val.Uint64())
		}
	}
	identity := map[int]bool{}
	for _, s := range tbl.prop.prop.Stages {
		if s.SamePacketAs >= 0 {
			identity[s.SamePacketAs] = true
		}
	}
	for si := 0; si < tbl.stage; si++ {
		if identity[si] {
			fmt.Fprintf(&b, "#%d:%d;", si, tbl.packets[si])
		}
	}
	return b.String()
}
