// Package federation spreads the switch-side event stream across a
// fleet of collectors: a consistent-hash routing layer in front of N
// independent exporter links (one sequence space per route, so the
// collector's gap→wire-loss accounting stays exact per route), a
// membership/handoff protocol carried as feature-negotiated wire
// frames (FleetConfig/FleetConfigAck) with a replay-based drain fence,
// and an aggregation tier that merges per-collector counters, ledgers,
// state reports, and violation streams into fleet-wide endpoints.
package federation

import (
	"fmt"
	"math"
	"sort"
)

// Member is one collector endpoint in the fleet. Weight is relative
// capacity; zero means 1.0. Members compare by Addr.
type Member struct {
	Addr   string  `json:"addr"`
	Weight float64 `json:"weight,omitempty"`
}

// Ring is a weighted rendezvous (highest-random-weight) hash over the
// fleet members. Owner is a pure function of (key, member set): no
// internal randomness, no map-iteration order, no construction-order
// dependence — two processes building a Ring from the same member set
// route every key identically. Rendezvous hashing gives the minimal-
// disruption property directly: removing a member remaps only the keys
// it owned, and adding one steals only the keys it now wins.
type Ring struct {
	members []ringMember
}

type ringMember struct {
	addr   string
	seed   uint64
	weight float64
}

// NewRing builds a ring over the given members. Duplicate addresses
// and non-positive explicit weights are rejected; an empty member set
// is allowed (Owner returns "" until a FleetConfig arrives).
func NewRing(members []Member) (*Ring, error) {
	r := &Ring{members: make([]ringMember, 0, len(members))}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Addr == "" {
			return nil, fmt.Errorf("federation: ring member with empty addr")
		}
		if seen[m.Addr] {
			return nil, fmt.Errorf("federation: duplicate ring member %q", m.Addr)
		}
		seen[m.Addr] = true
		w := m.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("federation: ring member %q has invalid weight %v", m.Addr, m.Weight)
		}
		r.members = append(r.members, ringMember{addr: m.Addr, seed: fnv64a(m.Addr), weight: w})
	}
	// Sorted order is not needed for Owner (rendezvous is order-free)
	// but keeps Members() and tie-breaks deterministic.
	sort.Slice(r.members, func(i, j int) bool { return r.members[i].addr < r.members[j].addr })
	return r, nil
}

// Owner maps a partition key onto the member that owns it, or "" when
// the ring is empty.
func (r *Ring) Owner(key uint64) string {
	best := ""
	bestScore := math.Inf(-1)
	for i := range r.members {
		m := &r.members[i]
		if s := score(key, m.seed, m.weight); s > bestScore {
			bestScore = s
			best = m.addr
		}
	}
	return best
}

// Members returns the member set in deterministic (address) order.
func (r *Ring) Members() []Member {
	out := make([]Member, len(r.members))
	for i, m := range r.members {
		out[i] = Member{Addr: m.addr, Weight: m.weight}
	}
	return out
}

// Size reports the number of members.
func (r *Ring) Size() int { return len(r.members) }

// score is the weighted rendezvous score for (key, member): the
// logarithm method maps the member's hash of the key onto (0,1) and
// scales by capacity, so a weight-2 member wins ~2x the keyspace of a
// weight-1 member while staying minimally disruptive on membership
// change.
func score(key, seed uint64, weight float64) float64 {
	h := mix64(key ^ rotl(seed, 31))
	// 53 high bits → uniform float in (0,1); the +0.5 keeps it off 0.
	h01 := (float64(h>>11) + 0.5) / (1 << 53)
	return -weight / math.Log(h01)
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// fnv64a hashes a member address to its per-member seed.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
