package federation

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"switchmon/internal/collector"
	"switchmon/internal/core"
	"switchmon/internal/dsl"
	"switchmon/internal/obs"
	"switchmon/internal/obs/export"
	"switchmon/internal/property"
	"switchmon/internal/wire"
)

const testPropDSL = `
property "syn-gets-egress" {
  description "test: an arriving SYN must egress on the same switch"

  on arrival "syn" {
    match tcp.syn == 1
    bind $SW = switch.id
  }

  on egress "out" within 1s {
    match switch.id == $SW
  }
}
`

// fleetMember is one full collector-side stack as cmd/collector wires
// it: sharded engine, wire collector, and the admin mux with the fleet
// member endpoints registered.
type fleetMember struct {
	sm    *core.ShardedMonitor
	col   *collector.Collector
	admin *httptest.Server
}

func (m *fleetMember) aggMember() AggMember {
	return AggMember{Addr: m.col.Addr().String(), Admin: m.admin.URL}
}

func startFleetMember(t *testing.T) *fleetMember {
	t.Helper()
	reg := obs.NewRegistry()
	sm := core.NewShardedMonitor(2, core.Config{Metrics: reg})
	t.Cleanup(sm.Close)
	col, err := collector.New(collector.Config{Addr: "127.0.0.1:0", Metrics: reg}, sm)
	if err != nil {
		t.Fatal(err)
	}
	col.Serve()
	t.Cleanup(col.Close)

	var propMu sync.Mutex
	propObjs := map[string]*property.Property{}
	broadcast := func() {
		propMu.Lock()
		u := &wire.PropertySetUpdate{Epoch: sm.Epoch()}
		ordered := make([]*property.Property, 0, len(propObjs))
		for _, name := range sm.Properties() {
			if p := propObjs[name]; p != nil {
				ordered = append(ordered, p)
				u.Props = append(u.Props, wire.PropMeta{Name: p.Name, Tenant: p.Tenant})
			}
		}
		u.Source = dsl.FormatAll(ordered)
		propMu.Unlock()
		if err := col.BroadcastPropertySet(u); err != nil {
			t.Errorf("property-set push: %v", err)
		}
	}
	installLocal := func(src, tenant string) error {
		props, err := dsl.ParseAll(src)
		if err != nil {
			return err
		}
		if len(props) == 0 {
			return fmt.Errorf("no properties in body")
		}
		for _, p := range props {
			p.Tenant = tenant
			if err := sm.AddProperty(p); err != nil {
				return err
			}
			propMu.Lock()
			propObjs[p.Name] = p
			propMu.Unlock()
		}
		broadcast()
		return nil
	}
	removeLocal := func(name string) error {
		if err := sm.RemoveProperty(name); err != nil {
			return err
		}
		propMu.Lock()
		delete(propObjs, name)
		propMu.Unlock()
		broadcast()
		return nil
	}

	mux := export.NewMux(export.MuxConfig{
		Registry: reg,
		Health: func() (bool, any) {
			marks := sm.Ledger().Snapshot()
			return len(marks) == 0, marks
		},
		State: func() any { return sm.StateReport() },
		Properties: &export.PropertiesConfig{
			List: func() any {
				return struct {
					Epoch      uint64   `json:"epoch"`
					Properties []string `json:"properties"`
				}{sm.Epoch(), sm.Properties()}
			},
			Install: installLocal,
			Remove:  removeLocal,
		},
	})
	RegisterMemberEndpoints(mux, MemberEndpoints{
		BroadcastFleet: col.BroadcastFleetConfig,
		InstallLocal:   installLocal,
		RemoveLocal:    removeLocal,
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &fleetMember{sm: sm, col: col, admin: srv}
}

func startAgg(t *testing.T, members ...*fleetMember) (*Aggregator, *httptest.Server) {
	t.Helper()
	ms := make([]AggMember, len(members))
	for i, m := range members {
		ms[i] = m.aggMember()
	}
	a, err := NewAggregator(AggConfig{Members: ms})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(a.Mux())
	t.Cleanup(srv.Close)
	return a, srv
}

func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestAggregatorLifecyclePropagation is the fleet-wide property
// lifecycle gate: an install or remove submitted to the aggregation
// tier must reach every collector AND every exporter, with all members
// advancing through the same epoch sequence — one fleet-wide lifecycle
// order — and each epoch applied exactly once at the switch despite
// arriving on every route.
func TestAggregatorLifecyclePropagation(t *testing.T) {
	m1, m2 := startFleetMember(t), startFleetMember(t)
	_, aggSrv := startAgg(t, m1, m2)

	// A federated switch with a route to each member records every
	// property-set delivery its (deduplicated) callback sees.
	var pmu sync.Mutex
	var gotEpochs []uint64
	var gotProps [][]wire.PropMeta
	r := newTestRouter(t, []Member{{Addr: m1.col.Addr().String()}, {Addr: m2.col.Addr().String()}}, func(c *Config) {
		c.Exporter.OnPropertySet = func(u *wire.PropertySetUpdate) {
			pmu.Lock()
			gotEpochs = append(gotEpochs, u.Epoch)
			gotProps = append(gotProps, append([]wire.PropMeta(nil), u.Props...))
			pmu.Unlock()
		}
	})
	// Make both engines live first (lifecycle epochs only advance on a
	// live engine): spread some traffic over both members.
	for i := 1; i <= 100; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	waitFor(t, "both members live", func() bool {
		return m1.col.Stats().Events > 0 && m2.col.Stats().Events > 0
	})

	code, body := httpDo(t, http.MethodPost, aggSrv.URL+"/properties", testPropDSL)
	if code != http.StatusCreated {
		t.Fatalf("fleet install: %d %s", code, body)
	}
	for _, m := range []*fleetMember{m1, m2} {
		props := m.sm.Properties()
		if len(props) != 1 || props[0] != "syn-gets-egress" {
			t.Fatalf("member properties after fleet install: %v", props)
		}
		if m.sm.Epoch() != 1 {
			t.Fatalf("member epoch after install = %d, want 1", m.sm.Epoch())
		}
	}
	// Convergence is visible at the aggregation tier.
	code, body = httpDo(t, http.MethodGet, aggSrv.URL+"/properties", "")
	if code != http.StatusOK {
		t.Fatalf("fleet list: %d %s", code, body)
	}
	var list struct {
		Converged bool `json:"converged"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil || !list.Converged {
		t.Fatalf("fleet property list not converged: %s", body)
	}

	code, body = httpDo(t, http.MethodDelete, aggSrv.URL+"/properties?name=syn-gets-egress", "")
	if code != http.StatusOK {
		t.Fatalf("fleet remove: %d %s", code, body)
	}
	for _, m := range []*fleetMember{m1, m2} {
		if got := m.sm.Properties(); len(got) != 0 {
			t.Fatalf("member properties after fleet remove: %v", got)
		}
		if m.sm.Epoch() != 2 {
			t.Fatalf("member epoch after remove = %d, want 2", m.sm.Epoch())
		}
	}

	// The switch saw one delivery per epoch, in fleet order, even though
	// both members pushed each epoch down both routes.
	waitFor(t, "switch-side property-set convergence", func() bool {
		pmu.Lock()
		defer pmu.Unlock()
		return len(gotEpochs) >= 2
	})
	time.Sleep(50 * time.Millisecond) // any duplicate delivery would land here
	pmu.Lock()
	defer pmu.Unlock()
	if len(gotEpochs) != 2 || gotEpochs[0] != 1 || gotEpochs[1] != 2 {
		t.Fatalf("switch applied epochs %v, want exactly [1 2]", gotEpochs)
	}
	if len(gotProps[0]) != 1 || gotProps[0][0].Name != "syn-gets-egress" || len(gotProps[1]) != 0 {
		t.Fatalf("switch property sets: %+v", gotProps)
	}
}

// TestAggregatorFleetEndpoints covers the merged observability surface:
// summed switchmon_fleet_* metrics, fleet health, per-member state, and
// membership changes pushed through the /fleet endpoint all the way to
// a live router.
func TestAggregatorFleetEndpoints(t *testing.T) {
	m1, m2 := startFleetMember(t), startFleetMember(t)
	addr1, addr2 := m1.col.Addr().String(), m2.col.Addr().String()
	agg, aggSrv := startAgg(t, m1, m2)

	r := newTestRouter(t, []Member{{Addr: addr1}, {Addr: addr2}}, nil)
	const n = 100
	for i := 1; i <= n; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	waitFor(t, "fleet ingested the events", func() bool {
		var total uint64
		for _, m := range []*fleetMember{m1, m2} {
			total += m.col.Stats().Events
		}
		return total == n
	})

	code, body := httpDo(t, http.MethodGet, aggSrv.URL+"/healthz", "")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("fleet healthz: %d %q", code, body)
	}

	code, body = httpDo(t, http.MethodGet, aggSrv.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("fleet metrics: %d", code)
	}
	// Both members contribute a dpid="7" series; the fleet view sums
	// them into one.
	wantSeries := fmt.Sprintf(`switchmon_fleet_collector_events_total{dpid="7"} %d`, n)
	if !strings.Contains(body, wantSeries) {
		t.Fatalf("fleet metrics missing summed series %q in:\n%s", wantSeries, body)
	}
	if !strings.Contains(body, "switchmon_fleet_members 2") ||
		!strings.Contains(body, "switchmon_fleet_members_reachable 2") {
		t.Fatalf("fleet metrics missing membership gauges:\n%s", body)
	}

	code, body = httpDo(t, http.MethodGet, aggSrv.URL+"/state", "")
	if code != http.StatusOK {
		t.Fatalf("fleet state: %d", code)
	}
	var stateDoc struct {
		Members []memberDoc `json:"members"`
	}
	if err := json.Unmarshal([]byte(body), &stateDoc); err != nil || len(stateDoc.Members) != 2 {
		t.Fatalf("fleet state doc: %v %s", err, body)
	}
	for _, d := range stateDoc.Members {
		if d.Error != "" || len(d.Doc) == 0 {
			t.Fatalf("fleet state member entry: %+v", d)
		}
	}

	// Membership change through the aggregation tier: drop member 2. The
	// push rides the member collectors' /fleet relays, reaches the
	// router on its live routes, and re-routes it behind the drain
	// fence.
	req, _ := json.Marshal(struct {
		Members []AggMember `json:"members"`
	}{[]AggMember{m1.aggMember()}})
	code, body = httpDo(t, http.MethodPost, aggSrv.URL+"/fleet", string(req))
	if code != http.StatusOK {
		t.Fatalf("fleet config post: %d %s", code, body)
	}
	waitFor(t, "router applied the pushed membership", func() bool {
		ms := r.Members()
		return r.Epoch() == agg.Epoch() && len(ms) == 1 && ms[0].Addr == addr1
	})
	for i := n + 1; i <= 2*n; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	waitFor(t, "post-change traffic lands on the survivor", func() bool {
		return m1.col.Stats().Events >= uint64(n) && m1.col.Stats().Events+m2.col.Stats().Events >= 2*n
	})
	if got := m2.col.Stats().Events; got > n {
		t.Fatalf("removed member kept receiving traffic: %d events", got)
	}
}

// TestApplyMembershipWeightMillis: fractional member weights must reach
// the wire as fixed-point millis (not truncated integers), and invalid
// weights are rejected up front instead of silently distorted.
func TestApplyMembershipWeightMillis(t *testing.T) {
	dead := "http://127.0.0.1:1"
	a, err := NewAggregator(AggConfig{Members: []AggMember{{Addr: "a", Admin: dead}}})
	if err != nil {
		t.Fatal(err)
	}
	// The push to the dead admin URL fails; the config itself is still
	// built and returned, which is all this test needs.
	fc, _ := a.ApplyMembership([]AggMember{
		{Addr: "a", Admin: dead, Weight: 2.7},
		{Addr: "b", Admin: dead, Weight: 0.25},
		{Addr: "c", Admin: dead},
	})
	if fc == nil {
		t.Fatal("no fleet config returned")
	}
	want := map[string]uint64{"a": 2700, "b": 250, "c": 0}
	if len(fc.Members) != len(want) {
		t.Fatalf("want %d members, got %+v", len(want), fc.Members)
	}
	for _, m := range fc.Members {
		if m.Weight != want[m.Addr] {
			t.Fatalf("member %s: wire weight %d, want %d", m.Addr, m.Weight, want[m.Addr])
		}
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := a.ApplyMembership([]AggMember{{Addr: "a", Admin: dead, Weight: bad}}); err == nil {
			t.Fatalf("weight %v accepted, want rejection", bad)
		}
	}
}
