package federation

import "testing"

func mustRing(t *testing.T, members ...Member) *Ring {
	t.Helper()
	r, err := NewRing(members)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	return r
}

func TestRingSingleNode(t *testing.T) {
	r := mustRing(t, Member{Addr: "a:1"})
	for key := uint64(0); key < 1000; key++ {
		if got := r.Owner(key); got != "a:1" {
			t.Fatalf("key %d: owner %q, want the only member", key, got)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := mustRing(t)
	if got := r.Owner(42); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing([]Member{{Addr: "a"}, {Addr: "a"}}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]Member{{Addr: ""}}); err == nil {
		t.Fatal("empty addr accepted")
	}
	if _, err := NewRing([]Member{{Addr: "a", Weight: -1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestRingDeterminism pins Owner as a pure function of (key, member
// set): construction order must not matter, and repeated evaluation
// must agree — the property that lets every exporter process in the
// fleet route identically with no coordination.
func TestRingDeterminism(t *testing.T) {
	fwd := mustRing(t, Member{Addr: "a:1"}, Member{Addr: "b:2"}, Member{Addr: "c:3"})
	rev := mustRing(t, Member{Addr: "c:3"}, Member{Addr: "b:2"}, Member{Addr: "a:1"})
	for key := uint64(0); key < 10000; key++ {
		if fwd.Owner(key) != rev.Owner(key) {
			t.Fatalf("key %d: owner depends on construction order (%q vs %q)",
				key, fwd.Owner(key), rev.Owner(key))
		}
	}
}

// TestRingGolden pins a handful of concrete assignments. If this test
// ever fails, the hash function changed — which silently remaps every
// partition in a live fleet and must be treated as a wire-format
// break, not a refactor.
func TestRingGolden(t *testing.T) {
	r := mustRing(t, Member{Addr: "a:1"}, Member{Addr: "b:2"}, Member{Addr: "c:3"})
	want := map[uint64]string{}
	counts := map[string]int{}
	for key := uint64(1); key <= 8; key++ {
		want[key] = r.Owner(key)
		counts[r.Owner(key)]++
	}
	// Re-evaluate from a freshly built ring: same answers.
	r2 := mustRing(t, Member{Addr: "b:2"}, Member{Addr: "a:1"}, Member{Addr: "c:3"})
	for key, owner := range want {
		if got := r2.Owner(key); got != owner {
			t.Fatalf("key %d: %q from fresh ring, %q first time", key, got, owner)
		}
	}
	// And the 8 small keys must not all land on one member (a
	// degenerate hash would pass determinism but fail spreading).
	if len(counts) < 2 {
		t.Fatalf("keys 1..8 all landed on one member: %v", counts)
	}
}

// TestRingJoinRemap asserts the minimal-disruption bound: adding a
// member to an N-node ring may move only the keys the new member now
// wins — everything else must stay put — and statistically over 10k
// keys the moved fraction is ~1/(N+1), asserted ≤ 2x that bound.
func TestRingJoinRemap(t *testing.T) {
	const keys = 10000
	before := mustRing(t, Member{Addr: "a:1"}, Member{Addr: "b:2"}, Member{Addr: "c:3"})
	after := mustRing(t, Member{Addr: "a:1"}, Member{Addr: "b:2"}, Member{Addr: "c:3"}, Member{Addr: "d:4"})
	moved := 0
	for key := uint64(0); key < keys; key++ {
		ob, oa := before.Owner(key), after.Owner(key)
		if ob == oa {
			continue
		}
		moved++
		if oa != "d:4" {
			t.Fatalf("key %d moved %q -> %q: a join may only move keys to the joiner", key, ob, oa)
		}
	}
	bound := keys * 2 / (3 + 1) // 2x the expected 1/(N+1) share
	if moved == 0 || moved > bound {
		t.Fatalf("join moved %d/%d keys, want (0, %d]", moved, keys, bound)
	}
}

// TestRingLeaveRemap: removing a member moves exactly the keys it
// owned — no collateral remapping — and that set is ~1/N of the
// keyspace.
func TestRingLeaveRemap(t *testing.T) {
	const keys = 10000
	before := mustRing(t, Member{Addr: "a:1"}, Member{Addr: "b:2"}, Member{Addr: "c:3"})
	after := mustRing(t, Member{Addr: "a:1"}, Member{Addr: "c:3"})
	moved := 0
	for key := uint64(0); key < keys; key++ {
		ob, oa := before.Owner(key), after.Owner(key)
		if ob == "b:2" {
			moved++
			if oa == "b:2" {
				t.Fatalf("key %d still owned by removed member", key)
			}
			continue
		}
		if ob != oa {
			t.Fatalf("key %d moved %q -> %q though its owner did not leave", key, ob, oa)
		}
	}
	bound := keys * 2 / 3 // 2x the expected 1/N share
	if moved == 0 || moved > bound {
		t.Fatalf("leave moved %d/%d keys, want (0, %d]", moved, keys, bound)
	}
}

// TestRingWeights: a weight-2 member should own about twice the
// keyspace of each weight-1 member.
func TestRingWeights(t *testing.T) {
	const keys = 20000
	r := mustRing(t, Member{Addr: "big", Weight: 2}, Member{Addr: "s1"}, Member{Addr: "s2"})
	counts := map[string]int{}
	for key := uint64(0); key < keys; key++ {
		counts[r.Owner(key)]++
	}
	// Expected shares: big 1/2, s1 1/4, s2 1/4. Allow ±25% relative.
	check := func(addr string, share float64) {
		t.Helper()
		want := share * keys
		got := float64(counts[addr])
		if got < want*0.75 || got > want*1.25 {
			t.Fatalf("%s owns %d keys, want ~%.0f (±25%%); counts=%v", addr, counts[addr], want, counts)
		}
	}
	check("big", 0.5)
	check("s1", 0.25)
	check("s2", 0.25)
}

// TestRingBalance: equal weights spread 10k keys within ±30% of the
// fair share.
func TestRingBalance(t *testing.T) {
	const keys = 10000
	members := []Member{{Addr: "a"}, {Addr: "b"}, {Addr: "c"}, {Addr: "d"}}
	r := mustRing(t, members...)
	counts := map[string]int{}
	for key := uint64(0); key < keys; key++ {
		counts[r.Owner(key)]++
	}
	fair := float64(keys) / float64(len(members))
	for _, m := range members {
		got := float64(counts[m.Addr])
		if got < fair*0.7 || got > fair*1.3 {
			t.Fatalf("member %s owns %d keys, fair share %.0f; counts=%v", m.Addr, counts[m.Addr], fair, counts)
		}
	}
}
