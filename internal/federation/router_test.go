package federation

import (
	"net"
	"sync"
	"testing"
	"time"

	"switchmon/internal/collector"
	"switchmon/internal/core"
	"switchmon/internal/exporter"
	"switchmon/internal/wire"
)

// recSink records everything one collector applies.
type recSink struct {
	mu     sync.Mutex
	events []core.Event
}

func (s *recSink) SubmitBatch(evs []core.Event, release func()) error {
	s.mu.Lock()
	s.events = append(s.events, evs...)
	s.mu.Unlock()
	if release != nil {
		release()
	}
	return nil
}

func (s *recSink) Tick(time.Time) {}

func (s *recSink) MarkLoss(core.UnsoundReason, time.Time, uint64, string) {}

func (s *recSink) snapshot() []core.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]core.Event(nil), s.events...)
}

type member struct {
	col  *collector.Collector
	sink *recSink
}

func startMember(t *testing.T) *member {
	t.Helper()
	sink := &recSink{}
	c, err := collector.New(collector.Config{Addr: "127.0.0.1:0"}, sink)
	if err != nil {
		t.Fatal(err)
	}
	c.Serve()
	t.Cleanup(c.Close)
	return &member{col: c, sink: sink}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func ev(n int) core.Event {
	return core.Event{Kind: core.KindArrival, Time: time.Unix(1700000000, int64(n)), InPort: uint64(n)}
}

// byPort is a test partition key that spreads one switch's events over
// the fleet (the default dpid key pins a whole switch to one route).
func byPort(e *core.Event) uint64 { return e.InPort }

func newTestRouter(t *testing.T, members []Member, mut func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Members:      members,
		DPID:         7,
		PartitionKey: byPort,
		DrainTimeout: 3 * time.Second,
		Exporter:     exporter.Config{BatchSize: 8, MaxBatchAge: 5 * time.Millisecond},
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(func() { r.Close(time.Second) })
	return r
}

// portsOf collapses a sink snapshot to the event keys it applied.
func portsOf(evs []core.Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, e := range evs {
		out[i] = e.InPort
	}
	return out
}

// checkCoverage asserts the members' sinks together applied events
// 1..n exactly once each, and that each sink's stream is internally
// ordered per partition key (here: per key, trivially — each key is one
// event; cross-key order within a route must still be publish order).
func checkCoverage(t *testing.T, n int, members ...*member) {
	t.Helper()
	seen := map[uint64]int{}
	for _, m := range members {
		var last uint64
		var lastOK bool
		for _, p := range portsOf(m.sink.snapshot()) {
			seen[p]++
			// Within one route, publish order is preserved (single
			// sequence space): keys routed here must arrive ascending.
			if lastOK && p < last {
				t.Fatalf("route applied key %d after %d: per-route order broken", p, last)
			}
			last, lastOK = p, true
		}
	}
	for i := 1; i <= n; i++ {
		if seen[uint64(i)] != 1 {
			t.Fatalf("event %d applied %d times, want exactly once", i, seen[uint64(i)])
		}
	}
	if len(seen) != n {
		t.Fatalf("applied %d distinct events, want %d", len(seen), n)
	}
}

func TestRouterFanOut(t *testing.T) {
	a, b := startMember(t), startMember(t)
	r := newTestRouter(t, []Member{{Addr: a.col.Addr().String()}, {Addr: b.col.Addr().String()}}, nil)
	const n = 200
	for i := 1; i <= n; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	waitFor(t, "all events applied across the fleet", func() bool {
		return len(a.sink.snapshot())+len(b.sink.snapshot()) == n
	})
	checkCoverage(t, n, a, b)
	if got := len(a.sink.snapshot()); got == 0 || got == n {
		t.Fatalf("no fan-out: collector A applied %d of %d", got, n)
	}
	if marks := r.Ledger(); len(marks) != 0 {
		t.Fatalf("lossless run marked unsound: %+v", marks)
	}
	st := r.Stats()
	if st.Published != n || st.RoutePublished != n || st.HeldShed != 0 {
		t.Fatalf("stats off: %+v", st)
	}
	// Events carry the router's DPID when published without one.
	if evs := a.sink.snapshot(); len(evs) > 0 && evs[0].SwitchID != 7 {
		t.Fatalf("dpid not stamped: %+v", evs[0])
	}
}

func TestRouterJoinHandoff(t *testing.T) {
	a, b := startMember(t), startMember(t)
	r := newTestRouter(t, []Member{{Addr: a.col.Addr().String()}}, nil)
	const pre, post = 100, 100
	for i := 1; i <= pre; i++ {
		r.Publish(ev(i))
	}
	r.ApplyFleetConfig(&wire.FleetConfig{Epoch: 1, Members: []wire.FleetMember{
		{Addr: a.col.Addr().String()}, {Addr: b.col.Addr().String()},
	}})
	if r.Epoch() != 1 || len(r.Members()) != 2 {
		t.Fatalf("join not applied: epoch %d members %v", r.Epoch(), r.Members())
	}
	for i := pre + 1; i <= pre+post; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	waitFor(t, "all events applied across the fleet", func() bool {
		return len(a.sink.snapshot())+len(b.sink.snapshot()) == pre+post
	})
	checkCoverage(t, pre+post, a, b)
	// The drain fence ran before the swap: everything published before
	// the join was acknowledged by A, so nothing moved mid-flight and B
	// applied only post-join keys it now owns.
	for _, p := range portsOf(b.sink.snapshot()) {
		if p <= pre {
			t.Fatalf("collector B applied pre-join event %d: fence leaked", p)
		}
	}
	if marks := r.Ledger(); len(marks) != 0 {
		t.Fatalf("handoff marked unsound: %+v", marks)
	}
}

func TestRouterGracefulLeave(t *testing.T) {
	a, b := startMember(t), startMember(t)
	addrA, addrB := a.col.Addr().String(), b.col.Addr().String()
	r := newTestRouter(t, []Member{{Addr: addrA}, {Addr: addrB}}, nil)
	const pre, post = 100, 100
	for i := 1; i <= pre; i++ {
		r.Publish(ev(i))
	}
	r.ApplyFleetConfig(&wire.FleetConfig{Epoch: 1, Members: []wire.FleetMember{{Addr: addrA}}})
	if len(r.Members()) != 1 || r.Members()[0].Addr != addrA {
		t.Fatalf("leave not applied: %v", r.Members())
	}
	preB := len(b.sink.snapshot())
	for i := pre + 1; i <= pre+post; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	waitFor(t, "all events applied across the fleet", func() bool {
		return len(a.sink.snapshot())+len(b.sink.snapshot()) == pre+post
	})
	checkCoverage(t, pre+post, a, b)
	// Graceful leave: B was drained before close, so its unacked tail
	// was empty, nothing replayed, and it saw no post-leave traffic.
	if got := len(b.sink.snapshot()); got != preB {
		t.Fatalf("departed collector applied %d new events after leave", got-preB)
	}
	if st := r.Stats(); st.Replayed != 0 {
		t.Fatalf("graceful leave replayed %d events, want 0", st.Replayed)
	}
	if marks := r.Ledger(); len(marks) != 0 {
		t.Fatalf("graceful leave marked unsound: %+v", marks)
	}
}

func TestRouterDeadLeaveReplaysUnacked(t *testing.T) {
	a, b := startMember(t), startMember(t)
	addrA, addrB := a.col.Addr().String(), b.col.Addr().String()
	r := newTestRouter(t, []Member{{Addr: addrA}, {Addr: addrB}}, func(c *Config) {
		c.DrainTimeout = 200 * time.Millisecond
		c.Exporter.BackoffMin = 10 * time.Millisecond
		c.Exporter.BackoffMax = 20 * time.Millisecond
	})
	const n = 200
	for i := 1; i <= n; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	waitFor(t, "both routes acked", func() bool {
		return len(a.sink.snapshot())+len(b.sink.snapshot()) == n
	})
	// Kill B, keep publishing: its route queues unacked batches.
	b.col.Close()
	for i := n + 1; i <= 2*n; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	// Remove the dead member: the drain fence times out on B, its
	// unacked tail is extracted and replayed to A.
	r.ApplyFleetConfig(&wire.FleetConfig{Epoch: 1, Members: []wire.FleetMember{{Addr: addrA}}})
	waitFor(t, "survivor applied the replayed tail", func() bool {
		seen := map[uint64]bool{}
		for _, p := range portsOf(a.sink.snapshot()) {
			seen[p] = true
		}
		for _, p := range portsOf(b.sink.snapshot()) {
			seen[p] = true
		}
		return len(seen) == 2*n
	})
	if st := r.Stats(); st.Replayed == 0 {
		t.Fatal("dead leave extracted nothing for replay")
	}
}

// TestRouterFleetConfigPush exercises the full wire path: a collector
// broadcasts a FleetConfig frame, each route's exporter hands it to the
// router off the reader goroutine, the router re-routes behind the
// drain fence and the exporter acks only after the re-route applied.
func TestRouterFleetConfigPush(t *testing.T) {
	a, b := startMember(t), startMember(t)
	addrA, addrB := a.col.Addr().String(), b.col.Addr().String()
	r := newTestRouter(t, []Member{{Addr: addrA}}, nil)
	const pre = 50
	for i := 1; i <= pre; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	waitFor(t, "pre-push traffic acked", func() bool { return len(a.sink.snapshot()) == pre })
	if err := a.col.BroadcastFleetConfig(&wire.FleetConfig{Epoch: 1, Members: []wire.FleetMember{
		{Addr: addrA}, {Addr: addrB},
	}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pushed config applied", func() bool { return r.Epoch() == 1 })
	waitFor(t, "collector saw the ack", func() bool { return a.col.Stats().FleetConfigAcks >= 1 })
	const post = 100
	for i := pre + 1; i <= pre+post; i++ {
		r.Publish(ev(i))
	}
	r.Flush()
	waitFor(t, "post-push traffic applied", func() bool {
		return len(a.sink.snapshot())+len(b.sink.snapshot()) == pre+post
	})
	checkCoverage(t, pre+post, a, b)
	if got := len(b.sink.snapshot()); got == 0 {
		t.Fatal("joiner got no traffic after pushed re-route")
	}
	// A re-broadcast of the same epoch (every member pushes the
	// converged config) must be a no-op, not a second re-route.
	if err := a.col.BroadcastFleetConfig(&wire.FleetConfig{Epoch: 1, Members: []wire.FleetMember{{Addr: addrA}}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if len(r.Members()) != 2 {
		t.Fatal("stale fleet epoch re-applied")
	}
}

// refusingAddr returns an address that actively refuses connections.
func refusingAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestRouterAllEndpointsDownOneMarkPerRoute is the regression test for
// the fleet-wide shed-accounting contract: with every endpoint down and
// a drop policy, repeated shed runs on a route accumulate onto exactly
// ONE ledger mark for that route — one mark per route, not one per
// retry cycle, and not one per endpoint times retry cycles.
func TestRouterAllEndpointsDownOneMarkPerRoute(t *testing.T) {
	addrs := []string{refusingAddr(t), refusingAddr(t)}
	r := newTestRouter(t, []Member{{Addr: addrs[0]}, {Addr: addrs[1]}}, func(c *Config) {
		c.Exporter.BatchSize = 4
		c.Exporter.QueueBatches = 1
		c.Exporter.Shed = core.ShedDropNewest
		c.Exporter.BackoffMin = 5 * time.Millisecond
		c.Exporter.BackoffMax = 10 * time.Millisecond
	})
	// Several publish+flush waves so each route sheds repeatedly across
	// multiple reconnect/backoff cycles.
	const waves, perWave = 8, 40
	for w := 0; w < waves; w++ {
		for i := 1; i <= perWave; i++ {
			r.Publish(ev(w*perWave + i))
		}
		r.Flush()
		time.Sleep(15 * time.Millisecond)
	}
	waitFor(t, "both routes shed", func() bool {
		shed := 0
		for _, es := range r.RouteStats() {
			if es.ShedEvents > 0 {
				shed++
			}
		}
		return shed == 2
	})
	marks := r.Ledger()
	if len(marks) != 2 {
		t.Fatalf("want exactly one mark per route (2 total), got %d: %+v", len(marks), marks)
	}
	var total uint64
	for _, m := range marks {
		if m.Reason != core.UnsoundWireLoss {
			t.Fatalf("wrong reason: %+v", m)
		}
		if m.Events == 0 {
			t.Fatalf("mark carries no loss count: %+v", m)
		}
		total += m.Events
	}
	if st := r.Stats(); total != st.ShedEvents {
		t.Fatalf("marks account %d events, routes shed %d", total, st.ShedEvents)
	}
}

// byPortMod64 partitions events into 64 keys, so one partition carries
// a long ordered stream (InPort doubles as the per-stream position).
func byPortMod64(e *core.Event) uint64 { return e.InPort % 64 }

// TestRouterReRouteKeepsPartitionOrder is the regression test for the
// fence/replay race: the fence must stay up until every held event has
// been replayed, or a Publish racing the re-route hands a newer event
// to the new owner with a lower sequence than an older held event and
// the collector applies the partition out of order.
//
// The schedule is made deterministic (no timing races — this must work
// on one CPU) by gating the joiner's dial: the joiner's queue is tiny
// and ShedBlock, so the re-route goroutine provably blocks mid-replay
// with held events still un-replayed. The producer then publishes a
// newer event on the same partition; with the fix it is fenced and
// replayed last, without it it is enqueued to the joiner ahead of the
// older held events and the sink sees the partition out of order.
func TestRouterReRouteKeepsPartitionOrder(t *testing.T) {
	a, b := startMember(t), startMember(t)
	addrA, addrB := a.col.Addr().String(), b.col.Addr().String()
	addrD := refusingAddr(t) // dead member: keeps the drain window open

	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	safety := time.AfterFunc(3*time.Second, openGate)
	defer safety.Stop()

	r := newTestRouter(t, []Member{{Addr: addrA}, {Addr: addrD}}, func(c *Config) {
		c.PartitionKey = byPortMod64
		c.DrainTimeout = 500 * time.Millisecond
		c.Exporter.BatchSize = 4
		c.Exporter.QueueBatches = 1
		c.Exporter.Shed = core.ShedBlock
		c.Exporter.BackoffMin = time.Millisecond
		c.Exporter.BackoffMax = 5 * time.Millisecond
		c.Dial = func(addr string) (net.Conn, error) {
			if addr == addrB {
				<-gate // joiner cannot connect until released
			}
			return net.Dial("tcp", addr)
		}
	})

	// Pick the partitions this schedule needs from the two rings: the
	// stream partition moves A→B on the re-route, and the dead member
	// owns one other partition so its unacked tail forces CloseExtract
	// to sit out the full drain timeout.
	oldRing := mustRingOf(t, addrA, addrD)
	newRing := mustRingOf(t, addrA, addrB)
	pStream, pDead := -1, -1
	for p := 0; p < 64; p++ {
		if pStream < 0 && oldRing.Owner(uint64(p)) == addrA && newRing.Owner(uint64(p)) == addrB {
			pStream = p
		} else if pDead < 0 && oldRing.Owner(uint64(p)) == addrD {
			pDead = p
		}
	}
	if pStream < 0 || pDead < 0 {
		t.Fatalf("no usable partitions: stream %d dead %d", pStream, pDead)
	}
	at := func(i int) core.Event { return ev(pStream + 64*i) }

	// One event on the dead member, sealed: its unacked batch keeps the
	// re-route in the drain phase for the full DrainTimeout.
	r.Publish(ev(pDead))
	r.Flush()

	applied := make(chan struct{})
	go func() {
		defer close(applied)
		r.ApplyFleetConfig(&wire.FleetConfig{Epoch: 1, Members: []wire.FleetMember{
			{Addr: addrA}, {Addr: addrB},
		}})
	}()

	// Stream into the drain window: everything published behind the
	// fence is held for replay onto the joiner. Stop as soon as the swap
	// lands (and never publish after it — the re-route goroutine owns
	// the joiner until the gate opens).
	streamN := 0
	for r.Epoch() != 1 || streamN < 150 {
		streamN++
		r.Publish(at(streamN))
		time.Sleep(time.Millisecond)
	}

	// The replay is now provably wedged: the joiner's gated dial never
	// acks, so after QueueBatches+1 sealed batches the re-route
	// goroutine blocks inside Publish with held events still pending.
	waitFor(t, "replay reached the joiner", func() bool {
		return r.RouteStats()[addrB].Published > 0
	})
	time.Sleep(50 * time.Millisecond)
	select {
	case <-applied:
		t.Fatal("re-route finished with the joiner gated: replay never blocked")
	default:
	}

	// The probe: a newer event on the moved partition, published while
	// older held events are still un-replayed.
	probe := at(streamN + 1)
	r.Publish(probe)
	openGate()
	<-applied

	total := streamN + 2 // stream + dead-member event + probe
	waitFor(t, "all events applied across the fleet", func() bool {
		return len(a.sink.snapshot())+len(b.sink.snapshot()) == total
	})
	seen := map[uint64]int{}
	for _, m := range []*member{a, b} {
		last := map[uint64]uint64{}
		for _, e := range m.sink.snapshot() {
			seen[e.InPort]++
			part := e.InPort % 64
			if prev, ok := last[part]; ok && e.InPort < prev {
				t.Fatalf("partition %d applied event %d after %d: re-route broke per-partition order", part, e.InPort, prev)
			}
			last[part] = e.InPort
		}
	}
	for i := 1; i <= streamN; i++ {
		if seen[at(i).InPort] != 1 {
			t.Fatalf("stream event %d applied %d times, want exactly once", i, seen[at(i).InPort])
		}
	}
	if seen[probe.InPort] != 1 || seen[uint64(pDead)] != 1 {
		t.Fatalf("probe applied %d times, dead-member event %d times, want exactly once each",
			seen[probe.InPort], seen[uint64(pDead)])
	}
	if marks := r.Ledger(); len(marks) != 0 {
		t.Fatalf("live re-route marked unsound: %+v", marks)
	}
}

// mustRingOf builds a default-weight ring over the given addresses.
func mustRingOf(t *testing.T, addrs ...string) *Ring {
	t.Helper()
	members := make([]Member, len(addrs))
	for i, addr := range addrs {
		members[i] = Member{Addr: addr}
	}
	ring, err := NewRing(members)
	if err != nil {
		t.Fatal(err)
	}
	return ring
}

// TestRouterFleetWeightMillis: wire FleetMember.Weight is fixed-point
// millis; the router must rebuild the ring with the fractional weights,
// treating 0 as the default 1.0.
func TestRouterFleetWeightMillis(t *testing.T) {
	a := startMember(t)
	addrA := a.col.Addr().String()
	r := newTestRouter(t, []Member{{Addr: addrA}}, nil)
	r.ApplyFleetConfig(&wire.FleetConfig{Epoch: 1, Members: []wire.FleetMember{
		{Addr: addrA, Weight: 2500},
		{Addr: "127.0.0.1:1", Weight: 250},
		{Addr: "127.0.0.2:1"},
	}})
	want := map[string]float64{addrA: 2.5, "127.0.0.1:1": 0.25, "127.0.0.2:1": 1}
	members := r.Members()
	if len(members) != len(want) {
		t.Fatalf("want %d members, got %v", len(want), members)
	}
	for _, m := range members {
		if m.Weight != want[m.Addr] {
			t.Fatalf("member %s: weight %v, want %v", m.Addr, m.Weight, want[m.Addr])
		}
	}
}

// TestRouterPropertySetDedup: the same converged property set pushed by
// every member must invoke the wrapped OnPropertySet once per epoch.
func TestRouterPropertySetDedup(t *testing.T) {
	a, b := startMember(t), startMember(t)
	var mu sync.Mutex
	var got []uint64
	r := newTestRouter(t, []Member{{Addr: a.col.Addr().String()}, {Addr: b.col.Addr().String()}}, func(c *Config) {
		c.Exporter.OnPropertySet = func(u *wire.PropertySetUpdate) {
			mu.Lock()
			got = append(got, u.Epoch)
			mu.Unlock()
		}
	})
	_ = r
	upd := &wire.PropertySetUpdate{Epoch: 5}
	if err := a.col.BroadcastPropertySet(upd); err != nil {
		t.Fatal(err)
	}
	if err := b.col.BroadcastPropertySet(upd); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "property set delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	})
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("want one epoch-5 delivery, got %v", got)
	}
}
