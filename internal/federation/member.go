package federation

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"switchmon/internal/obs/export"
	"switchmon/internal/wire"
)

// MemberEndpoints wires a collector's fleet-facing admin surface: the
// hooks the aggregation tier drives on each member. Local means "apply
// here, do not forward" — the aggregator already owns the fleet-wide
// fan-out and ordering, so these handlers must never loop an operation
// back through it.
type MemberEndpoints struct {
	// BroadcastFleet relays a fleet config to this member's connected
	// exporters (collector.BroadcastFleetConfig).
	BroadcastFleet func(*wire.FleetConfig) error
	// InstallLocal installs DSL source on this member only.
	InstallLocal func(src, tenant string) error
	// RemoveLocal removes the named property on this member only.
	RemoveLocal func(name string) error
}

// RegisterMemberEndpoints adds the fleet-member admin endpoints to a
// collector's introspection mux:
//
//	/fleet             POST a wire.FleetConfig as JSON; the member
//	                   relays it to every connected fleet-capable
//	                   exporter
//	/fleet/properties  POST/DELETE like /properties, but always applied
//	                   locally — the aggregator's fan-out target
func RegisterMemberEndpoints(mux *http.ServeMux, m MemberEndpoints) {
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			export.Error(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if m.BroadcastFleet == nil {
			export.Error(w, http.StatusMethodNotAllowed, "fleet relay not supported")
			return
		}
		var fc wire.FleetConfig
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&fc); err != nil {
			export.Error(w, http.StatusBadRequest, err.Error())
			return
		}
		if len(fc.Members) == 0 {
			export.Error(w, http.StatusBadRequest, "fleet config needs at least one member")
			return
		}
		if err := m.BroadcastFleet(&fc); err != nil {
			export.Error(w, http.StatusInternalServerError, err.Error())
			return
		}
		fmt.Fprintln(w, "relayed")
	})
	mux.HandleFunc("/fleet/properties", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			if m.InstallLocal == nil {
				export.Error(w, http.StatusMethodNotAllowed, "install not supported")
				return
			}
			src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				export.Error(w, http.StatusBadRequest, err.Error())
				return
			}
			if err := m.InstallLocal(string(src), r.URL.Query().Get("tenant")); err != nil {
				export.Error(w, http.StatusBadRequest, err.Error())
				return
			}
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintln(w, "installed")
		case http.MethodDelete:
			if m.RemoveLocal == nil {
				export.Error(w, http.StatusMethodNotAllowed, "remove not supported")
				return
			}
			name := r.URL.Query().Get("name")
			if name == "" {
				export.Error(w, http.StatusBadRequest, "missing ?name=")
				return
			}
			if err := m.RemoveLocal(name); err != nil {
				export.Error(w, http.StatusNotFound, err.Error())
				return
			}
			fmt.Fprintln(w, "removed")
		default:
			export.Error(w, http.StatusMethodNotAllowed, "POST or DELETE")
		}
	})
}
