package federation

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"switchmon/internal/wire"
)

// MemberEndpoints wires a collector's fleet-facing admin surface: the
// hooks the aggregation tier drives on each member. Local means "apply
// here, do not forward" — the aggregator already owns the fleet-wide
// fan-out and ordering, so these handlers must never loop an operation
// back through it.
type MemberEndpoints struct {
	// BroadcastFleet relays a fleet config to this member's connected
	// exporters (collector.BroadcastFleetConfig).
	BroadcastFleet func(*wire.FleetConfig) error
	// InstallLocal installs DSL source on this member only.
	InstallLocal func(src, tenant string) error
	// RemoveLocal removes the named property on this member only.
	RemoveLocal func(name string) error
}

// RegisterMemberEndpoints adds the fleet-member admin endpoints to a
// collector's introspection mux:
//
//	/fleet             POST a wire.FleetConfig as JSON; the member
//	                   relays it to every connected fleet-capable
//	                   exporter
//	/fleet/properties  POST/DELETE like /properties, but always applied
//	                   locally — the aggregator's fan-out target
func RegisterMemberEndpoints(mux *http.ServeMux, m MemberEndpoints) {
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if m.BroadcastFleet == nil {
			http.Error(w, "fleet relay not supported", http.StatusMethodNotAllowed)
			return
		}
		var fc wire.FleetConfig
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&fc); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(fc.Members) == 0 {
			http.Error(w, "fleet config needs at least one member", http.StatusBadRequest)
			return
		}
		if err := m.BroadcastFleet(&fc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, "relayed")
	})
	mux.HandleFunc("/fleet/properties", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			if m.InstallLocal == nil {
				http.Error(w, "install not supported", http.StatusMethodNotAllowed)
				return
			}
			src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := m.InstallLocal(string(src), r.URL.Query().Get("tenant")); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintln(w, "installed")
		case http.MethodDelete:
			if m.RemoveLocal == nil {
				http.Error(w, "remove not supported", http.StatusMethodNotAllowed)
				return
			}
			name := r.URL.Query().Get("name")
			if name == "" {
				http.Error(w, "missing ?name=", http.StatusBadRequest)
				return
			}
			if err := m.RemoveLocal(name); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			fmt.Fprintln(w, "removed")
		default:
			http.Error(w, "POST or DELETE", http.StatusMethodNotAllowed)
		}
	})
}
