package federation

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/exporter"
	"switchmon/internal/wire"
)

// Config parameterizes a Router: the federated, fleet-aware
// replacement for a single exporter link.
type Config struct {
	// Members is the initial fleet (at least one). Later membership
	// changes arrive as FleetConfig frames pushed by any member
	// collector, or via ApplyFleetConfig directly.
	Members []Member
	// Epoch is the initial fleet-config epoch (a pushed FleetConfig
	// must exceed it to apply).
	Epoch uint64
	// DPID is the datapath id announced on every route and stamped on
	// events published with SwitchID zero.
	DPID uint64
	// PartitionKey maps an event to its partition key; nil defaults to
	// core.PartitionByDPID (all of one switch's events on one
	// collector — the correct key for any property set passing
	// core.ValidateDPIDPartition). core.IdentityPartitionFunc derives
	// finer property-identity keys when the installed set supports it.
	PartitionKey func(*core.Event) uint64
	// DrainTimeout bounds the handoff fence per re-route: how long a
	// route may take to flush and have its in-flight batches
	// acknowledged before the re-route proceeds without it (a removed
	// route's unacked tail is then replayed to the new owners; a
	// surviving route's stays in its own queue). Default 5s.
	DrainTimeout time.Duration
	// HeldMax bounds the events buffered while a re-route fence is up
	// (default 1<<17). Overflow is shed into the router's ledger — loss
	// with a mark, never silent.
	HeldMax int
	// Exporter is the per-route template: every collector endpoint gets
	// its own exporter built from this config — its own sequence space
	// from 1, bounded queue, reconnect+replay — so the collector-side
	// gap→wire-loss accounting stays exact per route across partition
	// moves. Addr, DPID, Dial and OnFleetConfig are owned by the
	// router; OnPropertySet is wrapped with an epoch filter so N routes
	// pushing the same set invoke it once.
	Exporter exporter.Config
	// Dial, when non-nil, overrides the transport per endpoint (tests,
	// fault injection).
	Dial func(addr string) (net.Conn, error)
}

// Stats is an aggregate snapshot across the router's routes.
type Stats struct {
	// Epoch is the applied fleet-config epoch; Reroutes counts applied
	// membership changes.
	Epoch    uint64
	Reroutes uint64
	// Routes is the current member count.
	Routes int
	// Published counts events accepted by Publish; Held counts events
	// buffered behind a fence (cumulative); Replayed counts events
	// re-published during handoff (held + extracted from removed
	// routes); HeldShed counts events lost to HeldMax overflow.
	Published uint64
	Held      uint64
	Replayed  uint64
	HeldShed  uint64
	// Sums over per-route exporter stats.
	RoutePublished uint64
	ShedEvents     uint64
	BatchesAcked   uint64
	BytesSent      uint64
	Reconnects     uint64
	QueueDepth     int
}

// route is one collector endpoint's link: a full exporter with its own
// sequence space.
type route struct {
	addr string
	exp  *exporter.Exporter
}

// Router fans a switch's event stream out across the collector fleet:
// consistent-hash partition routing, per-endpoint bounded queues and
// replay, and fleet-config handoff behind a drain fence. Publish and
// NoteLoss are safe for one producer goroutine, like the exporter they
// replace; re-routes run concurrently on fleet-config delivery
// goroutines.
type Router struct {
	cfg Config
	key func(*core.Event) uint64

	// applyMu serializes re-routes end to end (fence, drain, swap,
	// replay); mu guards the routing state Publish reads.
	applyMu sync.Mutex
	mu      sync.Mutex
	ring    *Ring
	routes  map[string]*route
	epoch   uint64
	fence   bool
	held    []core.Event
	closed  bool
	stats   Stats
	ledger  *core.Ledger // router-local marks (held overflow)

	// propEpoch/propSeen dedupe property-set pushes arriving on every
	// route so the wrapped OnPropertySet fires once per epoch.
	propEpoch uint64
	propSeen  bool
}

// NewRouter builds the router and its initial routes; Start launches
// every route's exporter.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("federation: at least one member required")
	}
	ring, err := NewRing(cfg.Members)
	if err != nil {
		return nil, err
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.HeldMax <= 0 {
		cfg.HeldMax = 1 << 17
	}
	r := &Router{
		cfg:    cfg,
		key:    cfg.PartitionKey,
		ring:   ring,
		routes: map[string]*route{},
		epoch:  cfg.Epoch,
		ledger: core.NewLedger(),
	}
	if r.key == nil {
		r.key = core.PartitionByDPID
	}
	r.stats.Epoch = cfg.Epoch
	for _, m := range cfg.Members {
		rt, err := r.newRoute(m.Addr)
		if err != nil {
			return nil, err
		}
		r.routes[m.Addr] = rt
	}
	return r, nil
}

// newRoute builds (but does not start) one endpoint's exporter from
// the template.
func (r *Router) newRoute(addr string) (*route, error) {
	rc := r.cfg.Exporter
	rc.Addr = addr
	rc.DPID = r.cfg.DPID
	rc.OnFleetConfig = r.ApplyFleetConfig
	if r.cfg.Dial != nil {
		dial := r.cfg.Dial
		rc.Dial = func() (net.Conn, error) { return dial(addr) }
	} else {
		rc.Dial = nil
	}
	if cb := r.cfg.Exporter.OnPropertySet; cb != nil {
		rc.OnPropertySet = func(u *wire.PropertySetUpdate) {
			// N collectors push N copies of each converged set; apply
			// the first per epoch, drop the echoes.
			r.mu.Lock()
			dup := r.propSeen && u.Epoch <= r.propEpoch
			if !dup {
				r.propEpoch = u.Epoch
				r.propSeen = true
			}
			r.mu.Unlock()
			if !dup {
				cb(u)
			}
		}
	}
	exp, err := exporter.New(rc)
	if err != nil {
		return nil, err
	}
	return &route{addr: addr, exp: exp}, nil
}

// Start launches every route's exporter.
func (r *Router) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rt := range r.routes {
		rt.exp.Start()
	}
}

// Publish accepts one event, stamps SwitchID with the configured DPID
// when unset, and routes it to the collector owning its partition.
// While a re-route fence is up, events are buffered and replayed in
// order once the fence drops, so a moved partition's stream reaches
// its new owner only after its old owner has acknowledged everything
// in flight.
func (r *Router) Publish(e core.Event) {
	if e.SwitchID == 0 {
		e.SwitchID = r.cfg.DPID
	}
	key := r.key(&e)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.stats.Published++
	if r.fence {
		if len(r.held) >= r.cfg.HeldMax {
			r.stats.HeldShed++
			r.ledger.Mark("*", core.UnsoundWireLoss, r.stats.Published, time.Now(), 1, "re-route fence buffer full")
			r.ledger.RecordLost(core.UnsoundWireLoss, 1)
			r.mu.Unlock()
			return
		}
		r.held = append(r.held, e)
		r.stats.Held++
		r.mu.Unlock()
		return
	}
	rt := r.routes[r.ring.Owner(key)]
	if rt == nil {
		// Every ring member has a route by construction (members whose
		// route cannot be built are excluded from the ring), so this is
		// defense in depth: loss with a mark, never silent.
		r.noteNoRouteLocked(1)
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	rt.exp.Publish(e)
}

// noteNoRouteLocked marks the router ledger for events dropped because
// the ring owner has no route. Caller holds mu.
func (r *Router) noteNoRouteLocked(n uint64) {
	r.ledger.Mark("*", core.UnsoundWireLoss, r.stats.Published, time.Now(), n, "no route for partition owner")
	r.ledger.RecordLost(core.UnsoundWireLoss, n)
}

// NoteLoss records events lost upstream of the router. The router
// cannot know which partitions the lost events belonged to, so the
// loss is conservatively declared on every route — each collector
// sees a sequence gap and marks its ledger, exactly the fleet-wide
// analogue of the inline engine marking every property on feed loss.
func (r *Router) NoteLoss(n uint64) {
	if n == 0 {
		return
	}
	r.mu.Lock()
	targets := r.routeList()
	r.mu.Unlock()
	for _, rt := range targets {
		rt.exp.NoteLoss(n)
	}
}

// Flush seals every route's pending batch.
func (r *Router) Flush() {
	r.mu.Lock()
	targets := r.routeList()
	r.mu.Unlock()
	for _, rt := range targets {
		rt.exp.Flush()
	}
}

// routeList snapshots the route set. Caller holds mu.
func (r *Router) routeList() []*route {
	out := make([]*route, 0, len(r.routes))
	for _, rt := range r.routes {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// Epoch is the applied fleet-config epoch.
func (r *Router) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Members is the current member set in address order.
func (r *Router) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Members()
}

// RouteStats snapshots each route's exporter counters by address.
func (r *Router) RouteStats() map[string]exporter.Stats {
	r.mu.Lock()
	targets := r.routeList()
	r.mu.Unlock()
	out := make(map[string]exporter.Stats, len(targets))
	for _, rt := range targets {
		out[rt.addr] = rt.exp.Stats()
	}
	return out
}

// Stats aggregates router counters and per-route exporter counters.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	s := r.stats
	s.Routes = len(r.routes)
	s.Epoch = r.epoch
	targets := r.routeList()
	r.mu.Unlock()
	for _, rt := range targets {
		es := rt.exp.Stats()
		s.RoutePublished += es.Published
		s.ShedEvents += es.ShedEvents
		s.BatchesAcked += es.BatchesAcked
		s.BytesSent += es.BytesSent
		s.Reconnects += es.Reconnects
		s.QueueDepth += es.QueueDepth
	}
	return s
}

// Ledger merges the soundness marks of every route's local ledger plus
// the router's own, each detail prefixed with the route it came from.
// Per route, the exporter's first-mark-wins discipline holds: one mark
// per route however many shed runs or retry cycles occurred, with the
// exact event count accumulating on it.
func (r *Router) Ledger() []core.UnsoundMark {
	r.mu.Lock()
	targets := r.routeList()
	r.mu.Unlock()
	var out []core.UnsoundMark
	for _, m := range r.ledger.Snapshot() {
		m.Detail = "router: " + m.Detail
		out = append(out, m)
	}
	for _, rt := range targets {
		for _, m := range rt.exp.Ledger().Snapshot() {
			m.Detail = fmt.Sprintf("route %s: %s", rt.addr, m.Detail)
			out = append(out, m)
		}
	}
	return out
}

// ApplyFleetConfig applies a fleet membership change: new routes are
// built and dialed (a member whose route cannot be built is excluded
// from the new ring rather than installed route-less), every surviving
// route is drained (flush + wait for its cumulative acks — the fence
// that guarantees a moved partition's in-flight events are applied by
// the old owner before the new owner sees anything newer), removed
// routes are closed with their unacked tails extracted and replayed
// through the new ring, and events published during the fence are
// replayed in publish order. The fence stays up until every replayed
// event has been handed to its new route, so a concurrent Publish can
// never deliver a newer event ahead of an older held one on the same
// partition. Stale epochs (at or below the applied one) are no-ops, so
// the same config pushed by every collector in the fleet applies once.
// Also the exporter.Config.OnFleetConfig handler for every route.
func (r *Router) ApplyFleetConfig(fc *wire.FleetConfig) {
	members := make([]Member, 0, len(fc.Members))
	for _, m := range fc.Members {
		w := float64(m.Weight) / 1000
		if m.Weight == 0 {
			w = 1
		}
		members = append(members, Member{Addr: m.Addr, Weight: w})
	}
	newRing, err := NewRing(members)
	if err != nil || newRing.Size() == 0 {
		return // malformed or empty config: keep the working fleet
	}

	r.applyMu.Lock()
	defer r.applyMu.Unlock()

	r.mu.Lock()
	if r.closed || fc.Epoch <= r.epoch {
		r.mu.Unlock()
		return
	}
	have := make(map[string]bool, len(r.routes))
	for addr := range r.routes {
		have[addr] = true
	}
	r.mu.Unlock()

	// Build joiner routes before fencing anything. A member whose route
	// cannot be built must not enter the ring: Publish would resolve it
	// to a nil route and silently drop everything it owns. Exclude it
	// and re-derive the ring; if no usable member remains, keep the
	// working fleet.
	added := make(map[string]*route)
	usable := members[:0]
	for _, m := range members {
		if have[m.Addr] {
			usable = append(usable, m)
			continue
		}
		rt, rerr := r.newRoute(m.Addr)
		if rerr != nil {
			continue
		}
		added[m.Addr] = rt
		usable = append(usable, m)
	}
	if len(usable) < len(members) {
		nr, nerr := NewRing(usable)
		if nerr != nil || nr.Size() == 0 {
			for _, rt := range added {
				rt.exp.Close(0)
			}
			return // no usable member: keep the working fleet
		}
		newRing = nr
		members = usable
	}
	// Start joiners now so they connect while the drain runs.
	for _, rt := range added {
		rt.exp.Start()
	}

	r.mu.Lock()
	r.fence = true
	oldRoutes := r.routeList()
	r.mu.Unlock()

	keep := make(map[string]bool, len(members))
	for _, m := range members {
		keep[m.Addr] = true
	}

	// Drain fence: surviving routes must have everything acknowledged
	// before any partition moves between them; removed routes drain
	// inside CloseExtract below.
	var wg sync.WaitGroup
	for _, rt := range oldRoutes {
		if !keep[rt.addr] {
			continue
		}
		wg.Add(1)
		go func(rt *route) {
			defer wg.Done()
			rt.exp.Drain(r.cfg.DrainTimeout)
		}(rt)
	}
	wg.Wait()

	// Removed routes: drain, then take back whatever the dead/departing
	// collector never acknowledged and replay it to the new owners. The
	// old owner may have applied a sent-but-unacked prefix before the
	// cut; replay is at-least-once across the fleet, and per-route
	// sequence dedup still guarantees no collector applies an event
	// twice.
	var extracted []core.Event
	for _, rt := range oldRoutes {
		if keep[rt.addr] {
			continue
		}
		extracted = append(extracted, rt.exp.CloseExtract(r.cfg.DrainTimeout)...)
	}

	// Swap the routing state but keep the fence up: a Publish racing
	// this re-route keeps buffering into held until the replay below
	// has delivered every older event, preserving per-partition order.
	r.mu.Lock()
	for _, rt := range oldRoutes {
		if !keep[rt.addr] {
			delete(r.routes, rt.addr)
		}
	}
	for addr, rt := range added {
		r.routes[addr] = rt
	}
	r.ring = newRing
	r.epoch = fc.Epoch
	r.stats.Epoch = fc.Epoch
	r.stats.Reroutes++
	held := r.held
	r.held = nil
	routes := r.routes
	ring := r.ring
	r.stats.Replayed += uint64(len(extracted) + len(held))
	r.mu.Unlock()

	// Replay in causal order: a removed route's extracted tail predates
	// everything buffered behind the fence.
	r.replay(routes, ring, extracted)
	r.replay(routes, ring, held)

	// Anything published while the replay ran was fenced into held;
	// drain it in publish order before dropping the fence. Each pass
	// replays a strictly newer suffix, so the loop terminates once the
	// producer pauses or the batch drains faster than it refills.
	for {
		r.mu.Lock()
		if len(r.held) == 0 {
			r.fence = false
			r.mu.Unlock()
			return
		}
		more := r.held
		r.held = nil
		r.stats.Replayed += uint64(len(more))
		r.mu.Unlock()
		r.replay(routes, ring, more)
	}
}

// replay re-publishes events through the given routing state, marking
// the router ledger for any event whose ring owner has no route — loss
// with a mark, never silent.
func (r *Router) replay(routes map[string]*route, ring *Ring, events []core.Event) {
	for i := range events {
		e := &events[i]
		rt := routes[ring.Owner(r.key(e))]
		if rt == nil {
			r.mu.Lock()
			r.noteNoRouteLocked(1)
			r.mu.Unlock()
			continue
		}
		rt.exp.Publish(*e)
	}
}

// Close drains and closes every route, returning the total number of
// events abandoned unacknowledged.
func (r *Router) Close(drainTimeout time.Duration) uint64 {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0
	}
	r.closed = true
	targets := r.routeList()
	held := len(r.held)
	r.held = nil
	r.mu.Unlock()
	var abandoned uint64
	if held > 0 {
		// Closed mid-fence: the buffered events have no live route.
		abandoned += uint64(held)
		r.ledger.Mark("*", core.UnsoundWireLoss, 0, time.Now(), uint64(held), "closed during re-route fence")
		r.ledger.RecordLost(core.UnsoundWireLoss, uint64(held))
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, rt := range targets {
		wg.Add(1)
		go func(rt *route) {
			defer wg.Done()
			n := rt.exp.Close(drainTimeout)
			mu.Lock()
			abandoned += n
			mu.Unlock()
		}(rt)
	}
	wg.Wait()
	return abandoned
}
