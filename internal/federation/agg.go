package federation

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"switchmon/internal/obs"
	"switchmon/internal/obs/export"
	"switchmon/internal/obs/histdb"
	"switchmon/internal/obs/slo"
	"switchmon/internal/wire"
)

// AggMember is one collector in the fleet as the aggregation tier sees
// it: the TCP address exporters dial, and the admin HTTP base URL the
// aggregator scrapes and administers.
type AggMember struct {
	Addr   string  `json:"addr"`
	Admin  string  `json:"admin"`
	Weight float64 `json:"weight,omitempty"`
}

// AggConfig parameterizes an Aggregator.
type AggConfig struct {
	// Members is the initial fleet.
	Members []AggMember
	// Epoch is the initial fleet-config epoch; membership changes
	// applied through /fleet increment it.
	Epoch uint64
	// Timeout bounds each member scrape/admin call (default 3s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Aggregator is the fleet head: it merges per-collector metrics,
// health, state reports, and violation streams into fleet-wide
// endpoints, serializes property-lifecycle operations into one
// fleet-wide order, and drives membership changes by pushing
// FleetConfig frames through every member collector.
//
// It holds no monitoring state of its own — every answer is composed
// from live member scrapes, so a restarted aggregator is immediately
// current.
type Aggregator struct {
	mu      sync.Mutex // guards members/epoch and the scrape-error count
	opMu    sync.Mutex // serializes lifecycle ops into one fleet-wide order
	members []AggMember
	epoch   uint64

	client  *http.Client
	timeout time.Duration

	scrapeErrs uint64

	// Self-monitoring, attached via AttachSelfMonitor before Mux().
	history *histdb.DB
	alerts  *slo.Engine
}

// NewAggregator builds the fleet head over the given members.
func NewAggregator(cfg AggConfig) (*Aggregator, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("federation: aggregator needs at least one member")
	}
	for _, m := range cfg.Members {
		if m.Addr == "" || m.Admin == "" {
			return nil, fmt.Errorf("federation: member needs both addr and admin URL: %+v", m)
		}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * time.Second
	}
	cl := cfg.Client
	if cl == nil {
		cl = &http.Client{Timeout: cfg.Timeout}
	}
	return &Aggregator{
		members: append([]AggMember(nil), cfg.Members...),
		epoch:   cfg.Epoch,
		client:  cl,
		timeout: cfg.Timeout,
	}, nil
}

// Members snapshots the current membership.
func (a *Aggregator) Members() []AggMember {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]AggMember(nil), a.members...)
}

// Epoch is the current fleet-config epoch.
func (a *Aggregator) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// get fetches one member endpoint, returning the body.
func (a *Aggregator) get(admin, path string) ([]byte, error) {
	resp, err := a.client.Get(strings.TrimRight(admin, "/") + path)
	if err != nil {
		a.mu.Lock()
		a.scrapeErrs++
		a.mu.Unlock()
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err == nil && resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("%s%s: %s: %s", admin, path, resp.Status, bytes.TrimSpace(body))
	}
	if err != nil {
		a.mu.Lock()
		a.scrapeErrs++
		a.mu.Unlock()
		return nil, err
	}
	return body, nil
}

// memberDoc is one member's contribution to a fleet-wide JSON answer.
type memberDoc struct {
	Member string          `json:"member"`
	Error  string          `json:"error,omitempty"`
	Doc    json.RawMessage `json:"doc,omitempty"`
}

// collectJSON fetches path from every member concurrently, in member
// order.
func (a *Aggregator) collectJSON(path string) []memberDoc {
	return a.collectJSONPer(func(AggMember) string { return path })
}

// collectJSONPer is collectJSON with a per-member path, so callers can
// thread member-specific cursors into the fan-out.
func (a *Aggregator) collectJSONPer(pathFor func(AggMember) string) []memberDoc {
	members := a.Members()
	out := make([]memberDoc, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m AggMember) {
			defer wg.Done()
			out[i].Member = m.Addr
			body, err := a.get(m.Admin, pathFor(m))
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			if json.Valid(body) {
				out[i].Doc = body
			} else {
				// Non-JSON member answers (plain "ok") are quoted.
				q, _ := json.Marshal(strings.TrimSpace(string(body)))
				out[i].Doc = q
			}
		}(i, m)
	}
	wg.Wait()
	return out
}

// labelSig canonicalizes a label set for cross-member series matching.
func labelSig(labels []obs.Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(';')
	}
	return b.String()
}

// mergeSnapshots sums per-member registry snapshots into one fleet
// snapshot: families matched by name, series matched by label set,
// counters/gauges summed, histogram buckets/sums/counts summed. Family
// names gain the fleet prefix: switchmon_engine_events_total becomes
// switchmon_fleet_engine_events_total, so a fleet scrape can never be
// confused with (or double-counted against) a member scrape.
func mergeSnapshots(snaps []obs.Snapshot) obs.Snapshot {
	type famAcc struct {
		fam   obs.FamilySnapshot
		index map[string]int
		order int
	}
	fams := map[string]*famAcc{}
	nextOrder := 0
	for _, s := range snaps {
		for _, f := range s.Families {
			acc := fams[f.Name]
			if acc == nil {
				acc = &famAcc{
					fam:   obs.FamilySnapshot{Name: fleetName(f.Name), Help: f.Help, Kind: f.Kind},
					index: map[string]int{},
					order: nextOrder,
				}
				nextOrder++
				fams[f.Name] = acc
			}
			for _, ser := range f.Series {
				sig := labelSig(ser.Labels)
				i, ok := acc.index[sig]
				if !ok {
					i = len(acc.fam.Series)
					acc.index[sig] = i
					acc.fam.Series = append(acc.fam.Series, obs.SeriesSnapshot{
						Labels:  append([]obs.Label(nil), ser.Labels...),
						Buckets: append([]uint64(nil), ser.Buckets...),
					})
					acc.fam.Series[i].Value = ser.Value
					acc.fam.Series[i].Count = ser.Count
					acc.fam.Series[i].Sum = ser.Sum
					continue
				}
				dst := &acc.fam.Series[i]
				dst.Value += ser.Value
				dst.Count += ser.Count
				dst.Sum += ser.Sum
				for bi, n := range ser.Buckets {
					if bi < len(dst.Buckets) {
						dst.Buckets[bi] += n
					} else {
						dst.Buckets = append(dst.Buckets, n)
					}
				}
			}
		}
	}
	ordered := make([]*famAcc, 0, len(fams))
	for _, acc := range fams {
		ordered = append(ordered, acc)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })
	var out obs.Snapshot
	for _, acc := range ordered {
		out.Families = append(out.Families, acc.fam)
	}
	return out
}

// fleetName maps a member family name into the fleet namespace.
func fleetName(name string) string {
	if rest, ok := strings.CutPrefix(name, "switchmon_"); ok {
		return "switchmon_fleet_" + rest
	}
	return "switchmon_fleet_" + name
}

// fleetFamilies builds the aggregator's own series: membership size,
// reachability, fleet epoch, scrape errors.
func (a *Aggregator) fleetFamilies(reachable int) []obs.FamilySnapshot {
	a.mu.Lock()
	n, epoch, errs := len(a.members), a.epoch, a.scrapeErrs
	a.mu.Unlock()
	g := func(name, help string, v int64) obs.FamilySnapshot {
		return obs.FamilySnapshot{Name: name, Help: help, Kind: "gauge",
			Series: []obs.SeriesSnapshot{{Value: v}}}
	}
	c := func(name, help string, v int64) obs.FamilySnapshot {
		return obs.FamilySnapshot{Name: name, Help: help, Kind: "counter",
			Series: []obs.SeriesSnapshot{{Value: v}}}
	}
	return []obs.FamilySnapshot{
		g("switchmon_fleet_members", "Collectors in the current fleet config.", int64(n)),
		g("switchmon_fleet_members_reachable", "Members that answered the last fleet scrape.", int64(reachable)),
		g("switchmon_fleet_members_unreachable", "Members that did not answer the last fleet scrape.", int64(n-reachable)),
		g("switchmon_fleet_epoch", "Applied fleet-config epoch.", int64(epoch)),
		c("switchmon_fleet_scrape_errors_total", "Member admin calls that failed.", int64(errs)),
	}
}

// FleetSnapshot scrapes every member and returns the merged fleet
// snapshot with the aggregator's own fleet gauges prepended — the same
// document /metrics serves, exposed as a function so a histdb sampler
// can record fleet history (Source mode) and an SLO engine can alert on
// it, including on members going dark (the unreachable gauge).
func (a *Aggregator) FleetSnapshot() obs.Snapshot {
	snaps, reachable := a.scrapeMetrics()
	merged := mergeSnapshots(snaps)
	merged.Families = append(a.fleetFamilies(reachable), merged.Families...)
	return merged
}

// AttachSelfMonitor wires the aggregator's own history ring and alert
// engine into the mux Mux builds: /query and /alerts get registered,
// and firing rules fold into the /healthz degradation report. Call it
// before Mux.
func (a *Aggregator) AttachSelfMonitor(db *histdb.DB, eng *slo.Engine) {
	a.history = db
	a.alerts = eng
}

// scrapeMetrics pulls every member's registry snapshot.
func (a *Aggregator) scrapeMetrics() (snaps []obs.Snapshot, reachable int) {
	members := a.Members()
	snaps = make([]obs.Snapshot, len(members))
	ok := make([]bool, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m AggMember) {
			defer wg.Done()
			body, err := a.get(m.Admin, "/metrics?format=json")
			if err != nil {
				return
			}
			if json.Unmarshal(body, &snaps[i]) == nil {
				ok[i] = true
			}
		}(i, m)
	}
	wg.Wait()
	live := snaps[:0]
	for i := range snaps {
		if ok[i] {
			live = append(live, snaps[i])
			reachable++
		}
	}
	return live, reachable
}

// pushFleetConfig pushes the fleet config to every reachable member's
// /fleet admin endpoint, which broadcasts it to that member's connected
// exporters; since every federated exporter holds a route to every
// member, one reachable member suffices for convergence, and the push
// is idempotent under the routers' epoch filter. Returns the first
// error with the count of successful pushes.
func (a *Aggregator) pushFleetConfig(members []AggMember, fc *wire.FleetConfig) (int, error) {
	body, err := json.Marshal(fc)
	if err != nil {
		return 0, err
	}
	pushed := 0
	var firstErr error
	for _, m := range members {
		resp, err := a.client.Post(strings.TrimRight(m.Admin, "/")+"/fleet", "application/json", bytes.NewReader(body))
		if err == nil {
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
				err = fmt.Errorf("%s/fleet: %s: %s", m.Admin, resp.Status, bytes.TrimSpace(b))
			}
			resp.Body.Close()
		}
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		pushed++
	}
	return pushed, firstErr
}

// ApplyMembership installs a new member set: bumps the fleet epoch and
// pushes the resulting FleetConfig through the union of old and new
// members (departing members relay the config to their exporters too,
// when still reachable).
func (a *Aggregator) ApplyMembership(members []AggMember) (*wire.FleetConfig, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet config needs at least one member")
	}
	for _, m := range members {
		if m.Addr == "" || m.Admin == "" {
			return nil, fmt.Errorf("member needs both addr and admin URL: %+v", m)
		}
		if m.Weight < 0 || math.IsNaN(m.Weight) || math.IsInf(m.Weight, 0) {
			return nil, fmt.Errorf("member %s: invalid weight %v", m.Addr, m.Weight)
		}
	}
	a.mu.Lock()
	old := a.members
	a.epoch++
	fc := &wire.FleetConfig{Epoch: a.epoch}
	for _, m := range members {
		// The wire carries weight as fixed-point millis so fractional
		// capacities survive the trip (0 means the default weight 1.0);
		// any positive weight rounds to at least one milli-unit.
		w := uint64(math.Round(m.Weight * 1000))
		if m.Weight > 0 && w == 0 {
			w = 1
		}
		fc.Members = append(fc.Members, wire.FleetMember{Addr: m.Addr, Weight: w})
	}
	a.members = append([]AggMember(nil), members...)
	a.mu.Unlock()

	union := append([]AggMember(nil), members...)
	have := map[string]bool{}
	for _, m := range members {
		have[m.Admin] = true
	}
	for _, m := range old {
		if !have[m.Admin] {
			union = append(union, m)
		}
	}
	pushed, err := a.pushFleetConfig(union, fc)
	if pushed > 0 {
		// Convergence only needs one relay; partial push is a warning,
		// not a failure.
		err = nil
	}
	return fc, err
}

// lifecycleOp forwards one property-lifecycle operation to every
// member's local-apply endpoint in member order, under the lifecycle
// lock — the single fleet-wide serialization point that keeps every
// collector's epoch sequence identical.
func (a *Aggregator) lifecycleOp(do func(m AggMember) error) error {
	a.mu.Lock()
	members := append([]AggMember(nil), a.members...)
	a.mu.Unlock()
	var firstErr error
	applied := 0
	for _, m := range members {
		if err := do(m); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", m.Addr, err)
			}
			continue
		}
		applied++
	}
	if firstErr != nil {
		return fmt.Errorf("applied on %d/%d members, first error: %w", applied, len(members), firstErr)
	}
	return nil
}

// InstallProperty applies the DSL source on every member, serialized.
func (a *Aggregator) InstallProperty(src, tenant string) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	return a.lifecycleOp(func(m AggMember) error {
		u := strings.TrimRight(m.Admin, "/") + "/fleet/properties"
		if tenant != "" {
			u += "?tenant=" + url.QueryEscape(tenant)
		}
		resp, err := a.client.Post(u, "text/plain", strings.NewReader(src))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
		}
		return nil
	})
}

// RemoveProperty removes the named property on every member, serialized.
func (a *Aggregator) RemoveProperty(name string) error {
	a.opMu.Lock()
	defer a.opMu.Unlock()
	return a.lifecycleOp(func(m AggMember) error {
		u := strings.TrimRight(m.Admin, "/") + "/fleet/properties?name=" + url.QueryEscape(name)
		req, err := http.NewRequest(http.MethodDelete, u, nil)
		if err != nil {
			return err
		}
		resp, err := a.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
		}
		return nil
	})
}

// Mux serves the fleet-wide endpoints:
//
//	/metrics     member registries merged (summed) under the
//	             switchmon_fleet_* namespace, plus fleet gauges
//	/healthz     "ok" iff every member is reachable and sound; else a
//	             JSON degradation report with per-member detail
//	/state       per-member state-cost reports, keyed by member
//	/violations  per-member violation dumps, keyed by member;
//	             ?since/?limit forward to every member, and repeated
//	             ?cursor=<addr>=<seq> params override since per member
//	             so a poller can resume each member's stream where it
//	             left off
//	/query       fleet metrics history (when AttachSelfMonitor wired a
//	             history ring; see export.HistoryHandler)
//	/alerts      fleet SLO rule status (when AttachSelfMonitor wired an
//	             alert engine; see export.AlertsHandler)
//	/properties  GET: per-member property sets plus a converged flag;
//	             POST/DELETE: the op applied on every member in one
//	             fleet-wide serialized order
//	/fleet       GET: current membership and epoch; POST: install a new
//	             member set and push the FleetConfig fleet-wide
//
// Errors answer the admin surface's uniform {"error": "..."} JSON shape.
func (a *Aggregator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		merged := a.FleetSnapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = export.WriteJSON(w, merged)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = export.PromText(w, merged)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		docs := a.collectJSON("/healthz")
		healthy := true
		for _, d := range docs {
			if d.Error != "" || string(d.Doc) != `"ok"` {
				healthy = false
				break
			}
		}
		var firing []slo.ActiveAlert
		if a.alerts != nil {
			firing = a.alerts.Degraded()
		}
		if healthy && len(firing) == 0 {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Status  string            `json:"status"`
			Members []memberDoc       `json:"members"`
			Alerts  []slo.ActiveAlert `json:"alerts,omitempty"`
		}{Status: "degraded", Members: docs, Alerts: firing})
	})
	serveMembers := func(path string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			q := r.URL.Query()
			if v := q.Get("since"); v != "" {
				if _, err := strconv.ParseUint(v, 10, 64); err != nil {
					export.Errorf(w, http.StatusBadRequest, "bad since %q: want an unsigned sequence number", v)
					return
				}
			}
			if v := q.Get("limit"); v != "" {
				if n, err := strconv.Atoi(v); err != nil || n < 0 {
					export.Errorf(w, http.StatusBadRequest, "bad limit %q: want a non-negative integer", v)
					return
				}
			}
			// Per-member cursors: repeated ?cursor=<addr>=<seq> override
			// the global ?since for that member, so one poll can resume
			// every member's independent sequence space.
			cursors := map[string]string{}
			for _, c := range q["cursor"] {
				addr, seq, ok := strings.Cut(c, "=")
				if !ok {
					export.Errorf(w, http.StatusBadRequest, "bad cursor %q: want <addr>=<seq>", c)
					return
				}
				if _, err := strconv.ParseUint(seq, 10, 64); err != nil {
					export.Errorf(w, http.StatusBadRequest, "bad cursor %q: seq %q is not an unsigned integer", c, seq)
					return
				}
				cursors[addr] = seq
			}
			docs := a.collectJSONPer(func(m AggMember) string {
				vals := url.Values{}
				if v, ok := cursors[m.Addr]; ok {
					vals.Set("since", v)
				} else if v := q.Get("since"); v != "" {
					vals.Set("since", v)
				}
				if v := q.Get("limit"); v != "" {
					vals.Set("limit", v)
				}
				if len(vals) == 0 {
					return path
				}
				return path + "?" + vals.Encode()
			})
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Members []memberDoc `json:"members"`
			}{docs})
		}
	}
	mux.HandleFunc("/state", serveMembers("/state"))
	mux.HandleFunc("/violations", serveMembers("/violations"))
	if a.history != nil {
		mux.HandleFunc("/query", export.HistoryHandler(a.history))
	}
	if a.alerts != nil {
		mux.HandleFunc("/alerts", export.AlertsHandler(a.alerts))
	}
	mux.HandleFunc("/properties", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			docs := a.collectJSON("/properties")
			converged := len(docs) > 0
			for _, d := range docs {
				if d.Error != "" || !bytes.Equal(d.Doc, docs[0].Doc) {
					converged = false
				}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Converged bool        `json:"converged"`
				Members   []memberDoc `json:"members"`
			}{converged, docs})
		case http.MethodPost:
			src, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				export.Error(w, http.StatusBadRequest, err.Error())
				return
			}
			if err := a.InstallProperty(string(src), r.URL.Query().Get("tenant")); err != nil {
				export.Error(w, http.StatusBadRequest, err.Error())
				return
			}
			w.WriteHeader(http.StatusCreated)
			fmt.Fprintln(w, "installed fleet-wide")
		case http.MethodDelete:
			name := r.URL.Query().Get("name")
			if name == "" {
				export.Error(w, http.StatusBadRequest, "missing ?name=")
				return
			}
			if err := a.RemoveProperty(name); err != nil {
				export.Error(w, http.StatusNotFound, err.Error())
				return
			}
			fmt.Fprintln(w, "removed fleet-wide")
		default:
			export.Error(w, http.StatusMethodNotAllowed, "GET, POST or DELETE")
		}
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			a.mu.Lock()
			doc := struct {
				Epoch   uint64      `json:"epoch"`
				Members []AggMember `json:"members"`
			}{a.epoch, append([]AggMember(nil), a.members...)}
			a.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(doc)
		case http.MethodPost:
			var req struct {
				Members []AggMember `json:"members"`
			}
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
				export.Error(w, http.StatusBadRequest, err.Error())
				return
			}
			fc, err := a.ApplyMembership(req.Members)
			if err != nil {
				export.Error(w, http.StatusBadRequest, err.Error())
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(fc)
		default:
			export.Error(w, http.StatusMethodNotAllowed, "GET or POST")
		}
	})
	return mux
}
