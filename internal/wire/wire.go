// Package wire is the monitoring fabric's binary protocol: a versioned,
// length-prefixed frame codec connecting switch-side exporters
// (internal/exporter) to the central collector (internal/collector).
// The paper's scalability story (Sec. 3.3) runs monitoring adjacent to
// the switch and ships events to where the property state lives; this
// package is the ship.
//
// A connection carries four frame types:
//
//	Hello     exporter → collector: protocol magic+version, the
//	          exporter's datapath id, and the sequence number of the
//	          next event it will send (its resume point).
//	HelloAck  collector → exporter: the last event sequence number the
//	          collector has applied for that datapath, so a reconnecting
//	          exporter can drop already-delivered batches and replay
//	          only the unacknowledged tail (the collector deduplicates
//	          any overlap).
//	Batch     exporter → collector: a run of sequence-contiguous events
//	          starting at FirstSeq. Gaps between consecutive batches are
//	          loss, and the collector marks them in the soundness
//	          ledger; overlap is replay, and the collector skips it.
//	Ack       collector → exporter: cumulative acknowledgment of the
//	          highest contiguous event sequence applied.
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload, whose first byte is the frame type. Integers inside payloads
// are varints, timestamps are zigzag-encoded UnixNano, and packets ride
// as length-prefixed frames serialized by the packet codec. Encoding is
// append-style and allocation-free once the destination buffer has
// capacity (packets serialize via packet.AppendEncode); decoding is
// strict — unknown frame types, unknown flag bits, truncated or
// trailing bytes, and oversized frames are all errors, so a confused
// peer fails fast instead of feeding garbage to the monitor.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/packet"
)

// Version is the protocol version carried in Hello/HelloAck frames. A
// version mismatch is a handshake error: the fabric has no cross-version
// compatibility story yet, and pretending otherwise would corrupt
// monitor state silently.
const Version uint16 = 1

// helloMagic guards against pointing an exporter at a non-collector
// port (or vice versa): the first four payload bytes of a Hello spell
// "SWMF" (switch monitor fabric).
const helloMagic uint32 = 0x53574d46

// MaxFrameLen bounds a frame payload (16 MiB). A length prefix beyond
// the bound is rejected before any allocation, so a garbage peer cannot
// make the reader allocate unbounded memory.
const MaxFrameLen = 1 << 24

// MaxBatchEvents bounds the event count declared by a batch header,
// again to cap what a hostile or corrupt declared count can allocate.
const MaxBatchEvents = 1 << 17

// FrameType discriminates frames on the wire.
type FrameType uint8

// Frame types.
const (
	// FrameHello opens a connection (exporter → collector).
	FrameHello FrameType = iota + 1
	// FrameHelloAck answers a Hello (collector → exporter).
	FrameHelloAck
	// FrameBatch carries sequence-contiguous events.
	FrameBatch
	// FrameAck acknowledges applied events cumulatively.
	FrameAck
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHelloAck:
		return "hello-ack"
	case FrameBatch:
		return "batch"
	case FrameAck:
		return "ack"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// Hello is the exporter's opening frame.
type Hello struct {
	// DPID is the datapath id of the switch this exporter speaks for.
	DPID uint64
	// NextSeq is the sequence number of the first event the exporter
	// will send on this connection (1 for a fresh exporter; the head of
	// its retained queue after a reconnect).
	NextSeq uint64
}

// HelloAck is the collector's handshake answer.
type HelloAck struct {
	// AckSeq is the highest contiguous event sequence the collector has
	// applied for the datapath (0 when it has seen nothing), the
	// exporter's replay trim point.
	AckSeq uint64
}

// Ack is the collector's cumulative acknowledgment.
type Ack struct {
	// AckSeq is the highest contiguous event sequence applied.
	AckSeq uint64
}

// Batch is a run of events with consecutive sequence numbers: event i
// carries sequence FirstSeq+i. An empty batch is a sequence-advance
// marker: "I will never send anything below FirstSeq" — how an exporter
// makes a loss at the tail of its stream (shed or NoteLoss with nothing
// following) detectable, since a gap is otherwise only visible once a
// later batch arrives.
type Batch struct {
	FirstSeq uint64
	Events   []core.Event
}

// LastSeq is the sequence number of the batch's final event. For an
// empty (sequence-advance) batch it is FirstSeq-1 — the arithmetic that
// makes a marker retire from the retransmit queue as soon as the
// collector's cumulative ack reaches the seq before the gap.
func (b *Batch) LastSeq() uint64 { return b.FirstSeq + uint64(len(b.Events)) - 1 }

// Event flag bits.
const (
	flagDropped   = 1 << 0
	flagMulticast = 1 << 1
	flagHasPacket = 1 << 2
	flagsKnown    = flagDropped | flagMulticast | flagHasPacket
)

// beginFrame reserves the 4-byte length prefix and appends the type
// byte, returning the offset endFrame patches.
func beginFrame(buf []byte, t FrameType) ([]byte, int) {
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0, byte(t))
	return buf, lenAt
}

// endFrame patches the length prefix reserved by beginFrame.
func endFrame(buf []byte, lenAt int) ([]byte, error) {
	n := len(buf) - lenAt - 4
	if n > MaxFrameLen {
		return nil, fmt.Errorf("wire: frame payload %d exceeds MaxFrameLen %d", n, MaxFrameLen)
	}
	binary.BigEndian.PutUint32(buf[lenAt:lenAt+4], uint32(n))
	return buf, nil
}

// AppendHello appends an encoded Hello frame to buf.
func AppendHello(buf []byte, h Hello) []byte {
	buf, lenAt := beginFrame(buf, FrameHello)
	buf = binary.BigEndian.AppendUint32(buf, helloMagic)
	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = binary.AppendUvarint(buf, h.DPID)
	buf = binary.AppendUvarint(buf, h.NextSeq)
	buf, _ = endFrame(buf, lenAt) // fixed-size payload, cannot overflow
	return buf
}

// AppendHelloAck appends an encoded HelloAck frame to buf.
func AppendHelloAck(buf []byte, a HelloAck) []byte {
	buf, lenAt := beginFrame(buf, FrameHelloAck)
	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = binary.AppendUvarint(buf, a.AckSeq)
	buf, _ = endFrame(buf, lenAt)
	return buf
}

// AppendAck appends an encoded Ack frame to buf.
func AppendAck(buf []byte, a Ack) []byte {
	buf, lenAt := beginFrame(buf, FrameAck)
	buf = binary.AppendUvarint(buf, a.AckSeq)
	buf, _ = endFrame(buf, lenAt)
	return buf
}

// AppendBatch appends an encoded Batch frame to buf. Events serialize
// in order; the only error source is a packet that cannot encode (or a
// frame overflowing MaxFrameLen), in which case buf's original content
// is still valid but the returned slice must be discarded.
func AppendBatch(buf []byte, b *Batch) ([]byte, error) {
	if len(b.Events) > MaxBatchEvents {
		return nil, fmt.Errorf("wire: batch of %d events exceeds MaxBatchEvents %d", len(b.Events), MaxBatchEvents)
	}
	buf, lenAt := beginFrame(buf, FrameBatch)
	buf = binary.AppendUvarint(buf, b.FirstSeq)
	buf = binary.AppendUvarint(buf, uint64(len(b.Events)))
	var err error
	for i := range b.Events {
		buf, err = appendEvent(buf, &b.Events[i])
		if err != nil {
			return nil, err
		}
	}
	return endFrame(buf, lenAt)
}

// appendEvent appends one event's encoding.
func appendEvent(buf []byte, e *core.Event) ([]byte, error) {
	buf = append(buf, byte(e.Kind))
	var flags byte
	if e.Dropped {
		flags |= flagDropped
	}
	if e.Multicast {
		flags |= flagMulticast
	}
	if e.Packet != nil {
		flags |= flagHasPacket
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, e.Time.UnixNano())
	buf = binary.AppendUvarint(buf, e.SwitchID)
	buf = binary.AppendUvarint(buf, uint64(e.PacketID))
	buf = binary.AppendUvarint(buf, e.InPort)
	buf = binary.AppendUvarint(buf, e.OutPort)
	buf = binary.AppendUvarint(buf, uint64(e.OOBKind))
	buf = binary.AppendUvarint(buf, e.OOBPort)
	if e.Packet == nil {
		return buf, nil
	}
	// Length-prefix the packet: reserve a fixed-width 4-byte length so
	// the packet can serialize straight into buf and the prefix be
	// patched afterwards (a varint prefix would need the length first,
	// forcing a separate packet buffer and a copy).
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf, err := e.Packet.AppendEncode(buf)
	if err != nil {
		return nil, fmt.Errorf("wire: encode packet: %w", err)
	}
	binary.BigEndian.PutUint32(buf[lenAt:lenAt+4], uint32(len(buf)-lenAt-4))
	return buf, nil
}

// EncodeFrame renders any frame value (Hello, HelloAck, Ack, *Batch) to
// a fresh buffer — the convenience path for handshakes and tests; hot
// paths use the Append functions with a reusable buffer.
func EncodeFrame(frame any) ([]byte, error) {
	switch f := frame.(type) {
	case Hello:
		return AppendHello(nil, f), nil
	case *Hello:
		return AppendHello(nil, *f), nil
	case HelloAck:
		return AppendHelloAck(nil, f), nil
	case *HelloAck:
		return AppendHelloAck(nil, *f), nil
	case Ack:
		return AppendAck(nil, f), nil
	case *Ack:
		return AppendAck(nil, *f), nil
	case *Batch:
		return AppendBatch(nil, f)
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", frame)
	}
}

// cursor walks a frame payload with strict varint reads.
type cursor struct {
	data []byte
	off  int
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

func (c *cursor) byte() (byte, error) {
	if c.off >= len(c.data) {
		return 0, fmt.Errorf("wire: truncated frame")
	}
	b := c.data[c.off]
	c.off++
	return b, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint")
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint")
	}
	c.off += n
	return v, nil
}

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, fmt.Errorf("wire: truncated frame (want %d bytes, have %d)", n, c.remaining())
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *cursor) u16() (uint16, error) {
	b, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// DecodeFrame decodes the first complete frame in data, returning the
// typed frame (Hello, HelloAck, Ack, or *Batch) and the total bytes
// consumed including the length prefix. io.ErrUnexpectedEOF means data
// holds only part of a frame — read more and retry.
func DecodeFrame(data []byte) (any, int, error) {
	if len(data) < 4 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(data[:4])
	if n > MaxFrameLen {
		return nil, 0, fmt.Errorf("wire: frame length %d exceeds MaxFrameLen %d", n, MaxFrameLen)
	}
	if len(data) < 4+int(n) {
		return nil, 0, io.ErrUnexpectedEOF
	}
	frame, err := decodePayload(data[4 : 4+int(n)])
	if err != nil {
		return nil, 0, err
	}
	return frame, 4 + int(n), nil
}

// decodePayload decodes one frame payload (type byte onward). The whole
// payload must be consumed: trailing bytes are an error, keeping the
// encoding canonical for the round-trip fuzz target.
func decodePayload(payload []byte) (any, error) {
	c := &cursor{data: payload}
	tb, err := c.byte()
	if err != nil {
		return nil, fmt.Errorf("wire: empty frame payload")
	}
	var frame any
	switch FrameType(tb) {
	case FrameHello:
		frame, err = decodeHello(c)
	case FrameHelloAck:
		frame, err = decodeHelloAck(c)
	case FrameBatch:
		frame, err = decodeBatch(c)
	case FrameAck:
		var seq uint64
		if seq, err = c.uvarint(); err == nil {
			frame = Ack{AckSeq: seq}
		}
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", tb)
	}
	if err != nil {
		return nil, err
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %s frame", c.remaining(), FrameType(tb))
	}
	return frame, nil
}

func decodeHello(c *cursor) (Hello, error) {
	magic, err := c.u32()
	if err != nil {
		return Hello{}, err
	}
	if magic != helloMagic {
		return Hello{}, fmt.Errorf("wire: bad hello magic %08x (peer is not a monitoring exporter?)", magic)
	}
	ver, err := c.u16()
	if err != nil {
		return Hello{}, err
	}
	if ver != Version {
		return Hello{}, fmt.Errorf("wire: protocol version %d, want %d", ver, Version)
	}
	var h Hello
	if h.DPID, err = c.uvarint(); err != nil {
		return Hello{}, err
	}
	if h.NextSeq, err = c.uvarint(); err != nil {
		return Hello{}, err
	}
	return h, nil
}

func decodeHelloAck(c *cursor) (HelloAck, error) {
	ver, err := c.u16()
	if err != nil {
		return HelloAck{}, err
	}
	if ver != Version {
		return HelloAck{}, fmt.Errorf("wire: protocol version %d, want %d", ver, Version)
	}
	var a HelloAck
	if a.AckSeq, err = c.uvarint(); err != nil {
		return HelloAck{}, err
	}
	return a, nil
}

func decodeBatch(c *cursor) (*Batch, error) {
	b := &Batch{}
	var err error
	if b.FirstSeq, err = c.uvarint(); err != nil {
		return nil, err
	}
	count, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return b, nil // sequence-advance marker
	}
	if count > MaxBatchEvents {
		return nil, fmt.Errorf("wire: batch declares %d events, max %d", count, MaxBatchEvents)
	}
	// Sanity-bound the allocation by the bytes actually present: even a
	// packetless event costs at least 9 payload bytes.
	if int(count) > c.remaining() {
		return nil, fmt.Errorf("wire: batch declares %d events in %d bytes", count, c.remaining())
	}
	b.Events = make([]core.Event, count)
	for i := range b.Events {
		if err := decodeEvent(c, &b.Events[i]); err != nil {
			return nil, fmt.Errorf("wire: event %d: %w", i, err)
		}
	}
	return b, nil
}

func decodeEvent(c *cursor, e *core.Event) error {
	kb, err := c.byte()
	if err != nil {
		return err
	}
	kind := core.EventKind(kb)
	switch kind {
	case core.KindArrival, core.KindEgress, core.KindOutOfBand:
	default:
		return fmt.Errorf("unknown event kind %d", kb)
	}
	e.Kind = kind
	flags, err := c.byte()
	if err != nil {
		return err
	}
	if flags&^byte(flagsKnown) != 0 {
		return fmt.Errorf("unknown event flags %02x", flags)
	}
	if kind != core.KindEgress && flags&(flagDropped|flagMulticast) != 0 {
		return fmt.Errorf("dropped/multicast flags on a %s event", kind)
	}
	e.Dropped = flags&flagDropped != 0
	e.Multicast = flags&flagMulticast != 0
	nanos, err := c.varint()
	if err != nil {
		return err
	}
	e.Time = time.Unix(0, nanos)
	if e.SwitchID, err = c.uvarint(); err != nil {
		return err
	}
	pid, err := c.uvarint()
	if err != nil {
		return err
	}
	e.PacketID = core.PacketID(pid)
	if e.InPort, err = c.uvarint(); err != nil {
		return err
	}
	if e.OutPort, err = c.uvarint(); err != nil {
		return err
	}
	oobKind, err := c.uvarint()
	if err != nil {
		return err
	}
	e.OOBKind = packet.OOBKind(oobKind)
	if e.OOBPort, err = c.uvarint(); err != nil {
		return err
	}
	if flags&flagHasPacket == 0 {
		return nil
	}
	pktLen, err := c.u32()
	if err != nil {
		return err
	}
	raw, err := c.take(int(pktLen))
	if err != nil {
		return err
	}
	pkt, err := packet.Decode(raw)
	if err != nil {
		return fmt.Errorf("embedded packet: %w", err)
	}
	e.Packet = pkt
	return nil
}

// Reader decodes a frame stream from an io.Reader, reusing one buffer
// across frames (the returned frames own their data — event slices and
// packets are freshly decoded — so the buffer reuse is invisible to
// callers).
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads and decodes the next frame. It returns io.EOF cleanly only
// on a frame boundary; a connection cut mid-frame is
// io.ErrUnexpectedEOF.
func (r *Reader) Next() (any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, err // io.EOF on a clean boundary
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameLen {
		return nil, fmt.Errorf("wire: frame length %d exceeds MaxFrameLen %d", n, MaxFrameLen)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return decodePayload(r.buf)
}
