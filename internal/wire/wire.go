// Package wire is the monitoring fabric's binary protocol: a versioned,
// length-prefixed frame codec connecting switch-side exporters
// (internal/exporter) to the central collector (internal/collector).
// The paper's scalability story (Sec. 3.3) runs monitoring adjacent to
// the switch and ships events to where the property state lives; this
// package is the ship.
//
// A connection carries five frame types:
//
//	Hello        exporter → collector: protocol magic+version, the
//	             exporter's datapath id, and the sequence number of the
//	             next event it will send (its resume point). Version 2
//	             hellos also carry a feature bitmap and a send
//	             timestamp (the first clock sample).
//	HelloAck     collector → exporter: the last event sequence number
//	             the collector has applied for that datapath, so a
//	             reconnecting exporter can drop already-delivered
//	             batches and replay only the unacknowledged tail (the
//	             collector deduplicates any overlap). Version 2 acks
//	             echo the negotiated version and features plus
//	             receive/reply timestamps, completing an NTP-style
//	             clock-offset sample.
//	Batch        exporter → collector: a run of sequence-contiguous
//	             events starting at FirstSeq. Gaps between consecutive
//	             batches are loss, and the collector marks them in the
//	             soundness ledger; overlap is replay, and the collector
//	             skips it.
//	TracedBatch  a Batch followed by a trace block: the clock-offset
//	             estimate and, per sampled event, the span key and the
//	             switch-side stage marks (version 2 connections with
//	             FeatureTrace negotiated only).
//	Ack          collector → exporter: cumulative acknowledgment of the
//	             highest contiguous event sequence applied, optionally
//	             timestamped for ongoing clock sampling.
//
// Version negotiation is one round: the exporter offers its version and
// features in Hello, the collector answers with min(offered, own) and
// the feature intersection, and both sides speak the result. A version
// 1 peer simply omits the new fields and never sees a TracedBatch.
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload, whose first byte is the frame type. Integers inside payloads
// are varints, timestamps are zigzag-encoded UnixNano, and packets ride
// as length-prefixed frames serialized by the packet codec. Encoding is
// append-style and allocation-free once the destination buffer has
// capacity (packets serialize via packet.AppendEncode); decoding is
// strict — unknown frame types, unknown flag bits, truncated or
// trailing bytes, and oversized frames are all errors, so a confused
// peer fails fast instead of feeding garbage to the monitor.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"switchmon/internal/core"
	"switchmon/internal/obs/tracer"
	"switchmon/internal/packet"
)

// Version is the highest protocol version this build speaks; MinVersion
// the lowest it still accepts. A version outside the window is a
// handshake error — within it, the two sides settle on the minimum of
// their offers, so mixed fleets interoperate without corrupting monitor
// state silently.
const (
	Version    uint16 = 2
	MinVersion uint16 = 1
)

// Feature bits offered in a version ≥ 2 Hello and answered (ANDed) in
// the HelloAck. Unknown bits are ignored, never rejected: a future peer
// offering more simply gets this build's subset back.
const (
	// FeatureTrace enables TracedBatch frames and timestamped Acks on
	// the connection.
	FeatureTrace uint64 = 1 << 0
	// FeatureLifecycle enables PropertySetUpdate/PropertySetAck frames:
	// the collector pushes its live property set (epoch-stamped) at
	// handshake and on every change, and the exporter acknowledges the
	// epoch it has applied — how the fabric converges on one property
	// set under hot install/remove.
	FeatureLifecycle uint64 = 1 << 1
	// FeatureFleet enables FleetConfig/FleetConfigAck frames: the
	// collector pushes the fleet membership (epoch-stamped collector
	// endpoints with routing weights) at handshake and on every change,
	// and a federated exporter acknowledges each epoch after it has
	// re-routed — how collector join/leave reaches every switch.
	FeatureFleet uint64 = 1 << 2
)

// helloMagic guards against pointing an exporter at a non-collector
// port (or vice versa): the first four payload bytes of a Hello spell
// "SWMF" (switch monitor fabric).
const helloMagic uint32 = 0x53574d46

// MaxFrameLen bounds a frame payload (16 MiB). A length prefix beyond
// the bound is rejected before any allocation, so a garbage peer cannot
// make the reader allocate unbounded memory.
const MaxFrameLen = 1 << 24

// MaxBatchEvents bounds the event count declared by a batch header,
// again to cap what a hostile or corrupt declared count can allocate.
const MaxBatchEvents = 1 << 17

// FrameType discriminates frames on the wire.
type FrameType uint8

// Frame types.
const (
	// FrameHello opens a connection (exporter → collector).
	FrameHello FrameType = iota + 1
	// FrameHelloAck answers a Hello (collector → exporter).
	FrameHelloAck
	// FrameBatch carries sequence-contiguous events.
	FrameBatch
	// FrameAck acknowledges applied events cumulatively.
	FrameAck
	// FrameTracedBatch is a Batch with a trailing trace block (version
	// ≥ 2 connections with FeatureTrace negotiated).
	FrameTracedBatch
	// FramePropertySetUpdate carries the collector's live property set
	// (collector → exporter; FeatureLifecycle connections only).
	FramePropertySetUpdate
	// FramePropertySetAck acknowledges an applied property-set epoch
	// (exporter → collector; FeatureLifecycle connections only).
	FramePropertySetAck
	// FrameFleetConfig carries the fleet membership (collector →
	// exporter; FeatureFleet connections only).
	FrameFleetConfig
	// FrameFleetConfigAck acknowledges an applied fleet-config epoch
	// (exporter → collector; FeatureFleet connections only).
	FrameFleetConfigAck
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameHelloAck:
		return "hello-ack"
	case FrameBatch:
		return "batch"
	case FrameAck:
		return "ack"
	case FrameTracedBatch:
		return "traced-batch"
	case FramePropertySetUpdate:
		return "property-set-update"
	case FramePropertySetAck:
		return "property-set-ack"
	case FrameFleetConfig:
		return "fleet-config"
	case FrameFleetConfigAck:
		return "fleet-config-ack"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// Hello is the exporter's opening frame.
type Hello struct {
	// DPID is the datapath id of the switch this exporter speaks for.
	DPID uint64
	// NextSeq is the sequence number of the first event the exporter
	// will send on this connection (1 for a fresh exporter; the head of
	// its retained queue after a reconnect).
	NextSeq uint64
	// Version is the protocol version offered (0 encodes as Version —
	// the current build's maximum). Decode fills the version actually
	// on the wire.
	Version uint16
	// Features is the feature bitmap offered (version ≥ 2 only).
	Features uint64
	// SentNs is the sender's clock when the Hello was built, the T1 of
	// the handshake's clock-offset sample (version ≥ 2 only).
	SentNs int64
}

// HelloAck is the collector's handshake answer.
type HelloAck struct {
	// AckSeq is the highest contiguous event sequence the collector has
	// applied for the datapath (0 when it has seen nothing), the
	// exporter's replay trim point.
	AckSeq uint64
	// Version is the negotiated protocol version: min(offered, own).
	// 0 encodes as the current build's Version.
	Version uint16
	// Features is the negotiated feature intersection (version ≥ 2).
	Features uint64
	// RecvNs and SentNs are the collector's clock when the Hello
	// arrived (T2) and when this answer was built (T3) — with the
	// exporter's T1/T4 they complete one NTP-style offset sample
	// (version ≥ 2 only).
	RecvNs int64
	SentNs int64
}

// Ack is the collector's cumulative acknowledgment.
type Ack struct {
	// AckSeq is the highest contiguous event sequence applied.
	AckSeq uint64
	// SentNs, when nonzero, is the collector's clock when the Ack was
	// built — an ongoing clock sample for the exporter's offset
	// estimator. Zero is never encoded (a v1 Ack simply ends after
	// AckSeq), which keeps the encoding canonical.
	SentNs int64
}

// PropMeta is one property's identity inside a PropertySetUpdate.
type PropMeta struct {
	// Name is the property's slug.
	Name string
	// Tenant is the owning tenant for quota accounting ("" = default).
	Tenant string
}

// PropertySetUpdate is the collector's live property set: pushed at
// handshake and after every install/remove/replace so co-located
// exporter-side engines (and dashboards reading the exporter) converge
// on the same set. FeatureLifecycle connections only.
type PropertySetUpdate struct {
	// Epoch is the collector engine's lifecycle generation for this set;
	// acknowledgments echo it, and a stale update (lower epoch than one
	// already applied) is ignored by receivers.
	Epoch uint64
	// Props lists the installed properties in slot order.
	Props []PropMeta
	// Source is the set's DSL source (the concatenated property blocks),
	// enough for the receiver to compile the same set. Empty when the
	// collector chooses to ship identities only.
	Source string
}

// PropertySetAck acknowledges that the exporter has applied the
// property set of the given epoch.
type PropertySetAck struct {
	Epoch uint64
}

// FleetMember is one collector endpoint inside a FleetConfig. Weight
// is a relative routing capacity in fixed-point milli-units (1000 =
// weight 1.0), so fractional capacities survive the wire; the wire
// layer passes it through verbatim (the federation layer treats 0 as
// the default weight 1.0).
type FleetMember struct {
	Addr   string
	Weight uint64
}

// FleetConfig is the fleet membership: pushed by a collector on
// FeatureFleet connections at handshake and whenever the fleet
// changes, so every federated exporter re-derives the same consistent-
// hash ring. FeatureFleet connections only.
type FleetConfig struct {
	// Epoch is the fleet configuration generation; acknowledgments echo
	// it, and a stale config (epoch at or below one already applied) is
	// ignored by receivers.
	Epoch uint64
	// Members lists the collector endpoints in the fleet.
	Members []FleetMember
}

// FleetConfigAck acknowledges that the exporter has finished re-
// routing onto the fleet config of the given epoch (drain fence
// complete — in-flight batches for moved partitions settled).
type FleetConfigAck struct {
	Epoch uint64
}

// Batch is a run of events with consecutive sequence numbers: event i
// carries sequence FirstSeq+i. An empty batch is a sequence-advance
// marker: "I will never send anything below FirstSeq" — how an exporter
// makes a loss at the tail of its stream (shed or NoteLoss with nothing
// following) detectable, since a gap is otherwise only visible once a
// later batch arrives.
type Batch struct {
	FirstSeq uint64
	Events   []core.Event

	// Traced selects the TracedBatch encoding: the batch carries a
	// trace block with the clock-offset estimate and the switch-side
	// stage marks of every sampled event. Only version ≥ 2 connections
	// with FeatureTrace negotiated may set it.
	Traced bool
	// ClockOffsetNs/ClockDispNs are the sender's estimate of
	// (collector clock − switch clock) and its dispersion, shipped so
	// the collector can align the remote marks without re-deriving the
	// estimate (Traced batches only).
	ClockOffsetNs int64
	ClockDispNs   int64

	// arena is the pooled backing store this batch decoded into (pooled
	// Readers only; nil for batches that own their storage).
	arena *batchArena
}

// batchArena is the pooled backing store for one decoded batch: the
// Batch header itself, the event slab, and the packet arena its
// embedded packets decode into. One pool Get covers the whole batch —
// header included — which is what keeps the collector's ingest path
// allocation-free per event and per frame.
type batchArena struct {
	b   Batch
	evs []core.Event
	pkt packet.Arena
	// release is the one bound closure for this arena's lifetime, handed
	// to borrowers via ReleaseFunc; building `b.Release` per batch would
	// allocate a method-value closure on every frame.
	release func()
}

var batchArenaPool sync.Pool

func init() {
	// Not a composite-literal New: the closure references (*Batch).Release,
	// which references the pool — an initialization cycle at package level.
	batchArenaPool.New = func() any {
		ba := new(batchArena)
		ba.release = ba.b.Release
		return ba
	}
}

// take returns the arena's event slab resized and zeroed for n events.
// Zeroing matters: the slab is reused across batches, and a stale
// Trace or Packet pointer surviving into a new event would alias freed
// state.
func (ba *batchArena) take(n int) []core.Event {
	if cap(ba.evs) < n {
		ba.evs = make([]core.Event, n)
	}
	ba.evs = ba.evs[:n]
	clear(ba.evs)
	return ba.evs
}

// Release returns a pooled batch's backing store for reuse. It is a
// no-op for batches that own their storage (DecodeFrame, a plain
// NewReader, exporter-built batches), so callers can invoke it
// unconditionally. After Release, the batch's Events — and every
// packet they reference — must not be touched.
func (b *Batch) Release() {
	ba := b.arena
	if ba == nil {
		return
	}
	b.arena = nil
	b.Events = nil
	ba.pkt.Reset()
	batchArenaPool.Put(ba)
}

// ReleaseFunc returns the batch's release callback without allocating:
// pooled batches reuse a closure bound once per arena, owned batches
// return nil (there is nothing to recycle, and a nil release tells
// borrow-based sinks the events are theirs to keep).
func (b *Batch) ReleaseFunc() func() {
	if b.arena == nil {
		return nil
	}
	return b.arena.release
}

// LastSeq is the sequence number of the batch's final event. For an
// empty (sequence-advance) batch it is FirstSeq-1 — the arithmetic that
// makes a marker retire from the retransmit queue as soon as the
// collector's cumulative ack reaches the seq before the gap.
func (b *Batch) LastSeq() uint64 { return b.FirstSeq + uint64(len(b.Events)) - 1 }

// Event flag bits.
const (
	flagDropped   = 1 << 0
	flagMulticast = 1 << 1
	flagHasPacket = 1 << 2
	flagsKnown    = flagDropped | flagMulticast | flagHasPacket
)

// beginFrame reserves the 4-byte length prefix and appends the type
// byte, returning the offset endFrame patches.
func beginFrame(buf []byte, t FrameType) ([]byte, int) {
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0, byte(t))
	return buf, lenAt
}

// endFrame patches the length prefix reserved by beginFrame.
func endFrame(buf []byte, lenAt int) ([]byte, error) {
	n := len(buf) - lenAt - 4
	if n > MaxFrameLen {
		return nil, fmt.Errorf("wire: frame payload %d exceeds MaxFrameLen %d", n, MaxFrameLen)
	}
	binary.BigEndian.PutUint32(buf[lenAt:lenAt+4], uint32(n))
	return buf, nil
}

// AppendHello appends an encoded Hello frame to buf. A zero Version
// encodes as the current build's Version; version 1 omits the feature
// and timestamp fields.
func AppendHello(buf []byte, h Hello) []byte {
	ver := h.Version
	if ver == 0 {
		ver = Version
	}
	buf, lenAt := beginFrame(buf, FrameHello)
	buf = binary.BigEndian.AppendUint32(buf, helloMagic)
	buf = binary.BigEndian.AppendUint16(buf, ver)
	buf = binary.AppendUvarint(buf, h.DPID)
	buf = binary.AppendUvarint(buf, h.NextSeq)
	if ver >= 2 {
		buf = binary.AppendUvarint(buf, h.Features)
		buf = binary.AppendVarint(buf, h.SentNs)
	}
	buf, _ = endFrame(buf, lenAt) // fixed-size payload, cannot overflow
	return buf
}

// AppendHelloAck appends an encoded HelloAck frame to buf. A zero
// Version encodes as the current build's Version.
func AppendHelloAck(buf []byte, a HelloAck) []byte {
	ver := a.Version
	if ver == 0 {
		ver = Version
	}
	buf, lenAt := beginFrame(buf, FrameHelloAck)
	buf = binary.BigEndian.AppendUint16(buf, ver)
	buf = binary.AppendUvarint(buf, a.AckSeq)
	if ver >= 2 {
		buf = binary.AppendUvarint(buf, a.Features)
		buf = binary.AppendVarint(buf, a.RecvNs)
		buf = binary.AppendVarint(buf, a.SentNs)
	}
	buf, _ = endFrame(buf, lenAt)
	return buf
}

// AppendAck appends an encoded Ack frame to buf. The timestamp rides
// only when nonzero, so v1 receivers (which reject trailing bytes)
// are only ever sent untimed Acks by a correct peer.
func AppendAck(buf []byte, a Ack) []byte {
	buf, lenAt := beginFrame(buf, FrameAck)
	buf = binary.AppendUvarint(buf, a.AckSeq)
	if a.SentNs != 0 {
		buf = binary.AppendVarint(buf, a.SentNs)
	}
	buf, _ = endFrame(buf, lenAt)
	return buf
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendPropertySetUpdate appends an encoded PropertySetUpdate frame.
// The only error source is a frame overflowing MaxFrameLen (a huge
// Source).
func AppendPropertySetUpdate(buf []byte, u *PropertySetUpdate) ([]byte, error) {
	buf, lenAt := beginFrame(buf, FramePropertySetUpdate)
	buf = binary.AppendUvarint(buf, u.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(u.Props)))
	for i := range u.Props {
		buf = appendString(buf, u.Props[i].Name)
		buf = appendString(buf, u.Props[i].Tenant)
	}
	buf = appendString(buf, u.Source)
	return endFrame(buf, lenAt)
}

// AppendPropertySetAck appends an encoded PropertySetAck frame.
func AppendPropertySetAck(buf []byte, a PropertySetAck) []byte {
	buf, lenAt := beginFrame(buf, FramePropertySetAck)
	buf = binary.AppendUvarint(buf, a.Epoch)
	buf, _ = endFrame(buf, lenAt)
	return buf
}

// AppendFleetConfig appends an encoded FleetConfig frame. The only
// error source is a frame overflowing MaxFrameLen.
func AppendFleetConfig(buf []byte, fc *FleetConfig) ([]byte, error) {
	buf, lenAt := beginFrame(buf, FrameFleetConfig)
	buf = binary.AppendUvarint(buf, fc.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(fc.Members)))
	for i := range fc.Members {
		buf = appendString(buf, fc.Members[i].Addr)
		buf = binary.AppendUvarint(buf, fc.Members[i].Weight)
	}
	return endFrame(buf, lenAt)
}

// AppendFleetConfigAck appends an encoded FleetConfigAck frame.
func AppendFleetConfigAck(buf []byte, a FleetConfigAck) []byte {
	buf, lenAt := beginFrame(buf, FrameFleetConfigAck)
	buf = binary.AppendUvarint(buf, a.Epoch)
	buf, _ = endFrame(buf, lenAt)
	return buf
}

// AppendBatch appends an encoded Batch frame to buf. Events serialize
// in order; the only error source is a packet that cannot encode (or a
// frame overflowing MaxFrameLen), in which case buf's original content
// is still valid but the returned slice must be discarded.
func AppendBatch(buf []byte, b *Batch) ([]byte, error) {
	if len(b.Events) > MaxBatchEvents {
		return nil, fmt.Errorf("wire: batch of %d events exceeds MaxBatchEvents %d", len(b.Events), MaxBatchEvents)
	}
	ft := FrameBatch
	if b.Traced {
		ft = FrameTracedBatch
	}
	buf, lenAt := beginFrame(buf, ft)
	buf = binary.AppendUvarint(buf, b.FirstSeq)
	buf = binary.AppendUvarint(buf, uint64(len(b.Events)))
	var err error
	for i := range b.Events {
		buf, err = appendEvent(buf, &b.Events[i])
		if err != nil {
			return nil, err
		}
	}
	if b.Traced {
		buf = appendTraceBlock(buf, b)
	}
	return endFrame(buf, lenAt)
}

// appendTraceBlock appends the batch's trace block: the clock-offset
// estimate, then one entry per event carrying a span — its index, span
// key, switch-stage mask, and the marks for each set bit.
//
// Only SwitchStageMask bits are shipped: every switch-side stage is
// stamped before the send loop encodes the batch (and marks are
// write-once), so the masked view is stable even while a co-located
// engine keeps stamping the span's collector-side stages concurrently.
// That stability is what lets the two passes below (count, then emit)
// agree, and what makes a replayed batch re-encode the same block.
func appendTraceBlock(buf []byte, b *Batch) []byte {
	buf = binary.AppendVarint(buf, b.ClockOffsetNs)
	buf = binary.AppendUvarint(buf, uint64(b.ClockDispNs))
	cnt := 0
	for i := range b.Events {
		if b.Events[i].Trace.StageMask()&tracer.SwitchStageMask != 0 {
			cnt++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(cnt))
	for i := range b.Events {
		sp := b.Events[i].Trace
		mask := sp.StageMask() & tracer.SwitchStageMask
		if mask == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(i))
		buf = binary.BigEndian.AppendUint64(buf, sp.Key)
		buf = append(buf, mask)
		for st := tracer.Stage(0); st < tracer.NumStages; st++ {
			if mask&(1<<st) != 0 {
				buf = binary.AppendVarint(buf, sp.Mark(st))
			}
		}
	}
	return buf
}

// appendEvent appends one event's encoding.
func appendEvent(buf []byte, e *core.Event) ([]byte, error) {
	buf = append(buf, byte(e.Kind))
	var flags byte
	if e.Dropped {
		flags |= flagDropped
	}
	if e.Multicast {
		flags |= flagMulticast
	}
	if e.Packet != nil {
		flags |= flagHasPacket
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, e.Time.UnixNano())
	buf = binary.AppendUvarint(buf, e.SwitchID)
	buf = binary.AppendUvarint(buf, uint64(e.PacketID))
	buf = binary.AppendUvarint(buf, e.InPort)
	buf = binary.AppendUvarint(buf, e.OutPort)
	buf = binary.AppendUvarint(buf, uint64(e.OOBKind))
	buf = binary.AppendUvarint(buf, e.OOBPort)
	if e.Packet == nil {
		return buf, nil
	}
	// Length-prefix the packet: reserve a fixed-width 4-byte length so
	// the packet can serialize straight into buf and the prefix be
	// patched afterwards (a varint prefix would need the length first,
	// forcing a separate packet buffer and a copy).
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf, err := e.Packet.AppendEncode(buf)
	if err != nil {
		return nil, fmt.Errorf("wire: encode packet: %w", err)
	}
	binary.BigEndian.PutUint32(buf[lenAt:lenAt+4], uint32(len(buf)-lenAt-4))
	return buf, nil
}

// EncodeFrame renders any frame value (Hello, HelloAck, Ack, *Batch) to
// a fresh buffer — the convenience path for handshakes and tests; hot
// paths use the Append functions with a reusable buffer.
func EncodeFrame(frame any) ([]byte, error) {
	switch f := frame.(type) {
	case Hello:
		return AppendHello(nil, f), nil
	case *Hello:
		return AppendHello(nil, *f), nil
	case HelloAck:
		return AppendHelloAck(nil, f), nil
	case *HelloAck:
		return AppendHelloAck(nil, *f), nil
	case Ack:
		return AppendAck(nil, f), nil
	case *Ack:
		return AppendAck(nil, *f), nil
	case *Batch:
		return AppendBatch(nil, f)
	case PropertySetUpdate:
		return AppendPropertySetUpdate(nil, &f)
	case *PropertySetUpdate:
		return AppendPropertySetUpdate(nil, f)
	case PropertySetAck:
		return AppendPropertySetAck(nil, f), nil
	case *PropertySetAck:
		return AppendPropertySetAck(nil, *f), nil
	case FleetConfig:
		return AppendFleetConfig(nil, &f)
	case *FleetConfig:
		return AppendFleetConfig(nil, f)
	case FleetConfigAck:
		return AppendFleetConfigAck(nil, f), nil
	case *FleetConfigAck:
		return AppendFleetConfigAck(nil, *f), nil
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", frame)
	}
}

// cursor walks a frame payload with strict varint reads.
type cursor struct {
	data []byte
	off  int
}

func (c *cursor) remaining() int { return len(c.data) - c.off }

func (c *cursor) byte() (byte, error) {
	if c.off >= len(c.data) {
		return 0, fmt.Errorf("wire: truncated frame")
	}
	b := c.data[c.off]
	c.off++
	return b, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint")
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint")
	}
	c.off += n
	return v, nil
}

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, fmt.Errorf("wire: truncated frame (want %d bytes, have %d)", n, c.remaining())
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *cursor) u16() (uint16, error) {
	b, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// DecodeFrame decodes the first complete frame in data, returning the
// typed frame (Hello, HelloAck, Ack, or *Batch) and the total bytes
// consumed including the length prefix. io.ErrUnexpectedEOF means data
// holds only part of a frame — read more and retry.
func DecodeFrame(data []byte) (any, int, error) {
	if len(data) < 4 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	n := binary.BigEndian.Uint32(data[:4])
	if n > MaxFrameLen {
		return nil, 0, fmt.Errorf("wire: frame length %d exceeds MaxFrameLen %d", n, MaxFrameLen)
	}
	if len(data) < 4+int(n) {
		return nil, 0, io.ErrUnexpectedEOF
	}
	frame, err := decodePayload(data[4:4+int(n)], false)
	if err != nil {
		return nil, 0, err
	}
	return frame, 4 + int(n), nil
}

// decodePayload decodes one frame payload (type byte onward). The whole
// payload must be consumed: trailing bytes are an error, keeping the
// encoding canonical for the round-trip fuzz target. With pooled set,
// batch frames decode into pool-backed storage and must be Released by
// the caller.
func decodePayload(payload []byte, pooled bool) (any, error) {
	c := &cursor{data: payload}
	tb, err := c.byte()
	if err != nil {
		return nil, fmt.Errorf("wire: empty frame payload")
	}
	var frame any
	switch FrameType(tb) {
	case FrameHello:
		frame, err = decodeHello(c)
	case FrameHelloAck:
		frame, err = decodeHelloAck(c)
	case FrameBatch:
		frame, err = decodeBatch(c, false, pooled)
	case FrameTracedBatch:
		frame, err = decodeBatch(c, true, pooled)
	case FrameAck:
		frame, err = decodeAck(c)
	case FramePropertySetUpdate:
		frame, err = decodePropertySetUpdate(c)
	case FramePropertySetAck:
		frame, err = decodePropertySetAck(c)
	case FrameFleetConfig:
		frame, err = decodeFleetConfig(c)
	case FrameFleetConfigAck:
		frame, err = decodeFleetConfigAck(c)
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", tb)
	}
	if err != nil {
		return nil, err
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %s frame", c.remaining(), FrameType(tb))
	}
	return frame, nil
}

func decodeHello(c *cursor) (Hello, error) {
	magic, err := c.u32()
	if err != nil {
		return Hello{}, err
	}
	if magic != helloMagic {
		return Hello{}, fmt.Errorf("wire: bad hello magic %08x (peer is not a monitoring exporter?)", magic)
	}
	ver, err := c.u16()
	if err != nil {
		return Hello{}, err
	}
	if ver < MinVersion || ver > Version {
		return Hello{}, fmt.Errorf("wire: protocol version %d, want %d..%d", ver, MinVersion, Version)
	}
	h := Hello{Version: ver}
	if h.DPID, err = c.uvarint(); err != nil {
		return Hello{}, err
	}
	if h.NextSeq, err = c.uvarint(); err != nil {
		return Hello{}, err
	}
	if ver >= 2 {
		if h.Features, err = c.uvarint(); err != nil {
			return Hello{}, err
		}
		if h.SentNs, err = c.varint(); err != nil {
			return Hello{}, err
		}
	}
	return h, nil
}

func decodeHelloAck(c *cursor) (HelloAck, error) {
	ver, err := c.u16()
	if err != nil {
		return HelloAck{}, err
	}
	if ver < MinVersion || ver > Version {
		return HelloAck{}, fmt.Errorf("wire: protocol version %d, want %d..%d", ver, MinVersion, Version)
	}
	a := HelloAck{Version: ver}
	if a.AckSeq, err = c.uvarint(); err != nil {
		return HelloAck{}, err
	}
	if ver >= 2 {
		if a.Features, err = c.uvarint(); err != nil {
			return HelloAck{}, err
		}
		if a.RecvNs, err = c.varint(); err != nil {
			return HelloAck{}, err
		}
		if a.SentNs, err = c.varint(); err != nil {
			return HelloAck{}, err
		}
	}
	return a, nil
}

// decodeAck reads an Ack: the cumulative sequence, plus an optional
// trailing timestamp. A present timestamp must be nonzero — zero is
// "absent" and encoding it would make two byte strings decode to the
// same value, breaking the codec's canonical round trip.
func decodeAck(c *cursor) (Ack, error) {
	var a Ack
	var err error
	if a.AckSeq, err = c.uvarint(); err != nil {
		return Ack{}, err
	}
	if c.remaining() > 0 {
		if a.SentNs, err = c.varint(); err != nil {
			return Ack{}, err
		}
		if a.SentNs == 0 {
			return Ack{}, fmt.Errorf("wire: explicit zero ack timestamp")
		}
	}
	return a, nil
}

// str reads a uvarint-length-prefixed string, copying out of the frame
// buffer (the Reader reuses it across frames).
func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	b, err := c.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// maxPropertySetProps bounds the property count declared by a
// PropertySetUpdate header (matches the engines' 64-property routing
// masks with slack for future growth), capping what a corrupt count can
// allocate.
const maxPropertySetProps = 1 << 10

func decodePropertySetUpdate(c *cursor) (*PropertySetUpdate, error) {
	u := &PropertySetUpdate{}
	var err error
	if u.Epoch, err = c.uvarint(); err != nil {
		return nil, err
	}
	count, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxPropertySetProps {
		return nil, fmt.Errorf("wire: property set declares %d properties, max %d", count, maxPropertySetProps)
	}
	if count > 0 {
		if int(count) > c.remaining() {
			return nil, fmt.Errorf("wire: property set declares %d properties in %d bytes", count, c.remaining())
		}
		u.Props = make([]PropMeta, count)
		for i := range u.Props {
			if u.Props[i].Name, err = c.str(); err != nil {
				return nil, err
			}
			if u.Props[i].Tenant, err = c.str(); err != nil {
				return nil, err
			}
		}
	}
	if u.Source, err = c.str(); err != nil {
		return nil, err
	}
	return u, nil
}

func decodePropertySetAck(c *cursor) (PropertySetAck, error) {
	var a PropertySetAck
	var err error
	if a.Epoch, err = c.uvarint(); err != nil {
		return PropertySetAck{}, err
	}
	return a, nil
}

// maxFleetMembers bounds the member count a FleetConfig header may
// declare, capping what a corrupt count can allocate.
const maxFleetMembers = 1 << 10

func decodeFleetConfig(c *cursor) (*FleetConfig, error) {
	fc := &FleetConfig{}
	var err error
	if fc.Epoch, err = c.uvarint(); err != nil {
		return nil, err
	}
	count, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxFleetMembers {
		return nil, fmt.Errorf("wire: fleet config declares %d members, max %d", count, maxFleetMembers)
	}
	if count > 0 {
		if int(count) > c.remaining() {
			return nil, fmt.Errorf("wire: fleet config declares %d members in %d bytes", count, c.remaining())
		}
		fc.Members = make([]FleetMember, count)
		for i := range fc.Members {
			if fc.Members[i].Addr, err = c.str(); err != nil {
				return nil, err
			}
			if fc.Members[i].Weight, err = c.uvarint(); err != nil {
				return nil, err
			}
		}
	}
	return fc, nil
}

func decodeFleetConfigAck(c *cursor) (FleetConfigAck, error) {
	var a FleetConfigAck
	var err error
	if a.Epoch, err = c.uvarint(); err != nil {
		return FleetConfigAck{}, err
	}
	return a, nil
}

func decodeBatch(c *cursor, traced, pooled bool) (*Batch, error) {
	var b *Batch
	var ba *batchArena
	if pooled {
		// The header lives inside the arena too: decoding a pooled frame
		// performs zero heap allocations in steady state. The header is
		// recycled with the rest of the arena on Release.
		ba = batchArenaPool.Get().(*batchArena)
		b = &ba.b
		*b = Batch{Traced: traced, arena: ba}
	} else {
		b = &Batch{Traced: traced}
	}
	var err error
	if b.FirstSeq, err = c.uvarint(); err != nil {
		b.Release()
		return nil, err
	}
	count, err := c.uvarint()
	if err != nil {
		b.Release()
		return nil, err
	}
	if count > MaxBatchEvents {
		b.Release()
		return nil, fmt.Errorf("wire: batch declares %d events, max %d", count, MaxBatchEvents)
	}
	if count > 0 {
		// Sanity-bound the allocation by the bytes actually present:
		// even a packetless event costs at least 9 payload bytes.
		if int(count) > c.remaining() {
			b.Release()
			return nil, fmt.Errorf("wire: batch declares %d events in %d bytes", count, c.remaining())
		}
		var pa *packet.Arena
		if pooled {
			b.Events = ba.take(int(count))
			pa = &ba.pkt
		} else {
			b.Events = make([]core.Event, count)
		}
		for i := range b.Events {
			if err := decodeEvent(c, &b.Events[i], pa); err != nil {
				b.Release() // hand the arena back on the error path
				return nil, fmt.Errorf("wire: event %d: %w", i, err)
			}
		}
	}
	if traced {
		if err := decodeTraceBlock(c, b); err != nil {
			b.Release()
			return nil, err
		}
	}
	return b, nil
}

// decodeTraceBlock reads a TracedBatch's trailing trace block and
// materializes a span on each listed event, carrying the switch-side
// marks flagged as remote-clock. Strictness mirrors the rest of the
// codec: entry indexes must be in range and strictly ascending, stage
// masks nonzero and within SwitchStageMask, marks nonzero — every
// accepted block re-encodes byte-identically.
func decodeTraceBlock(c *cursor, b *Batch) error {
	var err error
	if b.ClockOffsetNs, err = c.varint(); err != nil {
		return err
	}
	disp, err := c.uvarint()
	if err != nil {
		return err
	}
	b.ClockDispNs = int64(disp)
	count, err := c.uvarint()
	if err != nil {
		return err
	}
	if count > uint64(len(b.Events)) {
		return fmt.Errorf("wire: trace block declares %d entries for %d events", count, len(b.Events))
	}
	last := -1
	for k := uint64(0); k < count; k++ {
		idx, err := c.uvarint()
		if err != nil {
			return err
		}
		if idx >= uint64(len(b.Events)) || int(idx) <= last {
			return fmt.Errorf("wire: trace entry index %d (after %d, %d events)", idx, last, len(b.Events))
		}
		last = int(idx)
		keyB, err := c.take(8)
		if err != nil {
			return err
		}
		mask, err := c.byte()
		if err != nil {
			return err
		}
		if mask == 0 || mask&^tracer.SwitchStageMask != 0 {
			return fmt.Errorf("wire: trace entry stage mask %02x", mask)
		}
		e := &b.Events[idx]
		sp := &tracer.Span{
			Key:      binary.BigEndian.Uint64(keyB),
			DPID:     e.SwitchID,
			PacketID: uint64(e.PacketID),
			Kind:     uint8(e.Kind),
		}
		sp.MarkRemote(mask)
		for st := tracer.Stage(0); st < tracer.NumStages; st++ {
			if mask&(1<<st) == 0 {
				continue
			}
			m, err := c.varint()
			if err != nil {
				return err
			}
			if m == 0 {
				return fmt.Errorf("wire: zero trace mark for stage %s", st)
			}
			sp.StampAt(st, m)
		}
		e.Trace = sp
	}
	return nil
}

// decodeEvent decodes one event. A non-nil pa decodes the embedded
// packet into the arena instead of the heap.
func decodeEvent(c *cursor, e *core.Event, pa *packet.Arena) error {
	kb, err := c.byte()
	if err != nil {
		return err
	}
	kind := core.EventKind(kb)
	switch kind {
	case core.KindArrival, core.KindEgress, core.KindOutOfBand:
	default:
		return fmt.Errorf("unknown event kind %d", kb)
	}
	e.Kind = kind
	flags, err := c.byte()
	if err != nil {
		return err
	}
	if flags&^byte(flagsKnown) != 0 {
		return fmt.Errorf("unknown event flags %02x", flags)
	}
	if kind != core.KindEgress && flags&(flagDropped|flagMulticast) != 0 {
		return fmt.Errorf("dropped/multicast flags on a %s event", kind)
	}
	e.Dropped = flags&flagDropped != 0
	e.Multicast = flags&flagMulticast != 0
	nanos, err := c.varint()
	if err != nil {
		return err
	}
	e.Time = time.Unix(0, nanos)
	if e.SwitchID, err = c.uvarint(); err != nil {
		return err
	}
	pid, err := c.uvarint()
	if err != nil {
		return err
	}
	e.PacketID = core.PacketID(pid)
	if e.InPort, err = c.uvarint(); err != nil {
		return err
	}
	if e.OutPort, err = c.uvarint(); err != nil {
		return err
	}
	oobKind, err := c.uvarint()
	if err != nil {
		return err
	}
	e.OOBKind = packet.OOBKind(oobKind)
	if e.OOBPort, err = c.uvarint(); err != nil {
		return err
	}
	if flags&flagHasPacket == 0 {
		return nil
	}
	pktLen, err := c.u32()
	if err != nil {
		return err
	}
	raw, err := c.take(int(pktLen))
	if err != nil {
		return err
	}
	var pkt *packet.Packet
	if pa != nil {
		pkt, err = pa.Decode(raw)
	} else {
		pkt, err = packet.Decode(raw)
	}
	if err != nil {
		return fmt.Errorf("embedded packet: %w", err)
	}
	e.Packet = pkt
	return nil
}

// Reader decodes a frame stream from an io.Reader, reusing one buffer
// across frames (the returned frames own their data — event slices and
// packets are freshly decoded — so the buffer reuse is invisible to
// callers). A pooled Reader (NewPooledReader) weakens that ownership
// for batches only: they borrow pool-backed storage and must be
// Released.
type Reader struct {
	r      io.Reader
	buf    []byte
	hdr    [4]byte
	pooled bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// NewPooledReader is NewReader with batch pooling: each decoded Batch
// borrows its event slab and packet storage from a shared sync.Pool —
// one Get per batch, not per event — and the caller must call
// (*Batch).Release once it no longer references the batch's events.
// The collector's ingest path uses this to stay allocation-free per
// event in steady state.
func NewPooledReader(r io.Reader) *Reader { return &Reader{r: r, pooled: true} }

// Next reads and decodes the next frame. It returns io.EOF cleanly only
// on a frame boundary; a connection cut mid-frame is
// io.ErrUnexpectedEOF.
func (r *Reader) Next() (any, error) {
	// The length prefix reads into a Reader field, not a local: a local
	// array passed through the io.Reader interface escapes, costing one
	// heap allocation per frame on the ingest hot path.
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return nil, err // io.EOF on a clean boundary
	}
	n := binary.BigEndian.Uint32(r.hdr[:])
	if n > MaxFrameLen {
		return nil, fmt.Errorf("wire: frame length %d exceeds MaxFrameLen %d", n, MaxFrameLen)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return decodePayload(r.buf, r.pooled)
}
